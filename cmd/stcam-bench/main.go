// Command stcam-bench regenerates the evaluation suite from DESIGN.md §3:
// every reconstructed table and figure (R1–R16), printed as aligned text
// tables. Results at the default scale are recorded in EXPERIMENTS.md.
// The -json output is what cmd/benchdiff compares against the committed
// BENCH_*.json baselines in CI.
//
//	stcam-bench                  # run everything at full scale
//	stcam-bench -exp R3,R5       # selected experiments
//	stcam-bench -scale 0.2       # faster, smaller workloads (same shapes)
//	stcam-bench -json out.json   # also write the tables as JSON
//	stcam-bench -list            # show the experiment index
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stcam/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stcam-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs (empty = all)")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonPath = flag.String("json", "", "write the selected tables as JSON to this file")
	)
	flag.Parse()

	all := bench.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return nil
	}
	if *scale <= 0 {
		return fmt.Errorf("scale must be positive")
	}

	selected := all
	if *expFlag != "" {
		want := map[string]bool{}
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
		selected = selected[:0]
		for _, e := range all {
			if want[e.ID] {
				selected = append(selected, e)
				delete(want, e.ID)
			}
		}
		if len(want) > 0 {
			ids := make([]string, 0, len(want))
			for id := range want {
				ids = append(ids, id)
			}
			return fmt.Errorf("unknown experiment(s): %s (use -list)", strings.Join(ids, ", "))
		}
	}

	tables := make([]*bench.Table, 0, len(selected))
	for _, e := range selected {
		start := time.Now()
		tbl := e.Run(bench.Scale(*scale))
		tbl.Fprint(os.Stdout)
		fmt.Printf("  (%s in %s at scale %.2f)\n\n", e.ID, time.Since(start).Round(time.Millisecond), *scale)
		tables = append(tables, tbl)
	}
	if *jsonPath != "" {
		doc := struct {
			Scale  float64        `json:"scale"`
			Tables []*bench.Table `json:"tables"`
		}{Scale: *scale, Tables: tables}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d table(s) to %s\n", len(tables), *jsonPath)
	}
	return nil
}
