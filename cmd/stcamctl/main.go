// Command stcamctl queries a running stcam coordinator.
//
//	stcamctl -coordinator host:7600 range -rect 0,0,500,500 -last 10m
//	stcamctl -coordinator host:7600 knn -at 120,300 -k 5 -last 1h
//	stcamctl -coordinator host:7600 count -rect 0,0,500,500 -last 10m
//	stcamctl -coordinator host:7600 trajectory -target 81604378625 -last 1h
//	stcamctl -coordinator host:7600 heatmap -rect 0,0,1000,1000 -cell 100 -last 10m
//	stcamctl -coordinator host:7600 top
//	stcamctl -coordinator host:7600 stats
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"stcam"
	"stcam/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stcamctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("stcamctl", flag.ContinueOnError)
	coordAddr := global.String("coordinator", "127.0.0.1:7600", "coordinator address")
	timeout := global.Duration("timeout", 10*time.Second, "RPC timeout")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: stcamctl [-coordinator addr] <range|knn|count|trajectory|heatmap|stats|top> [flags]")
	}
	cmd, cmdArgs := rest[0], rest[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	rectStr := fs.String("rect", "", "query rectangle x0,y0,x1,y1")
	atStr := fs.String("at", "", "query point x,y (knn)")
	k := fs.Int("k", 5, "neighbor count (knn)")
	target := fs.Uint64("target", 0, "target id (trajectory)")
	last := fs.Duration("last", time.Hour, "look-back window ending now")
	limit := fs.Int("limit", 0, "max results (0 = unlimited)")
	cell := fs.Float64("cell", 100, "heatmap cell size, meters")
	if err := fs.Parse(cmdArgs); err != nil {
		return err
	}

	now := time.Now().UTC()
	window := wire.TimeWindow{From: now.Add(-*last), To: now}
	transport := stcam.NewTCP()
	defer transport.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch cmd {
	case "range":
		rect, err := parseRect(*rectStr)
		if err != nil {
			return err
		}
		resp, err := transport.Call(ctx, *coordAddr, &wire.RangeQuery{QueryID: 1, Rect: rect, Window: window, Limit: *limit})
		if err != nil {
			return err
		}
		rr, ok := resp.(*wire.RangeResult)
		if !ok {
			return fmt.Errorf("unexpected response %T", resp)
		}
		printRecords(rr.Records)
		return nil

	case "knn":
		p, err := parsePoint(*atStr)
		if err != nil {
			return err
		}
		resp, err := transport.Call(ctx, *coordAddr, &wire.KNNQuery{QueryID: 1, Center: p, Window: window, K: *k})
		if err != nil {
			return err
		}
		kr, ok := resp.(*wire.KNNResult)
		if !ok {
			return fmt.Errorf("unexpected response %T", resp)
		}
		for _, r := range kr.Records {
			fmt.Printf("obs=%d target=%d camera=%d pos=%s t=%s dist=%.1fm\n",
				r.ObsID, r.TargetID, r.Camera, r.Pos, r.Time.Format(time.RFC3339), distOf(r))
		}
		return nil

	case "count":
		rect, err := parseRect(*rectStr)
		if err != nil {
			return err
		}
		resp, err := transport.Call(ctx, *coordAddr, &wire.CountQuery{QueryID: 1, Rect: rect, Window: window})
		if err != nil {
			return err
		}
		cr, ok := resp.(*wire.CountResult)
		if !ok {
			return fmt.Errorf("unexpected response %T", resp)
		}
		fmt.Println(cr.Count)
		return nil

	case "trajectory":
		if *target == 0 {
			return fmt.Errorf("trajectory requires -target")
		}
		resp, err := transport.Call(ctx, *coordAddr, &wire.TrajectoryQuery{QueryID: 1, TargetID: *target, Window: window})
		if err != nil {
			return err
		}
		tr, ok := resp.(*wire.TrajectoryResult)
		if !ok {
			return fmt.Errorf("unexpected response %T", resp)
		}
		printRecords(tr.Records)
		return nil

	case "heatmap":
		rect, err := parseRect(*rectStr)
		if err != nil {
			return err
		}
		resp, err := transport.Call(ctx, *coordAddr, &wire.HeatmapQuery{QueryID: 1, Rect: rect, Window: window, CellSize: *cell})
		if err != nil {
			return err
		}
		hr, ok := resp.(*wire.HeatmapResult)
		if !ok {
			return fmt.Errorf("unexpected response %T", resp)
		}
		for _, hc := range hr.Cells {
			fmt.Printf("cell (%g, %g)-(%g, %g): %d\n",
				float64(hc.CX)**cell, float64(hc.CY)**cell,
				float64(hc.CX+1)**cell, float64(hc.CY+1)**cell, hc.Count)
		}
		fmt.Printf("%d non-empty cell(s)\n", len(hr.Cells))
		return nil

	case "top", "stats":
		resp, err := transport.Call(ctx, *coordAddr, &wire.ClusterStatsQuery{})
		if err != nil {
			return err
		}
		cs, ok := resp.(*wire.ClusterStatsResult)
		if !ok {
			return fmt.Errorf("unexpected response %T", resp)
		}
		if cmd == "top" {
			renderTop(os.Stdout, cs)
		} else {
			renderStats(os.Stdout, cs)
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// renderTop writes the per-worker summary table: one row per registered
// member, live or not, with the scraped ingest/tracking/RPC figures.
func renderTop(out io.Writer, cs *wire.ClusterStatsResult) {
	// A member polled before its first heartbeat (or a group mid-election)
	// reports empty role/leader fields; default them rather than rendering
	// blank cells.
	leader, leaderAddr := cs.Leader, cs.LeaderAddr
	if leader == "" {
		leader = "-"
	}
	if leaderAddr == "" {
		leaderAddr = "-"
	}
	switch cs.Role {
	case "", "single":
		fmt.Fprintf(out, "epoch %d, %d worker(s)\n", cs.Epoch, len(cs.Workers))
	case "leader":
		fmt.Fprintf(out, "epoch %d, leader %s, %d worker(s)\n", cs.Epoch, cs.Leader, len(cs.Workers))
	default:
		fmt.Fprintf(out, "epoch %d, %s (leader %s @ %s), %d worker(s)\n",
			cs.Epoch, cs.Role, leader, leaderAddr, len(cs.Workers))
	}
	if line := servingSummary(&cs.Coordinator); line != "" {
		fmt.Fprintln(out, line)
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tALIVE\tCAMS\tRATE\tACCEPTED\tTRACKS\tRECORDS\tRPCERR\tRETRY\tBRK")
	for _, w := range cs.Workers {
		if !w.Scraped {
			fmt.Fprintf(tw, "%s\t%v\t%d\t%.1f/s\t-\t-\t%d\t-\t-\t-\n",
				w.Node, w.Alive, w.Cameras, w.Load, w.Stored)
			continue
		}
		fmt.Fprintf(tw, "%s\t%v\t%d\t%.1f/s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			w.Node, w.Alive, w.Cameras, w.Load,
			w.Stats.Counters["ingest.accepted"],
			w.Stats.Gauges["tracks.resident"],
			w.Stored,
			w.Stats.Gauges["rpc.errors"],
			w.Stats.Counters["rpc.retries"],
			w.Stats.Counters["rpc.breaker_opens"])
	}
	tw.Flush() //nolint:errcheck // terminal output
}

// servingSummary condenses the coordinator's serve.* metrics into one line,
// or returns "" when no serving plane has reported (keeping plain clusters'
// output unchanged).
func servingSummary(co *wire.StatsResult) string {
	present := false
	for n := range co.Counters {
		if strings.HasPrefix(n, "serve.") {
			present = true
			break
		}
	}
	if !present {
		for n := range co.Gauges {
			if strings.HasPrefix(n, "serve.") {
				present = true
				break
			}
		}
	}
	if !present {
		return ""
	}
	shed := co.Counters["serve.shed.background"] + co.Counters["serve.shed.interactive"] +
		co.Counters["serve.shed.control"] + co.Counters["serve.shed.none"]
	return fmt.Sprintf("serving: cache %d/%d hit/miss (%dB), subs %d, shed %d, quota denied %d",
		co.Counters["serve.cache.hits"], co.Counters["serve.cache.misses"],
		co.Gauges["serve.cache.bytes"], co.Gauges["serve.subscribers"],
		shed, co.Counters["serve.quota.denied"])
}

// renderStats dumps every scraped metric, coordinator first, then each
// worker: counters and gauges as name=value lines, histograms as
// count/p50/p95/p99.
func renderStats(out io.Writer, cs *wire.ClusterStatsResult) {
	renderNodeStats(out, &cs.Coordinator)
	for i := range cs.Workers {
		w := &cs.Workers[i]
		if !w.Scraped {
			fmt.Fprintf(out, "\n[%s] not scraped (alive=%v)\n", w.Node, w.Alive)
			continue
		}
		fmt.Fprintln(out)
		renderNodeStats(out, &w.Stats)
	}
}

func renderNodeStats(out io.Writer, s *wire.StatsResult) {
	fmt.Fprintf(out, "[%s]\n", s.Node)
	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if v, ok := s.Counters[n]; ok {
			fmt.Fprintf(out, "  %s = %d\n", n, v)
		} else {
			fmt.Fprintf(out, "  %s = %d\n", n, s.Gauges[n])
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(out, "  %s: count=%d p50=%v p95=%v p99=%v\n",
			n, h.Count, time.Duration(h.P50), time.Duration(h.P95), time.Duration(h.P99))
	}
}

func distOf(r wire.KNNRecord) float64 { return math.Sqrt(r.Dist2) }

func printRecords(recs []wire.ResultRecord) {
	for _, r := range recs {
		fmt.Printf("obs=%d target=%d camera=%d pos=%s t=%s\n",
			r.ObsID, r.TargetID, r.Camera, r.Pos, r.Time.Format(time.RFC3339))
	}
	fmt.Printf("%d record(s)\n", len(recs))
}

func parseRect(s string) (stcam.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return stcam.Rect{}, fmt.Errorf("rect must be x0,y0,x1,y1 (got %q)", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return stcam.Rect{}, fmt.Errorf("rect component %q: %w", p, err)
		}
		vals[i] = v
	}
	return stcam.RectOf(vals[0], vals[1], vals[2], vals[3]), nil
}

func parsePoint(s string) (stcam.Point, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return stcam.Point{}, fmt.Errorf("point must be x,y (got %q)", s)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return stcam.Point{}, err
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return stcam.Point{}, err
	}
	return stcam.Pt(x, y), nil
}
