package main

import (
	"testing"

	"stcam"
)

func TestParseRect(t *testing.T) {
	tests := []struct {
		in      string
		want    stcam.Rect
		wantErr bool
	}{
		{"0,0,100,50", stcam.RectOf(0, 0, 100, 50), false},
		{" 1 , 2 , 3 , 4 ", stcam.RectOf(1, 2, 3, 4), false},
		{"100,50,0,0", stcam.RectOf(0, 0, 100, 50), false}, // normalized
		{"-5,-5,5,5", stcam.RectOf(-5, -5, 5, 5), false},
		{"1,2,3", stcam.Rect{}, true},
		{"1,2,3,4,5", stcam.Rect{}, true},
		{"a,b,c,d", stcam.Rect{}, true},
		{"", stcam.Rect{}, true},
	}
	for _, tt := range tests {
		got, err := parseRect(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseRect(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("parseRect(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParsePoint(t *testing.T) {
	tests := []struct {
		in      string
		want    stcam.Point
		wantErr bool
	}{
		{"3,4", stcam.Pt(3, 4), false},
		{" -1.5 , 2.25 ", stcam.Pt(-1.5, 2.25), false},
		{"3", stcam.Point{}, true},
		{"3,4,5", stcam.Point{}, true},
		{"x,y", stcam.Point{}, true},
	}
	for _, tt := range tests {
		got, err := parsePoint(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parsePoint(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("parsePoint(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRunRejectsBadInvocations(t *testing.T) {
	for _, args := range [][]string{
		{},                                       // no command
		{"frobnicate"},                           // unknown command
		{"range", "-rect", "bad"},                // bad rect
		{"knn", "-at", "nope"},                   // bad point
		{"trajectory"},                           // missing target
		{"heatmap", "-rect", "1,2,3,4", "-cell"}, // flag parse error
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
