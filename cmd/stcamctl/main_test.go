package main

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"stcam"
	"stcam/internal/wire"
)

func TestParseRect(t *testing.T) {
	tests := []struct {
		in      string
		want    stcam.Rect
		wantErr bool
	}{
		{"0,0,100,50", stcam.RectOf(0, 0, 100, 50), false},
		{" 1 , 2 , 3 , 4 ", stcam.RectOf(1, 2, 3, 4), false},
		{"100,50,0,0", stcam.RectOf(0, 0, 100, 50), false}, // normalized
		{"-5,-5,5,5", stcam.RectOf(-5, -5, 5, 5), false},
		{"1,2,3", stcam.Rect{}, true},
		{"1,2,3,4,5", stcam.Rect{}, true},
		{"a,b,c,d", stcam.Rect{}, true},
		{"", stcam.Rect{}, true},
	}
	for _, tt := range tests {
		got, err := parseRect(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseRect(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("parseRect(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParsePoint(t *testing.T) {
	tests := []struct {
		in      string
		want    stcam.Point
		wantErr bool
	}{
		{"3,4", stcam.Pt(3, 4), false},
		{" -1.5 , 2.25 ", stcam.Pt(-1.5, 2.25), false},
		{"3", stcam.Point{}, true},
		{"3,4,5", stcam.Point{}, true},
		{"x,y", stcam.Point{}, true},
	}
	for _, tt := range tests {
		got, err := parsePoint(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parsePoint(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("parsePoint(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// TestTopRendersClusterStats drives the stats aggregation end to end: a
// 4-worker in-proc cluster with live ingest, scraped through the same
// ClusterStatsQuery message the CLI sends, rendered by the same renderers.
func TestTopRendersClusterStats(t *testing.T) {
	ctx := context.Background()
	c, err := stcam.NewLocalCluster(4, nil, stcam.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// A 4×4 omni-camera grid over a 1km square, one observation per camera.
	var cams []stcam.CameraInfo
	for i := 0; i < 16; i++ {
		cams = append(cams, stcam.CameraInfo{
			ID:      uint32(i + 1),
			Pos:     stcam.Pt(float64(i%4)*250+125, float64(i/4)*250+125),
			HalfFOV: math.Pi,
			Range:   300,
		})
	}
	if err := c.Coordinator.AddCameras(ctx, cams, 50); err != nil {
		t.Fatal(err)
	}
	for i, ci := range cams {
		addr, ok := c.Coordinator.RouteFor(ci.ID)
		if !ok {
			t.Fatalf("no route for camera %d", ci.ID)
		}
		batch := &wire.IngestBatch{Camera: ci.ID, Observations: []wire.Observation{
			{ObsID: uint64(i + 1), Camera: ci.ID, Pos: ci.Pos, Time: stcam.SimStart.Add(time.Duration(i) * time.Second)},
		}}
		if _, err := c.Transport.Call(ctx, addr, batch); err != nil {
			t.Fatal(err)
		}
	}
	// Heartbeats freshen the membership view (load, stored, cameras).
	for _, w := range c.Workers {
		if err := w.SendHeartbeat(ctx); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := c.Transport.Call(ctx, c.Coordinator.Addr(), &wire.ClusterStatsQuery{})
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := resp.(*wire.ClusterStatsResult)
	if !ok {
		t.Fatalf("unexpected response %T", resp)
	}
	if len(cs.Workers) != 4 {
		t.Fatalf("stats cover %d workers, want 4", len(cs.Workers))
	}
	var accepted, stored int64
	for _, w := range cs.Workers {
		if !w.Scraped || !w.Alive {
			t.Errorf("worker %s: scraped=%v alive=%v, want both", w.Node, w.Scraped, w.Alive)
		}
		accepted += w.Stats.Counters["ingest.accepted"]
		stored += int64(w.Stored)
		if len(w.Stats.Histograms) == 0 {
			t.Errorf("worker %s scrape has no histograms", w.Node)
		}
	}
	if accepted != 16 || stored != 16 {
		t.Errorf("aggregate accepted=%d stored=%d, want 16/16", accepted, stored)
	}
	if len(cs.Coordinator.Histograms) == 0 {
		t.Error("coordinator scrape has no rpc histograms")
	}

	var top bytes.Buffer
	renderTop(&top, cs)
	out := top.String()
	if !strings.Contains(out, "NODE") || !strings.Contains(out, "RPCERR") {
		t.Fatalf("top header missing:\n%s", out)
	}
	for _, w := range c.Workers {
		if !strings.Contains(out, string(w.ID())) {
			t.Errorf("top output missing worker %s:\n%s", w.ID(), out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 6 { // epoch line + header + 4 workers
		t.Errorf("top printed %d lines, want 6:\n%s", lines, out)
	}

	var stats bytes.Buffer
	renderStats(&stats, cs)
	for _, want := range []string{"[coordinator]", "[w01]", "[w04]", "ingest.accepted", "rpc.serve."} {
		if !strings.Contains(stats.String(), want) {
			t.Errorf("stats output missing %q", want)
		}
	}
}

// TestTopDefaultsBlankRoleAndLeader is the regression for the blank-cell
// bug: a member polled before its first heartbeat (or mid-election) reports
// empty leader fields, and the header must render placeholders instead of
// empty cells.
func TestTopDefaultsBlankRoleAndLeader(t *testing.T) {
	cs := &wire.ClusterStatsResult{
		Epoch: 3,
		Role:  "standby",
		Workers: []wire.WorkerStatsEntry{
			{Node: "w01"}, // registered, never heartbeated: zero-value row
		},
	}
	var top bytes.Buffer
	renderTop(&top, cs)
	out := top.String()
	if strings.Contains(out, "leader  @") || strings.Contains(out, "@ )") {
		t.Fatalf("blank leader cells rendered:\n%s", out)
	}
	if !strings.Contains(out, "(leader - @ -)") {
		t.Fatalf("header missing placeholder leader fields:\n%s", out)
	}
	if !strings.Contains(out, "w01") {
		t.Fatalf("pre-heartbeat worker row missing:\n%s", out)
	}
}

// TestTopServingSummary: when the coordinator reports serve.* metrics, top
// prints a one-line serving-plane summary; without them the line is absent.
func TestTopServingSummary(t *testing.T) {
	bare := &wire.ClusterStatsResult{Epoch: 1}
	var out bytes.Buffer
	renderTop(&out, bare)
	if strings.Contains(out.String(), "serving:") {
		t.Fatalf("serving line rendered without serve metrics:\n%s", out.String())
	}
	served := &wire.ClusterStatsResult{
		Epoch: 1,
		Coordinator: wire.StatsResult{
			Node: "coordinator",
			Counters: map[string]int64{
				"serve.cache.hits":      10,
				"serve.cache.misses":    4,
				"serve.shed.background": 2,
				"serve.quota.denied":    1,
			},
			Gauges: map[string]int64{
				"serve.cache.bytes": 2048,
				"serve.subscribers": 7,
			},
		},
	}
	out.Reset()
	renderTop(&out, served)
	got := out.String()
	for _, want := range []string{"serving:", "10/4 hit/miss", "2048B", "subs 7", "shed 2", "quota denied 1"} {
		if !strings.Contains(got, want) {
			t.Fatalf("serving summary missing %q:\n%s", want, got)
		}
	}
}

func TestRunRejectsBadInvocations(t *testing.T) {
	for _, args := range [][]string{
		{},                                       // no command
		{"frobnicate"},                           // unknown command
		{"range", "-rect", "bad"},                // bad rect
		{"knn", "-at", "nope"},                   // bad point
		{"trajectory"},                           // missing target
		{"heatmap", "-rect", "1,2,3,4", "-cell"}, // flag parse error
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
