// Command stcamlint runs the project-invariant analyzer suite
// (internal/analyzers) over the module: rpcunderlock, bufrelease, failclosed,
// clockinject, and metricname — the bug classes this codebase has shipped and
// re-fixed, encoded as compiler-enforced rules.
//
// Standalone use (the make lint path):
//
//	go run ./cmd/stcamlint ./...          # whole module
//	go run ./cmd/stcamlint ./internal/core
//	go run ./cmd/stcamlint -analyzers clockinject,metricname ./...
//
// Exit status is 1 when any diagnostic survives //lint:allow suppression.
//
// The binary also answers the two entry points `go vet -vettool` uses, so
//
//	go build -o stcamlint ./cmd/stcamlint && go vet -vettool=$PWD/stcamlint ./...
//
// works: -V=full prints an identity line, and a single *.cfg argument is
// parsed as vet's unit-check config (the package's files are re-analyzed via
// the module loader; diagnostics print to stderr and fail the build). The
// standalone mode is canonical — it is what make lint and CI run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"stcam/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet protocol, part 1: handshakes. -flags asks for the tool's flag
	// schema (we expose none to vet); -V=full asks for a version identity.
	for _, a := range args {
		switch a {
		case "-flags", "--flags":
			fmt.Println("[]")
			return 0
		case "-V=full", "--V=full":
			fmt.Println("stcamlint version 1 buildID=stcamlint-static-suite")
			return 0
		}
	}
	// go vet protocol, part 2: a single JSON config file argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetCfg(args[0])
	}

	fs := flag.NewFlagSet("stcamlint", flag.ExitOnError)
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: stcamlint [-analyzers a,b] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Packages default to ./... relative to the module root.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var sel []string
	if *names != "" {
		sel = strings.Split(*names, ",")
	}
	as := analyzers.ByName(sel)
	if len(as) == 0 {
		fmt.Fprintf(os.Stderr, "stcamlint: no analyzers match %q\n", *names)
		return 2
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stcamlint:", err)
		return 2
	}
	loader, err := analyzers.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stcamlint:", err)
		return 2
	}

	pkgs, err := resolvePackages(loader, wd, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "stcamlint:", err)
		return 2
	}

	bad := 0
	for _, p := range pkgs {
		for _, d := range analyzers.RunPackage(p, as) {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", relPath(loader.ModuleRoot, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "stcamlint: %d diagnostic(s)\n", bad)
		return 1
	}
	return 0
}

// resolvePackages turns CLI patterns into loaded packages. Supported shapes:
// none (whole module), "./..." (whole module), "./x/..." (subtree), "./x"
// (one package), and full import paths.
func resolvePackages(loader *analyzers.Loader, wd string, patterns []string) ([]*analyzers.Package, error) {
	if len(patterns) == 0 {
		return loader.LoadAll()
	}
	var out []*analyzers.Package
	seen := map[string]bool{}
	add := func(p *analyzers.Package) {
		if !seen[p.Path] {
			seen[p.Path] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." {
				pat = "./"
			}
		}
		var ip string
		switch {
		case pat == "./" || pat == ".":
			rel, err := filepath.Rel(loader.ModuleRoot, wd)
			if err != nil {
				return nil, err
			}
			ip = loader.ModulePath
			if rel != "." {
				ip = loader.ModulePath + "/" + filepath.ToSlash(rel)
			}
		case strings.HasPrefix(pat, "./"):
			abs := filepath.Join(wd, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			rel, err := filepath.Rel(loader.ModuleRoot, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("pattern %q escapes the module", pat)
			}
			ip = loader.ModulePath + "/" + filepath.ToSlash(rel)
		default:
			ip = pat
		}
		if recursive {
			all, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				if p.Path == ip || strings.HasPrefix(p.Path, ip+"/") {
					add(p)
				}
			}
		} else {
			p, err := loader.Load(ip)
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	return out, nil
}

// vetCfg is the subset of go vet's unit-check config stcamlint needs: the
// package's import path (everything else — files, import maps, export data —
// is re-derived through the module loader, which type-checks from source).
type vetCfg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

func runVetCfg(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stcamlint:", err)
		return 2
	}
	var cfg vetCfg
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "stcamlint: parse vet config:", err)
		return 2
	}
	dir := cfg.Dir
	if dir == "" && len(cfg.GoFiles) > 0 {
		dir = filepath.Dir(cfg.GoFiles[0])
	}
	if dir == "" {
		fmt.Fprintln(os.Stderr, "stcamlint: vet config has no package directory")
		return 2
	}
	// go vet runs the tool over every package in the build, the standard
	// library included (its source tree carries the `std` go.mod). Our
	// invariants are project rules; anything outside this module is not ours
	// to check.
	if goroot := runtime.GOROOT(); goroot != "" {
		if r, err := filepath.Rel(goroot, dir); err == nil && !strings.HasPrefix(r, "..") {
			return 0
		}
	}
	loader, err := analyzers.NewLoader(dir)
	if err != nil {
		// Outside our module (a dependency): nothing to check.
		return 0
	}
	rel, err := filepath.Rel(loader.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return 0
	}
	ip := loader.ModulePath
	if rel != "." {
		ip = loader.ModulePath + "/" + filepath.ToSlash(rel)
	}
	p, err := loader.Load(ip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stcamlint:", err)
		return 2
	}
	bad := 0
	for _, d := range analyzers.RunPackage(p, analyzers.All()) {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		bad++
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func relPath(root, p string) string {
	if r, err := filepath.Rel(root, p); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return p
}
