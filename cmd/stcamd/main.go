// Command stcamd runs one node of an stcam cluster over TCP: either the
// coordinator or a worker.
//
// Coordinator:
//
//	stcamd -role coordinator -addr :7600
//
// Highly-available coordinator group (one leader plus standbys; each member
// names itself and its peers, and standbys boot with -standby):
//
//	stcamd -role coordinator -id c1 -addr host1:7600 -peers c2=host2:7600,c3=host3:7600
//	stcamd -role coordinator -id c2 -addr host2:7600 -peers c1=host1:7600,c3=host3:7600 -standby
//	stcamd -role coordinator -id c3 -addr host3:7600 -peers c1=host1:7600,c2=host2:7600 -standby
//
// Workers (any number, on any machines that can reach the coordinators; give
// them the full candidate list so they fail over on their own):
//
//	stcamd -role worker -id w1 -addr :7601 -coordinator host1:7600,host2:7600,host3:7600
//
// Cameras are registered by a client (cmd/stcam-sim, or any program sending
// an AssignCameras message to the coordinator); queries go through
// cmd/stcamctl.
//
// Either role can additionally expose an observability endpoint with
// -http addr, serving Prometheus-format /metrics, /healthz, /readyz, and
// /debug/pprof; -slow-rpc enables trace-tagged slow-call logging.
//
// A coordinator can attach the serving plane for heavy read traffic with
// -serve (tune with -cache-bytes and -quota): repeated queries are answered
// from an epoch-keyed cache, subscribers to the same continuous query share
// one worker-side install, and query load sheds by priority class while
// ingest and tracking are never shed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stcam"
)

// parsePeers parses the -peers value: comma-separated id=host:port entries
// naming the other coordinators of the HA group.
func parsePeers(s string) (map[stcam.NodeID]string, error) {
	out := make(map[stcam.NodeID]string)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, addr, ok := strings.Cut(entry, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=host:port)", entry)
		}
		out[stcam.NodeID(id)] = addr
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-peers %q names no peers", s)
	}
	return out, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stcamd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		role        = flag.String("role", "worker", "node role: coordinator | worker")
		id          = flag.String("id", "", "node id (required for workers; names a coordinator within an HA group)")
		addr        = flag.String("addr", ":7601", "listen address")
		coordAddr   = flag.String("coordinator", "127.0.0.1:7600", "coordinator address, or comma-separated HA candidate list (workers)")
		peers       = flag.String("peers", "", "coordinator: HA peer list id=host:port,id=host:port (empty = single coordinator)")
		standby     = flag.Bool("standby", false, "coordinator: boot as a standby following the HA group's leader")
		lease       = flag.Duration("lease", 0, "coordinator: HA leader lease interval (0 = default 250ms)")
		heartbeat   = flag.Duration("heartbeat", time.Second, "worker heartbeat interval")
		hbTimeout   = flag.Duration("failure-timeout", 5*time.Second, "coordinator: declare workers dead after this silence")
		retention   = flag.Duration("retention", 0, "worker observation retention (0 = unlimited)")
		sealHorizon = flag.Duration("seal-horizon", 0, "worker: compact observations older than this into compressed sealed chunks (0 = flat store)")
		rollupWidth = flag.Duration("rollup-width", 0, "worker: sealed-tier rollup bucket width (0 = 16x bucket width)")
		chunkTarget = flag.Int("chunk-target", 0, "worker: max records per sealed chunk (0 = default 512)")
		sweep       = flag.Duration("sweep", time.Second, "coordinator: liveness sweep interval")
		callTimeout = flag.Duration("call-timeout", 2*time.Second, "per-attempt RPC deadline for outbound calls (negative = unbounded)")
		attempts    = flag.Int("call-attempts", 3, "RPC attempts per outbound call, including the first (1 = no retries)")
		ingestDepth = flag.Int("ingest-pipeline-depth", 0, "coordinator: max concurrent worker RPCs per proxied ingest batch (0 = default)")
		httpAddr    = flag.String("http", "", "observability HTTP address serving /metrics, /healthz, /readyz, /debug/pprof (empty = disabled)")
		slowRPC     = flag.Duration("slow-rpc", 0, "log outbound RPCs slower than this, with trace IDs (0 = disabled)")
		serveFlag   = flag.Bool("serve", false, "coordinator: attach the serving plane (shared subscription fan-out, result cache, admission control)")
		cacheBytes  = flag.Int64("cache-bytes", 8<<20, "coordinator -serve: result-cache byte budget (negative = caching disabled)")
		quota       = flag.Float64("quota", 0, "coordinator -serve: per-tenant sustained queries/sec (0 = unlimited)")
	)
	flag.Parse()

	transport := stcam.NewTCP()
	defer transport.Close()
	opts := stcam.Options{
		HeartbeatTimeout:    *hbTimeout,
		Retention:           *retention,
		SealHorizon:         *sealHorizon,
		RollupWidth:         *rollupWidth,
		ChunkTarget:         *chunkTarget,
		CallTimeout:         *callTimeout,
		RetryPolicy:         stcam.Policy{MaxAttempts: *attempts},
		IngestPipelineDepth: *ingestDepth,
		SlowRPCThreshold:    *slowRPC,
		Standby:             *standby,
		LeaseInterval:       *lease,
	}
	if *peers != "" {
		peerMap, err := parsePeers(*peers)
		if err != nil {
			return err
		}
		if *id == "" {
			return fmt.Errorf("-peers requires -id to name this coordinator")
		}
		opts.CoordinatorID = stcam.NodeID(*id)
		opts.CoordinatorPeers = peerMap
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	switch *role {
	case "coordinator":
		coord := stcam.NewCoordinator(*addr, transport, nil, opts)
		if err := coord.Start(); err != nil {
			return err
		}
		defer coord.Stop()
		lastRole, _, _ := coord.Role()
		if lastRole == "single" {
			log.Printf("coordinator listening on %s", coord.Addr())
		} else {
			log.Printf("coordinator %s listening on %s as %s", *id, coord.Addr(), lastRole)
		}
		if *serveFlag {
			stcam.NewFrontend(coord, stcam.ServeOptions{
				CacheBytes: *cacheBytes,
				QuotaRate:  *quota,
			})
			log.Printf("serving plane attached (cache %d bytes, quota %.1f q/s/tenant)", *cacheBytes, *quota)
		}
		if *httpAddr != "" {
			o, err := stcam.ServeObs(*httpAddr, stcam.ObsOptions{
				Node:     "coordinator",
				Snapshot: coord.StatsSnapshot,
				Ready:    coord.Ready,
			})
			if err != nil {
				return err
			}
			defer o.Close()
			log.Printf("observability on http://%s/metrics", o.Addr())
		}
		ticker := time.NewTicker(*sweep)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if role, leader, laddr := coord.Role(); role != lastRole {
					log.Printf("control-plane role: %s -> %s (leader %s @ %s, epoch %d)", lastRole, role, leader, laddr, coord.Epoch())
					lastRole = role
				}
				if died := coord.Sweep(context.Background(), time.Now()); len(died) > 0 {
					for _, m := range died {
						log.Printf("worker %s declared dead; cameras reassigned (epoch %d)", m.Node, coord.Epoch())
					}
				}
			case <-stop:
				log.Print("shutting down")
				return nil
			}
		}

	case "worker":
		if *id == "" {
			return fmt.Errorf("worker requires -id")
		}
		w := stcam.NewWorker(stcam.NodeID(*id), *addr, *coordAddr, transport, opts)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := w.Start(ctx)
		cancel()
		if err != nil {
			return err
		}
		defer w.Stop()
		w.StartHeartbeats(*heartbeat)
		log.Printf("worker %s listening on %s, coordinator %s", *id, w.Addr(), *coordAddr)
		if *httpAddr != "" {
			o, err := stcam.ServeObs(*httpAddr, stcam.ObsOptions{
				Node:     *id,
				Snapshot: w.StatsSnapshot,
				Ready:    w.Ready,
			})
			if err != nil {
				return err
			}
			defer o.Close()
			log.Printf("observability on http://%s/metrics", o.Addr())
		}
		<-stop
		log.Print("shutting down")
		return nil

	default:
		return fmt.Errorf("unknown role %q (want coordinator or worker)", *role)
	}
}
