// Command stcam-sim drives a synthetic camera deployment and object
// population into a running stcam cluster over TCP: it registers the cameras
// with the coordinator, then streams one multi-camera batch per simulation
// tick through the coordinator's ingest proxy, keeping up to -pipeline
// frames in flight.
//
//	stcam-sim -coordinator host:7600 -cams 8 -objects 200 -ticks 300 -rate 10
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"stcam"
	"stcam/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stcam-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		coordAddr = flag.String("coordinator", "127.0.0.1:7600", "coordinator address")
		side      = flag.Int("cams", 8, "cameras per world side (total = cams²)")
		objects   = flag.Int("objects", 200, "moving objects")
		ticks     = flag.Int("ticks", 300, "simulation ticks to run (0 = forever)")
		rate      = flag.Float64("rate", 10, "real-time ticks per second (0 = as fast as possible)")
		worldSize = flag.Float64("world", 2000, "world side length, meters")
		seed      = flag.Int64("seed", 1, "simulation seed")
		posNoise  = flag.Float64("pos-noise", 1.0, "detector position noise σ, meters")
		fnRate    = flag.Float64("fn-rate", 0.05, "detector false-negative rate")
		pipeline  = flag.Int("pipeline", 4, "max frames in flight through the ingest proxy (1 = fully serial)")
	)
	flag.Parse()

	world := stcam.RectOf(0, 0, *worldSize, *worldSize)
	cams := make([]stcam.CameraInfo, 0, *side**side)
	cw := *worldSize / float64(*side)
	id := uint32(1)
	for r := 0; r < *side; r++ {
		for c := 0; c < *side; c++ {
			cams = append(cams, stcam.CameraInfo{
				ID:      id,
				Pos:     stcam.Pt((float64(c)+0.5)*cw, (float64(r)+0.5)*cw),
				HalfFOV: math.Pi,
				Range:   0.8 * cw,
			})
			id++
		}
	}

	transport := stcam.NewTCP()
	defer transport.Close()
	ctx := context.Background()

	// Register the deployment.
	resp, err := transport.Call(ctx, *coordAddr, &wire.AssignCameras{Cameras: cams})
	if err != nil {
		return fmt.Errorf("register cameras: %w", err)
	}
	ack, ok := resp.(*wire.AssignAck)
	if !ok {
		return fmt.Errorf("unexpected response %T", resp)
	}
	log.Printf("registered %d cameras (epoch %d)", ack.Accepted, ack.Epoch)

	w, err := stcam.NewWorld(stcam.WorldConfig{
		World:      world,
		NumObjects: *objects,
		Model:      &stcam.RandomWaypoint{World: world, MinSpeed: 2, MaxSpeed: 15},
		Seed:       *seed,
		Start:      time.Now().UTC(),
		FeatureDim: 64,
	})
	if err != nil {
		return err
	}
	camNet := buildNetwork(cams)
	det := stcam.NewDetector(stcam.DetectorConfig{
		PosNoise:     *posNoise,
		FeatureNoise: 0.05,
		FalseNegRate: *fnRate,
		FeatureDim:   64,
		Seed:         *seed,
	})

	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
	}
	if *pipeline < 1 {
		*pipeline = 1
	}
	// One coalesced batch per tick, up to -pipeline frames in flight at
	// once; the semaphore provides backpressure when the cluster falls
	// behind the tick rate.
	var (
		sent int64
		sem  = make(chan struct{}, *pipeline)
		wg   sync.WaitGroup
	)
	for tick := 0; *ticks == 0 || tick < *ticks; tick++ {
		start := time.Now()
		w.Step()
		byCam := w.Observe(camNet, det)
		batch := &wire.IngestBatch{FrameTime: w.Now()}
		for _, dets := range byCam {
			for _, d := range dets {
				batch.Observations = append(batch.Observations, wire.Observation{
					ObsID: d.ObsID, Camera: uint32(d.Camera), Time: d.Time,
					Pos: d.Pos, Feature: d.Feature,
				})
			}
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(tick int, batch *wire.IngestBatch) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := transport.Call(ctx, *coordAddr, batch); err != nil {
				log.Printf("ingest tick %d: %v", tick, err)
				return
			}
			atomic.AddInt64(&sent, int64(len(batch.Observations)))
		}(tick, batch)
		if tick%50 == 0 {
			log.Printf("tick %d: %d observations sent so far", tick, atomic.LoadInt64(&sent))
		}
		if interval > 0 {
			if rem := interval - time.Since(start); rem > 0 {
				time.Sleep(rem)
			}
		}
	}
	wg.Wait()
	log.Printf("done: %d observations across %d ticks", atomic.LoadInt64(&sent), *ticks)
	return nil
}

func buildNetwork(cams []stcam.CameraInfo) *stcam.CameraNetwork {
	net := stcam.NewCameraNetwork()
	for _, ci := range cams {
		net.Add(stcam.NewCamera(stcam.CameraID(ci.ID), ci.Pos, ci.Orient, ci.HalfFOV, ci.Range))
	}
	net.BuildIndex(0)
	return net
}
