// Command benchdiff is the CI perf-regression gate. It compares a fresh
// stcam-bench -json run against a committed baseline (BENCH_CI.json) over the
// machine-robust columns in bench.DefaultGate and exits nonzero when any
// drifts past tolerance.
//
//	stcam-bench -exp R15,R16,R20 -scale 0.15 -json current.json
//	benchdiff -baseline BENCH_CI.json -current current.json -md "$GITHUB_STEP_SUMMARY"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"stcam/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
}

func run() error {
	var (
		basePath = flag.String("baseline", "BENCH_CI.json", "committed baseline document")
		curPath  = flag.String("current", "", "fresh stcam-bench -json output")
		mdPath   = flag.String("md", "", "append the markdown delta table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	)
	flag.Parse()
	if *curPath == "" {
		return fmt.Errorf("-current is required")
	}

	base, err := readDoc(*basePath)
	if err != nil {
		return err
	}
	cur, err := readDoc(*curPath)
	if err != nil {
		return err
	}

	report := bench.Compare(base, cur, bench.DefaultGate())
	fmt.Print(report.String())
	if *mdPath != "" {
		f, err := os.OpenFile(*mdPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		_, werr := f.WriteString(report.Markdown() + "\n")
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	if report.Failed() {
		fmt.Println("benchdiff: regression gate FAILED")
		os.Exit(1)
	}
	fmt.Println("benchdiff: within tolerance")
	return nil
}

func readDoc(path string) (*bench.BenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc bench.BenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}
