package stcam_test

import (
	"context"
	"math"
	"testing"
	"time"

	"stcam"
)

// TestPublicAPIQuickstart exercises the same flow the quickstart example
// documents, entirely through the public facade.
func TestPublicAPIQuickstart(t *testing.T) {
	ctx := context.Background()
	cl, err := stcam.NewLocalCluster(2, nil, stcam.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	cams := []stcam.CameraInfo{
		{ID: 1, Pos: stcam.Pt(250, 250), HalfFOV: math.Pi, Range: 400},
		{ID: 2, Pos: stcam.Pt(750, 750), HalfFOV: math.Pi, Range: 400},
	}
	if err := cl.Coordinator.AddCameras(ctx, cams, 50); err != nil {
		t.Fatal(err)
	}

	at := stcam.SimStart
	addr, ok := cl.Coordinator.RouteFor(1)
	if !ok {
		t.Fatal("no route for camera 1")
	}
	ing := stcam.NewIngester(cl.Coordinator, cl.Transport)
	defer ing.Close()
	if _, err := ing.IngestDetections(ctx, []stcam.Detection{
		{ObsID: 1, Camera: 1, Pos: stcam.Pt(200, 200), Time: at},
		{ObsID: 2, Camera: 2, Pos: stcam.Pt(800, 800), Time: at.Add(time.Second)},
	}); err != nil {
		t.Fatal(err)
	}
	_ = addr

	window := stcam.TimeWindow{From: at, To: at.Add(time.Minute)}
	recs, err := cl.Coordinator.Range(ctx, stcam.RectOf(0, 0, 1000, 1000), window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("range = %d records, want 2", len(recs))
	}
	nn, err := cl.Coordinator.KNN(ctx, stcam.Pt(0, 0), window, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 1 || nn[0].ObsID != 1 {
		t.Fatalf("knn = %+v", nn)
	}
}

// TestPublicAPISimulation drives the simulation substrate through the facade.
func TestPublicAPISimulation(t *testing.T) {
	world := stcam.RectOf(0, 0, 500, 500)
	w, err := stcam.NewWorld(stcam.WorldConfig{
		World:      world,
		NumObjects: 5,
		Model:      &stcam.RandomWaypoint{World: world, MinSpeed: 5, MaxSpeed: 10},
		Seed:       1,
		FeatureDim: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := stcam.GridLayout(stcam.LayoutConfig{World: world, Seed: 1}, 3, 3)
	det := stcam.NewDetector(stcam.DetectorConfig{Seed: 1, FeatureDim: 16})
	total := 0
	w.Run(10, net, det, func(_ int, obs []stcam.Detection) { total += len(obs) })
	if total == 0 {
		t.Error("simulation produced no detections")
	}
}
