package metrics

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 6 {
		t.Errorf("Value = %d, want 6", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("Value = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("Value = %d, want 6", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations: 1ms .. 100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	// Bucketed quantiles have bounded relative error (~19%).
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		relErr := math.Abs(float64(got-c.want)) / float64(c.want)
		if relErr > 0.25 {
			t.Errorf("Quantile(%v) = %v, want ≈ %v (relErr %.2f)", c.q, got, c.want, relErr)
		}
	}
	if got := h.Quantile(0); got != time.Millisecond {
		t.Errorf("Quantile(0) = %v, want exact min", got)
	}
	if got := h.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("Quantile(1) = %v, want exact max", got)
	}
	mean := h.Mean()
	if mean < 45*time.Millisecond || mean > 56*time.Millisecond {
		t.Errorf("Mean = %v, want ≈ 50.5ms", mean)
	}
}

func TestHistogramSnapshotMonotone(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if !(s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Errorf("quantiles not monotone: %v", s)
	}
	if s.Count != 1000 {
		t.Errorf("Count = %d", s.Count)
	}
}

// TestHistogramQuantileEnvelope is the regression property test for the
// percentile-clamping bug: on low-count histograms the bucket-midpoint
// estimate could fall outside [Min, Max] (Quantile never clamped; Snapshot
// clamped P50 only from below and P95/P99 only from above), so reported
// percentiles violated min ≤ p50 ≤ p95 ≤ p99 ≤ max.
func TestHistogramQuantileEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var h Histogram
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			// Log-uniform over ~1µs .. ~1000s to hit many buckets.
			d := time.Duration(math.Exp(rng.Float64()*20) * float64(time.Microsecond))
			h.Observe(d)
		}
		s := h.Snapshot()
		if !(s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
			t.Fatalf("trial %d (n=%d): percentiles escape envelope: %v", trial, n, s)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
			if got := h.Quantile(q); got < s.Min || got > s.Max {
				t.Fatalf("trial %d (n=%d): Quantile(%v) = %v outside [%v, %v]",
					trial, n, q, got, s.Min, s.Max)
			}
		}
	}
}

func TestHistogramSnapshotBuckets(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if len(s.Buckets) == 0 {
		t.Fatal("no buckets in snapshot")
	}
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Le <= s.Buckets[i-1].Le {
			t.Fatalf("bucket bounds not increasing: %v", s.Buckets)
		}
		if s.Buckets[i].Count < s.Buckets[i-1].Count {
			t.Fatalf("bucket counts not cumulative: %v", s.Buckets)
		}
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.Count != s.Count {
		t.Errorf("last bucket count = %d, want total %d", last.Count, s.Count)
	}
	if s.Sum != h.sum {
		t.Errorf("Sum = %v, want %v", s.Sum, h.sum)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Count() != 1 {
		t.Fatal("negative observation dropped")
	}
	if h.Quantile(1) != 0 {
		t.Errorf("negative clamped to %v, want 0", h.Quantile(1))
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(time.Hour * 100) // beyond the last bucket
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatal("observations lost")
	}
	if s.Max != 100*time.Hour {
		t.Errorf("Max = %v", s.Max)
	}
}

func TestHistogramTime(t *testing.T) {
	var h Histogram
	h.Time(func() { time.Sleep(time.Millisecond) })
	if h.Count() != 1 {
		t.Fatal("Time did not record")
	}
	if h.Quantile(1) < time.Millisecond {
		t.Errorf("timed duration %v < 1ms", h.Quantile(1))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 1; j <= 500; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 2000 {
		t.Errorf("Count = %d, want 2000", h.Count())
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Mark(10)
	m.Mark(20)
	if m.Count() != 30 {
		t.Errorf("Count = %d", m.Count())
	}
	if m.Rate() <= 0 {
		t.Error("Rate should be positive after marks")
	}
	m.Reset()
	if m.Count() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("ingest.events").Add(7)
	r.Counter("ingest.events").Add(3) // same counter
	r.Gauge("workers.live").Set(4)
	r.Histogram("query.latency").Observe(time.Millisecond)

	s := r.Snapshot()
	if s.Counters["ingest.events"] != 10 {
		t.Errorf("counter = %d", s.Counters["ingest.events"])
	}
	if s.Gauges["workers.live"] != 4 {
		t.Errorf("gauge = %d", s.Gauges["workers.live"])
	}
	if s.Histograms["query.latency"].Count != 1 {
		t.Errorf("histogram count = %d", s.Histograms["query.latency"].Count)
	}
	keys := s.Keys()
	if len(keys) != 3 {
		t.Fatalf("Keys = %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatal("keys not sorted")
		}
	}
}

func TestRegistryConcurrentCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 800 {
		t.Errorf("shared counter = %d, want 800", got)
	}
}
