// Package metrics provides the lightweight instrumentation used across the
// framework: atomic counters and gauges, a log-scale latency histogram with
// percentile queries, and throughput meters. All types are safe for
// concurrent use; reads take consistent snapshots.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; negative deltas are ignored to keep the
// counter monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records durations in exponential buckets (factor √2 starting at
// 1µs) and answers percentile queries from the bucket midpoints. Memory is
// constant; relative error per observation is bounded by the bucket factor
// (≈ ±19%), ample for latency reporting.
type Histogram struct {
	mu      sync.Mutex
	buckets [nBuckets]int64
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const (
	nBuckets    = 96
	histBase    = float64(time.Microsecond)
	histFactorL = 0.5 * math.Ln2 // log of √2
)

func bucketFor(d time.Duration) int {
	if d < time.Microsecond {
		return 0
	}
	i := int(math.Log(float64(d)/histBase)/histFactorL) + 1
	if i < 0 {
		i = 0
	}
	if i >= nBuckets {
		i = nBuckets - 1
	}
	return i
}

// bucketMid returns the representative duration for bucket i.
func bucketMid(i int) time.Duration {
	if i == 0 {
		return 500 * time.Nanosecond
	}
	lo := histBase * math.Exp(float64(i-1)*histFactorL)
	hi := histBase * math.Exp(float64(i)*histFactorL)
	return time.Duration((lo + hi) / 2)
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) time.Duration {
	if i == 0 {
		return time.Microsecond
	}
	return time.Duration(histBase * math.Exp(float64(i)*histFactorL))
}

// clampDur limits d to [lo, hi].
func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketFor(d)]++
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
}

// Time runs fn and records its duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Observe(time.Since(start))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Quantile returns the duration at quantile q in [0, 1] (0 when empty). The
// exact min and max are returned at the extremes.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			// Bucket midpoints can fall outside the observed range (a single
			// 1ms sample lands in a bucket whose midpoint is ~1.2ms), so the
			// estimate is clamped to the exact [min, max] envelope.
			return clampDur(bucketMid(i), h.min, h.max)
		}
	}
	return h.max
}

// Snapshot returns a consistent summary.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	buckets := h.buckets
	count, sum, min, max := h.count, h.sum, h.min, h.max
	h.mu.Unlock()

	s := HistSnapshot{Count: count, Min: min, Max: max, Sum: sum}
	if count == 0 {
		return s
	}
	s.Mean = sum / time.Duration(count)
	for _, q := range []struct {
		q   float64
		dst *time.Duration
	}{{0.5, &s.P50}, {0.95, &s.P95}, {0.99, &s.P99}} {
		target := int64(q.q * float64(count))
		if target >= count {
			target = count - 1
		}
		var cum int64
		for i, c := range buckets {
			cum += c
			if cum > target {
				// Clamp to the exact envelope on both sides: bucket midpoints
				// over- or under-shoot the true value by up to the bucket
				// factor, which would let percentiles escape [min, max] (and
				// violate P50 ≤ P95 ≤ P99) on low-count histograms.
				*q.dst = clampDur(bucketMid(i), min, max)
				break
			}
		}
	}
	var cum int64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		cum += c
		s.Buckets = append(s.Buckets, HistBucket{Le: bucketUpper(i), Count: cum})
	}
	return s
}

// HistBucket is one non-empty exponential bucket: Count observations were
// ≤ Le, cumulatively (Prometheus `le` semantics).
type HistBucket struct {
	Le    time.Duration
	Count int64
}

// HistSnapshot is a point-in-time histogram summary.
type HistSnapshot struct {
	Count          int64
	Sum            time.Duration
	Min, Max, Mean time.Duration
	P50, P95, P99  time.Duration
	// Buckets holds the non-empty buckets with cumulative counts,
	// in increasing Le order. The last entry's Count equals Count.
	Buckets []HistBucket
}

// String implements fmt.Stringer.
func (s HistSnapshot) String() string {
	return fmt.Sprintf("n=%d min=%v p50=%v p95=%v p99=%v max=%v mean=%v",
		s.Count, s.Min, s.P50, s.P95, s.P99, s.Max, s.Mean)
}

// Meter measures event throughput over a window.
type Meter struct {
	mu    sync.Mutex
	count int64
	start time.Time
}

// NewMeter returns a meter whose window starts now.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// Mark records n events.
func (m *Meter) Mark(n int64) {
	m.mu.Lock()
	m.count += n
	m.mu.Unlock()
}

// Rate returns events per second since the window start (or since Reset).
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.count) / el
}

// Count returns the events in the current window.
func (m *Meter) Count() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count
}

// Reset zeroes the meter and restarts the window.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.count = 0
	m.start = time.Now()
	m.mu.Unlock()
}

// Registry is a named collection of metrics, used by workers to expose their
// instrumentation to the coordinator's stats endpoint.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns all counter and gauge values plus histogram summaries,
// with deterministic key order for stable output.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := RegistrySnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.histograms)),
	}
	for k, c := range r.counters {
		out.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		out.Gauges[k] = g.Value()
	}
	for k, h := range r.histograms {
		out.Histograms[k] = h.Snapshot()
	}
	return out
}

// RegistrySnapshot is a point-in-time view of a Registry.
type RegistrySnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistSnapshot
}

// Keys returns the sorted union of metric names, for deterministic printing.
func (s RegistrySnapshot) Keys() []string {
	keys := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	for k := range s.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
