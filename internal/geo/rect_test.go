package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectOfNormalizes(t *testing.T) {
	r := RectOf(5, 7, 1, 2)
	want := Rect{Min: Pt(1, 2), Max: Pt(5, 7)}
	if r != want {
		t.Errorf("RectOf = %v, want %v", r, want)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectOf(0, 0, 4, 2)
	if got := r.Width(); got != 4 {
		t.Errorf("Width = %v", got)
	}
	if got := r.Height(); got != 2 {
		t.Errorf("Height = %v", got)
	}
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %v", got)
	}
	if got := r.Perimeter(); got != 6 {
		t.Errorf("Perimeter = %v", got)
	}
	if got := r.Center(); got != Pt(2, 1) {
		t.Errorf("Center = %v", got)
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	if e.Area() != 0 || e.Width() != 0 || e.Height() != 0 {
		t.Error("empty rect has nonzero measure")
	}
	r := RectOf(1, 1, 2, 2)
	if e.Union(r) != r || r.Union(e) != r {
		t.Error("EmptyRect is not the identity for Union")
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Error("empty rect intersects something")
	}
	if e.Contains(Pt(0, 0)) {
		t.Error("empty rect contains a point")
	}
}

func TestRectContains(t *testing.T) {
	r := RectOf(0, 0, 10, 10)
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(5, 5), true},
		{Pt(0, 0), true},   // corner inclusive
		{Pt(10, 10), true}, // corner inclusive
		{Pt(10, 5), true},  // edge inclusive
		{Pt(-0.001, 5), false},
		{Pt(5, 10.001), false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := RectOf(0, 0, 4, 4)
	b := RectOf(2, 2, 6, 6)
	if !a.Intersects(b) {
		t.Fatal("overlapping rects do not intersect")
	}
	got := a.Intersect(b)
	if want := RectOf(2, 2, 4, 4); got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	// Edge-touching rectangles intersect (closed boundaries).
	c := RectOf(4, 0, 8, 4)
	if !a.Intersects(c) {
		t.Error("edge-touching rects should intersect")
	}
	// Disjoint.
	d := RectOf(5, 5, 6, 6)
	if a.Intersects(d) {
		t.Error("disjoint rects intersect")
	}
	if !a.Intersect(d).IsEmpty() {
		t.Error("intersection of disjoint rects not empty")
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := RectOf(0, 0, 10, 10)
	if !outer.ContainsRect(RectOf(1, 1, 9, 9)) {
		t.Error("inner rect not contained")
	}
	if !outer.ContainsRect(outer) {
		t.Error("rect does not contain itself")
	}
	if outer.ContainsRect(RectOf(5, 5, 11, 9)) {
		t.Error("overflowing rect contained")
	}
	if !outer.ContainsRect(EmptyRect()) {
		t.Error("empty rect not contained")
	}
}

func TestRectExpand(t *testing.T) {
	r := RectOf(2, 2, 4, 4).Expand(1)
	if want := RectOf(1, 1, 5, 5); r != want {
		t.Errorf("Expand(1) = %v, want %v", r, want)
	}
	if !RectOf(2, 2, 4, 4).Expand(-2).IsEmpty() {
		t.Error("over-shrunk rect should be empty")
	}
}

func TestRectDistTo(t *testing.T) {
	r := RectOf(0, 0, 2, 2)
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(1, 1), 0},
		{Pt(2, 2), 0},
		{Pt(5, 2), 3},
		{Pt(1, -4), 4},
		{Pt(5, 6), 5}, // 3-4-5 from corner (2,2)
	}
	for _, tt := range tests {
		if got := r.DistTo(tt.p); !almostEq(got, tt.want) {
			t.Errorf("DistTo(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsInf(EmptyRect().Dist2To(Pt(0, 0)), 1) {
		t.Error("Dist2To on empty rect should be +inf")
	}
}

func TestRectQuadrants(t *testing.T) {
	r := RectOf(0, 0, 4, 4)
	qs := r.Quadrants()
	var total float64
	for _, q := range qs {
		total += q.Area()
		if !r.ContainsRect(q) {
			t.Errorf("quadrant %v not inside parent", q)
		}
	}
	if !almostEq(total, r.Area()) {
		t.Errorf("quadrant areas sum to %v, want %v", total, r.Area())
	}
	if qs[0].Max != r.Center() || qs[3].Min != r.Center() {
		t.Error("SW/NE quadrants not anchored at center")
	}
}

func randRect(rng *rand.Rand) Rect {
	return RectOf(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
}

// Property: Union contains both operands; Intersect is contained in both.
func TestPropRectUnionIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		a, b := randRect(rng), randRect(rng)
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			t.Fatalf("union %v does not contain %v and %v", u, a, b)
		}
		x := a.Intersect(b)
		if !a.ContainsRect(x) || !b.ContainsRect(x) {
			t.Fatalf("intersection %v not inside %v and %v", x, a, b)
		}
		if a.Intersects(b) != !x.IsEmpty() {
			t.Fatalf("Intersects(%v,%v) inconsistent with Intersect", a, b)
		}
	}
}

// Property: Contains(p) iff Dist2To(p) == 0.
func TestPropRectContainsDist(t *testing.T) {
	f := func(x0, y0, x1, y1, px, py float64) bool {
		for _, v := range []float64{x0, y0, x1, y1, px, py} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		r := RectOf(math.Mod(x0, 100), math.Mod(y0, 100), math.Mod(x1, 100), math.Mod(y1, 100))
		p := Pt(math.Mod(px, 200), math.Mod(py, 200))
		return r.Contains(p) == (r.Dist2To(p) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
