package geo

import (
	"math"
	"sort"
)

// Polygon is a simple polygon given by its vertices in order (either
// winding). The closing edge from the last vertex back to the first is
// implicit. A polygon with fewer than three vertices is degenerate: it has
// zero area and contains no points.
type Polygon []Point

// Area returns the unsigned area of the polygon (shoelace formula).
func (pg Polygon) Area() float64 { return math.Abs(pg.SignedArea()) }

// SignedArea returns the signed area: positive when the vertices wind
// counter-clockwise.
func (pg Polygon) SignedArea() float64 {
	if len(pg) < 3 {
		return 0
	}
	var sum float64
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		sum += p.Cross(q)
	}
	return sum / 2
}

// Centroid returns the area centroid of the polygon. For degenerate polygons
// it falls back to the vertex mean.
func (pg Polygon) Centroid() Point {
	a := pg.SignedArea()
	if len(pg) == 0 {
		return Point{}
	}
	if math.Abs(a) < 1e-12 {
		var c Point
		for _, p := range pg {
			c = c.Add(p)
		}
		return c.Scale(1 / float64(len(pg)))
	}
	var cx, cy float64
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		w := p.Cross(q)
		cx += (p.X + q.X) * w
		cy += (p.Y + q.Y) * w
	}
	return Point{cx / (6 * a), cy / (6 * a)}
}

// Bounds returns the axis-aligned bounding rectangle of the polygon.
func (pg Polygon) Bounds() Rect {
	out := EmptyRect()
	for _, p := range pg {
		out = out.UnionPoint(p)
	}
	return out
}

// Contains reports whether p is inside the polygon, using the ray-casting
// parity rule. Points exactly on an edge may report either side; callers that
// need edge tolerance should expand the polygon first.
func (pg Polygon) Contains(p Point) bool {
	if len(pg) < 3 {
		return false
	}
	in := false
	j := len(pg) - 1
	for i := 0; i < len(pg); i++ {
		a, b := pg[i], pg[j]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xAtY := a.X + (p.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if p.X < xAtY {
				in = !in
			}
		}
		j = i
	}
	return in
}

// IntersectsRect reports whether the polygon and rectangle share any point.
func (pg Polygon) IntersectsRect(r Rect) bool {
	if len(pg) < 3 || r.IsEmpty() {
		return false
	}
	if !pg.Bounds().Intersects(r) {
		return false
	}
	// Any polygon vertex inside the rect, or rect corner inside the polygon.
	for _, p := range pg {
		if r.Contains(p) {
			return true
		}
	}
	for _, c := range r.Corners() {
		if pg.Contains(c) {
			return true
		}
	}
	// Finally, any edge crossing.
	rc := r.Corners()
	for i := range pg {
		a, b := pg[i], pg[(i+1)%len(pg)]
		for j := 0; j < 4; j++ {
			if SegmentsIntersect(a, b, rc[j], rc[(j+1)%4]) {
				return true
			}
		}
	}
	return false
}

// IntersectsPolygon reports whether two polygons share any point.
func (pg Polygon) IntersectsPolygon(other Polygon) bool {
	if len(pg) < 3 || len(other) < 3 {
		return false
	}
	if !pg.Bounds().Intersects(other.Bounds()) {
		return false
	}
	if other.Contains(pg[0]) || pg.Contains(other[0]) {
		return true
	}
	for i := range pg {
		a, b := pg[i], pg[(i+1)%len(pg)]
		for j := range other {
			c, d := other[j], other[(j+1)%len(other)]
			if SegmentsIntersect(a, b, c, d) {
				return true
			}
		}
	}
	return false
}

// Translate returns a copy of the polygon shifted by d.
func (pg Polygon) Translate(d Point) Polygon {
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[i] = p.Add(d)
	}
	return out
}

// orient classifies the turn a→b→c: >0 counter-clockwise, <0 clockwise,
// 0 collinear (within epsilon).
func orient(a, b, c Point) int {
	v := b.Sub(a).Cross(c.Sub(a))
	const eps = 1e-12
	switch {
	case v > eps:
		return 1
	case v < -eps:
		return -1
	}
	return 0
}

// onSegment reports whether collinear point p lies on segment ab.
func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X)-1e-12 <= p.X && p.X <= math.Max(a.X, b.X)+1e-12 &&
		math.Min(a.Y, b.Y)-1e-12 <= p.Y && p.Y <= math.Max(a.Y, b.Y)+1e-12
}

// SegmentsIntersect reports whether the closed segments ab and cd share a
// point, including touching endpoints and collinear overlap.
func SegmentsIntersect(a, b, c, d Point) bool {
	o1 := orient(a, b, c)
	o2 := orient(a, b, d)
	o3 := orient(c, d, a)
	o4 := orient(c, d, b)
	if o1 != o2 && o3 != o4 {
		return true
	}
	switch {
	case o1 == 0 && onSegment(a, b, c):
		return true
	case o2 == 0 && onSegment(a, b, d):
		return true
	case o3 == 0 && onSegment(c, d, a):
		return true
	case o4 == 0 && onSegment(c, d, b):
		return true
	}
	return false
}

// ConvexHull returns the convex hull of the given points in counter-clockwise
// order (Andrew's monotone chain). Duplicates and collinear boundary points
// are dropped. Inputs with fewer than three distinct points return what
// exists.
func ConvexHull(pts []Point) Polygon {
	if len(pts) == 0 {
		return nil
	}
	ps := make([]Point, len(pts))
	copy(ps, pts)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Deduplicate.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) < 3 {
		return Polygon(ps)
	}
	hull := make([]Point, 0, 2*len(ps))
	// Lower hull.
	for _, p := range ps {
		for len(hull) >= 2 && orient(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(ps) - 2; i >= 0; i-- {
		p := ps[i]
		for len(hull) >= lower && orient(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return Polygon(hull[:len(hull)-1])
}

// Sector returns a polygon approximating the circular sector with the given
// apex, central direction (radians), half-angle (radians), and radius. The
// arc is approximated with segs chord segments (segs < 1 is treated as 1).
// This is the canonical camera field-of-view shape.
func Sector(apex Point, direction, halfAngle, radius float64, segs int) Polygon {
	if segs < 1 {
		segs = 1
	}
	if halfAngle <= 0 || radius <= 0 {
		return nil
	}
	out := make(Polygon, 0, segs+2)
	out = append(out, apex)
	start := direction - halfAngle
	step := 2 * halfAngle / float64(segs)
	for i := 0; i <= segs; i++ {
		a := start + float64(i)*step
		sin, cos := math.Sincos(a)
		out = append(out, Point{apex.X + radius*cos, apex.Y + radius*sin})
	}
	return out
}

// Circle returns a regular polygon with segs vertices approximating the
// circle of the given center and radius.
func Circle(center Point, radius float64, segs int) Polygon {
	if segs < 3 {
		segs = 3
	}
	out := make(Polygon, segs)
	for i := range out {
		a := 2 * math.Pi * float64(i) / float64(segs)
		sin, cos := math.Sincos(a)
		out[i] = Point{center.X + radius*cos, center.Y + radius*sin}
	}
	return out
}
