package geo

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)

func lineTraj(n int, step time.Duration, speed float64) *Trajectory {
	tr := &Trajectory{}
	for i := 0; i < n; i++ {
		dt := time.Duration(i) * step
		tr.Append(t0.Add(dt), Pt(speed*dt.Seconds(), 0))
	}
	return tr
}

func TestTrajectoryAppendOrdering(t *testing.T) {
	tr := &Trajectory{}
	tr.Append(t0.Add(2*time.Second), Pt(2, 0))
	tr.Append(t0, Pt(0, 0))
	tr.Append(t0.Add(time.Second), Pt(1, 0))
	tr.Append(t0.Add(3*time.Second), Pt(3, 0))
	for i := 1; i < tr.Len(); i++ {
		if tr.Points[i].T.Before(tr.Points[i-1].T) {
			t.Fatalf("points out of order at %d: %v", i, tr.Points)
		}
	}
	if tr.Points[0].P != Pt(0, 0) || tr.Points[3].P != Pt(3, 0) {
		t.Errorf("unexpected endpoints: %v", tr.Points)
	}
}

func TestTrajectoryAt(t *testing.T) {
	tr := lineTraj(11, time.Second, 2) // 2 m/s for 10 s
	tests := []struct {
		at   time.Duration
		want Point
	}{
		{0, Pt(0, 0)},
		{5 * time.Second, Pt(10, 0)},
		{2500 * time.Millisecond, Pt(5, 0)},
		{10 * time.Second, Pt(20, 0)},
		{-time.Second, Pt(0, 0)},      // clamp before start
		{20 * time.Second, Pt(20, 0)}, // clamp after end
	}
	for _, tt := range tests {
		got, err := tr.At(t0.Add(tt.at))
		if err != nil {
			t.Fatalf("At(%v): %v", tt.at, err)
		}
		if got.Dist(tt.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
	var empty Trajectory
	if _, err := empty.At(t0); err != ErrEmptyTrajectory {
		t.Errorf("At on empty = %v, want ErrEmptyTrajectory", err)
	}
}

func TestTrajectoryLengthSpeed(t *testing.T) {
	tr := lineTraj(11, time.Second, 3)
	if got := tr.Length(); !almostEq(got, 30) {
		t.Errorf("Length = %v, want 30", got)
	}
	if got := tr.Duration(); got != 10*time.Second {
		t.Errorf("Duration = %v, want 10s", got)
	}
	if got := tr.AvgSpeed(); !almostEq(got, 3) {
		t.Errorf("AvgSpeed = %v, want 3", got)
	}
	var empty Trajectory
	if empty.AvgSpeed() != 0 || empty.Length() != 0 || empty.Duration() != 0 {
		t.Error("empty trajectory should have zero measures")
	}
}

func TestTrajectorySlice(t *testing.T) {
	tr := lineTraj(11, time.Second, 1)
	s := tr.Slice(t0.Add(2500*time.Millisecond), t0.Add(7500*time.Millisecond))
	start, _ := s.Start()
	end, _ := s.End()
	if !start.Equal(t0.Add(2500 * time.Millisecond)) {
		t.Errorf("slice start = %v", start)
	}
	if !end.Equal(t0.Add(7500 * time.Millisecond)) {
		t.Errorf("slice end = %v", end)
	}
	p0, _ := s.At(start)
	if p0.Dist(Pt(2.5, 0)) > 1e-9 {
		t.Errorf("interpolated slice start position = %v", p0)
	}
	// Window fully outside.
	if out := tr.Slice(t0.Add(time.Hour), t0.Add(2*time.Hour)); out.Len() != 0 {
		t.Errorf("out-of-range slice has %d points", out.Len())
	}
	// Inverted window.
	if out := tr.Slice(t0.Add(5*time.Second), t0); out.Len() != 0 {
		t.Errorf("inverted slice has %d points", out.Len())
	}
}

func TestTrajectoryResample(t *testing.T) {
	tr := lineTraj(11, time.Second, 1)
	rs, err := tr.Resample(2500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Samples at 0, 2.5, 5, 7.5, 10 → 5 points.
	if rs.Len() != 5 {
		t.Fatalf("resampled to %d points, want 5", rs.Len())
	}
	for _, tp := range rs.Points {
		wantX := tp.T.Sub(t0).Seconds()
		if math.Abs(tp.P.X-wantX) > 1e-9 {
			t.Errorf("resampled point at %v has X=%v, want %v", tp.T, tp.P.X, wantX)
		}
	}
	if _, err := tr.Resample(0); err == nil {
		t.Error("Resample(0) should fail")
	}
	var empty Trajectory
	if _, err := empty.Resample(time.Second); err != ErrEmptyTrajectory {
		t.Errorf("Resample on empty = %v", err)
	}
}

func TestTrajectorySimplify(t *testing.T) {
	// A path along a straight line with tiny jitter should collapse to its
	// endpoints.
	tr := &Trajectory{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i <= 100; i++ {
		tr.Append(t0.Add(time.Duration(i)*time.Second), Pt(float64(i), rng.Float64()*0.01))
	}
	s := tr.Simplify(0.5)
	if s.Len() > 3 {
		t.Errorf("simplified straight path has %d points, want <= 3", s.Len())
	}
	if s.Points[0] != tr.Points[0] || s.Points[s.Len()-1] != tr.Points[tr.Len()-1] {
		t.Error("simplify must keep endpoints")
	}
	// A right-angle corner must be preserved.
	corner := &Trajectory{}
	for i := 0; i <= 10; i++ {
		corner.Append(t0.Add(time.Duration(i)*time.Second), Pt(float64(i), 0))
	}
	for i := 1; i <= 10; i++ {
		corner.Append(t0.Add(time.Duration(10+i)*time.Second), Pt(10, float64(i)))
	}
	sc := corner.Simplify(0.5)
	foundCorner := false
	for _, tp := range sc.Points {
		if tp.P.Dist(Pt(10, 0)) < 1e-9 {
			foundCorner = true
		}
	}
	if !foundCorner {
		t.Error("simplify dropped the corner vertex")
	}
}

func TestSyncDist(t *testing.T) {
	a := lineTraj(11, time.Second, 1)
	b := &Trajectory{}
	for i := 0; i <= 10; i++ {
		b.Append(t0.Add(time.Duration(i)*time.Second), Pt(float64(i), 4))
	}
	if d := SyncDist(a, b, time.Second); !almostEq(d, 4) {
		t.Errorf("SyncDist parallel paths = %v, want 4", d)
	}
	if d := SyncDist(a, a, time.Second); !almostEq(d, 0) {
		t.Errorf("SyncDist self = %v, want 0", d)
	}
	// Non-overlapping windows.
	c := &Trajectory{}
	c.Append(t0.Add(time.Hour), Pt(0, 0))
	c.Append(t0.Add(2*time.Hour), Pt(1, 0))
	if d := SyncDist(a, c, time.Second); !math.IsInf(d, 1) {
		t.Errorf("SyncDist disjoint windows = %v, want +inf", d)
	}
}

func TestDTWDist(t *testing.T) {
	a := lineTraj(11, time.Second, 1)
	// Same spatial path, different sampling rate and time offset.
	b := &Trajectory{}
	for i := 0; i <= 20; i++ {
		b.Append(t0.Add(time.Hour+time.Duration(i)*500*time.Millisecond), Pt(float64(i)/2, 0))
	}
	// Intermediate samples of b pair with the nearest a sample at ~0.5 m, so
	// the normalized distance is small but not zero.
	if d := DTWDist(a, b); d > 0.5 {
		t.Errorf("DTW of same path at different rates = %v, want < 0.5", d)
	}
	// Clearly different path.
	c := &Trajectory{}
	for i := 0; i <= 10; i++ {
		c.Append(t0.Add(time.Duration(i)*time.Second), Pt(float64(i), 50))
	}
	if d := DTWDist(a, c); d < 10 {
		t.Errorf("DTW of distant paths = %v, want >= 10", d)
	}
	var empty Trajectory
	if d := DTWDist(a, &empty); !math.IsInf(d, 1) {
		t.Errorf("DTW with empty = %v, want +inf", d)
	}
}

func TestTrajectoryBounds(t *testing.T) {
	tr := &Trajectory{}
	tr.Append(t0, Pt(1, 2))
	tr.Append(t0.Add(time.Second), Pt(-3, 7))
	tr.Append(t0.Add(2*time.Second), Pt(4, 0))
	if got, want := tr.Bounds(), RectOf(-3, 0, 4, 7); got != want {
		t.Errorf("Bounds = %v, want %v", got, want)
	}
}
