package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Point
		want Point
	}{
		{"add", Pt(1, 2).Add(Pt(3, -1)), Pt(4, 1)},
		{"sub", Pt(1, 2).Sub(Pt(3, -1)), Pt(-2, 3)},
		{"scale", Pt(1.5, -2).Scale(2), Pt(3, -4)},
		{"lerp-mid", Pt(0, 0).Lerp(Pt(10, 20), 0.5), Pt(5, 10)},
		{"lerp-ends", Pt(2, 3).Lerp(Pt(7, 9), 0), Pt(2, 3)},
		{"unit-zero", Pt(0, 0).Unit(), Pt(0, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got != tt.want {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestPointDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); !almostEq(d, 5) {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Pt(1, 1).Dist2(Pt(4, 5)); !almostEq(d, 25) {
		t.Errorf("Dist2 = %v, want 25", d)
	}
}

func TestPointRotate(t *testing.T) {
	p := Pt(1, 0).Rotate(math.Pi / 2)
	if !almostEq(p.X, 0) || !almostEq(p.Y, 1) {
		t.Errorf("Rotate(pi/2) = %v, want (0,1)", p)
	}
	p = Pt(2, 3).Rotate(2 * math.Pi)
	if !almostEq(p.X, 2) || !almostEq(p.Y, 3) {
		t.Errorf("Rotate(2pi) = %v, want (2,3)", p)
	}
}

func TestNormalizeAngle(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{math.Pi / 2, math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
		{-math.Pi / 2, -math.Pi / 2},
	}
	for _, tt := range tests {
		if got := NormalizeAngle(tt.in); !almostEq(got, tt.want) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	if d := AngleDiff(0.1, -0.1); !almostEq(d, 0.2) {
		t.Errorf("AngleDiff = %v, want 0.2", d)
	}
	// Wrap-around: 179° vs -179° should be 2° apart, not 358°.
	a, b := math.Pi-0.01, -math.Pi+0.01
	if d := math.Abs(AngleDiff(a, b)); !almostEq(d, 0.02) {
		t.Errorf("AngleDiff across wrap = %v, want 0.02", d)
	}
}

func TestIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	for _, p := range []Point{
		{math.NaN(), 0}, {0, math.NaN()}, {math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if p.IsFinite() {
			t.Errorf("%v reported finite", p)
		}
	}
}

// Property: rotating by theta then -theta is the identity (within epsilon).
func TestPropRotateRoundTrip(t *testing.T) {
	f := func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) ||
			math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		p := Pt(x, y)
		q := p.Rotate(theta).Rotate(-theta)
		return p.Dist(q) < 1e-6*(1+p.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Dist.
func TestPropTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		for _, v := range []float64{ax, ay, bx, by, cx, cy} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a := Pt(math.Mod(ax, 1e6), math.Mod(ay, 1e6))
		b := Pt(math.Mod(bx, 1e6), math.Mod(by, 1e6))
		c := Pt(math.Mod(cx, 1e6), math.Mod(cy, 1e6))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dist2 equals Dist squared.
func TestPropDist2(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		for _, v := range []float64{ax, ay, bx, by} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a := Pt(math.Mod(ax, 1e4), math.Mod(ay, 1e4))
		b := Pt(math.Mod(bx, 1e4), math.Mod(by, 1e4))
		d := a.Dist(b)
		return math.Abs(a.Dist2(b)-d*d) < 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
