package geo

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// TimedPoint is a position observed (or interpolated) at an instant.
type TimedPoint struct {
	T time.Time
	P Point
}

// Trajectory is a time-ordered sequence of positions for a single object.
// Methods assume (and the framework maintains) non-decreasing timestamps;
// Sort restores the invariant after bulk loads.
type Trajectory struct {
	Points []TimedPoint
}

// ErrEmptyTrajectory is returned by operations that need at least one sample.
var ErrEmptyTrajectory = errors.New("geo: empty trajectory")

// Len returns the number of samples.
func (tr *Trajectory) Len() int { return len(tr.Points) }

// Append adds a sample, keeping the time ordering by inserting in place if
// the new sample is older than the tail (rare, but out-of-order delivery
// happens in a distributed ingest path).
func (tr *Trajectory) Append(t time.Time, p Point) {
	tp := TimedPoint{T: t, P: p}
	n := len(tr.Points)
	if n == 0 || !t.Before(tr.Points[n-1].T) {
		tr.Points = append(tr.Points, tp)
		return
	}
	i := sort.Search(n, func(i int) bool { return tr.Points[i].T.After(t) })
	tr.Points = append(tr.Points, TimedPoint{})
	copy(tr.Points[i+1:], tr.Points[i:])
	tr.Points[i] = tp
}

// Sort orders samples by time. It is only needed after direct manipulation of
// Points.
func (tr *Trajectory) Sort() {
	sort.SliceStable(tr.Points, func(i, j int) bool { return tr.Points[i].T.Before(tr.Points[j].T) })
}

// Start returns the first sample time.
func (tr *Trajectory) Start() (time.Time, error) {
	if len(tr.Points) == 0 {
		return time.Time{}, ErrEmptyTrajectory
	}
	return tr.Points[0].T, nil
}

// End returns the last sample time.
func (tr *Trajectory) End() (time.Time, error) {
	if len(tr.Points) == 0 {
		return time.Time{}, ErrEmptyTrajectory
	}
	return tr.Points[len(tr.Points)-1].T, nil
}

// At returns the position at time t, linearly interpolating between the
// surrounding samples. Times outside the sampled range clamp to the first or
// last position.
func (tr *Trajectory) At(t time.Time) (Point, error) {
	n := len(tr.Points)
	if n == 0 {
		return Point{}, ErrEmptyTrajectory
	}
	if !t.After(tr.Points[0].T) {
		return tr.Points[0].P, nil
	}
	if !t.Before(tr.Points[n-1].T) {
		return tr.Points[n-1].P, nil
	}
	i := sort.Search(n, func(i int) bool { return tr.Points[i].T.After(t) })
	a, b := tr.Points[i-1], tr.Points[i]
	span := b.T.Sub(a.T)
	if span <= 0 {
		return b.P, nil
	}
	frac := float64(t.Sub(a.T)) / float64(span)
	return a.P.Lerp(b.P, frac), nil
}

// Slice returns the samples with t in [from, to] as a new trajectory. The
// boundary positions are interpolated when the window cuts between samples so
// the result starts exactly at from and ends exactly at to (when the source
// covers them).
func (tr *Trajectory) Slice(from, to time.Time) Trajectory {
	var out Trajectory
	if len(tr.Points) == 0 || to.Before(from) {
		return out
	}
	start, _ := tr.Start()
	end, _ := tr.End()
	if to.Before(start) || from.After(end) {
		return out
	}
	if from.After(start) {
		p, _ := tr.At(from)
		out.Points = append(out.Points, TimedPoint{T: from, P: p})
	}
	for _, tp := range tr.Points {
		if !tp.T.Before(from) && !tp.T.After(to) {
			out.Points = append(out.Points, tp)
		}
	}
	if to.Before(end) {
		p, _ := tr.At(to)
		if n := len(out.Points); n == 0 || out.Points[n-1].T.Before(to) {
			out.Points = append(out.Points, TimedPoint{T: to, P: p})
		}
	}
	return out
}

// Length returns the total path length in meters.
func (tr *Trajectory) Length() float64 {
	var sum float64
	for i := 1; i < len(tr.Points); i++ {
		sum += tr.Points[i].P.Dist(tr.Points[i-1].P)
	}
	return sum
}

// Duration returns the time covered by the trajectory.
func (tr *Trajectory) Duration() time.Duration {
	if len(tr.Points) < 2 {
		return 0
	}
	return tr.Points[len(tr.Points)-1].T.Sub(tr.Points[0].T)
}

// AvgSpeed returns the average speed in meters/second over the whole
// trajectory (0 when the duration is zero).
func (tr *Trajectory) AvgSpeed() float64 {
	d := tr.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return tr.Length() / d
}

// Bounds returns the spatial bounding rectangle of the trajectory.
func (tr *Trajectory) Bounds() Rect {
	out := EmptyRect()
	for _, tp := range tr.Points {
		out = out.UnionPoint(tp.P)
	}
	return out
}

// Resample returns the trajectory sampled at the fixed interval step,
// starting at the first sample time. The last instant is always included.
func (tr *Trajectory) Resample(step time.Duration) (Trajectory, error) {
	if len(tr.Points) == 0 {
		return Trajectory{}, ErrEmptyTrajectory
	}
	if step <= 0 {
		return Trajectory{}, fmt.Errorf("geo: non-positive resample step %v", step)
	}
	start := tr.Points[0].T
	end := tr.Points[len(tr.Points)-1].T
	var out Trajectory
	for t := start; !t.After(end); t = t.Add(step) {
		p, _ := tr.At(t)
		out.Points = append(out.Points, TimedPoint{T: t, P: p})
	}
	if n := len(out.Points); n == 0 || out.Points[n-1].T.Before(end) {
		out.Points = append(out.Points, tr.Points[len(tr.Points)-1])
	}
	return out, nil
}

// Simplify returns a trajectory with redundant samples removed using
// Douglas-Peucker on the spatial path with the given tolerance in meters.
// Timestamps of retained samples are preserved.
func (tr *Trajectory) Simplify(tolerance float64) Trajectory {
	n := len(tr.Points)
	if n <= 2 || tolerance <= 0 {
		out := Trajectory{Points: make([]TimedPoint, n)}
		copy(out.Points, tr.Points)
		return out
	}
	keep := make([]bool, n)
	keep[0], keep[n-1] = true, true
	type span struct{ lo, hi int }
	stack := []span{{0, n - 1}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.hi-s.lo < 2 {
			continue
		}
		a, b := tr.Points[s.lo].P, tr.Points[s.hi].P
		maxD, maxI := -1.0, -1
		for i := s.lo + 1; i < s.hi; i++ {
			d := pointSegDist(tr.Points[i].P, a, b)
			if d > maxD {
				maxD, maxI = d, i
			}
		}
		if maxD > tolerance {
			keep[maxI] = true
			stack = append(stack, span{s.lo, maxI}, span{maxI, s.hi})
		}
	}
	var out Trajectory
	for i, k := range keep {
		if k {
			out.Points = append(out.Points, tr.Points[i])
		}
	}
	return out
}

// pointSegDist returns the distance from p to segment ab.
func pointSegDist(p, a, b Point) float64 {
	ab := b.Sub(a)
	den := ab.Dot(ab)
	if den == 0 {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / den
	t = math.Max(0, math.Min(1, t))
	return p.Dist(a.Add(ab.Scale(t)))
}

// SyncDist returns the time-synchronized Euclidean distance between two
// trajectories over their overlapping time window, sampled every step. It is
// the mean distance between the interpolated positions; math.Inf(1) when the
// windows do not overlap or either trajectory is empty.
func SyncDist(a, b *Trajectory, step time.Duration) float64 {
	if a.Len() == 0 || b.Len() == 0 || step <= 0 {
		return math.Inf(1)
	}
	as, _ := a.Start()
	bs, _ := b.Start()
	ae, _ := a.End()
	be, _ := b.End()
	from, to := as, ae
	if bs.After(from) {
		from = bs
	}
	if be.Before(to) {
		to = be
	}
	if to.Before(from) {
		return math.Inf(1)
	}
	var sum float64
	var n int
	for t := from; !t.After(to); t = t.Add(step) {
		pa, _ := a.At(t)
		pb, _ := b.At(t)
		sum += pa.Dist(pb)
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// DTWDist returns the dynamic-time-warping distance between the spatial paths
// of two trajectories, normalized by the warping path length. It tolerates
// different sampling rates and time shifts, and is the matcher used when
// associating trajectory fragments across cameras.
func DTWDist(a, b *Trajectory) float64 {
	n, m := a.Len(), b.Len()
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = math.Inf(1)
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		cur[0] = math.Inf(1)
		for j := 1; j <= m; j++ {
			d := a.Points[i-1].P.Dist(b.Points[j-1].P)
			cur[j] = d + math.Min(prev[j], math.Min(cur[j-1], prev[j-1]))
		}
		prev, cur = cur, prev
	}
	return prev[m] / float64(n+m)
}
