// Package geo provides the planar geometry primitives used throughout the
// framework: points, rectangles, polygons, field-of-view sectors, and
// timestamped trajectories.
//
// The world model is a flat 2-D plane measured in meters. Camera networks at
// the scale this framework targets (a campus or a city district) are small
// enough that a local tangent-plane projection is accurate to well under a
// meter, so no spherical geometry is needed.
package geo

import (
	"fmt"
	"math"
)

// Point is a location on the 2-D plane, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. It avoids the
// square root and is the preferred comparison key in hot paths such as kNN.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp returns the linear interpolation between p and q at parameter t in
// [0, 1]; t outside that range extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Rotate returns p rotated by theta radians counter-clockwise about the
// origin.
func (p Point) Rotate(theta float64) Point {
	sin, cos := math.Sincos(theta)
	return Point{p.X*cos - p.Y*sin, p.X*sin + p.Y*cos}
}

// Angle returns the angle of the vector p in radians in (-pi, pi].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// Unit returns the unit vector in the direction of p. The zero vector is
// returned unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return p
	}
	return p.Scale(1 / n)
}

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// NormalizeAngle maps an angle in radians to the canonical range (-pi, pi].
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a <= -math.Pi {
		a += 2 * math.Pi
	} else if a > math.Pi {
		a -= 2 * math.Pi
	}
	return a
}

// AngleDiff returns the smallest signed difference a-b between two angles,
// normalized to (-pi, pi].
func AngleDiff(a, b float64) float64 { return NormalizeAngle(a - b) }
