package geo

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max the
// upper-right corner; a rectangle with Min.X > Max.X or Min.Y > Max.Y is
// empty. Boundaries are inclusive: Contains reports true for points on the
// edge, and two rectangles that share only an edge intersect.
type Rect struct {
	Min, Max Point
}

// RectOf returns the rectangle with the given corner coordinates, normalizing
// the order so that Min ≤ Max on both axes.
func RectOf(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Point{x0, y0}, Max: Point{x1, y1}}
}

// RectAround returns the square rectangle centered at c with half-width r.
func RectAround(c Point, r float64) Rect {
	return Rect{Min: Point{c.X - r, c.Y - r}, Max: Point{c.X + r, c.Y + r}}
}

// EmptyRect returns the canonical empty rectangle, which acts as the identity
// for Union.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Width returns the extent along the x axis (0 for empty rectangles).
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.X - r.Min.X
}

// Height returns the extent along the y axis (0 for empty rectangles).
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.Y - r.Min.Y
}

// Area returns the area of the rectangle.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Perimeter returns half the perimeter (the R-tree "margin" measure).
func (r Rect) Perimeter() float64 { return r.Width() + r.Height() }

// Center returns the center point of the rectangle.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r. An empty s is
// contained in everything.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X && s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X && r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Intersect returns the overlap of r and s, which may be empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	switch {
	case r.IsEmpty():
		return s
	case s.IsEmpty():
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// UnionPoint returns the smallest rectangle covering r and p.
func (r Rect) UnionPoint(p Point) Rect {
	return r.Union(Rect{Min: p, Max: p})
}

// Expand returns r grown by d on every side. A negative d shrinks the
// rectangle and may make it empty.
func (r Rect) Expand(d float64) Rect {
	out := Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// DistTo returns the minimum distance from p to the rectangle; 0 when p is
// inside.
func (r Rect) DistTo(p Point) float64 { return math.Sqrt(r.Dist2To(p)) }

// Dist2To returns the squared minimum distance from p to the rectangle. This
// is the standard MINDIST bound used for best-first kNN search.
func (r Rect) Dist2To(p Point) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	var dx, dy float64
	switch {
	case p.X < r.Min.X:
		dx = r.Min.X - p.X
	case p.X > r.Max.X:
		dx = p.X - r.Max.X
	}
	switch {
	case p.Y < r.Min.Y:
		dy = r.Min.Y - p.Y
	case p.Y > r.Max.Y:
		dy = p.Y - r.Max.Y
	}
	return dx*dx + dy*dy
}

// Corners returns the four corner points in counter-clockwise order starting
// at Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// Quadrants splits r into its four quadrants in the order SW, SE, NW, NE.
func (r Rect) Quadrants() [4]Rect {
	c := r.Center()
	return [4]Rect{
		{Min: r.Min, Max: c},
		{Min: Point{c.X, r.Min.Y}, Max: Point{r.Max.X, c.Y}},
		{Min: Point{r.Min.X, c.Y}, Max: Point{c.X, r.Max.Y}},
		{Min: c, Max: r.Max},
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}
