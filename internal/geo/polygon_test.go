package geo

import (
	"math"
	"math/rand"
	"testing"
)

func square(size float64) Polygon {
	return Polygon{Pt(0, 0), Pt(size, 0), Pt(size, size), Pt(0, size)}
}

func TestPolygonArea(t *testing.T) {
	tests := []struct {
		name string
		pg   Polygon
		want float64
	}{
		{"unit-square", square(1), 1},
		{"square-10", square(10), 100},
		{"triangle", Polygon{Pt(0, 0), Pt(4, 0), Pt(0, 3)}, 6},
		{"degenerate", Polygon{Pt(0, 0), Pt(1, 1)}, 0},
		{"empty", nil, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.pg.Area(); !almostEq(got, tt.want) {
				t.Errorf("Area = %v, want %v", got, tt.want)
			}
		})
	}
	// Winding does not change unsigned area.
	cw := Polygon{Pt(0, 1), Pt(1, 1), Pt(1, 0), Pt(0, 0)}
	if got := cw.Area(); !almostEq(got, 1) {
		t.Errorf("clockwise area = %v, want 1", got)
	}
	if cw.SignedArea() >= 0 {
		t.Error("clockwise polygon should have negative signed area")
	}
}

func TestPolygonCentroid(t *testing.T) {
	c := square(2).Centroid()
	if !almostEq(c.X, 1) || !almostEq(c.Y, 1) {
		t.Errorf("square centroid = %v, want (1,1)", c)
	}
	tri := Polygon{Pt(0, 0), Pt(3, 0), Pt(0, 3)}
	c = tri.Centroid()
	if !almostEq(c.X, 1) || !almostEq(c.Y, 1) {
		t.Errorf("triangle centroid = %v, want (1,1)", c)
	}
}

func TestPolygonContains(t *testing.T) {
	pg := square(10)
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(5, 5), true},
		{Pt(-1, 5), false},
		{Pt(11, 5), false},
		{Pt(5, -1), false},
		{Pt(9.999, 9.999), true},
	}
	for _, tt := range tests {
		if got := pg.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	// Concave (L-shaped) polygon.
	l := Polygon{Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(2, 2), Pt(2, 4), Pt(0, 4)}
	if !l.Contains(Pt(1, 3)) {
		t.Error("L-shape should contain (1,3)")
	}
	if l.Contains(Pt(3, 3)) {
		t.Error("L-shape should not contain (3,3) (the notch)")
	}
}

func TestSegmentsIntersect(t *testing.T) {
	tests := []struct {
		name       string
		a, b, c, d Point
		want       bool
	}{
		{"crossing", Pt(0, 0), Pt(2, 2), Pt(0, 2), Pt(2, 0), true},
		{"parallel", Pt(0, 0), Pt(2, 0), Pt(0, 1), Pt(2, 1), false},
		{"touching-endpoint", Pt(0, 0), Pt(2, 0), Pt(2, 0), Pt(3, 3), true},
		{"collinear-overlap", Pt(0, 0), Pt(3, 0), Pt(1, 0), Pt(5, 0), true},
		{"collinear-disjoint", Pt(0, 0), Pt(1, 0), Pt(2, 0), Pt(3, 0), false},
		{"T-junction", Pt(0, 0), Pt(4, 0), Pt(2, -1), Pt(2, 0), true},
		{"near-miss", Pt(0, 0), Pt(4, 0), Pt(2, 0.001), Pt(2, 5), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SegmentsIntersect(tt.a, tt.b, tt.c, tt.d); got != tt.want {
				t.Errorf("SegmentsIntersect = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPolygonIntersectsRect(t *testing.T) {
	pg := square(10)
	tests := []struct {
		name string
		r    Rect
		want bool
	}{
		{"inside", RectOf(2, 2, 4, 4), true},
		{"containing", RectOf(-5, -5, 15, 15), true},
		{"overlap", RectOf(8, 8, 12, 12), true},
		{"disjoint", RectOf(20, 20, 30, 30), false},
		{"edge-cross-no-vertex", RectOf(-1, 4, 11, 6), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := pg.IntersectsRect(tt.r); got != tt.want {
				t.Errorf("IntersectsRect(%v) = %v, want %v", tt.r, got, tt.want)
			}
		})
	}
}

func TestPolygonIntersectsPolygon(t *testing.T) {
	a := square(10)
	b := square(4).Translate(Pt(8, 8))
	if !a.IntersectsPolygon(b) {
		t.Error("overlapping polygons should intersect")
	}
	c := square(4).Translate(Pt(20, 0))
	if a.IntersectsPolygon(c) {
		t.Error("disjoint polygons should not intersect")
	}
	inner := square(2).Translate(Pt(4, 4))
	if !a.IntersectsPolygon(inner) || !inner.IntersectsPolygon(a) {
		t.Error("nested polygons should intersect both ways")
	}
}

func TestConvexHull(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4), // square corners
		Pt(2, 2), Pt(1, 1), Pt(3, 2), // interior points
		Pt(2, 0), // collinear boundary point
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull has %d vertices, want 4: %v", len(hull), hull)
	}
	if !almostEq(hull.Area(), 16) {
		t.Errorf("hull area = %v, want 16", hull.Area())
	}
	if hull.SignedArea() <= 0 {
		t.Error("hull should be counter-clockwise")
	}
	// All inputs inside or on the hull bounds.
	b := hull.Bounds()
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("point %v outside hull bounds", p)
		}
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Errorf("hull of nothing = %v", h)
	}
	if h := ConvexHull([]Point{Pt(1, 1)}); len(h) != 1 {
		t.Errorf("hull of one point has %d vertices", len(h))
	}
	if h := ConvexHull([]Point{Pt(1, 1), Pt(1, 1), Pt(1, 1)}); len(h) != 1 {
		t.Errorf("hull of duplicates has %d vertices", len(h))
	}
	if h := ConvexHull([]Point{Pt(0, 0), Pt(2, 2)}); len(h) != 2 {
		t.Errorf("hull of two points has %d vertices", len(h))
	}
}

func TestSector(t *testing.T) {
	apex := Pt(0, 0)
	pg := Sector(apex, 0, math.Pi/4, 10, 16)
	if len(pg) < 3 {
		t.Fatal("sector polygon degenerate")
	}
	// Points clearly inside the cone and within range.
	if !pg.Contains(Pt(5, 0)) {
		t.Error("sector should contain point on axis")
	}
	if !pg.Contains(Pt(5, 1)) {
		t.Error("sector should contain point slightly off axis")
	}
	// Outside: behind apex, beyond range, outside angle.
	if pg.Contains(Pt(-1, 0)) {
		t.Error("sector contains point behind apex")
	}
	if pg.Contains(Pt(11, 0)) {
		t.Error("sector contains point beyond range")
	}
	if pg.Contains(Pt(1, 5)) {
		t.Error("sector contains point outside half-angle")
	}
	// Area approximates (half) r^2 * angle: full sector area = r^2 * halfAngle.
	want := 10 * 10 * (math.Pi / 4)
	if got := pg.Area(); math.Abs(got-want)/want > 0.02 {
		t.Errorf("sector area = %v, want ≈ %v", got, want)
	}
	if Sector(apex, 0, 0, 10, 8) != nil {
		t.Error("zero half-angle should yield nil polygon")
	}
	if Sector(apex, 0, 1, 0, 8) != nil {
		t.Error("zero radius should yield nil polygon")
	}
}

func TestCircle(t *testing.T) {
	pg := Circle(Pt(3, 3), 5, 64)
	want := math.Pi * 25
	if got := pg.Area(); math.Abs(got-want)/want > 0.01 {
		t.Errorf("circle area = %v, want ≈ %v", got, want)
	}
	if !pg.Contains(Pt(3, 3)) {
		t.Error("circle should contain its center")
	}
	if pg.Contains(Pt(9, 3)) {
		t.Error("circle contains point outside radius")
	}
}

// Property: points sampled inside a convex hull are contained by it.
func TestPropHullContainsInterior(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		pts := make([]Point, 20)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		c := hull.Centroid()
		if !hull.Contains(c) {
			t.Fatalf("hull does not contain its centroid %v", c)
		}
		// Midpoints between centroid and each input point that is inside
		// remain inside (convexity).
		for _, p := range pts {
			if hull.Contains(p) {
				mid := c.Lerp(p, 0.5)
				if !hull.Contains(mid) {
					t.Fatalf("hull not convex: contains %v but not midpoint %v", p, mid)
				}
			}
		}
	}
}
