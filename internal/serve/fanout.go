package serve

import (
	"context"

	"stcam/internal/wire"
)

// The subscriber protocol multiplexes N clients onto one shared continuous
// install. Clients Subscribe (getting a SubID and the shared QueryID back),
// PollUpdates to drain their bounded buffer, and Unsubscribe when done. A
// subscriber that stays full long enough is evicted — its refcount released
// immediately so a dead dashboard cannot pin a worker-side install — and
// learns about it from Evicted on its next poll.

// subscriber is one client's view of a shared install.
type subscriber struct {
	id      uint64
	queryID uint64

	// guarded by the owning fanout's mu
	buf      []wire.ContinuousUpdate
	dropped  int64
	evicted  bool
	released bool
}

// fanout distributes one shared install's update stream to its subscribers.
// mu also guards the subscriber states; the pump holds it only for in-memory
// delivery, never across an RPC.
type fanout struct {
	queryID uint64
	subs    map[uint64]*subscriber
}

// subscribe handles wire.Subscribe: admission, shared acquire, fan-out join.
func (f *Frontend) subscribe(ctx context.Context, m *wire.Subscribe) (any, bool) {
	if resp, ok := f.admit(ctx, m.Tenant); !ok {
		return resp, true
	}
	defer f.inflight.Add(-1)
	id, ch, refs, err := f.coord.AcquireContinuous(ctx, m.Kind, m.Rect, m.Threshold)
	if err != nil {
		return &wire.Error{Code: wire.CodeBadRequest, Message: err.Error()}, true
	}
	sub := &subscriber{id: f.nextSub.Add(1), queryID: id}
	f.fmu.Lock()
	fan, ok := f.fans[id]
	if !ok {
		fan = &fanout{queryID: id, subs: make(map[uint64]*subscriber)}
		f.fans[id] = fan
		go f.pump(fan, ch)
	}
	fan.subs[sub.id] = sub
	f.subs[sub.id] = sub
	f.fmu.Unlock()
	f.reg.Gauge("serve.subscribers").Add(1)
	return &wire.SubscribeAck{SubID: sub.id, QueryID: id, Shared: refs}, true
}

// pump moves updates from the shared channel into every subscriber's bounded
// buffer. It exits when the channel closes (last reference released, or the
// coordinator stopped). Eviction releases happen outside fmu: release is an
// RPC fan-out to workers.
func (f *Frontend) pump(fan *fanout, ch <-chan wire.ContinuousUpdate) {
	f.reg.Gauge("serve.fanout.installs").Add(1)
	defer f.reg.Gauge("serve.fanout.installs").Add(-1)
	limit := f.opts.SubscriberBuffer
	for u := range ch {
		var evicted []*subscriber
		f.fmu.Lock()
		for _, s := range fan.subs {
			if len(s.buf) < limit {
				s.buf = append(s.buf, u)
				continue
			}
			s.dropped++
			f.reg.Counter("serve.fanout.dropped").Inc()
			if s.dropped >= int64(limit) {
				// Persistently full: the consumer is gone or hopeless. Cut it
				// loose rather than let it pin the shared install forever.
				s.evicted = true
				delete(fan.subs, s.id)
				evicted = append(evicted, s)
			}
		}
		f.fmu.Unlock()
		for _, s := range evicted {
			f.reg.Counter("serve.subscriber.evictions").Inc()
			f.releaseSub(context.Background(), s)
		}
	}
	// Channel closed. Any subscribers still attached (coordinator shutdown)
	// are evicted; their install is already gone, so no release RPC.
	f.fmu.Lock()
	if f.fans[fan.queryID] == fan {
		delete(f.fans, fan.queryID)
	}
	for id, s := range fan.subs {
		s.evicted = true
		s.released = true
		delete(fan.subs, id)
	}
	f.fmu.Unlock()
}

// releaseSub drops the subscriber's reference on the shared install exactly
// once. Returns the references remaining.
func (f *Frontend) releaseSub(ctx context.Context, s *subscriber) int {
	f.fmu.Lock()
	if s.released {
		f.fmu.Unlock()
		return 0
	}
	s.released = true
	f.fmu.Unlock()
	remaining, err := f.coord.ReleaseContinuous(ctx, s.queryID)
	if err != nil {
		return 0
	}
	f.reg.Gauge("serve.subscribers").Add(-1)
	return remaining
}

// poll handles wire.PollUpdates: drain up to Max pending updates. An evicted
// subscriber gets one final poll reporting Evicted, then is forgotten.
func (f *Frontend) poll(m *wire.PollUpdates) (any, bool) {
	f.fmu.Lock()
	s, ok := f.subs[m.SubID]
	if !ok {
		f.fmu.Unlock()
		return &wire.Error{Code: wire.CodeBadRequest, Message: "serve: unknown subscriber"}, true
	}
	n := len(s.buf)
	if m.Max > 0 && m.Max < n {
		n = m.Max
	}
	updates := make([]wire.ContinuousUpdate, n)
	copy(updates, s.buf[:n])
	rest := copy(s.buf, s.buf[n:])
	s.buf = s.buf[:rest]
	dropped, evicted := s.dropped, s.evicted
	if evicted {
		delete(f.subs, m.SubID)
	}
	f.fmu.Unlock()
	return &wire.PollResult{SubID: m.SubID, Updates: updates, Dropped: dropped, Evicted: evicted}, true
}

// unsubscribe handles wire.Unsubscribe: detach from the fan-out and release
// the shared reference. The last unsubscribe uninstalls the query from the
// workers.
func (f *Frontend) unsubscribe(ctx context.Context, m *wire.Unsubscribe) (any, bool) {
	f.fmu.Lock()
	s, ok := f.subs[m.SubID]
	if ok {
		delete(f.subs, m.SubID)
		if fan, fok := f.fans[s.queryID]; fok {
			delete(fan.subs, s.id)
		}
	}
	f.fmu.Unlock()
	if !ok {
		return &wire.Error{Code: wire.CodeBadRequest, Message: "serve: unknown subscriber"}, true
	}
	remaining := f.releaseSub(ctx, s)
	return &wire.UnsubscribeAck{Remaining: remaining}, true
}

// SubscriberCount reports attached subscribers (test hook).
func (f *Frontend) SubscriberCount() int {
	f.fmu.Lock()
	defer f.fmu.Unlock()
	return len(f.subs)
}
