package serve

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"stcam/internal/geo"
	"stcam/internal/wire"
)

// TestSoakServeChurn is the serving-plane churn soak (CI job serve-soak,
// `make soak-serve`): a seeded storm of subscribe/unsubscribe churn, polls,
// ingest, and mid-stream epoch bumps, asserting two invariants throughout:
//
//  1. No leaked installs: after every full drain the coordinator holds zero
//     shared installs and the continuous.active gauge reads zero.
//  2. No stale cache hits across epochs: after every epoch bump, the
//     gateway's cached answer to a Count query equals the coordinator's
//     direct (uncached) answer.
//
// Run under -race this doubles as the concurrency gate on the fan-out and
// cache locking.
func TestSoakServeChurn(t *testing.T) {
	rounds := 60
	if testing.Short() {
		rounds = 12
	}
	if v := os.Getenv("STCAM_SOAK_ROUNDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad STCAM_SOAK_ROUNDS %q: %v", v, err)
		}
		rounds = n
	}
	rng := rand.New(rand.NewSource(41))
	c, _ := newServedCluster(t, 3, 3, Options{CacheTTL: time.Hour, SubscriberBuffer: 8})

	shapes := []geo.Rect{
		geo.RectOf(0, 0, 400, 400),
		geo.RectOf(300, 300, 700, 700),
		geo.RectOf(600, 600, 1000, 1000),
		geo.RectOf(100, 500, 500, 900),
	}
	countQ := &wire.CountQuery{Rect: geo.RectOf(0, 0, 1000, 1000), Window: window}

	type liveSub struct{ id uint64 }
	var live []liveSub
	nextObs := uint64(1)
	grid := 3

	for round := 0; round < rounds; round++ {
		// Subscribe storm: a burst of subscribers over a few shared shapes.
		for i := 0; i < 2+rng.Intn(6); i++ {
			rect := shapes[rng.Intn(len(shapes))]
			ack := gw(t, c, &wire.Subscribe{Kind: wire.ContinuousRange, Rect: rect}).(*wire.SubscribeAck)
			live = append(live, liveSub{id: ack.SubID})
		}
		// The shared table can never hold more installs than shapes.
		if n := c.Coordinator.SharedContinuousCount(); n > len(shapes) {
			t.Fatalf("round %d: %d shared installs for %d shapes (dedup broken)", round, n, len(shapes))
		}

		// Ingest a few tracked observations to move the update streams and
		// the query answers.
		for i := 0; i < 3; i++ {
			p := geo.Pt(rng.Float64()*900+50, rng.Float64()*900+50)
			cam := uint32(1 + rng.Intn(grid*grid))
			o := obsAt(nextObs, cam, p, time.Unix(int64(1000+round*10+i), 0).UTC())
			o.Feature = []float32{rng.Float32(), rng.Float32(), rng.Float32()}
			// Route to whichever camera covers the point; the grid is omni so
			// any camera within range accepts. Fall back to skipping
			// rejections — the soak only needs churn, not precision.
			ingest(t, c, o)
			nextObs++
		}

		// Random polls keep some subscribers fast and leave others to lag
		// into eviction.
		for _, s := range live {
			if rng.Intn(3) == 0 {
				resp, err := c.Transport.Call(ctx, c.Coordinator.Addr(), &wire.PollUpdates{SubID: s.id, Max: 8})
				if err != nil {
					continue // already evicted and reported
				}
				_ = resp.(*wire.PollResult)
			}
		}

		// Unsubscribe churn: drop a random subset.
		keep := live[:0]
		for _, s := range live {
			if rng.Intn(3) == 0 {
				c.Transport.Call(ctx, c.Coordinator.Addr(), &wire.Unsubscribe{SubID: s.id}) //nolint:errcheck // evicted subs answer unknown-subscriber; that's fine here
			} else {
				keep = append(keep, s)
			}
		}
		live = keep

		// Warm the cache, then every few rounds bump the epoch mid-stream
		// and differential-check the gateway against the coordinator.
		gw(t, c, countQ)
		if round%5 == 4 {
			epoch0 := c.Coordinator.Epoch()
			grid = 2 + (round/5)%2 // alternate layouts so cameras actually move
			if err := c.Coordinator.AddCameras(ctx, gridCams(grid), 50); err != nil {
				t.Fatal(err)
			}
			if c.Coordinator.Epoch() == epoch0 {
				t.Fatalf("round %d: epoch did not bump", round)
			}
			viaGateway := gw(t, c, countQ).(*wire.CountResult)
			direct, _, err := c.Coordinator.CountMeta(ctx, countQ.Rect, countQ.Window)
			if err != nil {
				t.Fatal(err)
			}
			if viaGateway.Count != direct {
				t.Fatalf("round %d: stale cache across epoch bump: gateway %d, direct %d",
					round, viaGateway.Count, direct)
			}
		}
	}

	// Full drain: every remaining subscriber unsubscribes; evicted ones are
	// already released. Nothing may leak.
	for _, s := range live {
		c.Transport.Call(ctx, c.Coordinator.Addr(), &wire.Unsubscribe{SubID: s.id}) //nolint:errcheck // evicted subs answer unknown-subscriber
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.Coordinator.SharedContinuousCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("leaked shared installs after drain: %d", c.Coordinator.SharedContinuousCount())
		}
		time.Sleep(time.Millisecond)
	}
	if g := gauge(c, "continuous.active"); g != 0 {
		t.Fatalf("continuous.active = %d after drain, want 0 (leaked install)", g)
	}
}
