// Package serve is the coordinator's front-end serving plane for heavy read
// traffic. It installs as a core.Gateway and adds three things the
// coordinator itself stays ignorant of:
//
//   - Shared continuous-query fan-out: N subscribers to the same canonical
//     query shape share ONE worker-side install (refcounted via
//     Coordinator.AcquireContinuous), each with its own bounded buffer and
//     slow-consumer eviction. 64 dashboards watching the same geofence cost
//     one evaluation per observation instead of 64.
//   - An epoch-keyed result cache for repeated Range/Count/Heatmap queries:
//     entries are keyed on the canonicalized query, stamped with the
//     coordinator epoch, bounded by an LRU byte budget and a TTL, and the
//     whole cache invalidates the moment the epoch moves (a reassignment
//     changes what every worker owns, so every cached answer is suspect).
//   - Admission control with priority shedding: ingest and tracking RPCs are
//     never offered to the serving plane and thus never shed; query load
//     degrades by priority class (background first, interactive at twice the
//     watermark, control never), with per-tenant token-bucket quotas.
//
// Everything is surfaced as serve.* metrics through the coordinator registry
// (and thus internal/obs and `stcamctl top`).
package serve

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"stcam/internal/clock"
	"stcam/internal/cluster"
	"stcam/internal/core"
	"stcam/internal/metrics"
	"stcam/internal/wire"
)

// Options configures the serving plane. Zero values select the defaults.
type Options struct {
	// CacheBytes is the result-cache LRU budget. 0 selects 8 MiB; negative
	// disables caching.
	CacheBytes int64
	// CacheTTL bounds entry freshness inside one epoch. 0 selects 2s.
	CacheTTL time.Duration
	// QuotaRate is the per-tenant sustained queries/sec. 0 disables quotas.
	QuotaRate float64
	// QuotaBurst is the token-bucket depth. 0 selects max(16, 2*QuotaRate).
	QuotaBurst int
	// MaxInflight is the background-priority shed watermark; interactive and
	// untagged traffic sheds at twice this. 0 selects 256.
	MaxInflight int
	// SubscriberBuffer is the per-subscriber pending-update bound; a
	// subscriber that stays full long enough to drop this many more updates
	// is evicted. 0 selects 256.
	SubscriberBuffer int
	// Clock injects time for the cache TTL and quota refill (tests).
	Clock clock.Clock
}

func (o *Options) fill() {
	if o.CacheBytes == 0 {
		o.CacheBytes = 8 << 20
	}
	if o.CacheTTL == 0 {
		o.CacheTTL = 2 * time.Second
	}
	if o.QuotaBurst == 0 {
		o.QuotaBurst = int(math.Max(16, 2*o.QuotaRate))
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 256
	}
	if o.SubscriberBuffer == 0 {
		o.SubscriberBuffer = 256
	}
	if o.Clock == nil {
		o.Clock = clock.Wall
	}
}

// Frontend is the serving plane. Construct with New; it registers itself as
// the coordinator's gateway.
type Frontend struct {
	coord *core.Coordinator
	opts  Options
	reg   *metrics.Registry
	clk   clock.Clock

	cache *resultCache

	inflight atomic.Int64

	qmu    sync.Mutex
	quotas map[string]*bucket

	nextSub atomic.Uint64
	fmu     sync.Mutex
	fans    map[uint64]*fanout     // shared install query id -> fan-out
	subs    map[uint64]*subscriber // subscriber id -> subscriber
}

// New builds the serving plane over the coordinator and installs it as the
// coordinator's gateway.
func New(coord *core.Coordinator, opts Options) *Frontend {
	opts.fill()
	f := &Frontend{
		coord:  coord,
		opts:   opts,
		reg:    coord.Metrics(),
		clk:    opts.Clock,
		quotas: make(map[string]*bucket),
		fans:   make(map[uint64]*fanout),
		subs:   make(map[uint64]*subscriber),
	}
	f.cache = newResultCache(opts.CacheBytes, opts.CacheTTL, opts.Clock, f.reg)
	coord.SetGateway(f)
	return f
}

var _ core.Gateway = (*Frontend)(nil)

// Intercept implements core.Gateway: cacheable read queries and the
// subscriber protocol are handled here; everything else — ingest, tracking,
// registration, heartbeats, the streaming query kinds — falls through to the
// coordinator untouched, which is what makes "ingest is never shed" a
// structural property rather than a policy.
func (f *Frontend) Intercept(ctx context.Context, req any) (any, bool) {
	switch m := req.(type) {
	case *wire.RangeQuery, *wire.CountQuery, *wire.HeatmapQuery:
		return f.serveQuery(ctx, m)
	case *wire.Subscribe:
		return f.subscribe(ctx, m)
	case *wire.PollUpdates:
		return f.poll(m)
	case *wire.Unsubscribe:
		return f.unsubscribe(ctx, m)
	}
	return nil, false
}

// serveQuery: admission, then cache, then the coordinator's scatter path.
func (f *Frontend) serveQuery(ctx context.Context, req any) (any, bool) {
	if resp, ok := f.admit(ctx, ""); !ok {
		return resp, true
	}
	defer f.inflight.Add(-1)
	epoch := f.coord.Epoch()
	key := core.CanonicalQueryKey(req)
	if key != "" {
		if resp, ok := f.cache.get(key, epoch); ok {
			f.reg.Counter("serve.cache.hits").Inc()
			return patchQueryID(resp, req), true
		}
		f.reg.Counter("serve.cache.misses").Inc()
	}
	resp, cacheable := f.execute(ctx, req)
	if key != "" && cacheable {
		f.cache.put(key, epoch, resp)
	}
	return patchQueryID(resp, req), true
}

// execute answers one query through the coordinator's exported methods.
// cacheable is false for errors and for partial answers (a degraded scatter
// must not pin its shortfall into the cache for a full TTL).
func (f *Frontend) execute(ctx context.Context, req any) (resp any, cacheable bool) {
	switch m := req.(type) {
	case *wire.RangeQuery:
		recs, meta, err := f.coord.RangeMeta(ctx, m.Rect, m.Window, m.Limit)
		if err != nil {
			return &wire.Error{Code: wire.CodeBadRequest, Message: err.Error()}, false
		}
		return &wire.RangeResult{Records: recs, Asked: meta.Asked, Answered: meta.Answered}, meta.Answered == meta.Asked
	case *wire.CountQuery:
		n, meta, err := f.coord.CountMeta(ctx, m.Rect, m.Window)
		if err != nil {
			return &wire.Error{Code: wire.CodeBadRequest, Message: err.Error()}, false
		}
		return &wire.CountResult{Count: n, Asked: meta.Asked, Answered: meta.Answered}, meta.Answered == meta.Asked
	case *wire.HeatmapQuery:
		cells, err := f.coord.Heatmap(ctx, m.Rect, m.Window, m.CellSize)
		if err != nil {
			return &wire.Error{Code: wire.CodeBadRequest, Message: err.Error()}, false
		}
		return &wire.HeatmapResult{CellSize: m.CellSize, Cells: cells}, true
	}
	return &wire.Error{Code: wire.CodeBadRequest, Message: "serve: unhandled query"}, false
}

// patchQueryID stamps the caller's per-request nonce onto a (possibly
// cached) response without mutating the cached value.
func patchQueryID(resp any, req any) any {
	var qid uint64
	switch m := req.(type) {
	case *wire.RangeQuery:
		qid = m.QueryID
	case *wire.CountQuery:
		qid = m.QueryID
	case *wire.HeatmapQuery:
		qid = m.QueryID
	}
	switch r := resp.(type) {
	case *wire.RangeResult:
		cp := *r
		cp.QueryID = qid
		return &cp
	case *wire.CountResult:
		cp := *r
		cp.QueryID = qid
		return &cp
	case *wire.HeatmapResult:
		cp := *r
		cp.QueryID = qid
		return &cp
	}
	return resp
}

// admit applies priority shedding then the tenant quota. On admission the
// inflight count has been incremented and the caller owns the decrement; on
// denial it returns the error response to send.
func (f *Frontend) admit(ctx context.Context, tenant string) (any, bool) {
	pri := cluster.PriorityFrom(ctx)
	n := f.inflight.Add(1)
	watermark := int64(f.opts.MaxInflight)
	var over bool
	switch pri {
	case cluster.PriorityControl:
		over = false
	case cluster.PriorityBackground:
		over = n > watermark
	default: // untagged and interactive shed together, at twice the watermark
		over = n > 2*watermark
	}
	if over {
		f.inflight.Add(-1)
		f.reg.Counter("serve.shed." + pri.String()).Inc() //lint:allow metricname per-class shed series; cardinality bounded by the closed Priority enum
		return &wire.Error{Code: wire.CodeShed, Message: "serve: over capacity (" + pri.String() + "); retry with backoff"}, false
	}
	if tenant == "" {
		tenant = cluster.TenantFrom(ctx)
	}
	if tenant != "" && f.opts.QuotaRate > 0 && !f.takeToken(tenant) {
		f.inflight.Add(-1)
		f.reg.Counter("serve.quota.denied").Inc()
		return &wire.Error{Code: wire.CodeOverQuota, Message: "serve: tenant " + tenant + " over query quota"}, false
	}
	return nil, true
}

// bucket is one tenant's token bucket, refilled lazily on each take.
type bucket struct {
	tokens float64
	last   time.Time
}

func (f *Frontend) takeToken(tenant string) bool {
	now := f.clk.Now()
	f.qmu.Lock()
	defer f.qmu.Unlock()
	b, ok := f.quotas[tenant]
	if !ok {
		b = &bucket{tokens: float64(f.opts.QuotaBurst), last: now}
		f.quotas[tenant] = b
	}
	b.tokens = math.Min(float64(f.opts.QuotaBurst),
		b.tokens+now.Sub(b.last).Seconds()*f.opts.QuotaRate)
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
