package serve

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"stcam/internal/clock"
	"stcam/internal/cluster"
	"stcam/internal/core"
	"stcam/internal/geo"
	"stcam/internal/wire"
)

var (
	ctx    = context.Background()
	world  = geo.RectOf(0, 0, 1000, 1000)
	window = wire.TimeWindow{From: time.Unix(0, 0).UTC(), To: time.Unix(4e9, 0).UTC()}
)

// gridCams builds an n×n omni-camera lattice covering the world.
func gridCams(n int) []wire.CameraInfo {
	out := make([]wire.CameraInfo, 0, n*n)
	cw, ch := world.Width()/float64(n), world.Height()/float64(n)
	rng := 0.8 * math.Max(cw, ch)
	id := uint32(1)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			out = append(out, wire.CameraInfo{
				ID:      id,
				Pos:     geo.Pt(world.Min.X+(float64(c)+0.5)*cw, world.Min.Y+(float64(r)+0.5)*ch),
				HalfFOV: math.Pi,
				Range:   rng,
			})
			id++
		}
	}
	return out
}

// newServedCluster assembles a local cluster with the serving plane attached
// and an n×n camera grid installed.
func newServedCluster(t *testing.T, workers, grid int, opts Options) (*core.Cluster, *Frontend) {
	t.Helper()
	c, err := core.NewLocalCluster(workers, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if err := c.Coordinator.AddCameras(ctx, gridCams(grid), 50); err != nil {
		t.Fatal(err)
	}
	return c, New(c.Coordinator, opts)
}

// gw sends a request through the transport to the coordinator, i.e. through
// the full dispatch + gateway path a remote client exercises.
func gw(t *testing.T, c *core.Cluster, req any) any {
	t.Helper()
	resp, err := c.Transport.Call(ctx, c.Coordinator.Addr(), req)
	if err != nil {
		t.Fatalf("%T: %v", req, err)
	}
	return resp
}

func ingest(t *testing.T, c *core.Cluster, obs ...wire.Observation) {
	t.Helper()
	byCam := map[uint32][]wire.Observation{}
	for _, o := range obs {
		byCam[o.Camera] = append(byCam[o.Camera], o)
	}
	for cam, batch := range byCam {
		addr, ok := c.Coordinator.RouteFor(cam)
		if !ok {
			t.Fatalf("no route for camera %d", cam)
		}
		if _, err := c.Transport.Call(ctx, addr, &wire.IngestBatch{Camera: cam, Observations: batch}); err != nil {
			t.Fatal(err)
		}
	}
}

func obsAt(id uint64, cam uint32, p geo.Point, at time.Time) wire.Observation {
	return wire.Observation{ObsID: id, Camera: cam, Time: at, Pos: p}
}

// trackedObs is obsAt with an appearance feature, so the worker associates a
// target ID — continuous queries only answer over associated targets.
func trackedObs(id uint64, cam uint32, p geo.Point, at time.Time) wire.Observation {
	o := obsAt(id, cam, p, at)
	o.Feature = []float32{1, 0, 0.5}
	return o
}

func counter(c *core.Cluster, name string) int64 {
	return c.Coordinator.Metrics().Snapshot().Counters[name]
}

func gauge(c *core.Cluster, name string) int64 {
	return c.Coordinator.Metrics().Snapshot().Gauges[name]
}

// TestSharedSubscribeDedup: 64 subscribers to the same geofence share one
// worker-side install, and every one of them sees the update stream.
func TestSharedSubscribeDedup(t *testing.T) {
	c, f := newServedCluster(t, 2, 2, Options{})
	rect := geo.RectOf(100, 100, 400, 400)
	const subs = 64
	ids := make([]uint64, 0, subs)
	var queryID uint64
	for i := 0; i < subs; i++ {
		ack := gw(t, c, &wire.Subscribe{Kind: wire.ContinuousRange, Rect: rect}).(*wire.SubscribeAck)
		if ack.Shared != i+1 {
			t.Fatalf("subscriber %d: Shared = %d, want %d", i, ack.Shared, i+1)
		}
		if i == 0 {
			queryID = ack.QueryID
		} else if ack.QueryID != queryID {
			t.Fatalf("subscriber %d got install %d, want shared %d", i, ack.QueryID, queryID)
		}
		ids = append(ids, ack.SubID)
	}
	if n := c.Coordinator.SharedContinuousCount(); n != 1 {
		t.Fatalf("shared installs = %d, want 1", n)
	}
	if g := gauge(c, "continuous.active"); g != 1 {
		t.Fatalf("continuous.active = %d, want 1 (dedup broken)", g)
	}
	if f.SubscriberCount() != subs {
		t.Fatalf("subscriber count = %d, want %d", f.SubscriberCount(), subs)
	}

	ingest(t, c, trackedObs(1, 1, geo.Pt(200, 200), time.Unix(100, 0).UTC()))

	// Every subscriber drains the same update (the pump is asynchronous).
	for _, id := range ids {
		deadline := time.Now().Add(5 * time.Second)
		got := 0
		for got == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("subscriber %d never saw the update", id)
			}
			pr := gw(t, c, &wire.PollUpdates{SubID: id, Max: 16}).(*wire.PollResult)
			got = len(pr.Updates)
			if got == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}

	// Tear down: refcount drains to zero and the install is removed.
	for i, id := range ids {
		ack := gw(t, c, &wire.Unsubscribe{SubID: id}).(*wire.UnsubscribeAck)
		if want := subs - i - 1; ack.Remaining != want {
			t.Fatalf("unsubscribe %d: Remaining = %d, want %d", i, ack.Remaining, want)
		}
	}
	if n := c.Coordinator.SharedContinuousCount(); n != 0 {
		t.Fatalf("shared installs after teardown = %d, want 0", n)
	}
	if g := gauge(c, "continuous.active"); g != 0 {
		t.Fatalf("continuous.active after teardown = %d, want 0 (leaked install)", g)
	}
	if f.SubscriberCount() != 0 {
		t.Fatalf("subscribers after teardown = %d, want 0", f.SubscriberCount())
	}
}

// TestSlowConsumerEviction: a subscriber that never polls is evicted once its
// bounded buffer has overflowed persistently, releasing the shared install.
func TestSlowConsumerEviction(t *testing.T) {
	c, _ := newServedCluster(t, 1, 2, Options{SubscriberBuffer: 4})
	rect := geo.RectOf(100, 100, 400, 400)
	ack := gw(t, c, &wire.Subscribe{Kind: wire.ContinuousRange, Rect: rect}).(*wire.SubscribeAck)

	// Walk one target in and out of the geofence: every flip is an answer
	// delta, so buffer(4) + dropped(4) updates force the eviction threshold.
	for i := 0; i < 16; i++ {
		at := time.Unix(int64(100+i), 0).UTC()
		if i%2 == 0 {
			ingest(t, c, trackedObs(uint64(100+i), 1, geo.Pt(200, 200), at))
		} else {
			ingest(t, c, trackedObs(uint64(100+i), 4, geo.Pt(600, 600), at))
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Coordinator.SharedContinuousCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow consumer never evicted; shared install still live")
		}
		time.Sleep(time.Millisecond)
	}
	pr := gw(t, c, &wire.PollUpdates{SubID: ack.SubID, Max: 0}).(*wire.PollResult)
	if !pr.Evicted {
		t.Fatal("final poll did not report eviction")
	}
	if pr.Dropped == 0 {
		t.Fatal("eviction without any reported drops")
	}
	// The eviction was reported once; the subscriber is now forgotten.
	_, err := c.Transport.Call(ctx, c.Coordinator.Addr(), &wire.PollUpdates{SubID: ack.SubID})
	re, ok := err.(*cluster.RemoteError)
	if !ok || re.Code != wire.CodeBadRequest {
		t.Fatalf("poll after eviction report: got %v, want unknown-subscriber error", err)
	}
}

// TestCachedQueriesByteIdentical is the differential suite: within one
// epoch, the cached answer to Range/Heatmap/Count is byte-identical on the
// wire to the uncached one.
func TestCachedQueriesByteIdentical(t *testing.T) {
	c, _ := newServedCluster(t, 3, 3, Options{CacheTTL: time.Hour})
	for i := 0; i < 200; i++ {
		cam := uint32(1 + i%9)
		ingest(t, c, obsAt(uint64(1+i), cam, geo.Pt(float64(10+i%900), float64(20+(i*7)%900)), time.Unix(int64(100+i), 0).UTC()))
	}
	rect := geo.RectOf(0, 0, 800, 800)
	queries := []any{
		&wire.RangeQuery{QueryID: 1, Rect: rect, Window: window, Limit: 1000},
		&wire.CountQuery{QueryID: 2, Rect: rect, Window: window},
		&wire.HeatmapQuery{QueryID: 3, Rect: rect, Window: window, CellSize: 100},
	}
	misses0 := counter(c, "serve.cache.misses")
	for _, q := range queries {
		uncached := gw(t, c, q)
		hits0 := counter(c, "serve.cache.hits")
		cached := gw(t, c, q)
		if counter(c, "serve.cache.hits") != hits0+1 {
			t.Fatalf("%T: second call was not a cache hit", q)
		}
		b1, err1 := wire.Marshal(wire.KindOf(uncached), uncached)
		b2, err2 := wire.Marshal(wire.KindOf(cached), cached)
		if err1 != nil || err2 != nil {
			t.Fatalf("%T: marshal: %v / %v", q, err1, err2)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%T: cached answer differs from uncached:\n got  %x\n want %x", q, b2, b1)
		}
	}
	if got := counter(c, "serve.cache.misses"); got != misses0+int64(len(queries)) {
		t.Fatalf("misses = %d, want %d", got, misses0+int64(len(queries)))
	}
}

// TestEpochBumpInvalidatesCache is the regression for the stale-cache bug:
// an assignment epoch change must drop every cached entry, so a re-ask after
// reassignment recomputes instead of returning the pre-bump answer.
func TestEpochBumpInvalidatesCache(t *testing.T) {
	c, _ := newServedCluster(t, 2, 2, Options{CacheTTL: time.Hour})
	for i := 0; i < 50; i++ {
		ingest(t, c, obsAt(uint64(1+i), uint32(1+i%4), geo.Pt(float64(50+i*3), float64(60+i*5)), time.Unix(int64(100+i), 0).UTC()))
	}
	q := &wire.CountQuery{QueryID: 9, Rect: geo.RectOf(0, 0, 1000, 1000), Window: window}
	first := gw(t, c, q).(*wire.CountResult)
	gw(t, c, q) // warm: this one is the hit
	hits0 := counter(c, "serve.cache.hits")
	if hits0 == 0 {
		t.Fatal("cache never hit during warmup")
	}

	// Bump the epoch by re-registering the camera set (forces reassignment).
	epoch0 := c.Coordinator.Epoch()
	if err := c.Coordinator.AddCameras(ctx, gridCams(3), 50); err != nil {
		t.Fatal(err)
	}
	if c.Coordinator.Epoch() == epoch0 {
		t.Fatal("AddCameras did not bump the epoch")
	}

	inval0 := counter(c, "serve.cache.invalidations")
	after := gw(t, c, q).(*wire.CountResult)
	if got := counter(c, "serve.cache.hits"); got != hits0 {
		t.Fatalf("query after epoch bump hit the stale cache (hits %d -> %d)", hits0, got)
	}
	if counter(c, "serve.cache.invalidations") != inval0+1 {
		t.Fatal("epoch bump did not invalidate the cache")
	}
	if after.Count != first.Count {
		t.Fatalf("post-bump count %d != pre-bump %d (data did not move)", after.Count, first.Count)
	}
}

// TestCacheTTLExpiry: entries die after the TTL even within one epoch.
func TestCacheTTLExpiry(t *testing.T) {
	fake := clock.NewFake()
	c, _ := newServedCluster(t, 1, 2, Options{CacheTTL: time.Second, Clock: fake})
	q := &wire.CountQuery{Rect: geo.RectOf(0, 0, 500, 500), Window: window}
	gw(t, c, q)
	hits0 := counter(c, "serve.cache.hits")
	gw(t, c, q)
	if counter(c, "serve.cache.hits") != hits0+1 {
		t.Fatal("warm query was not a hit")
	}
	fake.Advance(2 * time.Second)
	gw(t, c, q)
	if counter(c, "serve.cache.hits") != hits0+1 {
		t.Fatal("expired entry served as a hit")
	}
	if counter(c, "serve.cache.expired") == 0 {
		t.Fatal("expiry not counted")
	}
}

// TestCacheByteBudget: the LRU evicts from the cold end once over budget.
func TestCacheByteBudget(t *testing.T) {
	c, _ := newServedCluster(t, 1, 2, Options{CacheBytes: 64, CacheTTL: time.Hour})
	for i := 0; i < 8; i++ {
		r := geo.RectOf(0, 0, float64(100+i), 500)
		gw(t, c, &wire.CountQuery{Rect: r, Window: window})
	}
	if counter(c, "serve.cache.evicted") == 0 {
		t.Fatal("no evictions despite a 64-byte budget")
	}
	if got := gauge(c, "serve.cache.bytes"); got > 64 {
		t.Fatalf("cache bytes %d over the 64-byte budget", got)
	}
}

// TestAdmissionPriorityOrder: background sheds at the watermark, interactive
// at twice it, control never.
func TestAdmissionPriorityOrder(t *testing.T) {
	c, f := newServedCluster(t, 1, 2, Options{MaxInflight: 2})
	_ = c
	bg := cluster.WithPriority(ctx, cluster.PriorityBackground)
	ia := cluster.WithPriority(ctx, cluster.PriorityInteractive)
	co := cluster.WithPriority(ctx, cluster.PriorityControl)

	// Hold 2 admissions: at the watermark, background sheds next.
	for i := 0; i < 2; i++ {
		if resp, ok := f.admit(bg, ""); !ok {
			t.Fatalf("admission %d denied below watermark: %v", i, resp)
		}
	}
	if resp, ok := f.admit(bg, ""); ok {
		f.inflight.Add(-1)
		t.Fatal("background admitted above watermark")
	} else if e, isErr := resp.(*wire.Error); !isErr || e.Code != wire.CodeShed {
		t.Fatalf("background shed response = %#v, want CodeShed", resp)
	}
	// Interactive still gets in until twice the watermark.
	for i := 0; i < 2; i++ {
		if _, ok := f.admit(ia, ""); !ok {
			t.Fatalf("interactive %d denied below 2x watermark", i)
		}
	}
	if _, ok := f.admit(ia, ""); ok {
		f.inflight.Add(-1)
		t.Fatal("interactive admitted above 2x watermark")
	}
	// Control is never shed.
	if _, ok := f.admit(co, ""); !ok {
		t.Fatal("control traffic shed")
	}
	f.inflight.Add(-1)
	if got := counter(c, "serve.shed.background"); got != 1 {
		t.Fatalf("serve.shed.background = %d, want 1", got)
	}
	if got := counter(c, "serve.shed.interactive"); got != 1 {
		t.Fatalf("serve.shed.interactive = %d, want 1", got)
	}
}

// TestTenantQuota: the per-tenant token bucket denies once the burst is
// spent and refills with time.
func TestTenantQuota(t *testing.T) {
	fake := clock.NewFake()
	c, _ := newServedCluster(t, 1, 2, Options{QuotaRate: 1, QuotaBurst: 2, Clock: fake})
	tctx := cluster.WithTenant(ctx, "acme")
	q := func() any {
		resp, err := c.Transport.Call(tctx, c.Coordinator.Addr(),
			&wire.CountQuery{Rect: geo.RectOf(0, 0, 500, 500), Window: window})
		if err != nil {
			// The transport surfaces wire.Error as a RemoteError.
			if re, ok := err.(*cluster.RemoteError); ok {
				return &wire.Error{Code: re.Code, Message: re.Message}
			}
			t.Fatal(err)
		}
		return resp
	}
	for i := 0; i < 2; i++ {
		if e, isErr := q().(*wire.Error); isErr {
			t.Fatalf("burst query %d denied: %+v", i, e)
		}
	}
	if e, isErr := q().(*wire.Error); !isErr || e.Code != wire.CodeOverQuota {
		t.Fatalf("over-burst query: got %#v, want CodeOverQuota", e)
	}
	if counter(c, "serve.quota.denied") == 0 {
		t.Fatal("quota denial not counted")
	}
	fake.Advance(time.Second)
	if e, isErr := q().(*wire.Error); isErr {
		t.Fatalf("query after refill denied: %+v", e)
	}
	// A different tenant has its own bucket.
	other := cluster.WithTenant(ctx, "globex")
	if resp, err := c.Transport.Call(other, c.Coordinator.Addr(),
		&wire.CountQuery{Rect: geo.RectOf(0, 0, 500, 500), Window: window}); err != nil {
		t.Fatalf("other tenant denied: %v %v", resp, err)
	}
}

// TestIngestNeverShed: ingest flows through untouched even when the serving
// plane sheds everything — the gateway never handles IngestBatch.
func TestIngestNeverShed(t *testing.T) {
	c, f := newServedCluster(t, 1, 2, Options{MaxInflight: 1})
	// Saturate: hold admissions past every watermark.
	for i := 0; i < 4; i++ {
		f.inflight.Add(1)
	}
	defer f.inflight.Add(-4)
	// Queries shed...
	if _, err := c.Transport.Call(ctx, c.Coordinator.Addr(),
		&wire.CountQuery{Rect: geo.RectOf(0, 0, 500, 500), Window: window}); err == nil {
		t.Fatal("query admitted past 2x watermark")
	}
	// ...but ingest lands.
	ingest(t, c, obsAt(1, 1, geo.Pt(200, 200), time.Unix(100, 0).UTC()))
}
