package serve

import (
	"container/list"
	"sync"
	"time"

	"stcam/internal/clock"
	"stcam/internal/metrics"
	"stcam/internal/wire"
)

// resultCache is the epoch-keyed LRU result cache. Entries are sized by
// their wire encoding (the honest measure of what a hit saves downstream)
// and bounded by a byte budget; a TTL bounds staleness within an epoch; and
// any observed epoch change purges everything, because a reassignment
// changes which workers own which cameras and therefore every answer.
type resultCache struct {
	budget int64
	ttl    time.Duration
	clk    clock.Clock
	reg    *metrics.Registry

	mu      sync.Mutex
	epoch   uint64
	bytes   int64
	lru     *list.List // front = most recently used; elements hold *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key   string
	resp  any
	size  int64
	added time.Time
}

func newResultCache(budget int64, ttl time.Duration, clk clock.Clock, reg *metrics.Registry) *resultCache {
	return &resultCache{
		budget:  budget,
		ttl:     ttl,
		clk:     clk,
		reg:     reg,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
	}
}

// syncEpochLocked purges the whole cache when the observed epoch differs
// from the one the entries were answered under.
func (c *resultCache) syncEpochLocked(epoch uint64) {
	if epoch == c.epoch {
		return
	}
	if len(c.entries) > 0 {
		c.reg.Counter("serve.cache.invalidations").Inc()
	}
	c.epoch = epoch
	c.bytes = 0
	c.lru.Init()
	c.entries = make(map[string]*list.Element)
	c.publishLocked()
}

func (c *resultCache) publishLocked() {
	c.reg.Gauge("serve.cache.bytes").Set(c.bytes)
	c.reg.Gauge("serve.cache.entries").Set(int64(len(c.entries)))
}

func (c *resultCache) get(key string, epoch uint64) (any, bool) {
	if c.budget <= 0 {
		return nil, false
	}
	now := c.clk.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncEpochLocked(epoch)
	elem, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := elem.Value.(*cacheEntry)
	if now.Sub(e.added) > c.ttl {
		c.removeLocked(elem)
		c.reg.Counter("serve.cache.expired").Inc()
		c.publishLocked()
		return nil, false
	}
	c.lru.MoveToFront(elem)
	return e.resp, true
}

func (c *resultCache) put(key string, epoch uint64, resp any) {
	if c.budget <= 0 {
		return
	}
	kind := wire.KindOf(resp)
	if kind == 0 {
		return
	}
	enc, err := wire.Marshal(kind, resp)
	if err != nil {
		return
	}
	size := int64(len(enc))
	if size > c.budget {
		return // a single oversized answer would evict the whole cache for nothing
	}
	now := c.clk.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncEpochLocked(epoch)
	if elem, ok := c.entries[key]; ok {
		c.removeLocked(elem)
	}
	e := &cacheEntry{key: key, resp: resp, size: size, added: now}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += size
	for c.bytes > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.reg.Counter("serve.cache.evicted").Inc()
	}
	c.publishLocked()
}

func (c *resultCache) removeLocked(elem *list.Element) {
	e := elem.Value.(*cacheEntry)
	c.lru.Remove(elem)
	delete(c.entries, e.key)
	c.bytes -= e.size
}
