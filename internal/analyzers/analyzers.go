// Package analyzers is the stcamlint suite: custom static analyzers that turn
// the DESIGN.md §5 prose invariants — the bug shapes this codebase has
// actually shipped and re-fixed — into compiler-enforced rules.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is self-contained on the standard library:
// the build environment pins dependencies, so packages are loaded with
// go/parser and type-checked with go/types against a module-aware importer
// (see load.go) instead of x/tools/go/packages. If the x/tools dependency is
// ever vendored, each analyzer's Run is a thin port away from a real
// *analysis.Analyzer.
//
// Suppression: a diagnostic is suppressed by a directive comment
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is mandatory
// — an allow without a documented reason is itself a diagnostic.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the directive key (//lint:allow <name> ...) and CLI filter.
	Name string
	// Doc is the one-paragraph description shown by stcamlint -help.
	Doc string
	// Match restricts the analyzer to packages whose import path it accepts.
	// Nil means every package.
	Match func(pkgPath string) bool
	// Run reports diagnostics through pass.Report.
	Run func(pass *Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Report records a diagnostic at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// All returns the full stcamlint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		RPCUnderLock,
		BufRelease,
		FailClosed,
		ClockInject,
		MetricName,
	}
}

// ByName resolves a comma-separated analyzer list; empty selects All.
func ByName(names []string) []*Analyzer {
	if len(names) == 0 {
		return All()
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range All() {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// pathIn reports whether pkgPath is path or a subpackage of it.
func pathIn(pkgPath string, roots ...string) bool {
	for _, r := range roots {
		if pkgPath == r || len(pkgPath) > len(r) && pkgPath[:len(r)] == r && pkgPath[len(r)] == '/' {
			return true
		}
	}
	return false
}
