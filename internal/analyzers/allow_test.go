package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseAllows(t *testing.T, src string) ([]*allowDirective, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var diags []Diagnostic
	allows := collectAllows(fset, []*ast.File{f}, func(d Diagnostic) { diags = append(diags, d) })
	return allows, diags
}

func TestCollectAllowsParsesNameAndReason(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lint:allow rpcunderlock buffered channel sized to worker count
}
`
	allows, diags := parseAllows(t, src)
	if len(diags) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", diags)
	}
	if len(allows) != 1 {
		t.Fatalf("got %d directives, want 1", len(allows))
	}
	a := allows[0]
	if a.Analyzer != "rpcunderlock" {
		t.Errorf("analyzer = %q, want rpcunderlock", a.Analyzer)
	}
	if a.Reason != "buffered channel sized to worker count" {
		t.Errorf("reason = %q", a.Reason)
	}
	if a.Pos.Line != 4 {
		t.Errorf("line = %d, want 4", a.Pos.Line)
	}
}

func TestCollectAllowsRejectsMissingReason(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lint:allow metricname
	_ = 2 //lint:allow
}
`
	allows, diags := parseAllows(t, src)
	if len(allows) != 0 {
		t.Fatalf("malformed directives were accepted: %+v", allows[0])
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "needs a reason") {
		t.Errorf("missing-reason diagnostic: %q", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "missing analyzer name") {
		t.Errorf("missing-name diagnostic: %q", diags[1].Message)
	}
}

func TestCollectAllowsIgnoresLookalikes(t *testing.T) {
	src := `package p

//lint:allowances is not our directive
// lint:allow spaced out is not ours either
func f() {}
`
	allows, diags := parseAllows(t, src)
	if len(allows) != 0 || len(diags) != 0 {
		t.Fatalf("lookalike comments were parsed: allows=%v diags=%v", allows, diags)
	}
}

func TestSuppressedMatchesSameAndPreviousLine(t *testing.T) {
	mk := func(line int) *allowDirective {
		return &allowDirective{Analyzer: "failclosed", Pos: token.Position{Filename: "a.go", Line: line}}
	}
	d := Diagnostic{Analyzer: "failclosed", Pos: token.Position{Filename: "a.go", Line: 10}}

	if !suppressed(d, []*allowDirective{mk(10)}) {
		t.Error("same-line directive did not suppress")
	}
	if !suppressed(d, []*allowDirective{mk(9)}) {
		t.Error("previous-line directive did not suppress")
	}
	if suppressed(d, []*allowDirective{mk(8)}) {
		t.Error("two-lines-above directive suppressed")
	}
	other := mk(10)
	other.Analyzer = "metricname"
	if suppressed(d, []*allowDirective{other}) {
		t.Error("directive for a different analyzer suppressed")
	}
	wrongFile := mk(10)
	wrongFile.Pos.Filename = "b.go"
	if suppressed(d, []*allowDirective{wrongFile}) {
		t.Error("directive in a different file suppressed")
	}
}

func TestSuppressedMarksDirectiveUsed(t *testing.T) {
	a := &allowDirective{Analyzer: "bufrelease", Pos: token.Position{Filename: "a.go", Line: 5}}
	d := Diagnostic{Analyzer: "bufrelease", Pos: token.Position{Filename: "a.go", Line: 5}}
	suppressed(d, []*allowDirective{a})
	if !a.used {
		t.Error("suppressing a diagnostic did not mark the directive used")
	}
}
