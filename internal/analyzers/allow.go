package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	Analyzer string
	Reason   string
	Pos      token.Position
	used     bool
}

const allowPrefix = "//lint:allow"

// collectAllows gathers every //lint:allow directive in the files. Directives
// with a missing analyzer name or empty reason are reported as diagnostics
// themselves: an undocumented suppression is exactly the "prose invariant
// nobody can audit" failure mode this suite exists to remove.
func collectAllows(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) []*allowDirective {
	var out []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				pos := fset.Position(c.Pos())
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowances — not our directive
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(Diagnostic{Analyzer: "lintdirective", Pos: pos,
						Message: "malformed //lint:allow: missing analyzer name and reason"})
					continue
				}
				name := fields[0]
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
				if reason == "" {
					report(Diagnostic{Analyzer: "lintdirective", Pos: pos,
						Message: "//lint:allow " + name + " needs a reason: every suppression must document why the invariant is safe to waive here"})
					continue
				}
				out = append(out, &allowDirective{Analyzer: name, Reason: reason, Pos: pos})
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by a directive on the same line or
// the line directly above, in the same file, naming d's analyzer.
func suppressed(d Diagnostic, allows []*allowDirective) bool {
	for _, a := range allows {
		if a.Analyzer != d.Analyzer || a.Pos.Filename != d.Pos.Filename {
			continue
		}
		if a.Pos.Line == d.Pos.Line || a.Pos.Line == d.Pos.Line-1 {
			a.used = true
			return true
		}
	}
	return false
}
