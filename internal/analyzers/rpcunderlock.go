package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// RPCUnderLock flags remote calls and blocking waits reachable while a mutex
// acquired in the same function is still held.
//
// This is the recurring bug class behind the PR 3 stale-handoff-prime fix,
// the PR 5 applyMu promotion race, and the PR 8 insert-then-evict atomicity
// fix: an RPC (bounded only by retry policy), an unbuffered channel
// operation, or a WaitGroup.Wait inside a critical section turns one slow
// peer into a pile-up behind the lock — and, when the remote handler calls
// back into the same node, into a distributed deadlock.
//
// Flagged while any sync.Mutex/RWMutex Lock/RLock from the same function is
// held (including held-for-the-rest-of-the-function via defer Unlock):
//
//   - calls to any method with the cluster.Transport Call signature
//     func(context.Context, string, any) (any, error) — Transport, Resilient,
//     and every concrete transport share it;
//   - channel sends and receives, except inside a select with a default
//     clause (those are non-blocking by construction);
//   - sync.WaitGroup.Wait and sync.Cond.Wait;
//   - time.Sleep and clock-seam Sleep calls.
//
// The analysis is intra-procedural and branch-aware: a lock released on one
// branch stays held on the others, and goroutine bodies start with a clean
// slate (they do not hold the spawner's locks).
var RPCUnderLock = &Analyzer{
	Name: "rpcunderlock",
	Doc: "flag RPC calls, channel operations, and blocking waits reachable while a sync.Mutex/RWMutex " +
		"acquired in the same function is held — slow peers must never stall a critical section",
	Run: runRPCUnderLock,
}

func runRPCUnderLock(pass *Pass) {
	condLockers := collectCondLockers(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				lw := &lockWalker{pass: pass, condLockers: condLockers}
				lw.walk(fd.Body.List, lockState{})
			}
		}
	}
}

// collectCondLockers maps every sync.Cond variable or field initialized with
// sync.NewCond(&mu) in this package to its locker's field name. Cond.Wait
// atomically releases that locker while parked, so holding it during Wait is
// the documented protocol, not a pile-up — only *additional* locks held
// across a Wait are hazards.
func collectCondLockers(pass *Pass) map[types.Object]string {
	out := map[types.Object]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "NewCond" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || pass.Info.Uses[id] == nil || pass.Info.Uses[id].Name() != "sync" {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			lockName := lastSelName(un.X)
			condObj := lvalueObject(pass, as.Lhs[0])
			if condObj != nil && lockName != "" {
				out[condObj] = lockName
			}
			return true
		})
	}
	return out
}

// lvalueObject resolves the object an assignment target refers to: the ident
// for locals, the field object for selector targets.
func lvalueObject(pass *Pass, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		if o := pass.Info.Defs[x]; o != nil {
			return o
		}
		return pass.Info.Uses[x]
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[x]; ok {
			return s.Obj()
		}
	}
	return nil
}

// lastSelName renders the final component of an expression like ing.statMu.
func lastSelName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// lockState maps a mutex expression (rendered as source, e.g. "c.mu") to the
// position where it was locked.
type lockState map[string]token.Pos

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// merge unions o into s (a lock held on any surviving path is held).
func (s lockState) merge(o lockState) {
	for k, v := range o {
		if _, ok := s[k]; !ok {
			s[k] = v
		}
	}
}

type lockWalker struct {
	pass        *Pass
	condLockers map[types.Object]string
}

// walk interprets stmts in order against held, returning whether the block
// definitely terminates (return/branch) before falling off the end.
func (w *lockWalker) walk(stmts []ast.Stmt, held lockState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, held) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt, held lockState) bool {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := w.lockOp(st.X); ok {
			switch op {
			case "Lock", "RLock":
				held[key] = st.Pos()
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return false
		}
		w.scan(st.X, held)
	case *ast.DeferStmt:
		if _, op, ok := w.lockOp(st.Call); ok && (op == "Unlock" || op == "RUnlock") {
			// defer mu.Unlock(): the lock stays held for the rest of the
			// function — no state change, everything below is under lock.
			return false
		}
		// Deferred closures run at return time under whatever locks are
		// still held then; modelling that precisely needs an exit-state
		// analysis, so they are walked with a clean slate to stay
		// false-positive-free. Arguments evaluate now, though.
		for _, arg := range st.Call.Args {
			w.scan(arg, held)
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.walk(lit.Body.List, lockState{})
		}
	case *ast.GoStmt:
		for _, arg := range st.Call.Args {
			w.scan(arg, held)
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.walk(lit.Body.List, lockState{}) // new goroutine: locks not inherited
		}
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.scan(e, held)
		}
		for _, e := range st.Lhs {
			w.scan(e, held)
		}
	case *ast.DeclStmt:
		w.scan(st, held)
	case *ast.IncDecStmt:
		w.scan(st.X, held)
	case *ast.SendStmt:
		w.scan(st.Chan, held)
		w.scan(st.Value, held)
		w.reportBlocked(st.Arrow, "channel send", held)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.scan(e, held)
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto leave this block
	case *ast.BlockStmt:
		return w.walk(st.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, held)
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.scan(st.Cond, held)
		thenHeld := held.clone()
		thenTerm := w.walk(st.Body.List, thenHeld)
		if st.Else != nil {
			elseHeld := held.clone()
			elseTerm := w.walkStmt(st.Else, elseHeld)
			for k := range held {
				delete(held, k)
			}
			if !thenTerm {
				held.merge(thenHeld)
			}
			if !elseTerm {
				held.merge(elseHeld)
			}
			return thenTerm && elseTerm
		}
		// No else: the not-taken path keeps the entry state.
		if !thenTerm {
			held.merge(thenHeld)
		}
		return false
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			w.scan(st.Cond, held)
		}
		body := held.clone()
		w.walk(st.Body.List, body)
		if st.Post != nil {
			w.walkStmt(st.Post, body)
		}
		held.merge(body)
	case *ast.RangeStmt:
		w.scan(st.X, held)
		body := held.clone()
		w.walk(st.Body.List, body)
		held.merge(body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Tag != nil {
			w.scan(st.Tag, held)
		}
		w.walkClauses(st.Body, held)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.walkClauses(st.Body, held)
	case *ast.SelectStmt:
		w.walkSelect(st, held)
	}
	return false
}

// walkClauses analyzes each switch clause against a copy of the entry state
// and merges the states of clauses that fall out of the switch.
func (w *lockWalker) walkClauses(body *ast.BlockStmt, held lockState) {
	entry := held.clone()
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.scan(e, entry)
		}
		clause := entry.clone()
		if !w.walk(cc.Body, clause) {
			held.merge(clause)
		}
	}
}

// walkSelect flags blocking comm operations under lock unless the select has
// a default clause, then analyzes each clause body.
func (w *lockWalker) walkSelect(st *ast.SelectStmt, held lockState) {
	hasDefault := false
	for _, cl := range st.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	entry := held.clone()
	for _, cl := range st.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm != nil && !hasDefault {
			switch cm := cc.Comm.(type) {
			case *ast.SendStmt:
				w.reportBlocked(cm.Arrow, "channel send (select without default)", entry)
			default:
				w.reportBlocked(cc.Comm.Pos(), "channel receive (select without default)", entry)
			}
		}
		clause := entry.clone()
		if !w.walk(cc.Body, clause) {
			held.merge(clause)
		}
	}
}

// scan inspects an expression tree for banned operations under held locks.
// Function literals are definitions, not executions, and are analyzed with a
// clean slate — except immediately-invoked ones, which run right here.
func (w *lockWalker) scan(n ast.Node, held lockState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			w.walk(e.Body.List, lockState{})
			return false
		case *ast.CallExpr:
			if lit, ok := e.Fun.(*ast.FuncLit); ok {
				for _, a := range e.Args {
					w.scan(a, held)
				}
				w.walk(lit.Body.List, held.clone()) // immediately invoked: same goroutine
				return false
			}
			if w.isCondWait(e) {
				w.reportCondWait(e, held)
				return true
			}
			if what, bad := w.blockingCall(e); bad {
				w.reportBlocked(e.Pos(), what, held)
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				w.reportBlocked(e.Pos(), "channel receive", held)
			}
		}
		return true
	})
}

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock on sync.Mutex/RWMutex
// (including promoted methods of embedded mutexes) and returns the lock key.
func (w *lockWalker) lockOp(e ast.Expr) (key, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	selection, found := w.pass.Info.Selections[sel]
	if !found {
		return "", "", false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), name, true
}

// blockingCall classifies calls that block on remote or concurrent progress.
func (w *lockWalker) blockingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name

	// time.Sleep / clock-seam Sleep.
	if name == "Sleep" {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := w.pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "time" {
				return "time.Sleep", true
			}
		}
	}

	selection, found := w.pass.Info.Selections[sel]
	if !found {
		return "", false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn {
		return "", false
	}

	switch name {
	case "Wait":
		if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			recv := selection.Recv()
			if p, isPtr := recv.(*types.Pointer); isPtr {
				recv = p.Elem()
			}
			if n, isNamed := recv.(*types.Named); isNamed && n.Obj().Name() == "WaitGroup" {
				return "sync.WaitGroup.Wait", true
			}
		}
	case "Call":
		if isTransportCallSig(fn) {
			return "transport Call (RPC)", true
		}
	case "Sleep":
		if isClockSleepSig(fn) {
			return "clock Sleep", true
		}
	}
	return "", false
}

// isTransportCallSig matches func(context.Context, string, any) (any, error)
// — the cluster.Transport Call shape shared by Resilient and every concrete
// transport, without needing the interface object itself.
func isTransportCallSig(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 3 || sig.Results().Len() != 2 {
		return false
	}
	p := sig.Params()
	if !isNamedType(p.At(0).Type(), "context", "Context") {
		return false
	}
	if b, ok := p.At(1).Type().(*types.Basic); !ok || b.Kind() != types.String {
		return false
	}
	if !isEmptyInterface(p.At(2).Type()) {
		return false
	}
	r := sig.Results()
	return isEmptyInterface(r.At(0).Type()) && isErrorType(r.At(1).Type())
}

// isClockSleepSig matches func(context.Context, time.Duration) error — the
// stcam/internal/clock Sleep shape.
func isClockSleepSig(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return false
	}
	return isNamedType(sig.Params().At(0).Type(), "context", "Context") &&
		isNamedType(sig.Params().At(1).Type(), "time", "Duration") &&
		isErrorType(sig.Results().At(0).Type())
}

func isNamedType(t types.Type, pkg, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkg
}

func isEmptyInterface(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Named:
			t = u.Underlying()
		case *types.Interface:
			return u.NumMethods() == 0
		default:
			return false
		}
	}
}

// isCondWait matches c.Wait() on a sync.Cond receiver.
func (w *lockWalker) isCondWait(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	selection, found := w.pass.Info.Selections[sel]
	if !found {
		return false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := selection.Recv()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	n, isNamed := recv.(*types.Named)
	return isNamed && n.Obj().Name() == "Cond"
}

// reportCondWait flags a Cond.Wait only for locks other than the Cond's own
// locker (which Wait releases while parked). When the locker cannot be
// resolved from a sync.NewCond(&mu) in this package, nothing is reported —
// the correct-usage shape must never false-positive.
func (w *lockWalker) reportCondWait(call *ast.CallExpr, held lockState) {
	if len(held) == 0 {
		return
	}
	sel := call.Fun.(*ast.SelectorExpr)
	condObj := lvalueObject(w.pass, sel.X)
	lockName, known := "", false
	if condObj != nil {
		lockName, known = w.condLockers[condObj]
	}
	if !known {
		return
	}
	others := lockState{}
	for k, p := range held {
		if k != lockName && !hasSuffixComponent(k, lockName) {
			others[k] = p
		}
	}
	w.reportBlocked(call.Pos(), "sync.Cond.Wait", others)
}

// hasSuffixComponent reports whether key's final dotted component is name.
func hasSuffixComponent(key, name string) bool {
	if i := len(key) - len(name); i > 0 && key[i-1] == '.' && key[i:] == name {
		return true
	}
	return false
}

func (w *lockWalker) reportBlocked(pos token.Pos, what string, held lockState) {
	if len(held) == 0 {
		return
	}
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lock := keys[0]
	w.pass.Report(pos, "%s while %s is held (locked at line %d): release the lock before blocking on remote or concurrent progress",
		what, lock, w.pass.Fset.Position(held[lock]).Line)
}
