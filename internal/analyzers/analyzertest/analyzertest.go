// Package analyzertest runs an analyzer over a golden fixture package and
// checks its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (self-contained on the standard
// library, like the framework it tests).
//
// A fixture is a directory of Go files forming one package. Every line that
// must produce a diagnostic carries a trailing comment:
//
//	reg.Counter("rpc." + peer).Inc() // want `not a compile-time constant`
//
// The quoted text is a regexp matched against the diagnostic message. Every
// diagnostic must be covered by a want on its line and every want must be hit
// — extra or missing diagnostics fail the test. //lint:allow suppressions are
// applied before matching, so suppression fixtures simply carry no want.
package analyzertest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"stcam/internal/analyzers"
)

var wantRE = regexp.MustCompile("^//\\s*want\\s+(?:\"(.*)\"|`(.*)`)\\s*$")

// Run loads fixtureDir as a package with import path asPath (which scoped
// analyzers match against, e.g. "stcam/internal/wire/lintfixture"), applies
// the analyzer, and diffs diagnostics against the fixture's want comments.
func Run(t *testing.T, a *analyzers.Analyzer, fixtureDir, asPath string) {
	t.Helper()
	loader, err := analyzers.NewLoader(fixtureDir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(fixtureDir, asPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixtureDir, err)
	}

	type wantKey struct {
		file string
		line int
	}
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", pkg.Fset.Position(c.Pos()), pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				k := wantKey{pos.Filename, pos.Line}
				wants[k] = append(wants[k], rx)
			}
		}
	}

	diags := analyzers.RunPackage(pkg, []*analyzers.Analyzer{a})

	matched := map[wantKey][]bool{}
	for _, d := range diags {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		rxs := wants[k]
		hit := false
		for i, rx := range rxs {
			if len(matched[k]) == 0 {
				matched[k] = make([]bool, len(rxs))
			}
			if !matched[k][i] && rx.MatchString(d.Message) {
				matched[k][i] = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic at %s:%d: %s (%s)", k.file, k.line, d.Message, d.Analyzer)
		}
	}
	for k, rxs := range wants {
		for i, rx := range rxs {
			if len(matched[k]) <= i || !matched[k][i] {
				t.Errorf("missing diagnostic at %s:%d: want match for %q", k.file, k.line, rx)
			}
		}
	}
	if t.Failed() {
		var all []string
		for _, d := range diags {
			all = append(all, fmt.Sprintf("  %s:%d:%d %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer))
		}
		t.Logf("all diagnostics:\n%s", strings.Join(all, "\n"))
	}
}
