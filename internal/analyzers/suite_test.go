package analyzers_test

import (
	"strings"
	"testing"

	"stcam/internal/analyzers"
	"stcam/internal/analyzers/analyzertest"
)

// Each analyzer runs over a golden fixture package; the asPath places the
// fixture inside the analyzer's scoped tree so path-matched analyzers fire.
// Every fixture dir carries positive cases (// want), negative cases (no
// want), and //lint:allow suppression cases.

func TestRPCUnderLockFixtures(t *testing.T) {
	analyzertest.Run(t, analyzers.RPCUnderLock, "testdata/rpcunderlock", "stcam/lintfixture")
}

func TestBufReleaseFixtures(t *testing.T) {
	analyzertest.Run(t, analyzers.BufRelease, "testdata/bufrelease", "stcam/lintfixture")
}

func TestFailClosedFixtures(t *testing.T) {
	analyzertest.Run(t, analyzers.FailClosed, "testdata/failclosed", "stcam/internal/wire/lintfixture")
}

func TestClockInjectFixtures(t *testing.T) {
	analyzertest.Run(t, analyzers.ClockInject, "testdata/clockinject", "stcam/internal/core/lintfixture")
}

func TestMetricNameFixtures(t *testing.T) {
	analyzertest.Run(t, analyzers.MetricName, "testdata/metricname", "stcam/lintfixture")
}

// A //lint:allow naming a known analyzer with no diagnostic under it is
// itself reported: suppressions cannot outlive the violations they document.
func TestUnusedAllowIsReported(t *testing.T) {
	loader, err := analyzers.NewLoader("testdata/unusedallow")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir("testdata/unusedallow", "stcam/lintfixture")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags := analyzers.RunPackage(pkg, []*analyzers.Analyzer{analyzers.MetricName})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 stale-suppression report: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "lintdirective" || !strings.Contains(d.Message, "unused //lint:allow metricname") {
		t.Errorf("unexpected diagnostic: %s (%s)", d.Message, d.Analyzer)
	}
}

// Scoped analyzers must not fire outside their trees: the same fixtures loaded
// under an out-of-scope import path produce zero diagnostics.
func TestScopedAnalyzersRespectPath(t *testing.T) {
	for _, tc := range []struct {
		a   *analyzers.Analyzer
		dir string
	}{
		{analyzers.FailClosed, "testdata/failclosed"},
		{analyzers.ClockInject, "testdata/clockinject"},
	} {
		if tc.a.Match == nil {
			t.Fatalf("%s: expected a scoped Match", tc.a.Name)
		}
		if tc.a.Match("stcam/internal/obs") {
			t.Errorf("%s: matches stcam/internal/obs, expected scoped", tc.a.Name)
		}
	}
}
