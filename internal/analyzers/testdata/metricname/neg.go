// Negative fixtures: keys the exporter contract accepts, and lookalike calls
// that are not the metrics registry at all.
package fixture

import "stcam/internal/metrics"

const keyIngestRows = "ingest.rows_total"

// Literal keys in the naming scheme.
func literalKeys(reg *metrics.Registry) {
	reg.Counter("rpc.sent").Inc()
	reg.Gauge("worker.queue_depth").Set(3)
	reg.Histogram("query.latency_ms").Observe(12)
}

// Named constants are compile-time constants too.
func namedConstKey(reg *metrics.Registry) {
	reg.Counter(keyIngestRows).Inc()
}

// Concatenation of constants is still a constant expression.
func constConcat(reg *metrics.Registry) {
	const prefix = "scatter."
	reg.Counter(prefix + "fanout_total").Inc()
}

// A different type with a Counter method is not the metrics registry.
type tally struct{ n map[string]int }

func (t *tally) Counter(name string) int { return t.n[name] }

func notTheRegistry(t *tally, peer string) int {
	return t.Counter("anything-Goes " + peer)
}
