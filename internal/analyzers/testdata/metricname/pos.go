// Positive fixtures: metric keys the exporter contract rejects.
package fixture

import "stcam/internal/metrics"

// A key built from runtime data can mint unbounded Prometheus series.
func dynamicKey(reg *metrics.Registry, peer string) {
	reg.Counter("rpc.sent." + peer).Inc() // want `metric key for Registry\.Counter is not a compile-time constant`
}

// Same for gauges and histograms.
func dynamicGauge(reg *metrics.Registry, shard string) {
	reg.Gauge("shard.depth." + shard).Set(0) // want `metric key for Registry\.Gauge is not a compile-time constant`
}

func dynamicHistogram(reg *metrics.Registry, op string) {
	reg.Histogram(op).Observe(1) // want `metric key for Registry\.Histogram is not a compile-time constant`
}

// Constant keys still have to match the exportable naming scheme.
func badLiteralKeys(reg *metrics.Registry) {
	reg.Counter("Rpc.Sent").Inc()      // want `does not match the stcam-exportable naming scheme`
	reg.Counter("2fast").Inc()         // want `does not match the stcam-exportable naming scheme`
	reg.Gauge("rpc.sent-total").Set(0) // want `does not match the stcam-exportable naming scheme`
}
