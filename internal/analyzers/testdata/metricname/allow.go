// Suppression fixture: the sanctioned dynamic-key shape — cardinality bounded
// by a closed enum and documented on the directive.
package fixture

import "stcam/internal/metrics"

type opKind uint8

func (k opKind) String() string {
	if k == 0 {
		return "read"
	}
	return "write"
}

// Per-kind counters whose cardinality is bounded by the opKind enum.
func perKindCounter(reg *metrics.Registry, k opKind) {
	reg.Counter("op.count." + k.String()).Inc() //lint:allow metricname cardinality bounded by the opKind enum (2 values)
}
