// Negative fixtures: fail-closed dispatch shapes, plus switches out of scope.
package fixture

import "fmt"

// Default returns an error: the canonical fail-closed shape.
func dispatchReturnsError(k MsgKind) (int, error) {
	switch k {
	case KindA:
		return 1, nil
	case KindB:
		return 2, nil
	default:
		return 0, fmt.Errorf("unknown kind %d", k)
	}
}

// Default panics: also visibly fails closed (internal invariant switches).
func dispatchPanics(f ChunkFormat) int {
	switch f {
	case FormatV1:
		return 1
	default:
		panic("unknown format")
	}
}

// Decoder-struct style: the default records the error on an error-typed field.
type decoder struct {
	err error
}

func (d *decoder) decodeKind(k MsgKind) int {
	switch k {
	case KindA:
		return 1
	default:
		d.err = fmt.Errorf("unknown kind %d", k)
	}
	return 0
}

// Type switch with a fail-closed default inside a decode function.
func decodeChecked(v any) (int, error) {
	switch v.(type) {
	case int:
		return 1, nil
	default:
		return 0, fmt.Errorf("unknown payload %T", v)
	}
}

// A switch over a plain int is not an enum dispatch and is out of scope.
func plainIntSwitch(n int) int {
	switch n {
	case 0:
		return 1
	case 1:
		return 2
	}
	return 0
}

// Type switches outside decode/unmarshal functions are out of scope: this is
// presentation logic, not a wire dispatch.
func describe(v any) string {
	switch v.(type) {
	case int:
		return "int"
	case string:
		return "string"
	}
	return "other"
}
