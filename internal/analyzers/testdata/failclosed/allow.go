// Suppression fixture: an exhaustive-by-construction switch documented with
// a //lint:allow directive instead of a dead default.
package fixture

// The tag is masked to one bit, so both values are covered by construction.
func maskedDispatch(k MsgKind) int {
	switch k & 1 { //lint:allow failclosed tag is masked to one bit so both values are enumerated
	case 0:
		return 1
	case 1:
		return 2
	}
	return 0
}
