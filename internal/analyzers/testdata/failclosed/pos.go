// Positive fixtures: decode switches that fall open on unknown values.
package fixture

import "fmt"

type MsgKind uint8

type ChunkFormat uint8

const (
	KindA MsgKind = iota
	KindB
)

const (
	FormatV1 ChunkFormat = iota
	FormatV2
)

// Enum switch with no default: an unknown kind falls off and decodes as zero.
func dispatchNoDefault(k MsgKind) int {
	out := 0
	switch k { // want `switch on .*Kind has no default clause`
	case KindA:
		out = 1
	case KindB:
		out = 2
	}
	return out
}

// A default that just logs keeps going: it does not fail closed.
func dispatchSoftDefault(f ChunkFormat) int {
	out := 0
	switch f {
	case FormatV1:
		out = 1
	default: // want `has a default that does not fail closed`
		fmt.Println("unknown format", f)
	}
	return out
}

// Type switch inside a decode function with no default: unknown payloads pass
// through silently.
func decodePayload(v any) int {
	out := 0
	switch v.(type) { // want `decode-dispatch type switch has no default clause`
	case int:
		out = 1
	case string:
		out = 2
	}
	return out
}
