// Negative fixtures: correct locking discipline, no diagnostics expected.
package fixture

import (
	"context"
	"sync"
	"time"
)

type cleanNode struct {
	mu   sync.Mutex
	t    fakeTransport
	ch   chan int
	wg   sync.WaitGroup
	cond *sync.Cond
	data map[string]int
}

func newCleanNode() *cleanNode {
	n := &cleanNode{ch: make(chan int, 1), data: map[string]int{}}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// The canonical shape: snapshot under the lock, call after releasing it.
func (n *cleanNode) snapshotThenCall(ctx context.Context) {
	n.mu.Lock()
	addr := "w1"
	n.data[addr]++
	n.mu.Unlock()
	n.t.Call(ctx, addr, nil)
}

// Non-blocking send: select with a default clause never parks.
func (n *cleanNode) nonBlockingSendUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case n.ch <- 1:
	default:
	}
}

// A spawned goroutine does not inherit the spawner's locks.
func (n *cleanNode) goroutineAfterLock(ctx context.Context) {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		n.t.Call(ctx, "w1", nil)
		n.ch <- 1
	}()
}

// Cond.Wait holding only the Cond's own locker is the documented protocol.
func (n *cleanNode) condWaitProper() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(n.data) == 0 {
		n.cond.Wait()
	}
}

// Unlock on every branch before the blocking call.
func (n *cleanNode) branchesReleaseFirst(ctx context.Context, fast bool) {
	n.mu.Lock()
	if fast {
		n.mu.Unlock()
		n.t.Call(ctx, "w1", nil)
		return
	}
	n.mu.Unlock()
	n.wg.Wait()
}

// Blocking operations with no lock held at all.
func (n *cleanNode) noLock(ctx context.Context) {
	n.t.Call(ctx, "w1", nil)
	n.ch <- 1
	<-n.ch
	time.Sleep(time.Microsecond)
	n.wg.Wait()
}

// A method named Call with a different signature is not a transport call.
type notTransport struct{ mu sync.Mutex }

func (m *notTransport) Call(n int) int { return n + 1 }

func (m *notTransport) localCallUnderLock() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Call(41)
}
