// Suppression fixtures: deliberate violations documented with //lint:allow.
package fixture

import "sync"

type allowNode struct {
	mu sync.Mutex
	ch chan int
}

// The send is deliberate and documented, so no diagnostic survives.
func (n *allowNode) deliberateSendUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ch <- 1 //lint:allow rpcunderlock buffered handshake channel sized to the worker count, can never block
}

// Directive on the line above the violation also suppresses.
func (n *allowNode) deliberateSendAbove() {
	n.mu.Lock()
	defer n.mu.Unlock()
	//lint:allow rpcunderlock buffered handshake channel sized to the worker count, can never block
	n.ch <- 1
}
