// Positive fixtures: every line below must trip rpcunderlock.
package fixture

import (
	"context"
	"sync"
	"time"
)

type fakeTransport struct{}

func (fakeTransport) Call(ctx context.Context, addr string, req any) (any, error) {
	return nil, nil
}

type node struct {
	mu sync.Mutex
	rw sync.RWMutex
	t  fakeTransport
	ch chan int
	wg sync.WaitGroup
}

func (n *node) rpcUnderDeferredLock(ctx context.Context) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.t.Call(ctx, "w1", nil) // want `transport Call \(RPC\) while n\.mu is held`
}

func (n *node) rpcUnderExplicitLock(ctx context.Context) {
	n.mu.Lock()
	n.t.Call(ctx, "w1", nil) // want `transport Call \(RPC\) while n\.mu is held`
	n.mu.Unlock()
}

func (n *node) sendUnderLock() {
	n.mu.Lock()
	n.ch <- 1 // want `channel send while n\.mu is held`
	n.mu.Unlock()
}

func (n *node) recvUnderReadLock() int {
	n.rw.RLock()
	defer n.rw.RUnlock()
	return <-n.ch // want `channel receive while n\.rw is held`
}

func (n *node) waitGroupUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.wg.Wait() // want `sync\.WaitGroup\.Wait while n\.mu is held`
}

func (n *node) sleepUnderLock() {
	n.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while n\.mu is held`
	n.mu.Unlock()
}

// The lock survives the early-unlock branch: the call on the fall-through
// path still runs under it.
func (n *node) branchStillHeld(ctx context.Context, done bool) {
	n.mu.Lock()
	if done {
		n.mu.Unlock()
		return
	}
	n.t.Call(ctx, "w1", nil) // want `transport Call \(RPC\) while n\.mu is held`
	n.mu.Unlock()
}

// A select with no default clause blocks on its comm operations.
func (n *node) selectWithoutDefault() {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case n.ch <- 1: // want `channel send \(select without default\) while n\.mu is held`
	case <-n.ch: // want `channel receive \(select without default\) while n\.mu is held`
	}
}

// An immediately-invoked literal runs on this goroutine, under the lock.
func (n *node) iife(ctx context.Context) {
	n.mu.Lock()
	defer n.mu.Unlock()
	func() {
		n.t.Call(ctx, "w1", nil) // want `transport Call \(RPC\) while n\.mu is held`
	}()
}

// An RPC inside a loop body entered with the lock held.
func (n *node) loopUnderLock(ctx context.Context, addrs []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, a := range addrs {
		n.t.Call(ctx, a, nil) // want `transport Call \(RPC\) while n\.mu is held`
	}
}

// Cond.Wait releases its own locker, but n.mu is also held across the park.
func (n *node) condWaitWithExtraLock() {
	c := sync.NewCond(&n.rw)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rw.Lock()
	c.Wait() // want `sync\.Cond\.Wait while n\.mu is held`
	n.rw.Unlock()
}
