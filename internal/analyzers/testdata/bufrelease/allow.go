// Suppression fixture: a documented deliberate exception.
package fixture

import "stcam/internal/wire"

var scratch []byte

// A process-lifetime scratch buffer deliberately never returns to the pool.
func pinnedScratch() {
	b := wire.BorrowBuf() //lint:allow bufrelease pinned for the process lifetime as the trace scratch buffer
	scratch = b.B
}
