// Positive fixtures: violations of the wire.Buf pooling contract.
package fixture

import "stcam/internal/wire"

// No Release anywhere: the pool never gets the buffer back.
func fallOffLeaks() {
	b := wire.BorrowBuf() // want `never Released on some path`
	b.B = append(b.B, 1)
}

// An early return skips the Release on the error path.
func earlyReturnLeaks(fail bool) int {
	b := wire.BorrowBuf()
	if fail {
		return 0 // want `return without Release of pooled buffer borrowed at line \d+`
	}
	b.Release()
	return 1
}

// Returning the bytes of a buffer whose deferred Release reclaims them first.
func deferredEscape() []byte {
	b := wire.BorrowBuf()
	defer b.Release()
	b.B = append(b.B, 1, 2, 3)
	return b.B // want `returned past the deferred Release`
}

// Using the buffer after handing it back to the pool.
func useAfterRelease() int {
	b := wire.BorrowBuf()
	b.B = append(b.B, 7)
	b.Release()
	return len(b.B) // want `use of pooled buffer after Release`
}

// A slice taken from Grow aliases the pooled array past its Release.
func aliasRetained() []byte {
	b := wire.BorrowBuf()
	s := b.Grow(8)
	b.Release()
	return s // want `use of bytes from a pooled buffer after its Release`
}

// Releasing twice hands the same buffer to two future borrowers.
func doubleRelease() {
	b := wire.BorrowBuf()
	b.Release()
	b.Release() // want `double Release of pooled buffer borrowed at line \d+`
}

// One branch releases, the other forgets: the merge still flags the return.
func halfReleased(ok bool) int {
	b := wire.BorrowBuf()
	if ok {
		b.Release()
	}
	return 0 // want `return without Release`
}
