// Negative fixtures: every sanctioned borrow/release shape, no diagnostics.
package fixture

import "stcam/internal/wire"

// The canonical shape: borrow, defer the release, use freely until return.
func deferRelease() int {
	b := wire.BorrowBuf()
	defer b.Release()
	b.B = append(b.B, 1, 2, 3)
	return len(b.B) // len() does not retain the bytes
}

// Explicit release on every path.
func releaseAllPaths(cond bool) {
	b := wire.BorrowBuf()
	if cond {
		b.B = append(b.B, 1)
		b.Release()
		return
	}
	b.Release()
}

// Copying out before Release is the documented way to keep bytes.
func copyOutBeforeRelease() []byte {
	b := wire.BorrowBuf()
	b.B = append(b.B, 1, 2, 3)
	out := append([]byte(nil), b.B...)
	b.Release()
	return out
}

// Grow + read + release inside one call chain.
func growAndRelease(n int) int {
	b := wire.BorrowBuf()
	body := b.Grow(n)
	total := 0
	for _, x := range body {
		total += int(x)
	}
	b.Release()
	return total
}

// Passing the *Buf to another function transfers ownership: the contract is
// the callee's to uphold, so nothing is reported here.
func handOff(sink func(*wire.Buf)) {
	b := wire.BorrowBuf()
	sink(b)
}

// String conversion copies, so returning it past the deferred Release is fine.
func stringCopyEscapesSafely() string {
	b := wire.BorrowBuf()
	defer b.Release()
	b.B = append(b.B, 'o', 'k')
	return string(b.B)
}
