// Fixture for the stale-suppression check: the directive names a real
// analyzer but nothing on this line violates it, so the directive itself is
// reported and can never quietly outlive the violation it once documented.
package fixture

func fine() int {
	x := 1 //lint:allow metricname the violation this documented was fixed long ago
	return x
}
