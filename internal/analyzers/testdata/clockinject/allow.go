// Suppression fixture: a documented wall-clock read in a deterministic
// package (the shape the real allowlisted seam implementation uses).
package fixture

import "time"

// A log-only timestamp that never feeds scheduling decisions.
func logStamp() int64 {
	return time.Now().UnixNano() //lint:allow clockinject log-only timestamp, never feeds a scheduling decision
}
