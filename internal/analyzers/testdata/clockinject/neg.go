// Negative fixtures: the sanctioned ways to touch time in a deterministic
// package — through the injected seam, or without reading the wall clock.
package fixture

import (
	"context"
	"time"

	"stcam/internal/clock"
)

type node struct {
	clk clock.Clock
}

// The seam: Now and Sleep ride the injected clock, not package time.
func (n *node) heartbeat(ctx context.Context) error {
	t0 := n.clk.Now()
	if err := n.clk.Sleep(ctx, 50*time.Millisecond); err != nil {
		return err
	}
	_ = n.clk.Now().Sub(t0)
	return nil
}

// time.Duration arithmetic and constants never read the wall clock.
func backoff(attempt int) time.Duration {
	d := 100 * time.Millisecond << uint(attempt)
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// time.Time values flowing through as data are fine; only Now/Sleep are reads.
func newer(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

// A local method named Now on a non-time receiver is not a wall-clock read.
type fakeSource struct{ t time.Time }

func (f *fakeSource) Now() time.Time { return f.t }

func viaSource(f *fakeSource) time.Time { return f.Now() }
