// Positive fixtures: raw wall-clock access in a deterministic package.
package fixture

import (
	"time"
	tt "time"
)

// Raw time.Now decouples this path from the seeded soak schedule.
func stamp() time.Time {
	return time.Now() // want `raw time\.Now in a deterministic package`
}

// Raw time.Sleep blocks on the wall clock instead of the injected one.
func pause() {
	time.Sleep(10 * time.Millisecond) // want `raw time\.Sleep in a deterministic package`
}

// Renaming the import does not hide the call.
func stampAliased() tt.Time {
	return tt.Now() // want `raw time\.Now in a deterministic package`
}

// Calls buried in expressions are still found.
func age(t0 time.Time) time.Duration {
	return time.Now().Sub(t0) // want `raw time\.Now in a deterministic package`
}

// time.Since is time.Now in disguise and is banned with it.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `raw time\.Since in a deterministic package`
}
