package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufRelease enforces the wire.Buf pooling contract from DESIGN.md (the PR 7
// aliasing rules):
//
//   - every wire.BorrowBuf must be Released on all return paths (a missed
//     path silently degrades the pool back to per-message allocation);
//   - the buffer — and any slice taken from b.B or b.Grow — must not be used
//     after Release, when the backing array belongs to the pool again and the
//     next borrower will scribble over it.
//
// The analysis is intra-procedural and branch-aware. A borrow that escapes
// the function (stored, passed, or returned) transfers ownership and stops
// being tracked: the contract is then the callee's to uphold.
var BufRelease = &Analyzer{
	Name: "bufrelease",
	Doc: "every wire.BorrowBuf needs a Release on all return paths, and no use of the buffer " +
		"or its bytes may follow the Release — the pool owns the backing array after that",
	Run: runBufRelease,
}

func runBufRelease(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w := &bufWalker{pass: pass}
				state := bufStates{}
				if !w.walk(fd.Body.List, state) {
					w.checkFallOff(state)
				}
			}
		}
	}
}

// bufState tracks one borrowed buffer along the current path.
type bufState struct {
	obj       types.Object // the *wire.Buf variable
	borrowPos token.Pos
	// mayUnreleased: some path reaching here has not released (drives
	// missing-release diagnostics). released: every path reaching here has
	// released (drives use-after-release diagnostics).
	mayUnreleased bool
	released      bool
	deferred      bool // defer v.Release() seen: released at return
	escaped       bool // ownership transferred; stop tracking
	aliases       map[types.Object]bool
}

func (b *bufState) clone() *bufState {
	c := *b
	c.aliases = make(map[types.Object]bool, len(b.aliases))
	for k := range b.aliases {
		c.aliases[k] = true
	}
	return &c
}

type bufStates map[types.Object]*bufState

func (s bufStates) clone() bufStates {
	c := make(bufStates, len(s))
	for k, v := range s {
		c[k] = v.clone()
	}
	return c
}

// mergeFrom folds a surviving branch state into s.
func (s bufStates) mergeFrom(o bufStates) {
	for k, ob := range o {
		b, ok := s[k]
		if !ok {
			s[k] = ob
			continue
		}
		b.mayUnreleased = b.mayUnreleased || ob.mayUnreleased
		b.released = b.released && ob.released
		b.deferred = b.deferred || ob.deferred
		b.escaped = b.escaped || ob.escaped
		for a := range ob.aliases {
			b.aliases[a] = true
		}
	}
}

type bufWalker struct {
	pass *Pass
}

func (w *bufWalker) walk(stmts []ast.Stmt, st bufStates) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *bufWalker) walkStmt(s ast.Stmt, st bufStates) bool {
	switch n := s.(type) {
	case *ast.AssignStmt:
		// Borrow: v := wire.BorrowBuf().
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 && isBorrowBufCall(w.pass, n.Rhs[0]) {
			if id, ok := n.Lhs[0].(*ast.Ident); ok {
				if obj := w.pass.Info.Defs[id]; obj != nil {
					st[obj] = &bufState{obj: obj, borrowPos: n.Pos(), mayUnreleased: true, aliases: map[types.Object]bool{}}
					return false
				}
				if obj := w.pass.Info.Uses[id]; obj != nil { // re-assignment with =
					st[obj] = &bufState{obj: obj, borrowPos: n.Pos(), mayUnreleased: true, aliases: map[types.Object]bool{}}
					return false
				}
			}
			// Borrow into a non-ident target (field, index): ownership
			// escapes immediately; nothing to track.
			return false
		}
		// Alias: s := v.B or s := v.Grow(n).
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			if b := w.bytesAliasSource(n.Rhs[0], st); b != nil {
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					if obj := w.pass.Info.Defs[id]; obj != nil {
						w.scanExpr(n.Rhs[0], st)
						b.aliases[obj] = true
						return false
					}
				}
			}
		}
		w.scan(s, st)
	case *ast.ExprStmt:
		// v.Release().
		if b := w.releaseTarget(n.X, st); b != nil {
			if b.released {
				w.pass.Report(n.Pos(), "double Release of pooled buffer borrowed at line %d", w.line(b.borrowPos))
			}
			b.released = true
			b.mayUnreleased = false
			return false
		}
		w.scan(s, st)
	case *ast.DeferStmt:
		if b := w.releaseTarget(n.Call, st); b != nil {
			b.deferred = true
			b.mayUnreleased = false
			return false
		}
		w.scan(s, st)
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			w.scanExpr(e, st)
		}
		w.checkReturn(n, st)
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.walk(n.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(n.Stmt, st)
	case *ast.IfStmt:
		if n.Init != nil {
			w.walkStmt(n.Init, st)
		}
		w.scanExpr(n.Cond, st)
		thenSt := st.clone()
		thenTerm := w.walk(n.Body.List, thenSt)
		if n.Else != nil {
			elseSt := st.clone()
			elseTerm := w.walkStmt(n.Else, elseSt)
			for k := range st {
				delete(st, k)
			}
			if !thenTerm {
				st.mergeFrom(thenSt)
			}
			if !elseTerm {
				st.mergeFrom(elseSt)
			}
			return thenTerm && elseTerm
		}
		if !thenTerm {
			st.mergeFrom(thenSt)
		}
		return false
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.walkCompound(n, st)
	default:
		w.scan(s, st)
	}
	return false
}

// walkCompound handles loops and switches: clause bodies run against clones,
// survivors merge back.
func (w *bufWalker) walkCompound(s ast.Stmt, st bufStates) {
	switch n := s.(type) {
	case *ast.ForStmt:
		if n.Init != nil {
			w.walkStmt(n.Init, st)
		}
		if n.Cond != nil {
			w.scanExpr(n.Cond, st)
		}
		body := st.clone()
		w.walk(n.Body.List, body)
		if n.Post != nil {
			w.walkStmt(n.Post, body)
		}
		st.mergeFrom(body)
	case *ast.RangeStmt:
		w.scanExpr(n.X, st)
		body := st.clone()
		w.walk(n.Body.List, body)
		st.mergeFrom(body)
	case *ast.SwitchStmt:
		if n.Init != nil {
			w.walkStmt(n.Init, st)
		}
		if n.Tag != nil {
			w.scanExpr(n.Tag, st)
		}
		w.walkCaseClauses(n.Body, st)
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			w.walkStmt(n.Init, st)
		}
		w.walkCaseClauses(n.Body, st)
	case *ast.SelectStmt:
		for _, cl := range n.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			clause := st.clone()
			if cc.Comm != nil {
				w.walkStmt(cc.Comm, clause)
			}
			if !w.walk(cc.Body, clause) {
				st.mergeFrom(clause)
			}
		}
	}
}

func (w *bufWalker) walkCaseClauses(body *ast.BlockStmt, st bufStates) {
	entry := st.clone()
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.scanExpr(e, entry)
		}
		clause := entry.clone()
		if !w.walk(cc.Body, clause) {
			st.mergeFrom(clause)
		}
	}
}

// checkReturn reports borrows that are not settled at this return.
func (w *bufWalker) checkReturn(n *ast.ReturnStmt, st bufStates) {
	for _, b := range st {
		if b.escaped {
			continue
		}
		if b.deferred {
			// Returned bytes outlive the deferred Release. Only slice-typed
			// results can retain the pooled array; len(b.B) or string(b.B)
			// take a measurement or a copy and are fine.
			for _, e := range n.Results {
				if w.retainsSlice(e) && w.mentionsBytes(e, b) {
					w.pass.Report(e.Pos(), "pooled buffer bytes (borrowed at line %d) returned past the deferred Release: the pool reclaims the backing array first — copy them out", w.line(b.borrowPos))
				}
			}
			continue
		}
		if b.mayUnreleased {
			w.pass.Report(n.Pos(), "return without Release of pooled buffer borrowed at line %d: missed paths degrade the pool to per-message allocation", w.line(b.borrowPos))
			b.mayUnreleased = false // one report per leaking return is enough
		}
	}
}

// checkFallOff reports borrows still unreleased when the function body falls
// off its end.
func (w *bufWalker) checkFallOff(st bufStates) {
	for _, b := range st {
		if !b.escaped && !b.deferred && b.mayUnreleased {
			w.pass.Report(b.borrowPos, "wire.BorrowBuf result is never Released on some path through this function")
		}
	}
}

// scan walks a whole statement for uses; scanExpr a single expression.
func (w *bufWalker) scan(s ast.Stmt, st bufStates) { w.inspect(s, st) }

func (w *bufWalker) scanExpr(e ast.Expr, st bufStates) {
	if e != nil {
		w.inspect(e, st)
	}
}

// inspect looks for (a) uses of a released buffer or its aliases, (b) escapes
// of the *Buf itself, (c) nested function literals (walked fresh — the borrow
// contract is per-function).
func (w *bufWalker) inspect(n ast.Node, st bufStates) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			w2 := &bufWalker{pass: w.pass}
			inner := bufStates{}
			if !w2.walk(e.Body.List, inner) {
				w2.checkFallOff(inner)
			}
			return false
		case *ast.SelectorExpr:
			// v.B / v.Grow / v.Release: a use of the buffer through its
			// API — legal before Release, flagged after.
			if id, ok := e.X.(*ast.Ident); ok {
				if b := w.stateFor(id, st); b != nil {
					if b.released {
						w.pass.Report(e.Pos(), "use of pooled buffer after Release (borrowed at line %d): the pool owns the backing array now", w.line(b.borrowPos))
					}
					return false // don't treat the qualifier ident as an escape
				}
			}
		case *ast.Ident:
			if b := w.stateFor(e, st); b != nil {
				if b.released {
					w.pass.Report(e.Pos(), "use of pooled buffer after Release (borrowed at line %d)", w.line(b.borrowPos))
				} else {
					// Bare mention of the *Buf outside its own API:
					// ownership moves (argument, assignment, send, return).
					b.escaped = true
				}
				return true
			}
			if b := w.aliasFor(e, st); b != nil && b.released {
				w.pass.Report(e.Pos(), "use of bytes from a pooled buffer after its Release (borrowed at line %d)", w.line(b.borrowPos))
			}
		}
		return true
	})
}

func (w *bufWalker) stateFor(id *ast.Ident, st bufStates) *bufState {
	obj := w.pass.Info.Uses[id]
	if obj == nil {
		return nil
	}
	return st[obj]
}

func (w *bufWalker) aliasFor(id *ast.Ident, st bufStates) *bufState {
	obj := w.pass.Info.Uses[id]
	if obj == nil {
		return nil
	}
	for _, b := range st {
		if b.aliases[obj] {
			return b
		}
	}
	return nil
}

// releaseTarget matches v.Release() where v is a tracked borrow.
func (w *bufWalker) releaseTarget(e ast.Expr, st bufStates) *bufState {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return w.stateFor(id, st)
}

// bytesAliasSource matches v.B and v.Grow(n) for a tracked, unreleased v.
func (w *bufWalker) bytesAliasSource(e ast.Expr, st bufStates) *bufState {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if x.Sel.Name != "B" {
			return nil
		}
		if id, ok := x.X.(*ast.Ident); ok {
			return w.stateFor(id, st)
		}
	case *ast.CallExpr:
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Grow" {
			return nil
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			return w.stateFor(id, st)
		}
	}
	return nil
}

// retainsSlice reports whether the returned expression is slice-typed, i.e.
// capable of aliasing the pooled backing array.
func (w *bufWalker) retainsSlice(e ast.Expr) bool {
	tv, ok := w.pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return true // unresolvable: err toward reporting
	}
	_, isSlice := tv.Type.Underlying().(*types.Slice)
	return isSlice
}

// mentionsBytes reports whether e mentions b's bytes (v.B or an alias).
func (w *bufWalker) mentionsBytes(e ast.Expr, b *bufState) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		switch n := x.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "B" {
				if id, ok := n.X.(*ast.Ident); ok && w.pass.Info.Uses[id] == b.obj {
					found = true
				}
			}
		case *ast.Ident:
			if obj := w.pass.Info.Uses[n]; obj != nil && b.aliases[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isBorrowBufCall matches wire.BorrowBuf() / BorrowBuf() resolving to
// stcam/internal/wire.BorrowBuf.
func isBorrowBufCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	return ok && fn.Name() == "BorrowBuf" && fn.Pkg() != nil && fn.Pkg().Path() == "stcam/internal/wire"
}

func (w *bufWalker) line(p token.Pos) int { return w.pass.Fset.Position(p).Line }
