package analyzers_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stcam/internal/analyzers"
)

// TestTreeIsClean runs the full analyzer suite over the real module — the
// same sweep `make lint` and CI run — and asserts zero diagnostics outside
// documented //lint:allow suppressions.
//
// This is the regression lock for the PR-9 audit: the suite's initial run
// over the tree found one genuine fail-open decode dispatch (newMessageV1 in
// internal/wire, fixed with an explicit fail-closed default and pinned by
// TestNewMessageFailsClosedOnUnknownKind) and no surviving RPC-under-lock or
// missing-Release violations — the bug classes PRs 3, 5, 7 and 8 designed
// out stay designed out. Any new raw time.Now, dynamic metric key, lock-held
// blocking call, or leaked pooled buffer fails this test before it ever
// reaches CI's lint step.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := moduleRoot(t)
	loader, err := analyzers.NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader found no packages")
	}
	suite := analyzers.All()
	total := 0
	for _, p := range pkgs {
		for _, d := range analyzers.RunPackage(p, suite) {
			rel, rerr := filepath.Rel(root, d.Pos.Filename)
			if rerr != nil {
				rel = d.Pos.Filename
			}
			t.Errorf("%s:%d:%d: %s (%s)", rel, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
			total++
		}
	}
	if total > 0 {
		t.Errorf("%d diagnostic(s) over the tree; fix them or document deliberate exceptions with //lint:allow", total)
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestSuiteRegistry pins the analyzer set: every analyzer is registered,
// resolvable by name, and documented.
func TestSuiteRegistry(t *testing.T) {
	want := []string{"rpcunderlock", "bufrelease", "failclosed", "clockinject", "metricname"}
	all := analyzers.All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, name := range want {
		a := all[i]
		if a.Name != name {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, name)
		}
		if sel := analyzers.ByName([]string{name}); len(sel) != 1 || sel[0] != a {
			t.Errorf("ByName(%q) does not resolve to the registered analyzer", name)
		}
		if !strings.Contains(a.Doc, " ") {
			t.Errorf("%s: missing doc string", name)
		}
	}
	if sel := analyzers.ByName([]string{"nosuch"}); len(sel) != 0 {
		t.Errorf("ByName of an unknown analyzer selected %d analyzers", len(sel))
	}
	if sel := analyzers.ByName(nil); len(sel) != len(want) {
		t.Errorf("ByName(nil) selected %d analyzers, want the full suite", len(sel))
	}
}
