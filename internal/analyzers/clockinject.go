package analyzers

import (
	"go/ast"
	"go/types"
)

// ClockInject forbids raw wall-clock reads in the deterministic packages.
//
// The seeded soaks (R19) replay fault schedules against controlled time; one
// raw time.Now in a liveness path silently decouples that path from the
// schedule and the soak stops proving what it claims. All wall-clock access
// in internal/core, internal/cluster, and internal/stindex must go through
// the stcam/internal/clock seam (core.Options.Clock / clock.Wall), which is
// the one allowlisted implementation site.
var ClockInject = &Analyzer{
	Name: "clockinject",
	Doc: "forbid time.Now/time.Sleep/time.Since in internal/core, internal/cluster, and internal/stindex; " +
		"wall-clock access must ride the injected stcam/internal/clock seam so soak timing stays seeded",
	Match: func(p string) bool {
		return pathIn(p, "stcam/internal/core", "stcam/internal/cluster", "stcam/internal/stindex")
	},
	Run: runClockInject,
}

// time.Since is banned alongside Now and Sleep: it is time.Now in disguise
// and was the most common way a raw wall-clock read slipped past review.
var clockBanned = map[string]bool{"Now": true, "Sleep": true, "Since": true}

func runClockInject(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !clockBanned[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			pass.Report(sel.Pos(), "raw time.%s in a deterministic package: inject it through stcam/internal/clock (Options.Clock / clock.Wall) so soak schedules stay seeded", sel.Sel.Name)
			return true
		})
	}
}
