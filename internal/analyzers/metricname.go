package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// MetricName requires metric registry keys to be compile-time constants in
// the stcam-exportable naming scheme.
//
// internal/obs renders every registry key as a Prometheus series
// (stcam_<key with separators folded to _>). A key built from runtime data
// is a label-cardinality explosion waiting for the first hostile input, and
// a key outside the naming scheme breaks the exporter's stable-name
// contract. Keys must therefore be constant expressions matching
// ^[a-z][a-z0-9_]*([._][a-z0-9_]+)*$. The few deliberately dynamic keys
// (per-RPC-kind histograms, whose cardinality is bounded by the wire.MsgKind
// enum) carry //lint:allow metricname directives documenting the bound.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "metric registry keys must be literal constants matching the stcam-exportable naming scheme " +
		"(^[a-z][a-z0-9_]*([._][a-z0-9_]+)*$); dynamic keys risk unbounded series cardinality in internal/obs",
	Run: runMetricName,
}

var metricKeyRE = regexp.MustCompile(`^[a-z][a-z0-9_]*([._][a-z0-9_]+)*$`)

var metricCtors = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func runMetricName(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !metricCtors[sel.Sel.Name] {
				return true
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok || !isMetricsRegistry(selection.Recv()) {
				return true
			}
			tv, ok := pass.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Report(call.Args[0].Pos(), "metric key for Registry.%s is not a compile-time constant: dynamic keys can explode series cardinality in internal/obs — use a constant, or document the cardinality bound with //lint:allow metricname", sel.Sel.Name)
				return true
			}
			key := constant.StringVal(tv.Value)
			if !metricKeyRE.MatchString(key) {
				pass.Report(call.Args[0].Pos(), "metric key %q does not match the stcam-exportable naming scheme %s", key, metricKeyRE)
			}
			return true
		})
	}
}

// isMetricsRegistry reports whether t is stcam/internal/metrics.Registry or a
// pointer to it.
func isMetricsRegistry(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Path() == "stcam/internal/metrics"
}
