package analyzers

import "sort"

// RunPackage applies the analyzers to one loaded package and returns the
// diagnostics that survive //lint:allow suppression, sorted by position.
// Unused directives naming a known analyzer are themselves reported, so a
// suppression can never outlive the violation it documented.
func RunPackage(p *Package, as []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range as {
		if a.Match != nil && !a.Match(p.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     p.Fset,
			Files:    p.Files,
			Pkg:      p.Pkg,
			Info:     p.Info,
			diags:    &raw,
		}
		a.Run(pass)
	}

	var out []Diagnostic
	allows := collectAllows(p.Fset, p.Files, func(d Diagnostic) { out = append(out, d) })
	for _, d := range raw {
		if !suppressed(d, allows) {
			out = append(out, d)
		}
	}
	known := map[string]bool{}
	for _, a := range as {
		known[a.Name] = true
	}
	for _, a := range allows {
		if !a.used && known[a.Analyzer] {
			out = append(out, Diagnostic{Analyzer: "lintdirective", Pos: a.Pos,
				Message: "unused //lint:allow " + a.Analyzer + ": no diagnostic here — delete the stale suppression"})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}
