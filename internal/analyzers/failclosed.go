package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FailClosed enforces the decode-dispatch invariant from DESIGN.md: a switch
// over a format/kind enum in the codec packages must dispatch every unknown
// value into an explicit fail-closed default — never fall off the end of the
// switch and keep going, which is how an unknown format tag silently
// misparses as v1 (the bug shape PR 7 and PR 8 each had to design out).
//
// Two switch shapes are in scope inside internal/wire and internal/stindex:
//
//   - expression switches whose tag is a named type ending in Kind or Format
//     (wire.MsgKind, wire.Format, stindex chunk enums);
//   - type switches inside decode/unmarshal functions (the per-message decode
//     dispatch).
//
// The default clause must visibly fail closed: end in a return or panic, or
// assign to an error-typed variable (the decoder-struct style, d.err = ...).
var FailClosed = &Analyzer{
	Name: "failclosed",
	Doc: "format-tag/kind switches in internal/wire and internal/stindex decoders must have a default " +
		"branch that fails closed (return/panic/error assignment) — unknown values must never fall through",
	Match: func(p string) bool {
		return pathIn(p, "stcam/internal/wire", "stcam/internal/stindex")
	},
	Run: runFailClosed,
}

func runFailClosed(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inDecoder := isDecodeFunc(fd.Name.Name)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch sw := n.(type) {
				case *ast.SwitchStmt:
					if sw.Tag == nil || !isEnumTagType(pass, sw.Tag) {
						return true
					}
					checkFailClosedDefault(pass, sw.Body, sw.Switch, "switch on "+typeName(pass, sw.Tag))
				case *ast.TypeSwitchStmt:
					if !inDecoder {
						return true
					}
					checkFailClosedDefault(pass, sw.Body, sw.Switch, "decode-dispatch type switch")
				}
				return true
			})
		}
	}
}

func isDecodeFunc(name string) bool {
	l := strings.ToLower(name)
	return strings.HasPrefix(l, "decode") || strings.HasPrefix(l, "unmarshal") || strings.Contains(l, "unmarshal")
}

// isEnumTagType reports whether e's type is a named type whose name ends in
// Kind or Format.
func isEnumTagType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	n, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	name := n.Obj().Name()
	return strings.HasSuffix(name, "Kind") || strings.HasSuffix(name, "Format")
}

func typeName(pass *Pass, e ast.Expr) string {
	if tv, ok := pass.Info.Types[e]; ok {
		return tv.Type.String()
	}
	return "enum"
}

func checkFailClosedDefault(pass *Pass, body *ast.BlockStmt, pos token.Pos, what string) {
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			// TypeSwitchStmt bodies hold *ast.CaseClause too; anything else
			// is malformed and the type checker already rejected it.
			continue
		}
		if cc.List != nil {
			continue // not the default clause
		}
		if defaultFailsClosed(pass, cc.Body) {
			return
		}
		pass.Report(cc.Pos(), "%s has a default that does not fail closed: it must return, panic, or record an error so unknown values are never silently decoded", what)
		return
	}
	pass.Report(pos, "%s has no default clause: unknown values fall off the switch and decode silently — add a fail-closed default returning an error", what)
}

// defaultFailsClosed reports whether the default body visibly stops the
// decode: ends in return/panic/goto, or assigns to an error-typed lvalue.
func defaultFailsClosed(pass *Pass, body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	for _, s := range body {
		if as, ok := s.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if tv, ok := pass.Info.Types[lhs]; ok && isErrorType(tv.Type) {
					return true
				}
			}
		}
	}
	switch last := body[len(body)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}
