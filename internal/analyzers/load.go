package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("stcam/internal/wire")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module without the go/build
// toolchain: module-local import paths resolve against the module root, and
// everything else (the standard library) goes through the source importer,
// which works offline. Packages are cached, so loading ./... type-checks each
// package exactly once.
type Loader struct {
	ModuleRoot string // absolute path of the directory holding go.mod
	ModulePath string // module path from go.mod ("stcam")

	// IncludeTests adds _test.go files of the package under test (not
	// external _test packages) to the parsed file set. Off by default: the
	// invariants stcamlint enforces concern production code, and test files
	// legitimately use raw clocks and fake transports.
	IncludeTests bool

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	// checking guards against import cycles, which would otherwise recurse
	// forever; Go forbids them so hitting one means a load bug.
	checking map[string]bool
}

// NewLoader locates the module root at or above dir and returns a loader for
// it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analyzers: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analyzers: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		checking:   map[string]bool{},
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadAll walks the module tree and loads every package, skipping testdata,
// hidden directories, and directories with no buildable Go files. The result
// is sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			rel, rerr := filepath.Rel(l.ModuleRoot, p)
			if rerr != nil {
				return rerr
			}
			ip := l.ModulePath
			if rel != "." {
				ip = l.ModulePath + "/" + filepath.ToSlash(rel)
			}
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []*Package
	for _, ip := range paths {
		p, err := l.Load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Load type-checks one module-local package by import path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := l.ModuleRoot
	if path != l.ModulePath {
		rel, ok := strings.CutPrefix(path, l.ModulePath+"/")
		if !ok {
			return nil, fmt.Errorf("analyzers: %s is not in module %s", path, l.ModulePath)
		}
		dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	}
	return l.LoadDir(dir, path)
}

// LoadDir type-checks the package in dir under the given import path. The
// path does not need to correspond to dir's real location — fixture tests use
// this to load testdata packages as if they lived inside scoped trees like
// stcam/internal/wire.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("analyzers: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if l.IncludeTests && strings.HasSuffix(f.Name.Name, "_test") {
			continue // external test package: would not type-check with the rest
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analyzers: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	cfg := &types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyzers: type-check %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer over the module + standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
			return true
		}
	}
	return false
}
