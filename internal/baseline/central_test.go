package baseline

import (
	"math/rand"
	"testing"
	"time"

	"stcam/internal/camera"
	"stcam/internal/geo"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

var t0 = time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)

func det(id uint64, cam camera.ID, p geo.Point, at time.Time, f vision.Feature) vision.Detection {
	return vision.Detection{ObsID: id, Camera: cam, Pos: p, Time: at, Feature: f}
}

func TestCentralIngestAndQueries(t *testing.T) {
	c := NewCentral(CentralConfig{})
	rng := rand.New(rand.NewSource(1))
	f1 := vision.NewRandomFeature(rng, 32)
	f2 := vision.NewRandomFeature(rng, 32)
	c.Ingest([]vision.Detection{
		det(1, 1, geo.Pt(10, 10), t0, f1),
		det(2, 2, geo.Pt(500, 500), t0.Add(time.Second), f2),
		det(3, 3, geo.Pt(20, 15), t0.Add(2*time.Second), f1.Perturb(rng, 0.05)),
	})
	if c.Stored() != 3 {
		t.Fatalf("Stored = %d", c.Stored())
	}
	window := wire.TimeWindow{From: t0, To: t0.Add(time.Hour)}
	recs := c.Range(geo.RectOf(0, 0, 100, 100), window, 0)
	if len(recs) != 2 {
		t.Fatalf("range = %d records", len(recs))
	}
	// Same identity associated across observations 1 and 3.
	if recs[0].TargetID == 0 || recs[0].TargetID != recs[1].TargetID {
		t.Errorf("association failed: %+v", recs)
	}
	if n := c.Count(geo.RectOf(0, 0, 100, 100), window); n != 2 {
		t.Errorf("count = %d", n)
	}
	nn := c.KNN(geo.Pt(0, 0), window, 2)
	if len(nn) != 2 || nn[0].ObsID != 1 {
		t.Errorf("knn = %+v", nn)
	}
	traj := c.Trajectory(recs[0].TargetID, window)
	if len(traj) != 2 {
		t.Errorf("trajectory = %d records", len(traj))
	}
	if len(c.Targets()) != 2 {
		t.Errorf("targets = %v", c.Targets())
	}
	// Limit.
	if got := c.Range(geo.RectOf(0, 0, 1000, 1000), window, 1); len(got) != 1 {
		t.Errorf("limited range = %d", len(got))
	}
}

func TestCentralContinuous(t *testing.T) {
	c := NewCentral(CentralConfig{})
	rng := rand.New(rand.NewSource(2))
	f := vision.NewRandomFeature(rng, 32)
	id, ch := c.InstallContinuous(wire.ContinuousRange, geo.RectOf(0, 0, 100, 100), 0)

	c.Ingest([]vision.Detection{det(1, 1, geo.Pt(50, 50), t0, f)})
	select {
	case u := <-ch:
		if len(u.Positive) != 1 {
			t.Fatalf("enter update = %+v", u)
		}
	default:
		t.Fatal("no enter update")
	}
	c.Ingest([]vision.Detection{det(2, 1, geo.Pt(500, 500), t0.Add(time.Second), f)})
	select {
	case u := <-ch:
		if len(u.Negative) != 1 {
			t.Fatalf("leave update = %+v", u)
		}
	default:
		t.Fatal("no leave update")
	}
	if !c.RemoveContinuous(id) {
		t.Fatal("remove failed")
	}
	if c.RemoveContinuous(id) {
		t.Fatal("double remove succeeded")
	}
}

func TestCentralMatchesDistributedSemantics(t *testing.T) {
	// The centralized baseline must return the same answer set as any correct
	// implementation for a pure spatial workload (no identity ambiguity).
	c := NewCentral(CentralConfig{CellSize: 30})
	rng := rand.New(rand.NewSource(3))
	type placed struct {
		id uint64
		p  geo.Point
		at time.Time
	}
	var all []placed
	var dets []vision.Detection
	for i := 0; i < 2000; i++ {
		pl := placed{
			id: uint64(i + 1),
			p:  geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
			at: t0.Add(time.Duration(rng.Intn(600)) * time.Second),
		}
		all = append(all, pl)
		dets = append(dets, det(pl.id, 1, pl.p, pl.at, nil))
	}
	c.Ingest(dets)
	for trial := 0; trial < 50; trial++ {
		r := geo.RectAround(geo.Pt(rng.Float64()*1000, rng.Float64()*1000), 50+rng.Float64()*150)
		from := t0.Add(time.Duration(rng.Intn(300)) * time.Second)
		to := from.Add(time.Duration(rng.Intn(300)) * time.Second)
		want := 0
		for _, pl := range all {
			if r.Contains(pl.p) && !pl.at.Before(from) && !pl.at.After(to) {
				want++
			}
		}
		got := c.Count(r, wire.TimeWindow{From: from, To: to})
		if got != want {
			t.Fatalf("trial %d: count = %d, want %d", trial, got, want)
		}
	}
}
