// Package baseline implements the comparison systems the evaluation measures
// the framework against: a fully centralized analysis server (every camera
// streams to one index on one node), mirroring the "no distribution" design
// point in experiments R1 and R10. The broadcast-handoff tracking baseline
// for R3 lives in core (Options.BroadcastHandoff), since it shares the
// distributed machinery and differs only in priming scope.
package baseline

import (
	"sort"
	"sync"
	"time"

	"stcam/internal/geo"
	"stcam/internal/metrics"
	"stcam/internal/stindex"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// Central is the centralized analysis server: one spatio-temporal index, one
// associator, no partitioning, no fan-out. Its API mirrors the coordinator's
// query surface so harnesses can drive either interchangeably.
type Central struct {
	reg   *metrics.Registry
	assoc *vision.Associator
	store *stindex.Store

	mu         sync.Mutex
	continuous map[uint64]*centralContinuous
	nextQuery  uint64
}

type centralContinuous struct {
	queryID   uint64
	kind      wire.ContinuousKind
	rect      geo.Rect
	threshold int
	inside    map[uint64]stindex.Record
	ch        chan wire.ContinuousUpdate
}

// CentralConfig configures the centralized baseline.
type CentralConfig struct {
	AssocThreshold float64
	CellSize       float64
	BucketWidth    time.Duration
	Retention      time.Duration
}

// NewCentral returns an empty centralized server.
func NewCentral(cfg CentralConfig) *Central {
	if cfg.AssocThreshold <= 0 || cfg.AssocThreshold >= 1 {
		cfg.AssocThreshold = 0.75
	}
	return &Central{
		reg:        metrics.NewRegistry(),
		assoc:      vision.NewAssociator(cfg.AssocThreshold),
		continuous: make(map[uint64]*centralContinuous),
		store: stindex.NewStore(stindex.Config{
			CellSize:    cfg.CellSize,
			BucketWidth: cfg.BucketWidth,
			Retention:   cfg.Retention,
		}),
	}
}

// Metrics exposes the server's instrumentation.
func (c *Central) Metrics() *metrics.Registry { return c.reg }

// Stored returns the number of indexed records.
func (c *Central) Stored() int { return c.store.Len() }

// Ingest indexes a batch of detections, returning the count accepted.
func (c *Central) Ingest(dets []vision.Detection) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range dets {
		d := &dets[i]
		var targetID uint64
		if len(d.Feature) > 0 {
			targetID, _ = c.assoc.Associate(d.Feature)
		}
		rec := stindex.Record{
			ObsID:    d.ObsID,
			TargetID: targetID,
			Camera:   uint32(d.Camera),
			Pos:      d.Pos,
			Time:     d.Time,
		}
		c.store.Insert(rec)
		for _, cc := range c.continuous {
			cc.observe(rec)
		}
	}
	c.reg.Counter("ingest.accepted").Add(int64(len(dets)))
	return len(dets)
}

// Range answers a spatio-temporal range query.
func (c *Central) Range(rect geo.Rect, window wire.TimeWindow, limit int) []wire.ResultRecord {
	start := time.Now()
	recs := c.store.RangeQuery(rect, window.From, window.To)
	if limit > 0 && len(recs) > limit {
		recs = recs[:limit]
	}
	out := make([]wire.ResultRecord, len(recs))
	for i, r := range recs {
		out[i] = wire.ResultRecord{ObsID: r.ObsID, TargetID: r.TargetID, Camera: r.Camera, Pos: r.Pos, Time: r.Time}
	}
	c.reg.Histogram("query.range").Observe(time.Since(start))
	return out
}

// KNN answers a k-nearest query.
func (c *Central) KNN(center geo.Point, window wire.TimeWindow, k int) []wire.KNNRecord {
	start := time.Now()
	ns := c.store.KNN(center, window.From, window.To, k)
	out := make([]wire.KNNRecord, len(ns))
	for i, n := range ns {
		out[i] = wire.KNNRecord{
			ResultRecord: wire.ResultRecord{ObsID: n.ObsID, TargetID: n.TargetID, Camera: n.Camera, Pos: n.Pos, Time: n.Time},
			Dist2:        n.Dist2,
		}
	}
	c.reg.Histogram("query.knn").Observe(time.Since(start))
	return out
}

// Count answers a count query.
func (c *Central) Count(rect geo.Rect, window wire.TimeWindow) int {
	return c.store.Count(rect, window.From, window.To)
}

// Trajectory returns a target's history.
func (c *Central) Trajectory(targetID uint64, window wire.TimeWindow) []wire.ResultRecord {
	recs := c.store.TargetHistory(targetID, window.From, window.To)
	out := make([]wire.ResultRecord, len(recs))
	for i, r := range recs {
		out[i] = wire.ResultRecord{ObsID: r.ObsID, TargetID: r.TargetID, Camera: r.Camera, Pos: r.Pos, Time: r.Time}
	}
	return out
}

// Targets lists the associated identity IDs, sorted.
func (c *Central) Targets() []uint64 {
	ids := c.store.Targets()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// InstallContinuous registers a standing range/count query; updates arrive on
// the returned channel until RemoveContinuous.
func (c *Central) InstallContinuous(kind wire.ContinuousKind, rect geo.Rect, threshold int) (uint64, <-chan wire.ContinuousUpdate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextQuery++
	cc := &centralContinuous{
		queryID:   c.nextQuery,
		kind:      kind,
		rect:      rect,
		threshold: threshold,
		inside:    make(map[uint64]stindex.Record),
		ch:        make(chan wire.ContinuousUpdate, 1024),
	}
	c.continuous[cc.queryID] = cc
	return cc.queryID, cc.ch
}

// RemoveContinuous uninstalls a standing query.
func (c *Central) RemoveContinuous(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cc, ok := c.continuous[id]
	if !ok {
		return false
	}
	delete(c.continuous, id)
	close(cc.ch)
	return true
}

func (cc *centralContinuous) observe(r stindex.Record) {
	if r.TargetID == 0 {
		return
	}
	_, wasIn := cc.inside[r.TargetID]
	nowIn := cc.rect.Contains(r.Pos)
	var upd *wire.ContinuousUpdate
	switch {
	case nowIn && !wasIn:
		cc.inside[r.TargetID] = r
		upd = &wire.ContinuousUpdate{QueryID: cc.queryID, Time: r.Time,
			Positive: []wire.ResultRecord{{ObsID: r.ObsID, TargetID: r.TargetID, Camera: r.Camera, Pos: r.Pos, Time: r.Time}}}
	case !nowIn && wasIn:
		prev := cc.inside[r.TargetID]
		delete(cc.inside, r.TargetID)
		upd = &wire.ContinuousUpdate{QueryID: cc.queryID, Time: r.Time,
			Negative: []wire.ResultRecord{{ObsID: prev.ObsID, TargetID: prev.TargetID, Camera: prev.Camera, Pos: prev.Pos, Time: prev.Time}}}
	case nowIn && wasIn:
		cc.inside[r.TargetID] = r
		return
	default:
		return
	}
	upd.Count = len(cc.inside)
	select {
	case cc.ch <- *upd:
	default:
	}
}
