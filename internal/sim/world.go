package sim

import (
	"fmt"
	"math/rand"
	"time"

	"stcam/internal/camera"
	"stcam/internal/geo"
	"stcam/internal/vision"
)

// Object is one simulated moving entity with a stable appearance feature.
type Object struct {
	ID      uint64
	Pos     geo.Point
	Feature vision.Feature

	// Mobility-model state.
	waypoint geo.Point
	speed    float64
	pause    float64
	dir      geo.Point
	legLeft  float64
}

// Config describes a simulation run.
type Config struct {
	World       geo.Rect
	NumObjects  int
	Model       Mobility
	Tick        time.Duration // simulated time per Step (default 1s)
	Start       time.Time     // simulation epoch (default a fixed instant)
	FeatureDim  int           // appearance embedding dim (0 → vision default)
	Seed        int64
	RecordTruth bool // keep full ground-truth trajectories (memory!)
}

// DefaultStart is the fixed simulation epoch used when Config.Start is zero,
// keeping runs reproducible without consulting the wall clock.
var DefaultStart = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// World is a deterministic discrete-time simulation of moving objects.
// It is not safe for concurrent use; drive it from a single goroutine and
// fan the observation batches out from there.
type World struct {
	cfg     Config
	rng     *rand.Rand
	objects []*Object
	now     time.Time
	ticks   int
	truth   map[uint64]*geo.Trajectory
}

// NewWorld validates cfg and builds the initial object population.
func NewWorld(cfg Config) (*World, error) {
	if cfg.World.IsEmpty() || cfg.World.Area() == 0 {
		return nil, fmt.Errorf("sim: world rectangle must have positive area")
	}
	if cfg.NumObjects < 0 {
		return nil, fmt.Errorf("sim: negative object count %d", cfg.NumObjects)
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("sim: nil mobility model")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Second
	}
	if cfg.Start.IsZero() {
		cfg.Start = DefaultStart
	}
	w := &World{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		now:   cfg.Start,
		truth: make(map[uint64]*geo.Trajectory),
	}
	for i := 0; i < cfg.NumObjects; i++ {
		o := &Object{
			ID:      uint64(i + 1),
			Feature: vision.NewRandomFeature(w.rng, cfg.FeatureDim),
		}
		cfg.Model.Init(o, w.rng)
		w.objects = append(w.objects, o)
		if cfg.RecordTruth {
			tr := &geo.Trajectory{}
			tr.Append(w.now, o.Pos)
			w.truth[o.ID] = tr
		}
	}
	return w, nil
}

// Now returns the current simulated time.
func (w *World) Now() time.Time { return w.now }

// Ticks returns the number of Steps taken.
func (w *World) Ticks() int { return w.ticks }

// Objects returns the live objects. Callers must treat them as read-only.
func (w *World) Objects() []*Object { return w.objects }

// Object returns the object with the given ID, or nil.
func (w *World) Object(id uint64) *Object {
	i := int(id) - 1
	if i < 0 || i >= len(w.objects) {
		return nil
	}
	return w.objects[i]
}

// Step advances simulated time by one tick.
func (w *World) Step() {
	dt := w.cfg.Tick.Seconds()
	w.now = w.now.Add(w.cfg.Tick)
	w.ticks++
	for _, o := range w.objects {
		w.cfg.Model.Step(o, dt, w.rng)
		if w.cfg.RecordTruth {
			w.truth[o.ID].Append(w.now, o.Pos)
		}
	}
}

// Truth returns the recorded ground-truth trajectory for an object (nil when
// RecordTruth is off or the ID is unknown).
func (w *World) Truth(id uint64) *geo.Trajectory { return w.truth[id] }

// Observe produces the detection events for the current instant across the
// whole network: true detections of visible objects plus the detector's false
// positives. Detections are grouped per camera in the returned map; cameras
// with no events are absent.
func (w *World) Observe(net *camera.Network, det *vision.Detector) map[camera.ID][]vision.Detection {
	out := make(map[camera.ID][]vision.Detection)
	for _, o := range w.objects {
		for _, camID := range net.CamerasCovering(o.Pos) {
			cam, ok := net.Camera(camID)
			if !ok {
				continue
			}
			if d, seen := det.Observe(cam, o.ID, o.Pos, o.Feature, w.now); seen {
				out[camID] = append(out[camID], d)
			}
		}
	}
	if det.Config().FalsePosRate > 0 {
		for _, cam := range net.All() {
			if fps := det.FalsePositives(cam, w.now); len(fps) > 0 {
				out[cam.ID] = append(out[cam.ID], fps...)
			}
		}
	}
	return out
}

// ObserveFlat is Observe flattened into a single slice, ordered by camera ID
// then emission order — convenient for feeding ingestion pipelines.
func (w *World) ObserveFlat(net *camera.Network, det *vision.Detector) []vision.Detection {
	byCam := w.Observe(net, det)
	var out []vision.Detection
	for _, id := range net.IDs() {
		out = append(out, byCam[id]...)
	}
	return out
}

// Run advances n ticks, invoking fn after each step with the tick's
// observations. It is the main simulation loop used by examples and benches.
func (w *World) Run(n int, net *camera.Network, det *vision.Detector, fn func(tick int, obs []vision.Detection)) {
	for i := 0; i < n; i++ {
		w.Step()
		var obs []vision.Detection
		if net != nil && det != nil {
			obs = w.ObserveFlat(net, det)
		}
		if fn != nil {
			fn(i, obs)
		}
	}
}
