package sim

import (
	"math"
	"testing"
	"time"

	"stcam/internal/camera"
	"stcam/internal/geo"
	"stcam/internal/vision"
)

func world1km() geo.Rect { return geo.RectOf(0, 0, 1000, 1000) }

func TestNewWorldValidation(t *testing.T) {
	valid := Config{World: world1km(), NumObjects: 1, Model: &Linear{World: world1km()}}
	if _, err := NewWorld(valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{NumObjects: 1, Model: &Linear{}},                     // empty world
		{World: world1km(), NumObjects: -1, Model: &Linear{}}, // negative count
		{World: world1km(), NumObjects: 1},                    // nil model
	}
	for i, cfg := range bad {
		if _, err := NewWorld(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestWorldDeterminism(t *testing.T) {
	mk := func() *World {
		w, err := NewWorld(Config{
			World:      world1km(),
			NumObjects: 20,
			Model:      &RandomWaypoint{World: world1km(), MinSpeed: 2, MaxSpeed: 10},
			Seed:       7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		a.Step()
		b.Step()
	}
	for i := range a.Objects() {
		if a.Objects()[i].Pos != b.Objects()[i].Pos {
			t.Fatalf("object %d diverged: %v vs %v", i, a.Objects()[i].Pos, b.Objects()[i].Pos)
		}
	}
	if !a.Now().Equal(b.Now()) {
		t.Error("clocks diverged")
	}
}

func TestLinearModelExactly(t *testing.T) {
	w, err := NewWorld(Config{
		World:      world1km(),
		NumObjects: 1,
		Model:      &Linear{World: world1km(), Vel: geo.Pt(10, 0)},
		Tick:       time.Second,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := w.Objects()[0].Pos
	w.Step()
	got := w.Objects()[0].Pos
	wantX := math.Mod(start.X+10-0, 1000)
	if math.Abs(got.X-wantX) > 1e-9 || got.Y != start.Y {
		t.Errorf("after 1s: %v, want x=%v", got, wantX)
	}
	if w.Now().Sub(DefaultStart) != time.Second {
		t.Errorf("Now = %v", w.Now())
	}
}

func TestObjectsStayInWorldRandomWaypoint(t *testing.T) {
	w, err := NewWorld(Config{
		World:      world1km(),
		NumObjects: 30,
		Model:      &RandomWaypoint{World: world1km(), MinSpeed: 5, MaxSpeed: 30},
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	grown := world1km().Expand(1e-6)
	for i := 0; i < 500; i++ {
		w.Step()
		for _, o := range w.Objects() {
			if !grown.Contains(o.Pos) {
				t.Fatalf("tick %d: object %d escaped to %v", i, o.ID, o.Pos)
			}
		}
	}
}

func TestObjectsStayInWorldRoadGrid(t *testing.T) {
	w, err := NewWorld(Config{
		World:      world1km(),
		NumObjects: 30,
		Model:      &RoadGrid{World: world1km(), Spacing: 100, MinSpeed: 5, MaxSpeed: 15},
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	grown := world1km().Expand(1e-6)
	for i := 0; i < 500; i++ {
		w.Step()
		for _, o := range w.Objects() {
			if !grown.Contains(o.Pos) {
				t.Fatalf("tick %d: object %d escaped to %v", i, o.ID, o.Pos)
			}
		}
	}
}

func TestRoadGridStaysOnRoads(t *testing.T) {
	w, err := NewWorld(Config{
		World:      world1km(),
		NumObjects: 10,
		Model:      &RoadGrid{World: world1km(), Spacing: 100, MinSpeed: 5, MaxSpeed: 15},
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	onRoad := func(p geo.Point) bool {
		const eps = 1e-6
		mx := math.Mod(p.X, 100)
		my := math.Mod(p.Y, 100)
		nearX := mx < eps || 100-mx < eps
		nearY := my < eps || 100-my < eps
		return nearX || nearY
	}
	for i := 0; i < 200; i++ {
		w.Step()
		for _, o := range w.Objects() {
			if !onRoad(o.Pos) {
				t.Fatalf("tick %d: object %d off-road at %v", i, o.ID, o.Pos)
			}
		}
	}
}

func TestHotspotSkew(t *testing.T) {
	hot := geo.RectOf(0, 0, 200, 200)
	w, err := NewWorld(Config{
		World:      world1km(),
		NumObjects: 200,
		Model: &RandomWaypoint{
			World: world1km(), MinSpeed: 20, MaxSpeed: 40,
			Hotspot: hot, HotspotProb: 0.8,
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let the population converge toward the hotspot attractor.
	inHot := 0
	samples := 0
	for i := 0; i < 400; i++ {
		w.Step()
		if i < 200 {
			continue
		}
		for _, o := range w.Objects() {
			samples++
			if hot.Contains(o.Pos) {
				inHot++
			}
		}
	}
	frac := float64(inHot) / float64(samples)
	// Hotspot is 4% of the area; with 80% of waypoints there, occupancy must
	// be far above uniform.
	if frac < 0.2 {
		t.Errorf("hotspot occupancy = %v, want >= 0.2", frac)
	}
}

func TestGroundTruthRecording(t *testing.T) {
	w, err := NewWorld(Config{
		World:       world1km(),
		NumObjects:  3,
		Model:       &Linear{World: world1km(), Vel: geo.Pt(5, 0)},
		RecordTruth: true,
		Seed:        6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.Step()
	}
	tr := w.Truth(1)
	if tr == nil {
		t.Fatal("no truth for object 1")
	}
	if tr.Len() != 11 { // initial + 10 steps
		t.Errorf("truth has %d samples, want 11", tr.Len())
	}
	if w.Truth(999) != nil {
		t.Error("truth for unknown object")
	}
	// Without RecordTruth, nothing is kept.
	w2, _ := NewWorld(Config{World: world1km(), NumObjects: 1, Model: &Linear{World: world1km()}, Seed: 1})
	w2.Step()
	if w2.Truth(1) != nil {
		t.Error("truth recorded without RecordTruth")
	}
}

func TestObserve(t *testing.T) {
	world := world1km()
	// One omni camera covering everything: every object is observed.
	net := camera.NewNetwork()
	net.Add(camera.New(1, geo.Pt(500, 500), 0, math.Pi, 2000))
	det := vision.NewDetector(vision.DetectorConfig{Seed: 1})
	w, err := NewWorld(Config{World: world, NumObjects: 25, Model: &Linear{World: world, Vel: geo.Pt(1, 0)}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	w.Step()
	byCam := w.Observe(net, det)
	if len(byCam[1]) != 25 {
		t.Fatalf("camera 1 saw %d objects, want 25", len(byCam[1]))
	}
	for _, d := range byCam[1] {
		if d.TrueID == 0 || d.Camera != 1 || !d.Time.Equal(w.Now()) {
			t.Fatalf("bad detection %+v", d)
		}
		obj := w.Object(d.TrueID)
		if d.Pos.Dist(obj.Pos) > 1e-9 {
			t.Fatalf("noiseless detection displaced: %v vs %v", d.Pos, obj.Pos)
		}
	}
	// A camera that covers nothing sees nothing.
	net2 := camera.NewNetwork()
	net2.Add(camera.New(2, geo.Pt(-5000, -5000), 0, 0.1, 10))
	if got := w.Observe(net2, det); len(got) != 0 {
		t.Errorf("blind camera produced %v", got)
	}
}

func TestObserveFlatOrdering(t *testing.T) {
	world := world1km()
	net := camera.NewNetwork()
	net.Add(camera.New(2, geo.Pt(250, 500), 0, math.Pi, 600))
	net.Add(camera.New(1, geo.Pt(750, 500), 0, math.Pi, 600))
	det := vision.NewDetector(vision.DetectorConfig{Seed: 2})
	w, err := NewWorld(Config{World: world, NumObjects: 50, Model: &RandomWaypoint{World: world, MinSpeed: 1, MaxSpeed: 5}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	w.Step()
	flat := w.ObserveFlat(net, det)
	if len(flat) == 0 {
		t.Fatal("no observations")
	}
	lastCam := camera.ID(0)
	for _, d := range flat {
		if d.Camera < lastCam {
			t.Fatal("flat observations not grouped by ascending camera ID")
		}
		lastCam = d.Camera
	}
}

func TestRunLoop(t *testing.T) {
	world := world1km()
	net := camera.NewNetwork()
	net.Add(camera.New(1, geo.Pt(500, 500), 0, math.Pi, 2000))
	det := vision.NewDetector(vision.DetectorConfig{Seed: 3})
	w, err := NewWorld(Config{World: world, NumObjects: 5, Model: &Linear{World: world, Vel: geo.Pt(2, 0)}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ticks := 0
	totalObs := 0
	w.Run(20, net, det, func(tick int, obs []vision.Detection) {
		if tick != ticks {
			t.Fatalf("tick %d out of order", tick)
		}
		ticks++
		totalObs += len(obs)
	})
	if ticks != 20 {
		t.Errorf("ran %d ticks", ticks)
	}
	if totalObs != 100 { // 5 objects × 20 ticks, full coverage, no noise
		t.Errorf("total observations = %d, want 100", totalObs)
	}
	if w.Ticks() != 20 {
		t.Errorf("Ticks = %d", w.Ticks())
	}
}
