// Package sim generates the ground truth the framework is evaluated against:
// a world of moving objects under pluggable mobility models, and the
// per-camera observation streams a real deployment's analytics would emit.
// Everything is deterministic under a seed, which is what makes the
// experiment suite reproducible (DESIGN.md §4).
package sim

import (
	"math"
	"math/rand"

	"stcam/internal/geo"
)

// Mobility advances an object's kinematic state. Implementations must be
// deterministic given the rng stream.
type Mobility interface {
	// Init sets the object's starting position and internal state.
	Init(o *Object, rng *rand.Rand)
	// Step advances the object by dt seconds.
	Step(o *Object, dtSeconds float64, rng *rand.Rand)
}

// RandomWaypoint is the classic mobility model: pick a uniform waypoint, walk
// to it at a uniform-random speed, repeat. An optional hotspot rectangle
// attracts a fraction of waypoint choices, producing the skewed load
// experiments R5 uses.
type RandomWaypoint struct {
	World       geo.Rect
	MinSpeed    float64 // m/s
	MaxSpeed    float64 // m/s
	Hotspot     geo.Rect
	HotspotProb float64 // probability a waypoint is drawn from Hotspot
	Pause       float64 // seconds to dwell at each waypoint
}

var _ Mobility = (*RandomWaypoint)(nil)

// Init implements Mobility.
func (m *RandomWaypoint) Init(o *Object, rng *rand.Rand) {
	o.Pos = m.randPoint(rng, false)
	o.waypoint = m.randPoint(rng, true)
	o.speed = m.randSpeed(rng)
	o.pause = 0
}

// Step implements Mobility.
func (m *RandomWaypoint) Step(o *Object, dt float64, rng *rand.Rand) {
	if o.pause > 0 {
		o.pause -= dt
		if o.pause > 0 {
			return
		}
		dt = -o.pause // spend the remainder of the tick moving
		o.pause = 0
	}
	for dt > 0 {
		toGo := o.waypoint.Sub(o.Pos)
		dist := toGo.Norm()
		travel := o.speed * dt
		if travel < dist {
			o.Pos = o.Pos.Add(toGo.Scale(travel / dist))
			return
		}
		// Reached the waypoint: consume the time, pick the next leg.
		o.Pos = o.waypoint
		if o.speed > 0 {
			dt -= dist / o.speed
		} else {
			dt = 0
		}
		o.waypoint = m.randPoint(rng, true)
		o.speed = m.randSpeed(rng)
		if m.Pause > 0 {
			o.pause = m.Pause
			return
		}
	}
}

func (m *RandomWaypoint) randPoint(rng *rand.Rand, allowHotspot bool) geo.Point {
	r := m.World
	if allowHotspot && m.HotspotProb > 0 && !m.Hotspot.IsEmpty() && rng.Float64() < m.HotspotProb {
		r = m.Hotspot
	}
	return geo.Pt(
		r.Min.X+rng.Float64()*r.Width(),
		r.Min.Y+rng.Float64()*r.Height(),
	)
}

func (m *RandomWaypoint) randSpeed(rng *rand.Rand) float64 {
	lo, hi := m.MinSpeed, m.MaxSpeed
	if lo <= 0 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo + rng.Float64()*(hi-lo)
}

// RoadGrid moves objects along a Manhattan lattice with the given block
// spacing: objects travel along roads and turn at intersections. This is the
// urban-traffic model behind the "city camera network" workloads — it yields
// the corridor transit patterns cross-camera tracking exploits.
type RoadGrid struct {
	World    geo.Rect
	Spacing  float64 // block size, meters
	MinSpeed float64
	MaxSpeed float64
	TurnProb float64 // probability of turning at an intersection (default 0.5)
}

var _ Mobility = (*RoadGrid)(nil)

// Init implements Mobility.
func (m *RoadGrid) Init(o *Object, rng *rand.Rand) {
	sp := m.spacing()
	// Start at a random intersection.
	nx := int(m.World.Width() / sp)
	ny := int(m.World.Height() / sp)
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	o.Pos = geo.Pt(
		m.World.Min.X+float64(rng.Intn(nx+1))*sp,
		m.World.Min.Y+float64(rng.Intn(ny+1))*sp,
	)
	o.dir = [4]geo.Point{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}}[rng.Intn(4)]
	o.dir = m.nextDir(o, rng) // bounce off the boundary if the draw points out
	o.speed = m.randSpeed(rng)
	o.legLeft = sp
}

// Step implements Mobility.
func (m *RoadGrid) Step(o *Object, dt float64, rng *rand.Rand) {
	sp := m.spacing()
	for dt > 0 {
		travel := o.speed * dt
		if travel < o.legLeft {
			o.Pos = o.Pos.Add(o.dir.Scale(travel))
			o.legLeft -= travel
			return
		}
		// Reach the intersection.
		o.Pos = o.Pos.Add(o.dir.Scale(o.legLeft))
		dt -= o.legLeft / o.speed
		o.legLeft = sp
		o.dir = m.nextDir(o, rng)
		o.speed = m.randSpeed(rng)
	}
}

func (m *RoadGrid) nextDir(o *Object, rng *rand.Rand) geo.Point {
	turnProb := m.TurnProb
	if turnProb <= 0 {
		turnProb = 0.5
	}
	dir := o.dir
	if rng.Float64() < turnProb {
		// Turn left or right.
		if rng.Intn(2) == 0 {
			dir = geo.Pt(-dir.Y, dir.X)
		} else {
			dir = geo.Pt(dir.Y, -dir.X)
		}
	}
	// Bounce off the world boundary instead of leaving it.
	next := o.Pos.Add(dir.Scale(m.spacing()))
	if !m.World.Contains(next) {
		dir = dir.Scale(-1)
		next = o.Pos.Add(dir.Scale(m.spacing()))
		if !m.World.Contains(next) {
			// Corner: turn perpendicular.
			dir = geo.Pt(-dir.Y, dir.X)
			if !m.World.Contains(o.Pos.Add(dir.Scale(m.spacing()))) {
				dir = dir.Scale(-1)
			}
		}
	}
	return dir
}

func (m *RoadGrid) spacing() float64 {
	if m.Spacing <= 0 {
		return 100
	}
	return m.Spacing
}

func (m *RoadGrid) randSpeed(rng *rand.Rand) float64 {
	lo, hi := m.MinSpeed, m.MaxSpeed
	if lo <= 0 {
		lo = 5
	}
	if hi < lo {
		hi = lo
	}
	return lo + rng.Float64()*(hi-lo)
}

// Linear moves objects in a fixed direction at a fixed speed, wrapping around
// the world torus-style. It is the minimal deterministic model used by unit
// tests that need exactly predictable ground truth.
type Linear struct {
	World geo.Rect
	Vel   geo.Point // m/s
}

var _ Mobility = (*Linear)(nil)

// Init implements Mobility.
func (m *Linear) Init(o *Object, rng *rand.Rand) {
	o.Pos = geo.Pt(
		m.World.Min.X+rng.Float64()*m.World.Width(),
		m.World.Min.Y+rng.Float64()*m.World.Height(),
	)
}

// Step implements Mobility.
func (m *Linear) Step(o *Object, dt float64, _ *rand.Rand) {
	o.Pos = o.Pos.Add(m.Vel.Scale(dt))
	// Wrap into the world.
	w, h := m.World.Width(), m.World.Height()
	if w > 0 {
		o.Pos.X = m.World.Min.X + math.Mod(math.Mod(o.Pos.X-m.World.Min.X, w)+w, w)
	}
	if h > 0 {
		o.Pos.Y = m.World.Min.Y + math.Mod(math.Mod(o.Pos.Y-m.World.Min.Y, h)+h, h)
	}
}
