// Package obs is the node-local observability plane: a small HTTP surface
// exposing the metrics registry in the Prometheus text format, liveness and
// readiness probes, and the runtime profiler. Both stcamd roles mount it
// behind the -http flag; everything here is stdlib-only and pull-based, so a
// node with no scraper pays nothing beyond the listener.
package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"stcam/internal/metrics"
)

// Options configures one node's observability endpoint.
type Options struct {
	// Node is the value of the node="..." label on every exposed series.
	Node string
	// Snapshot produces the metrics to expose; called once per scrape.
	Snapshot func() metrics.RegistrySnapshot
	// Ready is the readiness probe: nil error means ready. A nil func is
	// always ready. Liveness (/healthz) is serving-the-request itself.
	Ready func() error
}

// NewMux builds the observability HTTP mux: /metrics, /healthz, /readyz,
// and /debug/pprof/*.
func NewMux(o Options) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var snap metrics.RegistrySnapshot
		if o.Snapshot != nil {
			snap = o.Snapshot()
		}
		WriteMetrics(w, o.Node, snap)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n") //nolint:errcheck // best-effort probe answer
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if o.Ready != nil {
			if err := o.Ready(); err != nil {
				http.Error(w, "not ready: "+err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		io.WriteString(w, "ready\n") //nolint:errcheck // best-effort probe answer
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr and serves the observability mux until Close.
func Serve(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewMux(o)}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }

// WriteMetrics renders a registry snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as-is, histograms as
// cumulative _bucket series in seconds plus _sum and _count. Output is
// sorted by metric name, so scrapes are deterministic and diffable.
func WriteMetrics(w io.Writer, node string, snap metrics.RegistrySnapshot) {
	label := `{node="` + node + `"}`
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := metricName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", n, n, label, snap.Counters[name])
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := metricName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n", n, n, label, snap.Gauges[name])
	}
	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		n := metricName(name) + "_seconds"
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		for _, b := range h.Buckets {
			fmt.Fprintf(w, "%s_bucket{node=%q,le=%q} %d\n", n, node, formatSeconds(b.Le), b.Count)
		}
		fmt.Fprintf(w, "%s_bucket{node=%q,le=\"+Inf\"} %d\n", n, node, h.Count)
		fmt.Fprintf(w, "%s_sum%s %s\n", n, label, formatSeconds(h.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", n, label, h.Count)
	}
}

// metricName maps a registry name to a Prometheus-legal one: dots and other
// separators become underscores, and everything gets the stcam_ namespace.
func metricName(name string) string {
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			out[i] = c
		case c >= '0' && c <= '9':
			if i == 0 {
				out[i] = '_'
			} else {
				out[i] = c
			}
		default:
			out[i] = '_'
		}
	}
	return "stcam_" + string(out)
}

func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}
