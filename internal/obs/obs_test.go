package obs

import (
	"bufio"
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/core"
	"stcam/internal/geo"
	"stcam/internal/metrics"
	"stcam/internal/serve"
	"stcam/internal/wire"
)

var ctx = context.Background()

// scrape fetches a path from the test server and returns body and status.
func scrape(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.StatusCode
}

// sampleLine matches one exposition sample: name{labels} value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*\{[^}]*\} [0-9eE+.-]+$`)

func TestMetricsExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("ingest.accepted").Add(42)
	reg.Gauge("tracks.resident").Set(7)
	h := reg.Histogram("rpc.call.Heartbeat")
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	snap := reg.Snapshot()

	srv := httptest.NewServer(NewMux(Options{Node: "w01", Snapshot: reg.Snapshot}))
	defer srv.Close()
	body, status := scrape(t, srv.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}

	// Every non-comment line must parse as a sample.
	samples := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		samples[line[:sp]] = line[sp+1:]
	}

	if got := samples[`stcam_ingest_accepted{node="w01"}`]; got != "42" {
		t.Errorf("counter sample = %q, want 42", got)
	}
	if got := samples[`stcam_tracks_resident{node="w01"}`]; got != "7" {
		t.Errorf("gauge sample = %q, want 7", got)
	}
	hs := snap.Histograms["rpc.call.Heartbeat"]
	if got := samples[`stcam_rpc_call_Heartbeat_seconds_count{node="w01"}`]; got != strconv.FormatInt(hs.Count, 10) {
		t.Errorf("_count = %q, want %d", got, hs.Count)
	}
	wantSum := strconv.FormatFloat(hs.Sum.Seconds(), 'g', -1, 64)
	if got := samples[`stcam_rpc_call_Heartbeat_seconds_sum{node="w01"}`]; got != wantSum {
		t.Errorf("_sum = %q, want %s", got, wantSum)
	}

	// Buckets: cumulative counts, non-decreasing with ascending le, ending at
	// +Inf == _count.
	type bkt struct {
		le    float64
		count int64
	}
	var buckets []bkt
	for key, val := range samples {
		if !strings.HasPrefix(key, `stcam_rpc_call_Heartbeat_seconds_bucket{`) {
			continue
		}
		leStr := key[strings.Index(key, `le="`)+4:]
		leStr = leStr[:strings.IndexByte(leStr, '"')]
		le := inf(t, leStr)
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Fatalf("bucket count %q: %v", val, err)
		}
		buckets = append(buckets, bkt{le, n})
	}
	if len(buckets) < 3 {
		t.Fatalf("only %d buckets exposed", len(buckets))
	}
	for i := range buckets {
		for j := range buckets {
			if buckets[i].le < buckets[j].le && buckets[i].count > buckets[j].count {
				t.Fatalf("bucket counts not cumulative: le=%g count=%d vs le=%g count=%d",
					buckets[i].le, buckets[i].count, buckets[j].le, buckets[j].count)
			}
		}
	}
	var last bkt
	for _, b := range buckets {
		if b.le >= last.le {
			last = b
		}
	}
	if last.count != hs.Count {
		t.Errorf("+Inf bucket = %d, want %d", last.count, hs.Count)
	}
}

func inf(t *testing.T, s string) float64 {
	t.Helper()
	if s == "+Inf" {
		return 1e308
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("le %q: %v", s, err)
	}
	return v
}

func TestHealthAndReadyProbes(t *testing.T) {
	var notReady atomic.Bool
	srv := httptest.NewServer(NewMux(Options{
		Node:     "n1",
		Snapshot: metrics.NewRegistry().Snapshot,
		Ready: func() error {
			if notReady.Load() {
				return errors.New("draining")
			}
			return nil
		},
	}))
	defer srv.Close()

	if _, status := scrape(t, srv.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("/healthz status %d", status)
	}
	if _, status := scrape(t, srv.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("/readyz status %d while ready", status)
	}
	notReady.Store(true)
	if body, status := scrape(t, srv.URL+"/readyz"); status != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz = (%d, %q), want 503 with reason", status, body)
	}
	notReady.Store(false)
	if _, status := scrape(t, srv.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("/readyz did not recover")
	}
	// pprof index is mounted.
	if _, status := scrape(t, srv.URL+"/debug/pprof/"); status != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", status)
	}
}

// TestReadyzTracksClusterMembership wires the coordinator's quorum probe into
// /readyz and watches it flip as a worker dies and re-registers.
func TestReadyzTracksClusterMembership(t *testing.T) {
	opts := core.Options{HeartbeatTimeout: 50 * time.Millisecond}
	c, err := core.NewLocalCluster(2, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	srv := httptest.NewServer(NewMux(Options{
		Node:     "coordinator",
		Snapshot: c.Coordinator.StatsSnapshot,
		Ready:    c.Coordinator.Ready,
	}))
	defer srv.Close()

	if body, status := scrape(t, srv.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("/readyz = (%d, %q) with full membership", status, body)
	}

	// Kill one of two workers: quorum (strict majority) is lost.
	dead := c.Workers[0]
	inproc := c.Transport.(*cluster.InProc)
	inproc.SetBlocked(dead.Addr(), true)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		c.Workers[1].SendHeartbeat(ctx) //nolint:errcheck // best-effort in test loop
		if died := c.Coordinator.Sweep(ctx, time.Now()); len(died) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if body, status := scrape(t, srv.URL+"/readyz"); status != http.StatusServiceUnavailable || !strings.Contains(body, "quorum") {
		t.Fatalf("/readyz = (%d, %q) after worker death, want 503 quorum", status, body)
	}

	// The worker comes back and heartbeats: readiness recovers.
	inproc.SetBlocked(dead.Addr(), false)
	if err := dead.SendHeartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	if body, status := scrape(t, srv.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("/readyz = (%d, %q) after re-registration", status, body)
	}

	// The worker-side probe: a live cluster member is ready; a worker that
	// never registered is not.
	if err := c.Workers[1].Ready(); err != nil {
		t.Errorf("registered worker not ready: %v", err)
	}
	stray := core.NewWorker(wire.NodeID("w99"), "worker-99", "coord", c.Transport, opts)
	if err := stray.Ready(); err == nil {
		t.Error("unregistered worker reports ready")
	}

	// The coordinator's exposition now carries the rpc.serve histograms the
	// cluster traffic above populated.
	body, _ := scrape(t, srv.URL+"/metrics")
	if !strings.Contains(body, "stcam_rpc_serve_Heartbeat_seconds_count") {
		t.Errorf("coordinator /metrics missing rpc.serve.Heartbeat histogram:\n%s", firstLines(body, 20))
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// TestServingPlaneMetricsExposition attaches the serving plane to a live
// coordinator and asserts its serve.* series render through /metrics with the
// values the traffic produced: a repeated Count query leaves exactly one
// cache miss and one hit, and a live subscription shows in the subscribers
// gauge and drops back to zero after unsubscribe.
func TestServingPlaneMetricsExposition(t *testing.T) {
	c, err := core.NewLocalCluster(1, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	omni := []wire.CameraInfo{{ID: 1, Pos: geo.Pt(500, 500), HalfFOV: math.Pi, Range: 1000}}
	if err := c.Coordinator.AddCameras(ctx, omni, 50); err != nil {
		t.Fatal(err)
	}
	serve.New(c.Coordinator, serve.Options{CacheTTL: time.Hour})

	srv := httptest.NewServer(NewMux(Options{Node: "coord", Snapshot: c.Coordinator.StatsSnapshot}))
	defer srv.Close()

	q := &wire.CountQuery{
		Rect:   geo.RectOf(0, 0, 1000, 1000),
		Window: wire.TimeWindow{From: time.Unix(0, 0).UTC(), To: time.Unix(4e9, 0).UTC()},
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Transport.Call(ctx, c.Coordinator.Addr(), q); err != nil {
			t.Fatalf("count query %d: %v", i, err)
		}
	}
	resp, err := c.Transport.Call(ctx, c.Coordinator.Addr(),
		&wire.Subscribe{Kind: wire.ContinuousRange, Rect: geo.RectOf(0, 0, 400, 400)})
	if err != nil {
		t.Fatal(err)
	}
	ack := resp.(*wire.SubscribeAck)

	body, status := scrape(t, srv.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	for name, want := range map[string]string{
		"stcam_serve_cache_misses":  "1",
		"stcam_serve_cache_hits":    "1",
		"stcam_serve_cache_entries": "1",
		"stcam_serve_subscribers":   "1",
	} {
		sample := name + `{node="coord"} ` + want
		if !strings.Contains(body, sample) {
			t.Errorf("exposition missing %q", sample)
		}
	}
	// The cache-bytes gauge carries the (non-zero) cost of the cached answer.
	if strings.Contains(body, `stcam_serve_cache_bytes{node="coord"} 0`) ||
		!strings.Contains(body, "stcam_serve_cache_bytes") {
		t.Errorf("serve.cache.bytes gauge missing or zero after a cached answer:\n%s", firstLines(body, 30))
	}

	if _, err := c.Transport.Call(ctx, c.Coordinator.Addr(), &wire.Unsubscribe{SubID: ack.SubID}); err != nil {
		t.Fatal(err)
	}
	body, _ = scrape(t, srv.URL+"/metrics")
	if !strings.Contains(body, `stcam_serve_subscribers{node="coord"} 0`) {
		t.Errorf("subscribers gauge did not return to 0 after unsubscribe:\n%s", firstLines(body, 30))
	}
}

// TestFailoverTelemetryExposition locks the exposition names of the
// control-plane HA telemetry: the failover counter, the cumulative
// leaderless-outage clock, and the worker-side deferred-push queue depth.
func TestFailoverTelemetryExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("failover.total").Inc()
	reg.Counter("leaderless.seconds").Add(2)
	reg.Gauge("handoff.queue_depth").Set(5)

	srv := httptest.NewServer(NewMux(Options{Node: "c2", Snapshot: reg.Snapshot}))
	defer srv.Close()
	body, status := scrape(t, srv.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	for name, want := range map[string]string{
		"stcam_failover_total":      "1",
		"stcam_leaderless_seconds":  "2",
		"stcam_handoff_queue_depth": "5",
	} {
		sample := name + `{node="c2"} ` + want
		if !strings.Contains(body, sample) {
			t.Errorf("exposition missing %q:\n%s", sample, firstLines(body, 30))
		}
	}
}
