package spatial

import (
	"fmt"
	"math/rand"
	"testing"

	"stcam/internal/geo"
)

// indexUnderTest wires every implementation into the shared conformance
// suite.
type indexFactory struct {
	name string
	make func() Index
}

func factories() []indexFactory {
	world := geo.RectOf(0, 0, 1000, 1000)
	return []indexFactory{
		{"brute", func() Index { return NewBruteForce() }},
		{"grid", func() Index { return NewGrid(25) }},
		{"grid-coarse", func() Index { return NewGrid(400) }},
		{"grid-fine", func() Index { return NewGrid(3) }},
		{"quadtree", func() Index { return NewQuadtree(world, 8, 0) }},
		{"quadtree-b1", func() Index { return NewQuadtree(world, 1, 12) }},
		{"rtree", func() Index { return NewRTree(0) }},
		{"rtree-m4", func() Index { return NewRTree(4) }},
	}
}

func randomItems(rng *rand.Rand, n int, extent float64) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			ID: uint64(i + 1),
			P:  geo.Pt(rng.Float64()*extent, rng.Float64()*extent),
		}
	}
	return items
}

func neighborsEqual(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Distances must match exactly; IDs may differ only on exact ties,
		// which the (Dist2, ID) ordering also forbids.
		if a[i].Dist2 != b[i].Dist2 || a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

func itemsEqual(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIndexEmpty(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make()
			if ix.Len() != 0 {
				t.Fatal("fresh index not empty")
			}
			if got := Collect(ix, geo.RectOf(0, 0, 1000, 1000)); len(got) != 0 {
				t.Errorf("range on empty returned %v", got)
			}
			if got := ix.KNN(geo.Pt(5, 5), 3); len(got) != 0 {
				t.Errorf("kNN on empty returned %v", got)
			}
			if ix.Delete(1, geo.Pt(1, 1)) {
				t.Error("delete on empty succeeded")
			}
		})
	}
}

func TestIndexSingleItem(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make()
			ix.Insert(42, geo.Pt(10, 20))
			if ix.Len() != 1 {
				t.Fatalf("Len = %d", ix.Len())
			}
			got := Collect(ix, geo.RectOf(0, 0, 100, 100))
			if len(got) != 1 || got[0].ID != 42 {
				t.Fatalf("range = %v", got)
			}
			nn := ix.KNN(geo.Pt(0, 0), 5)
			if len(nn) != 1 || nn[0].ID != 42 {
				t.Fatalf("kNN = %v", nn)
			}
			if !ix.Delete(42, geo.Pt(10, 20)) {
				t.Fatal("delete failed")
			}
			if ix.Len() != 0 {
				t.Fatalf("Len after delete = %d", ix.Len())
			}
		})
	}
}

func TestIndexBoundaryInclusive(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make()
			ix.Insert(1, geo.Pt(10, 10))
			ix.Insert(2, geo.Pt(20, 20))
			// Query whose edges pass exactly through both points.
			got := Collect(ix, geo.RectOf(10, 10, 20, 20))
			if len(got) != 2 {
				t.Errorf("boundary query returned %d items, want 2: %v", len(got), got)
			}
		})
	}
}

func TestIndexDuplicatePositions(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make()
			for i := uint64(1); i <= 50; i++ {
				ix.Insert(i, geo.Pt(5, 5)) // all at the same point
			}
			if ix.Len() != 50 {
				t.Fatalf("Len = %d", ix.Len())
			}
			got := Collect(ix, geo.RectAround(geo.Pt(5, 5), 1))
			if len(got) != 50 {
				t.Fatalf("range returned %d", len(got))
			}
			nn := ix.KNN(geo.Pt(5, 5), 10)
			if len(nn) != 10 {
				t.Fatalf("kNN returned %d", len(nn))
			}
			// Ties broken by ascending ID.
			for i, n := range nn {
				if n.ID != uint64(i+1) {
					t.Fatalf("tie-break order wrong: %v", nn)
				}
			}
			if !ix.Delete(25, geo.Pt(5, 5)) {
				t.Fatal("delete of one duplicate failed")
			}
			if ix.Len() != 49 {
				t.Fatalf("Len after delete = %d", ix.Len())
			}
		})
	}
}

// TestIndexMatchesBruteForce is the core conformance property from DESIGN.md:
// every index returns exactly the brute-force answer for random workloads of
// inserts, deletes, range and kNN queries.
func TestIndexMatchesBruteForce(t *testing.T) {
	for _, f := range factories() {
		if f.name == "brute" {
			continue
		}
		t.Run(f.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1234))
			oracle := NewBruteForce()
			ix := f.make()
			live := make(map[uint64]geo.Point)
			nextID := uint64(1)

			for step := 0; step < 3000; step++ {
				op := rng.Float64()
				switch {
				case op < 0.45 || len(live) == 0: // insert
					p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
					oracle.Insert(nextID, p)
					ix.Insert(nextID, p)
					live[nextID] = p
					nextID++
				case op < 0.6: // delete random live item
					for id, p := range live {
						if !ix.Delete(id, p) {
							t.Fatalf("step %d: delete(%d) failed", step, id)
						}
						oracle.Delete(id, p)
						delete(live, id)
						break
					}
				case op < 0.7: // update random live item
					for id, p := range live {
						np := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
						if !ix.Update(id, p, np) {
							t.Fatalf("step %d: update(%d) failed", step, id)
						}
						oracle.Update(id, p, np)
						live[id] = np
						break
					}
				case op < 0.9: // range query
					c := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
					r := geo.RectAround(c, rng.Float64()*150)
					want := Collect(oracle, r)
					got := Collect(ix, r)
					if !itemsEqual(got, want) {
						t.Fatalf("step %d: range %v mismatch\n got %v\nwant %v", step, r, got, want)
					}
				default: // kNN query
					q := geo.Pt(rng.Float64()*1200-100, rng.Float64()*1200-100)
					k := 1 + rng.Intn(20)
					want := oracle.KNN(q, k)
					got := ix.KNN(q, k)
					if !neighborsEqual(got, want) {
						t.Fatalf("step %d: kNN(%v, %d) mismatch\n got %v\nwant %v", step, q, k, got, want)
					}
				}
				if ix.Len() != oracle.Len() {
					t.Fatalf("step %d: Len %d != oracle %d", step, ix.Len(), oracle.Len())
				}
			}
		})
	}
}

// TestIndexOutOfWorld verifies the quadtree (and others) accept points far
// outside the nominal world rectangle.
func TestIndexOutOfWorld(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make()
			far := geo.Pt(5000, -7000)
			ix.Insert(1, far)
			ix.Insert(2, geo.Pt(500, 500))
			got := Collect(ix, geo.RectAround(far, 10))
			if len(got) != 1 || got[0].ID != 1 {
				t.Errorf("range around out-of-world point = %v", got)
			}
			nn := ix.KNN(geo.Pt(4990, -6990), 1)
			if len(nn) != 1 || nn[0].ID != 1 {
				t.Errorf("kNN near out-of-world point = %v", nn)
			}
			if !ix.Delete(1, far) {
				t.Error("delete of out-of-world point failed")
			}
		})
	}
}

func TestIndexRangeEarlyStop(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make()
			for i := uint64(1); i <= 100; i++ {
				ix.Insert(i, geo.Pt(float64(i%10)*10, float64(i/10)*10))
			}
			count := 0
			ix.Range(geo.RectOf(0, 0, 1000, 1000), func(Item) bool {
				count++
				return count < 5
			})
			if count != 5 {
				t.Errorf("early stop visited %d items, want 5", count)
			}
		})
	}
}

func TestIndexKNNZero(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make()
			ix.Insert(1, geo.Pt(1, 1))
			if got := ix.KNN(geo.Pt(0, 0), 0); len(got) != 0 {
				t.Errorf("KNN(k=0) = %v", got)
			}
		})
	}
}

func TestIndexKNNMoreThanStored(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make()
			for i := uint64(1); i <= 5; i++ {
				ix.Insert(i, geo.Pt(float64(i), 0))
			}
			got := ix.KNN(geo.Pt(0, 0), 50)
			if len(got) != 5 {
				t.Fatalf("KNN(k=50) returned %d", len(got))
			}
			for i := 1; i < len(got); i++ {
				if got[i].Dist2 < got[i-1].Dist2 {
					t.Fatalf("kNN results not sorted: %v", got)
				}
			}
		})
	}
}

func TestBulkLoadRTreeMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{0, 1, 31, 32, 33, 1000, 5000} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			items := randomItems(rng, n, 1000)
			rt := BulkLoadRTree(items, 16)
			if rt.Len() != n {
				t.Fatalf("Len = %d, want %d", rt.Len(), n)
			}
			oracle := NewBruteForce()
			for _, it := range items {
				oracle.Insert(it.ID, it.P)
			}
			for q := 0; q < 30; q++ {
				r := geo.RectAround(geo.Pt(rng.Float64()*1000, rng.Float64()*1000), rng.Float64()*200)
				if got, want := Collect(rt, r), Collect(oracle, r); !itemsEqual(got, want) {
					t.Fatalf("bulk-loaded range mismatch: got %d want %d items", len(got), len(want))
				}
				qp := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
				if got, want := rt.KNN(qp, 7), oracle.KNN(qp, 7); !neighborsEqual(got, want) {
					t.Fatalf("bulk-loaded kNN mismatch at %v", qp)
				}
			}
			// Bulk-loaded trees accept further inserts and deletes.
			if n > 0 {
				rt.Insert(1<<40, geo.Pt(-50, -50))
				nn := rt.KNN(geo.Pt(-50, -50), 1)
				if len(nn) != 1 || nn[0].ID != 1<<40 {
					t.Fatalf("insert after bulk load: kNN = %v", nn)
				}
				if !rt.Delete(items[0].ID, items[0].P) {
					t.Fatal("delete after bulk load failed")
				}
			}
		})
	}
}

func TestRTreeHeightGrowth(t *testing.T) {
	rt := NewRTree(4)
	if rt.Height() != 1 {
		t.Fatalf("initial height = %d", rt.Height())
	}
	rng := rand.New(rand.NewSource(5))
	for i := uint64(1); i <= 500; i++ {
		rt.Insert(i, geo.Pt(rng.Float64()*100, rng.Float64()*100))
	}
	if rt.Height() < 3 {
		t.Errorf("height after 500 inserts with max=4 is %d, want >= 3", rt.Height())
	}
	// Delete everything; the tree must shrink back and stay consistent.
	oracle := map[uint64]geo.Point{}
	rng = rand.New(rand.NewSource(5))
	for i := uint64(1); i <= 500; i++ {
		oracle[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	for id, p := range oracle {
		if !rt.Delete(id, p) {
			t.Fatalf("delete(%d, %v) failed", id, p)
		}
	}
	if rt.Len() != 0 {
		t.Fatalf("Len after deleting all = %d", rt.Len())
	}
	if rt.Height() != 1 {
		t.Errorf("height after deleting all = %d, want 1", rt.Height())
	}
}

func TestGridCellAccounting(t *testing.T) {
	g := NewGrid(10)
	g.Insert(1, geo.Pt(5, 5))
	g.Insert(2, geo.Pt(6, 6))  // same cell
	g.Insert(3, geo.Pt(55, 5)) // different cell
	if g.CellCount() != 2 {
		t.Errorf("CellCount = %d, want 2", g.CellCount())
	}
	g.Delete(1, geo.Pt(5, 5))
	g.Delete(2, geo.Pt(6, 6))
	if g.CellCount() != 1 {
		t.Errorf("CellCount after emptying a cell = %d, want 1", g.CellCount())
	}
}

func TestNewGridPanicsOnBadSize(t *testing.T) {
	for _, size := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGrid(%v) did not panic", size)
				}
			}()
			NewGrid(size)
		}()
	}
}

func TestQuadtreeDepthBound(t *testing.T) {
	world := geo.RectOf(0, 0, 100, 100)
	qt := NewQuadtree(world, 1, 6)
	// Pathological: many points at the same location force splits that can
	// never separate them; depth must stop at maxD.
	for i := uint64(1); i <= 100; i++ {
		qt.Insert(i, geo.Pt(50.1, 50.1))
	}
	if d := qt.Depth(); d > 6 {
		t.Errorf("depth %d exceeds bound 6", d)
	}
	if qt.Len() != 100 {
		t.Errorf("Len = %d", qt.Len())
	}
	nn := qt.KNN(geo.Pt(50, 50), 100)
	if len(nn) != 100 {
		t.Errorf("kNN returned %d", len(nn))
	}
}

func TestDeleteWrongPosition(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make()
			ix.Insert(1, geo.Pt(10, 10))
			if ix.Delete(1, geo.Pt(11, 10)) {
				t.Error("delete with wrong position succeeded")
			}
			if ix.Len() != 1 {
				t.Errorf("Len = %d after failed delete", ix.Len())
			}
		})
	}
}

func TestUpdateMissing(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make()
			if ix.Update(9, geo.Pt(0, 0), geo.Pt(1, 1)) {
				t.Error("update of missing item succeeded")
			}
		})
	}
}

func TestKNNAccumulator(t *testing.T) {
	acc := newKNNAcc(3)
	for i, d := range []float64{9, 4, 7, 1, 8, 2} {
		acc.offer(Neighbor{Item: Item{ID: uint64(i)}, Dist2: d})
	}
	got := acc.results()
	if len(got) != 3 {
		t.Fatalf("results len = %d", len(got))
	}
	wantD := []float64{1, 2, 4}
	for i, n := range got {
		if n.Dist2 != wantD[i] {
			t.Fatalf("results = %v", got)
		}
	}
}

// TestKNNWithinConformance: the bounded kNN helper must return, for every
// index implementation, exactly the unbounded kNN answer with candidates
// beyond the radius filtered out — including ties at exactly the bound.
func TestKNNWithinConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	items := randomItems(rng, 300, 1000)
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make()
			for _, it := range items {
				ix.Insert(it.ID, it.P)
			}
			for trial := 0; trial < 40; trial++ {
				q := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
				k := 1 + rng.Intn(12)
				full := ix.KNN(q, len(items))
				maxDist2 := full[rng.Intn(len(full))].Dist2
				var want []Neighbor
				for _, n := range full {
					if n.Dist2 <= maxDist2 && len(want) < k {
						want = append(want, n)
					}
				}
				got := KNNWithin(ix, q, k, maxDist2)
				if len(got) != len(want) {
					t.Fatalf("trial %d: got %d neighbors, want %d", trial, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d: neighbor %d = %+v, want %+v", trial, i, got[i], want[i])
					}
				}
			}
			if got := KNNWithin(ix, geo.Pt(0, 0), 5, 0); len(got) != 5 {
				t.Fatalf("unbounded KNNWithin returned %d, want 5", len(got))
			}
		})
	}
}
