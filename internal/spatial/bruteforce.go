package spatial

import "stcam/internal/geo"

// BruteForce is the reference Index implementation: a flat slice with linear
// scans. It is the oracle the tree indexes are property-tested against, and
// the "no index" baseline in experiment R6.
type BruteForce struct {
	items []Item
}

var _ Index = (*BruteForce)(nil)

// NewBruteForce returns an empty brute-force index.
func NewBruteForce() *BruteForce { return &BruteForce{} }

// Insert implements Index.
func (b *BruteForce) Insert(id uint64, p geo.Point) {
	b.items = append(b.items, Item{ID: id, P: p})
}

// Delete implements Index.
func (b *BruteForce) Delete(id uint64, p geo.Point) bool {
	for i, it := range b.items {
		if it.ID == id && it.P == p {
			last := len(b.items) - 1
			b.items[i] = b.items[last]
			b.items = b.items[:last]
			return true
		}
	}
	return false
}

// Update implements Index.
func (b *BruteForce) Update(id uint64, old, new geo.Point) bool {
	if !b.Delete(id, old) {
		return false
	}
	b.Insert(id, new)
	return true
}

// Range implements Index.
func (b *BruteForce) Range(r geo.Rect, fn func(Item) bool) {
	for _, it := range b.items {
		if r.Contains(it.P) {
			if !fn(it) {
				return
			}
		}
	}
}

// KNN implements Index.
func (b *BruteForce) KNN(q geo.Point, k int) []Neighbor {
	acc := newKNNAcc(k)
	for _, it := range b.items {
		acc.offer(Neighbor{Item: it, Dist2: q.Dist2(it.P)})
	}
	return acc.results()
}

// Len implements Index.
func (b *BruteForce) Len() int { return len(b.items) }
