package spatial

import (
	"container/heap"
	"math"
	"sort"

	"stcam/internal/geo"
)

// RTree is an R-tree over points with Guttman quadratic node splitting and an
// STR (sort-tile-recursive) bulk loader. It adapts to any data distribution
// without a world rectangle, at the cost of heavier inserts than the grid.
type RTree struct {
	root   *rnode
	minE   int
	maxE   int
	n      int
	height int
}

// rnode is a tree node. Leaves carry items; internal nodes carry children.
// Exactly one of items/children is used, selected by leaf.
type rnode struct {
	bounds   geo.Rect
	items    []Item
	children []*rnode
	leaf     bool
}

const (
	defaultRTreeMax = 32
)

var _ Index = (*RTree)(nil)

// NewRTree returns an empty R-tree. maxEntries of 0 selects the default (32);
// the minimum fill is maxEntries*2/5, the R*-tree recommendation.
func NewRTree(maxEntries int) *RTree {
	if maxEntries <= 0 {
		maxEntries = defaultRTreeMax
	}
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &RTree{
		root:   &rnode{leaf: true, bounds: geo.EmptyRect()},
		maxE:   maxEntries,
		minE:   maxEntries * 2 / 5,
		height: 1,
	}
}

// BulkLoadRTree builds an R-tree over items using STR packing, which yields
// near-optimal space utilization and query performance for static data.
// maxEntries of 0 selects the default.
func BulkLoadRTree(items []Item, maxEntries int) *RTree {
	t := NewRTree(maxEntries)
	if len(items) == 0 {
		return t
	}
	leavesItems := strPack(items, t.maxE)
	level := make([]*rnode, len(leavesItems))
	for i, chunk := range leavesItems {
		n := &rnode{leaf: true, items: chunk, bounds: geo.EmptyRect()}
		for _, it := range chunk {
			n.bounds = n.bounds.UnionPoint(it.P)
		}
		level[i] = n
	}
	height := 1
	for len(level) > 1 {
		level = strPackNodes(level, t.maxE)
		height++
	}
	t.root = level[0]
	t.n = len(items)
	t.height = height
	return t
}

// strPack sorts items into tiles of at most maxE by x then y.
func strPack(items []Item, maxE int) [][]Item {
	sorted := make([]Item, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].P.X < sorted[j].P.X })
	nLeaves := (len(sorted) + maxE - 1) / maxE
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := nSlices * maxE
	var out [][]Item
	for s := 0; s < len(sorted); s += sliceSize {
		e := s + sliceSize
		if e > len(sorted) {
			e = len(sorted)
		}
		slice := sorted[s:e]
		sort.Slice(slice, func(i, j int) bool { return slice[i].P.Y < slice[j].P.Y })
		for o := 0; o < len(slice); o += maxE {
			oe := o + maxE
			if oe > len(slice) {
				oe = len(slice)
			}
			chunk := make([]Item, oe-o)
			copy(chunk, slice[o:oe])
			out = append(out, chunk)
		}
	}
	return out
}

// strPackNodes groups child nodes into parents of at most maxE using the same
// tiling on node centers.
func strPackNodes(nodes []*rnode, maxE int) []*rnode {
	sorted := make([]*rnode, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].bounds.Center().X < sorted[j].bounds.Center().X
	})
	nParents := (len(sorted) + maxE - 1) / maxE
	nSlices := int(math.Ceil(math.Sqrt(float64(nParents))))
	sliceSize := nSlices * maxE
	var out []*rnode
	for s := 0; s < len(sorted); s += sliceSize {
		e := s + sliceSize
		if e > len(sorted) {
			e = len(sorted)
		}
		slice := sorted[s:e]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].bounds.Center().Y < slice[j].bounds.Center().Y
		})
		for o := 0; o < len(slice); o += maxE {
			oe := o + maxE
			if oe > len(slice) {
				oe = len(slice)
			}
			parent := &rnode{bounds: geo.EmptyRect()}
			parent.children = append(parent.children, slice[o:oe]...)
			for _, c := range parent.children {
				parent.bounds = parent.bounds.Union(c.bounds)
			}
			out = append(out, parent)
		}
	}
	return out
}

// Insert implements Index.
func (t *RTree) Insert(id uint64, p geo.Point) {
	it := Item{ID: id, P: p}
	leaf, path := t.chooseLeaf(p)
	leaf.items = append(leaf.items, it)
	leaf.bounds = leaf.bounds.UnionPoint(p)
	for _, a := range path {
		a.bounds = a.bounds.UnionPoint(p)
	}
	if len(leaf.items) > t.maxE {
		t.splitUp(leaf, path)
	}
	t.n++
}

// chooseLeaf descends to the leaf needing least area enlargement, returning
// the leaf and the ancestor path (root first, leaf's parent last).
func (t *RTree) chooseLeaf(p geo.Point) (*rnode, []*rnode) {
	var path []*rnode
	n := t.root
	for !n.leaf {
		path = append(path, n)
		var best *rnode
		bestEnl, bestArea := math.Inf(1), math.Inf(1)
		for _, c := range n.children {
			area := c.bounds.Area()
			enl := c.bounds.UnionPoint(p).Area() - area
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = c, enl, area
			}
		}
		n = best
	}
	return n, path
}

// splitUp splits an overflowing node and propagates splits up the path.
func (t *RTree) splitUp(n *rnode, path []*rnode) {
	for {
		sibling := t.split(n)
		if len(path) == 0 {
			// Root split: grow the tree.
			newRoot := &rnode{
				children: []*rnode{n, sibling},
				bounds:   n.bounds.Union(sibling.bounds),
			}
			t.root = newRoot
			t.height++
			return
		}
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		parent.children = append(parent.children, sibling)
		if len(parent.children) <= t.maxE {
			return
		}
		n = parent
	}
}

// split performs Guttman quadratic split on n in place, returning the new
// sibling node.
func (t *RTree) split(n *rnode) *rnode {
	if n.leaf {
		groupA, groupB := quadraticSplitItems(n.items, t.minE)
		n.items = groupA
		n.bounds = itemsBounds(groupA)
		return &rnode{leaf: true, items: groupB, bounds: itemsBounds(groupB)}
	}
	groupA, groupB := quadraticSplitNodes(n.children, t.minE)
	n.children = groupA
	n.bounds = nodesBounds(groupA)
	return &rnode{children: groupB, bounds: nodesBounds(groupB)}
}

func itemsBounds(items []Item) geo.Rect {
	b := geo.EmptyRect()
	for _, it := range items {
		b = b.UnionPoint(it.P)
	}
	return b
}

func nodesBounds(nodes []*rnode) geo.Rect {
	b := geo.EmptyRect()
	for _, n := range nodes {
		b = b.Union(n.bounds)
	}
	return b
}

// quadraticSplitItems partitions items into two groups using Guttman's
// quadratic pick-seeds / pick-next with a minimum fill.
func quadraticSplitItems(items []Item, minFill int) ([]Item, []Item) {
	seedA, seedB := pickSeeds(len(items), func(i, j int) float64 {
		r := geo.Rect{Min: items[i].P, Max: items[i].P}.UnionPoint(items[j].P)
		return r.Area()
	})
	var a, b []Item
	ba, bb := geo.EmptyRect(), geo.EmptyRect()
	a = append(a, items[seedA])
	ba = ba.UnionPoint(items[seedA].P)
	b = append(b, items[seedB])
	bb = bb.UnionPoint(items[seedB].P)
	remaining := make([]Item, 0, len(items)-2)
	for i, it := range items {
		if i != seedA && i != seedB {
			remaining = append(remaining, it)
		}
	}
	for len(remaining) > 0 {
		// Force assignment if one group must take everything to reach fill.
		if len(a)+len(remaining) == minFill {
			for _, it := range remaining {
				a = append(a, it)
				ba = ba.UnionPoint(it.P)
			}
			break
		}
		if len(b)+len(remaining) == minFill {
			for _, it := range remaining {
				b = append(b, it)
				bb = bb.UnionPoint(it.P)
			}
			break
		}
		// Pick the entry with maximum preference for one group.
		bestI, bestDiff := -1, -1.0
		var bestToA bool
		for i, it := range remaining {
			dA := ba.UnionPoint(it.P).Area() - ba.Area()
			dB := bb.UnionPoint(it.P).Area() - bb.Area()
			diff := math.Abs(dA - dB)
			if diff > bestDiff {
				bestDiff, bestI, bestToA = diff, i, dA < dB
			}
		}
		it := remaining[bestI]
		remaining[bestI] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		if bestToA {
			a = append(a, it)
			ba = ba.UnionPoint(it.P)
		} else {
			b = append(b, it)
			bb = bb.UnionPoint(it.P)
		}
	}
	return a, b
}

func quadraticSplitNodes(nodes []*rnode, minFill int) ([]*rnode, []*rnode) {
	seedA, seedB := pickSeeds(len(nodes), func(i, j int) float64 {
		u := nodes[i].bounds.Union(nodes[j].bounds)
		return u.Area() - nodes[i].bounds.Area() - nodes[j].bounds.Area()
	})
	var a, b []*rnode
	ba, bb := geo.EmptyRect(), geo.EmptyRect()
	a = append(a, nodes[seedA])
	ba = ba.Union(nodes[seedA].bounds)
	b = append(b, nodes[seedB])
	bb = bb.Union(nodes[seedB].bounds)
	remaining := make([]*rnode, 0, len(nodes)-2)
	for i, n := range nodes {
		if i != seedA && i != seedB {
			remaining = append(remaining, n)
		}
	}
	for len(remaining) > 0 {
		if len(a)+len(remaining) == minFill {
			for _, n := range remaining {
				a = append(a, n)
				ba = ba.Union(n.bounds)
			}
			break
		}
		if len(b)+len(remaining) == minFill {
			for _, n := range remaining {
				b = append(b, n)
				bb = bb.Union(n.bounds)
			}
			break
		}
		bestI, bestDiff := -1, -1.0
		var bestToA bool
		for i, n := range remaining {
			dA := ba.Union(n.bounds).Area() - ba.Area()
			dB := bb.Union(n.bounds).Area() - bb.Area()
			diff := math.Abs(dA - dB)
			if diff > bestDiff {
				bestDiff, bestI, bestToA = diff, i, dA < dB
			}
		}
		n := remaining[bestI]
		remaining[bestI] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		if bestToA {
			a = append(a, n)
			ba = ba.Union(n.bounds)
		} else {
			b = append(b, n)
			bb = bb.Union(n.bounds)
		}
	}
	return a, b
}

// pickSeeds returns the pair (i, j) maximizing the waste function.
func pickSeeds(n int, waste func(i, j int) float64) (int, int) {
	bestI, bestJ, bestW := 0, 1, math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w := waste(i, j); w > bestW {
				bestI, bestJ, bestW = i, j, w
			}
		}
	}
	return bestI, bestJ
}

// Delete implements Index. Underfull nodes are condensed: their remaining
// entries are reinserted, per Guttman's CondenseTree.
func (t *RTree) Delete(id uint64, p geo.Point) bool {
	leaf, path := t.findLeaf(t.root, nil, id, p)
	if leaf == nil {
		return false
	}
	for i, it := range leaf.items {
		if it.ID == id && it.P == p {
			last := len(leaf.items) - 1
			leaf.items[i] = leaf.items[last]
			leaf.items = leaf.items[:last]
			break
		}
	}
	t.n--
	t.condense(leaf, path)
	return true
}

func (t *RTree) findLeaf(n *rnode, path []*rnode, id uint64, p geo.Point) (*rnode, []*rnode) {
	if !n.bounds.Contains(p) {
		return nil, nil
	}
	if n.leaf {
		for _, it := range n.items {
			if it.ID == id && it.P == p {
				return n, path
			}
		}
		return nil, nil
	}
	for _, c := range n.children {
		if leaf, lp := t.findLeaf(c, append(path, n), id, p); leaf != nil {
			return leaf, lp
		}
	}
	return nil, nil
}

func (t *RTree) condense(n *rnode, path []*rnode) {
	var orphanItems []Item
	var orphanNodes []*rnode
	for level := len(path); level >= 0; level-- {
		var parent *rnode
		if level > 0 {
			parent = path[level-1]
		}
		under := false
		if n.leaf {
			under = len(n.items) < t.minE
		} else {
			under = len(n.children) < t.minE
		}
		if parent != nil && under {
			// Remove n from parent and orphan its entries.
			for i, c := range parent.children {
				if c == n {
					last := len(parent.children) - 1
					parent.children[i] = parent.children[last]
					parent.children = parent.children[:last]
					break
				}
			}
			if n.leaf {
				orphanItems = append(orphanItems, n.items...)
			} else {
				orphanNodes = append(orphanNodes, n.children...)
			}
		} else {
			// Tighten bounds.
			if n.leaf {
				n.bounds = itemsBounds(n.items)
			} else {
				n.bounds = nodesBounds(n.children)
			}
		}
		n = parent
		if n == nil {
			break
		}
	}
	// Shrink the root if it has a single child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.height--
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &rnode{leaf: true, bounds: geo.EmptyRect()}
		t.height = 1
	}
	// Reinsert orphans. Subtree orphans are walked down to their items;
	// point data makes full-subtree reinsertion cheap and simple.
	for _, it := range orphanItems {
		t.reinsertItem(it)
	}
	for _, on := range orphanNodes {
		collectItems(on, func(it Item) { t.reinsertItem(it) })
	}
}

func (t *RTree) reinsertItem(it Item) {
	leaf, path := t.chooseLeaf(it.P)
	leaf.items = append(leaf.items, it)
	leaf.bounds = leaf.bounds.UnionPoint(it.P)
	for _, a := range path {
		a.bounds = a.bounds.UnionPoint(it.P)
	}
	if len(leaf.items) > t.maxE {
		t.splitUp(leaf, path)
	}
}

func collectItems(n *rnode, fn func(Item)) {
	if n.leaf {
		for _, it := range n.items {
			fn(it)
		}
		return
	}
	for _, c := range n.children {
		collectItems(c, fn)
	}
}

// Update implements Index.
func (t *RTree) Update(id uint64, old, new geo.Point) bool {
	if !t.Delete(id, old) {
		return false
	}
	t.Insert(id, new)
	return true
}

// Range implements Index.
func (t *RTree) Range(r geo.Rect, fn func(Item) bool) {
	if r.IsEmpty() {
		return
	}
	t.rangeNode(t.root, r, fn)
}

func (t *RTree) rangeNode(n *rnode, r geo.Rect, fn func(Item) bool) bool {
	if !n.bounds.Intersects(r) {
		return true
	}
	if n.leaf {
		for _, it := range n.items {
			if r.Contains(it.P) {
				if !fn(it) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !t.rangeNode(c, r, fn) {
			return false
		}
	}
	return true
}

// KNN implements Index with best-first MINDIST search.
func (t *RTree) KNN(q geo.Point, k int) []Neighbor {
	acc := newKNNAcc(k)
	if k <= 0 || t.n == 0 {
		return acc.results()
	}
	pq := &rnodePQ{}
	heap.Push(pq, rnodeEntry{node: t.root, dist2: t.root.bounds.Dist2To(q)})
	for pq.Len() > 0 {
		e := heap.Pop(pq).(rnodeEntry)
		if acc.full() && e.dist2 > acc.worstDist2() {
			break
		}
		if e.node.leaf {
			for _, it := range e.node.items {
				acc.offer(Neighbor{Item: it, Dist2: q.Dist2(it.P)})
			}
			continue
		}
		for _, c := range e.node.children {
			d := c.bounds.Dist2To(q)
			if !acc.full() || d <= acc.worstDist2() {
				heap.Push(pq, rnodeEntry{node: c, dist2: d})
			}
		}
	}
	return acc.results()
}

// Len implements Index.
func (t *RTree) Len() int { return t.n }

// Height returns the tree height (1 for a lone leaf root).
func (t *RTree) Height() int { return t.height }

type rnodeEntry struct {
	node  *rnode
	dist2 float64
}

type rnodePQ []rnodeEntry

func (p rnodePQ) Len() int            { return len(p) }
func (p rnodePQ) Less(i, j int) bool  { return p[i].dist2 < p[j].dist2 }
func (p rnodePQ) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *rnodePQ) Push(x interface{}) { *p = append(*p, x.(rnodeEntry)) }
func (p *rnodePQ) Pop() interface{} {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}
