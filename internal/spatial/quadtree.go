package spatial

import (
	"container/heap"

	"stcam/internal/geo"
)

// Quadtree is a point-region quadtree over a fixed world rectangle: leaves
// hold up to a bucket capacity of items and split into four quadrants when
// they overflow (until a maximum depth, after which leaves grow unbounded).
//
// Points outside the world rectangle are legal: they are kept in a flat
// overflow list that every query scans. This keeps tree pruning sound (node
// bounds really do bound their contents) while never losing data when the
// world estimate was too small. Workloads are expected to keep out-of-world
// points rare.
type Quadtree struct {
	root    *qnode
	outside []Item
	bucket  int
	maxD    int
	n       int
}

type qnode struct {
	bounds   geo.Rect
	items    []Item
	children *[4]qnode
	depth    int
}

const (
	defaultQuadBucket = 16
	defaultQuadDepth  = 20
)

var _ Index = (*Quadtree)(nil)

// NewQuadtree returns a quadtree covering world. Bucket and maxDepth of 0
// select the defaults (16, 20).
func NewQuadtree(world geo.Rect, bucket, maxDepth int) *Quadtree {
	if world.IsEmpty() {
		panic("spatial: quadtree world must be non-empty")
	}
	if bucket <= 0 {
		bucket = defaultQuadBucket
	}
	if maxDepth <= 0 {
		maxDepth = defaultQuadDepth
	}
	return &Quadtree{
		root:   &qnode{bounds: world},
		bucket: bucket,
		maxD:   maxDepth,
	}
}

// Insert implements Index.
func (q *Quadtree) Insert(id uint64, p geo.Point) {
	it := Item{ID: id, P: p}
	if !q.root.bounds.Contains(p) {
		q.outside = append(q.outside, it)
		q.n++
		return
	}
	q.insert(q.root, it)
	q.n++
}

func (q *Quadtree) insert(n *qnode, it Item) {
	for n.children != nil {
		n = n.child(it.P)
	}
	n.items = append(n.items, it)
	if len(n.items) > q.bucket && n.depth < q.maxD {
		q.split(n)
	}
}

// child returns the quadrant of n that p falls in. The quadrant bit layout
// matches Rect.Quadrants (SW, SE, NW, NE).
func (n *qnode) child(p geo.Point) *qnode {
	c := n.bounds.Center()
	i := 0
	if p.X >= c.X {
		i |= 1
	}
	if p.Y >= c.Y {
		i |= 2
	}
	return &n.children[i]
}

func (q *Quadtree) split(n *qnode) {
	quads := n.bounds.Quadrants()
	n.children = &[4]qnode{}
	for i := range n.children {
		n.children[i] = qnode{bounds: quads[i], depth: n.depth + 1}
	}
	items := n.items
	n.items = nil
	for _, it := range items {
		c := n.child(it.P)
		c.items = append(c.items, it)
	}
	// A degenerate distribution can land everything in one child; keep
	// splitting so the bucket invariant holds (bounded by maxD).
	for i := range n.children {
		c := &n.children[i]
		if len(c.items) > q.bucket && c.depth < q.maxD {
			q.split(c)
		}
	}
}

// Delete implements Index.
func (q *Quadtree) Delete(id uint64, p geo.Point) bool {
	if !q.root.bounds.Contains(p) {
		for i, it := range q.outside {
			if it.ID == id && it.P == p {
				last := len(q.outside) - 1
				q.outside[i] = q.outside[last]
				q.outside = q.outside[:last]
				q.n--
				return true
			}
		}
		return false
	}
	n := q.root
	for n.children != nil {
		n = n.child(p)
	}
	for i, it := range n.items {
		if it.ID == id && it.P == p {
			last := len(n.items) - 1
			n.items[i] = n.items[last]
			n.items = n.items[:last]
			q.n--
			return true
		}
	}
	return false
}

// Update implements Index.
func (q *Quadtree) Update(id uint64, old, new geo.Point) bool {
	if !q.Delete(id, old) {
		return false
	}
	q.Insert(id, new)
	return true
}

// Range implements Index.
func (q *Quadtree) Range(r geo.Rect, fn func(Item) bool) {
	if r.IsEmpty() {
		return
	}
	for _, it := range q.outside {
		if r.Contains(it.P) {
			if !fn(it) {
				return
			}
		}
	}
	q.rangeNode(q.root, r, fn)
}

func (q *Quadtree) rangeNode(n *qnode, r geo.Rect, fn func(Item) bool) bool {
	if !n.bounds.Intersects(r) {
		return true
	}
	if n.children == nil {
		for _, it := range n.items {
			if r.Contains(it.P) {
				if !fn(it) {
					return false
				}
			}
		}
		return true
	}
	for i := range n.children {
		if !q.rangeNode(&n.children[i], r, fn) {
			return false
		}
	}
	return true
}

// KNN implements Index with best-first search over nodes ordered by MINDIST.
func (q *Quadtree) KNN(qp geo.Point, k int) []Neighbor {
	acc := newKNNAcc(k)
	if k <= 0 || q.n == 0 {
		return acc.results()
	}
	for _, it := range q.outside {
		acc.offer(Neighbor{Item: it, Dist2: qp.Dist2(it.P)})
	}
	pq := &nodePQ{}
	heap.Push(pq, nodeEntry{node: q.root, dist2: q.root.bounds.Dist2To(qp)})
	for pq.Len() > 0 {
		e := heap.Pop(pq).(nodeEntry)
		if acc.full() && e.dist2 > acc.worstDist2() {
			break
		}
		n := e.node
		if n.children == nil {
			for _, it := range n.items {
				acc.offer(Neighbor{Item: it, Dist2: qp.Dist2(it.P)})
			}
			continue
		}
		for i := range n.children {
			c := &n.children[i]
			d := c.bounds.Dist2To(qp)
			if !acc.full() || d <= acc.worstDist2() {
				heap.Push(pq, nodeEntry{node: c, dist2: d})
			}
		}
	}
	return acc.results()
}

// Len implements Index.
func (q *Quadtree) Len() int { return q.n }

// Depth returns the maximum depth of any leaf, a diagnostic for skew.
func (q *Quadtree) Depth() int {
	var walk func(n *qnode) int
	walk = func(n *qnode) int {
		if n.children == nil {
			return n.depth
		}
		max := n.depth
		for i := range n.children {
			if d := walk(&n.children[i]); d > max {
				max = d
			}
		}
		return max
	}
	return walk(q.root)
}

// nodeEntry and nodePQ implement the best-first frontier.
type nodeEntry struct {
	node  *qnode
	dist2 float64
}

type nodePQ []nodeEntry

func (p nodePQ) Len() int            { return len(p) }
func (p nodePQ) Less(i, j int) bool  { return p[i].dist2 < p[j].dist2 }
func (p nodePQ) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *nodePQ) Push(x interface{}) { *p = append(*p, x.(nodeEntry)) }
func (p *nodePQ) Pop() interface{} {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}
