package spatial

import (
	"math"

	"stcam/internal/geo"
)

// Grid is a uniform grid index: the plane is divided into square cells of a
// fixed size, each holding a small slice of items. It has O(1) insert/delete
// and excellent range performance when the cell size matches the query size,
// but kNN degrades when data is sparse (ring expansion must scan far).
//
// The grid is unbounded: cells are materialized lazily in a map keyed by
// integer cell coordinates, so the index works for any world extent.
type Grid struct {
	cellSize float64
	cells    map[cellKey][]Item
	n        int
}

type cellKey struct{ cx, cy int32 }

var _ Index = (*Grid)(nil)

// NewGrid returns a grid index with the given cell size in meters. A
// non-positive size panics: it is a construction-time programming error, not
// a runtime condition.
func NewGrid(cellSize float64) *Grid {
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		panic("spatial: grid cell size must be positive and finite")
	}
	return &Grid{cellSize: cellSize, cells: make(map[cellKey][]Item)}
}

// CellSize returns the configured cell size.
func (g *Grid) CellSize() float64 { return g.cellSize }

func (g *Grid) key(p geo.Point) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / g.cellSize)),
		cy: int32(math.Floor(p.Y / g.cellSize)),
	}
}

// Insert implements Index.
func (g *Grid) Insert(id uint64, p geo.Point) {
	k := g.key(p)
	g.cells[k] = append(g.cells[k], Item{ID: id, P: p})
	g.n++
}

// Delete implements Index.
func (g *Grid) Delete(id uint64, p geo.Point) bool {
	k := g.key(p)
	cell := g.cells[k]
	for i, it := range cell {
		if it.ID == id && it.P == p {
			last := len(cell) - 1
			cell[i] = cell[last]
			cell = cell[:last]
			if len(cell) == 0 {
				delete(g.cells, k)
			} else {
				g.cells[k] = cell
			}
			g.n--
			return true
		}
	}
	return false
}

// Update implements Index.
func (g *Grid) Update(id uint64, old, new geo.Point) bool {
	if !g.Delete(id, old) {
		return false
	}
	g.Insert(id, new)
	return true
}

// Range implements Index.
func (g *Grid) Range(r geo.Rect, fn func(Item) bool) {
	if r.IsEmpty() || g.n == 0 {
		return
	}
	lo, hi := g.key(r.Min), g.key(r.Max)
	// When the query covers more cells than exist, iterating the map is
	// cheaper than walking empty cell coordinates.
	nx, ny := int64(hi.cx)-int64(lo.cx)+1, int64(hi.cy)-int64(lo.cy)+1
	if nx*ny > int64(len(g.cells))*2 {
		for _, cell := range g.cells {
			for _, it := range cell {
				if r.Contains(it.P) && !fn(it) {
					return
				}
			}
		}
		return
	}
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			for _, it := range g.cells[cellKey{cx, cy}] {
				if r.Contains(it.P) && !fn(it) {
					return
				}
			}
		}
	}
}

// KNN implements Index using expanding ring search: examine the cells in
// rings of increasing radius around the query cell, stopping once the k-th
// best distance is smaller than the closest possible point in the next ring.
func (g *Grid) KNN(q geo.Point, k int) []Neighbor {
	acc := newKNNAcc(k)
	if k <= 0 || g.n == 0 {
		return acc.results()
	}
	center := g.key(q)
	// Upper bound on ring radius: enough to cover every existing cell.
	maxRing := 1
	for key := range g.cells {
		dx := int(key.cx) - int(center.cx)
		if dx < 0 {
			dx = -dx
		}
		dy := int(key.cy) - int(center.cy)
		if dy < 0 {
			dy = -dy
		}
		if dx > maxRing {
			maxRing = dx
		}
		if dy > maxRing {
			maxRing = dy
		}
	}
	scan := func(key cellKey) {
		for _, it := range g.cells[key] {
			acc.offer(Neighbor{Item: it, Dist2: q.Dist2(it.P)})
		}
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Prune: the nearest possible point in ring r is (r-1) cells away.
		if ring > 0 && acc.full() {
			minDist := float64(ring-1) * g.cellSize
			if minDist > 0 && minDist*minDist > acc.worstDist2() {
				break
			}
		}
		if ring == 0 {
			scan(center)
			continue
		}
		lo := int(center.cx) - ring
		hi := int(center.cx) + ring
		for cx := lo; cx <= hi; cx++ {
			scan(cellKey{int32(cx), center.cy - int32(ring)})
			scan(cellKey{int32(cx), center.cy + int32(ring)})
		}
		for cy := int(center.cy) - ring + 1; cy <= int(center.cy)+ring-1; cy++ {
			scan(cellKey{center.cx - int32(ring), int32(cy)})
			scan(cellKey{center.cx + int32(ring), int32(cy)})
		}
	}
	return acc.results()
}

// Len implements Index.
func (g *Grid) Len() int { return g.n }

// CellCount returns the number of materialized (non-empty) cells.
func (g *Grid) CellCount() int { return len(g.cells) }
