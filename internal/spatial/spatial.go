// Package spatial provides in-memory spatial indexes over identified points:
// a uniform grid, a PR quadtree, and an R-tree (quadratic split with STR bulk
// loading). All three implement the Index interface and return identical
// results for range and kNN queries; they differ only in performance
// characteristics, which experiment R6 measures.
package spatial

import (
	"math"
	"sort"

	"stcam/internal/geo"
)

// Item is an identified point stored in an index.
type Item struct {
	ID uint64
	P  geo.Point
}

// Neighbor is a kNN result: an item plus its squared distance to the query.
type Neighbor struct {
	Item
	Dist2 float64
}

// Index is the common contract for the point indexes in this package.
// Implementations are NOT safe for concurrent mutation; the framework
// serializes writes per worker and takes read locks around queries.
type Index interface {
	// Insert adds an item. Multiple items may share a position; IDs need not
	// be unique (the framework uses unique observation IDs).
	Insert(id uint64, p geo.Point)
	// Delete removes the item with the given id at position p, returning
	// whether it was found. The position must match the inserted position.
	Delete(id uint64, p geo.Point) bool
	// Update moves an item from old to new.
	Update(id uint64, old, new geo.Point) bool
	// Range calls fn for every item inside r (boundary inclusive) until fn
	// returns false.
	Range(r geo.Rect, fn func(Item) bool)
	// KNN returns the k items nearest to q, ordered by ascending distance,
	// ties broken by ID for determinism. Fewer than k are returned when the
	// index holds fewer items.
	KNN(q geo.Point, k int) []Neighbor
	// Len returns the number of stored items.
	Len() int
}

// Collect returns all items in r as a slice, sorted by ID for deterministic
// comparison.
func Collect(ix Index, r geo.Rect) []Item {
	var out []Item
	ix.Range(r, func(it Item) bool {
		out = append(out, it)
		return true
	})
	SortItems(out)
	return out
}

// KNNWithin is a bounded kNN over any Index: the k items nearest to q whose
// squared distance does not exceed maxDist2 (inclusive; maxDist2 <= 0 means
// unbounded). It ranges only the bounding square of the search radius, so a
// tight pushed-down bound touches a fraction of the index regardless of the
// implementation's own kNN strategy.
func KNNWithin(ix Index, q geo.Point, k int, maxDist2 float64) []Neighbor {
	if maxDist2 <= 0 {
		return ix.KNN(q, k)
	}
	if k <= 0 {
		return nil
	}
	r := math.Sqrt(maxDist2)
	acc := newKNNAcc(k)
	ix.Range(geo.RectOf(q.X-r, q.Y-r, q.X+r, q.Y+r), func(it Item) bool {
		d2 := q.Dist2(it.P)
		if d2 <= maxDist2 {
			acc.offer(Neighbor{Item: it, Dist2: d2})
		}
		return true
	})
	out := acc.heap
	sortNeighbors(out)
	return out
}

// SortItems orders items by ID, then position, giving a canonical order for
// result comparison across index implementations.
func SortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].ID != items[j].ID {
			return items[i].ID < items[j].ID
		}
		if items[i].P.X != items[j].P.X {
			return items[i].P.X < items[j].P.X
		}
		return items[i].P.Y < items[j].P.Y
	})
}

// sortNeighbors orders by ascending distance, ties broken by ID.
func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist2 != ns[j].Dist2 {
			return ns[i].Dist2 < ns[j].Dist2
		}
		return ns[i].ID < ns[j].ID
	})
}

// knnAcc accumulates the best k neighbors seen so far using a bounded
// max-heap keyed on (Dist2, ID).
type knnAcc struct {
	k    int
	heap []Neighbor // max-heap on (Dist2, ID)
}

func newKNNAcc(k int) *knnAcc { return &knnAcc{k: k} }

func neighborLess(a, b Neighbor) bool {
	if a.Dist2 != b.Dist2 {
		return a.Dist2 < b.Dist2
	}
	return a.ID < b.ID
}

// worst returns the current pruning bound: the distance beyond which a
// candidate cannot enter the result. +inf semantics are encoded by full=false.
func (a *knnAcc) full() bool { return len(a.heap) == a.k }

func (a *knnAcc) worstDist2() float64 { return a.heap[0].Dist2 }

// offer considers a candidate.
func (a *knnAcc) offer(n Neighbor) {
	if a.k <= 0 {
		return
	}
	if len(a.heap) < a.k {
		a.heap = append(a.heap, n)
		a.up(len(a.heap) - 1)
		return
	}
	if neighborLess(n, a.heap[0]) {
		a.heap[0] = n
		a.down(0)
	}
}

func (a *knnAcc) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !neighborLess(a.heap[parent], a.heap[i]) {
			break
		}
		a.heap[parent], a.heap[i] = a.heap[i], a.heap[parent]
		i = parent
	}
}

func (a *knnAcc) down(i int) {
	n := len(a.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && neighborLess(a.heap[largest], a.heap[l]) {
			largest = l
		}
		if r < n && neighborLess(a.heap[largest], a.heap[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		a.heap[i], a.heap[largest] = a.heap[largest], a.heap[i]
		i = largest
	}
}

// results returns the accumulated neighbors in ascending order.
func (a *knnAcc) results() []Neighbor {
	out := make([]Neighbor, len(a.heap))
	copy(out, a.heap)
	sortNeighbors(out)
	return out
}
