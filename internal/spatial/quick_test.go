package spatial

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stcam/internal/geo"
)

// Property: for every index, any random batch of inserts followed by a range
// query over a random rectangle returns exactly the brute-force answer.
func TestQuickRangeMatchesBrute(t *testing.T) {
	world := geo.RectOf(0, 0, 1000, 1000)
	mk := map[string]func() Index{
		"grid":     func() Index { return NewGrid(37) },
		"quadtree": func() Index { return NewQuadtree(world, 4, 0) },
		"rtree":    func() Index { return NewRTree(8) },
	}
	for name, factory := range mk {
		factory := factory
		t.Run(name, func(t *testing.T) {
			f := func(seed int64, n uint8, qx, qy, qr float64) bool {
				if math.IsNaN(qx) || math.IsNaN(qy) || math.IsNaN(qr) {
					return true
				}
				rng := rand.New(rand.NewSource(seed))
				ix := factory()
				oracle := NewBruteForce()
				for i := 0; i < int(n); i++ {
					p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
					ix.Insert(uint64(i+1), p)
					oracle.Insert(uint64(i+1), p)
				}
				q := geo.RectAround(
					geo.Pt(math.Mod(math.Abs(qx), 1000), math.Mod(math.Abs(qy), 1000)),
					math.Mod(math.Abs(qr), 300),
				)
				got := Collect(ix, q)
				want := Collect(oracle, q)
				return itemsEqual(got, want)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: kNN results are sorted ascending, have no duplicate IDs, and the
// k-th distance lower-bounds everything excluded.
func TestQuickKNNInvariants(t *testing.T) {
	world := geo.RectOf(0, 0, 1000, 1000)
	f := func(seed int64, n uint8, k uint8, qx, qy float64) bool {
		if math.IsNaN(qx) || math.IsNaN(qy) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		ix := NewQuadtree(world, 4, 0)
		type rec struct {
			id uint64
			p  geo.Point
		}
		var all []rec
		for i := 0; i < int(n); i++ {
			p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
			ix.Insert(uint64(i+1), p)
			all = append(all, rec{uint64(i + 1), p})
		}
		q := geo.Pt(math.Mod(math.Abs(qx), 1200)-100, math.Mod(math.Abs(qy), 1200)-100)
		kk := int(k%16) + 1
		got := ix.KNN(q, kk)
		if len(got) > kk || len(got) > len(all) {
			return false
		}
		seen := map[uint64]bool{}
		for i, nb := range got {
			if seen[nb.ID] {
				return false
			}
			seen[nb.ID] = true
			if i > 0 && got[i].Dist2 < got[i-1].Dist2 {
				return false
			}
		}
		if len(got) == kk {
			// Everything not returned is at least as far as the k-th.
			worst := got[len(got)-1].Dist2
			for _, r := range all {
				if !seen[r.id] && q.Dist2(r.p) < worst {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: delete-of-inserted always succeeds and Len tracks exactly.
func TestQuickInsertDeleteLen(t *testing.T) {
	world := geo.RectOf(0, 0, 100, 100)
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, ix := range []Index{NewGrid(9), NewQuadtree(world, 2, 8), NewRTree(4)} {
			pts := make([]geo.Point, int(n))
			for i := range pts {
				pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
				ix.Insert(uint64(i+1), pts[i])
			}
			if ix.Len() != len(pts) {
				return false
			}
			// Delete in random order.
			order := rng.Perm(len(pts))
			for j, oi := range order {
				if !ix.Delete(uint64(oi+1), pts[oi]) {
					return false
				}
				if ix.Len() != len(pts)-j-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
