package clock

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestWallNowAdvances(t *testing.T) {
	a := Wall.Now()
	if err := Wall.Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if b := Wall.Now(); !b.After(a) {
		t.Fatalf("wall clock did not advance: %v -> %v", a, b)
	}
}

func TestWallSleepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Wall.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("cancelled Sleep = %v, want context.Canceled", err)
	}
}

func TestFakeAdvanceWakesInOrder(t *testing.T) {
	f := NewFake()
	start := f.Now()

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			if err := f.Sleep(context.Background(), d); err != nil {
				t.Errorf("Sleep(%d): %v", i, err)
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, d)
	}
	for f.Sleepers() != 3 {
		time.Sleep(100 * time.Microsecond)
	}
	if got := f.Now(); !got.Equal(start) {
		t.Fatalf("Now moved without Advance: %v", got)
	}
	f.Advance(50 * time.Millisecond)
	wg.Wait()
	if want := start.Add(50 * time.Millisecond); !f.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", f.Now(), want)
	}
	if len(order) != 3 {
		t.Fatalf("order = %v, want 3 wakes", order)
	}
}

func TestFakePartialAdvance(t *testing.T) {
	f := NewFake()
	done := make(chan error, 1)
	go func() { done <- f.Sleep(context.Background(), 10*time.Second) }()
	for f.Sleepers() != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	f.Advance(5 * time.Second)
	select {
	case err := <-done:
		t.Fatalf("woke early: %v", err)
	case <-time.After(5 * time.Millisecond):
	}
	f.Advance(5 * time.Second)
	if err := <-done; err != nil {
		t.Fatalf("Sleep: %v", err)
	}
}

func TestFakeSleepCancelRemovesWaiter(t *testing.T) {
	f := NewFake()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Sleep(ctx, time.Hour) }()
	for f.Sleepers() != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
	if n := f.Sleepers(); n != 0 {
		t.Fatalf("Sleepers = %d after cancel, want 0", n)
	}
}

func TestFakeSet(t *testing.T) {
	f := NewFake()
	target := f.Now().Add(time.Minute)
	f.Set(target)
	if !f.Now().Equal(target) {
		t.Fatalf("Set: Now = %v, want %v", f.Now(), target)
	}
	f.Set(target.Add(-time.Hour)) // backwards Set is a no-op
	if !f.Now().Equal(target) {
		t.Fatalf("backwards Set moved the clock: %v", f.Now())
	}
}

func TestFakeZeroAndNegativeSleep(t *testing.T) {
	f := NewFake()
	if err := f.Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero Sleep: %v", err)
	}
	if err := f.Sleep(context.Background(), -time.Second); err != nil {
		t.Fatalf("negative Sleep: %v", err)
	}
}
