// Package clock is the injected time seam for the framework's liveness logic.
//
// Protocol logic (track loss, prime expiry, continuous windows) runs on
// observation time and never consults this package. Everything that does need
// wall-clock reads — heartbeat staleness, lease expiry, retry backoff,
// latency histograms — goes through a Clock so soaks and fault schedules can
// run against a deterministic, manually advanced source. The stcamlint
// clockinject analyzer forbids raw time.Now/time.Sleep in internal/core,
// internal/cluster, and internal/stindex; this package is the one allowlisted
// place the real wall clock is read.
package clock

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Clock supplies the current time and context-aware sleeps.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case. d <= 0 returns immediately.
	Sleep(ctx context.Context, d time.Duration) error
}

// Wall is the real wall clock.
var Wall Clock = wall{}

type wall struct{}

func (wall) Now() time.Time { return time.Now() }

func (wall) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Fake is a manually advanced clock for deterministic tests and soaks. The
// zero value starts at the zero time; NewFake picks an arbitrary fixed epoch.
// Sleep blocks until Advance moves the clock past the wake deadline, so a
// test drives every timer explicitly and two runs with the same schedule are
// bit-identical.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	deadline time.Time
	ch       chan struct{}
}

// NewFake returns a Fake starting at a fixed, arbitrary epoch.
func NewFake() *Fake {
	return &Fake{now: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now returns the fake's current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Sleep blocks until the fake clock advances past now+d or ctx is done.
func (f *Fake) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	f.mu.Lock()
	w := &fakeWaiter{deadline: f.now.Add(d), ch: make(chan struct{})}
	f.waiters = append(f.waiters, w)
	f.mu.Unlock()
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		f.mu.Lock()
		for i, o := range f.waiters {
			if o == w {
				f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
				break
			}
		}
		f.mu.Unlock()
		return ctx.Err()
	}
}

// Advance moves the clock forward by d and wakes every sleeper whose deadline
// has passed, in deadline order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	var due []*fakeWaiter
	rest := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.deadline.After(f.now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	f.waiters = rest
	f.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].deadline.Before(due[j].deadline) })
	for _, w := range due {
		close(w.ch)
	}
}

// Set jumps the clock to t (which must not move backwards) and wakes due
// sleepers.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	d := t.Sub(f.now)
	f.mu.Unlock()
	if d > 0 {
		f.Advance(d)
	}
}

// Sleepers reports how many Sleep calls are currently blocked, so tests can
// wait for a goroutine to park before advancing.
func (f *Fake) Sleepers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}

var _ Clock = (*Fake)(nil)
