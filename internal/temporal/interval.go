// Package temporal provides the time-axis data structures of the framework:
// an interval tree for stabbing and overlap queries over time intervals, and
// a bucketed time-series store with retention-window eviction.
package temporal

import (
	"math/rand"
	"time"
)

// Interval is a closed time interval [Start, End] tagged with a value ID.
// Zero-length intervals (Start == End) are legal and behave as instants.
type Interval struct {
	Start, End time.Time
	ID         uint64
}

// Overlaps reports whether two closed intervals share at least one instant.
func (iv Interval) Overlaps(other Interval) bool {
	return !iv.Start.After(other.End) && !other.Start.After(iv.End)
}

// Contains reports whether t lies within the closed interval.
func (iv Interval) Contains(t time.Time) bool {
	return !t.Before(iv.Start) && !t.After(iv.End)
}

// Duration returns End - Start.
func (iv Interval) Duration() time.Duration { return iv.End.Sub(iv.Start) }

// IntervalTree is a treap keyed on interval start, augmented with the maximum
// end time per subtree, giving O(log n + m) stabbing and overlap queries.
// It is not safe for concurrent use.
type IntervalTree struct {
	root *itNode
	rng  *rand.Rand
	n    int
}

type itNode struct {
	iv          Interval
	prio        int64
	maxEnd      time.Time
	left, right *itNode
}

// NewIntervalTree returns an empty tree. The seed determines treap priorities
// only (structure, not contents); any fixed seed gives deterministic tests.
func NewIntervalTree(seed int64) *IntervalTree {
	return &IntervalTree{rng: rand.New(rand.NewSource(seed))}
}

// Len returns the number of stored intervals.
func (t *IntervalTree) Len() int { return t.n }

// Insert adds an interval. Intervals with End before Start are normalized by
// swapping. Duplicates (same bounds and ID) are stored independently.
func (t *IntervalTree) Insert(iv Interval) {
	if iv.End.Before(iv.Start) {
		iv.Start, iv.End = iv.End, iv.Start
	}
	n := &itNode{iv: iv, prio: t.rng.Int63(), maxEnd: iv.End}
	t.root = insertNode(t.root, n)
	t.n++
}

func ivLess(a, b Interval) bool {
	if !a.Start.Equal(b.Start) {
		return a.Start.Before(b.Start)
	}
	if !a.End.Equal(b.End) {
		return a.End.Before(b.End)
	}
	return a.ID < b.ID
}

func insertNode(root, n *itNode) *itNode {
	if root == nil {
		return n
	}
	if ivLess(n.iv, root.iv) {
		root.left = insertNode(root.left, n)
		if root.left.prio > root.prio {
			root = rotateRight(root)
		}
	} else {
		root.right = insertNode(root.right, n)
		if root.right.prio > root.prio {
			root = rotateLeft(root)
		}
	}
	root.update()
	return root
}

func (n *itNode) update() {
	n.maxEnd = n.iv.End
	if n.left != nil && n.left.maxEnd.After(n.maxEnd) {
		n.maxEnd = n.left.maxEnd
	}
	if n.right != nil && n.right.maxEnd.After(n.maxEnd) {
		n.maxEnd = n.right.maxEnd
	}
}

func rotateRight(n *itNode) *itNode {
	l := n.left
	n.left = l.right
	l.right = n
	n.update()
	l.update()
	return l
}

func rotateLeft(n *itNode) *itNode {
	r := n.right
	n.right = r.left
	r.left = n
	n.update()
	r.update()
	return r
}

// Delete removes one interval equal to iv (same bounds and ID), returning
// whether it was found.
func (t *IntervalTree) Delete(iv Interval) bool {
	if iv.End.Before(iv.Start) {
		iv.Start, iv.End = iv.End, iv.Start
	}
	var deleted bool
	t.root, deleted = deleteNode(t.root, iv)
	if deleted {
		t.n--
	}
	return deleted
}

func deleteNode(root *itNode, iv Interval) (*itNode, bool) {
	if root == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case ivLess(iv, root.iv):
		root.left, deleted = deleteNode(root.left, iv)
	case ivLess(root.iv, iv):
		root.right, deleted = deleteNode(root.right, iv)
	default:
		// Found: rotate down until a leaf, then drop.
		return dropNode(root), true
	}
	if deleted {
		root.update()
	}
	return root, deleted
}

func dropNode(n *itNode) *itNode {
	// With one side empty, promote the other side wholesale.
	if n.left == nil {
		return n.right
	}
	if n.right == nil {
		return n.left
	}
	// Otherwise rotate the higher-priority child up and recurse.
	if n.left.prio > n.right.prio {
		n = rotateRight(n)
		n.right = dropNode(n.right)
	} else {
		n = rotateLeft(n)
		n.left = dropNode(n.left)
	}
	n.update()
	return n
}

// Stab calls fn for every interval containing t until fn returns false.
func (t *IntervalTree) Stab(at time.Time, fn func(Interval) bool) {
	stab(t.root, at, fn)
}

func stab(n *itNode, at time.Time, fn func(Interval) bool) bool {
	if n == nil || at.After(n.maxEnd) {
		return true
	}
	if !stab(n.left, at, fn) {
		return false
	}
	if n.iv.Contains(at) {
		if !fn(n.iv) {
			return false
		}
	}
	if at.Before(n.iv.Start) {
		return true // right subtree starts even later
	}
	return stab(n.right, at, fn)
}

// Overlap calls fn for every interval overlapping [from, to] until fn returns
// false.
func (t *IntervalTree) Overlap(from, to time.Time, fn func(Interval) bool) {
	if to.Before(from) {
		from, to = to, from
	}
	q := Interval{Start: from, End: to}
	overlap(t.root, q, fn)
}

func overlap(n *itNode, q Interval, fn func(Interval) bool) bool {
	if n == nil || q.Start.After(n.maxEnd) {
		return true
	}
	if !overlap(n.left, q, fn) {
		return false
	}
	if n.iv.Overlaps(q) {
		if !fn(n.iv) {
			return false
		}
	}
	if q.End.Before(n.iv.Start) {
		return true
	}
	return overlap(n.right, q, fn)
}

// All returns every stored interval in start order.
func (t *IntervalTree) All() []Interval {
	out := make([]Interval, 0, t.n)
	var walk func(n *itNode)
	walk = func(n *itNode) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, n.iv)
		walk(n.right)
	}
	walk(t.root)
	return out
}
