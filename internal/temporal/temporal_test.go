package temporal

import (
	"math/rand"
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return t0.Add(d) }

func iv(start, end time.Duration, id uint64) Interval {
	return Interval{Start: at(start), End: at(end), ID: id}
}

func TestIntervalOverlapsContains(t *testing.T) {
	a := iv(0, 10*time.Second, 1)
	tests := []struct {
		name string
		b    Interval
		want bool
	}{
		{"inside", iv(2*time.Second, 5*time.Second, 2), true},
		{"covering", iv(-time.Second, 20*time.Second, 2), true},
		{"left-touch", iv(-5*time.Second, 0, 2), true},
		{"right-touch", iv(10*time.Second, 15*time.Second, 2), true},
		{"left-disjoint", iv(-5*time.Second, -time.Second, 2), false},
		{"right-disjoint", iv(11*time.Second, 15*time.Second, 2), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Overlaps(tt.b); got != tt.want {
				t.Errorf("Overlaps = %v, want %v", got, tt.want)
			}
			if got := tt.b.Overlaps(a); got != tt.want {
				t.Errorf("Overlaps (sym) = %v, want %v", got, tt.want)
			}
		})
	}
	if !a.Contains(at(0)) || !a.Contains(at(10*time.Second)) || !a.Contains(at(5*time.Second)) {
		t.Error("Contains should be boundary-inclusive")
	}
	if a.Contains(at(-time.Nanosecond)) || a.Contains(at(10*time.Second+time.Nanosecond)) {
		t.Error("Contains out of bounds")
	}
}

func TestIntervalTreeBasic(t *testing.T) {
	tr := NewIntervalTree(1)
	ivs := []Interval{
		iv(0, 10*time.Second, 1),
		iv(5*time.Second, 15*time.Second, 2),
		iv(20*time.Second, 30*time.Second, 3),
		iv(0, time.Minute, 4),
	}
	for _, v := range ivs {
		tr.Insert(v)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := map[uint64]bool{}
	tr.Stab(at(7*time.Second), func(v Interval) bool {
		got[v.ID] = true
		return true
	})
	want := map[uint64]bool{1: true, 2: true, 4: true}
	if len(got) != len(want) {
		t.Fatalf("Stab(7s) = %v, want %v", got, want)
	}
	for id := range want {
		if !got[id] {
			t.Errorf("Stab missing id %d", id)
		}
	}
	got = map[uint64]bool{}
	tr.Overlap(at(12*time.Second), at(25*time.Second), func(v Interval) bool {
		got[v.ID] = true
		return true
	})
	want = map[uint64]bool{2: true, 3: true, 4: true}
	if len(got) != len(want) {
		t.Fatalf("Overlap = %v, want %v", got, want)
	}
}

func TestIntervalTreeDelete(t *testing.T) {
	tr := NewIntervalTree(2)
	a := iv(0, 10*time.Second, 1)
	b := iv(0, 10*time.Second, 2) // same bounds, different ID
	tr.Insert(a)
	tr.Insert(b)
	if !tr.Delete(a) {
		t.Fatal("delete a failed")
	}
	if tr.Delete(a) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var ids []uint64
	tr.Stab(at(5*time.Second), func(v Interval) bool {
		ids = append(ids, v.ID)
		return true
	})
	if len(ids) != 1 || ids[0] != 2 {
		t.Errorf("after delete, stab = %v", ids)
	}
}

func TestIntervalTreeNormalizesReversed(t *testing.T) {
	tr := NewIntervalTree(3)
	tr.Insert(Interval{Start: at(10 * time.Second), End: at(0), ID: 7})
	found := false
	tr.Stab(at(5*time.Second), func(v Interval) bool {
		found = v.ID == 7
		return true
	})
	if !found {
		t.Error("reversed interval not normalized")
	}
	if !tr.Delete(Interval{Start: at(10 * time.Second), End: at(0), ID: 7}) {
		t.Error("delete with reversed bounds failed")
	}
}

func TestIntervalTreeEarlyStop(t *testing.T) {
	tr := NewIntervalTree(4)
	for i := uint64(0); i < 100; i++ {
		tr.Insert(iv(0, time.Hour, i))
	}
	count := 0
	tr.Stab(at(time.Minute), func(Interval) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("early stop visited %d", count)
	}
}

// TestIntervalTreeMatchesBrute cross-checks stab and overlap against a linear
// scan over random workloads, including deletions.
func TestIntervalTreeMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := NewIntervalTree(5)
	var live []Interval
	nextID := uint64(1)
	for step := 0; step < 2000; step++ {
		switch {
		case rng.Float64() < 0.5 || len(live) == 0:
			start := time.Duration(rng.Intn(3600)) * time.Second
			length := time.Duration(rng.Intn(600)) * time.Second
			v := iv(start, start+length, nextID)
			nextID++
			tr.Insert(v)
			live = append(live, v)
		case rng.Float64() < 0.3:
			i := rng.Intn(len(live))
			if !tr.Delete(live[i]) {
				t.Fatalf("step %d: delete failed", step)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		default:
			if rng.Intn(2) == 0 {
				q := at(time.Duration(rng.Intn(4000)) * time.Second)
				want := map[uint64]int{}
				for _, v := range live {
					if v.Contains(q) {
						want[v.ID]++
					}
				}
				got := map[uint64]int{}
				tr.Stab(q, func(v Interval) bool {
					got[v.ID]++
					return true
				})
				if len(got) != len(want) {
					t.Fatalf("step %d: stab size %d, want %d", step, len(got), len(want))
				}
				for id, c := range want {
					if got[id] != c {
						t.Fatalf("step %d: stab id %d count %d, want %d", step, id, got[id], c)
					}
				}
			} else {
				from := time.Duration(rng.Intn(4000)) * time.Second
				to := from + time.Duration(rng.Intn(900))*time.Second
				q := Interval{Start: at(from), End: at(to)}
				want := map[uint64]int{}
				for _, v := range live {
					if v.Overlaps(q) {
						want[v.ID]++
					}
				}
				got := map[uint64]int{}
				tr.Overlap(q.Start, q.End, func(v Interval) bool {
					got[v.ID]++
					return true
				})
				if len(got) != len(want) {
					t.Fatalf("step %d: overlap size %d, want %d", step, len(got), len(want))
				}
			}
		}
		if tr.Len() != len(live) {
			t.Fatalf("step %d: Len %d != %d", step, tr.Len(), len(live))
		}
	}
	// All() returns intervals sorted by start.
	all := tr.All()
	if len(all) != len(live) {
		t.Fatalf("All returned %d, want %d", len(all), len(live))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Start.Before(all[i-1].Start) {
			t.Fatal("All not sorted by start")
		}
	}
}

func TestBucketStoreBasic(t *testing.T) {
	s := NewBucketStore[int](time.Minute)
	if s.Len() != 0 || s.BucketCount() != 0 {
		t.Fatal("fresh store not empty")
	}
	s.Add(at(30*time.Second), 1)
	s.Add(at(90*time.Second), 2)
	s.Add(at(95*time.Second), 3)
	s.Add(at(10*time.Minute), 4)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.BucketCount() != 3 {
		t.Fatalf("BucketCount = %d, want 3", s.BucketCount())
	}
	got := s.WindowSlice(at(0), at(2*time.Minute))
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("WindowSlice = %v", got)
	}
	// Window boundaries are inclusive.
	got = s.WindowSlice(at(90*time.Second), at(95*time.Second))
	if len(got) != 2 {
		t.Errorf("inclusive window = %v", got)
	}
	// Inverted window yields nothing.
	if got := s.WindowSlice(at(time.Hour), at(0)); len(got) != 0 {
		t.Errorf("inverted window = %v", got)
	}
}

func TestBucketStoreEvict(t *testing.T) {
	s := NewBucketStore[int](time.Minute)
	for i := 0; i < 600; i++ {
		s.Add(at(time.Duration(i)*time.Second), i)
	}
	removed := s.EvictBefore(at(5 * time.Minute))
	if removed != 300 {
		t.Fatalf("EvictBefore removed %d, want 300", removed)
	}
	if s.Len() != 300 {
		t.Fatalf("Len = %d, want 300", s.Len())
	}
	if got := s.WindowSlice(at(0), at(4*time.Minute)); len(got) != 0 {
		t.Errorf("evicted window still returns %d values", len(got))
	}
	got := s.WindowSlice(at(5*time.Minute), at(20*time.Minute))
	if len(got) != 300 {
		t.Errorf("surviving window has %d values", len(got))
	}
	// Evict at a mid-bucket instant: only entries strictly before go.
	removed = s.EvictBefore(at(5*time.Minute + 30*time.Second))
	if removed != 30 {
		t.Errorf("mid-bucket evict removed %d, want 30", removed)
	}
	// Evicting everything resets the store.
	s.EvictBefore(at(time.Hour))
	if s.Len() != 0 {
		t.Errorf("Len after full evict = %d", s.Len())
	}
	s.Add(at(2*time.Hour), 99)
	if got := s.WindowSlice(at(0), at(3*time.Hour)); len(got) != 1 || got[0] != 99 {
		t.Errorf("store unusable after full evict: %v", got)
	}
}

func TestBucketStoreEarlyStop(t *testing.T) {
	s := NewBucketStore[int](time.Second)
	for i := 0; i < 100; i++ {
		s.Add(at(time.Duration(i)*time.Millisecond*10), i)
	}
	count := 0
	s.Window(at(0), at(time.Hour), func(time.Time, int) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestBucketStoreSpan(t *testing.T) {
	s := NewBucketStore[string](time.Minute)
	if _, _, ok := s.Span(); ok {
		t.Fatal("empty store has a span")
	}
	s.Add(at(90*time.Second), "x")
	start, end, ok := s.Span()
	if !ok {
		t.Fatal("span missing")
	}
	if !start.Equal(at(time.Minute)) || !end.Equal(at(2*time.Minute)) {
		t.Errorf("span = [%v, %v)", start, end)
	}
}

func TestBucketStorePreEpoch(t *testing.T) {
	s := NewBucketStore[int](time.Minute)
	old := time.Unix(-3601, 0) // before the Unix epoch
	s.Add(old, 1)
	s.Add(old.Add(30*time.Second), 2)
	got := s.WindowSlice(old.Add(-time.Minute), old.Add(time.Minute))
	if len(got) != 2 {
		t.Errorf("pre-epoch window = %v", got)
	}
}

func TestBucketStorePanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBucketStore(0) did not panic")
		}
	}()
	NewBucketStore[int](0)
}

// Property: Window(from,to) returns exactly the added values with timestamps
// inside the window, for random adds and random windows.
func TestPropBucketStoreWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewBucketStore[int](7 * time.Second)
	type rec struct {
		t time.Time
		v int
	}
	var recs []rec
	for i := 0; i < 1000; i++ {
		tm := at(time.Duration(rng.Intn(100000)) * time.Millisecond)
		s.Add(tm, i)
		recs = append(recs, rec{tm, i})
	}
	for q := 0; q < 200; q++ {
		from := at(time.Duration(rng.Intn(110000)) * time.Millisecond)
		to := from.Add(time.Duration(rng.Intn(20000)) * time.Millisecond)
		want := map[int]bool{}
		for _, r := range recs {
			if !r.t.Before(from) && !r.t.After(to) {
				want[r.v] = true
			}
		}
		got := map[int]bool{}
		s.Window(from, to, func(_ time.Time, v int) bool {
			got[v] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("window %v..%v: got %d, want %d", from, to, len(got), len(want))
		}
	}
}

// TestForEachBucket: the per-bucket walk must account for every stored value
// exactly once, with bucket starts aligned to the bucket width.
func TestForEachBucket(t *testing.T) {
	s := NewBucketStore[int](10 * time.Second)
	base := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		s.Add(base.Add(time.Duration(i)*3*time.Second), i)
	}
	total := 0
	buckets := 0
	s.ForEachBucket(func(start time.Time, n int) {
		if start.UnixNano()%int64(10*time.Second) != 0 {
			t.Fatalf("bucket start %v not aligned to width", start)
		}
		if n <= 0 {
			t.Fatalf("bucket %v reported %d values", start, n)
		}
		total += n
		buckets++
	})
	if total != s.Len() {
		t.Fatalf("buckets sum to %d values, store holds %d", total, s.Len())
	}
	if buckets != s.BucketCount() {
		t.Fatalf("visited %d buckets, store has %d", buckets, s.BucketCount())
	}
}
