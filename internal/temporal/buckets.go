package temporal

import (
	"sort"
	"time"
)

// BucketStore partitions a stream of timestamped values into fixed-width time
// buckets and supports window queries plus retention-based eviction. It is
// the time dimension of the framework's spatio-temporal index: each grid cell
// owns one BucketStore of observation references.
//
// The zero value is not usable; construct with NewBucketStore. Not safe for
// concurrent use.
type BucketStore[V any] struct {
	width   time.Duration
	buckets map[int64][]entry[V]
	n       int
	minB    int64 // lowest live bucket (valid when n > 0)
	maxB    int64 // highest live bucket (valid when n > 0)
}

type entry[V any] struct {
	t time.Time
	v V
}

// NewBucketStore returns a store with the given bucket width. A non-positive
// width panics: bucket width is a construction-time constant.
func NewBucketStore[V any](width time.Duration) *BucketStore[V] {
	if width <= 0 {
		panic("temporal: bucket width must be positive")
	}
	return &BucketStore[V]{
		width:   width,
		buckets: make(map[int64][]entry[V]),
	}
}

// Width returns the bucket width.
func (s *BucketStore[V]) Width() time.Duration { return s.width }

// Len returns the number of stored values.
func (s *BucketStore[V]) Len() int { return s.n }

// BucketCount returns the number of materialized buckets.
func (s *BucketStore[V]) BucketCount() int { return len(s.buckets) }

func (s *BucketStore[V]) bucketOf(t time.Time) int64 {
	ns := t.UnixNano()
	w := int64(s.width)
	b := ns / w
	if ns < 0 && ns%w != 0 {
		b-- // floor division for pre-epoch times
	}
	return b
}

// Add stores v at time t.
func (s *BucketStore[V]) Add(t time.Time, v V) {
	b := s.bucketOf(t)
	if s.n == 0 {
		s.minB, s.maxB = b, b
	} else {
		if b < s.minB {
			s.minB = b
		}
		if b > s.maxB {
			s.maxB = b
		}
	}
	s.buckets[b] = append(s.buckets[b], entry[V]{t: t, v: v})
	s.n++
}

// Window calls fn for every value with time in [from, to] until fn returns
// false. Values within a bucket are visited in insertion order.
func (s *BucketStore[V]) Window(from, to time.Time, fn func(t time.Time, v V) bool) {
	if s.n == 0 || to.Before(from) {
		return
	}
	lo, hi := s.bucketOf(from), s.bucketOf(to)
	if lo < s.minB {
		lo = s.minB
	}
	if hi > s.maxB {
		hi = s.maxB
	}
	for b := lo; b <= hi; b++ {
		for _, e := range s.buckets[b] {
			if !e.t.Before(from) && !e.t.After(to) {
				if !fn(e.t, e.v) {
					return
				}
			}
		}
	}
}

// WindowSlice returns the values in [from, to] ordered by time (stable for
// equal timestamps).
func (s *BucketStore[V]) WindowSlice(from, to time.Time) []V {
	type tv struct {
		t time.Time
		v V
	}
	var tmp []tv
	s.Window(from, to, func(t time.Time, v V) bool {
		tmp = append(tmp, tv{t, v})
		return true
	})
	sort.SliceStable(tmp, func(i, j int) bool { return tmp[i].t.Before(tmp[j].t) })
	out := make([]V, len(tmp))
	for i, e := range tmp {
		out[i] = e.v
	}
	return out
}

// EvictBefore removes every value with time strictly before cutoff and
// returns the number removed. Whole-bucket drops are O(1) per bucket; only
// the boundary bucket is filtered element-wise.
func (s *BucketStore[V]) EvictBefore(cutoff time.Time) int {
	if s.n == 0 {
		return 0
	}
	cutB := s.bucketOf(cutoff)
	removed := 0
	for b := s.minB; b < cutB && b <= s.maxB; b++ {
		if es, ok := s.buckets[b]; ok {
			removed += len(es)
			delete(s.buckets, b)
		}
	}
	// Boundary bucket: drop entries before the cutoff instant.
	if es, ok := s.buckets[cutB]; ok {
		kept := es[:0]
		for _, e := range es {
			if e.t.Before(cutoff) {
				removed++
			} else {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(s.buckets, cutB)
		} else {
			s.buckets[cutB] = kept
		}
	}
	s.n -= removed
	if s.n == 0 {
		s.minB, s.maxB = 0, 0
	} else if cutB > s.minB {
		s.minB = cutB
		for {
			if _, ok := s.buckets[s.minB]; ok || s.minB >= s.maxB {
				break
			}
			s.minB++
		}
	}
	return removed
}

// ForEachBucket calls fn once per materialized bucket with the bucket's
// start time and the number of values it holds. Iteration order is
// unspecified. Summary builders use this to histogram a cell's records at
// bucket granularity in O(buckets) instead of O(records).
func (s *BucketStore[V]) ForEachBucket(fn func(start time.Time, n int)) {
	for b, es := range s.buckets {
		fn(time.Unix(0, b*int64(s.width)), len(es))
	}
}

// Span returns the time range [earliest bucket start, latest bucket end)
// currently materialized, and false when the store is empty.
func (s *BucketStore[V]) Span() (time.Time, time.Time, bool) {
	if s.n == 0 {
		return time.Time{}, time.Time{}, false
	}
	start := time.Unix(0, s.minB*int64(s.width))
	end := time.Unix(0, (s.maxB+1)*int64(s.width))
	return start, end, true
}
