package bench

import (
	"context"
	"math/rand"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/core"
	"stcam/internal/geo"
)

// r16Counters snapshots the coordinator counters R16 reports.
func r16Counters(c *core.Cluster) (asked, pruned, bytes int64) {
	reg := c.Coordinator.Metrics()
	return reg.Counter("scatter.asked").Value(),
		reg.Counter("scatter.pruned").Value(),
		reg.Counter("scatter.resp_bytes").Value()
}

// R16ScatterPruning measures the pruned two-phase read path against broadcast
// fan-out as the cluster grows, on an identical localized query mix. Asked
// and pruned are exact per-query worker counts from the coordinator's scatter
// counters; response bytes are the re-marshaled wire size of every gathered
// response (Options.WireAccounting). Expected shape: broadcast asks every
// worker per kNN, so its asked column grows linearly with cluster size and
// its gathered bytes with it; the pruned engine's asked column stays
// near-flat because summaries bound the search to the few workers owning
// data near each query point. Answers are identical by construction (the
// differential suite in internal/core proves it); this table prices the
// fan-out.
func R16ScatterPruning(s Scale) *Table {
	t := &Table{
		ID:     "R16",
		Title:  "Pruned scatter-gather vs broadcast fan-out",
		Notes:  "16×16 grid; kNN k=10 + 200m ranges, localized centers; 200µs injected RPC latency; asked/pruned per query",
		Header: []string{"workers", "engine", "asked/knn", "pruned/knn", "asked/range", "KB/query", "knn lat", "range lat"},
	}
	wl := makeWorkload(16, s.n(300), s.n(30), 11)
	ctx := context.Background()
	queries := s.n(100)
	for _, workers := range []int{4, 8, 16, 32} {
		for _, engine := range []string{"broadcast", "pruned"} {
			faulty := cluster.NewFaulty(cluster.NewInProc(), 1)
			c, err := core.NewLocalClusterOver(faulty, workers, nil, core.Options{
				CellSize:       50,
				DisablePrune:   engine == "broadcast",
				WireAccounting: true,
				LostAfter:      time.Hour,
			})
			if err != nil {
				panic(err)
			}
			if err := c.Coordinator.AddCameras(ctx, wl.cams, 100); err != nil {
				panic(err)
			}
			ingestAll(ctx, c, wl)
			// Refresh every worker's summary so the pruned engine sees the
			// ingested data (production freshness is heartbeat-bounded).
			for _, w := range c.Workers {
				if err := w.SendHeartbeat(ctx); err != nil {
					panic(err)
				}
			}
			// Inject the LAN round trip only for the measured queries.
			for _, w := range c.Workers {
				faulty.SetProgram(w.Addr(), cluster.FaultProgram{Latency: rpcLatency})
			}
			window := fullWindow(wl)
			qf := float64(queries)

			a0, p0, b0 := r16Counters(c)
			rng := rand.New(rand.NewSource(12))
			var knnDur time.Duration
			for q := 0; q < queries; q++ {
				center := geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
				st := time.Now()
				if _, err := c.Coordinator.KNN(ctx, center, window, 10); err != nil {
					panic(err)
				}
				knnDur += time.Since(st)
			}
			a1, p1, _ := r16Counters(c)
			rng = rand.New(rand.NewSource(13))
			var rangeDur time.Duration
			for q := 0; q < queries; q++ {
				center := geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
				st := time.Now()
				if _, err := c.Coordinator.Range(ctx, geo.RectAround(center, 100), window, 0); err != nil {
					panic(err)
				}
				rangeDur += time.Since(st)
			}
			a2, _, b2 := r16Counters(c)

			t.AddRow(workers, engine,
				float64(a1-a0)/qf,
				float64(p1-p0)/qf,
				float64(a2-a1)/qf,
				float64(b2-b0)/1024/(2*qf),
				knnDur/time.Duration(queries),
				rangeDur/time.Duration(queries))
			c.Stop()
		}
	}
	return t
}
