// Package bench implements the reconstructed experiment suite from DESIGN.md
// §3: every R# experiment is a function producing a Table whose rows are the
// series a figure would plot or the rows a table would list. The same
// functions back `go test -bench` (via bench_test.go at the repo root) and
// the `stcam-bench` CLI; EXPERIMENTS.md records representative output.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is one experiment's result: a header plus formatted rows.
type Table struct {
	ID     string
	Title  string
	Notes  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Fprint renders the table in aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Notes != "" {
		fmt.Fprintf(w, "   %s\n", t.Notes)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Scale shrinks or grows every experiment's workload. 1.0 is the paper-scale
// default used by stcam-bench; go-test benchmarks pass smaller values to keep
// CI fast. Scales below ~0.05 still run every experiment end to end.
type Scale float64

func (s Scale) n(base int) int {
	v := int(float64(base) * float64(s))
	if v < 1 {
		return 1
	}
	return v
}

// Experiment couples an ID to its runner, for the CLI's -exp selector.
type Experiment struct {
	ID   string
	Name string
	Run  func(Scale) *Table
}

// All returns the full experiment suite in ID order.
func All() []Experiment {
	return []Experiment{
		{"R1", "Ingest throughput vs worker count", R1Ingest},
		{"R2", "Query latency vs camera count", R2QueryLatency},
		{"R3", "Handoff cost: vision-graph vs broadcast", R3Handoff},
		{"R4", "Re-identification accuracy", R4Reid},
		{"R5", "Load balance under hotspot skew", R5Balance},
		{"R6", "Spatial index ablation", R6Index},
		{"R7", "Continuous query scalability", R7Continuous},
		{"R8", "Worker failure recovery", R8Failover},
		{"R9", "Memory vs retention window", R9Retention},
		{"R10", "Centralized/distributed crossover", R10Crossover},
		{"R11", "ST-histogram convergence", R11Histogram},
		{"R12", "Trajectory reconstruction vs detector noise", R12Trajectory},
		{"R13", "Adaptive query planner ablation", R13Planner},
		{"R14", "Query availability under injected faults", R14FaultSweep},
		{"R15", "Pipelined ingest throughput sweep", R15IngestPipeline},
		{"R16", "Pruned scatter-gather vs broadcast fan-out", R16ScatterPruning},
		{"R17", "Tiered track history: sealed-chunk compression and rollup routing", R17TieredStorage},
		{"R20", "Wire codec allocation: value vs pooled round trips", R20CodecAlloc},
		{"R21", "Serving plane: shared fan-out, result cache, admission control", R21Serving},
	}
}
