package bench

import (
	"context"
	"fmt"
	"time"

	"stcam/internal/baseline"
	"stcam/internal/cluster"
	"stcam/internal/core"
	"stcam/internal/geo"
	"stcam/internal/sim"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// R5Balance measures load imbalance (max/mean ingest events per worker)
// under a hotspot mobility pattern, for each partitioning strategy. Expected
// shape: spatial partitioning concentrates the hotspot on few workers (high
// imbalance) while hash partitioning spreads it (near 1.0); round-robin sits
// in between depending on camera ID layout.
func R5Balance(s Scale) *Table {
	t := &Table{
		ID:     "R5",
		Title:  "Load balance under hotspot skew (8 workers)",
		Notes:  "80% of waypoints in 4% of the area; imbalance = max/mean worker load",
		Header: []string{"partitioner", "events", "min", "max", "mean", "imbalance"},
	}
	ctx := context.Background()
	world := geo.RectOf(0, 0, 2000, 2000)
	cams := omniGrid(world, 16)
	hot := geo.RectOf(0, 0, 400, 400)

	// Pre-generate the skewed workload once.
	net := wireToNetwork(cams)
	net.BuildIndex(0)
	det := vision.NewDetector(vision.DetectorConfig{PosNoise: 1, FeatureDim: 16, Seed: 15})
	w, err := sim.NewWorld(sim.Config{
		World:      world,
		NumObjects: s.n(300),
		Model: &sim.RandomWaypoint{
			World: world, MinSpeed: 10, MaxSpeed: 30,
			Hotspot: hot, HotspotProb: 0.8,
		},
		Seed:       15,
		FeatureDim: 16,
	})
	if err != nil {
		panic(err)
	}
	wl := &workload{world: world, cams: cams}
	w.Run(s.n(120), net, det, func(_ int, obs []vision.Detection) {
		wl.batches = append(wl.batches, obs)
	})

	for _, p := range []cluster.Partitioner{
		&cluster.SpatialPartitioner{},
		&cluster.HashPartitioner{},
		&cluster.RoundRobinPartitioner{},
	} {
		c, err := core.NewLocalCluster(8, p, core.Options{CellSize: 50})
		if err != nil {
			panic(err)
		}
		if err := c.Coordinator.AddCameras(ctx, cams, 150); err != nil {
			panic(err)
		}
		ingestAll(ctx, c, wl)
		stats := c.Coordinator.WorkerStats(ctx)
		var minL, maxL, sum int64
		minL = -1
		for _, st := range stats {
			v := st.Counters["ingest.accepted"]
			if minL < 0 || v < minL {
				minL = v
			}
			if v > maxL {
				maxL = v
			}
			sum += v
		}
		mean := float64(sum) / float64(len(stats))
		imb := 0.0
		if mean > 0 {
			imb = float64(maxL) / mean
		}
		t.AddRow(p.Name(), sum, minL, maxL, mean, fmt.Sprintf("%.2f", imb))
		c.Stop()
	}
	return t
}

// R8Failover measures what a worker crash costs: detection+recovery wall
// time, the answer completeness dip right after the crash, and recovery of
// ingest for the reassigned cameras — with and without stream replication.
// Expected shape: unreplicated, completeness drops by the dead worker's data
// share and returns to 1.0 only for post-recovery data; with one replica,
// standby promotion keeps history completeness at 1.0. Recovery time is
// dominated by the heartbeat timeout in both modes.
func R8Failover(s Scale) *Table {
	t := &Table{
		ID:     "R8",
		Title:  "Worker failure recovery (8 workers)",
		Notes:  "one worker killed mid-stream; heartbeat timeout 100ms",
		Header: []string{"replicas", "phase", "records visible", "completeness", "recovery (wall)"},
	}
	for _, replicas := range []int{0, 1} {
		r8Scenario(s, t, replicas)
	}
	return t
}

func r8Scenario(s Scale, t *Table, replicas int) {
	ctx := context.Background()
	opts := core.Options{CellSize: 50, HeartbeatTimeout: 100 * time.Millisecond, Replicas: replicas}
	c, err := core.NewLocalCluster(8, nil, opts)
	if err != nil {
		panic(err)
	}
	defer c.Stop()
	wl := makeWorkload(16, s.n(300), s.n(40), 16)
	if err := c.Coordinator.AddCameras(ctx, wl.cams, 100); err != nil {
		panic(err)
	}
	total := ingestReplicated(ctx, c, wl)
	window := fullWindow(wl)
	pre, err := c.Coordinator.Range(ctx, wl.world, window, 0)
	if err != nil {
		panic(err)
	}
	t.AddRow(replicas, "before crash", len(pre), fmt.Sprintf("%.3f", float64(len(pre))/float64(total)), "-")

	// Everyone is healthy at crash time: heartbeat all workers so the
	// detection delay measured below reflects the failure timeout, not stale
	// registration timestamps.
	for _, w := range c.Workers {
		if err := w.SendHeartbeat(ctx); err != nil {
			panic(err)
		}
	}

	// Kill the busiest worker.
	stats := c.Coordinator.WorkerStats(ctx)
	var victim wire.NodeID
	var most int64 = -1
	for _, st := range stats {
		if v := st.Counters["ingest.accepted"]; v > most {
			most, victim = v, st.Node
		}
	}
	dead := c.Worker(victim)
	inproc := c.Transport.(*cluster.InProc)
	inproc.SetBlocked(dead.Addr(), true)
	crashAt := time.Now()

	// Survivors heartbeat until the sweep detects the death.
	var recovery time.Duration
	for {
		for _, w := range c.Workers {
			if w.ID() != victim {
				w.SendHeartbeat(ctx) //nolint:errcheck // best-effort during failover
			}
		}
		if died := c.Coordinator.Sweep(ctx, time.Now()); len(died) > 0 {
			recovery = time.Since(crashAt)
			break
		}
		if time.Since(crashAt) > 10*time.Second {
			panic("failover: death never detected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	post, _ := c.Coordinator.Range(ctx, wl.world, window, 0)
	t.AddRow(replicas, "after crash", len(post), fmt.Sprintf("%.3f", float64(len(post))/float64(total)), recovery.Round(time.Millisecond))

	// New data on the reassigned cameras is fully visible again. The second
	// stream is shifted one hour into the future so its query window is
	// disjoint from the pre-crash data.
	wl2 := makeWorkload(16, s.n(300), s.n(10), 17)
	for _, b := range wl2.batches {
		for i := range b {
			b[i].Time = b[i].Time.Add(time.Hour)
		}
	}
	total2 := ingestReplicated(ctx, c, wl2)
	post2, _ := c.Coordinator.Range(ctx, wl2.world, fullWindow(wl2), 0)
	comp2 := float64(len(post2)) / float64(max(total2, 1))
	t.AddRow(replicas, "post-recovery stream", len(post2), fmt.Sprintf("%.3f", comp2), "-")
}

// ingestReplicated streams a workload through the replica-aware Ingester
// (serial; R8 measures recovery, not throughput), returning primary-accepted
// count.
func ingestReplicated(ctx context.Context, c *core.Cluster, wl *workload) int {
	ing := core.NewIngester(c.Coordinator, c.Transport)
	total := 0
	for _, b := range wl.batches {
		n, _ := ing.IngestDetections(ctx, b)
		total += n
	}
	return total
}

// R10Crossover finds where distribution starts paying: total workload time
// (ingest + queries) on a centralized server vs distributed clusters of
// increasing size, across deployment scales, with per-message transport
// latency modeled. Expected shape: at small camera counts the centralized
// server wins (no fan-out overhead); past the crossover the distributed
// system wins and the gap grows with scale.
func R10Crossover(s Scale) *Table {
	t := &Table{
		ID:     "R10",
		Title:  "Centralized vs distributed crossover",
		Notes:  "workload = full ingest + 50 range queries; 200µs simulated one-way RPC latency",
		Header: []string{"cameras", "events", "central", "dist-2w", "dist-8w", "winner"},
	}
	for _, side := range []int{2, 4, 8, 16} {
		wl := makeWorkload(side, s.n(side*side*3), s.n(30), 18)
		window := fullWindow(wl)

		// Central: direct calls, no network.
		central := baseline.NewCentral(baseline.CentralConfig{CellSize: 50})
		startC := time.Now()
		for _, b := range wl.batches {
			central.Ingest(b)
		}
		qrng := newQueryRects(wl.world, s.n(50))
		for _, r := range qrng {
			central.Range(r, window, 0)
		}
		centralDur := time.Since(startC)

		durFor := func(workers int) time.Duration {
			tr := cluster.NewInProc(cluster.WithLatency(200 * time.Microsecond))
			coord := core.NewCoordinator("coord", tr, nil, core.Options{CellSize: 50})
			if err := coord.Start(); err != nil {
				panic(err)
			}
			c := &core.Cluster{Coordinator: coord, Transport: tr}
			ctx := context.Background()
			for i := 0; i < workers; i++ {
				w := core.NewWorker(wire.NodeID(fmt.Sprintf("w%02d", i+1)), fmt.Sprintf("worker-%02d", i+1), "coord", tr, core.Options{CellSize: 50})
				if err := w.Start(ctx); err != nil {
					panic(err)
				}
				c.Workers = append(c.Workers, w)
			}
			defer c.Stop()
			if err := coord.AddCameras(ctx, wl.cams, 100); err != nil {
				panic(err)
			}
			start := time.Now()
			ingestAll(ctx, c, wl)
			for _, r := range qrng {
				if _, err := coord.Range(ctx, r, window, 0); err != nil {
					panic(err)
				}
			}
			return time.Since(start)
		}
		d2 := durFor(2)
		d8 := durFor(8)
		winner := "central"
		switch {
		case d8 < centralDur && d8 <= d2:
			winner = "dist-8w"
		case d2 < centralDur:
			winner = "dist-2w"
		}
		t.AddRow(side*side, wl.totalObs(), centralDur.Round(time.Millisecond), d2.Round(time.Millisecond), d8.Round(time.Millisecond), winner)
	}
	return t
}

func newQueryRects(world geo.Rect, n int) []geo.Rect {
	out := make([]geo.Rect, n)
	// Deterministic tiling of query rectangles across the world.
	for i := range out {
		fx := float64(i%10) / 10
		fy := float64(i/10%10) / 10
		c := geo.Pt(world.Min.X+fx*world.Width(), world.Min.Y+fy*world.Height())
		out[i] = geo.RectAround(c, 100)
	}
	return out
}
