package bench

import (
	"context"
	"math/rand"
	"time"

	"stcam/internal/core"
	"stcam/internal/geo"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// R13Planner ablates the adaptive multi-predicate query planner: a mixed
// workload of target-constrained range queries runs three times — forced
// spatial plan, forced target plan, adaptive — on the same skewed store.
// Expected shape: each forced plan wins on the queries it suits and loses
// badly on the others; the adaptive planner tracks the per-query minimum, so
// its total is close to the best of both and far from the worst.
func R13Planner(s Scale) *Table {
	t := &Table{
		ID:     "R13",
		Title:  "Adaptive query planner ablation",
		Notes:  "mixed rare/frequent-target queries over a hotspot store; total execution time",
		Header: []string{"strategy", "queries", "records", "total time", "vs adaptive"},
	}
	ctx := context.Background()
	c, err := core.NewLocalCluster(1, nil, core.Options{CellSize: 50, LostAfter: time.Hour, AssocThreshold: 0.7})
	if err != nil {
		panic(err)
	}
	defer c.Stop()
	world := geo.RectOf(0, 0, 1000, 1000)
	cams := omniGrid(world, 2)
	if err := c.Coordinator.AddCameras(ctx, cams, 100); err != nil {
		panic(err)
	}

	// Skewed store: a handful of "frequent" identities with long histories
	// spread everywhere, many "rare" identities with a few sightings each,
	// and a dense anonymous hotspot.
	rng := rand.New(rand.NewSource(41))
	net := wireToNetwork(cams)
	net.BuildIndex(0)
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var obs []wire.Observation
	id := uint64(1)
	add := func(p geo.Point, at time.Duration, f vision.Feature) {
		covering := net.CamerasCovering(p)
		if len(covering) == 0 {
			return
		}
		obs = append(obs, wire.Observation{
			ObsID: id, Camera: uint32(covering[0]), Time: start.Add(at), Pos: p, Feature: f,
		})
		id++
	}
	nFrequent := 4
	frequents := make([]vision.Feature, nFrequent)
	for i := range frequents {
		frequents[i] = vision.NewRandomFeature(rng, 64)
		for j := 0; j < s.n(2000); j++ {
			add(geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
				time.Duration(j)*100*time.Millisecond, frequents[i].Perturb(rng, 0.02))
		}
	}
	nRare := 20
	rares := make([]vision.Feature, nRare)
	for i := range rares {
		rares[i] = vision.NewRandomFeature(rng, 64)
		for j := 0; j < 3; j++ {
			add(geo.Pt(rng.Float64()*200, rng.Float64()*200),
				time.Duration(j)*time.Second, rares[i].Perturb(rng, 0.02))
		}
	}
	for j := 0; j < s.n(20000); j++ {
		add(geo.Pt(rng.Float64()*250, rng.Float64()*250), time.Duration(j)*50*time.Millisecond, nil)
	}
	// Deliver directly to the single worker.
	for lo := 0; lo < len(obs); lo += 500 {
		hi := lo + 500
		if hi > len(obs) {
			hi = len(obs)
		}
		byCam := map[uint32][]wire.Observation{}
		for _, o := range obs[lo:hi] {
			byCam[o.Camera] = append(byCam[o.Camera], o)
		}
		for cam, batch := range byCam {
			addr, ok := c.Coordinator.RouteFor(cam)
			if !ok {
				continue
			}
			if _, err := c.Transport.Call(ctx, addr, &wire.IngestBatch{Camera: cam, Observations: batch}); err != nil {
				panic(err)
			}
		}
	}

	window := wire.TimeWindow{From: start, To: start.Add(24 * time.Hour)}
	// Warm the histogram.
	for x := 0.0; x < 1000; x += 125 {
		for y := 0.0; y < 1000; y += 125 {
			if _, err := c.Coordinator.Range(ctx, geo.RectOf(x, y, x+125, y+125), window, 0); err != nil {
				panic(err)
			}
		}
	}
	// Resolve target IDs via re-id search.
	resolve := func(f vision.Feature) uint64 {
		for _, w := range c.Workers {
			hits := w.ReidSearch(f, window, 0.85)
			for _, h := range hits {
				recs, err := c.Coordinator.Range(ctx, geo.RectAround(h.Pos, 0.5), window, 0)
				if err != nil {
					panic(err)
				}
				for _, r := range recs {
					if r.ObsID == h.ObsID && r.TargetID != 0 {
						return r.TargetID
					}
				}
			}
		}
		return 0
	}
	var freqIDs, rareIDs []uint64
	for _, f := range frequents {
		if tid := resolve(f); tid != 0 {
			freqIDs = append(freqIDs, tid)
		}
	}
	for _, f := range rares {
		if tid := resolve(f); tid != 0 {
			rareIDs = append(rareIDs, tid)
		}
	}

	// Mixed query workload: rare targets over the dense hotspot (target plan
	// should win) interleaved with frequent targets over small sparse
	// rectangles (spatial plan should win).
	type q struct{ fq wire.FilterQuery }
	var queries []q
	qrng := rand.New(rand.NewSource(42))
	reps := s.n(50)
	for i := 0; i < reps; i++ {
		queries = append(queries, q{wire.FilterQuery{
			Rect:     geo.RectOf(0, 0, 250, 250),
			Window:   window,
			TargetID: rareIDs[qrng.Intn(len(rareIDs))],
		}})
		x := 300 + qrng.Float64()*600
		y := 300 + qrng.Float64()*600
		queries = append(queries, q{wire.FilterQuery{
			Rect:     geo.RectAround(geo.Pt(x, y), 40),
			Window:   window,
			TargetID: freqIDs[qrng.Intn(len(freqIDs))],
		}})
	}
	run := func(force string) (time.Duration, int) {
		startT := time.Now()
		records := 0
		for _, qq := range queries {
			fq := qq.fq
			fq.ForcePlan = force
			recs, _, err := c.Coordinator.Filter(ctx, fq)
			if err != nil {
				panic(err)
			}
			records += len(recs)
		}
		return time.Since(startT), records
	}
	// Warm-up pass to stabilize caches, then measure.
	run("")
	adaptiveDur, adaptiveRecs := run("")
	spatialDur, spatialRecs := run("spatial")
	targetDur, targetRecs := run("target")
	if spatialRecs != adaptiveRecs || targetRecs != adaptiveRecs {
		panic("planner ablation: plans disagree on results")
	}
	rel := func(d time.Duration) string {
		return formatFloat(float64(d)/float64(adaptiveDur)) + "x"
	}
	t.AddRow("forced-spatial", len(queries), spatialRecs, spatialDur.Round(time.Microsecond), rel(spatialDur))
	t.AddRow("forced-target", len(queries), targetRecs, targetDur.Round(time.Microsecond), rel(targetDur))
	t.AddRow("adaptive", len(queries), adaptiveRecs, adaptiveDur.Round(time.Microsecond), "1.00x")
	return t
}
