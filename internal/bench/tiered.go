package bench

import (
	"math"
	"math/rand"
	"runtime"
	"time"

	"stcam/internal/geo"
	"stcam/internal/stindex"
)

// R17 prices the tiered track-history store (DESIGN.md §storage): how many
// bytes one retained observation costs in the flat in-memory store versus the
// sealed delta-compressed tier, and whether long-range aggregate queries are
// really answered from rollups alone. Three machine-robust headline columns
// feed the CI gate:
//
//   - "sealed B/obs": encoded bytes per sealed observation (cell chunks plus
//     the per-target index chunks), read off the store's own byte accounting —
//     deterministic for a fixed stream, gated with an absolute ceiling.
//   - "retention×": flat live-heap B/obs ÷ sealed B/obs — how many times more
//     history fits in the same memory once it seals. The paper-level claim is
//     ≥5×; the gate floors it there.
//   - "rollup-only": fraction of rollup-aligned long-range Count+Heatmap
//     queries that complete with zero chunk decodes (measured via the store's
//     decode counter). Must stay at 1.0 — any routing regression that makes
//     aggregates fall back to decoding chunks collapses it.
//
// Flat B/obs is a post-GC HeapAlloc delta around building the flat store:
// live bytes, not allocation churn, since retention is about what stays
// resident. The latency columns are informative only (host-dependent).

const (
	r17BucketWidth = time.Second
	r17RollupWidth = 8 * time.Second
	r17SealHorizon = 30 * time.Second
)

// r17Stream generates a deterministic multi-target walker stream: fixed
// cadence, positions snapped to a 1/1024 m grid (cameras report quantized
// coordinates), modest per-step movement — the shape sealed chunks exist to
// compress. Starts on a rollup-width-aligned instant so aggregate windows can
// be constructed bucket-aligned.
func r17Stream(n int) []stindex.Record {
	rng := rand.New(rand.NewSource(29))
	const walkers = 24
	xs, ys := make([]float64, walkers), make([]float64, walkers)
	for i := range xs {
		xs[i] = math.Round(rng.Float64()*1000*1024) / 1024
		ys[i] = math.Round(rng.Float64()*1000*1024) / 1024
	}
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC) // UnixNano divisible by r17RollupWidth
	recs := make([]stindex.Record, n)
	for i := 0; i < n; i++ {
		k := i % walkers
		xs[k] += math.Round((rng.Float64()*2-1)*1.5*1024) / 1024
		ys[k] += math.Round((rng.Float64()*2-1)*1.5*1024) / 1024
		recs[i] = stindex.Record{
			ObsID:    uint64(i + 1),
			TargetID: uint64(k + 1),
			Camera:   uint32(k % 16),
			Pos:      geo.Pt(xs[k], ys[k]),
			Time:     start.Add(time.Duration(i) * 25 * time.Millisecond),
		}
	}
	return recs
}

func r17Config(sealed bool) stindex.Config {
	c := stindex.Config{CellSize: 50, BucketWidth: r17BucketWidth}
	if sealed {
		c.SealHorizon = r17SealHorizon
		c.RollupWidth = r17RollupWidth
	}
	return c
}

// r17FlatBytes builds a flat store from the stream and returns its live heap
// cost per record: post-GC HeapAlloc delta divided by n.
func r17FlatBytes(recs []stindex.Record) float64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	flat := stindex.NewStore(r17Config(false))
	for _, r := range recs {
		flat.Insert(r)
	}
	runtime.GC()
	runtime.ReadMemStats(&m1)
	runtime.KeepAlive(flat)
	if m1.HeapAlloc <= m0.HeapAlloc {
		return 0
	}
	return float64(m1.HeapAlloc-m0.HeapAlloc) / float64(len(recs))
}

// R17TieredStorage reports per-observation storage cost for the flat vs
// sealed tier and verifies rollup-only aggregate routing, over two stream
// sizes.
func R17TieredStorage(s Scale) *Table {
	t := &Table{
		ID:     "R17",
		Title:  "Tiered track history: sealed-chunk compression and rollup routing",
		Notes:  "walker stream, 25ms cadence, grid-snapped positions; sealed B/obs includes per-target index chunks; rollup-only = aggregate queries with zero chunk decodes",
		Header: []string{"events", "sealed frac", "flat B/obs", "sealed B/obs", "retention×", "rollup-only", "count(rollup)", "count(decode)"},
	}
	world := geo.RectOf(-1e4, -1e4, 2e4, 2e4)
	for _, base := range []int{40000, 120000} {
		n := s.n(base)
		recs := r17Stream(n)
		flatBytes := r17FlatBytes(recs)

		tiered := stindex.NewStore(r17Config(true))
		for _, r := range recs {
			tiered.Insert(r)
		}
		tiered.Seal()
		ts := tiered.TierStats()
		if ts.SealedRecords == 0 {
			panic("bench: R17 stream too short to seal anything")
		}
		sealedFrac := float64(ts.SealedRecords) / float64(n)
		// Each observation is sealed once on the cell side and once in its
		// target's history chunks; the flat store likewise holds two copies
		// (cell bucket + byTarget slice), so total-bytes/record is the fair
		// comparison on both sides.
		sealedBytes := float64(ts.SealedBytes+ts.TargetBytes) / float64(ts.SealedRecords)
		retentionX := 0.0
		if sealedBytes > 0 {
			retentionX = flatBytes / sealedBytes
		}

		// Rollup routing: long-range Count+Heatmap over rollup-aligned
		// windows must not decode a single chunk.
		start := recs[0].Time.Truncate(r17RollupWidth)
		sealedSpan := recs[ts.SealedRecords-1].Time.Sub(start)
		lastFull := int(sealedSpan / r17RollupWidth) // buckets [0, lastFull) fully sealed
		rollupOnly, aggregates := 0, 0
		for i := 0; i < lastFull; i++ {
			from := start.Add(time.Duration(i) * r17RollupWidth)
			to := start.Add(time.Duration(lastFull) * r17RollupWidth).Add(-time.Nanosecond)
			d0 := tiered.TierStats().QueryDecodes
			tiered.Count(world, from, to)
			tiered.Heatmap(world, from, to, 50, nil)
			if tiered.TierStats().QueryDecodes == d0 {
				rollupOnly++
			}
			aggregates++
		}
		frac := 0.0
		if aggregates > 0 {
			frac = float64(rollupOnly) / float64(aggregates)
		}

		// Informative latencies: the same long-range count via rollups vs a
		// misaligned window that forces straddling buckets to decode.
		alignedFrom := start
		alignedTo := start.Add(time.Duration(lastFull) * r17RollupWidth).Add(-time.Nanosecond)
		iters := 50
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			tiered.Count(world, alignedFrom, alignedTo)
		}
		rollupNs := time.Since(t0) / time.Duration(iters)
		t0 = time.Now()
		for i := 0; i < iters; i++ {
			tiered.Count(world, alignedFrom.Add(500*time.Millisecond), alignedTo.Add(-500*time.Millisecond))
		}
		decodeNs := time.Since(t0) / time.Duration(iters)

		t.AddRow(n, sealedFrac, flatBytes, sealedBytes, retentionX, frac, rollupNs, decodeNs)
	}
	return t
}
