package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/core"
)

// R14FaultSweep measures query availability and latency under injected link
// faults, with the resilience layer off (single attempt) vs on (retry with
// backoff). One worker's link drops a swept fraction of calls; every query
// fans out over it. Expected shape: without retries, availability falls
// roughly linearly with the drop rate (any dropped sub-query makes the answer
// partial) while latency stays flat; with retries, availability returns to
// ~1.0 at the cost of a longer tail (P99 absorbs the backoff of the retried
// calls).
func R14FaultSweep(s Scale) *Table {
	t := &Table{
		ID:     "R14",
		Title:  "Query availability under injected faults (4 workers)",
		Notes:  "one of four workers behind a lossy link; availability = fraction of queries with complete answers",
		Header: []string{"drop", "resilience", "queries", "availability", "p50", "p99"},
	}
	wl := makeWorkload(8, s.n(200), s.n(30), 21)
	queries := s.n(150)
	for _, drop := range []float64{0.1, 0.3, 0.5} {
		for _, resilient := range []bool{false, true} {
			avail, p50, p99 := r14Cell(wl, queries, drop, resilient)
			mode := "off"
			if resilient {
				mode = "on"
			}
			t.AddRow(
				fmt.Sprintf("%.0f%%", drop*100), mode, queries,
				fmt.Sprintf("%.3f", avail),
				p50.Round(10*time.Microsecond), p99.Round(10*time.Microsecond),
			)
		}
	}
	return t
}

// r14Cell runs one sweep cell: a fresh cluster over a seeded Faulty link,
// the shared workload, and `queries` full-world range queries against it.
func r14Cell(wl *workload, queries int, drop float64, resilient bool) (avail float64, p50, p99 time.Duration) {
	ctx := context.Background()
	opts := core.Options{
		CellSize:    50,
		CallTimeout: 50 * time.Millisecond,
		// The sweep isolates retry behaviour; circuit breaking is disabled so
		// a run of unlucky drops cannot blackhole the lossy link entirely.
		RetryPolicy: cluster.Policy{MaxAttempts: 1, FailureThreshold: -1},
	}
	if resilient {
		opts.RetryPolicy = cluster.Policy{
			MaxAttempts:      4,
			BaseBackoff:      time.Millisecond,
			MaxBackoff:       10 * time.Millisecond,
			FailureThreshold: -1,
		}
	}
	faulty := cluster.NewFaulty(cluster.NewInProc(), 14)
	c, err := core.NewLocalClusterOver(faulty, 4, nil, opts)
	if err != nil {
		panic(err)
	}
	defer c.Stop()
	if err := c.Coordinator.AddCameras(ctx, wl.cams, 100); err != nil {
		panic(err)
	}
	ingestAll(ctx, c, wl)
	// Fault the first worker's link only after the data is loaded, so every
	// cell queries the same stored records.
	faulty.SetProgram(c.Workers[0].Addr(), cluster.FaultProgram{Drop: drop})

	window := fullWindow(wl)
	lats := make([]time.Duration, 0, queries)
	complete := 0
	for i := 0; i < queries; i++ {
		// Full-world queries: every one fans out over the lossy link.
		start := time.Now()
		_, meta, err := c.Coordinator.RangeMeta(ctx, wl.world, window, 0)
		lats = append(lats, time.Since(start))
		if err == nil && meta.Completeness() == 1.0 {
			complete++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return float64(complete) / float64(queries), percentile(lats, 0.50), percentile(lats, 0.99)
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
