package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestAllExperimentsRunAtTinyScale smoke-runs every experiment end to end at
// a small scale, checking the tables are well-formed. The shape assertions
// live in the dedicated tests below.
func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tbl := exp.Run(0.05)
			if tbl.ID != exp.ID {
				t.Errorf("table ID = %q, want %q", tbl.ID, exp.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(tbl.Header))
				}
			}
			out := tbl.String()
			if !strings.Contains(out, exp.ID) {
				t.Error("rendered table missing experiment ID")
			}
		})
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", 1500.0)
	tbl.AddRow(time.Millisecond, 0.0)
	out := tbl.String()
	if !strings.Contains(out, "== X: demo ==") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "2.500") || !strings.Contains(out, "1500") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, sep, 3 rows
		t.Errorf("rendered %d lines:\n%s", len(lines), out)
	}
}

func TestScaleClamps(t *testing.T) {
	if got := Scale(0.001).n(10); got != 1 {
		t.Errorf("tiny scale n = %d, want 1", got)
	}
	if got := Scale(2).n(10); got != 20 {
		t.Errorf("2x scale n = %d, want 20", got)
	}
}

// TestR3ShapeScopedBeatsBroadcast verifies the R3 headline claim at reduced
// scale: scoped handoff sends fewer primes per handoff than broadcast, and
// the broadcast cost grows with network size while scoped stays flat.
func TestR3ShapeScopedBeatsBroadcast(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	tbl := R3Handoff(0.3)
	type row struct {
		cams             int
		primesPerHandoff float64
	}
	var scoped, broadcast []row
	for _, r := range tbl.Rows {
		cams, _ := strconv.Atoi(r[0])
		per, _ := strconv.ParseFloat(r[4], 64)
		if r[1] == "scoped" {
			scoped = append(scoped, row{cams, per})
		} else {
			broadcast = append(broadcast, row{cams, per})
		}
	}
	if len(scoped) < 2 || len(broadcast) < 2 {
		t.Fatalf("missing rows: %v", tbl.Rows)
	}
	for i := range scoped {
		if scoped[i].primesPerHandoff >= broadcast[i].primesPerHandoff {
			t.Errorf("at %d cameras scoped (%.1f) not cheaper than broadcast (%.1f)",
				scoped[i].cams, scoped[i].primesPerHandoff, broadcast[i].primesPerHandoff)
		}
	}
}

// TestR4ShapeAccuracyDegrades verifies rank-1 accuracy falls with noise and
// with gallery size.
func TestR4ShapeAccuracyDegrades(t *testing.T) {
	tbl := R4Reid(0.5)
	r1 := map[[2]string]float64{}
	for _, r := range tbl.Rows {
		v, _ := strconv.ParseFloat(r[2], 64)
		r1[[2]string{r[0], r[1]}] = v
	}
	if r1[[2]string{"10", "0.050"}] < 0.95 {
		t.Errorf("small gallery low noise rank-1 = %v, want ≈ 1", r1[[2]string{"10", "0.050"}])
	}
	if !(r1[[2]string{"1000", "1.000"}] < r1[[2]string{"1000", "0.050"}]) {
		t.Error("rank-1 did not degrade with noise at gallery 1000")
	}
	if !(r1[[2]string{"1000", "1.000"}] <= r1[[2]string{"10", "1.000"}]) {
		t.Error("rank-1 did not degrade with gallery size at high noise")
	}
}

// TestR16ShapePrunedStaysFlat verifies the pruned-engine headline claims:
// broadcast kNN asks every worker (asked grows linearly with cluster size)
// while the pruned engine's asked column stays near-flat, every worker is
// accounted for (asked + pruned = cluster size), and pruned gathers fewer
// response bytes at the largest size.
func TestR16ShapePrunedStaysFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	tbl := R16ScatterPruning(0.1)
	type row struct {
		workers              int
		asked, pruned, bytes float64
	}
	var broadcast, pruned []row
	for _, r := range tbl.Rows {
		w, _ := strconv.Atoi(r[0])
		asked, _ := strconv.ParseFloat(r[2], 64)
		prn, _ := strconv.ParseFloat(r[3], 64)
		kb, _ := strconv.ParseFloat(r[5], 64)
		if r[1] == "broadcast" {
			broadcast = append(broadcast, row{w, asked, prn, kb})
		} else {
			pruned = append(pruned, row{w, asked, prn, kb})
		}
	}
	if len(broadcast) < 2 || len(pruned) < 2 || len(broadcast) != len(pruned) {
		t.Fatalf("missing rows: %v", tbl.Rows)
	}
	for i := range broadcast {
		if broadcast[i].asked != float64(broadcast[i].workers) {
			t.Errorf("broadcast at %d workers asked %.1f per knn, want every worker",
				broadcast[i].workers, broadcast[i].asked)
		}
		if p := pruned[i]; p.asked+p.pruned != float64(p.workers) {
			t.Errorf("pruned at %d workers: asked %.1f + pruned %.1f does not account for all",
				p.workers, p.asked, p.pruned)
		}
		if pruned[i].asked >= broadcast[i].asked && broadcast[i].workers > 1 {
			t.Errorf("at %d workers pruned asked %.1f, not below broadcast %.1f",
				broadcast[i].workers, pruned[i].asked, broadcast[i].asked)
		}
	}
	first, last := pruned[0], pruned[len(pruned)-1]
	growth := last.asked / first.asked
	clusterGrowth := float64(last.workers) / float64(first.workers)
	if growth > clusterGrowth/2 {
		t.Errorf("pruned asked grew %.1fx across a %.0fx cluster growth; not near-flat",
			growth, clusterGrowth)
	}
	if last.bytes >= broadcast[len(broadcast)-1].bytes {
		t.Errorf("pruned gathered %.2f KB/query at %d workers, broadcast %.2f — no wire saving",
			last.bytes, last.workers, broadcast[len(broadcast)-1].bytes)
	}
}

// TestR17ShapeSealedTierCompresses verifies the tiered-store headline claims
// at reduced scale: most of the stream seals, the sealed tier costs at most
// a fifth of the flat store per observation (the ≥5× retention claim), and
// every rollup-aligned long-range aggregate is answered without decoding a
// chunk.
func TestR17ShapeSealedTierCompresses(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	tbl := R17TieredStorage(0.1)
	if len(tbl.Rows) < 2 {
		t.Fatalf("missing rows: %v", tbl.Rows)
	}
	for _, r := range tbl.Rows {
		sealedFrac, _ := strconv.ParseFloat(r[1], 64)
		flatB, _ := strconv.ParseFloat(r[2], 64)
		sealedB, _ := strconv.ParseFloat(r[3], 64)
		retentionX, _ := strconv.ParseFloat(r[4], 64)
		rollupOnly, _ := strconv.ParseFloat(r[5], 64)
		if sealedFrac < 0.5 {
			t.Errorf("events=%s: only %.0f%% of the stream sealed", r[0], 100*sealedFrac)
		}
		if sealedB <= 0 || sealedB > flatB/5 {
			t.Errorf("events=%s: sealed %.1f B/obs vs flat %.1f — under 5x compression", r[0], sealedB, flatB)
		}
		if retentionX < 5 {
			t.Errorf("events=%s: retention× = %.1f, want >= 5", r[0], retentionX)
		}
		if rollupOnly != 1 {
			t.Errorf("events=%s: rollup-only = %.3f, want 1.0 (aggregates decoded chunks)", r[0], rollupOnly)
		}
	}
}

// TestR9ShapeRetentionBounds verifies bounded retention holds fewer records
// than unlimited retention and that the bound scales with the window.
func TestR9ShapeRetentionBounds(t *testing.T) {
	tbl := R9Retention(0.5)
	held := map[string]int{}
	for _, r := range tbl.Rows {
		v, _ := strconv.Atoi(r[2])
		held[r[0]] = v
	}
	if held["30s"] >= held["2m0s"] || held["2m0s"] > held["unlimited"] {
		t.Errorf("retention bounds not monotone: %v", held)
	}
}

// TestR11ShapeErrorFalls verifies histogram error decreases with feedback.
func TestR11ShapeErrorFalls(t *testing.T) {
	tbl := R11Histogram(1)
	var first, last float64
	for i, r := range tbl.Rows {
		v, _ := strconv.ParseFloat(r[1], 64)
		if i == 0 {
			first = v
		}
		last = v
	}
	if last >= first {
		t.Errorf("error did not fall with feedback: first=%v last=%v", first, last)
	}
}
