package bench

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file is the CI perf-regression gate: it compares two stcam-bench
// -json documents (a committed baseline and a fresh run) over a fixed set of
// machine-robust columns. Raw throughput numbers vary with the host, so the
// gate checks dimensionless ratios (R15 speedup) and deterministic work
// counters (R16 asked/pruned worker counts, gathered bytes) — the quantities
// that actually regress when coalescing or pruning breaks, and that stay
// put when the runner is merely slower.

// BenchDoc mirrors the stcam-bench -json output document.
type BenchDoc struct {
	Scale  float64  `json:"scale"`
	Tables []*Table `json:"tables"`
}

// GateColumn names one column of one experiment the regression gate checks.
// With Min or Max set the check is an absolute bound (cur >= Min, cur <= Max)
// independent of the baseline; otherwise it is baseline-relative within Tol.
type GateColumn struct {
	Table string  // experiment ID, e.g. "R16"
	Col   string  // header name, e.g. "asked/knn"
	Tol   float64 // allowed relative deviation (0.25 = ±25%)
	// MinBase skips cells where both sides are below this magnitude:
	// relative deltas on near-zero bases are pure noise.
	MinBase float64
	// Min, when positive, turns the check into an absolute floor. Use for
	// ratios whose exact value is scheduler-noisy but whose collapse is the
	// regression signal.
	Min float64
	// Max, when positive, turns the check into an absolute ceiling
	// (fail when cur > Max). Use for counters with a hard budget — e.g. the
	// codec's pooled allocs/op, which is deterministic per code path and must
	// never exceed the committed ceiling regardless of host speed.
	Max float64
}

// DefaultGate returns the columns CI compares. Covered:
//   - R15 "speedup": pipelined-vs-serial ingest ratio. The raw ratio swings
//     tens of percent run-to-run (the pipelined side is CPU-bound, the serial
//     side latency-bound), so it is gated as a floor on the documented ≥2×
//     claim: a broken pipeline collapses it to ~1×, noise never does.
//   - R16 "asked/knn", "pruned/knn", "asked/range", "KB/query": exact
//     per-query fan-out counts and gathered bytes — fully deterministic, so
//     baseline-relative ±25% catches any pruning regression (asked jumps
//     toward broadcast levels) without flaking.
//   - R17 "retention×", "rollup-only", "sealed B/obs": the tiered-store
//     contract. "sealed B/obs" is deterministic for the fixed stream (encoded
//     bytes, no timing), so it gets an absolute ceiling; "retention×" floors
//     the ≥5× fixed-memory retention claim (observed ~10×, and the flat side
//     is a post-GC live-heap measure, so it moves little); "rollup-only"
//     floors at 0.99 the fraction of aligned long-range aggregates answered
//     with zero chunk decodes — any rollup-routing regression drops it to 0.
//     Min/Max only: a relative gate would also be unusable for "rollup-only"
//     deviations since the baseline fraction is exactly 1.0.
//   - R20 "pooled allocs/op", "pooled B/op": allocation ceilings on the
//     pooled codec round trip (IngestBatch and RangeResult rows). Allocs/op
//     is a deterministic property of the code path, so the gate is an
//     absolute Max: any change that reintroduces per-frame garbage on the
//     ingest or gather hot path fails, regardless of runner speed. The B/op
//     ceiling is deliberately loose — it exists to catch a large hidden
//     copy that still fits in few allocations.
//   - R21 "dedup×", "speedup×", "cache hit", "ingest acked", "ingest p99×":
//     the serving-plane contract, gated on the shared row only (the per-sub
//     baseline row carries "-" cells, which parse as NaN and are skipped).
//     "dedup×" (observed 16) and "speedup×" (a message-count ratio under the
//     transport's fixed injected latency, observed well above the floor) are
//     dimensionless and machine-robust; "cache hit" is deterministic for the
//     fixed storm (49/50); "ingest acked" must be exactly 1.0 because ingest
//     never passes admission control; "ingest p99×" ceilings proxied-ingest
//     P99 under a shed query storm at +10% of idle — both sides are measured
//     back-to-back in the same process over the same injected latency, so
//     the ratio stays near 1.0 on any host.
func DefaultGate() []GateColumn {
	return []GateColumn{
		{Table: "R15", Col: "speedup", Min: 2.0},
		{Table: "R16", Col: "asked/knn", Tol: 0.25, MinBase: 0.5},
		{Table: "R16", Col: "pruned/knn", Tol: 0.25, MinBase: 0.5},
		{Table: "R16", Col: "asked/range", Tol: 0.25, MinBase: 0.3},
		{Table: "R16", Col: "KB/query", Tol: 0.25, MinBase: 0.1},
		{Table: "R17", Col: "retention×", Min: 5.0},
		{Table: "R17", Col: "rollup-only", Min: 0.99},
		{Table: "R17", Col: "sealed B/obs", Max: 32},
		{Table: "R20", Col: "pooled allocs/op", Max: 2},
		{Table: "R20", Col: "pooled B/op", Max: 512},
		{Table: "R21", Col: "dedup×", Min: 8},
		{Table: "R21", Col: "speedup×", Min: 5},
		{Table: "R21", Col: "cache hit", Min: 0.9},
		{Table: "R21", Col: "ingest acked", Min: 0.999},
		{Table: "R21", Col: "ingest p99×", Max: 1.10},
	}
}

// Delta is one compared cell.
type Delta struct {
	Table  string
	Col    string
	RowKey string // leading cells of the row, identifying the series point
	Base   float64
	Cur    float64
	Rel    float64 // (cur-base)/base; ±Inf when base is 0 and cur is not
	Fail   bool
}

// Report is the outcome of one gate comparison.
type Report struct {
	Deltas  []Delta
	Missing []string // tables/columns/rows present in the baseline but not in the current run
}

// Failed reports whether any delta exceeded its tolerance or any gated
// baseline data is missing from the current run.
func (r *Report) Failed() bool {
	if len(r.Missing) > 0 {
		return true
	}
	for _, d := range r.Deltas {
		if d.Fail {
			return true
		}
	}
	return false
}

// String renders a plain-text summary.
func (r *Report) String() string {
	var b strings.Builder
	for _, m := range r.Missing {
		fmt.Fprintf(&b, "MISSING %s\n", m)
	}
	for _, d := range r.Deltas {
		status := "ok"
		if d.Fail {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-4s %s [%s] %s: base %.3f cur %.3f (%+.1f%%)\n",
			status, d.Table, d.RowKey, d.Col, d.Base, d.Cur, 100*d.Rel)
	}
	return b.String()
}

// Markdown renders the delta table for a CI step summary.
func (r *Report) Markdown() string {
	var b strings.Builder
	b.WriteString("### Bench regression gate\n\n")
	if r.Failed() {
		b.WriteString("**Status: FAILED**\n\n")
	} else {
		b.WriteString("Status: OK\n\n")
	}
	for _, m := range r.Missing {
		fmt.Fprintf(&b, "- :x: missing from current run: %s\n", m)
	}
	if len(r.Missing) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("| experiment | row | column | baseline | current | Δ | status |\n")
	b.WriteString("|---|---|---|---:|---:|---:|---|\n")
	for _, d := range r.Deltas {
		status := ":white_check_mark:"
		if d.Fail {
			status = ":x:"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %.3f | %.3f | %+.1f%% | %s |\n",
			d.Table, d.RowKey, d.Col, d.Base, d.Cur, 100*d.Rel, status)
	}
	return b.String()
}

// parseCell extracts the leading float from a table cell, tolerating unit
// suffixes like "2.92x" or "87%". Returns NaN for non-numeric cells.
func parseCell(s string) float64 {
	s = strings.TrimSpace(s)
	end := 0
	for end < len(s) {
		c := s[end]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' {
			end++
			continue
		}
		break
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return math.NaN()
	}
	return v
}

func findTable(doc *BenchDoc, id string) *Table {
	for _, t := range doc.Tables {
		if t.ID == id {
			return t
		}
	}
	return nil
}

func findCol(t *Table, name string) int {
	for i, h := range t.Header {
		if h == name {
			return i
		}
	}
	return -1
}

// rowKey joins the leading non-gated cells that identify a series point
// (e.g. "workers=4 engine=pruned"); two cells are enough for every gated
// table.
func rowKey(t *Table, row []string) string {
	n := min(2, len(t.Header))
	parts := make([]string, 0, n)
	for i := 0; i < n && i < len(row); i++ {
		parts = append(parts, fmt.Sprintf("%s=%s", t.Header[i], row[i]))
	}
	return strings.Join(parts, " ")
}

// Compare checks the current document against the baseline over the gate
// columns. Rows are matched positionally (experiments emit a fixed sweep in
// a fixed order); a current table with fewer rows than the baseline reports
// the missing rows.
func Compare(baseline, current *BenchDoc, gate []GateColumn) *Report {
	r := &Report{}
	for _, g := range gate {
		bt := findTable(baseline, g.Table)
		if bt == nil {
			continue // baseline doesn't cover this experiment yet
		}
		bc := findCol(bt, g.Col)
		if bc < 0 {
			r.Missing = append(r.Missing, fmt.Sprintf("%s column %q (baseline)", g.Table, g.Col))
			continue
		}
		ct := findTable(current, g.Table)
		if ct == nil {
			r.Missing = append(r.Missing, fmt.Sprintf("table %s", g.Table))
			continue
		}
		cc := findCol(ct, g.Col)
		if cc < 0 {
			r.Missing = append(r.Missing, fmt.Sprintf("%s column %q", g.Table, g.Col))
			continue
		}
		for i, brow := range bt.Rows {
			if i >= len(ct.Rows) {
				r.Missing = append(r.Missing, fmt.Sprintf("%s row %d (%s)", g.Table, i, rowKey(bt, brow)))
				continue
			}
			base, cur := parseCell(brow[bc]), parseCell(ct.Rows[i][cc])
			if math.IsNaN(base) || math.IsNaN(cur) {
				continue // non-numeric cell (e.g. a label) — not gated
			}
			if math.Abs(base) < g.MinBase && math.Abs(cur) < g.MinBase {
				continue // both sides in the noise floor
			}
			d := Delta{Table: g.Table, Col: g.Col, RowKey: rowKey(bt, brow), Base: base, Cur: cur}
			if g.Min > 0 || g.Max > 0 {
				if base != 0 {
					d.Rel = (cur - base) / math.Abs(base)
				}
				d.Fail = (g.Min > 0 && cur < g.Min) || (g.Max > 0 && cur > g.Max)
			} else if base == 0 {
				d.Rel = math.Inf(1)
				if cur < 0 {
					d.Rel = math.Inf(-1)
				}
				d.Fail = true
			} else {
				d.Rel = (cur - base) / math.Abs(base)
				d.Fail = math.Abs(d.Rel) > g.Tol
			}
			r.Deltas = append(r.Deltas, d)
		}
	}
	return r
}
