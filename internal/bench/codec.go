package bench

import (
	"runtime"
	"time"

	"stcam/internal/geo"
	"stcam/internal/wire"
)

// R20 prices the wire codec's two call styles on the two hot-path message
// shapes: IngestBatch (every ingester sender lane frame) and RangeResult
// (every gathered worker response). The value path allocates a fresh frame
// and a fresh message per round trip; the pooled path appends into a borrowed
// wire.Buf and decodes into a reused struct, and must stay allocation-free in
// steady state. Unlike throughput, allocs/op is a deterministic property of
// the code path — independent of host speed and message size — which makes it
// a machine-robust CI gate: DefaultGate caps the pooled columns with an
// absolute ceiling, so a change that reintroduces per-frame garbage on the
// ingest or gather path fails benchdiff even on a noisy runner.
//
// Measurement is a plain runtime.MemStats delta over a warm loop rather than
// testing.Benchmark: the latter grabs the testing package's global benchmark
// lock, so calling it from inside a `go test -bench` target (bench_test.go
// wraps every experiment) would self-deadlock.

// r20IngestBatch builds a steady-state sender-lane batch of featured
// observations (same shape as internal/wire's codec benchmarks).
func r20IngestBatch(n int) *wire.IngestBatch {
	t0 := time.Unix(1700000000, 0).UTC()
	b := &wire.IngestBatch{Camera: 7, Source: "r20-ingest", Seq: 42}
	for i := 0; i < n; i++ {
		b.Observations = append(b.Observations, wire.Observation{
			ObsID:   uint64(i) + 1,
			Camera:  uint32(i % 16),
			Time:    t0.Add(time.Duration(i) * time.Millisecond),
			Pos:     geo.Pt(float64(i%100), float64(i%37)),
			Feature: []float32{float32(i), 0.5, -1.25, float32(i) * 0.01},
		})
	}
	return b
}

// r20RangeResult builds a busy gather response.
func r20RangeResult(n int) *wire.RangeResult {
	t0 := time.Unix(1700000000, 0).UTC()
	r := &wire.RangeResult{QueryID: 99, Asked: 8, Answered: 8}
	for i := 0; i < n; i++ {
		r.Records = append(r.Records, wire.ResultRecord{
			ObsID:    uint64(i) + 1,
			TargetID: uint64(i % 5),
			Camera:   uint32(i % 16),
			Pos:      geo.Pt(float64(i%200), float64(i%53)),
			Time:     t0.Add(time.Duration(i) * time.Second),
		})
	}
	return r
}

type r20Result struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
}

// r20Measure runs fn iters times and reports per-op wall time and heap
// allocation deltas. One warm-up call sizes pools and reused capacity before
// the GC fence, so the loop observes steady state.
func r20Measure(iters int, fn func() error) (r20Result, error) {
	if err := fn(); err != nil {
		return r20Result{}, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return r20Result{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(iters)
	return r20Result{
		nsPerOp:     float64(elapsed.Nanoseconds()) / n,
		bytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		allocsPerOp: float64(m1.Mallocs-m0.Mallocs) / n,
	}, nil
}

// r20Value measures Marshal + Unmarshal (fresh frame, fresh message).
func r20Value(iters int, kind wire.MsgKind, msg any) (r20Result, error) {
	return r20Measure(iters, func() error {
		enc, err := wire.Marshal(kind, msg)
		if err != nil {
			return err
		}
		_, err = wire.Unmarshal(kind, enc)
		return err
	})
}

// r20Pooled measures AppendMarshal into a borrowed buffer + UnmarshalInto a
// reused struct — the transport hot path.
func r20Pooled(iters int, kind wire.MsgKind, msg, reused any) (r20Result, error) {
	return r20Measure(iters, func() error {
		buf := wire.BorrowBuf()
		defer buf.Release()
		frame, err := wire.AppendMarshal(buf.B[:0], kind, msg)
		if err != nil {
			return err
		}
		buf.B = frame
		return wire.UnmarshalInto(kind, frame, reused)
	})
}

// R20CodecAlloc reports ns/op, B/op and allocs/op for encode+decode round
// trips of both hot-path message shapes through both call styles. Scale sizes
// the messages; the pooled columns are size-invariant (that is the point),
// the value columns grow with the message.
func R20CodecAlloc(s Scale) *Table {
	t := &Table{
		ID:     "R20",
		Title:  "Wire codec allocation: value vs pooled round trips",
		Notes:  "encode+decode per op; pooled = AppendMarshal into wire.Buf + UnmarshalInto reused struct; pooled allocs/op is the CI-gated ceiling",
		Header: []string{"message", "elems", "value ns/op", "value B/op", "value allocs/op", "pooled ns/op", "pooled B/op", "pooled allocs/op"},
	}
	iters := s.n(20000)
	if iters < 500 {
		iters = 500
	}
	type series struct {
		name   string
		kind   wire.MsgKind
		msg    any
		reused any
		elems  int
	}
	cases := []series{
		{"IngestBatch", wire.KindIngestBatch, r20IngestBatch(s.n(256)), &wire.IngestBatch{}, s.n(256)},
		{"RangeResult", wire.KindRangeResult, r20RangeResult(s.n(256)), &wire.RangeResult{}, s.n(256)},
	}
	for _, c := range cases {
		val, err := r20Value(iters, c.kind, c.msg)
		if err != nil {
			panic("bench: R20 value path: " + err.Error())
		}
		pool, err := r20Pooled(iters, c.kind, c.msg, c.reused)
		if err != nil {
			panic("bench: R20 pooled path: " + err.Error())
		}
		t.AddRow(c.name, c.elems,
			val.nsPerOp, val.bytesPerOp, val.allocsPerOp,
			pool.nsPerOp, pool.bytesPerOp, pool.allocsPerOp)
	}
	return t
}
