package bench

import (
	"math"
	"strings"
	"testing"
)

func gateDoc(r15Speedups, r16Asked []string) *BenchDoc {
	r15 := &Table{ID: "R15", Header: []string{"workers", "batch", "depth", "serial", "pipelined", "speedup"}}
	for _, s := range r15Speedups {
		r15.Rows = append(r15.Rows, []string{"1", "64", "4", "1000", "2000", s})
	}
	r16 := &Table{ID: "R16", Header: []string{"workers", "engine", "asked/knn", "pruned/knn", "asked/range", "KB/query", "knn lat", "range lat"}}
	for i, a := range r16Asked {
		engine := "broadcast"
		if i%2 == 1 {
			engine = "pruned"
		}
		r16.Rows = append(r16.Rows, []string{"4", engine, a, "2.0", "0.5", "1.2", "1ms", "1ms"})
	}
	return &BenchDoc{Scale: 1, Tables: []*Table{r15, r16}}
}

func TestCompareIdenticalPasses(t *testing.T) {
	base := gateDoc([]string{"2.92x", "5.10x"}, []string{"4.0", "2.5"})
	cur := gateDoc([]string{"2.92x", "5.10x"}, []string{"4.0", "2.5"})
	r := Compare(base, cur, DefaultGate())
	if r.Failed() {
		t.Fatalf("identical docs failed the gate:\n%s", r)
	}
	if len(r.Deltas) == 0 {
		t.Fatal("no deltas compared")
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := gateDoc([]string{"2.92x"}, []string{"4.0"})
	// Speedup is floor-gated, so even a big upward swing passes; the R16
	// count drifts +12.5%, inside ±25%.
	cur := gateDoc([]string{"9.40x"}, []string{"4.5"})
	if r := Compare(base, cur, DefaultGate()); r.Failed() {
		t.Fatalf("in-tolerance drift failed the gate:\n%s", r)
	}
}

// A broken ingest pipeline collapses the R15 speedup toward 1×, under the
// absolute floor the gate holds it to.
func TestCompareRegressionFails(t *testing.T) {
	base := gateDoc([]string{"2.92x"}, []string{"4.0"})
	cur := gateDoc([]string{"1.10x"}, []string{"4.0"})
	r := Compare(base, cur, DefaultGate())
	if !r.Failed() {
		t.Fatal("speedup below the 2x floor passed the gate")
	}
	var failed *Delta
	for i := range r.Deltas {
		if r.Deltas[i].Fail {
			failed = &r.Deltas[i]
		}
	}
	if failed == nil || failed.Table != "R15" || failed.Col != "speedup" {
		t.Fatalf("wrong failing delta: %+v", failed)
	}
}

// A pruning regression shows up as the pruned engine's asked count jumping
// toward broadcast levels — the exact deterministic signal the gate watches.
func TestComparePruningRegressionFails(t *testing.T) {
	base := gateDoc([]string{"2.92x"}, []string{"4.0", "2.0"})
	cur := gateDoc([]string{"2.92x"}, []string{"4.0", "4.0"}) // pruned asked doubled
	if r := Compare(base, cur, DefaultGate()); !r.Failed() {
		t.Fatal("pruned asked/knn doubling passed the gate")
	}
}

func TestCompareMissingTableFails(t *testing.T) {
	base := gateDoc([]string{"2.92x"}, []string{"4.0"})
	cur := &BenchDoc{Scale: 1, Tables: []*Table{base.Tables[0]}} // no R16
	r := Compare(base, cur, DefaultGate())
	if !r.Failed() {
		t.Fatal("missing R16 table passed the gate")
	}
	if len(r.Missing) == 0 {
		t.Fatal("missing table not reported")
	}
}

func TestCompareMissingRowFails(t *testing.T) {
	base := gateDoc([]string{"2.92x", "5.10x"}, []string{"4.0"})
	cur := gateDoc([]string{"2.92x"}, []string{"4.0"})
	if r := Compare(base, cur, DefaultGate()); !r.Failed() {
		t.Fatal("truncated current table passed the gate")
	}
}

func TestCompareSkipsNoiseFloor(t *testing.T) {
	// broadcast rows report pruned/knn = 0; a 0→0.1 wiggle must not trip
	// the relative comparison.
	base := gateDoc(nil, []string{"4.0"})
	cur := gateDoc(nil, []string{"4.0"})
	base.Tables[1].Rows[0][3] = "0.0"
	cur.Tables[1].Rows[0][3] = "0.1"
	if r := Compare(base, cur, DefaultGate()); r.Failed() {
		t.Fatalf("noise-floor delta failed the gate:\n%s", r)
	}
}

func TestParseCell(t *testing.T) {
	cases := map[string]float64{
		"2.92x":  2.92,
		" 4.0 ":  4,
		"-1.5":   -1.5,
		"87%":    87,
		"1.2e3x": 1200,
		"1ms":    1, // leading float only; durations are not gated
	}
	for in, want := range cases {
		if got := parseCell(in); got != want {
			t.Errorf("parseCell(%q) = %v, want %v", in, got, want)
		}
	}
	if !math.IsNaN(parseCell("pruned")) {
		t.Error("parseCell of a label did not return NaN")
	}
}

func TestReportMarkdown(t *testing.T) {
	base := gateDoc([]string{"2.92x"}, []string{"4.0"})
	cur := gateDoc([]string{"1.00x"}, []string{"4.0"})
	md := Compare(base, cur, DefaultGate()).Markdown()
	for _, want := range []string{"FAILED", "| R15 |", "speedup", ":x:"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	ok := Compare(base, base, DefaultGate()).Markdown()
	if !strings.Contains(ok, "Status: OK") {
		t.Errorf("passing markdown missing OK status:\n%s", ok)
	}
}

// codecDoc builds an R20 table with the given pooled allocs/op and B/op
// cells (two rows: IngestBatch, RangeResult).
func codecDoc(allocs, bytes []string) *BenchDoc {
	t := &Table{ID: "R20", Header: []string{
		"message", "elems",
		"value ns/op", "value B/op", "value allocs/op",
		"pooled ns/op", "pooled B/op", "pooled allocs/op",
	}}
	names := []string{"IngestBatch", "RangeResult"}
	for i := range allocs {
		t.Rows = append(t.Rows, []string{
			names[i%2], "256", "50000", "90432", "276", "30000", bytes[i], allocs[i],
		})
	}
	return &BenchDoc{Scale: 1, Tables: []*Table{t}}
}

// The pooled codec columns are ceiling-gated: values at or under Max pass
// regardless of how far they drift from the baseline (0 → 2 allocs is a
// +Inf relative move and must still pass).
func TestCompareMaxCeilingPasses(t *testing.T) {
	base := codecDoc([]string{"0", "0"}, []string{"0", "0"})
	cur := codecDoc([]string{"2.000", "1.000"}, []string{"96.0", "48.0"})
	if r := Compare(base, cur, DefaultGate()); r.Failed() {
		t.Fatalf("pooled allocs at the ceiling failed the gate:\n%s", r)
	}
}

// One allocation over the committed ceiling fails, even though the host is
// irrelevant to the count — that is the point of an absolute Max.
func TestCompareMaxCeilingFails(t *testing.T) {
	base := codecDoc([]string{"1.000", "1.000"}, []string{"48.0", "48.0"})
	cur := codecDoc([]string{"1.000", "3.000"}, []string{"48.0", "144"})
	r := Compare(base, cur, DefaultGate())
	if !r.Failed() {
		t.Fatal("pooled allocs over the ceiling passed the gate")
	}
	var failed *Delta
	for i := range r.Deltas {
		if r.Deltas[i].Fail {
			failed = &r.Deltas[i]
		}
	}
	if failed == nil || failed.Table != "R20" || failed.Col != "pooled allocs/op" {
		t.Fatalf("wrong failing delta: %+v", failed)
	}
	if failed.RowKey != "message=RangeResult elems=256" {
		t.Fatalf("failing delta names the wrong row: %q", failed.RowKey)
	}
}

// A hidden copy that stays within the alloc budget but balloons bytes trips
// the loose B/op ceiling.
func TestCompareMaxBytesCeilingFails(t *testing.T) {
	base := codecDoc([]string{"1.000", "1.000"}, []string{"48.0", "48.0"})
	cur := codecDoc([]string{"1.000", "1.000"}, []string{"48.0", "2048"})
	if r := Compare(base, cur, DefaultGate()); !r.Failed() {
		t.Fatal("pooled B/op over the ceiling passed the gate")
	}
}
