package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/core"
	"stcam/internal/geo"
	"stcam/internal/serve"
	"stcam/internal/wire"
)

// R21 prices the serving plane (DESIGN.md §serving): what shared fan-out,
// epoch-keyed result caching, and priority admission buy a coordinator facing
// heavy read traffic. One cluster runs over an in-proc transport with a fixed
// simulated per-message latency, so every ratio below is dominated by message
// counts — the quantity the serving plane actually changes — not host speed.
// Headline columns feeding the CI gate (all on the "shared" row; the
// "per-sub" baseline row carries "-" in gated cells):
//
//   - "dedup×": subscribers per worker-side install. 64 subscribers over 4
//     distinct geofences must collapse to 4 installs (16×); floored at 8.
//   - "speedup×": sustained update deliveries/sec, shared fan-out vs naive
//     per-subscriber installs. Per-sub, every transition pushes one RPC per
//     subscriber; shared, one per geofence — the ratio is a message-count
//     ratio and must hold ≥5× (paper-level claim).
//   - "cache hit": hit fraction over a fixed repeated-query storm (8 shapes
//     × 50 repeats → 49/50 ideal); floored at 0.9. Collapses to 0 if
//     canonicalization or epoch keying breaks.
//   - "ingest acked": fraction of coordinator-proxied ingest batches acked
//     while a background-priority query storm is being shed. Ingest is never
//     admission-controlled, so this must stay 1.0; floored at 0.999.
//   - "ingest p99×": proxied-ingest P99 latency under the query storm vs
//     idle. The admission watermark exists to keep this flat; ceiling 1.10.
const (
	r21Subs     = 64
	r21Latency  = 200 * time.Microsecond
	r21Repeats  = 50  // cache storm repeats — fixed, so the hit ratio is scale-independent
	r21Samples  = 300 // ingest latency samples per segment — fixed, so P99 depth is scale-independent
	r21Segments = 5   // independent P99 estimates per side; min-of-segments rejects host noise
)

// r21Shapes are four distinct geofences that all contain the in-point, so a
// single tracked target flipping in/out transitions every installed query at
// once: per-sub mode pays one coordinator push per subscriber per flip.
var r21Shapes = []geo.Rect{
	geo.RectOf(0, 0, 200, 200),
	geo.RectOf(0, 0, 300, 300),
	geo.RectOf(50, 50, 250, 250),
	geo.RectOf(0, 0, 400, 400),
}

// r21World builds the one-worker serving cluster: a single worker keeps the
// target's association (and thus its enter/leave transitions) on one node, so
// update counts are exact, while the injected latency still prices every
// coordinator push and client RPC.
func r21World(ctx context.Context) (*core.Cluster, *serve.Frontend) {
	tr := cluster.NewInProc(cluster.WithLatency(r21Latency))
	opts := core.Options{CellSize: 50, LostAfter: time.Hour}
	coord := core.NewCoordinator("coord", tr, nil, opts)
	if err := coord.Start(); err != nil {
		panic(err)
	}
	w := core.NewWorker("w01", "worker-01", "coord", tr, opts)
	if err := w.Start(ctx); err != nil {
		panic(err)
	}
	c := &core.Cluster{Coordinator: coord, Transport: tr, Workers: []*core.Worker{w}}
	if err := coord.AddCameras(ctx, omniGrid(geo.RectOf(0, 0, 1000, 1000), 3), 150); err != nil {
		panic(err)
	}
	f := serve.New(coord, serve.Options{
		CacheTTL:         time.Hour,
		CacheBytes:       1 << 20, // bounded: the shed storm's one-shot misses must not grow the heap
		MaxInflight:      2,       // low watermark so a small storm sheds without saturating the host
		SubscriberBuffer: 4096,
	})
	return c, f
}

// r21Flip ingests one tracked observation, alternating the target between a
// point inside every shape and a point outside all of them — each call is one
// enter or leave transition for every installed query.
func r21Flip(ctx context.Context, c *core.Cluster, obsID uint64, flip int) {
	pos, cam := geo.Pt(100, 100), uint32(1) // inside all shapes
	if flip%2 == 1 {
		pos, cam = geo.Pt(700, 700), uint32(9) // outside all shapes
	}
	addr, ok := c.Coordinator.RouteFor(cam)
	if !ok {
		panic("bench: R21 camera has no owner")
	}
	b := &wire.IngestBatch{Camera: cam, Observations: []wire.Observation{{
		ObsID:   obsID,
		Camera:  cam,
		Pos:     pos,
		Time:    time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(flip) * 100 * time.Millisecond),
		Feature: []float32{1, 0, 0.5},
	}}}
	if _, err := c.Transport.Call(ctx, addr, b); err != nil {
		panic(err)
	}
}

// r21PerSub measures the naive baseline: every subscriber gets its own
// worker-side install, so each flip costs one coordinator push per
// subscriber before the ingest acks. Returns delivered updates/sec.
func r21PerSub(ctx context.Context, c *core.Cluster, flips int) float64 {
	ids := make([]uint64, 0, r21Subs)
	chans := make([]<-chan wire.ContinuousUpdate, 0, r21Subs)
	for i := 0; i < r21Subs; i++ {
		id, ch, err := c.Coordinator.InstallContinuous(ctx, wire.ContinuousRange, r21Shapes[i%len(r21Shapes)], 0)
		if err != nil {
			panic(err)
		}
		ids, chans = append(ids, id), append(chans, ch)
	}
	start := time.Now()
	for f := 0; f < flips; f++ {
		r21Flip(ctx, c, uint64(f+1), f)
	}
	// Pushes are synchronous within the ingest ack, so every update is
	// already buffered; the drain is bookkeeping, not waiting.
	delivered := 0
	for _, ch := range chans {
		for {
			ok := false
			select {
			case _, ok = <-ch:
			default:
			}
			if !ok {
				break
			}
			delivered++
		}
	}
	dur := time.Since(start)
	for _, id := range ids {
		if err := c.Coordinator.RemoveContinuous(ctx, id); err != nil {
			panic(err)
		}
	}
	if delivered == 0 {
		panic("bench: R21 per-sub mode delivered no updates")
	}
	return float64(delivered) / dur.Seconds()
}

// r21Shared measures the serving plane: subscribers arrive through the wire
// Subscribe path, dedup onto shared installs, and drain through PollUpdates.
// Returns delivered updates/sec plus the live install count for the dedup
// column.
func r21Shared(ctx context.Context, c *core.Cluster, flips int) (float64, int) {
	subIDs := make([]uint64, 0, r21Subs)
	for i := 0; i < r21Subs; i++ {
		resp, err := c.Transport.Call(ctx, c.Coordinator.Addr(), &wire.Subscribe{
			Kind: wire.ContinuousRange, Rect: r21Shapes[i%len(r21Shapes)],
		})
		if err != nil {
			panic(err)
		}
		subIDs = append(subIDs, resp.(*wire.SubscribeAck).SubID)
	}
	installs := c.Coordinator.SharedContinuousCount()

	start := time.Now()
	for f := 0; f < flips; f++ {
		r21Flip(ctx, c, uint64(1_000_000+f+1), f)
	}
	// Every subscriber polls concurrently — 64 independent clients, exactly
	// like the per-sub baseline's 64 independent channels — re-polling until
	// it has drained its share (the fan-out pump is asynchronous).
	var wg sync.WaitGroup
	var delivered atomic.Int64
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range subIDs {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for got := 0; got < flips; {
				if time.Now().After(deadline) {
					panic(fmt.Sprintf("bench: R21 subscriber %d stalled at %d/%d updates", id, got, flips))
				}
				resp, err := c.Transport.Call(ctx, c.Coordinator.Addr(), &wire.PollUpdates{SubID: id, Max: flips})
				if err != nil {
					panic(err)
				}
				n := len(resp.(*wire.PollResult).Updates)
				got += n
				delivered.Add(int64(n))
			}
		}(id)
	}
	wg.Wait()
	dur := time.Since(start)
	for _, id := range subIDs {
		if _, err := c.Transport.Call(ctx, c.Coordinator.Addr(), &wire.Unsubscribe{SubID: id}); err != nil {
			panic(err)
		}
	}
	return float64(delivered.Load()) / dur.Seconds(), installs
}

// r21CacheStorm replays a fixed set of Range/Count/Heatmap shapes r21Repeats
// times through the gateway and returns the hit fraction from the serving
// metrics.
func r21CacheStorm(ctx context.Context, c *core.Cluster) float64 {
	window := wire.TimeWindow{From: time.Unix(0, 0).UTC(), To: time.Unix(4e9, 0).UTC()}
	queries := []any{
		&wire.RangeQuery{Rect: geo.RectOf(0, 0, 500, 500), Window: window},
		&wire.RangeQuery{Rect: geo.RectOf(200, 200, 900, 900), Window: window},
		&wire.RangeQuery{Rect: geo.RectOf(0, 500, 1000, 1000), Window: window, Limit: 32},
		&wire.CountQuery{Rect: geo.RectOf(0, 0, 1000, 1000), Window: window},
		&wire.CountQuery{Rect: geo.RectOf(100, 100, 400, 400), Window: window},
		&wire.CountQuery{Rect: geo.RectOf(600, 0, 1000, 400), Window: window},
		&wire.HeatmapQuery{Rect: geo.RectOf(0, 0, 1000, 1000), Window: window, CellSize: 100},
		&wire.HeatmapQuery{Rect: geo.RectOf(0, 0, 500, 500), Window: window, CellSize: 50},
	}
	snap := c.Coordinator.Metrics().Snapshot()
	hits0, miss0 := snap.Counters["serve.cache.hits"], snap.Counters["serve.cache.misses"]
	for r := 0; r < r21Repeats; r++ {
		for _, q := range queries {
			if _, err := c.Transport.Call(ctx, c.Coordinator.Addr(), q); err != nil {
				panic(err)
			}
		}
	}
	snap = c.Coordinator.Metrics().Snapshot()
	hits := snap.Counters["serve.cache.hits"] - hits0
	misses := snap.Counters["serve.cache.misses"] - miss0
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// r21IngestSegment sends r21Samples single-observation batches through the
// coordinator ingest proxy (the path that traverses the gateway) and returns
// the segment's P99 round-trip plus its acked count. Feature-less
// observations keep the worker-side cost constant: no association, no
// continuous evaluation.
func r21IngestSegment(ctx context.Context, c *core.Cluster, base uint64) (time.Duration, int) {
	lats := make([]time.Duration, 0, r21Samples)
	acked := 0
	for i := 0; i < r21Samples; i++ {
		b := &wire.IngestBatch{Camera: 9, Observations: []wire.Observation{{
			ObsID:  base + uint64(i+1),
			Camera: 9,
			Pos:    geo.Pt(700, 700),
			Time:   time.Date(2026, 1, 1, 1, 0, 0, 0, time.UTC).Add(time.Duration(i) * 10 * time.Millisecond),
		}}}
		t0 := time.Now()
		_, err := c.Transport.Call(ctx, c.Coordinator.Addr(), b)
		lats = append(lats, time.Since(t0))
		if err == nil {
			acked++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(0.99 * float64(len(lats)))
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	return lats[idx], acked
}

// r21Storm starts a paced background-priority query storm — enough
// concurrency to hold the admission watermark and shed, without pegging a
// small host's CPU — and returns a stop function. Every query carries a
// distinct window so it misses the cache and holds an admission slot for a
// real scatter.
func r21Storm(ctx context.Context, c *core.Cluster, epoch int) func() {
	stormCtx := cluster.WithPriority(ctx, cluster.PriorityBackground)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-time.After(3 * time.Millisecond):
				}
				q := &wire.CountQuery{
					Rect:   geo.RectOf(0, 0, 1000, 1000),
					Window: wire.TimeWindow{From: time.Unix(0, 0).UTC(), To: time.Unix(int64(1e6+epoch*10_000_000+g*1_000_000+i), 0).UTC()},
				}
				c.Transport.Call(stormCtx, c.Coordinator.Addr(), q) //nolint:errcheck // shed responses are the point
			}
		}(g)
	}
	return func() {
		close(stop)
		wg.Wait()
	}
}

// R21Serving benchmarks the serving plane end to end: shared-subscription
// fan-out vs per-subscriber installs, result-cache hit ratio, and ingest
// latency/ack behaviour under a shed query storm.
func R21Serving(s Scale) *Table {
	t := &Table{
		ID:    "R21",
		Title: "Serving plane: shared fan-out, result cache, admission control",
		Notes: fmt.Sprintf("1 worker, %v simulated one-way RPC latency, %d subscribers over %d geofences; upd/s = continuous updates delivered to subscribers per second",
			r21Latency, r21Subs, len(r21Shapes)),
		Header: []string{"mode", "subs", "installs", "dedup×", "upd/s", "speedup×", "cache hit", "ingest acked", "ingest p99×", "shed"},
	}
	ctx := context.Background()
	c, _ := r21World(ctx)
	defer c.Stop()

	flips := s.n(64)
	if flips%2 == 1 {
		flips++ // end outside every shape so the next mode starts from a clean answer set
	}
	perSub := r21PerSub(ctx, c, flips)
	t.AddRow("per-sub", r21Subs, r21Subs, "-", perSub, "-", "-", "-", "-", "-")

	sharedUps, installs := r21Shared(ctx, c, flips)
	dedup := float64(r21Subs) / float64(max(installs, 1))
	speedup := sharedUps / perSub

	hitRatio := r21CacheStorm(ctx, c)

	// Interleaved idle/loaded P99 segments: each round samples the proxied
	// ingest path idle, then again under a shed-heavy background query storm,
	// and contributes one pairwise P99 ratio. The reported ratio is the
	// minimum over rounds: a structural regression (ingest queueing behind
	// query admission) inflates the loaded side of every pair, while one-off
	// host noise — a GC pause, a scheduler hiccup on a small CI runner —
	// lands in a single pair and is rejected; pairing idle/loaded within a
	// round cancels slow-host drift across the phase.
	shed0 := c.Coordinator.Metrics().Snapshot().Counters["serve.shed.background"]
	p99x := 0.0
	acked := 0
	for seg := 0; seg < r21Segments; seg++ {
		runtime.GC()
		idle, _ := r21IngestSegment(ctx, c, 2_000_000+uint64(seg)*uint64(r21Samples))
		stopStorm := r21Storm(ctx, c, seg)
		loaded, n := r21IngestSegment(ctx, c, 3_000_000+uint64(seg)*uint64(r21Samples))
		stopStorm()
		acked += n
		if idle <= 0 {
			idle = 1
		}
		if r := float64(loaded) / float64(idle); p99x == 0 || r < p99x {
			p99x = r
		}
	}
	ackedFrac := float64(acked) / float64(r21Segments*r21Samples)
	shed := c.Coordinator.Metrics().Snapshot().Counters["serve.shed.background"] - shed0

	t.AddRow("shared", r21Subs, installs, dedup, sharedUps,
		fmt.Sprintf("%.1f", speedup), fmt.Sprintf("%.3f", hitRatio),
		fmt.Sprintf("%.3f", ackedFrac), fmt.Sprintf("%.2f", p99x), shed)
	return t
}
