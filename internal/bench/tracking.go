package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"stcam/internal/core"
	"stcam/internal/geo"
	"stcam/internal/sim"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// R3Handoff compares tracking handoff cost between vision-graph-scoped
// priming and broadcast priming as the camera network grows. A single target
// traverses a camera corridor; we count prime messages and total transport
// calls. Expected shape: scoped cost is O(graph degree) per handoff
// (constant in network size); broadcast is O(workers) per handoff, so the
// gap widens linearly with the deployment.
func R3Handoff(s Scale) *Table {
	t := &Table{
		ID:     "R3",
		Title:  "Handoff cost: vision-graph scoped vs broadcast",
		Notes:  "one target traversing a camera corridor; 8 workers",
		Header: []string{"cameras", "strategy", "handoffs", "primes sent", "primes/handoff", "final camera"},
	}
	ctx := context.Background()
	for _, nCams := range []int{16, 64, 128} {
		for _, broadcast := range []bool{false, true} {
			opts := core.Options{
				LostAfter:        2 * time.Second,
				PrimeTTL:         time.Minute,
				BroadcastHandoff: broadcast,
			}
			c, err := core.NewLocalCluster(8, nil, opts)
			if err != nil {
				panic(err)
			}
			cams := corridor(nCams, 100)
			if err := c.Coordinator.AddCameras(ctx, cams, 60); err != nil {
				panic(err)
			}
			feat := vision.NewRandomFeature(rand.New(rand.NewSource(11)), 32)
			start := sim.DefaultStart
			deliver(ctx, c, wire.Observation{ObsID: 1, Camera: 1, Time: start, Pos: geo.Pt(30, 50), Feature: feat})
			trackID, ch, err := c.Coordinator.StartTrack(ctx, 1, feat, start)
			if err != nil {
				panic(err)
			}
			// Walk end to end at 10 m/s with 1 Hz observations.
			endX := float64(nCams)*100 - 30
			steps := int(endX-30) / 10
			net := c.Coordinator.Network()
			obsID := uint64(100)
			for i := 0; i <= steps; i++ {
				frac := float64(i) / float64(steps)
				p := geo.Pt(30+(endX-30)*frac, 50)
				now := start.Add(time.Duration(i+1) * time.Second)
				if covering := net.CamerasCovering(p); len(covering) > 0 {
					deliver(ctx, c, wire.Observation{ObsID: obsID, Camera: uint32(covering[0]), Time: now, Pos: p, Feature: feat})
					obsID++
				}
				clockTick(ctx, c, now)
			}
			drainTrack(ch)
			snap := c.Coordinator.Metrics().Snapshot()
			_, lastCam, handoffs, _ := c.Coordinator.TrackInfo(trackID)
			primes := snap.Counters["handoff.primes_sent"]
			name := "scoped"
			if broadcast {
				name = "broadcast"
			}
			per := float64(primes) / float64(max(handoffs, 1))
			t.AddRow(nCams, name, handoffs, primes, fmt.Sprintf("%.1f", per), lastCam)
			c.Stop()
		}
	}
	return t
}

func corridor(n int, span float64) []wire.CameraInfo {
	out := make([]wire.CameraInfo, n)
	for i := range out {
		out[i] = wire.CameraInfo{
			ID:      uint32(i + 1),
			Pos:     geo.Pt(span*(float64(i)+0.5), 50),
			HalfFOV: 3.14159265,
			Range:   span / 2,
		}
	}
	return out
}

func deliver(ctx context.Context, c *core.Cluster, obs wire.Observation) {
	addr, ok := c.Coordinator.RouteFor(obs.Camera)
	if !ok {
		return
	}
	c.Transport.Call(ctx, addr, &wire.IngestBatch{ //nolint:errcheck // bench traffic
		Camera: obs.Camera, FrameTime: obs.Time, Observations: []wire.Observation{obs},
	})
}

func clockTick(ctx context.Context, c *core.Cluster, now time.Time) {
	for _, w := range c.Workers {
		c.Transport.Call(ctx, w.Addr(), &wire.IngestBatch{FrameTime: now}) //nolint:errcheck // bench traffic
	}
}

func drainTrack(ch <-chan wire.TrackUpdate) []wire.TrackUpdate {
	var out []wire.TrackUpdate
	for {
		select {
		case u := <-ch:
			out = append(out, u)
		default:
			return out
		}
	}
}

// R4Reid measures re-identification accuracy (rank-1 and rank-5) versus
// feature noise and gallery size. Expected shape: accuracy is near-perfect at
// low noise, degrades with noise, and degrades faster for larger galleries
// (more confusable identities).
func R4Reid(s Scale) *Table {
	t := &Table{
		ID:     "R4",
		Title:  "Re-identification accuracy",
		Notes:  "64-dim features; probes are noisy views of enrolled identities",
		Header: []string{"gallery", "noise σ", "rank-1", "rank-5"},
	}
	probes := s.n(400)
	for _, gallerySize := range []int{10, 100, 1000} {
		for _, noise := range []float64{0.05, 0.2, 0.5, 1.0} {
			rng := rand.New(rand.NewSource(12))
			g := vision.NewGallery()
			feats := make(map[uint64]vision.Feature, gallerySize)
			for id := uint64(1); id <= uint64(gallerySize); id++ {
				f := vision.NewRandomFeature(rng, 64)
				feats[id] = f
				g.Enroll(id, f)
			}
			rank1, rank5 := 0, 0
			for p := 0; p < probes; p++ {
				id := uint64(1 + rng.Intn(gallerySize))
				matches, err := g.Match(feats[id].Perturb(rng, noise), 5)
				if err != nil {
					panic(err)
				}
				if matches[0].ID == id {
					rank1++
				}
				for _, m := range matches {
					if m.ID == id {
						rank5++
						break
					}
				}
			}
			t.AddRow(gallerySize, noise,
				fmt.Sprintf("%.3f", float64(rank1)/float64(probes)),
				fmt.Sprintf("%.3f", float64(rank5)/float64(probes)))
		}
	}
	return t
}

// R12Trajectory measures trajectory reconstruction quality versus detector
// false-negative rate: a tracked target's reconstructed path is compared to
// the simulator's ground truth. Expected shape: mean spatial error stays near
// the position-noise floor while completeness (fraction of ticks with a
// matched observation) falls roughly as (1 - FN rate).
func R12Trajectory(s Scale) *Table {
	t := &Table{
		ID:     "R12",
		Title:  "Trajectory reconstruction vs detector noise",
		Notes:  "single target, full-coverage grid, 2 m position noise",
		Header: []string{"FN rate", "truth ticks", "observations", "completeness", "mean err (m)"},
	}
	ctx := context.Background()
	ticks := s.n(300)
	for _, fn := range []float64{0, 0.1, 0.3, 0.5} {
		c, err := core.NewLocalCluster(4, nil, core.Options{CellSize: 50, LostAfter: time.Hour})
		if err != nil {
			panic(err)
		}
		world := geo.RectOf(0, 0, 2000, 2000)
		cams := omniGrid(world, 8)
		if err := c.Coordinator.AddCameras(ctx, cams, 100); err != nil {
			panic(err)
		}
		w, err := sim.NewWorld(sim.Config{
			World:       world,
			NumObjects:  1,
			Model:       &sim.RandomWaypoint{World: world, MinSpeed: 10, MaxSpeed: 20},
			Seed:        13,
			FeatureDim:  32,
			RecordTruth: true,
		})
		if err != nil {
			panic(err)
		}
		det := vision.NewDetector(vision.DetectorConfig{
			PosNoise:     2,
			FeatureNoise: 0.03,
			FalseNegRate: fn,
			FeatureDim:   32,
			Seed:         14,
		})
		ing := core.NewIngester(c.Coordinator, c.Transport)
		net := wireToNetwork(cams)
		net.BuildIndex(0)
		w.Run(ticks, net, det, func(_ int, obs []vision.Detection) {
			ing.IngestDetections(ctx, obs) //nolint:errcheck // bench traffic
		})
		// Reconstruct from the store: take the target with the most records
		// (association may fragment identities under heavy noise).
		window := wire.TimeWindow{From: sim.DefaultStart, To: w.Now()}
		recs, err := c.Coordinator.Range(ctx, world, window, 0)
		if err != nil {
			panic(err)
		}
		truth := w.Truth(1)
		var sumErr float64
		matched := 0
		coveredTicks := make(map[int64]bool)
		for _, r := range recs {
			gt, err := truth.At(r.Time)
			if err != nil {
				continue
			}
			sumErr += r.Pos.Dist(gt)
			matched++
			coveredTicks[r.Time.Unix()] = true
		}
		// Completeness = fraction of simulation ticks with at least one
		// observation (overlapping FOVs can yield several per tick).
		completeness := float64(len(coveredTicks)) / float64(ticks)
		meanErr := 0.0
		if matched > 0 {
			meanErr = sumErr / float64(matched)
		}
		t.AddRow(fn, ticks, matched, fmt.Sprintf("%.3f", completeness), fmt.Sprintf("%.2f", meanErr))
		c.Stop()
	}
	return t
}
