package bench

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"stcam/internal/baseline"
	"stcam/internal/camera"
	"stcam/internal/core"
	"stcam/internal/geo"
	"stcam/internal/sim"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// benchWorld builds the standard evaluation deployment: a square world with a
// camsPerSide² omni grid and a seeded object population, plus the detection
// batches for `ticks` simulation steps (pre-generated so measurement excludes
// simulation cost).
type workload struct {
	world   geo.Rect
	cams    []wire.CameraInfo
	batches [][]vision.Detection // one slice per tick
	tickDur time.Duration
}

func makeWorkload(camsPerSide, objects, ticks int, seed int64) *workload {
	world := geo.RectOf(0, 0, 2000, 2000)
	cams := omniGrid(world, camsPerSide)
	net := wireToNetwork(cams)
	net.BuildIndex(0)
	det := vision.NewDetector(vision.DetectorConfig{
		PosNoise:     1.0,
		FeatureNoise: 0.05,
		FeatureDim:   32,
		Seed:         seed,
	})
	w, err := sim.NewWorld(sim.Config{
		World:      world,
		NumObjects: objects,
		Model:      &sim.RandomWaypoint{World: world, MinSpeed: 5, MaxSpeed: 20},
		Seed:       seed,
		FeatureDim: 32,
	})
	if err != nil {
		panic(err) // static configuration; cannot fail at runtime
	}
	wl := &workload{world: world, cams: cams, tickDur: time.Second}
	w.Run(ticks, net, det, func(_ int, obs []vision.Detection) {
		wl.batches = append(wl.batches, obs)
	})
	return wl
}

func (wl *workload) totalObs() int {
	n := 0
	for _, b := range wl.batches {
		n += len(b)
	}
	return n
}

// omniGrid lays out side×side omnidirectional cameras covering the world.
func omniGrid(world geo.Rect, side int) []wire.CameraInfo {
	out := make([]wire.CameraInfo, 0, side*side)
	cw, ch := world.Width()/float64(side), world.Height()/float64(side)
	rng := 0.8 * math.Max(cw, ch)
	id := uint32(1)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			out = append(out, wire.CameraInfo{
				ID:      id,
				Pos:     geo.Pt(world.Min.X+(float64(c)+0.5)*cw, world.Min.Y+(float64(r)+0.5)*ch),
				HalfFOV: math.Pi,
				Range:   rng,
			})
			id++
		}
	}
	return out
}

// wireToNetwork builds a camera.Network from wire camera infos.
func wireToNetwork(cams []wire.CameraInfo) *camera.Network {
	net := camera.NewNetwork()
	for _, ci := range cams {
		net.Add(camera.New(camera.ID(ci.ID), ci.Pos, ci.Orient, ci.HalfFOV, ci.Range))
	}
	return net
}

// ingestAll streams the workload into a cluster, fanning batches out to the
// owning workers concurrently (one goroutine per worker, as per-camera feed
// processes would).
func ingestAll(ctx context.Context, c *core.Cluster, wl *workload) (int, time.Duration) {
	assignment := c.Coordinator.Assignment()
	routes := make(map[uint32]string)
	for cam := range assignment {
		if addr, ok := c.Coordinator.RouteFor(cam); ok {
			routes[cam] = addr
		}
	}
	// Pre-group: per worker, per tick.
	type workerFeed struct {
		addr    string
		batches []*wire.IngestBatch
	}
	feeds := make(map[string]*workerFeed)
	for _, obs := range wl.batches {
		perAddr := make(map[string]*wire.IngestBatch)
		for _, d := range obs {
			addr, ok := routes[uint32(d.Camera)]
			if !ok {
				continue
			}
			b := perAddr[addr]
			if b == nil {
				b = &wire.IngestBatch{Camera: uint32(d.Camera), FrameTime: d.Time}
				perAddr[addr] = b
			}
			b.Observations = append(b.Observations, wire.Observation{
				ObsID: d.ObsID, Camera: uint32(d.Camera), Time: d.Time,
				Pos: d.Pos, Feature: d.Feature, TrueID: d.TrueID,
			})
		}
		for addr, b := range perAddr {
			f := feeds[addr]
			if f == nil {
				f = &workerFeed{addr: addr}
				feeds[addr] = f
			}
			f.batches = append(f.batches, b)
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	var acceptedTotal int64
	var mu sync.Mutex
	for _, f := range feeds {
		wg.Add(1)
		go func(f *workerFeed) {
			defer wg.Done()
			local := 0
			for _, b := range f.batches {
				resp, err := c.Transport.Call(ctx, f.addr, b)
				if err != nil {
					continue
				}
				if ack, ok := resp.(*wire.IngestAck); ok {
					local += ack.Accepted
				}
			}
			mu.Lock()
			acceptedTotal += int64(local)
			mu.Unlock()
		}(f)
	}
	wg.Wait()
	return int(acceptedTotal), time.Since(start)
}

// R1Ingest measures ingest throughput (accepted observations/second) as the
// worker count grows, against the centralized baseline. Expected shape:
// near-linear scaling for the distributed system until coordination costs
// flatten it; the centralized server is a single horizontal line.
func R1Ingest(s Scale) *Table {
	t := &Table{
		ID:     "R1",
		Title:  "Ingest throughput vs worker count",
		Notes:  "16×16 camera grid, random-waypoint objects; events pre-generated",
		Header: []string{"workers", "events", "distributed ev/s", "centralized ev/s", "speedup"},
	}
	wl := makeWorkload(16, s.n(400), s.n(60), 1)

	// Centralized reference.
	central := baseline.NewCentral(baseline.CentralConfig{CellSize: 50})
	startC := time.Now()
	for _, b := range wl.batches {
		central.Ingest(b)
	}
	centralDur := time.Since(startC)
	centralRate := float64(wl.totalObs()) / centralDur.Seconds()

	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8, 16} {
		c, err := core.NewLocalCluster(workers, nil, core.Options{CellSize: 50})
		if err != nil {
			panic(err)
		}
		if err := c.Coordinator.AddCameras(ctx, wl.cams, 100); err != nil {
			panic(err)
		}
		accepted, dur := ingestAll(ctx, c, wl)
		rate := float64(accepted) / dur.Seconds()
		t.AddRow(workers, accepted, rate, centralRate, fmt.Sprintf("%.2fx", rate/centralRate))
		c.Stop()
	}
	return t
}
