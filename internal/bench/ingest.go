package bench

import (
	"context"
	"fmt"
	"math"
	"time"

	"stcam/internal/baseline"
	"stcam/internal/camera"
	"stcam/internal/cluster"
	"stcam/internal/core"
	"stcam/internal/geo"
	"stcam/internal/sim"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// benchWorld builds the standard evaluation deployment: a square world with a
// camsPerSide² omni grid and a seeded object population, plus the detection
// batches for `ticks` simulation steps (pre-generated so measurement excludes
// simulation cost).
type workload struct {
	world   geo.Rect
	cams    []wire.CameraInfo
	batches [][]vision.Detection // one slice per tick
	tickDur time.Duration
}

func makeWorkload(camsPerSide, objects, ticks int, seed int64) *workload {
	world := geo.RectOf(0, 0, 2000, 2000)
	cams := omniGrid(world, camsPerSide)
	net := wireToNetwork(cams)
	net.BuildIndex(0)
	det := vision.NewDetector(vision.DetectorConfig{
		PosNoise:     1.0,
		FeatureNoise: 0.05,
		FeatureDim:   32,
		Seed:         seed,
	})
	w, err := sim.NewWorld(sim.Config{
		World:      world,
		NumObjects: objects,
		Model:      &sim.RandomWaypoint{World: world, MinSpeed: 5, MaxSpeed: 20},
		Seed:       seed,
		FeatureDim: 32,
	})
	if err != nil {
		panic(err) // static configuration; cannot fail at runtime
	}
	wl := &workload{world: world, cams: cams, tickDur: time.Second}
	w.Run(ticks, net, det, func(_ int, obs []vision.Detection) {
		wl.batches = append(wl.batches, obs)
	})
	return wl
}

func (wl *workload) totalObs() int {
	n := 0
	for _, b := range wl.batches {
		n += len(b)
	}
	return n
}

// omniGrid lays out side×side omnidirectional cameras covering the world.
func omniGrid(world geo.Rect, side int) []wire.CameraInfo {
	out := make([]wire.CameraInfo, 0, side*side)
	cw, ch := world.Width()/float64(side), world.Height()/float64(side)
	rng := 0.8 * math.Max(cw, ch)
	id := uint32(1)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			out = append(out, wire.CameraInfo{
				ID:      id,
				Pos:     geo.Pt(world.Min.X+(float64(c)+0.5)*cw, world.Min.Y+(float64(r)+0.5)*ch),
				HalfFOV: math.Pi,
				Range:   rng,
			})
			id++
		}
	}
	return out
}

// wireToNetwork builds a camera.Network from wire camera infos.
func wireToNetwork(cams []wire.CameraInfo) *camera.Network {
	net := camera.NewNetwork()
	for _, ci := range cams {
		net.Add(camera.New(camera.ID(ci.ID), ci.Pos, ci.Orient, ci.HalfFOV, ci.Range))
	}
	return net
}

// ingestAll streams the workload into a cluster through the pipelined
// Ingester: frames are coalesced into one batch per owning worker and kept
// in flight up to the pipeline depth, which is how a production feed process
// would deliver them.
func ingestAll(ctx context.Context, c *core.Cluster, wl *workload) (int, time.Duration) {
	ing := core.NewIngesterWith(c.Coordinator, c.Transport, core.IngesterOptions{PipelineDepth: 4})
	defer ing.Close()
	start := time.Now()
	for _, obs := range wl.batches {
		ing.IngestDetectionsAsync(ctx, obs)
	}
	accepted, err := ing.Flush()
	if err != nil {
		panic(err) // fault-free transport; cannot fail at runtime
	}
	return accepted, time.Since(start)
}

// R1Ingest measures ingest throughput (accepted observations/second) as the
// worker count grows, against the centralized baseline. Expected shape:
// near-linear scaling for the distributed system until coordination costs
// flatten it; the centralized server is a single horizontal line.
func R1Ingest(s Scale) *Table {
	t := &Table{
		ID:     "R1",
		Title:  "Ingest throughput vs worker count",
		Notes:  "16×16 camera grid, random-waypoint objects; events pre-generated",
		Header: []string{"workers", "events", "distributed ev/s", "centralized ev/s", "speedup"},
	}
	wl := makeWorkload(16, s.n(400), s.n(60), 1)

	// Centralized reference.
	central := baseline.NewCentral(baseline.CentralConfig{CellSize: 50})
	startC := time.Now()
	for _, b := range wl.batches {
		central.Ingest(b)
	}
	centralDur := time.Since(startC)
	centralRate := float64(wl.totalObs()) / centralDur.Seconds()

	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8, 16} {
		c, err := core.NewLocalCluster(workers, nil, core.Options{CellSize: 50})
		if err != nil {
			panic(err)
		}
		if err := c.Coordinator.AddCameras(ctx, wl.cams, 100); err != nil {
			panic(err)
		}
		accepted, dur := ingestAll(ctx, c, wl)
		rate := float64(accepted) / dur.Seconds()
		t.AddRow(workers, accepted, rate, centralRate, fmt.Sprintf("%.2fx", rate/centralRate))
		c.Stop()
	}
	return t
}

// chunkDetections re-frames the workload's detections into fixed-size ingest
// frames, making batch size an independent experimental axis.
func chunkDetections(batches [][]vision.Detection, size int) [][]vision.Detection {
	var flat []vision.Detection
	for _, b := range batches {
		flat = append(flat, b...)
	}
	var out [][]vision.Detection
	for i := 0; i < len(flat); i += size {
		j := i + size
		if j > len(flat) {
			j = len(flat)
		}
		out = append(out, flat[i:j])
	}
	return out
}

// rpcLatency models one LAN round trip per ingest RPC. Over the raw in-proc
// transport a call is a function invocation and coalescing has nothing to
// amortize; a fixed per-call delay restores the cost structure the pipeline
// exists for (and that a TCP deployment pays on every Call).
const rpcLatency = 200 * time.Microsecond

// runFramedIngest feeds pre-framed detections through a fresh cluster in the
// given ingest mode and returns accepted observations per second. Worker
// links carry rpcLatency per call, injected after setup so only the measured
// ingest pays it.
func runFramedIngest(ctx context.Context, workers int, cams []wire.CameraInfo, frames [][]vision.Detection, opts core.IngesterOptions) float64 {
	faulty := cluster.NewFaulty(cluster.NewInProc(), 1)
	c, err := core.NewLocalClusterOver(faulty, workers, nil, core.Options{CellSize: 50})
	if err != nil {
		panic(err)
	}
	defer c.Stop()
	if err := c.Coordinator.AddCameras(ctx, cams, 100); err != nil {
		panic(err)
	}
	for _, w := range c.Workers {
		faulty.SetProgram(w.Addr(), cluster.FaultProgram{Latency: rpcLatency})
	}
	ing := core.NewIngesterWith(c.Coordinator, c.Transport, opts)
	defer ing.Close()
	start := time.Now()
	accepted := 0
	if opts.Serial {
		for _, f := range frames {
			n, err := ing.IngestDetections(ctx, f)
			if err != nil {
				panic(err)
			}
			accepted += n
		}
	} else {
		for _, f := range frames {
			ing.IngestDetectionsAsync(ctx, f)
		}
		if accepted, err = ing.Flush(); err != nil {
			panic(err)
		}
	}
	return float64(accepted) / time.Since(start).Seconds()
}

// R15IngestPipeline measures ingest throughput across batch size × pipeline
// depth × worker count, with the serial one-camera-one-blocking-RPC path as
// the baseline for every cell. Expected shape: coalescing wins as soon as a
// frame spans several cameras (fewer, larger RPCs), and depth adds a further
// factor by overlapping frames; the serial column is flat.
func R15IngestPipeline(s Scale) *Table {
	t := &Table{
		ID:     "R15",
		Title:  "Pipelined ingest: batch size × pipeline depth × workers",
		Notes:  "16×16 grid; 200µs injected RPC latency; same detections re-framed per batch size; serial = one blocking RPC per camera",
		Header: []string{"workers", "batch", "depth", "serial ev/s", "pipelined ev/s", "speedup"},
	}
	wl := makeWorkload(16, s.n(400), s.n(40), 2)
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		for _, batch := range []int{16, 64, 256} {
			frames := chunkDetections(wl.batches, batch)
			serial := runFramedIngest(ctx, workers, wl.cams, frames, core.IngesterOptions{Serial: true})
			for _, depth := range []int{1, 4} {
				rate := runFramedIngest(ctx, workers, wl.cams, frames, core.IngesterOptions{PipelineDepth: depth})
				t.AddRow(workers, batch, depth, serial, rate, fmt.Sprintf("%.2fx", rate/serial))
			}
		}
	}
	return t
}
