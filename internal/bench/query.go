package bench

import (
	"context"
	"math/rand"
	"time"

	"stcam/internal/baseline"
	"stcam/internal/core"
	"stcam/internal/geo"
	"stcam/internal/spatial"
	"stcam/internal/stindex"
	"stcam/internal/wire"
)

// R2QueryLatency measures snapshot range and kNN latency as the camera
// network grows, distributed (8 workers, spatial routing) vs centralized.
// Expected shape: the distributed latency stays near-flat because routing
// touches only the workers whose cameras intersect the query, while the
// centralized store's latency grows with total data volume.
func R2QueryLatency(s Scale) *Table {
	t := &Table{
		ID:     "R2",
		Title:  "Query latency vs camera count (8 workers)",
		Notes:  "mean of 200-query mix; fixed per-camera observation density",
		Header: []string{"cameras", "records", "dist range", "dist knn", "central range", "central knn"},
	}
	ctx := context.Background()
	for _, side := range []int{8, 16, 24, 32} {
		// Density held constant: objects scale with camera count.
		objects := s.n(side * side / 2)
		wl := makeWorkload(side, objects, s.n(40), 2)

		c, err := core.NewLocalCluster(8, nil, core.Options{CellSize: 50})
		if err != nil {
			panic(err)
		}
		if err := c.Coordinator.AddCameras(ctx, wl.cams, 100); err != nil {
			panic(err)
		}
		ingestAll(ctx, c, wl)

		central := baseline.NewCentral(baseline.CentralConfig{CellSize: 50})
		for _, b := range wl.batches {
			central.Ingest(b)
		}

		window := fullWindow(wl)
		rng := rand.New(rand.NewSource(3))
		queries := s.n(200)
		var distRange, distKNN, centRange, centKNN time.Duration
		for q := 0; q < queries; q++ {
			center := geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
			rect := geo.RectAround(center, 100)
			st := time.Now()
			if _, err := c.Coordinator.Range(ctx, rect, window, 0); err != nil {
				panic(err)
			}
			distRange += time.Since(st)
			st = time.Now()
			if _, err := c.Coordinator.KNN(ctx, center, window, 10); err != nil {
				panic(err)
			}
			distKNN += time.Since(st)
			st = time.Now()
			central.Range(rect, window, 0)
			centRange += time.Since(st)
			st = time.Now()
			central.KNN(center, window, 10)
			centKNN += time.Since(st)
		}
		n := time.Duration(queries)
		t.AddRow(side*side, central.Stored(), distRange/n, distKNN/n, centRange/n, centKNN/n)
		c.Stop()
	}
	return t
}

func fullWindow(wl *workload) wire.TimeWindow {
	var lo, hi time.Time
	for _, b := range wl.batches {
		for _, d := range b {
			if lo.IsZero() || d.Time.Before(lo) {
				lo = d.Time
			}
			if d.Time.After(hi) {
				hi = d.Time
			}
		}
	}
	return wire.TimeWindow{From: lo, To: hi}
}

// R6Index ablates the spatial index choice: build time plus range and kNN
// query time for the uniform grid, quadtree, R-tree (incremental and
// bulk-loaded), and the no-index linear scan. Expected shape: linear scan
// degrades linearly with n; tree/grid indexes stay logarithmic/near-constant;
// STR bulk loading beats incremental R-tree construction.
func R6Index(s Scale) *Table {
	t := &Table{
		ID:     "R6",
		Title:  "Spatial index ablation",
		Notes:  "uniform random points; 500 range + 500 kNN queries",
		Header: []string{"index", "points", "build", "range q", "knn q"},
	}
	world := geo.RectOf(0, 0, 2000, 2000)
	for _, n := range []int{s.n(20000), s.n(100000)} {
		rng := rand.New(rand.NewSource(4))
		items := make([]spatial.Item, n)
		for i := range items {
			items[i] = spatial.Item{ID: uint64(i + 1), P: geo.Pt(rng.Float64()*2000, rng.Float64()*2000)}
		}
		builders := []struct {
			name string
			mk   func() spatial.Index
		}{
			{"linear-scan", func() spatial.Index { return spatial.NewBruteForce() }},
			{"grid", func() spatial.Index { return spatial.NewGrid(50) }},
			{"quadtree", func() spatial.Index { return spatial.NewQuadtree(world, 32, 0) }},
			{"rtree", func() spatial.Index { return spatial.NewRTree(32) }},
			{"rtree-bulk", nil}, // special-cased below
		}
		queries := s.n(500)
		for _, b := range builders {
			var ix spatial.Index
			start := time.Now()
			if b.name == "rtree-bulk" {
				ix = spatial.BulkLoadRTree(items, 32)
			} else {
				ix = b.mk()
				for _, it := range items {
					ix.Insert(it.ID, it.P)
				}
			}
			build := time.Since(start)

			qrng := rand.New(rand.NewSource(5))
			var rangeDur, knnDur time.Duration
			for q := 0; q < queries; q++ {
				center := geo.Pt(qrng.Float64()*2000, qrng.Float64()*2000)
				rect := geo.RectAround(center, 50)
				st := time.Now()
				count := 0
				ix.Range(rect, func(spatial.Item) bool { count++; return true })
				rangeDur += time.Since(st)
				st = time.Now()
				ix.KNN(center, 10)
				knnDur += time.Since(st)
			}
			t.AddRow(b.name, n, build, rangeDur/time.Duration(queries), knnDur/time.Duration(queries))
		}
	}
	return t
}

// R7Continuous measures per-batch ingest cost as the number of installed
// continuous queries grows. Expected shape: cost grows linearly in installed
// queries (each observation is checked against each standing predicate), with
// a small constant floor.
func R7Continuous(s Scale) *Table {
	t := &Table{
		ID:     "R7",
		Title:  "Continuous-query scalability",
		Notes:  "ingest cost per observation vs installed standing queries",
		Header: []string{"queries", "events", "ingest time", "ns/event", "updates emitted"},
	}
	ctx := context.Background()
	wl := makeWorkload(8, s.n(200), s.n(30), 6)
	// One throwaway pass absorbs first-run allocation noise so the zero-query
	// row is comparable with the rest.
	{
		warm, err := core.NewLocalCluster(4, nil, core.Options{CellSize: 50, LostAfter: time.Hour})
		if err != nil {
			panic(err)
		}
		if err := warm.Coordinator.AddCameras(ctx, wl.cams, 100); err != nil {
			panic(err)
		}
		ingestAll(ctx, warm, wl)
		warm.Stop()
	}
	for _, nq := range []int{0, 8, 64, 256, 1024} {
		if nq > 0 {
			nq = s.n(nq)
		}
		c, err := core.NewLocalCluster(4, nil, core.Options{CellSize: 50, LostAfter: time.Hour})
		if err != nil {
			panic(err)
		}
		if err := c.Coordinator.AddCameras(ctx, wl.cams, 100); err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(7))
		chans := make([]<-chan wire.ContinuousUpdate, 0, nq)
		for q := 0; q < nq; q++ {
			center := geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
			_, ch, err := c.Coordinator.InstallContinuous(ctx, wire.ContinuousRange, geo.RectAround(center, 150), 0)
			if err != nil {
				panic(err)
			}
			chans = append(chans, ch)
		}
		accepted, dur := ingestAll(ctx, c, wl)
		updates := 0
		for _, ch := range chans {
			for {
				ok := false
				select {
				case _, ok = <-ch:
				default:
				}
				if !ok {
					break
				}
				updates++
			}
		}
		perEvent := float64(dur.Nanoseconds()) / float64(max(accepted, 1))
		t.AddRow(nq, accepted, dur, perEvent, updates)
		c.Stop()
	}
	return t
}

// R9Retention measures store footprint under different retention windows on
// an endless stream. Expected shape: records held plateau at
// rate × retention; unlimited retention grows linearly forever.
func R9Retention(s Scale) *Table {
	t := &Table{
		ID:     "R9",
		Title:  "Store footprint vs retention window",
		Notes:  "fixed-rate stream; plateau ≈ rate × retention",
		Header: []string{"retention", "stream events", "max records held", "final records", "evicted"},
	}
	ticks := s.n(600)
	for _, retention := range []time.Duration{0, 30 * time.Second, 2 * time.Minute, 10 * time.Minute} {
		store := stindex.NewStore(stindex.Config{CellSize: 50, BucketWidth: 5 * time.Second, Retention: retention})
		rng := rand.New(rand.NewSource(8))
		start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		maxHeld, total := 0, 0
		perTick := 20
		for i := 0; i < ticks; i++ {
			at := start.Add(time.Duration(i) * time.Second)
			for j := 0; j < perTick; j++ {
				total++
				store.Insert(stindex.Record{
					ObsID: uint64(total),
					Pos:   geo.Pt(rng.Float64()*2000, rng.Float64()*2000),
					Time:  at,
				})
			}
			if store.Len() > maxHeld {
				maxHeld = store.Len()
			}
		}
		label := "unlimited"
		if retention > 0 {
			label = retention.String()
		}
		t.AddRow(label, total, maxHeld, store.Len(), total-store.Len())
	}
	return t
}

// R11Histogram measures ST-histogram selectivity error as feedback
// accumulates — the ablation of the query-feedback design. Expected shape:
// error falls steeply with the first hundred feedbacks, then plateaus at the
// grid-resolution floor.
func R11Histogram(s Scale) *Table {
	t := &Table{
		ID:     "R11",
		Title:  "ST-histogram selectivity error vs feedback volume",
		Notes:  "hotspot ground truth (70% mass in 4% area); 20×20 grid",
		Header: []string{"feedbacks", "mean abs error", "lit fraction"},
	}
	world := geo.RectOf(0, 0, 1000, 1000)
	hot := geo.RectOf(0, 0, 200, 200)
	trueSel := func(q geo.Rect) float64 {
		hotPart := q.Intersect(hot).Area()
		inHot := hotPart / hot.Area() * 0.7
		full := q.Intersect(world).Area()
		outside := (full - hotPart) / (world.Area() - hot.Area()) * 0.3
		return inHot + outside
	}
	probes := make([]geo.Rect, 100)
	prng := rand.New(rand.NewSource(9))
	for i := range probes {
		c := geo.Pt(prng.Float64()*1000, prng.Float64()*1000)
		probes[i] = geo.RectAround(c, 40+prng.Float64()*80).Intersect(world)
	}
	meanErr := func(h *stindex.STHistogram) float64 {
		var sum float64
		for _, p := range probes {
			d := h.Estimate(p) - trueSel(p)
			if d < 0 {
				d = -d
			}
			sum += d
		}
		return sum / float64(len(probes))
	}
	for _, nf := range []int{0, 10, 50, 200, 1000, 5000} {
		nf := s.n(nf)
		if nf == 1 {
			nf = 0
		}
		h := stindex.NewSTHistogram(world, 20, 20)
		frng := rand.New(rand.NewSource(10))
		for i := 0; i < nf; i++ {
			c := geo.Pt(frng.Float64()*1000, frng.Float64()*1000)
			q := geo.RectAround(c, 30+frng.Float64()*120).Intersect(world)
			h.Feedback(q, trueSel(q))
		}
		t.AddRow(nf, meanErr(h), h.LitFraction())
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
