package stindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"time"
)

// This file is the sealed-chunk codec: once a run of observations ages past
// the store's seal horizon it is compacted into an immutable, delta-compressed
// byte blob. Chunks follow the wire.Format discipline (and metrictank's chunk
// format enum): byte 0 names the encoding, decoding dispatches on that tag,
// and an unknown tag or flag is a clean error — never a fallback to v1, since
// mis-decoding a future encoding as v1 would corrupt query answers silently.

// chunkFormat tags one encoding of a sealed chunk.
type chunkFormat byte

const (
	// chunkFormatV1 is a columnar delta encoding. Layout after the tag:
	//
	//	uvarint record count n (0 ends the chunk)
	//	byte    flags (bit 0: positions quantized)
	//	uvarint time unit (GCD of successive deltas, ns)
	//	varint  first timestamp (ns), then n-1 varint deltas in units
	//	uvarint first ObsID, then n-1 zigzag deltas
	//	uvarint first TargetID, then n-1 zigzag deltas
	//	uvarint first Camera, then n-1 zigzag deltas
	//	positions, X column then Y column:
	//	  quantized: varint first scaled coord, then n-1 zigzag deltas
	//	  raw: 8-byte big-endian float bits, then n-1 XOR'd values as
	//	       (significant-byte count, that many big-endian bytes)
	//
	// Tag 0 is reserved as detectably invalid.
	chunkFormatV1 chunkFormat = 1
)

// chunkFlagQuantized marks a chunk whose every coordinate sits exactly on the
// 1/posScale-meter grid, encoded as integer deltas instead of float XOR.
const chunkFlagQuantized byte = 1 << 0

// posScale is the quantized-position grid: 1/1024 m (sub-millimeter). A
// power of two, so scaling and unscaling are exact float operations and the
// quantized path is lossless by construction — coordinates that do not sit on
// the grid exactly take the XOR path instead of being rounded.
const posScale = 1 << 10

var (
	// ErrUnknownChunkFormat is returned when a chunk names a format (or
	// format-altering flag) this build does not implement.
	ErrUnknownChunkFormat = errors.New("stindex: unknown chunk format")
	// ErrCorruptChunk is returned when a chunk's body is truncated or
	// internally inconsistent. Decoding fails closed: no partial records.
	ErrCorruptChunk = errors.New("stindex: corrupt chunk")
)

// sealedChunk is one immutable compacted run of records for a spatial cell or
// a target history. Span is the inclusive record time range; bucket is the
// rollup time bucket the chunk belongs to (cell chunks never straddle rollup
// buckets, so rollup-answered buckets can skip their chunks wholesale).
type sealedChunk struct {
	bucket     int64
	start, end time.Time
	count      int
	data       []byte
}

// overlaps reports whether the chunk's span intersects [from, to].
func (c *sealedChunk) overlaps(from, to time.Time) bool {
	return !from.After(c.end) && !to.Before(c.start)
}

// quantizable reports whether v is exactly representable as an integer count
// of 1/posScale meters. NaN and ±Inf are not; neither is anything large
// enough to lose integer precision.
func quantizable(v float64) bool {
	if v == 0 {
		return !math.Signbit(v) // -0 would decode as +0; keep its bits via XOR
	}
	f := v * posScale // exact: posScale is a power of two
	return f == math.Trunc(f) && math.Abs(f) < 1<<53
}

// gcd64 folds |d| into the running GCD g.
func gcd64(g uint64, d int64) uint64 {
	u := uint64(d)
	if d < 0 {
		u = uint64(-d) // MinInt64 wraps to its own magnitude, which is correct
	}
	for u != 0 {
		g, u = u, g%u
	}
	return g
}

// appendXor appends one XOR'd float-bits value: a significant-byte count,
// then that many big-endian bytes. Consecutive positions of a slow-moving
// target share sign, exponent, and high mantissa bits, so the XOR's leading
// bytes are zero and drop out.
func appendXor(dst []byte, x uint64) []byte {
	sig := (bits.Len64(x) + 7) / 8
	dst = append(dst, byte(sig))
	for i := sig - 1; i >= 0; i-- {
		dst = append(dst, byte(x>>(uint(i)*8)))
	}
	return dst
}

// appendChunk appends the chunkFormatV1 encoding of recs onto dst. Record
// order is preserved exactly — the caller owns ordering policy (cell chunks
// are canonically (time, ObsID)-sorted; per-target chunks keep history
// order, which the merge at query time depends on).
func appendChunk(dst []byte, recs []Record) []byte {
	dst = append(dst, byte(chunkFormatV1))
	dst = binary.AppendUvarint(dst, uint64(len(recs)))
	if len(recs) == 0 {
		return dst
	}
	quant := true
	for i := range recs {
		if !quantizable(recs[i].Pos.X) || !quantizable(recs[i].Pos.Y) {
			quant = false
			break
		}
	}
	var flags byte
	if quant {
		flags |= chunkFlagQuantized
	}
	dst = append(dst, flags)

	// Time column: regular frame cadences make every delta a multiple of the
	// inter-frame gap, so dividing by the GCD collapses them to 1-2 bytes.
	g := uint64(0)
	for i := 1; i < len(recs); i++ {
		g = gcd64(g, recs[i].Time.UnixNano()-recs[i-1].Time.UnixNano())
	}
	unit := int64(1)
	if g != 0 && g <= math.MaxInt64 {
		unit = int64(g)
	}
	dst = binary.AppendUvarint(dst, uint64(unit))
	dst = binary.AppendVarint(dst, recs[0].Time.UnixNano())
	for i := 1; i < len(recs); i++ {
		dst = binary.AppendVarint(dst, (recs[i].Time.UnixNano()-recs[i-1].Time.UnixNano())/unit)
	}

	dst = binary.AppendUvarint(dst, recs[0].ObsID)
	for i := 1; i < len(recs); i++ {
		dst = binary.AppendVarint(dst, int64(recs[i].ObsID-recs[i-1].ObsID))
	}
	dst = binary.AppendUvarint(dst, recs[0].TargetID)
	for i := 1; i < len(recs); i++ {
		dst = binary.AppendVarint(dst, int64(recs[i].TargetID-recs[i-1].TargetID))
	}
	dst = binary.AppendUvarint(dst, uint64(recs[0].Camera))
	for i := 1; i < len(recs); i++ {
		dst = binary.AppendVarint(dst, int64(recs[i].Camera)-int64(recs[i-1].Camera))
	}

	if quant {
		dst = binary.AppendVarint(dst, int64(recs[0].Pos.X*posScale))
		for i := 1; i < len(recs); i++ {
			dst = binary.AppendVarint(dst, int64(recs[i].Pos.X*posScale)-int64(recs[i-1].Pos.X*posScale))
		}
		dst = binary.AppendVarint(dst, int64(recs[0].Pos.Y*posScale))
		for i := 1; i < len(recs); i++ {
			dst = binary.AppendVarint(dst, int64(recs[i].Pos.Y*posScale)-int64(recs[i-1].Pos.Y*posScale))
		}
		return dst
	}
	prev := math.Float64bits(recs[0].Pos.X)
	dst = binary.BigEndian.AppendUint64(dst, prev)
	for i := 1; i < len(recs); i++ {
		cur := math.Float64bits(recs[i].Pos.X)
		dst = appendXor(dst, cur^prev)
		prev = cur
	}
	prev = math.Float64bits(recs[0].Pos.Y)
	dst = binary.BigEndian.AppendUint64(dst, prev)
	for i := 1; i < len(recs); i++ {
		cur := math.Float64bits(recs[i].Pos.Y)
		dst = appendXor(dst, cur^prev)
		prev = cur
	}
	return dst
}

// chunkReader is a bounds-checked cursor over a chunk body. The first overrun
// or malformed varint latches err; every subsequent read is a no-op, so the
// decode loop stays branch-light and the caller checks err once.
type chunkReader struct {
	b   []byte
	off int
	err error
}

func (r *chunkReader) fail() {
	if r.err == nil {
		r.err = ErrCorruptChunk
	}
}

func (r *chunkReader) readByte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *chunkReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *chunkReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *chunkReader) full8() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *chunkReader) xor() uint64 {
	sig := int(r.readByte())
	if r.err != nil {
		return 0
	}
	if sig > 8 || r.off+sig > len(r.b) {
		r.fail()
		return 0
	}
	var v uint64
	for i := 0; i < sig; i++ {
		v = v<<8 | uint64(r.b[r.off+i])
	}
	r.off += sig
	return v
}

// decodeChunk parses a sealed chunk back into records. It fails closed: an
// unknown format tag or flag, a truncated body, an impossible record count,
// or trailing garbage all error without returning partial records.
func decodeChunk(data []byte) ([]Record, error) {
	if len(data) == 0 {
		return nil, ErrCorruptChunk
	}
	if chunkFormat(data[0]) != chunkFormatV1 {
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownChunkFormat, data[0])
	}
	r := &chunkReader{b: data, off: 1}
	n64 := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if n64 == 0 {
		if r.off != len(data) {
			return nil, ErrCorruptChunk
		}
		return nil, nil
	}
	// Every record costs at least one time-column byte, so a count beyond
	// the chunk size is corruption — reject before allocating.
	if n64 > uint64(len(data)) {
		return nil, ErrCorruptChunk
	}
	n := int(n64)
	flags := r.readByte()
	if flags&^chunkFlagQuantized != 0 {
		// Unknown flag bits change the layout; fail closed like an
		// unknown format rather than guessing.
		return nil, fmt.Errorf("%w: flags 0x%02x", ErrUnknownChunkFormat, flags)
	}
	recs := make([]Record, n)

	unit := int64(r.uvarint())
	if unit <= 0 {
		r.fail()
	}
	ns := r.varint()
	recs[0].Time = time.Unix(0, ns)
	for i := 1; i < n; i++ {
		ns += r.varint() * unit
		recs[i].Time = time.Unix(0, ns)
	}

	obs := r.uvarint()
	recs[0].ObsID = obs
	for i := 1; i < n; i++ {
		obs += uint64(r.varint())
		recs[i].ObsID = obs
	}
	tgt := r.uvarint()
	recs[0].TargetID = tgt
	for i := 1; i < n; i++ {
		tgt += uint64(r.varint())
		recs[i].TargetID = tgt
	}
	cam := int64(r.uvarint())
	recs[0].Camera = uint32(cam)
	for i := 1; i < n; i++ {
		cam += r.varint()
		recs[i].Camera = uint32(cam)
	}

	if flags&chunkFlagQuantized != 0 {
		ix := r.varint()
		recs[0].Pos.X = float64(ix) / posScale
		for i := 1; i < n; i++ {
			ix += r.varint()
			recs[i].Pos.X = float64(ix) / posScale
		}
		iy := r.varint()
		recs[0].Pos.Y = float64(iy) / posScale
		for i := 1; i < n; i++ {
			iy += r.varint()
			recs[i].Pos.Y = float64(iy) / posScale
		}
	} else {
		xb := r.full8()
		recs[0].Pos.X = math.Float64frombits(xb)
		for i := 1; i < n; i++ {
			xb ^= r.xor()
			recs[i].Pos.X = math.Float64frombits(xb)
		}
		yb := r.full8()
		recs[0].Pos.Y = math.Float64frombits(yb)
		for i := 1; i < n; i++ {
			yb ^= r.xor()
			recs[i].Pos.Y = math.Float64frombits(yb)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, ErrCorruptChunk
	}
	return recs, nil
}
