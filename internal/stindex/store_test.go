package stindex

import (
	"math/rand"
	"testing"
	"time"

	"stcam/internal/geo"
)

var t0 = time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return t0.Add(d) }

func rec(obs, target uint64, x, y float64, d time.Duration) Record {
	return Record{ObsID: obs, TargetID: target, Camera: 1, Pos: geo.Pt(x, y), Time: at(d)}
}

func TestStoreInsertAndRange(t *testing.T) {
	s := NewStore(Config{CellSize: 10, BucketWidth: time.Second})
	s.Insert(rec(1, 100, 5, 5, 0))
	s.Insert(rec(2, 100, 15, 5, time.Second))
	s.Insert(rec(3, 200, 50, 50, 2*time.Second))
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Spatial filter.
	got := s.RangeQuery(geo.RectOf(0, 0, 20, 10), at(0), at(time.Hour))
	if len(got) != 2 || got[0].ObsID != 1 || got[1].ObsID != 2 {
		t.Fatalf("range = %v", got)
	}
	// Temporal filter.
	got = s.RangeQuery(geo.RectOf(0, 0, 100, 100), at(time.Second), at(2*time.Second))
	if len(got) != 2 || got[0].ObsID != 2 || got[1].ObsID != 3 {
		t.Fatalf("time-filtered range = %v", got)
	}
	// Count agrees with RangeQuery.
	if c := s.Count(geo.RectOf(0, 0, 100, 100), at(time.Second), at(2*time.Second)); c != 2 {
		t.Errorf("Count = %d", c)
	}
	// Empty results.
	if got := s.RangeQuery(geo.RectOf(900, 900, 950, 950), at(0), at(time.Hour)); len(got) != 0 {
		t.Errorf("far range = %v", got)
	}
	if got := s.RangeQuery(geo.RectOf(0, 0, 100, 100), at(time.Hour), at(0)); len(got) != 0 {
		t.Errorf("inverted window = %v", got)
	}
	if !s.Latest().Equal(at(2 * time.Second)) {
		t.Errorf("Latest = %v", s.Latest())
	}
}

func TestStoreKNN(t *testing.T) {
	s := NewStore(Config{CellSize: 10, BucketWidth: time.Second})
	// A line of observations at x = 0, 10, 20, ..., 90.
	for i := 0; i < 10; i++ {
		s.Insert(rec(uint64(i+1), 0, float64(i*10), 0, time.Duration(i)*time.Second))
	}
	got := s.KNN(geo.Pt(0, 0), at(0), at(time.Hour), 3)
	if len(got) != 3 {
		t.Fatalf("KNN returned %d", len(got))
	}
	wantIDs := []uint64{1, 2, 3}
	for i, n := range got {
		if n.ObsID != wantIDs[i] {
			t.Fatalf("KNN order = %v", got)
		}
	}
	// Time window excludes the nearest observations.
	got = s.KNN(geo.Pt(0, 0), at(5*time.Second), at(time.Hour), 2)
	if len(got) != 2 || got[0].ObsID != 6 || got[1].ObsID != 7 {
		t.Fatalf("time-filtered KNN = %v", got)
	}
	// k = 0 and empty store.
	if got := s.KNN(geo.Pt(0, 0), at(0), at(time.Hour), 0); got != nil {
		t.Errorf("k=0 KNN = %v", got)
	}
	empty := NewStore(Config{})
	if got := empty.KNN(geo.Pt(0, 0), at(0), at(time.Hour), 3); got != nil {
		t.Errorf("empty KNN = %v", got)
	}
}

// TestStoreKNNMatchesBrute is the conformance property: ring-expansion KNN
// with time filtering returns exactly the brute-force answer.
func TestStoreKNNMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewStore(Config{CellSize: 25, BucketWidth: 5 * time.Second})
	var all []Record
	for i := 0; i < 2000; i++ {
		r := Record{
			ObsID: uint64(i + 1),
			Pos:   geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
			Time:  at(time.Duration(rng.Intn(600)) * time.Second),
		}
		s.Insert(r)
		all = append(all, r)
	}
	for trial := 0; trial < 100; trial++ {
		q := geo.Pt(rng.Float64()*1100-50, rng.Float64()*1100-50)
		from := at(time.Duration(rng.Intn(500)) * time.Second)
		to := from.Add(time.Duration(rng.Intn(200)) * time.Second)
		k := 1 + rng.Intn(15)

		type cand struct {
			id uint64
			d2 float64
		}
		var cands []cand
		for _, r := range all {
			if !r.Time.Before(from) && !r.Time.After(to) {
				cands = append(cands, cand{r.ObsID, q.Dist2(r.Pos)})
			}
		}
		// Brute-force top-k.
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				if cands[j].d2 < cands[i].d2 || (cands[j].d2 == cands[i].d2 && cands[j].id < cands[i].id) {
					cands[i], cands[j] = cands[j], cands[i]
				}
			}
			if i >= k {
				break
			}
		}
		want := k
		if len(cands) < k {
			want = len(cands)
		}
		got := s.KNN(q, from, to, k)
		if len(got) != want {
			t.Fatalf("trial %d: KNN size %d, want %d", trial, len(got), want)
		}
		for i := 0; i < want; i++ {
			if got[i].ObsID != cands[i].id {
				t.Fatalf("trial %d: rank %d = obs %d, want %d", trial, i, got[i].ObsID, cands[i].id)
			}
		}
	}
}

func TestTargetHistoryAndTrajectory(t *testing.T) {
	s := NewStore(Config{CellSize: 10, BucketWidth: time.Second})
	// Out-of-order inserts for the same target.
	s.Insert(rec(2, 7, 10, 0, 2*time.Second))
	s.Insert(rec(1, 7, 5, 0, time.Second))
	s.Insert(rec(3, 7, 15, 0, 3*time.Second))
	s.Insert(rec(4, 8, 99, 99, time.Second)) // different target
	s.Insert(rec(5, 0, 50, 50, time.Second)) // unassociated

	hist := s.TargetHistory(7, at(0), at(time.Hour))
	if len(hist) != 3 {
		t.Fatalf("history = %v", hist)
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Time.Before(hist[i-1].Time) {
			t.Fatal("history out of order")
		}
	}
	// Window slicing.
	hist = s.TargetHistory(7, at(2*time.Second), at(3*time.Second))
	if len(hist) != 2 || hist[0].ObsID != 2 {
		t.Fatalf("windowed history = %v", hist)
	}
	// Trajectory reconstruction.
	tr := s.Trajectory(7, at(0), at(time.Hour))
	if tr.Len() != 3 {
		t.Fatalf("trajectory len = %d", tr.Len())
	}
	p, err := tr.At(at(1500 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist(geo.Pt(7.5, 0)) > 1e-9 {
		t.Errorf("interpolated position = %v", p)
	}
	// Unknown and unassociated targets.
	if got := s.TargetHistory(999, at(0), at(time.Hour)); got != nil {
		t.Errorf("unknown target history = %v", got)
	}
	targets := s.Targets()
	if len(targets) != 2 || targets[0] != 7 || targets[1] != 8 {
		t.Errorf("Targets = %v", targets)
	}
}

func TestStoreEviction(t *testing.T) {
	s := NewStore(Config{CellSize: 10, BucketWidth: time.Second})
	for i := 0; i < 100; i++ {
		s.Insert(rec(uint64(i+1), 5, float64(i), 0, time.Duration(i)*time.Second))
	}
	removed := s.EvictBefore(at(50 * time.Second))
	if removed != 50 {
		t.Fatalf("evicted %d, want 50", removed)
	}
	if s.Len() != 50 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.RangeQuery(geo.RectOf(0, -1, 49, 1), at(0), at(time.Hour)); len(got) != 0 {
		t.Errorf("evicted records still visible: %v", got)
	}
	hist := s.TargetHistory(5, at(0), at(time.Hour))
	if len(hist) != 50 || hist[0].ObsID != 51 {
		t.Fatalf("target history after evict: len=%d first=%d", len(hist), hist[0].ObsID)
	}
	// Evict everything: target map must empty out.
	s.EvictBefore(at(time.Hour))
	if s.Len() != 0 || len(s.Targets()) != 0 || s.CellCount() != 0 {
		t.Errorf("store not empty after full evict: len=%d targets=%v cells=%d",
			s.Len(), s.Targets(), s.CellCount())
	}
}

func TestStoreRetentionAuto(t *testing.T) {
	s := NewStore(Config{CellSize: 10, BucketWidth: time.Second, Retention: 10 * time.Second})
	for i := 0; i < 100; i++ {
		s.Insert(rec(uint64(i+1), 0, float64(i%7), 0, time.Duration(i)*time.Second))
	}
	// Only ~ the last 10-11 seconds should survive.
	if s.Len() > 15 {
		t.Errorf("retention store holds %d records, want ≈ 11", s.Len())
	}
	got := s.RangeQuery(geo.RectOf(-1, -1, 10, 10), at(0), at(time.Hour))
	for _, r := range got {
		if r.Time.Before(at(89 * time.Second)) {
			t.Errorf("expired record survived: %v", r)
		}
	}
}

func TestStoreConcurrentReadsAndWrites(t *testing.T) {
	s := NewStore(Config{CellSize: 10, BucketWidth: time.Second})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			s.Insert(rec(uint64(i+1), uint64(i%10), float64(i%100), float64(i%50), time.Duration(i)*time.Millisecond))
		}
	}()
	for i := 0; i < 200; i++ {
		s.RangeQuery(geo.RectOf(0, 0, 100, 100), at(0), at(time.Hour))
		s.KNN(geo.Pt(50, 25), at(0), at(time.Hour), 5)
		s.TargetHistory(3, at(0), at(time.Hour))
	}
	<-done
	if s.Len() != 2000 {
		t.Errorf("Len = %d", s.Len())
	}
}
