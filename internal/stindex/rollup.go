package stindex

import (
	"math"
	"time"

	"stcam/internal/geo"
)

// A rollup is the pre-computed aggregate of one (spatial cell, coarse time
// bucket) worth of sealed records: a total count, the tight bounding rect of
// the record positions, and a density grid at RollupCellSize. Long-range
// Count and Heatmap queries whose window fully covers a rollup bucket are
// answered from these aggregates without touching the bucket's chunks; the
// in/out tests below are exact (bounds are actual record extents and rect
// boundaries are inclusive on both sides), so the rollup path returns the
// same answer the decoded records would — when it cannot prove that, it
// reports unresolvable and the caller decodes.

// rollupEntry aggregates the sealed records of one (cell, rollup bucket).
type rollupEntry struct {
	count  int64
	bounds geo.Rect
	grid   map[[2]int32]*rollupSquare
}

// rollupSquare is one density-grid square of a rollupEntry.
type rollupSquare struct {
	count  int64
	bounds geo.Rect
}

func newRollupEntry() *rollupEntry {
	return &rollupEntry{bounds: geo.EmptyRect(), grid: make(map[[2]int32]*rollupSquare)}
}

// add folds one record into the aggregate. gridSize is the store's
// RollupCellSize; the grid key matches Heatmap's keying exactly so rollup
// squares and query heat cells coincide when the sizes do.
func (e *rollupEntry) add(rec Record, gridSize float64) {
	e.count++
	e.bounds = e.bounds.UnionPoint(rec.Pos)
	key := [2]int32{
		int32(math.Floor(rec.Pos.X / gridSize)),
		int32(math.Floor(rec.Pos.Y / gridSize)),
	}
	sq := e.grid[key]
	if sq == nil {
		sq = &rollupSquare{bounds: geo.EmptyRect()}
		e.grid[key] = sq
	}
	sq.count++
	sq.bounds = sq.bounds.UnionPoint(rec.Pos)
}

// countIn returns the number of the entry's records inside r, and whether the
// aggregate can prove the answer. Bounds fully inside r include everything;
// bounds strictly outside exclude everything (Intersects counts shared edges,
// and Contains is boundary-inclusive, so "no intersection" really means no
// record can lie in r). A grid square straddling r's boundary makes the
// answer unprovable — the caller must decode.
func (e *rollupEntry) countIn(r geo.Rect) (int64, bool) {
	if r.ContainsRect(e.bounds) {
		return e.count, true
	}
	if !r.Intersects(e.bounds) {
		return 0, true
	}
	var total int64
	for _, sq := range e.grid {
		switch {
		case r.ContainsRect(sq.bounds):
			total += sq.count
		case !r.Intersects(sq.bounds):
		default:
			return 0, false
		}
	}
	return total, true
}

// heatInto folds the entry's density grid into acc and reports whether it
// could. It returns false — leaving acc untouched — when any square straddles
// r's boundary, in which case the caller falls back to decoding. The rollup
// grid and the query grid coincide (same size, same floor origin), so counts
// transfer key-for-key.
func (e *rollupEntry) heatInto(r geo.Rect, acc map[[2]int32]int64) bool {
	if !r.Intersects(e.bounds) {
		return true
	}
	for _, sq := range e.grid {
		if !r.ContainsRect(sq.bounds) && r.Intersects(sq.bounds) {
			return false
		}
	}
	for key, sq := range e.grid {
		if r.ContainsRect(sq.bounds) {
			acc[key] += sq.count
		}
	}
	return true
}

// rollupBucket maps a time to its rollup bucket index (floor division, so
// pre-epoch times bucket correctly).
func (s *Store) rollupBucket(t time.Time) int64 {
	return floorDiv64(t.UnixNano(), int64(s.cfg.RollupWidth))
}

// rollupBucketStart returns the inclusive start instant of a rollup bucket.
func (s *Store) rollupBucketStart(b int64) time.Time {
	return time.Unix(0, b*int64(s.cfg.RollupWidth))
}

// windowCoversBucket reports whether [from, to] fully covers rollup bucket b,
// i.e. every record the bucket can hold lies inside the window.
func (s *Store) windowCoversBucket(from, to time.Time, b int64) bool {
	start := s.rollupBucketStart(b)
	last := start.Add(s.cfg.RollupWidth - time.Nanosecond) // last instant inside b
	return !from.After(start) && !to.Before(last)
}

// rebuildRollupLocked recomputes the rollup entry of (key, bucket) from the
// cell's surviving chunks, deleting it when the bucket has none left. Caller
// holds the write lock; eviction calls this for every bucket it touched.
func (s *Store) rebuildRollupLocked(key cellKey, bucket int64) {
	var e *rollupEntry
	for _, c := range s.sealed[key] {
		if c.bucket != bucket {
			continue
		}
		recs, err := decodeChunk(c.data)
		if err != nil {
			panic("stindex: sealed chunk decode: " + err.Error())
		}
		if e == nil {
			e = newRollupEntry()
		}
		for _, rec := range recs {
			e.add(rec, s.cfg.RollupCellSize)
		}
	}
	buckets := s.rollups[key]
	if e == nil {
		delete(buckets, bucket)
		if len(buckets) == 0 {
			delete(s.rollups, key)
		}
		return
	}
	if buckets == nil {
		buckets = make(map[int64]*rollupEntry)
		s.rollups[key] = buckets
	}
	buckets[bucket] = e
}

func floorDiv64(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
