package stindex

import (
	"math"
	"math/rand"
	"testing"

	"stcam/internal/geo"
)

func TestHistogramUniformPrior(t *testing.T) {
	world := geo.RectOf(0, 0, 100, 100)
	h := NewSTHistogram(world, 10, 10)
	// A quarter of the world should estimate 0.25 under the uniform prior.
	if got := h.Estimate(geo.RectOf(0, 0, 50, 50)); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("quarter estimate = %v, want 0.25", got)
	}
	if got := h.Estimate(world); math.Abs(got-1) > 1e-9 {
		t.Errorf("full-world estimate = %v, want 1", got)
	}
	// Out-of-world queries estimate 0.
	if got := h.Estimate(geo.RectOf(200, 200, 300, 300)); got != 0 {
		t.Errorf("out-of-world estimate = %v", got)
	}
	if got := h.TotalMass(); math.Abs(got-1) > 1e-9 {
		t.Errorf("TotalMass = %v", got)
	}
	if got := h.LitFraction(); got != 0 {
		t.Errorf("LitFraction before feedback = %v", got)
	}
}

func TestHistogramFeedbackMovesEstimate(t *testing.T) {
	world := geo.RectOf(0, 0, 100, 100)
	h := NewSTHistogram(world, 10, 10)
	q := geo.RectOf(0, 0, 20, 20) // uniform prior says 0.04
	h.Feedback(q, 0.5)            // actually half the objects live here
	got := h.Estimate(q)
	if math.Abs(got-0.5) > 0.01 {
		t.Errorf("estimate after feedback = %v, want ≈ 0.5", got)
	}
	// Mass stays normalized and other regions shrink correspondingly.
	if m := h.TotalMass(); math.Abs(m-1) > 1e-6 {
		t.Errorf("TotalMass = %v", m)
	}
	rest := h.Estimate(geo.RectOf(20, 20, 100, 100))
	if rest > 0.5 {
		t.Errorf("unlit remainder = %v, want <= 0.5", rest)
	}
	if lf := h.LitFraction(); math.Abs(lf-0.04) > 1e-9 {
		t.Errorf("LitFraction = %v, want 0.04", lf)
	}
}

func TestHistogramPartialOverlapFeedback(t *testing.T) {
	world := geo.RectOf(0, 0, 100, 100)
	h := NewSTHistogram(world, 10, 10)
	// Query straddling a cell boundary at half depth: overlap fractions < 1.
	q := geo.RectOf(5, 0, 15, 10)
	h.Feedback(q, 0.2)
	got := h.Estimate(q)
	if math.Abs(got-0.2) > 0.15 {
		t.Errorf("estimate = %v, want ≈ 0.2", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	world := geo.RectOf(0, 0, 100, 100)
	h := NewSTHistogram(world, 4, 4)
	h.Feedback(geo.RectOf(0, 0, 50, 50), -3)
	if got := h.Estimate(geo.RectOf(0, 0, 50, 50)); got != 0 {
		t.Errorf("negative feedback estimate = %v, want 0", got)
	}
}

// TestHistogramConvergesWithFeedback encodes experiment R11's shape: with
// more feedback queries, estimates of a skewed distribution get closer to
// truth.
func TestHistogramConvergesWithFeedback(t *testing.T) {
	world := geo.RectOf(0, 0, 1000, 1000)
	hot := geo.RectOf(0, 0, 200, 200)
	// Ground truth: 70% of mass in the hotspot, 30% spread uniformly outside.
	trueSel := func(q geo.Rect) float64 {
		inHot := q.Intersect(hot).Area() / hot.Area() * 0.7
		full := q.Intersect(world).Area()
		hotPart := q.Intersect(hot).Area()
		outside := (full - hotPart) / (world.Area() - hot.Area()) * 0.3
		return inHot + outside
	}
	probe := geo.RectOf(50, 50, 150, 150) // inside the hotspot

	errAfter := func(nFeedback int) float64 {
		h := NewSTHistogram(world, 20, 20)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < nFeedback; i++ {
			c := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
			q := geo.RectAround(c, 30+rng.Float64()*120).Intersect(world)
			h.Feedback(q, trueSel(q))
		}
		return math.Abs(h.Estimate(probe) - trueSel(probe))
	}

	e0 := errAfter(0)
	e500 := errAfter(500)
	if e500 >= e0 {
		t.Errorf("feedback did not reduce error: e0=%v e500=%v", e0, e500)
	}
	if e500 > 0.1 {
		t.Errorf("error after 500 feedbacks = %v, want < 0.1", e500)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	world := geo.RectOf(0, 0, 100, 100)
	h := NewSTHistogram(world, 0, 0) // clamped to 1×1
	if got := h.Estimate(world); math.Abs(got-1) > 1e-9 {
		t.Errorf("1x1 estimate = %v", got)
	}
	h.Feedback(geo.RectOf(200, 0, 300, 100), 0.5) // disjoint: no-op
	if got := h.TotalMass(); math.Abs(got-1) > 1e-9 {
		t.Errorf("mass changed by disjoint feedback: %v", got)
	}
}
