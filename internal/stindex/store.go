// Package stindex implements the per-worker spatio-temporal observation
// store: a uniform spatial grid whose cells hold time-bucketed observation
// records, plus a per-target history index and a feedback-driven selectivity
// histogram. It answers the snapshot query repertoire of the framework —
// spatio-temporal range, k-nearest within a time window, target history and
// trajectory reconstruction — and supports retention eviction.
package stindex

import (
	"math"
	"sort"
	"sync"
	"time"

	"stcam/internal/geo"
	"stcam/internal/temporal"
)

// Record is one indexed observation. TargetID is the identity assigned by
// the tracking/association layer (0 when unassociated).
type Record struct {
	ObsID    uint64
	TargetID uint64
	Camera   uint32
	Pos      geo.Point
	Time     time.Time
}

// Neighbor is a kNN result record with its squared distance to the query.
type Neighbor struct {
	Record
	Dist2 float64
}

// Config sets the store geometry.
type Config struct {
	CellSize    float64       // spatial grid cell, meters (default 50)
	BucketWidth time.Duration // temporal bucket width (default 10s)
	Retention   time.Duration // 0 → keep everything until EvictBefore is called
}

func (c *Config) fill() {
	if c.CellSize <= 0 {
		c.CellSize = 50
	}
	if c.BucketWidth <= 0 {
		c.BucketWidth = 10 * time.Second
	}
}

// Store is the spatio-temporal index. Safe for concurrent use.
type Store struct {
	cfg Config

	mu       sync.RWMutex
	cells    map[cellKey]*temporal.BucketStore[Record]
	byTarget map[uint64][]Record // time-ordered per target
	n        int
	latest   time.Time
}

type cellKey struct{ cx, cy int32 }

// NewStore returns an empty store with the given configuration.
func NewStore(cfg Config) *Store {
	cfg.fill()
	return &Store{
		cfg:      cfg,
		cells:    make(map[cellKey]*temporal.BucketStore[Record]),
		byTarget: make(map[uint64][]Record),
	}
}

// Config returns the effective configuration.
func (s *Store) Config() Config { return s.cfg }

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// Latest returns the most recent record time seen (zero when empty).
func (s *Store) Latest() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.latest
}

func (s *Store) keyOf(p geo.Point) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / s.cfg.CellSize)),
		cy: int32(math.Floor(p.Y / s.cfg.CellSize)),
	}
}

// Insert adds a record. When Retention is configured, insertion of a record
// newer than everything seen also evicts expired data opportunistically.
func (s *Store) Insert(rec Record) {
	s.mu.Lock()
	key := s.keyOf(rec.Pos)
	cell, ok := s.cells[key]
	if !ok {
		cell = temporal.NewBucketStore[Record](s.cfg.BucketWidth)
		s.cells[key] = cell
	}
	cell.Add(rec.Time, rec)
	s.n++
	advanced := rec.Time.After(s.latest)
	if advanced {
		s.latest = rec.Time
	}
	if rec.TargetID != 0 {
		hist := s.byTarget[rec.TargetID]
		// Insert keeping time order; appends are the common case.
		if n := len(hist); n == 0 || !rec.Time.Before(hist[n-1].Time) {
			s.byTarget[rec.TargetID] = append(hist, rec)
		} else {
			i := sort.Search(n, func(i int) bool { return hist[i].Time.After(rec.Time) })
			hist = append(hist, Record{})
			copy(hist[i+1:], hist[i:])
			hist[i] = rec
			s.byTarget[rec.TargetID] = hist
		}
	}
	var cutoff time.Time
	if s.cfg.Retention > 0 && advanced {
		cutoff = s.latest.Add(-s.cfg.Retention)
	}
	s.mu.Unlock()
	if !cutoff.IsZero() {
		s.EvictBefore(cutoff)
	}
}

// RangeQuery returns the records inside r with time in [from, to], ordered by
// time then ObsID.
func (s *Store) RangeQuery(r geo.Rect, from, to time.Time) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r.IsEmpty() || to.Before(from) || s.n == 0 {
		return nil
	}
	var out []Record
	s.forEachCellIn(r, func(cell *temporal.BucketStore[Record]) {
		cell.Window(from, to, func(_ time.Time, rec Record) bool {
			if r.Contains(rec.Pos) {
				out = append(out, rec)
			}
			return true
		})
	})
	sortRecords(out)
	return out
}

// Count returns the number of records inside r with time in [from, to]
// without materializing them.
func (s *Store) Count(r geo.Rect, from, to time.Time) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r.IsEmpty() || to.Before(from) || s.n == 0 {
		return 0
	}
	count := 0
	s.forEachCellIn(r, func(cell *temporal.BucketStore[Record]) {
		cell.Window(from, to, func(_ time.Time, rec Record) bool {
			if r.Contains(rec.Pos) {
				count++
			}
			return true
		})
	})
	return count
}

// forEachCellIn visits every materialized cell overlapping r. Caller holds
// the read lock.
func (s *Store) forEachCellIn(r geo.Rect, fn func(*temporal.BucketStore[Record])) {
	lo, hi := s.keyOf(r.Min), s.keyOf(r.Max)
	nx, ny := int64(hi.cx)-int64(lo.cx)+1, int64(hi.cy)-int64(lo.cy)+1
	if nx*ny > int64(len(s.cells))*2 {
		bounds := r
		for key, cell := range s.cells {
			cellRect := s.cellRect(key)
			if cellRect.Intersects(bounds) {
				fn(cell)
			}
		}
		return
	}
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			if cell, ok := s.cells[cellKey{cx, cy}]; ok {
				fn(cell)
			}
		}
	}
}

func (s *Store) cellRect(k cellKey) geo.Rect {
	cs := s.cfg.CellSize
	return geo.RectOf(float64(k.cx)*cs, float64(k.cy)*cs, float64(k.cx+1)*cs, float64(k.cy+1)*cs)
}

// KNN returns the k records nearest to q among those with time in [from, to],
// ascending by distance with ObsID tie-break. It expands rings of grid cells
// outward from q, pruning once the k-th distance beats the next ring.
func (s *Store) KNN(q geo.Point, from, to time.Time, k int) []Neighbor {
	return s.KNNFunc(q, from, to, k, nil)
}

// KNNFunc is KNN with a candidate predicate: records for which keep returns
// false are skipped (nil keeps everything). The worker uses it to answer from
// primary-camera data only when replication is on.
func (s *Store) KNNFunc(q geo.Point, from, to time.Time, k int, keep func(Record) bool) []Neighbor {
	return s.KNNBounded(q, from, to, k, 0, keep)
}

// KNNBounded is KNNFunc with a pushed-down radius bound: when maxDist2 > 0,
// candidates with squared distance strictly greater than maxDist2 are
// discarded (the bound is inclusive, preserving ties at exactly maxDist2)
// and ring expansion stops as soon as the next ring cannot reach the bound.
// The coordinator's two-phase kNN uses this to keep later-phase probes from
// materializing candidates that cannot displace the current global top k.
func (s *Store) KNNBounded(q geo.Point, from, to time.Time, k int, maxDist2 float64, keep func(Record) bool) []Neighbor {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if k <= 0 || s.n == 0 || to.Before(from) {
		return nil
	}
	center := s.keyOf(q)
	maxRing := 1
	for key := range s.cells {
		dx := int(key.cx) - int(center.cx)
		if dx < 0 {
			dx = -dx
		}
		dy := int(key.cy) - int(center.cy)
		if dy < 0 {
			dy = -dy
		}
		if dx > maxRing {
			maxRing = dx
		}
		if dy > maxRing {
			maxRing = dy
		}
	}
	var best []Neighbor // max-heap by (Dist2, ObsID)
	less := func(a, b Neighbor) bool {
		if a.Dist2 != b.Dist2 {
			return a.Dist2 < b.Dist2
		}
		return a.ObsID < b.ObsID
	}
	offer := func(n Neighbor) {
		if len(best) < k {
			best = append(best, n)
			for i := len(best) - 1; i > 0; {
				p := (i - 1) / 2
				if less(best[p], best[i]) {
					best[p], best[i] = best[i], best[p]
					i = p
				} else {
					break
				}
			}
			return
		}
		if less(n, best[0]) {
			best[0] = n
			i := 0
			for {
				l, r := 2*i+1, 2*i+2
				largest := i
				if l < len(best) && less(best[largest], best[l]) {
					largest = l
				}
				if r < len(best) && less(best[largest], best[r]) {
					largest = r
				}
				if largest == i {
					break
				}
				best[i], best[largest] = best[largest], best[i]
				i = largest
			}
		}
	}
	scan := func(key cellKey) {
		cell, ok := s.cells[key]
		if !ok {
			return
		}
		cell.Window(from, to, func(_ time.Time, rec Record) bool {
			if keep == nil || keep(rec) {
				d2 := q.Dist2(rec.Pos)
				if maxDist2 > 0 && d2 > maxDist2 {
					return true
				}
				offer(Neighbor{Record: rec, Dist2: d2})
			}
			return true
		})
	}
	for ring := 0; ring <= maxRing; ring++ {
		if ring > 0 {
			minDist := float64(ring-1) * s.cfg.CellSize
			if minDist > 0 {
				if len(best) == k && minDist*minDist > best[0].Dist2 {
					break
				}
				if maxDist2 > 0 && minDist*minDist > maxDist2 {
					break
				}
			}
		}
		if ring == 0 {
			scan(center)
			continue
		}
		lo := int(center.cx) - ring
		hi := int(center.cx) + ring
		for cx := lo; cx <= hi; cx++ {
			scan(cellKey{int32(cx), center.cy - int32(ring)})
			scan(cellKey{int32(cx), center.cy + int32(ring)})
		}
		for cy := int(center.cy) - ring + 1; cy <= int(center.cy)+ring-1; cy++ {
			scan(cellKey{center.cx - int32(ring), int32(cy)})
			scan(cellKey{center.cx + int32(ring), int32(cy)})
		}
	}
	sort.Slice(best, func(i, j int) bool { return less(best[i], best[j]) })
	return best
}

// HeatCell accumulates the observation count of one heatmap cell.
type HeatCell struct {
	CX, CY int32
	Count  int64
}

// Heatmap aggregates observation density over r and [from, to] into square
// cells of the given size, applying the optional keep predicate. Only
// non-empty cells are returned, unordered.
func (s *Store) Heatmap(r geo.Rect, from, to time.Time, cellSize float64, keep func(Record) bool) []HeatCell {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r.IsEmpty() || to.Before(from) || s.n == 0 || cellSize <= 0 {
		return nil
	}
	acc := make(map[[2]int32]int64)
	s.forEachCellIn(r, func(cell *temporal.BucketStore[Record]) {
		cell.Window(from, to, func(_ time.Time, rec Record) bool {
			if !r.Contains(rec.Pos) {
				return true
			}
			if keep != nil && !keep(rec) {
				return true
			}
			key := [2]int32{
				int32(math.Floor(rec.Pos.X / cellSize)),
				int32(math.Floor(rec.Pos.Y / cellSize)),
			}
			acc[key]++
			return true
		})
	})
	out := make([]HeatCell, 0, len(acc))
	for key, n := range acc {
		out = append(out, HeatCell{CX: key[0], CY: key[1], Count: n})
	}
	return out
}

// TargetHistory returns the records associated with a target in [from, to],
// time-ordered.
func (s *Store) TargetHistory(id uint64, from, to time.Time) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	hist := s.byTarget[id]
	if len(hist) == 0 || to.Before(from) {
		return nil
	}
	lo := sort.Search(len(hist), func(i int) bool { return !hist[i].Time.Before(from) })
	hi := sort.Search(len(hist), func(i int) bool { return hist[i].Time.After(to) })
	if lo >= hi {
		return nil
	}
	out := make([]Record, hi-lo)
	copy(out, hist[lo:hi])
	return out
}

// TargetCount returns the number of records associated with a target.
func (s *Store) TargetCount(id uint64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byTarget[id])
}

// Trajectory reconstructs a target's path over [from, to] from its indexed
// observations.
func (s *Store) Trajectory(id uint64, from, to time.Time) geo.Trajectory {
	recs := s.TargetHistory(id, from, to)
	var tr geo.Trajectory
	for _, rec := range recs {
		tr.Append(rec.Time, rec.Pos)
	}
	return tr
}

// Targets returns the IDs with at least one associated record, sorted.
func (s *Store) Targets() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]uint64, 0, len(s.byTarget))
	for id := range s.byTarget {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EvictBefore removes every record older than cutoff, returning the count.
func (s *Store) EvictBefore(cutoff time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for key, cell := range s.cells {
		removed += cell.EvictBefore(cutoff)
		if cell.Len() == 0 {
			delete(s.cells, key)
		}
	}
	for id, hist := range s.byTarget {
		lo := sort.Search(len(hist), func(i int) bool { return !hist[i].Time.Before(cutoff) })
		if lo == 0 {
			continue
		}
		if lo == len(hist) {
			delete(s.byTarget, id)
			continue
		}
		s.byTarget[id] = append([]Record(nil), hist[lo:]...)
	}
	s.n -= removed
	return removed
}

// CellCount returns the number of materialized spatial cells.
func (s *Store) CellCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.cells)
}

func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].Time.Equal(recs[j].Time) {
			return recs[i].Time.Before(recs[j].Time)
		}
		return recs[i].ObsID < recs[j].ObsID
	})
}
