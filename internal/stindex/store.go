// Package stindex implements the per-worker spatio-temporal observation
// store: a uniform spatial grid whose cells hold time-bucketed observation
// records, plus a per-target history index and a feedback-driven selectivity
// histogram. It answers the snapshot query repertoire of the framework —
// spatio-temporal range, k-nearest within a time window, target history and
// trajectory reconstruction — and supports retention eviction.
//
// With SealHorizon configured the store is tiered: recent records stay in
// mutable bucket cells (the hot tier), and records aging past the horizon are
// compacted into immutable delta-compressed chunks with per-rollup-bucket
// aggregates (chunk.go, rollup.go). Queries consult both tiers and return
// exactly what the flat store would; the differential suite in
// tier_differential_test.go holds that equivalence across seal boundaries,
// eviction and out-of-order ingest.
package stindex

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stcam/internal/geo"
	"stcam/internal/temporal"
)

// Record is one indexed observation. TargetID is the identity assigned by
// the tracking/association layer (0 when unassociated).
type Record struct {
	ObsID    uint64
	TargetID uint64
	Camera   uint32
	Pos      geo.Point
	Time     time.Time
}

// Neighbor is a kNN result record with its squared distance to the query.
type Neighbor struct {
	Record
	Dist2 float64
}

// Config sets the store geometry.
type Config struct {
	CellSize    float64       // spatial grid cell, meters (default 50)
	BucketWidth time.Duration // temporal bucket width (default 10s)
	Retention   time.Duration // 0 → keep everything until EvictBefore is called

	// SealHorizon enables the sealed tier: records older than latest −
	// SealHorizon are compacted into immutable compressed chunks. 0 keeps
	// the store flat (everything hot), the pre-tiering behavior.
	SealHorizon time.Duration
	// RollupWidth is the coarse time bucket for sealed-tier aggregates
	// (default 16 × BucketWidth, rounded up to a BucketWidth multiple).
	RollupWidth time.Duration
	// RollupCellSize is the sealed-tier density-grid square (default
	// CellSize). Heatmap queries at exactly this cell size are answered
	// from rollups without decoding.
	RollupCellSize float64
	// ChunkTarget caps records per sealed chunk (default 512).
	ChunkTarget int
}

func (c *Config) fill() {
	if c.CellSize <= 0 {
		c.CellSize = 50
	}
	if c.BucketWidth <= 0 {
		c.BucketWidth = 10 * time.Second
	}
	if c.SealHorizon > 0 {
		if c.RollupWidth <= 0 {
			c.RollupWidth = 16 * c.BucketWidth
		}
		if rem := c.RollupWidth % c.BucketWidth; rem != 0 {
			c.RollupWidth += c.BucketWidth - rem
		}
		if c.RollupCellSize <= 0 {
			c.RollupCellSize = c.CellSize
		}
		if c.ChunkTarget <= 0 {
			c.ChunkTarget = 512
		}
	}
}

// Maintenance cadences for streams that do not advance the high-water mark:
// a late/replayed stream (timestamps ≤ latest) must still trigger retention
// eviction and straggler sealing, or expired data accumulates unboundedly
// until a newer record happens to arrive.
const (
	evictCheckEvery = 256  // inserts between forced retention checks
	sealCheckEvery  = 1024 // pre-frontier inserts between straggler seal sweeps
)

// Store is the spatio-temporal index. Safe for concurrent use.
type Store struct {
	cfg Config

	mu       sync.RWMutex
	cells    map[cellKey]*temporal.BucketStore[Record]
	byTarget map[uint64][]Record // time-ordered per target (hot tier)
	n        int                 // cell-side records across both tiers
	latest   time.Time

	// Sealed tier (cfg.SealHorizon > 0). sealed holds each cell's chunks in
	// seal order; rollups aggregates them per rollup bucket; targetSealed
	// holds per-target history prefixes in history order. sealFrontier is
	// the exclusive upper bound of sealed time: after a seal sweep no hot
	// record is older than it (late arrivals may dip below until the next
	// sweep compacts them).
	sealed        map[cellKey][]*sealedChunk
	rollups       map[cellKey]map[int64]*rollupEntry
	targetSealed  map[uint64][]*sealedChunk
	sealFrontier  time.Time
	lateSinceSeal int

	earliest   time.Time // eviction watermark: no record is older than this
	sinceEvict int
	gen        uint64 // bumped on every mutation (insert/seal/evict)

	sealedChunks  int
	sealedRecords int
	sealedBytes   int64
	targetChunks  int
	targetRecords int
	targetBytes   int64

	queryDecodes atomic.Uint64 // chunks decoded to answer queries
	rollupHits   atomic.Uint64 // query buckets answered from rollups alone
}

type cellKey struct{ cx, cy int32 }

// NewStore returns an empty store with the given configuration.
func NewStore(cfg Config) *Store {
	cfg.fill()
	return &Store{
		cfg:          cfg,
		cells:        make(map[cellKey]*temporal.BucketStore[Record]),
		byTarget:     make(map[uint64][]Record),
		sealed:       make(map[cellKey][]*sealedChunk),
		rollups:      make(map[cellKey]map[int64]*rollupEntry),
		targetSealed: make(map[uint64][]*sealedChunk),
	}
}

// Config returns the effective configuration.
func (s *Store) Config() Config { return s.cfg }

// Len returns the number of stored records (hot + sealed).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// Latest returns the most recent record time seen (zero when empty).
func (s *Store) Latest() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.latest
}

// Gen returns a counter that changes on every mutation (insert, seal,
// eviction). Callers caching derived views — the worker's heartbeat summary —
// key on (Gen, ...) so that any mutation invalidates, including an eviction
// followed by inserts that happen to restore the same Len and Latest.
func (s *Store) Gen() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// TierStats reports sealed-tier sizes and query-path counters. All zeros when
// the store runs flat.
type TierStats struct {
	SealedChunks  int    // cell-side chunks resident
	SealedRecords int    // records held in cell-side chunks
	SealedBytes   int64  // encoded bytes of cell-side chunks
	TargetChunks  int    // per-target history chunks resident
	TargetRecords int    // records held in target chunks
	TargetBytes   int64  // encoded bytes of target chunks
	QueryDecodes  uint64 // cumulative chunks decoded to answer queries
	RollupHits    uint64 // cumulative query buckets answered from rollups
}

// TierStats returns a snapshot of the sealed tier.
func (s *Store) TierStats() TierStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return TierStats{
		SealedChunks:  s.sealedChunks,
		SealedRecords: s.sealedRecords,
		SealedBytes:   s.sealedBytes,
		TargetChunks:  s.targetChunks,
		TargetRecords: s.targetRecords,
		TargetBytes:   s.targetBytes,
		QueryDecodes:  s.queryDecodes.Load(),
		RollupHits:    s.rollupHits.Load(),
	}
}

func (s *Store) keyOf(p geo.Point) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / s.cfg.CellSize)),
		cy: int32(math.Floor(p.Y / s.cfg.CellSize)),
	}
}

// Insert adds a record. When Retention is configured, expired data is evicted
// opportunistically — on inserts that advance the high-water mark and on a
// record-count cadence for late/replayed streams. When SealHorizon is
// configured, aged buckets are compacted into the sealed tier on the way.
// All maintenance runs inside the same critical section as the insert:
// readers can never observe already-expired records, and two racing inserts
// cannot both run a full eviction sweep.
func (s *Store) Insert(rec Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(rec)
}

func (s *Store) insertLocked(rec Record) {
	key := s.keyOf(rec.Pos)
	cell, ok := s.cells[key]
	if !ok {
		cell = temporal.NewBucketStore[Record](s.cfg.BucketWidth)
		s.cells[key] = cell
	}
	cell.Add(rec.Time, rec)
	s.n++
	s.gen++
	advanced := rec.Time.After(s.latest)
	if advanced {
		s.latest = rec.Time
	}
	if s.earliest.IsZero() || rec.Time.Before(s.earliest) {
		s.earliest = rec.Time
	}
	if rec.TargetID != 0 {
		hist := s.byTarget[rec.TargetID]
		// Insert keeping time order; appends are the common case.
		if n := len(hist); n == 0 || !rec.Time.Before(hist[n-1].Time) {
			s.byTarget[rec.TargetID] = append(hist, rec)
		} else {
			i := sort.Search(n, func(i int) bool { return hist[i].Time.After(rec.Time) })
			hist = append(hist, Record{})
			copy(hist[i+1:], hist[i:])
			hist[i] = rec
			s.byTarget[rec.TargetID] = hist
		}
	}
	if s.cfg.SealHorizon > 0 {
		if !s.sealFrontier.IsZero() && rec.Time.Before(s.sealFrontier) {
			s.lateSinceSeal++
		}
		frontier := s.latest.Add(-s.cfg.SealHorizon)
		// Seal once per rollup bucket of frontier progress, or when enough
		// stragglers landed behind the frontier to be worth compacting.
		if frontier.Sub(s.sealFrontier) >= s.cfg.RollupWidth || s.lateSinceSeal >= sealCheckEvery {
			s.sealLocked(frontier)
		}
	}
	if s.cfg.Retention > 0 {
		s.sinceEvict++
		if advanced || s.sinceEvict >= evictCheckEvery {
			s.sinceEvict = 0
			cutoff := s.latest.Add(-s.cfg.Retention)
			// Watermark check keeps the no-op case O(1): a sweep runs only
			// when something can actually be older than the cutoff.
			if s.earliest.Before(cutoff) {
				s.evictLocked(cutoff)
			}
		}
	}
}

// Seal compacts every record older than latest − SealHorizon into the sealed
// tier and returns how many records moved. Inserts do this opportunistically;
// Seal forces it (tests, benchmarks, explicit compaction). No-op on a flat
// store.
func (s *Store) Seal() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.SealHorizon <= 0 || s.latest.IsZero() {
		return 0
	}
	return s.sealLocked(s.latest.Add(-s.cfg.SealHorizon))
}

// sealLocked moves every cell record strictly before the frontier into
// sealed chunks (grouped by rollup bucket, split at ChunkTarget) and seals
// the matching per-target history prefixes. Record counts do not change —
// records move between tiers. Caller holds the write lock.
func (s *Store) sealLocked(frontier time.Time) int {
	if frontier.After(s.sealFrontier) {
		s.sealFrontier = frontier
	} else {
		// Straggler sweep: re-seal up to the existing frontier.
		frontier = s.sealFrontier
	}
	s.lateSinceSeal = 0
	if frontier.IsZero() {
		return 0
	}
	s.gen++
	hi := frontier.Add(-time.Nanosecond) // Window is inclusive; seal t < frontier
	sealedCount := 0
	for key, cell := range s.cells {
		if start, _, ok := cell.Span(); !ok || !start.Before(frontier) {
			continue
		}
		var recs []Record
		cell.Window(time.Time{}, hi, func(_ time.Time, rec Record) bool {
			recs = append(recs, rec)
			return true
		})
		if len(recs) == 0 {
			continue
		}
		sortRecords(recs)
		cell.EvictBefore(frontier) // removes exactly the records collected above
		if cell.Len() == 0 {
			delete(s.cells, key)
		}
		s.sealCellRecordsLocked(key, recs)
		sealedCount += len(recs)
	}
	for id, hist := range s.byTarget {
		lo := sort.Search(len(hist), func(i int) bool { return !hist[i].Time.Before(frontier) })
		if lo == 0 {
			continue
		}
		s.sealTargetRecordsLocked(id, hist[:lo])
		if lo == len(hist) {
			delete(s.byTarget, id)
		} else {
			s.byTarget[id] = append([]Record(nil), hist[lo:]...)
		}
	}
	return sealedCount
}

// sealCellRecordsLocked encodes time-sorted records of one cell into chunks
// and folds them into the cell's rollups. Chunks never straddle rollup
// buckets, so a rollup-answered bucket skips its chunks wholesale.
func (s *Store) sealCellRecordsLocked(key cellKey, recs []Record) {
	for i := 0; i < len(recs); {
		b := s.rollupBucket(recs[i].Time)
		j := i + 1
		for j < len(recs) && s.rollupBucket(recs[j].Time) == b {
			j++
		}
		buckets := s.rollups[key]
		if buckets == nil {
			buckets = make(map[int64]*rollupEntry)
			s.rollups[key] = buckets
		}
		e := buckets[b]
		if e == nil {
			e = newRollupEntry()
			buckets[b] = e
		}
		for k := i; k < j; k++ {
			e.add(recs[k], s.cfg.RollupCellSize)
		}
		for k := i; k < j; k += s.cfg.ChunkTarget {
			end := k + s.cfg.ChunkTarget
			if end > j {
				end = j
			}
			c := newSealedChunk(b, recs[k:end])
			s.sealed[key] = append(s.sealed[key], c)
			s.sealedChunks++
			s.sealedRecords += c.count
			s.sealedBytes += int64(len(c.data))
		}
		i = j
	}
}

// sealTargetRecordsLocked encodes a history prefix (already time-ordered)
// into per-target chunks, preserving order: the concatenation of a target's
// chunks in seal order plus its hot tail reproduces the flat history array.
func (s *Store) sealTargetRecordsLocked(id uint64, prefix []Record) {
	for k := 0; k < len(prefix); k += s.cfg.ChunkTarget {
		end := k + s.cfg.ChunkTarget
		if end > len(prefix) {
			end = len(prefix)
		}
		c := newSealedChunk(s.rollupBucket(prefix[k].Time), prefix[k:end])
		s.targetSealed[id] = append(s.targetSealed[id], c)
		s.targetChunks++
		s.targetRecords += c.count
		s.targetBytes += int64(len(c.data))
	}
}

// newSealedChunk encodes time-ordered records into one immutable chunk.
func newSealedChunk(bucket int64, recs []Record) *sealedChunk {
	return &sealedChunk{
		bucket: bucket,
		start:  recs[0].Time,
		end:    recs[len(recs)-1].Time,
		count:  len(recs),
		data:   appendChunk(nil, recs),
	}
}

// decodeForQuery decodes a sealed chunk on the query path, counting the
// decode. Sealed data is immutable after encode, so a failure here is a
// program bug, not an input condition.
func (s *Store) decodeForQuery(c *sealedChunk) []Record {
	recs, err := decodeChunk(c.data)
	if err != nil {
		panic("stindex: sealed chunk decode: " + err.Error())
	}
	s.queryDecodes.Add(1)
	return recs
}

// scanSealed decodes the cell's sealed chunks overlapping [from, to] and
// calls fn for each record inside the window; chunks outside the window are
// skipped without decoding. Caller holds (at least) the read lock.
func (s *Store) scanSealed(key cellKey, from, to time.Time, fn func(Record)) {
	for _, c := range s.sealed[key] {
		if !c.overlaps(from, to) {
			continue
		}
		for _, rec := range s.decodeForQuery(c) {
			if !rec.Time.Before(from) && !rec.Time.After(to) {
				fn(rec)
			}
		}
	}
}

// RangeQuery returns the records inside r with time in [from, to], ordered by
// time then ObsID.
func (s *Store) RangeQuery(r geo.Rect, from, to time.Time) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r.IsEmpty() || to.Before(from) || s.n == 0 {
		return nil
	}
	var out []Record
	s.forEachCellKeyIn(r, func(key cellKey) {
		if cell, ok := s.cells[key]; ok {
			cell.Window(from, to, func(_ time.Time, rec Record) bool {
				if r.Contains(rec.Pos) {
					out = append(out, rec)
				}
				return true
			})
		}
		s.scanSealed(key, from, to, func(rec Record) {
			if r.Contains(rec.Pos) {
				out = append(out, rec)
			}
		})
	})
	sortRecords(out)
	return out
}

// Count returns the number of records inside r with time in [from, to]
// without materializing them. Sealed rollup buckets fully covered by the
// window and spatially provable against r are answered from aggregates
// without decoding.
func (s *Store) Count(r geo.Rect, from, to time.Time) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r.IsEmpty() || to.Before(from) || s.n == 0 {
		return 0
	}
	count := 0
	s.forEachCellKeyIn(r, func(key cellKey) {
		if cell, ok := s.cells[key]; ok {
			cell.Window(from, to, func(_ time.Time, rec Record) bool {
				if r.Contains(rec.Pos) {
					count++
				}
				return true
			})
		}
		count += s.countSealedLocked(key, r, from, to)
	})
	return count
}

// countSealedLocked counts one cell's sealed records in r × [from, to],
// answering whole rollup buckets from aggregates when provable and decoding
// only the rest.
func (s *Store) countSealedLocked(key cellKey, r geo.Rect, from, to time.Time) int {
	chunks := s.sealed[key]
	if len(chunks) == 0 {
		return 0
	}
	count := 0
	var resolved map[int64]bool
	for b, e := range s.rollups[key] {
		if !s.windowCoversBucket(from, to, b) {
			continue
		}
		if n, ok := e.countIn(r); ok {
			count += int(n)
			if resolved == nil {
				resolved = make(map[int64]bool)
			}
			resolved[b] = true
			s.rollupHits.Add(1)
		}
	}
	for _, c := range chunks {
		if resolved[c.bucket] || !c.overlaps(from, to) {
			continue
		}
		for _, rec := range s.decodeForQuery(c) {
			if !rec.Time.Before(from) && !rec.Time.After(to) && r.Contains(rec.Pos) {
				count++
			}
		}
	}
	return count
}

// forEachCellKeyIn visits every cell key overlapping r that has data in
// either tier. Caller holds the read lock.
func (s *Store) forEachCellKeyIn(r geo.Rect, fn func(cellKey)) {
	lo, hi := s.keyOf(r.Min), s.keyOf(r.Max)
	nx, ny := int64(hi.cx)-int64(lo.cx)+1, int64(hi.cy)-int64(lo.cy)+1
	if nx*ny > int64(len(s.cells)+len(s.sealed))*2 {
		for key := range s.cells {
			if s.cellRect(key).Intersects(r) {
				fn(key)
			}
		}
		for key := range s.sealed {
			if _, hot := s.cells[key]; hot {
				continue // already visited
			}
			if s.cellRect(key).Intersects(r) {
				fn(key)
			}
		}
		return
	}
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			key := cellKey{cx, cy}
			_, hot := s.cells[key]
			if !hot {
				if _, ok := s.sealed[key]; !ok {
					continue
				}
			}
			fn(key)
		}
	}
}

func (s *Store) cellRect(k cellKey) geo.Rect {
	cs := s.cfg.CellSize
	return geo.RectOf(float64(k.cx)*cs, float64(k.cy)*cs, float64(k.cx+1)*cs, float64(k.cy+1)*cs)
}

// KNN returns the k records nearest to q among those with time in [from, to],
// ascending by distance with ObsID tie-break. It expands rings of grid cells
// outward from q, pruning once the k-th distance beats the next ring.
func (s *Store) KNN(q geo.Point, from, to time.Time, k int) []Neighbor {
	return s.KNNFunc(q, from, to, k, nil)
}

// KNNFunc is KNN with a candidate predicate: records for which keep returns
// false are skipped (nil keeps everything). The worker uses it to answer from
// primary-camera data only when replication is on.
func (s *Store) KNNFunc(q geo.Point, from, to time.Time, k int, keep func(Record) bool) []Neighbor {
	return s.KNNBounded(q, from, to, k, 0, keep)
}

// KNNBounded is KNNFunc with a pushed-down radius bound: when maxDist2 > 0,
// candidates with squared distance strictly greater than maxDist2 are
// discarded (the bound is inclusive, preserving ties at exactly maxDist2)
// and ring expansion stops as soon as the next ring cannot reach the bound.
// The coordinator's two-phase kNN uses this to keep later-phase probes from
// materializing candidates that cannot displace the current global top k.
func (s *Store) KNNBounded(q geo.Point, from, to time.Time, k int, maxDist2 float64, keep func(Record) bool) []Neighbor {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if k <= 0 || s.n == 0 || to.Before(from) {
		return nil
	}
	center := s.keyOf(q)
	maxRing := 1
	widen := func(key cellKey) {
		dx := int(key.cx) - int(center.cx)
		if dx < 0 {
			dx = -dx
		}
		dy := int(key.cy) - int(center.cy)
		if dy < 0 {
			dy = -dy
		}
		if dx > maxRing {
			maxRing = dx
		}
		if dy > maxRing {
			maxRing = dy
		}
	}
	for key := range s.cells {
		widen(key)
	}
	for key := range s.sealed {
		widen(key)
	}
	var best []Neighbor // max-heap by (Dist2, ObsID)
	less := func(a, b Neighbor) bool {
		if a.Dist2 != b.Dist2 {
			return a.Dist2 < b.Dist2
		}
		return a.ObsID < b.ObsID
	}
	offer := func(n Neighbor) {
		if len(best) < k {
			best = append(best, n)
			for i := len(best) - 1; i > 0; {
				p := (i - 1) / 2
				if less(best[p], best[i]) {
					best[p], best[i] = best[i], best[p]
					i = p
				} else {
					break
				}
			}
			return
		}
		if less(n, best[0]) {
			best[0] = n
			i := 0
			for {
				l, r := 2*i+1, 2*i+2
				largest := i
				if l < len(best) && less(best[largest], best[l]) {
					largest = l
				}
				if r < len(best) && less(best[largest], best[r]) {
					largest = r
				}
				if largest == i {
					break
				}
				best[i], best[largest] = best[largest], best[i]
				i = largest
			}
		}
	}
	consider := func(rec Record) {
		if keep == nil || keep(rec) {
			d2 := q.Dist2(rec.Pos)
			if maxDist2 > 0 && d2 > maxDist2 {
				return
			}
			offer(Neighbor{Record: rec, Dist2: d2})
		}
	}
	scan := func(key cellKey) {
		if cell, ok := s.cells[key]; ok {
			cell.Window(from, to, func(_ time.Time, rec Record) bool {
				consider(rec)
				return true
			})
		}
		s.scanSealed(key, from, to, consider)
	}
	for ring := 0; ring <= maxRing; ring++ {
		if ring > 0 {
			minDist := float64(ring-1) * s.cfg.CellSize
			if minDist > 0 {
				if len(best) == k && minDist*minDist > best[0].Dist2 {
					break
				}
				if maxDist2 > 0 && minDist*minDist > maxDist2 {
					break
				}
			}
		}
		if ring == 0 {
			scan(center)
			continue
		}
		lo := int(center.cx) - ring
		hi := int(center.cx) + ring
		for cx := lo; cx <= hi; cx++ {
			scan(cellKey{int32(cx), center.cy - int32(ring)})
			scan(cellKey{int32(cx), center.cy + int32(ring)})
		}
		for cy := int(center.cy) - ring + 1; cy <= int(center.cy)+ring-1; cy++ {
			scan(cellKey{center.cx - int32(ring), int32(cy)})
			scan(cellKey{center.cx + int32(ring), int32(cy)})
		}
	}
	sort.Slice(best, func(i, j int) bool { return less(best[i], best[j]) })
	return best
}

// HeatCell accumulates the observation count of one heatmap cell.
type HeatCell struct {
	CX, CY int32
	Count  int64
}

// Heatmap aggregates observation density over r and [from, to] into square
// cells of the given size, applying the optional keep predicate. Only
// non-empty cells are returned, unordered. With keep == nil and cellSize
// equal to the configured RollupCellSize, sealed rollup buckets fully covered
// by the window fold their pre-computed density grids straight into the
// result without decoding.
func (s *Store) Heatmap(r geo.Rect, from, to time.Time, cellSize float64, keep func(Record) bool) []HeatCell {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r.IsEmpty() || to.Before(from) || s.n == 0 || cellSize <= 0 {
		return nil
	}
	// Rollup grids count every record, so the aggregate path needs keep to
	// be absent and the query grid to coincide with the rollup grid exactly
	// (same size ⇒ same floor keying; a coarser multiple is not provable
	// near square boundaries under float division).
	useRollup := keep == nil && s.cfg.SealHorizon > 0 && cellSize == s.cfg.RollupCellSize
	acc := make(map[[2]int32]int64)
	tally := func(rec Record) {
		if !r.Contains(rec.Pos) {
			return
		}
		if keep != nil && !keep(rec) {
			return
		}
		key := [2]int32{
			int32(math.Floor(rec.Pos.X / cellSize)),
			int32(math.Floor(rec.Pos.Y / cellSize)),
		}
		acc[key]++
	}
	s.forEachCellKeyIn(r, func(key cellKey) {
		if cell, ok := s.cells[key]; ok {
			cell.Window(from, to, func(_ time.Time, rec Record) bool {
				tally(rec)
				return true
			})
		}
		chunks := s.sealed[key]
		if len(chunks) == 0 {
			return
		}
		var resolved map[int64]bool
		if useRollup {
			for b, e := range s.rollups[key] {
				if !s.windowCoversBucket(from, to, b) {
					continue
				}
				if e.heatInto(r, acc) {
					if resolved == nil {
						resolved = make(map[int64]bool)
					}
					resolved[b] = true
					s.rollupHits.Add(1)
				}
			}
		}
		for _, c := range chunks {
			if resolved[c.bucket] || !c.overlaps(from, to) {
				continue
			}
			for _, rec := range s.decodeForQuery(c) {
				if !rec.Time.Before(from) && !rec.Time.After(to) {
					tally(rec)
				}
			}
		}
	})
	out := make([]HeatCell, 0, len(acc))
	for key, n := range acc {
		out = append(out, HeatCell{CX: key[0], CY: key[1], Count: n})
	}
	return out
}

// TargetHistory returns the records associated with a target in [from, to],
// time-ordered (insertion order among equal timestamps, matching the flat
// store: sealed chunks concatenate in seal order, the hot tail follows, and
// a stable sort merges late arrivals into place).
func (s *Store) TargetHistory(id uint64, from, to time.Time) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if to.Before(from) {
		return nil
	}
	var out []Record
	sealedPart := 0
	for _, c := range s.targetSealed[id] {
		if !c.overlaps(from, to) {
			continue
		}
		for _, rec := range s.decodeForQuery(c) {
			if !rec.Time.Before(from) && !rec.Time.After(to) {
				out = append(out, rec)
			}
		}
	}
	sealedPart = len(out)
	if hist := s.byTarget[id]; len(hist) > 0 {
		lo := sort.Search(len(hist), func(i int) bool { return !hist[i].Time.Before(from) })
		hi := sort.Search(len(hist), func(i int) bool { return hist[i].Time.After(to) })
		if lo < hi {
			out = append(out, hist[lo:hi]...)
		}
	}
	if sealedPart > 0 {
		// Straggler seals append old records after newer chunks, and late
		// arrivals can leave hot records older than sealed ones; a stable
		// sort restores global time order while preserving the insertion
		// order the tiers already encode for equal timestamps.
		sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	}
	return out
}

// TargetCount returns the number of records associated with a target.
func (s *Store) TargetCount(id uint64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.byTarget[id])
	for _, c := range s.targetSealed[id] {
		n += c.count
	}
	return n
}

// Trajectory reconstructs a target's path over [from, to] from its indexed
// observations.
func (s *Store) Trajectory(id uint64, from, to time.Time) geo.Trajectory {
	recs := s.TargetHistory(id, from, to)
	var tr geo.Trajectory
	for _, rec := range recs {
		tr.Append(rec.Time, rec.Pos)
	}
	return tr
}

// Targets returns the IDs with at least one associated record, sorted.
func (s *Store) Targets() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]uint64, 0, len(s.byTarget)+len(s.targetSealed))
	for id := range s.byTarget {
		out = append(out, id)
	}
	for id := range s.targetSealed {
		if _, hot := s.byTarget[id]; !hot {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EvictBefore removes every record older than cutoff, returning the count
// (cell-side records, hot and sealed; the per-target index trims alongside).
func (s *Store) EvictBefore(cutoff time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictLocked(cutoff)
}

func (s *Store) evictLocked(cutoff time.Time) int {
	removed := 0
	for key, cell := range s.cells {
		removed += cell.EvictBefore(cutoff)
		if cell.Len() == 0 {
			delete(s.cells, key)
		}
	}
	removed += s.evictSealedLocked(cutoff)
	for id, hist := range s.byTarget {
		lo := sort.Search(len(hist), func(i int) bool { return !hist[i].Time.Before(cutoff) })
		if lo == 0 {
			continue
		}
		if lo == len(hist) {
			delete(s.byTarget, id)
			continue
		}
		s.byTarget[id] = append([]Record(nil), hist[lo:]...)
	}
	s.evictTargetSealedLocked(cutoff)
	s.n -= removed
	if s.earliest.Before(cutoff) {
		s.earliest = cutoff
	}
	s.gen++
	return removed
}

// evictSealedLocked drops whole chunks that end before the cutoff, rewrites
// straddling chunks to their surviving suffix, and rebuilds the rollups of
// every touched bucket from the chunks that remain.
func (s *Store) evictSealedLocked(cutoff time.Time) int {
	removed := 0
	for key, chunks := range s.sealed {
		var rebuilt map[int64]bool
		touch := func(b int64) {
			if rebuilt == nil {
				rebuilt = make(map[int64]bool)
			}
			rebuilt[b] = true
		}
		kept := chunks[:0]
		for _, c := range chunks {
			switch {
			case !c.start.Before(cutoff): // wholly kept
				kept = append(kept, c)
			case c.end.Before(cutoff): // wholly expired
				removed += c.count
				s.sealedChunks--
				s.sealedRecords -= c.count
				s.sealedBytes -= int64(len(c.data))
				touch(c.bucket)
			default: // straddling: re-encode the surviving suffix
				recs, err := decodeChunk(c.data)
				if err != nil {
					panic("stindex: sealed chunk decode: " + err.Error())
				}
				live := recs[:0]
				for _, rec := range recs {
					if rec.Time.Before(cutoff) {
						removed++
					} else {
						live = append(live, rec)
					}
				}
				s.sealedChunks--
				s.sealedRecords -= c.count
				s.sealedBytes -= int64(len(c.data))
				touch(c.bucket)
				if len(live) > 0 {
					nc := newSealedChunk(c.bucket, live)
					kept = append(kept, nc)
					s.sealedChunks++
					s.sealedRecords += nc.count
					s.sealedBytes += int64(len(nc.data))
				}
			}
		}
		if len(kept) == 0 {
			delete(s.sealed, key)
		} else {
			s.sealed[key] = kept
		}
		for b := range rebuilt {
			s.rebuildRollupLocked(key, b)
		}
	}
	return removed
}

// evictTargetSealedLocked trims per-target chunks the same way; the removals
// are not counted toward n (target history is an index over cell records).
func (s *Store) evictTargetSealedLocked(cutoff time.Time) {
	for id, chunks := range s.targetSealed {
		kept := chunks[:0]
		for _, c := range chunks {
			switch {
			case !c.start.Before(cutoff):
				kept = append(kept, c)
			case c.end.Before(cutoff):
				s.targetChunks--
				s.targetRecords -= c.count
				s.targetBytes -= int64(len(c.data))
			default:
				recs, err := decodeChunk(c.data)
				if err != nil {
					panic("stindex: sealed chunk decode: " + err.Error())
				}
				live := recs[:0]
				for _, rec := range recs {
					if !rec.Time.Before(cutoff) {
						live = append(live, rec)
					}
				}
				s.targetChunks--
				s.targetRecords -= c.count
				s.targetBytes -= int64(len(c.data))
				if len(live) > 0 {
					nc := newSealedChunk(c.bucket, live)
					kept = append(kept, nc)
					s.targetChunks++
					s.targetRecords += nc.count
					s.targetBytes += int64(len(nc.data))
				}
			}
		}
		if len(kept) == 0 {
			delete(s.targetSealed, id)
		} else {
			s.targetSealed[id] = kept
		}
	}
}

// CellCount returns the number of spatial cells with data in either tier.
func (s *Store) CellCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.cells)
	for key := range s.sealed {
		if _, hot := s.cells[key]; !hot {
			n++
		}
	}
	return n
}

func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].Time.Equal(recs[j].Time) {
			return recs[i].Time.Before(recs[j].Time)
		}
		return recs[i].ObsID < recs[j].ObsID
	})
}
