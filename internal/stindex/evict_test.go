package stindex

import (
	"sync"
	"testing"
	"time"

	"stcam/internal/geo"
)

// TestInsertEvictionAtomicity is the regression for the insert/evict race:
// Insert used to release the store lock after adding a record and then call
// EvictBefore separately, so a concurrent reader could observe the advanced
// Latest() while expired records were still present. Eviction now runs inside
// the same critical section, so any reader snapshot satisfies the retention
// invariant: no record is older than Latest()-Retention at the moment Latest
// was read. Run with -race; pre-fix this fails on the invariant check.
func TestInsertEvictionAtomicity(t *testing.T) {
	const retention = 500 * time.Millisecond
	s := NewStore(Config{CellSize: 50, BucketWidth: 100 * time.Millisecond, Retention: retention})
	world := geo.RectOf(-1e6, -1e6, 1e6, 1e6)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 5000; i++ {
			s.Insert(Record{
				ObsID:    uint64(i + 1),
				TargetID: uint64(i%7 + 1),
				Camera:   uint32(i % 4),
				Pos:      geo.Pt(float64(i%100), float64(i%37)),
				Time:     at(time.Duration(i) * time.Millisecond),
			})
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				latest := s.Latest()
				if latest.IsZero() {
					continue
				}
				floor := latest.Add(-retention)
				for _, r := range s.RangeQuery(world, at(-time.Hour), latest.Add(time.Hour)) {
					// Eviction after the Latest() snapshot only removes
					// records, and inserts only advance time, so every
					// visible record must respect the snapshot's floor.
					if r.Time.Before(floor) {
						t.Errorf("saw record at %v with Latest=%v: older than retention floor %v",
							r.Time, latest, floor)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestEvictionOnLateStream is the regression for cadence-based eviction:
// opportunistic eviction used to fire only when an insert advanced Latest, so
// a stream of late/replayed records (all behind the watermark, all already
// expired) accumulated without bound. Eviction now also fires every
// evictCheckEvery inserts regardless of time progress, bounding the store.
func TestEvictionOnLateStream(t *testing.T) {
	s := NewStore(Config{CellSize: 50, BucketWidth: time.Second, Retention: 10 * time.Second})
	// One advancing insert establishes Latest = 100s, so everything at 50s is
	// expired on arrival.
	s.Insert(Record{ObsID: 1, TargetID: 1, Camera: 1, Pos: geo.Pt(0, 0), Time: at(100 * time.Second)})
	for i := 0; i < 5000; i++ {
		s.Insert(Record{
			ObsID:    uint64(i + 2),
			TargetID: uint64(i%5 + 1),
			Camera:   2,
			Pos:      geo.Pt(float64(i%200), float64(i%200)),
			Time:     at(50 * time.Second), // never advances Latest
		})
	}
	// Pre-fix the store holds all 5001 records; post-fix at most one eviction
	// period's worth of expired late records plus the live one.
	if n := s.Len(); n > evictCheckEvery+8 {
		t.Fatalf("late-only stream accumulated %d records, want <= %d", n, evictCheckEvery+8)
	}
	if got := s.Count(geo.RectOf(-1e6, -1e6, 1e6, 1e6), at(0), at(60*time.Second)); got > evictCheckEvery {
		t.Fatalf("expired records still queryable: %d", got)
	}
}

// Same scenario through the tiered store: late records below the seal
// frontier must not pile up either in the hot tier or as sealed chunks.
func TestEvictionOnLateStreamTiered(t *testing.T) {
	s := NewStore(Config{
		CellSize:    50,
		BucketWidth: time.Second,
		Retention:   10 * time.Second,
		SealHorizon: 5 * time.Second,
		RollupWidth: 4 * time.Second,
	})
	s.Insert(Record{ObsID: 1, TargetID: 1, Camera: 1, Pos: geo.Pt(0, 0), Time: at(100 * time.Second)})
	for i := 0; i < 5000; i++ {
		s.Insert(Record{
			ObsID:    uint64(i + 2),
			TargetID: uint64(i%5 + 1),
			Camera:   2,
			Pos:      geo.Pt(float64(i%200), float64(i%200)),
			Time:     at(50 * time.Second),
		})
	}
	if n := s.Len(); n > sealCheckEvery+evictCheckEvery+8 {
		t.Fatalf("late-only stream accumulated %d records in tiered store", n)
	}
}
