package stindex

import (
	"math/rand"
	"testing"
	"time"

	"stcam/internal/geo"
)

// Micro-benchmarks for the per-worker store hot paths. The macro experiment
// suite (R1/R2) measures these through the full distributed stack; these
// isolate the index itself.

func storeWith(n int) (*Store, *rand.Rand) {
	s := NewStore(Config{CellSize: 50, BucketWidth: 10 * time.Second})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		s.Insert(Record{
			ObsID:    uint64(i + 1),
			TargetID: uint64(i%500 + 1),
			Pos:      geo.Pt(rng.Float64()*2000, rng.Float64()*2000),
			Time:     t0.Add(time.Duration(i) * 10 * time.Millisecond),
		})
	}
	return s, rng
}

func BenchmarkStoreInsert(b *testing.B) {
	s := NewStore(Config{CellSize: 50, BucketWidth: 10 * time.Second})
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(Record{
			ObsID:    uint64(i + 1),
			TargetID: uint64(i%500 + 1),
			Pos:      geo.Pt(rng.Float64()*2000, rng.Float64()*2000),
			Time:     t0.Add(time.Duration(i) * time.Millisecond),
		})
	}
}

func BenchmarkStoreRange(b *testing.B) {
	s, rng := storeWith(100000)
	from, to := t0, t0.Add(time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
		s.RangeQuery(geo.RectAround(c, 100), from, to)
	}
}

func BenchmarkStoreKNN(b *testing.B) {
	s, rng := storeWith(100000)
	from, to := t0, t0.Add(time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.KNN(geo.Pt(rng.Float64()*2000, rng.Float64()*2000), from, to, 10)
	}
}

func BenchmarkStoreHeatmap(b *testing.B) {
	s, _ := storeWith(100000)
	from, to := t0, t0.Add(time.Hour)
	world := geo.RectOf(0, 0, 2000, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Heatmap(world, from, to, 100, nil)
	}
}

func BenchmarkHistogramFeedback(b *testing.B) {
	world := geo.RectOf(0, 0, 2000, 2000)
	h := NewSTHistogram(world, 20, 20)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
		h.Feedback(geo.RectAround(c, 150), rng.Float64()*0.1)
	}
}
