package stindex

import (
	"math"
	"sort"
	"time"

	"stcam/internal/geo"
)

// Summary is a compact sketch of a store's contents: per coarse spatial
// cell, a record count, the bounding rect of the store cells feeding it,
// and a coarse time histogram. Workers piggyback it on heartbeats so the
// coordinator can prune query fan-out; stcam/internal/wire carries the same
// shape on the protocol (this package stays wire-free).
//
// The sketch is conservative by construction: cell bounds are unions of
// store-cell rects, so every record lies inside its cell's Bounds, and every
// record is counted in exactly one time bucket (coarse buckets are aligned
// to store bucket boundaries with a width that is an integer multiple of the
// store bucket width). A reader may therefore skip a worker whose summary
// shows no cell matching a query — never missing data the summary covers —
// and lower-bound a worker's nearest record by distance to its cell bounds.
type Summary struct {
	Records     int
	CellSize    float64       // effective coarse cell size (world units)
	BucketFrom  time.Time     // start of time bucket 0 (zero when empty)
	BucketWidth time.Duration // coarse bucket width (0 when empty)
	Cells       []SummaryCell
}

// SummaryCell is one non-empty coarse cell of a Summary.
type SummaryCell struct {
	CX, CY  int32
	Count   int64
	Bounds  geo.Rect
	Buckets []int64 // records per coarse time bucket, from Summary.BucketFrom
}

// Summarize builds a Summary with coarse cells of (at least) the requested
// size and at most timeBuckets coarse time buckets. The requested cell size
// is rounded up to an integer multiple of the store's grid cell size and the
// bucket width to a multiple of the store's bucket width, so the sketch
// aggregates whole store cells and whole store buckets: cost is
// O(cells + buckets), never O(records).
func (s *Store) Summarize(cellSize float64, timeBuckets int) Summary {
	s.mu.RLock()
	defer s.mu.RUnlock()

	ratio := int32(1)
	if cellSize > s.cfg.CellSize {
		ratio = int32(math.Ceil(cellSize / s.cfg.CellSize))
	}
	effective := float64(ratio) * s.cfg.CellSize
	sum := Summary{Records: s.n, CellSize: effective}
	if s.n == 0 {
		return sum
	}
	if timeBuckets <= 0 {
		timeBuckets = 8
	}

	// Global time span across both tiers, at store-bucket granularity.
	sw := s.cfg.BucketWidth
	var from, end time.Time
	for _, cell := range s.cells {
		cf, ce, ok := cell.Span()
		if !ok {
			continue
		}
		if from.IsZero() || cf.Before(from) {
			from = cf
		}
		if ce.After(end) {
			end = ce
		}
	}
	for _, chunks := range s.sealed {
		for _, c := range chunks {
			cf := time.Unix(0, floorDiv64(c.start.UnixNano(), int64(sw))*int64(sw))
			ce := time.Unix(0, floorDiv64(c.end.UnixNano(), int64(sw))*int64(sw)).Add(sw)
			if from.IsZero() || cf.Before(from) {
				from = cf
			}
			if ce.After(end) {
				end = ce
			}
		}
	}
	if from.IsZero() {
		return sum
	}
	span := end.Sub(from)
	width := span / time.Duration(timeBuckets)
	if rem := width % sw; rem != 0 || width == 0 {
		width += sw - rem
	}
	nb := int((span + width - 1) / width)
	if nb < 1 {
		nb = 1
	}
	sum.BucketFrom = from
	sum.BucketWidth = width

	acc := make(map[cellKey]*SummaryCell)
	coarse := func(key cellKey) *SummaryCell {
		ck := cellKey{cx: floorDiv(key.cx, ratio), cy: floorDiv(key.cy, ratio)}
		c, ok := acc[ck]
		if !ok {
			c = &SummaryCell{CX: ck.cx, CY: ck.cy, Bounds: s.cellRect(key), Buckets: make([]int64, nb)}
			acc[ck] = c
		} else {
			c.Bounds = c.Bounds.Union(s.cellRect(key))
		}
		return c
	}
	for key, cell := range s.cells {
		c := coarse(key)
		c.Count += int64(cell.Len())
		cell.ForEachBucket(func(start time.Time, n int) {
			i := int(start.Sub(from) / width)
			if i < 0 {
				i = 0
			}
			if i >= nb {
				i = nb - 1
			}
			c.Buckets[i] += int64(n)
		})
	}
	// Sealed records fold in from the rollup aggregates: O(rollup entries),
	// never decoding chunks. A rollup bucket can straddle several summary
	// buckets, so its count is credited to every one it overlaps — an
	// over-count per bucket, which is safe: readers treat buckets as
	// absence proofs only (a false positive merely skips a pruning
	// opportunity), while Count and Records stay exact.
	for key, buckets := range s.rollups {
		c := coarse(key)
		for b, e := range buckets {
			c.Count += e.count
			bStart := s.rollupBucketStart(b)
			bEnd := bStart.Add(s.cfg.RollupWidth)
			i0 := int(bStart.Sub(from) / width)
			i1 := int(bEnd.Add(-time.Nanosecond).Sub(from) / width)
			if i0 < 0 {
				i0 = 0
			}
			if i1 >= nb {
				i1 = nb - 1
			}
			for i := i0; i <= i1; i++ {
				c.Buckets[i] += e.count
			}
		}
	}
	sum.Cells = make([]SummaryCell, 0, len(acc))
	for _, c := range acc {
		sum.Cells = append(sum.Cells, *c)
	}
	sort.Slice(sum.Cells, func(i, j int) bool {
		if sum.Cells[i].CY != sum.Cells[j].CY {
			return sum.Cells[i].CY < sum.Cells[j].CY
		}
		return sum.Cells[i].CX < sum.Cells[j].CX
	})
	return sum
}

func floorDiv(a, b int32) int32 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
