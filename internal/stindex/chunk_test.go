package stindex

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"stcam/internal/geo"
)

// recordsEqual compares record slices bit-exactly: times by UnixNano (both
// sides of a round trip are nanosecond-resolved), positions by float bits so
// NaN payloads and signed zeros must survive.
func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ObsID != b[i].ObsID || a[i].TargetID != b[i].TargetID || a[i].Camera != b[i].Camera {
			return false
		}
		if a[i].Time.UnixNano() != b[i].Time.UnixNano() {
			return false
		}
		if math.Float64bits(a[i].Pos.X) != math.Float64bits(b[i].Pos.X) ||
			math.Float64bits(a[i].Pos.Y) != math.Float64bits(b[i].Pos.Y) {
			return false
		}
	}
	return true
}

// genChunkRecords draws a random record stream in one of several adversarial
// shapes: regular cadence vs. identical timestamps, duplicate ObsIDs,
// zero-movement tracks, grid-snapped (quantized-path) vs. free-float
// (XOR-path) positions. NaN-free, matching what ingest can produce.
func genChunkRecords(rng *rand.Rand, n int) []Record {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	shape := rng.Intn(5)
	recs := make([]Record, n)
	t := base.Add(time.Duration(rng.Intn(1000)) * time.Second)
	x, y := rng.Float64()*1000-500, rng.Float64()*1000-500
	if shape != 3 { // snap to the 1/1024 m grid → quantized path
		x, y = math.Round(x*posScale)/posScale, math.Round(y*posScale)/posScale
	}
	for i := range recs {
		switch shape {
		case 0: // regular cadence, drifting track
			t = t.Add(33 * time.Millisecond)
			x += float64(rng.Intn(9)-4) / posScale
			y += float64(rng.Intn(9)-4) / posScale
		case 1: // identical timestamps, zero movement
		case 2: // irregular gaps, large jumps on-grid
			t = t.Add(time.Duration(rng.Intn(5000)) * time.Millisecond)
			x = math.Round((rng.Float64()*1e6-5e5)*posScale) / posScale
			y = math.Round((rng.Float64()*1e6-5e5)*posScale) / posScale
		case 3: // free floats → XOR path
			t = t.Add(time.Duration(rng.Intn(100)) * time.Millisecond)
			x += rng.NormFloat64()
			y += rng.NormFloat64()
		case 4: // out-of-order-ish: times jitter around the base
			t = base.Add(time.Duration(rng.Intn(10000)) * time.Millisecond)
		}
		obs := uint64(i + 1)
		if shape == 1 && i > 0 && rng.Intn(3) == 0 {
			obs = recs[i-1].ObsID // duplicate ObsIDs
		}
		recs[i] = Record{
			ObsID:    obs,
			TargetID: uint64(rng.Intn(4)), // including 0 = unassociated
			Camera:   uint32(rng.Intn(64)),
			Pos:      geo.Pt(x, y),
			Time:     t,
		}
	}
	return recs
}

func TestChunkRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		recs := genChunkRecords(rng, 1+rng.Intn(300))
		data := appendChunk(nil, recs)
		got, err := decodeChunk(data)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !recordsEqual(recs, got) {
			t.Fatalf("trial %d: round trip mismatch (n=%d)", trial, len(recs))
		}
	}
}

func TestChunkRoundTripEdgeCases(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	cases := map[string][]Record{
		"empty": nil,
		"single": {
			{ObsID: 1, TargetID: 2, Camera: 3, Pos: geo.Pt(4.5, -6.25), Time: base},
		},
		"negative zero": {
			{ObsID: 1, Pos: geo.Pt(math.Copysign(0, -1), 0), Time: base},
			{ObsID: 2, Pos: geo.Pt(0, math.Copysign(0, -1)), Time: base},
		},
		"id wraparound": {
			{ObsID: math.MaxUint64, TargetID: math.MaxUint64, Camera: math.MaxUint32, Pos: geo.Pt(1, 1), Time: base},
			{ObsID: 0, TargetID: 0, Camera: 0, Pos: geo.Pt(1, 1), Time: base.Add(time.Nanosecond)},
		},
		"huge coords off grid": {
			{ObsID: 1, Pos: geo.Pt(1e300, -1e300), Time: base},
			{ObsID: 2, Pos: geo.Pt(math.SmallestNonzeroFloat64, 1e-300), Time: base.Add(time.Second)},
		},
	}
	for name, recs := range cases {
		data := appendChunk(nil, recs)
		got, err := decodeChunk(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !recordsEqual(recs, got) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

func TestChunkDecodeFailClosed(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	recs := []Record{
		{ObsID: 1, TargetID: 2, Camera: 3, Pos: geo.Pt(10, 20), Time: base},
		{ObsID: 2, TargetID: 2, Camera: 3, Pos: geo.Pt(10.5, 20.5), Time: base.Add(time.Second)},
	}
	data := appendChunk(nil, recs)

	// Unknown format tag: never fall back to v1.
	bad := append([]byte(nil), data...)
	bad[0] = 0x7f
	if _, err := decodeChunk(bad); !errors.Is(err, ErrUnknownChunkFormat) {
		t.Fatalf("unknown format tag: err = %v, want ErrUnknownChunkFormat", err)
	}
	if _, err := decodeChunk([]byte{0}); !errors.Is(err, ErrUnknownChunkFormat) {
		t.Fatalf("zero format tag: err = %v, want ErrUnknownChunkFormat", err)
	}

	// Unknown flag bit: the layout would differ, so this too fails closed.
	bad = append([]byte(nil), data...)
	bad[2] |= 0x80 // format(1 byte) + count uvarint(1 byte for n=2) → flags at offset 2
	if _, err := decodeChunk(bad); !errors.Is(err, ErrUnknownChunkFormat) {
		t.Fatalf("unknown flag bit: err = %v, want ErrUnknownChunkFormat", err)
	}

	// Every truncation errors; none may return partial records.
	for i := 0; i < len(data); i++ {
		if _, err := decodeChunk(data[:i]); err == nil {
			t.Fatalf("truncated at %d/%d bytes: decode succeeded", i, len(data))
		}
	}
	// Trailing garbage is corruption, not padding.
	if _, err := decodeChunk(append(append([]byte(nil), data...), 0)); !errors.Is(err, ErrCorruptChunk) {
		t.Fatalf("trailing byte: err = %v, want ErrCorruptChunk", err)
	}
	// A record count larger than the chunk itself is rejected before
	// allocation.
	if _, err := decodeChunk([]byte{byte(chunkFormatV1), 0xff, 0xff, 0xff, 0x7f}); !errors.Is(err, ErrCorruptChunk) {
		t.Fatalf("absurd count: err = %v, want ErrCorruptChunk", err)
	}
}

// FuzzChunkDecode holds two properties over arbitrary bytes: decoding never
// panics, and anything that decodes successfully re-encodes to a chunk that
// decodes back to the identical records (the codec is self-consistent even on
// crafted inputs, e.g. wrapped deltas or off-grid quantized accumulations).
func FuzzChunkDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(99))
	f.Add([]byte{})
	f.Add([]byte{byte(chunkFormatV1)})
	f.Add([]byte{byte(chunkFormatV1), 0})
	f.Add([]byte{0x7f, 1, 2, 3})
	for _, n := range []int{1, 3, 50} {
		f.Add(appendChunk(nil, genChunkRecords(rng, n)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := decodeChunk(data)
		if err != nil {
			return
		}
		enc := appendChunk(nil, recs)
		again, err := decodeChunk(enc)
		if err != nil {
			t.Fatalf("re-encode of decoded chunk fails to decode: %v", err)
		}
		if !recordsEqual(recs, again) {
			t.Fatalf("re-encode round trip diverged (n=%d)", len(recs))
		}
	})
}
