package stindex

import (
	"math"
	"sync"

	"stcam/internal/geo"
)

// STHistogram estimates the selectivity of spatial range predicates from
// query feedback rather than by scanning the data: every executed range query
// reports its actual selectivity, and the histogram redistributes the error
// over the grid cells the query covered, weighted by overlap ("queries as
// spots of light"). Cells never touched by a query keep the uniform prior.
//
// The coordinator uses the estimates to order predicates in multi-predicate
// queries and to route load; experiment R11 measures how fast the estimate
// converges with feedback volume.
type STHistogram struct {
	world geo.Rect
	nx    int
	ny    int

	mu   sync.RWMutex
	dens []float64 // estimated density (selectivity mass) per cell; sums to ~1
	conf []float64 // accumulated feedback weight ("light") per cell
}

// NewSTHistogram returns a histogram over the world with nx × ny cells,
// initialized to the uniform distribution. Dimensions < 1 are clamped to 1.
func NewSTHistogram(world geo.Rect, nx, ny int) *STHistogram {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	h := &STHistogram{
		world: world,
		nx:    nx,
		ny:    ny,
		dens:  make([]float64, nx*ny),
		conf:  make([]float64, nx*ny),
	}
	u := 1 / float64(nx*ny)
	for i := range h.dens {
		h.dens[i] = u
	}
	return h
}

// cellRect returns the rectangle of cell (i, j).
func (h *STHistogram) cellRect(i, j int) geo.Rect {
	w := h.world.Width() / float64(h.nx)
	ht := h.world.Height() / float64(h.ny)
	x0 := h.world.Min.X + float64(i)*w
	y0 := h.world.Min.Y + float64(j)*ht
	return geo.RectOf(x0, y0, x0+w, y0+ht)
}

// overlapCells visits each cell overlapping r with the fraction of the cell
// covered by r.
func (h *STHistogram) overlapCells(r geo.Rect, fn func(idx int, frac float64)) {
	clipped := r.Intersect(h.world)
	if clipped.IsEmpty() {
		return
	}
	w := h.world.Width() / float64(h.nx)
	ht := h.world.Height() / float64(h.ny)
	i0 := int(math.Floor((clipped.Min.X - h.world.Min.X) / w))
	i1 := int(math.Ceil((clipped.Max.X-h.world.Min.X)/w)) - 1
	j0 := int(math.Floor((clipped.Min.Y - h.world.Min.Y) / ht))
	j1 := int(math.Ceil((clipped.Max.Y-h.world.Min.Y)/ht)) - 1
	clampi := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	i0, i1 = clampi(i0, h.nx-1), clampi(i1, h.nx-1)
	j0, j1 = clampi(j0, h.ny-1), clampi(j1, h.ny-1)
	for i := i0; i <= i1; i++ {
		for j := j0; j <= j1; j++ {
			cell := h.cellRect(i, j)
			ov := cell.Intersect(clipped)
			if ov.IsEmpty() || cell.Area() == 0 {
				continue
			}
			fn(j*h.nx+i, ov.Area()/cell.Area())
		}
	}
}

// Estimate returns the predicted selectivity (fraction of the population) of
// the range predicate r.
func (h *STHistogram) Estimate(r geo.Rect) float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.estimateLocked(r)
}

func (h *STHistogram) estimateLocked(r geo.Rect) float64 {
	var sum float64
	h.overlapCells(r, func(idx int, frac float64) {
		sum += h.dens[idx] * frac
	})
	return sum
}

// Feedback reports the actual selectivity observed for an executed range
// query. The difference between actual and estimated mass is distributed
// over the covered cells proportionally to their overlap fraction, and the
// histogram is renormalized to unit mass (the "unity invariant").
func (h *STHistogram) Feedback(r geo.Rect, actual float64) {
	if actual < 0 {
		actual = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	est := h.estimateLocked(r)
	diff := actual - est
	var totalFrac float64
	h.overlapCells(r, func(_ int, frac float64) { totalFrac += frac })
	if totalFrac == 0 {
		return
	}
	h.overlapCells(r, func(idx int, frac float64) {
		share := frac / totalFrac
		h.dens[idx] += diff * share
		if h.dens[idx] < 0 {
			h.dens[idx] = 0
		}
		h.conf[idx] += frac
	})
	// Renormalize the *unlit* mass so the total stays 1: lit cells carry
	// observed truth; dark cells share the remainder uniformly-proportional.
	var litMass, darkMass float64
	for i := range h.dens {
		if h.conf[i] > 0 {
			litMass += h.dens[i]
		} else {
			darkMass += h.dens[i]
		}
	}
	want := 1 - litMass
	if want < 0 {
		// Observed mass exceeds 1 (skew + noise): scale lit mass down.
		if litMass > 0 {
			for i := range h.dens {
				if h.conf[i] > 0 {
					h.dens[i] /= litMass
				} else {
					h.dens[i] = 0
				}
			}
		}
		return
	}
	if darkMass > 0 {
		scale := want / darkMass
		for i := range h.dens {
			if h.conf[i] == 0 {
				h.dens[i] *= scale
			}
		}
	}
}

// LitFraction returns the fraction of cells that have received any feedback —
// the "illumination" of the histogram.
func (h *STHistogram) LitFraction() float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	lit := 0
	for _, c := range h.conf {
		if c > 0 {
			lit++
		}
	}
	return float64(lit) / float64(len(h.conf))
}

// TotalMass returns the histogram's total density (≈ 1 by construction).
func (h *STHistogram) TotalMass() float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var sum float64
	for _, d := range h.dens {
		sum += d
	}
	return sum
}
