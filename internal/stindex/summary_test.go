package stindex

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"stcam/internal/geo"
)

var sumT0 = time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)

func randStore(seed int64, n int) (*Store, []Record) {
	rng := rand.New(rand.NewSource(seed))
	s := NewStore(Config{CellSize: 50, BucketWidth: 10 * time.Second})
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		rec := Record{
			ObsID:    uint64(i + 1),
			TargetID: uint64(rng.Intn(20)),
			Camera:   uint32(rng.Intn(8)),
			Pos:      geo.Pt(rng.Float64()*2000-500, rng.Float64()*2000-500),
			Time:     sumT0.Add(time.Duration(rng.Intn(3600)) * time.Second),
		}
		s.Insert(rec)
		recs = append(recs, rec)
	}
	return s, recs
}

// TestSummarizeConservative is the summary's core soundness property: every
// stored record must be covered by exactly one cell — position inside the
// cell's Bounds, counted in its Count, and counted in the time bucket that
// contains its timestamp. A summary violating this could cause a wrong prune.
func TestSummarizeConservative(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		s, recs := randStore(seed, 500)
		sum := s.Summarize(200, 8)
		if sum.Records != len(recs) {
			t.Fatalf("seed %d: Records = %d, want %d", seed, sum.Records, len(recs))
		}
		if rem := math.Mod(sum.CellSize, s.Config().CellSize); rem != 0 {
			t.Fatalf("seed %d: coarse cell size %v not a multiple of %v", seed, sum.CellSize, s.Config().CellSize)
		}
		if sum.BucketWidth%s.Config().BucketWidth != 0 {
			t.Fatalf("seed %d: bucket width %v not a multiple of %v", seed, sum.BucketWidth, s.Config().BucketWidth)
		}
		cells := make(map[[2]int32]*SummaryCell)
		var total int64
		for i := range sum.Cells {
			c := &sum.Cells[i]
			cells[[2]int32{c.CX, c.CY}] = c
			total += c.Count
			var bucketSum int64
			for _, b := range c.Buckets {
				bucketSum += b
			}
			if bucketSum != c.Count {
				t.Fatalf("seed %d: cell (%d,%d) buckets sum to %d, count %d", seed, c.CX, c.CY, bucketSum, c.Count)
			}
		}
		if total != int64(len(recs)) {
			t.Fatalf("seed %d: cell counts sum to %d, want %d", seed, total, len(recs))
		}
		for _, rec := range recs {
			key := [2]int32{
				int32(math.Floor(rec.Pos.X / sum.CellSize)),
				int32(math.Floor(rec.Pos.Y / sum.CellSize)),
			}
			c, ok := cells[key]
			if !ok {
				t.Fatalf("seed %d: record %d at %v has no summary cell %v", seed, rec.ObsID, rec.Pos, key)
			}
			if !c.Bounds.Contains(rec.Pos) {
				t.Fatalf("seed %d: record %d at %v outside cell bounds %v", seed, rec.ObsID, rec.Pos, c.Bounds)
			}
			i := int(rec.Time.Sub(sum.BucketFrom) / sum.BucketWidth)
			if i < 0 || i >= len(c.Buckets) || c.Buckets[i] == 0 {
				t.Fatalf("seed %d: record %d at %v not visible in time bucket %d of cell %v", seed, rec.ObsID, rec.Time, i, key)
			}
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := NewStore(Config{})
	sum := s.Summarize(200, 8)
	if sum.Records != 0 || len(sum.Cells) != 0 {
		t.Fatalf("empty store summary = %+v", sum)
	}
	if !sum.BucketFrom.IsZero() || sum.BucketWidth != 0 {
		t.Fatalf("empty store summary has time span: %+v", sum)
	}
}

// TestSummarizeCellAggregation pins the coarse aggregation: records in
// adjacent store cells land in one coarse cell whose bounds union the store
// cell rects, including on the negative side of the origin (floor division).
func TestSummarizeCellAggregation(t *testing.T) {
	s := NewStore(Config{CellSize: 50, BucketWidth: 10 * time.Second})
	s.Insert(Record{ObsID: 1, Pos: geo.Pt(10, 10), Time: sumT0})
	s.Insert(Record{ObsID: 2, Pos: geo.Pt(90, 90), Time: sumT0})   // store cell (1,1), same coarse cell at 200
	s.Insert(Record{ObsID: 3, Pos: geo.Pt(-10, -10), Time: sumT0}) // coarse cell (-1,-1)
	sum := s.Summarize(200, 4)
	if len(sum.Cells) != 2 {
		t.Fatalf("cells = %d, want 2: %+v", len(sum.Cells), sum.Cells)
	}
	neg, pos := sum.Cells[0], sum.Cells[1] // sorted by (CY, CX)
	if neg.CX != -1 || neg.CY != -1 || neg.Count != 1 {
		t.Fatalf("negative cell = %+v", neg)
	}
	if pos.CX != 0 || pos.CY != 0 || pos.Count != 2 {
		t.Fatalf("positive cell = %+v", pos)
	}
	want := geo.RectOf(0, 0, 100, 100) // union of store cells (0,0) and (1,1)
	if pos.Bounds != want {
		t.Fatalf("positive cell bounds = %v, want %v", pos.Bounds, want)
	}
}

// TestKNNBoundedMatchesFiltered: a radius-bounded kNN must return exactly
// the unbounded result with candidates beyond the bound filtered out —
// including candidates at exactly the bound (inclusive semantics).
func TestKNNBoundedMatchesFiltered(t *testing.T) {
	for _, seed := range []int64{3, 9} {
		s, recs := randStore(seed, 400)
		rng := rand.New(rand.NewSource(seed + 100))
		for trial := 0; trial < 50; trial++ {
			q := geo.Pt(rng.Float64()*2000-500, rng.Float64()*2000-500)
			from := sumT0.Add(time.Duration(rng.Intn(1800)) * time.Second)
			to := from.Add(time.Duration(rng.Intn(1800)) * time.Second)
			k := 1 + rng.Intn(10)
			full := s.KNNFunc(q, from, to, len(recs), nil)
			maxDist2 := 0.0
			if len(full) > 0 {
				maxDist2 = full[rng.Intn(len(full))].Dist2 // exercises ties at the bound
			}
			var want []Neighbor
			for _, n := range full {
				if n.Dist2 <= maxDist2 && len(want) < k {
					want = append(want, n)
				}
			}
			got := s.KNNBounded(q, from, to, k, maxDist2, nil)
			if len(got) != len(want) {
				t.Fatalf("seed %d trial %d: got %d neighbors, want %d", seed, trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d trial %d: neighbor %d = %+v, want %+v", seed, trial, i, got[i], want[i])
				}
			}
		}
	}
}
