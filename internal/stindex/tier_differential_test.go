package stindex

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"stcam/internal/geo"
)

// The tiered store must be observationally identical to the flat store: same
// records, same order, same counts, same neighbors, same heat cells — across
// seal boundaries, eviction, and out-of-order ingest. These tests drive both
// stores through identical workloads (with explicit Seal calls on the tiered
// side) and compare canonical dumps of every query kind byte-for-byte.

func dumpRecords(recs []Record) string {
	var b strings.Builder
	for _, r := range recs {
		fmt.Fprintf(&b, "%d|%d|%d|%x|%x|%d\n",
			r.ObsID, r.TargetID, r.Camera,
			math.Float64bits(r.Pos.X), math.Float64bits(r.Pos.Y), r.Time.UnixNano())
	}
	return b.String()
}

func dumpNeighbors(ns []Neighbor) string {
	var b strings.Builder
	for _, n := range ns {
		fmt.Fprintf(&b, "%x|%d|%d|%d|%x|%x|%d\n",
			math.Float64bits(n.Dist2), n.ObsID, n.TargetID, n.Camera,
			math.Float64bits(n.Pos.X), math.Float64bits(n.Pos.Y), n.Time.UnixNano())
	}
	return b.String()
}

func dumpHeat(cells []HeatCell) string {
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].CY != cells[j].CY {
			return cells[i].CY < cells[j].CY
		}
		return cells[i].CX < cells[j].CX
	})
	var b strings.Builder
	for _, c := range cells {
		fmt.Fprintf(&b, "%d,%d=%d\n", c.CX, c.CY, c.Count)
	}
	return b.String()
}

func dumpTrajectory(tr geo.Trajectory) string {
	var b strings.Builder
	for _, p := range tr.Points {
		fmt.Fprintf(&b, "%d@%x,%x\n", p.T.UnixNano(), math.Float64bits(p.P.X), math.Float64bits(p.P.Y))
	}
	return b.String()
}

// diffBattery compares every query kind over a deterministic set of rects,
// windows and targets. label names the workload phase for failure messages.
func diffBattery(t *testing.T, flat, tiered *Store, label string) {
	t.Helper()
	check := func(kind, want, got string) {
		t.Helper()
		if want != got {
			t.Fatalf("%s: %s diverged\nflat:\n%s\ntiered:\n%s", label, kind, want, got)
		}
	}
	if f, g := flat.Len(), tiered.Len(); f != g {
		t.Fatalf("%s: Len: flat %d, tiered %d", label, f, g)
	}
	if f, g := flat.CellCount(), tiered.CellCount(); f != g {
		t.Fatalf("%s: CellCount: flat %d, tiered %d", label, f, g)
	}
	if f, g := flat.Latest(), tiered.Latest(); !f.Equal(g) {
		t.Fatalf("%s: Latest: flat %v, tiered %v", label, f, g)
	}

	world := geo.RectOf(-1e6, -1e6, 1e6, 1e6)
	rects := []geo.Rect{
		world,
		geo.RectOf(0, 0, 400, 400),
		geo.RectOf(-120, -80, 130, 90),       // straddles cell boundaries
		geo.RectOf(50, 50, 100, 100),         // exactly cell-aligned
		geo.RectOf(33.3, -17.7, 210.9, 66.1), // cuts through rollup squares
		geo.RectOf(700, 700, 900, 900),       // mostly empty
	}
	lo, hi := at(-time.Hour), at(24*time.Hour)
	windows := [][2]time.Time{
		{lo, hi},
		{at(0), at(32 * time.Second)}, // rollup-aligned long range
		{at(7*time.Second + 300*time.Millisecond), at(55 * time.Second)}, // misaligned, crosses seal frontier
		{at(40 * time.Second), at(41 * time.Second)},                     // short hot-side window
		{at(3 * time.Second), at(3 * time.Second)},                       // instant
		{at(10 * time.Second), at(9 * time.Second)},                      // inverted
	}
	for ri, r := range rects {
		for wi, w := range windows {
			tag := fmt.Sprintf("r%d/w%d", ri, wi)
			check("range "+tag, dumpRecords(flat.RangeQuery(r, w[0], w[1])), dumpRecords(tiered.RangeQuery(r, w[0], w[1])))
			if f, g := flat.Count(r, w[0], w[1]), tiered.Count(r, w[0], w[1]); f != g {
				t.Fatalf("%s: count %s: flat %d, tiered %d", label, tag, f, g)
			}
			check("heat50 "+tag, dumpHeat(flat.Heatmap(r, w[0], w[1], 50, nil)), dumpHeat(tiered.Heatmap(r, w[0], w[1], 50, nil)))
			check("heat35 "+tag, dumpHeat(flat.Heatmap(r, w[0], w[1], 35, nil)), dumpHeat(tiered.Heatmap(r, w[0], w[1], 35, nil)))
		}
	}
	oddCam := func(r Record) bool { return r.Camera%2 == 1 }
	check("heat-keep", dumpHeat(flat.Heatmap(world, lo, hi, 50, oddCam)), dumpHeat(tiered.Heatmap(world, lo, hi, 50, oddCam)))

	for _, q := range []geo.Point{geo.Pt(0, 0), geo.Pt(123, -45), geo.Pt(600, 600)} {
		for _, k := range []int{1, 5, 40} {
			f := flat.KNN(q, lo, at(60*time.Second), k)
			g := tiered.KNN(q, lo, at(60*time.Second), k)
			check(fmt.Sprintf("knn %v k=%d", q, k), dumpNeighbors(f), dumpNeighbors(g))
		}
	}
	fb := flat.KNNBounded(geo.Pt(100, 100), lo, hi, 10, 250*250, oddCam)
	gb := tiered.KNNBounded(geo.Pt(100, 100), lo, hi, 10, 250*250, oddCam)
	check("knn bounded", dumpNeighbors(fb), dumpNeighbors(gb))

	ft, gt := flat.Targets(), tiered.Targets()
	if fmt.Sprint(ft) != fmt.Sprint(gt) {
		t.Fatalf("%s: Targets: flat %v, tiered %v", label, ft, gt)
	}
	for _, id := range ft {
		if f, g := flat.TargetCount(id), tiered.TargetCount(id); f != g {
			t.Fatalf("%s: TargetCount(%d): flat %d, tiered %d", label, id, f, g)
		}
		check(fmt.Sprintf("history %d", id),
			dumpRecords(flat.TargetHistory(id, lo, hi)),
			dumpRecords(tiered.TargetHistory(id, lo, hi)))
		check(fmt.Sprintf("history-window %d", id),
			dumpRecords(flat.TargetHistory(id, at(5*time.Second), at(45*time.Second))),
			dumpRecords(tiered.TargetHistory(id, at(5*time.Second), at(45*time.Second))))
		check(fmt.Sprintf("trajectory %d", id),
			dumpTrajectory(flat.Trajectory(id, lo, hi)),
			dumpTrajectory(tiered.Trajectory(id, lo, hi)))
	}
}

func tieredPair() (flat, tiered *Store) {
	flat = NewStore(Config{CellSize: 50, BucketWidth: time.Second})
	tiered = NewStore(Config{
		CellSize:    50,
		BucketWidth: time.Second,
		SealHorizon: 10 * time.Second,
		RollupWidth: 8 * time.Second,
		ChunkTarget: 32, // small, so workloads span many chunks
	})
	return flat, tiered
}

// genWorkload produces a deterministic observation stream: mostly advancing
// time with jitter, ~15% late arrivals (up to 30s behind), positions mixing
// grid-snapped and free floats across a few hundred meters.
func genWorkload(rng *rand.Rand, n int) []Record {
	recs := make([]Record, 0, n)
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		now += time.Duration(rng.Intn(40)) * time.Millisecond
		ts := now
		if rng.Intn(100) < 15 {
			late := time.Duration(rng.Intn(30000)) * time.Millisecond
			if late > now {
				late = now
			}
			ts = now - late
		}
		x := rng.Float64()*700 - 150
		y := rng.Float64()*700 - 150
		if rng.Intn(2) == 0 {
			x = math.Round(x*posScale) / posScale
			y = math.Round(y*posScale) / posScale
		}
		recs = append(recs, Record{
			ObsID:    uint64(i + 1),
			TargetID: uint64(rng.Intn(9)), // 0 = unassociated
			Camera:   uint32(rng.Intn(16)),
			Pos:      geo.Pt(x, y),
			Time:     at(ts),
		})
	}
	return recs
}

func TestTieredDifferentialSealAndOutOfOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	flat, tiered := tieredPair()
	recs := genWorkload(rng, 4000)
	for i, r := range recs {
		flat.Insert(r)
		tiered.Insert(r)
		if (i+1)%500 == 0 {
			tiered.Seal()
			diffBattery(t, flat, tiered, fmt.Sprintf("after %d inserts + seal", i+1))
		}
	}
	tiered.Seal()
	diffBattery(t, flat, tiered, "final")
	if ts := tiered.TierStats(); ts.SealedRecords == 0 || ts.SealedChunks == 0 {
		t.Fatalf("vacuous differential: nothing was sealed (%+v)", ts)
	}
}

func TestTieredDifferentialEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	flat, tiered := tieredPair()
	for _, r := range genWorkload(rng, 3000) {
		flat.Insert(r)
		tiered.Insert(r)
	}
	tiered.Seal()
	if ts := tiered.TierStats(); ts.SealedRecords == 0 {
		t.Fatal("vacuous eviction differential: nothing sealed")
	}
	// Evict at cutoffs that land mid-chunk, mid-rollup-bucket, and on exact
	// bucket boundaries; both stores see identical cutoffs.
	cutoffs := []time.Duration{
		3*time.Second + 217*time.Millisecond,
		8 * time.Second, // rollup bucket boundary
		13*time.Second + 999*time.Millisecond,
		24 * time.Second,
	}
	for _, d := range cutoffs {
		fr := flat.EvictBefore(at(d))
		gr := tiered.EvictBefore(at(d))
		if fr != gr {
			t.Fatalf("EvictBefore(%v): flat removed %d, tiered removed %d", d, fr, gr)
		}
		diffBattery(t, flat, tiered, fmt.Sprintf("after evict %v", d))
	}
	// Late re-ingest below the seal frontier, then seal again: straggler
	// compaction must not diverge.
	rng2 := rand.New(rand.NewSource(8))
	for i := 0; i < 400; i++ {
		r := Record{
			ObsID:    uint64(100000 + i),
			TargetID: uint64(rng2.Intn(9)),
			Camera:   uint32(rng2.Intn(16)),
			Pos:      geo.Pt(rng2.Float64()*700-150, rng2.Float64()*700-150),
			Time:     at(time.Duration(24000+rng2.Intn(20000)) * time.Millisecond),
		}
		flat.Insert(r)
		tiered.Insert(r)
	}
	tiered.Seal()
	diffBattery(t, flat, tiered, "after late re-ingest + re-seal")
	// Evict everything: both must empty out completely.
	if fr, gr := flat.EvictBefore(at(time.Hour)), tiered.EvictBefore(at(time.Hour)); fr != gr {
		t.Fatalf("full evict: flat removed %d, tiered removed %d", fr, gr)
	}
	if tiered.Len() != 0 || tiered.CellCount() != 0 || len(tiered.Targets()) != 0 {
		t.Fatalf("tiered store not empty after full evict: len=%d cells=%d targets=%v",
			tiered.Len(), tiered.CellCount(), tiered.Targets())
	}
	if ts := tiered.TierStats(); ts.SealedChunks != 0 || ts.SealedRecords != 0 || ts.SealedBytes != 0 ||
		ts.TargetChunks != 0 || ts.TargetRecords != 0 || ts.TargetBytes != 0 {
		t.Fatalf("sealed-tier accounting not empty after full evict: %+v", ts)
	}
}

// TestTieredRollupRouting asserts the decode counter: long-range Count and
// Heatmap queries whose windows cover whole rollup buckets are answered
// purely from rollups (zero chunk decodes), while RangeQuery must decode.
func TestTieredRollupRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, tiered := tieredPair()
	for _, r := range genWorkload(rng, 3000) {
		tiered.Insert(r)
	}
	tiered.Seal()
	ts0 := tiered.TierStats()
	if ts0.SealedRecords == 0 {
		t.Fatal("nothing sealed")
	}

	world := geo.RectOf(-1e6, -1e6, 1e6, 1e6)
	// Bucket-aligned long-range window over the whole world: every sealed
	// bucket is fully covered and every rollup bounds-check resolves.
	from, to := at(-8*time.Second), at(64*time.Second-time.Nanosecond)
	n := tiered.Count(world, from, to)
	if n == 0 {
		t.Fatal("long-range count returned 0")
	}
	heat := tiered.Heatmap(world, from, to, 50, nil) // 50 = RollupCellSize (defaults to CellSize)
	if len(heat) == 0 {
		t.Fatal("long-range heatmap returned nothing")
	}
	ts1 := tiered.TierStats()
	if d := ts1.QueryDecodes - ts0.QueryDecodes; d != 0 {
		t.Fatalf("rollup-covered Count+Heatmap decoded %d chunks, want 0", d)
	}
	if ts1.RollupHits <= ts0.RollupHits {
		t.Fatalf("rollup hits did not advance: %d -> %d", ts0.RollupHits, ts1.RollupHits)
	}

	// RangeQuery materializes records, so it must decode.
	if recs := tiered.RangeQuery(world, from, to); len(recs) != tiered.Len() {
		t.Fatalf("world range = %d records, want %d", len(recs), tiered.Len())
	}
	ts2 := tiered.TierStats()
	if ts2.QueryDecodes == ts1.QueryDecodes {
		t.Fatal("RangeQuery over sealed data decoded no chunks")
	}

	// A misaligned window cannot be proven by rollups alone — it must still
	// answer exactly (cross-checked against RangeQuery length).
	mfrom, mto := at(1500*time.Millisecond), at(37*time.Second)
	if c, r := tiered.Count(world, mfrom, mto), tiered.RangeQuery(world, mfrom, mto); c != len(r) {
		t.Fatalf("misaligned count %d != range len %d", c, len(r))
	}
}

// TestTieredConcurrentSmoke runs concurrent inserts, seals, evictions and
// queries; under -race this doubles as the locking regression for the tiered
// paths.
func TestTieredConcurrentSmoke(t *testing.T) {
	tiered := NewStore(Config{
		CellSize:    50,
		BucketWidth: 500 * time.Millisecond,
		Retention:   20 * time.Second,
		SealHorizon: 5 * time.Second,
		RollupWidth: 4 * time.Second,
		ChunkTarget: 64,
	})
	world := geo.RectOf(-1e6, -1e6, 1e6, 1e6)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		for _, r := range genWorkload(rng, 6000) {
			tiered.Insert(r)
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				latest := tiered.Latest()
				tiered.Count(world, at(-time.Hour), latest)
				tiered.RangeQuery(geo.RectOf(0, 0, 300, 300), at(0), latest)
				tiered.KNN(geo.Pt(float64(g*100), 50), at(0), latest, 5)
				tiered.Heatmap(world, at(-time.Hour), latest, 50, nil)
				tiered.TargetHistory(uint64(g+1), at(0), latest)
				tiered.Summarize(200, 8)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			tiered.Seal()
			tiered.EvictBefore(tiered.Latest().Add(-25 * time.Second))
		}
	}()
	wg.Wait()
}
