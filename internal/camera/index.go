package camera

import (
	"math"

	"stcam/internal/geo"
)

// spatialIndex accelerates CamerasCovering / CamerasIntersecting by bucketing
// camera IDs into coarse grid cells keyed by FOV bounding boxes. Networks are
// mostly static, so the index is rebuilt wholesale on registration changes.
type spatialIndex struct {
	cellSize float64
	cells    map[[2]int32][]ID
}

// BuildIndex builds (or rebuilds) the covering index with the given cell
// size. A cell size of 0 picks twice the mean FOV radius. Add and Remove
// invalidate the index automatically; queries fall back to a linear scan
// while no index is present.
func (n *Network) BuildIndex(cellSize float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cellSize <= 0 {
		var sum float64
		for _, c := range n.cams {
			sum += c.Range
		}
		if len(n.cams) == 0 {
			return
		}
		cellSize = 2 * sum / float64(len(n.cams))
		if cellSize <= 0 {
			cellSize = 1
		}
	}
	ix := &spatialIndex{cellSize: cellSize, cells: make(map[[2]int32][]ID)}
	for id, c := range n.cams {
		lo := ix.cellOf(c.bounds.Min)
		hi := ix.cellOf(c.bounds.Max)
		for cx := lo[0]; cx <= hi[0]; cx++ {
			for cy := lo[1]; cy <= hi[1]; cy++ {
				key := [2]int32{cx, cy}
				ix.cells[key] = append(ix.cells[key], id)
			}
		}
	}
	n.index = ix
}

func (ix *spatialIndex) cellOf(p geo.Point) [2]int32 {
	return [2]int32{
		int32(math.Floor(p.X / ix.cellSize)),
		int32(math.Floor(p.Y / ix.cellSize)),
	}
}

// candidatesFor returns camera IDs whose FOV bounds may touch r (callers
// still run exact tests). Must be called with n.mu held.
func (n *Network) candidatesFor(r geo.Rect) []ID {
	ix := n.index
	lo := ix.cellOf(r.Min)
	hi := ix.cellOf(r.Max)
	seen := make(map[ID]struct{})
	var out []ID
	for cx := lo[0]; cx <= hi[0]; cx++ {
		for cy := lo[1]; cy <= hi[1]; cy++ {
			for _, id := range ix.cells[[2]int32{cx, cy}] {
				if _, dup := seen[id]; !dup {
					seen[id] = struct{}{}
					out = append(out, id)
				}
			}
		}
	}
	return out
}
