// Package camera models the physical sensing layer: calibrated cameras with
// positions and fields of view, the camera network, and the "vision graph" —
// the adjacency structure over cameras that cross-camera tracking uses to
// scope handoffs to a handful of neighbors instead of the whole network.
package camera

import (
	"fmt"
	"math"

	"stcam/internal/geo"
)

// ID identifies a camera within a network.
type ID uint32

// Camera is a fixed, calibrated camera. Detections are assumed to be mapped
// into world coordinates by the calibration, so the camera's observable
// region is the planar field-of-view sector.
type Camera struct {
	ID      ID
	Pos     geo.Point // mounting position
	Orient  float64   // viewing direction, radians
	HalfFOV float64   // half of the angular field of view, radians
	Range   float64   // maximum detection distance, meters

	fov    geo.Polygon // cached FOV polygon
	bounds geo.Rect    // cached FOV bounding box
}

// fovSegments is the arc resolution of the cached FOV polygon.
const fovSegments = 16

// New returns a camera with the given pose and optics. It panics on
// non-positive range or half-FOV outside (0, pi]: camera calibration is
// construction-time configuration.
func New(id ID, pos geo.Point, orient, halfFOV, rng float64) *Camera {
	if rng <= 0 || halfFOV <= 0 || halfFOV > math.Pi {
		panic(fmt.Sprintf("camera: invalid optics halfFOV=%v range=%v", halfFOV, rng))
	}
	c := &Camera{ID: id, Pos: pos, Orient: geo.NormalizeAngle(orient), HalfFOV: halfFOV, Range: rng}
	if halfFOV >= math.Pi-1e-9 {
		// Omnidirectional: the FOV is a disc.
		c.fov = geo.Circle(pos, rng, 4*fovSegments)
	} else {
		c.fov = geo.Sector(pos, c.Orient, halfFOV, rng, fovSegments)
	}
	c.bounds = c.fov.Bounds()
	return c
}

// FOV returns the cached field-of-view polygon. Callers must not mutate it.
func (c *Camera) FOV() geo.Polygon { return c.fov }

// Bounds returns the bounding rectangle of the field of view.
func (c *Camera) Bounds() geo.Rect { return c.bounds }

// Sees reports whether a world point is inside the camera's field of view.
// The exact sector test (distance + angle) is used rather than the polygon
// approximation so visibility is precise at the arc boundary.
func (c *Camera) Sees(p geo.Point) bool {
	d := c.Pos.Dist(p)
	if d > c.Range {
		return false
	}
	if d == 0 || c.HalfFOV >= math.Pi-1e-9 {
		return true
	}
	ang := p.Sub(c.Pos).Angle()
	return math.Abs(geo.AngleDiff(ang, c.Orient)) <= c.HalfFOV
}

// Overlaps reports whether two cameras have overlapping fields of view.
func (c *Camera) Overlaps(other *Camera) bool {
	if !c.bounds.Intersects(other.bounds) {
		return false
	}
	return c.fov.IntersectsPolygon(other.fov)
}
