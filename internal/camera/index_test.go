package camera

import (
	"math/rand"
	"testing"

	"stcam/internal/geo"
)

// TestIndexedCoveringMatchesLinear verifies the covering index returns
// exactly the linear-scan answers, including after invalidating mutations.
func TestIndexedCoveringMatchesLinear(t *testing.T) {
	world := geo.RectOf(0, 0, 2000, 2000)
	n := GridLayout(LayoutConfig{World: world, Seed: 3, Jitter: 0.4}, 8, 8)
	rng := rand.New(rand.NewSource(4))

	queries := make([]geo.Point, 200)
	for i := range queries {
		queries[i] = geo.Pt(rng.Float64()*2200-100, rng.Float64()*2200-100)
	}
	rects := make([]geo.Rect, 100)
	for i := range rects {
		c := geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
		rects[i] = geo.RectAround(c, rng.Float64()*300)
	}

	linearCov := make([][]ID, len(queries))
	for i, q := range queries {
		linearCov[i] = n.CamerasCovering(q)
	}
	linearInt := make([][]ID, len(rects))
	for i, r := range rects {
		linearInt[i] = n.CamerasIntersecting(r)
	}

	n.BuildIndex(0)
	for i, q := range queries {
		got := n.CamerasCovering(q)
		if !idsEqual(got, linearCov[i]) {
			t.Fatalf("covering(%v): indexed %v != linear %v", q, got, linearCov[i])
		}
	}
	for i, r := range rects {
		got := n.CamerasIntersecting(r)
		if !idsEqual(got, linearInt[i]) {
			t.Fatalf("intersecting(%v): indexed %v != linear %v", r, got, linearInt[i])
		}
	}

	// Mutation invalidates the index; answers must stay correct.
	n.Add(New(9999, geo.Pt(1000, 1000), 0, 3.14159, 500))
	got := n.CamerasCovering(geo.Pt(1000, 1200))
	found := false
	for _, id := range got {
		if id == 9999 {
			found = true
		}
	}
	if !found {
		t.Error("camera added after BuildIndex not visible to covering query")
	}
}

func idsEqual(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
