package camera

import (
	"math"
	"testing"

	"stcam/internal/geo"
)

func TestCameraSees(t *testing.T) {
	// Camera at origin facing +x, 45° half-FOV, 100 m range.
	c := New(1, geo.Pt(0, 0), 0, math.Pi/4, 100)
	tests := []struct {
		name string
		p    geo.Point
		want bool
	}{
		{"on-axis", geo.Pt(50, 0), true},
		{"at-apex", geo.Pt(0, 0), true},
		{"at-range", geo.Pt(100, 0), true},
		{"beyond-range", geo.Pt(101, 0), false},
		{"within-angle", geo.Pt(50, 40), true},   // atan(40/50) ≈ 38.7° < 45°
		{"outside-angle", geo.Pt(50, 60), false}, // atan(60/50) ≈ 50.2° > 45°
		{"behind", geo.Pt(-10, 0), false},
		{"edge-angle", geo.Pt(50, 50), true}, // exactly 45°
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.Sees(tt.p); got != tt.want {
				t.Errorf("Sees(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestCameraSeesWrapAround(t *testing.T) {
	// Facing -x (pi); the FOV straddles the angle wrap at ±pi.
	c := New(1, geo.Pt(0, 0), math.Pi, math.Pi/4, 100)
	if !c.Sees(geo.Pt(-50, 5)) || !c.Sees(geo.Pt(-50, -5)) {
		t.Error("wrap-around FOV broken")
	}
	if c.Sees(geo.Pt(50, 0)) {
		t.Error("sees behind itself")
	}
}

func TestOmnidirectionalCamera(t *testing.T) {
	c := New(1, geo.Pt(0, 0), 0, math.Pi, 50)
	for _, p := range []geo.Point{{X: 30, Y: 0}, {X: -30, Y: 0}, {X: 0, Y: 30}, {X: 0, Y: -30}} {
		if !c.Sees(p) {
			t.Errorf("omni camera misses %v", p)
		}
	}
	if c.Sees(geo.Pt(51, 0)) {
		t.Error("omni camera sees beyond range")
	}
	if got := c.FOV().Area(); math.Abs(got-math.Pi*2500)/(math.Pi*2500) > 0.02 {
		t.Errorf("omni FOV area = %v", got)
	}
}

func TestNewCameraPanics(t *testing.T) {
	for _, tc := range []struct {
		halfFOV, rng float64
	}{{0, 100}, {-1, 100}, {math.Pi + 0.1, 100}, {1, 0}, {1, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(halfFOV=%v, range=%v) did not panic", tc.halfFOV, tc.rng)
				}
			}()
			New(1, geo.Pt(0, 0), 0, tc.halfFOV, tc.rng)
		}()
	}
}

func TestCameraOverlaps(t *testing.T) {
	a := New(1, geo.Pt(0, 0), 0, math.Pi/4, 100)
	b := New(2, geo.Pt(50, 0), math.Pi, math.Pi/4, 100) // facing back at a
	if !a.Overlaps(b) {
		t.Error("facing cameras should overlap")
	}
	c := New(3, geo.Pt(0, 1000), 0, math.Pi/4, 100)
	if a.Overlaps(c) {
		t.Error("distant cameras should not overlap")
	}
	d := New(4, geo.Pt(-50, 0), math.Pi, math.Pi/4, 100) // back to back with a
	if a.Overlaps(d) {
		t.Error("back-to-back cameras should not overlap")
	}
}

func TestNetworkAddRemove(t *testing.T) {
	n := NewNetwork()
	n.Add(New(1, geo.Pt(0, 0), 0, 1, 10))
	n.Add(New(2, geo.Pt(5, 0), math.Pi, 1, 10))
	if n.Len() != 2 {
		t.Fatalf("Len = %d", n.Len())
	}
	if _, ok := n.Camera(1); !ok {
		t.Fatal("camera 1 missing")
	}
	if _, ok := n.Camera(9); ok {
		t.Fatal("phantom camera 9")
	}
	ids := n.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("IDs = %v", ids)
	}
	if !n.Remove(1) {
		t.Fatal("remove failed")
	}
	if n.Remove(1) {
		t.Fatal("double remove succeeded")
	}
	if n.Len() != 1 {
		t.Fatalf("Len after remove = %d", n.Len())
	}
}

func TestNetworkRemoveCleansEdges(t *testing.T) {
	n := NewNetwork()
	n.Add(New(1, geo.Pt(0, 0), 0, 1, 50))
	n.Add(New(2, geo.Pt(30, 0), math.Pi, 1, 50))
	n.SeedGeometricEdges(0)
	if len(n.Neighbors(1)) != 1 {
		t.Fatalf("neighbors before remove: %v", n.Neighbors(1))
	}
	n.Remove(2)
	if len(n.Neighbors(1)) != 0 {
		t.Errorf("dangling edge after remove: %v", n.Neighbors(1))
	}
	if n.EdgeCount() != 0 {
		t.Errorf("EdgeCount = %d", n.EdgeCount())
	}
}

func TestSeedGeometricEdges(t *testing.T) {
	n := NewNetwork()
	// Three cameras in a row; 1↔2 overlap, 3 is isolated.
	n.Add(New(1, geo.Pt(0, 0), 0, math.Pi/4, 100))
	n.Add(New(2, geo.Pt(80, 0), math.Pi, math.Pi/4, 100))
	n.Add(New(3, geo.Pt(5000, 0), 0, math.Pi/4, 100))
	added := n.SeedGeometricEdges(0)
	if added != 2 {
		t.Errorf("added %d edges, want 2 (bidirectional pair)", added)
	}
	if got := n.Neighbors(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("Neighbors(1) = %v", got)
	}
	if got := n.Neighbors(3); len(got) != 0 {
		t.Errorf("Neighbors(3) = %v", got)
	}
	// Re-seeding must be idempotent.
	if added := n.SeedGeometricEdges(0); added != 0 {
		t.Errorf("re-seed added %d edges", added)
	}
}

func TestSeedGeometricEdgesWithGap(t *testing.T) {
	n := NewNetwork()
	// Two cameras whose FOVs end ~20 m apart.
	n.Add(New(1, geo.Pt(0, 0), 0, math.Pi/4, 50))         // covers x ∈ [0, 50]
	n.Add(New(2, geo.Pt(120, 0), math.Pi, math.Pi/4, 50)) // covers x ∈ [70, 120]
	if added := n.SeedGeometricEdges(0); added != 0 {
		t.Fatalf("disjoint FOVs linked without gap tolerance (%d edges)", added)
	}
	if added := n.SeedGeometricEdges(30); added != 2 {
		t.Errorf("gap-tolerant seeding added %d edges, want 2", added)
	}
}

func TestObserveTransitLearnsEdges(t *testing.T) {
	n := NewNetwork()
	n.Add(New(1, geo.Pt(0, 0), 0, 1, 10))
	n.Add(New(2, geo.Pt(1000, 0), 0, 1, 10))
	if err := n.ObserveTransit(1, 2, 12); err != nil {
		t.Fatal(err)
	}
	if err := n.ObserveTransit(1, 2, 18); err != nil {
		t.Fatal(err)
	}
	e, ok := n.Edge(1, 2)
	if !ok {
		t.Fatal("edge not learned")
	}
	if e.Count != 2 {
		t.Errorf("Count = %d", e.Count)
	}
	if math.Abs(e.MeanTransitS-15) > 1e-9 {
		t.Errorf("MeanTransitS = %v, want 15", e.MeanTransitS)
	}
	if e.Geometric {
		t.Error("learned edge marked geometric")
	}
	// Transit to an unknown camera is an error.
	if err := n.ObserveTransit(1, 99, 5); err == nil {
		t.Error("transit to unknown camera accepted")
	}
	if err := n.ObserveTransit(99, 1, 5); err == nil {
		t.Error("transit from unknown camera accepted")
	}
	// Self-transit is a no-op.
	if err := n.ObserveTransit(1, 1, 5); err != nil {
		t.Errorf("self transit errored: %v", err)
	}
	if _, ok := n.Edge(1, 1); ok {
		t.Error("self edge created")
	}
}

func TestPruneLearnedEdges(t *testing.T) {
	n := NewNetwork()
	n.Add(New(1, geo.Pt(0, 0), 0, math.Pi/4, 100))
	n.Add(New(2, geo.Pt(80, 0), math.Pi, math.Pi/4, 100))
	n.Add(New(3, geo.Pt(4000, 0), 0, 1, 10))
	n.SeedGeometricEdges(0) // 1↔2 geometric
	n.ObserveTransit(1, 3, 60)
	n.ObserveTransit(2, 3, 60)
	n.ObserveTransit(2, 3, 55)
	dropped := n.PruneLearnedEdges(2)
	if dropped != 1 {
		t.Errorf("dropped %d, want 1 (the single-transit 1→3)", dropped)
	}
	if _, ok := n.Edge(1, 3); ok {
		t.Error("weak learned edge survived prune")
	}
	if _, ok := n.Edge(2, 3); !ok {
		t.Error("strong learned edge pruned")
	}
	if _, ok := n.Edge(1, 2); !ok {
		t.Error("geometric edge pruned")
	}
}

func TestCamerasCoveringAndIntersecting(t *testing.T) {
	n := NewNetwork()
	n.Add(New(1, geo.Pt(0, 0), 0, math.Pi/4, 100))
	n.Add(New(2, geo.Pt(200, 0), math.Pi, math.Pi/4, 100))
	p := geo.Pt(50, 0)
	if got := n.CamerasCovering(p); len(got) != 1 || got[0] != 1 {
		t.Errorf("CamerasCovering(%v) = %v", p, got)
	}
	r := geo.RectOf(90, -10, 160, 10) // straddles both FOV tips
	got := n.CamerasIntersecting(r)
	if len(got) != 2 {
		t.Errorf("CamerasIntersecting = %v, want both", got)
	}
	far := geo.RectOf(1000, 1000, 1100, 1100)
	if got := n.CamerasIntersecting(far); len(got) != 0 {
		t.Errorf("CamerasIntersecting(far) = %v", got)
	}
}

func TestCoverage(t *testing.T) {
	world := geo.RectOf(0, 0, 100, 100)
	empty := NewNetwork()
	if got := empty.Coverage(world, 10); got != 0 {
		t.Errorf("empty coverage = %v", got)
	}
	full := NewNetwork()
	full.Add(New(1, geo.Pt(50, 50), 0, math.Pi, 200)) // omni covering everything
	if got := full.Coverage(world, 10); got != 1 {
		t.Errorf("full coverage = %v", got)
	}
	partial := NewNetwork()
	partial.Add(New(1, geo.Pt(50, 50), 0, math.Pi, 30))
	got := partial.Coverage(world, 30)
	if got <= 0.1 || got >= 0.6 {
		t.Errorf("partial coverage = %v, want within (0.1, 0.6)", got)
	}
}

func TestGridLayout(t *testing.T) {
	cfg := LayoutConfig{World: geo.RectOf(0, 0, 1000, 1000), Seed: 1}
	n := GridLayout(cfg, 4, 5)
	if n.Len() != 20 {
		t.Fatalf("Len = %d, want 20", n.Len())
	}
	// Deterministic under the same seed.
	n2 := GridLayout(cfg, 4, 5)
	for _, id := range n.IDs() {
		a, _ := n.Camera(id)
		b, _ := n2.Camera(id)
		if a.Pos != b.Pos || a.Orient != b.Orient {
			t.Fatalf("layout not deterministic at camera %d", id)
		}
	}
	// All cameras inside the world.
	for _, c := range n.All() {
		if !cfg.World.Contains(c.Pos) {
			t.Errorf("camera %d at %v outside world", c.ID, c.Pos)
		}
	}
	// A seeded grid should produce a connected-ish graph with modest degree.
	n.SeedGeometricEdges(100)
	if n.EdgeCount() == 0 {
		t.Error("grid layout produced no vision-graph edges")
	}
	if d := n.AvgDegree(); d > 12 {
		t.Errorf("grid layout avg degree %v is suspiciously dense", d)
	}
}

func TestCorridorLayout(t *testing.T) {
	cfg := LayoutConfig{World: geo.RectOf(0, 0, 1000, 100), Seed: 2}
	n := CorridorLayout(cfg, 10)
	if n.Len() != 10 {
		t.Fatalf("Len = %d", n.Len())
	}
	n.SeedGeometricEdges(40)
	// Chain topology: average degree should be around 2, far below N-1.
	if d := n.AvgDegree(); d < 0.5 || d > 4.5 {
		t.Errorf("corridor avg degree = %v, want ≈ 2", d)
	}
}
