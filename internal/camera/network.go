package camera

import (
	"fmt"
	"sort"
	"sync"

	"stcam/internal/geo"
)

// Network is the set of cameras under management plus the vision graph: a
// directed multigraph edge (a → b) means an object leaving camera a's view
// plausibly appears next in camera b's view. The graph is seeded from FOV
// geometry and refined online from observed transits; tracking uses it to
// prime only the likely next cameras during a handoff.
//
// Network is safe for concurrent use: reads vastly outnumber writes (the
// topology changes only on registration and learning updates).
type Network struct {
	mu    sync.RWMutex
	cams  map[ID]*Camera
	adj   map[ID]map[ID]*EdgeStats
	index *spatialIndex // optional covering accelerator; nil → linear scans
}

// EdgeStats accumulates transit observations along a vision-graph edge.
type EdgeStats struct {
	Count        int64   // observed transits a → b
	MeanTransitS float64 // running mean transit time, seconds
	Geometric    bool    // edge came from FOV geometry (vs learned)
}

// NewNetwork returns an empty camera network.
func NewNetwork() *Network {
	return &Network{
		cams: make(map[ID]*Camera),
		adj:  make(map[ID]map[ID]*EdgeStats),
	}
}

// Add registers a camera. Re-registering an existing ID replaces the camera
// but keeps its learned edges (re-calibration should not forget topology).
func (n *Network) Add(c *Camera) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cams[c.ID] = c
	if n.adj[c.ID] == nil {
		n.adj[c.ID] = make(map[ID]*EdgeStats)
	}
	n.index = nil // registration invalidates the covering index
}

// Remove deletes a camera and every edge touching it, returning whether it
// existed.
func (n *Network) Remove(id ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.cams[id]; !ok {
		return false
	}
	delete(n.cams, id)
	delete(n.adj, id)
	for _, edges := range n.adj {
		delete(edges, id)
	}
	n.index = nil // registration invalidates the covering index
	return true
}

// Camera returns the camera with the given ID.
func (n *Network) Camera(id ID) (*Camera, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	c, ok := n.cams[id]
	return c, ok
}

// Len returns the number of registered cameras.
func (n *Network) Len() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.cams)
}

// IDs returns all camera IDs in ascending order.
func (n *Network) IDs() []ID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]ID, 0, len(n.cams))
	for id := range n.cams {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// All returns the cameras sorted by ID.
func (n *Network) All() []*Camera {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*Camera, 0, len(n.cams))
	for _, c := range n.cams {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SeedGeometricEdges creates bidirectional vision-graph edges between every
// pair of cameras whose FOVs overlap or whose FOV boundaries come within
// maxGap meters of each other (an object can cross the blind gap). It returns
// the number of directed edges added. Existing learned edges are preserved.
func (n *Network) SeedGeometricEdges(maxGap float64) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	cams := make([]*Camera, 0, len(n.cams))
	for _, c := range n.cams {
		cams = append(cams, c)
	}
	sort.Slice(cams, func(i, j int) bool { return cams[i].ID < cams[j].ID })
	added := 0
	for i := 0; i < len(cams); i++ {
		a := cams[i]
		grown := a.bounds.Expand(maxGap)
		for j := i + 1; j < len(cams); j++ {
			b := cams[j]
			if !grown.Intersects(b.bounds) {
				continue
			}
			near := a.Overlaps(b)
			if !near && maxGap > 0 {
				// Conservative proximity: expanded bounding boxes already
				// intersect; accept when the FOV polygons come close.
				near = polysWithin(a.fov, b.fov, maxGap)
			}
			if near {
				added += n.addEdgeLocked(a.ID, b.ID, true)
				added += n.addEdgeLocked(b.ID, a.ID, true)
			}
		}
	}
	return added
}

// polysWithin reports whether any vertex of one polygon is within gap of the
// other polygon's bounding box (cheap approximation of polygon distance,
// adequate for blind-gap seeding).
func polysWithin(a, b geo.Polygon, gap float64) bool {
	bb := b.Bounds()
	for _, p := range a {
		if bb.Expand(gap).Contains(p) {
			return true
		}
	}
	ab := a.Bounds()
	for _, p := range b {
		if ab.Expand(gap).Contains(p) {
			return true
		}
	}
	return false
}

func (n *Network) addEdgeLocked(from, to ID, geometric bool) int {
	if from == to {
		return 0
	}
	edges := n.adj[from]
	if edges == nil {
		edges = make(map[ID]*EdgeStats)
		n.adj[from] = edges
	}
	if e, ok := edges[to]; ok {
		if geometric {
			e.Geometric = true
		}
		return 0
	}
	edges[to] = &EdgeStats{Geometric: geometric}
	return 1
}

// ObserveTransit records that an object left camera `from` and re-appeared at
// camera `to` after transitSeconds. Unknown edges are learned. Transits
// between unregistered cameras are rejected.
func (n *Network) ObserveTransit(from, to ID, transitSeconds float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.cams[from]; !ok {
		return fmt.Errorf("camera: transit from unknown camera %d", from)
	}
	if _, ok := n.cams[to]; !ok {
		return fmt.Errorf("camera: transit to unknown camera %d", to)
	}
	if from == to {
		return nil
	}
	n.addEdgeLocked(from, to, false)
	e := n.adj[from][to]
	e.Count++
	// Running mean.
	e.MeanTransitS += (transitSeconds - e.MeanTransitS) / float64(e.Count)
	return nil
}

// Neighbors returns the IDs reachable from the given camera along the vision
// graph, sorted ascending.
func (n *Network) Neighbors(id ID) []ID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	edges := n.adj[id]
	out := make([]ID, 0, len(edges))
	for to := range edges {
		out = append(out, to)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edge returns the stats for the directed edge from → to.
func (n *Network) Edge(from, to ID) (EdgeStats, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	e, ok := n.adj[from][to]
	if !ok {
		return EdgeStats{}, false
	}
	return *e, true
}

// EdgeCount returns the number of directed edges in the vision graph.
func (n *Network) EdgeCount() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	total := 0
	for _, edges := range n.adj {
		total += len(edges)
	}
	return total
}

// PruneLearnedEdges removes learned (non-geometric) edges with fewer than
// minCount observed transits, returning how many were dropped. Geometric
// edges always survive.
func (n *Network) PruneLearnedEdges(minCount int64) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	dropped := 0
	for _, edges := range n.adj {
		for to, e := range edges {
			if !e.Geometric && e.Count < minCount {
				delete(edges, to)
				dropped++
			}
		}
	}
	return dropped
}

// CamerasCovering returns the IDs of cameras whose FOV contains p, sorted.
func (n *Network) CamerasCovering(p geo.Point) []ID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []ID
	if n.index != nil {
		for _, id := range n.candidatesFor(geo.Rect{Min: p, Max: p}) {
			if n.cams[id].Sees(p) {
				out = append(out, id)
			}
		}
	} else {
		for id, c := range n.cams {
			if c.Sees(p) {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CamerasIntersecting returns the IDs of cameras whose FOV intersects r,
// sorted.
func (n *Network) CamerasIntersecting(r geo.Rect) []ID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []ID
	if n.index != nil {
		for _, id := range n.candidatesFor(r) {
			c := n.cams[id]
			if c.bounds.Intersects(r) && c.fov.IntersectsRect(r) {
				out = append(out, id)
			}
		}
	} else {
		for id, c := range n.cams {
			if c.bounds.Intersects(r) && c.fov.IntersectsRect(r) {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Coverage estimates the fraction of the world rectangle observable by at
// least one camera, sampling on a res × res lattice. res < 2 is clamped to 2.
func (n *Network) Coverage(world geo.Rect, res int) float64 {
	if res < 2 {
		res = 2
	}
	n.mu.RLock()
	cams := make([]*Camera, 0, len(n.cams))
	for _, c := range n.cams {
		cams = append(cams, c)
	}
	n.mu.RUnlock()
	covered, total := 0, 0
	for i := 0; i < res; i++ {
		for j := 0; j < res; j++ {
			p := geo.Pt(
				world.Min.X+(world.Width())*float64(i)/float64(res-1),
				world.Min.Y+(world.Height())*float64(j)/float64(res-1),
			)
			total++
			for _, c := range cams {
				if c.Sees(p) {
					covered++
					break
				}
			}
		}
	}
	return float64(covered) / float64(total)
}

// AvgDegree returns the mean out-degree of the vision graph (0 when the
// network is empty). Experiment R3's message bound is O(degree), so this is
// the number that explains the handoff-cost gap against broadcast.
func (n *Network) AvgDegree() float64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(n.cams) == 0 {
		return 0
	}
	total := 0
	for _, edges := range n.adj {
		total += len(edges)
	}
	return float64(total) / float64(len(n.cams))
}
