package camera

import (
	"math"
	"math/rand"

	"stcam/internal/geo"
)

// LayoutConfig describes a synthetic camera deployment, the substitute for a
// real campus/city installation (see DESIGN.md §4). Deployments produced here
// have the topological properties that matter to the framework: partial
// coverage, blind gaps between views, and a sparse adjacency structure.
type LayoutConfig struct {
	World    geo.Rect
	HalfFOV  float64 // radians; 0 selects the default (30°)
	Range    float64 // meters; 0 selects a range that roughly tiles the world
	Jitter   float64 // positional noise as a fraction of cell size, [0, 1)
	OmniFrac float64 // fraction of cameras that are omnidirectional (junction cams)
	Seed     int64
}

const defaultHalfFOV = math.Pi / 6

// GridLayout places rows × cols cameras on a lattice over the world, each
// oriented pseudo-randomly (deterministic under Seed), and returns the
// populated network. IDs are assigned row-major starting at 1.
func GridLayout(cfg LayoutConfig, rows, cols int) *Network {
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	halfFOV := cfg.HalfFOV
	if halfFOV == 0 {
		halfFOV = defaultHalfFOV
	}
	cellW := cfg.World.Width() / float64(cols)
	cellH := cfg.World.Height() / float64(rows)
	rngM := cfg.Range
	if rngM == 0 {
		rngM = 0.9 * math.Max(cellW, cellH)
	}
	net := NewNetwork()
	id := ID(1)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pos := geo.Pt(
				cfg.World.Min.X+(float64(c)+0.5)*cellW,
				cfg.World.Min.Y+(float64(r)+0.5)*cellH,
			)
			if cfg.Jitter > 0 {
				pos = pos.Add(geo.Pt(
					(rng.Float64()-0.5)*cfg.Jitter*cellW,
					(rng.Float64()-0.5)*cfg.Jitter*cellH,
				))
			}
			orient := rng.Float64() * 2 * math.Pi
			hf := halfFOV
			if cfg.OmniFrac > 0 && rng.Float64() < cfg.OmniFrac {
				hf = math.Pi
			}
			net.Add(New(id, pos, orient, hf, rngM))
			id++
		}
	}
	return net
}

// CorridorLayout places n cameras along a horizontal corridor through the
// middle of the world, alternating view directions, producing the chain
// topology typical of hallway/roadway deployments. It is the worst case for
// broadcast handoff (degree 2 vs N).
func CorridorLayout(cfg LayoutConfig, n int) *Network {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	halfFOV := cfg.HalfFOV
	if halfFOV == 0 {
		halfFOV = defaultHalfFOV
	}
	spacing := cfg.World.Width() / float64(n)
	rngM := cfg.Range
	if rngM == 0 {
		rngM = spacing * 1.2
	}
	y := cfg.World.Center().Y
	net := NewNetwork()
	for i := 0; i < n; i++ {
		pos := geo.Pt(cfg.World.Min.X+(float64(i)+0.5)*spacing, y)
		// Alternate facing along the corridor, with slight angular jitter.
		orient := 0.0
		if i%2 == 1 {
			orient = math.Pi
		}
		orient += (rng.Float64() - 0.5) * 0.2
		net.Add(New(ID(i+1), pos, orient, halfFOV, rngM))
	}
	return net
}
