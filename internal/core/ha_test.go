package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/sim"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// haOpts is the fast-failover option set the HA tests share: a short lease so
// failover happens within test patience, and a tight retry policy so calls to
// a dead coordinator fail fast instead of backing off for seconds.
func haOpts(lease time.Duration) Options {
	return Options{
		LeaseInterval:    lease,
		HeartbeatTimeout: 3 * time.Second,
		CallTimeout:      500 * time.Millisecond,
		RetryPolicy: cluster.Policy{
			MaxAttempts:       3,
			PerAttemptTimeout: 500 * time.Millisecond,
			BaseBackoff:       time.Millisecond,
			MaxBackoff:        8 * time.Millisecond,
		},
	}
}

// newHATestCluster builds an m-coordinator, n-worker HA cluster and cleans it
// up with the test.
func newHATestCluster(t *testing.T, m, n int, seed int64, opts Options) *HACluster {
	t.Helper()
	hc, err := NewHACluster(m, n, nil, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hc.Stop)
	return hc
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// leaderAmong returns the first coordinator in cs reporting the leader role,
// or nil. Tests that kill a leader scan the survivors only: a stopped
// coordinator's in-memory role is frozen at "leader" and proves nothing.
func leaderAmong(cs []*Coordinator) *Coordinator {
	for _, c := range cs {
		if role, _, _ := c.Role(); role == "leader" {
			return c
		}
	}
	return nil
}

// TestHAReplicationToStandby: control-plane mutations on the leader — camera
// registry, assignment, membership, track registry — stream to the standby,
// which answers leader-only traffic with a CodeNotLeader redirect naming the
// leader while serving reads from the replicated state.
func TestHAReplicationToStandby(t *testing.T) {
	hc := newHATestCluster(t, 2, 2, 1, haOpts(150*time.Millisecond))
	leader, standby := hc.Coordinators[0], hc.Coordinators[1]

	if role, _, _ := leader.Role(); role != "leader" {
		t.Fatalf("coordinator 1 booted as %q, want leader", role)
	}
	if role, _, _ := standby.Role(); role != "standby" {
		t.Fatalf("coordinator 2 booted as %q, want standby", role)
	}

	if err := leader.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	feat := make([]float32, 8)
	feat[0] = 1
	trackID, _, err := leader.StartTrack(ctx, 1, feat, simT0)
	if err != nil {
		t.Fatal(err)
	}

	waitFor(t, 2*time.Second, "standby journal catch-up", func() bool {
		applied := standby.JournalApplied()
		return applied > 0 && applied == leader.JournalApplied()
	})

	if got, want := standby.Epoch(), leader.Epoch(); got != want {
		t.Fatalf("standby epoch %d, leader epoch %d", got, want)
	}
	la, sa := leader.Assignment(), standby.Assignment()
	if len(sa) != len(la) {
		t.Fatalf("standby assignment has %d cameras, leader %d", len(sa), len(la))
	}
	for cam, node := range la {
		if sa[cam] != node {
			t.Fatalf("camera %d assigned to %s on standby, %s on leader", cam, sa[cam], node)
		}
	}
	owner, lastCam, _, ok := standby.TrackInfo(trackID)
	if !ok {
		t.Fatalf("track %d missing from standby registry", trackID)
	}
	if wantOwner, wantCam, _, _ := leader.TrackInfo(trackID); owner != wantOwner || lastCam != wantCam {
		t.Fatalf("standby track state (%s, cam %d) != leader (%s, cam %d)", owner, lastCam, wantOwner, wantCam)
	}
	if len(standby.Alive()) != len(leader.Alive()) {
		t.Fatalf("standby sees %d live workers, leader %d", len(standby.Alive()), len(leader.Alive()))
	}

	// Leader-only traffic is redirected with the leader's address.
	_, err = hc.Net.View("client").Call(ctx, CoordAddrHA(2), &wire.Heartbeat{Node: "w01", Seq: 1})
	var re *cluster.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeNotLeader {
		t.Fatalf("standby answered heartbeat with %v, want CodeNotLeader redirect", err)
	}
	if re.Message != CoordAddrHA(1) {
		t.Fatalf("redirect names %q, want %q", re.Message, CoordAddrHA(1))
	}

	// Reads fall through on the standby (degraded mode).
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	if _, _, err := standby.RangeMeta(ctx, world1, window, 0); err != nil {
		t.Fatalf("standby read failed: %v", err)
	}
}

// TestHAFailoverElectsStandby: killing the leader promotes the lowest-ID
// up-to-date standby, the epoch moves past the deposed leader's, workers
// re-home via rotation, and the replicated track registry survives intact.
func TestHAFailoverElectsStandby(t *testing.T) {
	lease := 150 * time.Millisecond
	hc := newHATestCluster(t, 3, 2, 2, haOpts(lease))
	leader := hc.Coordinators[0]

	if err := leader.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	feat := make([]float32, 8)
	feat[0] = 1
	trackID, _, err := leader.StartTrack(ctx, 1, feat, simT0)
	if err != nil {
		t.Fatal(err)
	}
	wantApplied := leader.JournalApplied()
	waitFor(t, 2*time.Second, "standbys caught up", func() bool {
		return hc.Coordinators[1].JournalApplied() == wantApplied &&
			hc.Coordinators[2].JournalApplied() == wantApplied
	})
	epoch0 := leader.Epoch()
	oldOwner, _, _, _ := leader.TrackInfo(trackID)

	leader.Stop()
	survivors := hc.Coordinators[1:]
	waitFor(t, 20*lease, "a survivor to take over", func() bool {
		return leaderAmong(survivors) != nil
	})
	newLeader := leaderAmong(survivors)
	if newLeader != hc.Coordinators[1] {
		role, _, _ := hc.Coordinators[1].Role()
		t.Fatalf("election picked %s; want lowest-ID up-to-date standby c2 (c2 role %q)", newLeader.Addr(), role)
	}
	if newLeader.Epoch() <= epoch0 {
		t.Fatalf("promoted epoch %d did not move past deposed leader's %d", newLeader.Epoch(), epoch0)
	}
	if c := newLeader.Metrics().Counter("failover.total").Value(); c < 1 {
		t.Fatalf("failover.total = %d after a failover, want >= 1", c)
	}
	if s := newLeader.Metrics().Counter("leaderless.seconds").Value(); s < 1 {
		t.Fatalf("leaderless.seconds = %d after a failover, want >= 1", s)
	}

	// The replicated track registry survived the leader's death.
	owner, _, _, ok := newLeader.TrackInfo(trackID)
	if !ok {
		t.Fatalf("track %d lost across failover", trackID)
	}
	if owner != oldOwner {
		t.Fatalf("track %d owner %s after failover, want %s", trackID, owner, oldOwner)
	}

	// Workers re-home: their next heartbeats rotate off the dead coordinator
	// (or follow the redirect) and land on the new leader.
	waitFor(t, 2*time.Second, "workers re-homed to the new leader", func() bool {
		for _, w := range hc.Workers {
			w.SendHeartbeat(ctx) //nolint:errcheck // retried until the waitFor deadline
		}
		return len(newLeader.Alive()) == len(hc.Workers)
	})

	// The data plane serves through the new leader.
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	_, meta, err := newLeader.RangeMeta(ctx, world1, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Answered > meta.Asked {
		t.Fatalf("scatter over-reports after failover: answered %d > asked %d", meta.Answered, meta.Asked)
	}
	if err := newLeader.StopTrack(ctx, trackID); err != nil {
		t.Fatalf("stop track on new leader: %v", err)
	}
}

// TestHAMajorityAckGatesClientAck is the regression test for the false-ack
// hole: client-facing control mutations must not be acknowledged until a
// majority of the HA group has applied the record. A leader partitioned from
// every peer (group minority) must fail mutations with ErrNotCommitted and
// reject registrations with CodeUnavailable instead of silently accepting
// state a failover would forget; on the majority side, a successful mutation
// implies at least one standby has already applied it by the time the call
// returns.
func TestHAMajorityAckGatesClientAck(t *testing.T) {
	lease := 120 * time.Millisecond
	hc := newHATestCluster(t, 3, 1, 5, haOpts(lease))
	old := hc.Coordinators[0]

	// Healthy majority: the mutation is synchronous, so when it returns at
	// least one standby (the acking majority member) has already applied it.
	if err := old.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	caughtUp := 0
	for _, s := range hc.Coordinators[1:] {
		if s.JournalApplied() == old.JournalApplied() {
			caughtUp++
		}
	}
	if caughtUp < 1 {
		t.Fatalf("no standby had applied the mutation when the client ack returned (leader at %d)", old.JournalApplied())
	}

	// Cut the leader off from both peers (its worker link stays up): it is
	// now the minority side and must stop acknowledging mutations.
	hc.Net.Partition(CoordAddrHA(1), CoordAddrHA(2))
	hc.Net.Partition(CoordAddrHA(1), CoordAddrHA(3))

	if err := old.AddCameras(ctx, gridCams(world1, 3), 50); !errors.Is(err, ErrNotCommitted) {
		t.Fatalf("minority leader acked AddCameras (err=%v), want ErrNotCommitted", err)
	}
	if c := old.Metrics().Counter("ha.commit_timeouts").Value(); c < 1 {
		t.Fatalf("ha.commit_timeouts = %d on the minority leader, want >= 1", c)
	}
	_, err := hc.Net.View("client").Call(ctx, CoordAddrHA(1), &wire.Register{Node: "w09", Addr: "worker-09", Capacity: 1})
	var re *cluster.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeUnavailable {
		t.Fatalf("minority leader answered Register with %v, want CodeUnavailable", err)
	}

	// Meanwhile the majority side fails over and keeps committing.
	survivors := hc.Coordinators[1:]
	waitFor(t, 20*lease, "majority side to elect a leader", func() bool {
		return leaderAmong(survivors) != nil
	})
	newLeader := leaderAmong(survivors)

	hc.Net.Heal(CoordAddrHA(1), CoordAddrHA(2))
	hc.Net.Heal(CoordAddrHA(1), CoordAddrHA(3))
	waitFor(t, 20*lease, "deposed minority leader to step down", func() bool {
		role, _, _ := old.Role()
		return role == "standby"
	})

	// Majority restored: mutations commit again, synchronously.
	if err := newLeader.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatalf("post-heal AddCameras on the new leader: %v", err)
	}
	caughtUp = 0
	for _, c := range hc.Coordinators {
		if c != newLeader && c.JournalApplied() == newLeader.JournalApplied() {
			caughtUp++
		}
	}
	if caughtUp < 1 {
		t.Fatalf("no standby in sync with the new leader (at %d) when its ack returned", newLeader.JournalApplied())
	}
}

// TestHAJournalCompactionAndSnapshotCatchUp: the journal does not grow
// without bound — past compactMinJournal resident records the
// majority-durable prefix folds into the base offset — and a peer that needs
// compacted history (here: a standby partitioned through thousands of
// appends) catches up from a full-state snapshot frame instead of a replay
// from index 1.
func TestHAJournalCompactionAndSnapshotCatchUp(t *testing.T) {
	lease := 120 * time.Millisecond
	hc := newHATestCluster(t, 3, 1, 6, haOpts(lease))
	leader, behind := hc.Coordinators[0], hc.Coordinators[2]

	if err := leader.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	// c3 misses the whole append burst; c2 keeps the majority acking.
	hc.Net.Partition(CoordAddrHA(1), CoordAddrHA(3))

	client := hc.Net.View("client")
	appends := compactMinJournal + 500
	for i := 0; i < appends; i++ {
		// Re-registering is an idempotent membership upsert and the cheapest
		// journaled mutation; each call is majority-acked before returning.
		if _, err := client.Call(ctx, CoordAddrHA(1), &wire.Register{Node: "w01", Addr: "worker-01", Capacity: 1}); err != nil {
			t.Fatalf("register append %d: %v", i, err)
		}
	}

	base, resident := leader.JournalStats()
	if base == 0 {
		t.Fatalf("leader journal never compacted after %d appends (resident %d)", appends, resident)
	}
	if resident > compactMinJournal+64 {
		t.Fatalf("leader journal holds %d resident records after compaction, want <= %d", resident, compactMinJournal+64)
	}
	if c := leader.Metrics().Counter("ha.compacted").Value(); c < 1 {
		t.Fatalf("ha.compacted = %d on the leader, want >= 1", c)
	}

	// Heal: the stale standby's ack cursor is far below the leader's base, so
	// catch-up must ride a snapshot frame, then the live tail.
	hc.Net.Heal(CoordAddrHA(1), CoordAddrHA(3))
	waitFor(t, 5*time.Second, "partitioned standby to catch up via snapshot", func() bool {
		return behind.JournalApplied() == leader.JournalApplied()
	})
	if c := leader.Metrics().Counter("ha.snapshots_sent").Value(); c < 1 {
		t.Fatalf("ha.snapshots_sent = %d on the leader, want >= 1", c)
	}
	if c := behind.Metrics().Counter("ha.snapshots_applied").Value(); c < 1 {
		t.Fatalf("ha.snapshots_applied = %d on the caught-up standby, want >= 1", c)
	}
	// The snapshot carried real state, not just an index: epoch, assignment,
	// and membership all converged.
	if got, want := behind.Epoch(), leader.Epoch(); got != want {
		t.Fatalf("standby epoch %d after snapshot catch-up, leader %d", got, want)
	}
	la, sa := leader.Assignment(), behind.Assignment()
	if len(sa) != len(la) {
		t.Fatalf("standby assignment has %d cameras after snapshot, leader %d", len(sa), len(la))
	}
	for cam, node := range la {
		if sa[cam] != node {
			t.Fatalf("camera %d assigned to %s on standby, %s on leader", cam, sa[cam], node)
		}
	}
	if len(behind.Alive()) != len(leader.Alive()) {
		t.Fatalf("standby sees %d live workers after snapshot, leader %d", len(behind.Alive()), len(leader.Alive()))
	}
}

// TestHAElectionIgnoresStaleLeaderClaim: a deposed leader that still claims
// leadership at a stale epoch must not abort a standby's election — the
// lease rejects the renewal, and the claimant is ranked as an ordinary
// candidate. Before the fix, the standby cleared its election clock on any
// reachable "I am the leader" answer, deferring failover for as long as the
// stale claimant kept answering.
func TestHAElectionIgnoresStaleLeaderClaim(t *testing.T) {
	tr := cluster.NewInProc()
	t.Cleanup(func() { tr.Close() })

	// The stale claimant: always says it leads, at an epoch far below what
	// the standby's lease has already accepted, with a journal behind the
	// standby's — a deposed leader frozen in its old reign.
	stale := &wire.LeaderInfo{Node: "c1", Addr: "coord-1", IsLeader: true, Leader: "c1", LeaderAddr: "coord-1", Epoch: 1, Applied: 0}
	srv, err := tr.Serve("coord-1", func(_ context.Context, _ string, req any) (any, error) {
		switch m := req.(type) {
		case *wire.LeaderQuery:
			return stale, nil
		case *wire.Replicate:
			// Ack whatever the (promoted) standby streams so its majority
			// commit wait is satisfied.
			if m.SnapIndex > 0 {
				return &wire.ReplicateAck{Applied: m.SnapIndex}, nil
			}
			return &wire.ReplicateAck{Applied: m.FromIndex + uint64(len(m.Records)) - 1}, nil
		}
		return &wire.Error{Code: wire.CodeBadRequest, Message: "unexpected"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	opts := haOpts(100 * time.Millisecond)
	opts.CoordinatorID = "c2"
	opts.CoordinatorPeers = map[wire.NodeID]string{"c1": "coord-1"}
	opts.Standby = true
	standby := NewCoordinator("coord-2", tr, nil, opts)
	if err := standby.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(standby.Stop)

	// One real frame from the c1 reign at epoch 5: the standby's lease now
	// knows epoch 5, and its journal is ahead of the stale claimant's.
	resp, err := tr.Call(ctx, "coord-2", &wire.Replicate{
		Leader: "c1", LeaderAddr: "coord-1", Epoch: 5, Commit: 1, FromIndex: 1,
		Records: []wire.ControlRecord{{Index: 1, Epoch: 5, Op: wire.OpMember, Member: wire.MemberRecord{Node: "w99", Addr: "worker-99", Capacity: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack, ok := resp.(*wire.ReplicateAck); !ok || ack.Applied != 1 {
		t.Fatalf("seed replicate ack = %#v, want Applied 1", resp)
	}

	// The real c1 never renews again; only the stale claim keeps answering.
	// The standby must still fail over: renewal rejected, claimant outranked
	// (applied 1 beats 0), promotion follows.
	// The promotion counter lands after the role flip (Reassign runs in
	// between), so wait on both.
	waitFor(t, 5*time.Second, "standby to promote past the stale claimant", func() bool {
		role, _, _ := standby.Role()
		return role == "leader" && standby.Metrics().Counter("ha.promotions").Value() >= 1
	})
}

// TestHAStaleLeaderStepsDown: a leader partitioned away keeps believing it
// leads; the standby promotes with a higher epoch; on heal the deposed leader
// is fenced by the epoch, steps down, and resynchronizes its journal from the
// new leader's stream.
func TestHAStaleLeaderStepsDown(t *testing.T) {
	lease := 120 * time.Millisecond
	hc := newHATestCluster(t, 2, 1, 3, haOpts(lease))
	old, next := hc.Coordinators[0], hc.Coordinators[1]

	if err := old.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "standby caught up", func() bool {
		return next.JournalApplied() == old.JournalApplied()
	})

	hc.Net.Isolate(CoordAddrHA(1))
	waitFor(t, 20*lease, "standby promotion behind the partition", func() bool {
		role, _, _ := next.Role()
		return role == "leader"
	})
	if role, _, _ := old.Role(); role != "leader" {
		t.Fatalf("partitioned leader role %q; it cannot have learned of the new leader yet", role)
	}

	hc.Net.Rejoin(CoordAddrHA(1))
	waitFor(t, 20*lease, "deposed leader to step down", func() bool {
		role, _, _ := old.Role()
		return role == "standby"
	})
	if role, _, _ := next.Role(); role != "leader" {
		t.Fatalf("new leader role %q after heal, want leader", role)
	}
	if c := old.Metrics().Counter("ha.stepdowns").Value(); c < 1 {
		t.Fatalf("ha.stepdowns = %d on the deposed leader, want >= 1", c)
	}

	// The demoted node resynchronizes from the new leader's journal and
	// converges on its epoch.
	waitFor(t, 2*time.Second, "demoted node journal resync", func() bool {
		return old.JournalApplied() == next.JournalApplied() && old.Epoch() == next.Epoch()
	})
}

// TestHAWorkerQueuesPushesWhileLeaderless: a worker that cannot reach any
// coordinator queues its pushes (bounded) instead of dropping them, and
// drains the queue once a heartbeat lands again.
func TestHAWorkerQueuesPushesWhileLeaderless(t *testing.T) {
	hc := newHATestCluster(t, 2, 1, 4, haOpts(150*time.Millisecond))
	w := hc.Workers[0]

	if err := hc.Coordinators[0].AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}

	// Sever the worker from both coordinators — total control-plane outage
	// from its point of view.
	hc.Net.Partition(w.Addr(), CoordAddrHA(1))
	hc.Net.Partition(w.Addr(), CoordAddrHA(2))

	for i := 0; i < 3; i++ {
		w.pushCoord(ctx, &wire.TrackUpdate{TrackID: 900 + uint64(i), Camera: 1, Time: simT0})
	}
	if depth := w.Metrics().Gauge("handoff.queue_depth").Value(); depth != 3 {
		t.Fatalf("handoff.queue_depth = %d while leaderless, want 3", depth)
	}

	hc.Net.Heal(w.Addr(), CoordAddrHA(1))
	hc.Net.Heal(w.Addr(), CoordAddrHA(2))
	waitFor(t, 2*time.Second, "queued pushes to drain after heal", func() bool {
		w.SendHeartbeat(ctx) //nolint:errcheck // retried until the waitFor deadline
		return w.Metrics().Gauge("handoff.queue_depth").Value() == 0
	})
	if drained := w.Metrics().Counter("handoff.queue_drained").Value(); drained != 3 {
		t.Fatalf("handoff.queue_drained = %d, want 3", drained)
	}
}

// TestHAWorkerQueueSheddingIsBounded: the deferred-push queue sheds its
// oldest entries at the cap instead of growing without bound.
func TestHAWorkerQueueSheddingIsBounded(t *testing.T) {
	w := NewWorker("w01", "worker-01", "coord", cluster.NewInProc(), Options{})
	for i := 0; i < handoffQueueMax+10; i++ {
		w.enqueuePush(&wire.TrackUpdate{TrackID: uint64(i)})
	}
	if depth := w.Metrics().Gauge("handoff.queue_depth").Value(); depth != handoffQueueMax {
		t.Fatalf("queue depth %d, want capped at %d", depth, handoffQueueMax)
	}
	if shed := w.Metrics().Counter("handoff.queue_shed").Value(); shed != 10 {
		t.Fatalf("handoff.queue_shed = %d, want 10", shed)
	}
}

// TestSweepRegisterEpochRace is the regression test for the sweep/heartbeat
// epoch race: Sweep now snapshots liveness, epoch, and each orphan's
// replacement owner at one instant per pass and re-validates the epoch before
// committing ownership, so a Reassign racing the pass invalidates the commit
// instead of recording an owner read from a superseded assignment. Run under
// -race; the assertions are deliberately modest — the detector is the judge.
func TestSweepRegisterEpochRace(t *testing.T) {
	opts := Options{HeartbeatTimeout: 30 * time.Millisecond}
	cl := newTestCluster(t, 3, opts)
	if err := cl.Coordinator.AddCameras(ctx, gridCams(world1, 3), 50); err != nil {
		t.Fatal(err)
	}
	feat := make([]float32, 8)
	feat[0] = 1
	var trackIDs []uint64
	for cam := uint32(1); cam <= 6; cam++ {
		id, _, err := cl.Coordinator.StartTrack(ctx, cam, feat, simT0)
		if err != nil {
			t.Fatal(err)
		}
		trackIDs = append(trackIDs, id)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Sweeper: liveness checks and orphan recovery, continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				cl.Coordinator.Sweep(ctx, time.Now())
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// Heartbeater: the first worker stays alive; the others flap dead and
	// revive across the 30ms timeout, so sweeps keep finding fresh orphans.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
				cl.Workers[0].SendHeartbeat(ctx) //nolint:errcheck // liveness churn only
				if i%5 == 0 {
					for _, w := range cl.Workers[1:] {
						w.SendHeartbeat(ctx) //nolint:errcheck // liveness churn only
					}
				}
				i++
				time.Sleep(10 * time.Millisecond)
			}
		}
	}()
	// Reassigner: epoch bumps racing the sweep passes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				cl.Coordinator.Reassign(ctx) //nolint:errcheck // transient no-live-worker windows are expected
				time.Sleep(3 * time.Millisecond)
			}
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Quiesce: everyone heartbeats, one final sweep recovers any remaining
	// orphans onto live owners.
	for _, w := range cl.Workers {
		if err := w.SendHeartbeat(ctx); err != nil {
			t.Fatalf("final heartbeat: %v", err)
		}
	}
	cl.Coordinator.Sweep(ctx, time.Now())
	alive := make(map[wire.NodeID]bool)
	for _, m := range cl.Coordinator.Alive() {
		alive[m.Node] = true
	}
	for _, id := range trackIDs {
		owner, _, _, ok := cl.Coordinator.TrackInfo(id)
		if !ok {
			t.Fatalf("track %d vanished during sweep/register churn", id)
		}
		if !alive[owner] {
			t.Fatalf("track %d owned by dead worker %s after quiesce", id, owner)
		}
	}
}

// TestCoordinatorRestartMidBatchDedup: the (Source, Seq) replay-dedup state
// lives on the workers, so it survives a coordinator restart mid-ingest. The
// transport duplicates deliveries throughout; the coordinator dies and is
// replaced between batches; workers re-register via CodeMustRegister; and the
// final complete answer still contains every generated observation exactly
// once.
func TestCoordinatorRestartMidBatchDedup(t *testing.T) {
	policy := cluster.Policy{
		MaxAttempts:       4,
		PerAttemptTimeout: time.Second,
		BaseBackoff:       time.Millisecond,
		MaxBackoff:        8 * time.Millisecond,
	}
	opts := Options{RetryPolicy: policy, HeartbeatTimeout: 5 * time.Second}
	faulty := cluster.NewFaulty(cluster.NewInProc(), 7)
	cl, err := NewLocalClusterOver(faulty, 2, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	cams := gridCams(world1, 2)
	if err := cl.Coordinator.AddCameras(ctx, cams, 50); err != nil {
		t.Fatal(err)
	}
	for _, w := range cl.Workers {
		faulty.SetProgram(w.Addr(), cluster.FaultProgram{Duplicate: 0.3})
	}

	world, err := sim.NewWorld(sim.Config{
		World:      world1,
		NumObjects: 8,
		Model:      &sim.RandomWaypoint{World: world1, MinSpeed: 30, MaxSpeed: 60},
		Seed:       21,
		FeatureDim: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := vision.NewDetector(vision.DetectorConfig{Seed: 22})
	// The ingester outlives the coordinator restart: its per-worker lanes keep
	// their sequence counters, which is exactly why the workers' dedup cursors
	// remain valid across the restart.
	ing := NewIngesterWith(cl.Coordinator, cluster.NewResilient(faulty, policy), IngesterOptions{PipelineDepth: 2, Source: "restart-src"})
	defer ing.Close()

	generated := 0
	world.Run(40, cl.Coordinator.Network(), det, func(frame int, dets []vision.Detection) {
		generated += len(dets)
		if _, err := ing.IngestDetections(ctx, dets); err != nil {
			t.Fatalf("ingest frame %d: %v", frame, err)
		}
		if frame == 19 {
			// Mid-run coordinator death and replacement at the same address.
			// The workers and the ingester keep running throughout.
			cl.Coordinator.Stop()
			nc := NewCoordinator("coord", faulty, nil, opts)
			if err := nc.Start(); err != nil {
				t.Fatalf("restart coordinator: %v", err)
			}
			cl.Coordinator = nc
			// Workers discover the restart on their next heartbeat: the fresh
			// coordinator answers CodeMustRegister and they re-register.
			for _, w := range cl.Workers {
				if err := w.SendHeartbeat(ctx); err != nil {
					t.Fatalf("post-restart heartbeat: %v", err)
				}
			}
			// Same cameras, same live workers: the spatial partition is
			// deterministic, so the assignment matches the pre-restart one and
			// in-flight lanes keep routing to the right owners.
			if err := nc.AddCameras(ctx, cams, 50); err != nil {
				t.Fatalf("re-register cameras: %v", err)
			}
		}
	})
	if _, err := ing.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if generated == 0 {
		t.Fatal("simulation generated no observations; test is vacuous")
	}
	if faulty.Injected().Duplicated == 0 {
		t.Fatal("fault program injected no duplicates; dedup was not exercised")
	}

	// Verify the workers re-registered with the replacement coordinator.
	for _, w := range cl.Workers {
		if w.Metrics().Counter("heartbeat.reregister").Value() < 1 {
			t.Fatalf("worker %s never took the re-register path", w.ID())
		}
	}

	// Quiet the link and take one complete answer: every observation exactly
	// once despite duplicated deliveries straddling the restart.
	for _, w := range cl.Workers {
		faulty.SetProgram(w.Addr(), cluster.FaultProgram{})
	}
	window := wire.TimeWindow{From: simT0, To: simT0.Add(24 * time.Hour)}
	recs, meta, err := cl.Coordinator.RangeMeta(ctx, world1, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Answered != meta.Asked {
		t.Fatalf("final answer incomplete: %d of %d workers", meta.Answered, meta.Asked)
	}
	seen := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		if seen[r.ObsID] {
			t.Fatalf("observation %d applied twice across the restart", r.ObsID)
		}
		seen[r.ObsID] = true
	}
	if len(recs) != generated {
		t.Fatalf("final answer has %d records, want exactly %d generated", len(recs), generated)
	}
	replays := int64(0)
	for _, w := range cl.Workers {
		replays += w.Metrics().Counter("ingest.replays").Value()
	}
	if replays == 0 {
		t.Fatal("no deliveries were deduplicated; duplicates must have leaked into the index")
	}
}
