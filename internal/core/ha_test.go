package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/sim"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// haOpts is the fast-failover option set the HA tests share: a short lease so
// failover happens within test patience, and a tight retry policy so calls to
// a dead coordinator fail fast instead of backing off for seconds.
func haOpts(lease time.Duration) Options {
	return Options{
		LeaseInterval:    lease,
		HeartbeatTimeout: 3 * time.Second,
		CallTimeout:      500 * time.Millisecond,
		RetryPolicy: cluster.Policy{
			MaxAttempts:       3,
			PerAttemptTimeout: 500 * time.Millisecond,
			BaseBackoff:       time.Millisecond,
			MaxBackoff:        8 * time.Millisecond,
		},
	}
}

// newHATestCluster builds an m-coordinator, n-worker HA cluster and cleans it
// up with the test.
func newHATestCluster(t *testing.T, m, n int, seed int64, opts Options) *HACluster {
	t.Helper()
	hc, err := NewHACluster(m, n, nil, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hc.Stop)
	return hc
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// leaderAmong returns the first coordinator in cs reporting the leader role,
// or nil. Tests that kill a leader scan the survivors only: a stopped
// coordinator's in-memory role is frozen at "leader" and proves nothing.
func leaderAmong(cs []*Coordinator) *Coordinator {
	for _, c := range cs {
		if role, _, _ := c.Role(); role == "leader" {
			return c
		}
	}
	return nil
}

// TestHAReplicationToStandby: control-plane mutations on the leader — camera
// registry, assignment, membership, track registry — stream to the standby,
// which answers leader-only traffic with a CodeNotLeader redirect naming the
// leader while serving reads from the replicated state.
func TestHAReplicationToStandby(t *testing.T) {
	hc := newHATestCluster(t, 2, 2, 1, haOpts(150*time.Millisecond))
	leader, standby := hc.Coordinators[0], hc.Coordinators[1]

	if role, _, _ := leader.Role(); role != "leader" {
		t.Fatalf("coordinator 1 booted as %q, want leader", role)
	}
	if role, _, _ := standby.Role(); role != "standby" {
		t.Fatalf("coordinator 2 booted as %q, want standby", role)
	}

	if err := leader.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	feat := make([]float32, 8)
	feat[0] = 1
	trackID, _, err := leader.StartTrack(ctx, 1, feat, simT0)
	if err != nil {
		t.Fatal(err)
	}

	waitFor(t, 2*time.Second, "standby journal catch-up", func() bool {
		applied := standby.JournalApplied()
		return applied > 0 && applied == leader.JournalApplied()
	})

	if got, want := standby.Epoch(), leader.Epoch(); got != want {
		t.Fatalf("standby epoch %d, leader epoch %d", got, want)
	}
	la, sa := leader.Assignment(), standby.Assignment()
	if len(sa) != len(la) {
		t.Fatalf("standby assignment has %d cameras, leader %d", len(sa), len(la))
	}
	for cam, node := range la {
		if sa[cam] != node {
			t.Fatalf("camera %d assigned to %s on standby, %s on leader", cam, sa[cam], node)
		}
	}
	owner, lastCam, _, ok := standby.TrackInfo(trackID)
	if !ok {
		t.Fatalf("track %d missing from standby registry", trackID)
	}
	if wantOwner, wantCam, _, _ := leader.TrackInfo(trackID); owner != wantOwner || lastCam != wantCam {
		t.Fatalf("standby track state (%s, cam %d) != leader (%s, cam %d)", owner, lastCam, wantOwner, wantCam)
	}
	if len(standby.Alive()) != len(leader.Alive()) {
		t.Fatalf("standby sees %d live workers, leader %d", len(standby.Alive()), len(leader.Alive()))
	}

	// Leader-only traffic is redirected with the leader's address.
	_, err = hc.Net.View("client").Call(ctx, CoordAddrHA(2), &wire.Heartbeat{Node: "w01", Seq: 1})
	var re *cluster.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeNotLeader {
		t.Fatalf("standby answered heartbeat with %v, want CodeNotLeader redirect", err)
	}
	if re.Message != CoordAddrHA(1) {
		t.Fatalf("redirect names %q, want %q", re.Message, CoordAddrHA(1))
	}

	// Reads fall through on the standby (degraded mode).
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	if _, _, err := standby.RangeMeta(ctx, world1, window, 0); err != nil {
		t.Fatalf("standby read failed: %v", err)
	}
}

// TestHAFailoverElectsStandby: killing the leader promotes the lowest-ID
// up-to-date standby, the epoch moves past the deposed leader's, workers
// re-home via rotation, and the replicated track registry survives intact.
func TestHAFailoverElectsStandby(t *testing.T) {
	lease := 150 * time.Millisecond
	hc := newHATestCluster(t, 3, 2, 2, haOpts(lease))
	leader := hc.Coordinators[0]

	if err := leader.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	feat := make([]float32, 8)
	feat[0] = 1
	trackID, _, err := leader.StartTrack(ctx, 1, feat, simT0)
	if err != nil {
		t.Fatal(err)
	}
	wantApplied := leader.JournalApplied()
	waitFor(t, 2*time.Second, "standbys caught up", func() bool {
		return hc.Coordinators[1].JournalApplied() == wantApplied &&
			hc.Coordinators[2].JournalApplied() == wantApplied
	})
	epoch0 := leader.Epoch()
	oldOwner, _, _, _ := leader.TrackInfo(trackID)

	leader.Stop()
	survivors := hc.Coordinators[1:]
	waitFor(t, 20*lease, "a survivor to take over", func() bool {
		return leaderAmong(survivors) != nil
	})
	newLeader := leaderAmong(survivors)
	if newLeader != hc.Coordinators[1] {
		role, _, _ := hc.Coordinators[1].Role()
		t.Fatalf("election picked %s; want lowest-ID up-to-date standby c2 (c2 role %q)", newLeader.Addr(), role)
	}
	if newLeader.Epoch() <= epoch0 {
		t.Fatalf("promoted epoch %d did not move past deposed leader's %d", newLeader.Epoch(), epoch0)
	}
	if c := newLeader.Metrics().Counter("failover.total").Value(); c < 1 {
		t.Fatalf("failover.total = %d after a failover, want >= 1", c)
	}
	if s := newLeader.Metrics().Counter("leaderless.seconds").Value(); s < 1 {
		t.Fatalf("leaderless.seconds = %d after a failover, want >= 1", s)
	}

	// The replicated track registry survived the leader's death.
	owner, _, _, ok := newLeader.TrackInfo(trackID)
	if !ok {
		t.Fatalf("track %d lost across failover", trackID)
	}
	if owner != oldOwner {
		t.Fatalf("track %d owner %s after failover, want %s", trackID, owner, oldOwner)
	}

	// Workers re-home: their next heartbeats rotate off the dead coordinator
	// (or follow the redirect) and land on the new leader.
	waitFor(t, 2*time.Second, "workers re-homed to the new leader", func() bool {
		for _, w := range hc.Workers {
			w.SendHeartbeat(ctx) //nolint:errcheck // retried until the waitFor deadline
		}
		return len(newLeader.Alive()) == len(hc.Workers)
	})

	// The data plane serves through the new leader.
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	_, meta, err := newLeader.RangeMeta(ctx, world1, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Answered > meta.Asked {
		t.Fatalf("scatter over-reports after failover: answered %d > asked %d", meta.Answered, meta.Asked)
	}
	if err := newLeader.StopTrack(ctx, trackID); err != nil {
		t.Fatalf("stop track on new leader: %v", err)
	}
}

// TestHAStaleLeaderStepsDown: a leader partitioned away keeps believing it
// leads; the standby promotes with a higher epoch; on heal the deposed leader
// is fenced by the epoch, steps down, and resynchronizes its journal from the
// new leader's stream.
func TestHAStaleLeaderStepsDown(t *testing.T) {
	lease := 120 * time.Millisecond
	hc := newHATestCluster(t, 2, 1, 3, haOpts(lease))
	old, next := hc.Coordinators[0], hc.Coordinators[1]

	if err := old.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "standby caught up", func() bool {
		return next.JournalApplied() == old.JournalApplied()
	})

	hc.Net.Isolate(CoordAddrHA(1))
	waitFor(t, 20*lease, "standby promotion behind the partition", func() bool {
		role, _, _ := next.Role()
		return role == "leader"
	})
	if role, _, _ := old.Role(); role != "leader" {
		t.Fatalf("partitioned leader role %q; it cannot have learned of the new leader yet", role)
	}

	hc.Net.Rejoin(CoordAddrHA(1))
	waitFor(t, 20*lease, "deposed leader to step down", func() bool {
		role, _, _ := old.Role()
		return role == "standby"
	})
	if role, _, _ := next.Role(); role != "leader" {
		t.Fatalf("new leader role %q after heal, want leader", role)
	}
	if c := old.Metrics().Counter("ha.stepdowns").Value(); c < 1 {
		t.Fatalf("ha.stepdowns = %d on the deposed leader, want >= 1", c)
	}

	// The demoted node resynchronizes from the new leader's journal and
	// converges on its epoch.
	waitFor(t, 2*time.Second, "demoted node journal resync", func() bool {
		return old.JournalApplied() == next.JournalApplied() && old.Epoch() == next.Epoch()
	})
}

// TestHAWorkerQueuesPushesWhileLeaderless: a worker that cannot reach any
// coordinator queues its pushes (bounded) instead of dropping them, and
// drains the queue once a heartbeat lands again.
func TestHAWorkerQueuesPushesWhileLeaderless(t *testing.T) {
	hc := newHATestCluster(t, 2, 1, 4, haOpts(150*time.Millisecond))
	w := hc.Workers[0]

	if err := hc.Coordinators[0].AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}

	// Sever the worker from both coordinators — total control-plane outage
	// from its point of view.
	hc.Net.Partition(w.Addr(), CoordAddrHA(1))
	hc.Net.Partition(w.Addr(), CoordAddrHA(2))

	for i := 0; i < 3; i++ {
		w.pushCoord(ctx, &wire.TrackUpdate{TrackID: 900 + uint64(i), Camera: 1, Time: simT0})
	}
	if depth := w.Metrics().Gauge("handoff.queue_depth").Value(); depth != 3 {
		t.Fatalf("handoff.queue_depth = %d while leaderless, want 3", depth)
	}

	hc.Net.Heal(w.Addr(), CoordAddrHA(1))
	hc.Net.Heal(w.Addr(), CoordAddrHA(2))
	waitFor(t, 2*time.Second, "queued pushes to drain after heal", func() bool {
		w.SendHeartbeat(ctx) //nolint:errcheck // retried until the waitFor deadline
		return w.Metrics().Gauge("handoff.queue_depth").Value() == 0
	})
	if drained := w.Metrics().Counter("handoff.queue_drained").Value(); drained != 3 {
		t.Fatalf("handoff.queue_drained = %d, want 3", drained)
	}
}

// TestHAWorkerQueueSheddingIsBounded: the deferred-push queue sheds its
// oldest entries at the cap instead of growing without bound.
func TestHAWorkerQueueSheddingIsBounded(t *testing.T) {
	w := NewWorker("w01", "worker-01", "coord", cluster.NewInProc(), Options{})
	for i := 0; i < handoffQueueMax+10; i++ {
		w.enqueuePush(&wire.TrackUpdate{TrackID: uint64(i)})
	}
	if depth := w.Metrics().Gauge("handoff.queue_depth").Value(); depth != handoffQueueMax {
		t.Fatalf("queue depth %d, want capped at %d", depth, handoffQueueMax)
	}
	if shed := w.Metrics().Counter("handoff.queue_shed").Value(); shed != 10 {
		t.Fatalf("handoff.queue_shed = %d, want 10", shed)
	}
}

// TestSweepRegisterEpochRace is the regression test for the sweep/heartbeat
// epoch race: Sweep now snapshots liveness, epoch, and each orphan's
// replacement owner at one instant per pass and re-validates the epoch before
// committing ownership, so a Reassign racing the pass invalidates the commit
// instead of recording an owner read from a superseded assignment. Run under
// -race; the assertions are deliberately modest — the detector is the judge.
func TestSweepRegisterEpochRace(t *testing.T) {
	opts := Options{HeartbeatTimeout: 30 * time.Millisecond}
	cl := newTestCluster(t, 3, opts)
	if err := cl.Coordinator.AddCameras(ctx, gridCams(world1, 3), 50); err != nil {
		t.Fatal(err)
	}
	feat := make([]float32, 8)
	feat[0] = 1
	var trackIDs []uint64
	for cam := uint32(1); cam <= 6; cam++ {
		id, _, err := cl.Coordinator.StartTrack(ctx, cam, feat, simT0)
		if err != nil {
			t.Fatal(err)
		}
		trackIDs = append(trackIDs, id)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Sweeper: liveness checks and orphan recovery, continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				cl.Coordinator.Sweep(ctx, time.Now())
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// Heartbeater: the first worker stays alive; the others flap dead and
	// revive across the 30ms timeout, so sweeps keep finding fresh orphans.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
				cl.Workers[0].SendHeartbeat(ctx) //nolint:errcheck // liveness churn only
				if i%5 == 0 {
					for _, w := range cl.Workers[1:] {
						w.SendHeartbeat(ctx) //nolint:errcheck // liveness churn only
					}
				}
				i++
				time.Sleep(10 * time.Millisecond)
			}
		}
	}()
	// Reassigner: epoch bumps racing the sweep passes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				cl.Coordinator.Reassign(ctx) //nolint:errcheck // transient no-live-worker windows are expected
				time.Sleep(3 * time.Millisecond)
			}
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Quiesce: everyone heartbeats, one final sweep recovers any remaining
	// orphans onto live owners.
	for _, w := range cl.Workers {
		if err := w.SendHeartbeat(ctx); err != nil {
			t.Fatalf("final heartbeat: %v", err)
		}
	}
	cl.Coordinator.Sweep(ctx, time.Now())
	alive := make(map[wire.NodeID]bool)
	for _, m := range cl.Coordinator.Alive() {
		alive[m.Node] = true
	}
	for _, id := range trackIDs {
		owner, _, _, ok := cl.Coordinator.TrackInfo(id)
		if !ok {
			t.Fatalf("track %d vanished during sweep/register churn", id)
		}
		if !alive[owner] {
			t.Fatalf("track %d owned by dead worker %s after quiesce", id, owner)
		}
	}
}

// TestCoordinatorRestartMidBatchDedup: the (Source, Seq) replay-dedup state
// lives on the workers, so it survives a coordinator restart mid-ingest. The
// transport duplicates deliveries throughout; the coordinator dies and is
// replaced between batches; workers re-register via CodeMustRegister; and the
// final complete answer still contains every generated observation exactly
// once.
func TestCoordinatorRestartMidBatchDedup(t *testing.T) {
	policy := cluster.Policy{
		MaxAttempts:       4,
		PerAttemptTimeout: time.Second,
		BaseBackoff:       time.Millisecond,
		MaxBackoff:        8 * time.Millisecond,
	}
	opts := Options{RetryPolicy: policy, HeartbeatTimeout: 5 * time.Second}
	faulty := cluster.NewFaulty(cluster.NewInProc(), 7)
	cl, err := NewLocalClusterOver(faulty, 2, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	cams := gridCams(world1, 2)
	if err := cl.Coordinator.AddCameras(ctx, cams, 50); err != nil {
		t.Fatal(err)
	}
	for _, w := range cl.Workers {
		faulty.SetProgram(w.Addr(), cluster.FaultProgram{Duplicate: 0.3})
	}

	world, err := sim.NewWorld(sim.Config{
		World:      world1,
		NumObjects: 8,
		Model:      &sim.RandomWaypoint{World: world1, MinSpeed: 30, MaxSpeed: 60},
		Seed:       21,
		FeatureDim: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := vision.NewDetector(vision.DetectorConfig{Seed: 22})
	// The ingester outlives the coordinator restart: its per-worker lanes keep
	// their sequence counters, which is exactly why the workers' dedup cursors
	// remain valid across the restart.
	ing := NewIngesterWith(cl.Coordinator, cluster.NewResilient(faulty, policy), IngesterOptions{PipelineDepth: 2, Source: "restart-src"})
	defer ing.Close()

	generated := 0
	world.Run(40, cl.Coordinator.Network(), det, func(frame int, dets []vision.Detection) {
		generated += len(dets)
		if _, err := ing.IngestDetections(ctx, dets); err != nil {
			t.Fatalf("ingest frame %d: %v", frame, err)
		}
		if frame == 19 {
			// Mid-run coordinator death and replacement at the same address.
			// The workers and the ingester keep running throughout.
			cl.Coordinator.Stop()
			nc := NewCoordinator("coord", faulty, nil, opts)
			if err := nc.Start(); err != nil {
				t.Fatalf("restart coordinator: %v", err)
			}
			cl.Coordinator = nc
			// Workers discover the restart on their next heartbeat: the fresh
			// coordinator answers CodeMustRegister and they re-register.
			for _, w := range cl.Workers {
				if err := w.SendHeartbeat(ctx); err != nil {
					t.Fatalf("post-restart heartbeat: %v", err)
				}
			}
			// Same cameras, same live workers: the spatial partition is
			// deterministic, so the assignment matches the pre-restart one and
			// in-flight lanes keep routing to the right owners.
			if err := nc.AddCameras(ctx, cams, 50); err != nil {
				t.Fatalf("re-register cameras: %v", err)
			}
		}
	})
	if _, err := ing.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if generated == 0 {
		t.Fatal("simulation generated no observations; test is vacuous")
	}
	if faulty.Injected().Duplicated == 0 {
		t.Fatal("fault program injected no duplicates; dedup was not exercised")
	}

	// Verify the workers re-registered with the replacement coordinator.
	for _, w := range cl.Workers {
		if w.Metrics().Counter("heartbeat.reregister").Value() < 1 {
			t.Fatalf("worker %s never took the re-register path", w.ID())
		}
	}

	// Quiet the link and take one complete answer: every observation exactly
	// once despite duplicated deliveries straddling the restart.
	for _, w := range cl.Workers {
		faulty.SetProgram(w.Addr(), cluster.FaultProgram{})
	}
	window := wire.TimeWindow{From: simT0, To: simT0.Add(24 * time.Hour)}
	recs, meta, err := cl.Coordinator.RangeMeta(ctx, world1, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Answered != meta.Asked {
		t.Fatalf("final answer incomplete: %d of %d workers", meta.Answered, meta.Asked)
	}
	seen := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		if seen[r.ObsID] {
			t.Fatalf("observation %d applied twice across the restart", r.ObsID)
		}
		seen[r.ObsID] = true
	}
	if len(recs) != generated {
		t.Fatalf("final answer has %d records, want exactly %d generated", len(recs), generated)
	}
	replays := int64(0)
	for _, w := range cl.Workers {
		replays += w.Metrics().Counter("ingest.replays").Value()
	}
	if replays == 0 {
		t.Fatal("no deliveries were deduplicated; duplicates must have leaked into the index")
	}
}
