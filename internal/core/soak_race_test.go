package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/sim"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// TestSoakIngestQueriesTrackingRebalance is the end-to-end race soak: a
// replicated cluster over a Faulty transport with seeded drops and
// duplicates, with pipelined ingest, snapshot queries, a live track, and a
// mid-run rebalance (a worker joining) all running concurrently. Meant for
// `go test -race`; skipped under -short so quick local runs stay quick.
//
// The assertions are the completeness contract: scatter metadata never
// over-reports (Answered ≤ Asked), a complete range answer contains no
// duplicate observation — transport duplicates and at-least-once retries
// must be deduplicated by sequenced delivery — and complete counts never
// exceed the number of observations actually generated.
func TestSoakIngestQueriesTrackingRebalance(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped with -short")
	}
	policy := cluster.Policy{
		MaxAttempts:       5,
		PerAttemptTimeout: 2 * time.Second,
		BaseBackoff:       time.Millisecond,
		MaxBackoff:        8 * time.Millisecond,
	}
	opts := Options{Replicas: 1, LostAfter: 2 * time.Second, RetryPolicy: policy}
	faulty := cluster.NewFaulty(cluster.NewInProc(), 42)
	cl, err := NewLocalClusterOver(faulty, 4, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	if err := cl.Coordinator.AddCameras(ctx, gridCams(world1, 4), 50); err != nil {
		t.Fatal(err)
	}
	// Seeded faults on every worker link: lost deliveries (retried by the
	// resilience layer) and duplicated ones (deduplicated by sequencing).
	for _, w := range cl.Workers {
		faulty.SetProgram(w.Addr(), cluster.FaultProgram{Drop: 0.05, Duplicate: 0.10})
	}

	world, err := sim.NewWorld(sim.Config{
		World:      world1,
		NumObjects: 15,
		Model:      &sim.RandomWaypoint{World: world1, MinSpeed: 30, MaxSpeed: 60},
		Seed:       13,
		FeatureDim: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := vision.NewDetector(vision.DetectorConfig{Seed: 14})
	ing := NewIngesterWith(cl.Coordinator, cluster.NewResilient(faulty, policy), IngesterOptions{PipelineDepth: 4})
	defer ing.Close()

	var (
		generated atomic.Int64
		done      = make(chan struct{})
		wg        sync.WaitGroup
	)
	window := wire.TimeWindow{From: simT0, To: simT0.Add(24 * time.Hour)}

	// Ingest: the seeded simulation streamed through the pipeline.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		world.Run(150, cl.Coordinator.Network(), det, func(_ int, dets []vision.Detection) {
			generated.Add(int64(len(dets)))
			if _, err := ing.IngestDetections(ctx, dets); err != nil {
				t.Errorf("soak ingest: %v", err)
			}
			ing.Tick(ctx, world.Now())
		})
	}()

	// Queries: range + count with completeness assertions, all soak long.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			recs, meta, err := cl.Coordinator.RangeMeta(ctx, world1, window, 0)
			if err != nil {
				t.Errorf("soak range: %v", err)
				return
			}
			if meta.Answered > meta.Asked {
				t.Errorf("range meta over-reports: answered %d > asked %d", meta.Answered, meta.Asked)
				return
			}
			gen := generated.Load()
			if meta.Answered == meta.Asked {
				seen := make(map[uint64]bool, len(recs))
				for _, r := range recs {
					if seen[r.ObsID] {
						t.Errorf("complete range answer contains observation %d twice", r.ObsID)
						return
					}
					seen[r.ObsID] = true
				}
				if int64(len(recs)) > gen {
					t.Errorf("complete range answer has %d records, only %d observations generated", len(recs), gen)
					return
				}
			}
			n, cmeta, err := cl.Coordinator.CountMeta(ctx, world1, window)
			if err != nil {
				t.Errorf("soak count: %v", err)
				return
			}
			if cmeta.Answered > cmeta.Asked {
				t.Errorf("count meta over-reports: answered %d > asked %d", cmeta.Answered, cmeta.Asked)
				return
			}
			if cmeta.Answered == cmeta.Asked && int64(n) > generated.Load() {
				t.Errorf("complete count %d exceeds %d generated observations", n, generated.Load())
				return
			}
		}
	}()

	// Tracking: a live track plus the loss/prime handoff machinery running
	// against the ingest stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		feat := make([]float32, 32)
		feat[0] = 1
		id, ch, err := cl.Coordinator.StartTrack(ctx, 1, feat, simT0)
		if err != nil {
			t.Errorf("soak track start: %v", err)
			return
		}
		for {
			select {
			case <-done:
				if err := cl.Coordinator.StopTrack(ctx, id); err != nil {
					t.Errorf("soak track stop: %v", err)
				}
				return
			case <-ch:
			}
		}
	}()

	// Mid-run rebalance: a fifth worker joins and the partition is pushed
	// again while ingest and queries are in flight. The worker is handed
	// back to the test body and stopped only after every concurrent caller
	// and the final completeness check are done — it may own replicas by
	// then, and stopping it mid-call is a different test's business.
	w5ch := make(chan *Worker, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond)
		w5 := NewWorker("w05", "worker-05", "coord", faulty, opts)
		if err := w5.Start(ctx); err != nil {
			t.Errorf("soak join: %v", err)
			w5ch <- nil
			return
		}
		w5ch <- w5
		faulty.SetProgram(w5.Addr(), cluster.FaultProgram{Drop: 0.05, Duplicate: 0.10})
		if err := cl.Coordinator.Reassign(ctx); err != nil {
			t.Errorf("soak reassign: %v", err)
		}
	}()
	if w5 := <-w5ch; w5 != nil {
		defer w5.Stop()
	}

	wg.Wait()
	if generated.Load() == 0 {
		t.Fatal("soak generated no observations; workload is vacuous")
	}

	// Settle, then one final complete check: the answer must be complete
	// now (no faults beyond drops/dups, all retried) and still free of
	// duplicates.
	recs, meta, err := cl.Coordinator.RangeMeta(ctx, world1, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Answered != meta.Asked {
		t.Fatalf("final range incomplete: answered %d of %d", meta.Answered, meta.Asked)
	}
	seen := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		if seen[r.ObsID] {
			t.Fatalf("final range answer contains observation %d twice", r.ObsID)
		}
		seen[r.ObsID] = true
	}
	if int64(len(recs)) > generated.Load() {
		t.Fatalf("final range answer has %d records, only %d generated", len(recs), generated.Load())
	}
}
