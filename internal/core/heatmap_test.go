package core

import (
	"testing"
	"time"

	"stcam/internal/geo"
	"stcam/internal/wire"
)

func TestDistributedHeatmap(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 3), 50); err != nil {
		t.Fatal(err)
	}
	// Three observations in cell (0,0) at 100 m resolution, two in (5,5),
	// one in (9,9) — spread across different workers.
	obs := []wire.Observation{
		obsAt(1, 1, geo.Pt(10, 10), simT0, nil),
		obsAt(2, 1, geo.Pt(50, 90), simT0.Add(time.Second), nil),
		obsAt(3, 1, geo.Pt(99, 99), simT0.Add(2*time.Second), nil),
		obsAt(4, 5, geo.Pt(510, 520), simT0.Add(3*time.Second), nil),
		obsAt(5, 5, geo.Pt(590, 560), simT0.Add(4*time.Second), nil),
		obsAt(6, 9, geo.Pt(910, 950), simT0.Add(5*time.Second), nil),
	}
	ingestDirect(t, c, obs...)
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}

	cells, err := c.Coordinator.Heatmap(ctx, world1, window, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int32]int64{{0, 0}: 3, {5, 5}: 2, {9, 9}: 1}
	if len(cells) != len(want) {
		t.Fatalf("heatmap has %d cells, want %d: %+v", len(cells), len(want), cells)
	}
	var total int64
	for _, hc := range cells {
		if want[[2]int32{hc.CX, hc.CY}] != hc.Count {
			t.Errorf("cell (%d,%d) = %d, want %d", hc.CX, hc.CY, hc.Count, want[[2]int32{hc.CX, hc.CY}])
		}
		total += hc.Count
	}
	if total != 6 {
		t.Errorf("heatmap total = %d", total)
	}
	// Cells arrive sorted by (CY, CX).
	for i := 1; i < len(cells); i++ {
		a, b := cells[i-1], cells[i]
		if a.CY > b.CY || (a.CY == b.CY && a.CX >= b.CX) {
			t.Fatal("heatmap cells not sorted")
		}
	}
	// Heatmap total agrees with Count over the same window.
	n, err := c.Coordinator.Count(ctx, world1, window)
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != total {
		t.Errorf("count %d != heatmap total %d", n, total)
	}
	// Time filter applies.
	cells, err = c.Coordinator.Heatmap(ctx, world1, wire.TimeWindow{From: simT0.Add(3 * time.Second), To: simT0.Add(time.Hour)}, 100)
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, hc := range cells {
		total += hc.Count
	}
	if total != 3 {
		t.Errorf("time-filtered heatmap total = %d, want 3", total)
	}
	// Bad cell size rejected.
	if _, err := c.Coordinator.Heatmap(ctx, world1, window, 0); err == nil {
		t.Error("zero cell size accepted")
	}
}

func TestHeatmapWithReplication(t *testing.T) {
	// Replicated copies must not inflate density counts.
	c := newTestCluster(t, 3, Options{Replicas: 1})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 3), 50); err != nil {
		t.Fatal(err)
	}
	ing := NewIngester(c.Coordinator, c.Transport)
	dets := detectionsAtCameras(gridCams(world1, 3))
	if _, err := ing.IngestDetections(ctx, dets); err != nil {
		t.Fatal(err)
	}
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	cells, err := c.Coordinator.Heatmap(ctx, world1, window, 500)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, hc := range cells {
		total += hc.Count
	}
	if total != int64(len(dets)) {
		t.Errorf("replicated heatmap total = %d, want %d", total, len(dets))
	}
}
