package core

import (
	"context"
	"fmt"
	"strings"

	"stcam/internal/cluster"
	"stcam/internal/wire"
)

// Cluster bundles a coordinator and its workers over one transport — the
// assembly used by the examples, benchmarks, and tests. Production
// deployments run the same pieces as separate processes via cmd/stcamd.
type Cluster struct {
	Coordinator *Coordinator
	Workers     []*Worker
	Transport   cluster.Transport
}

// NewLocalCluster assembles a coordinator plus n workers on an in-process
// transport, registers and heartbeats each worker once, and returns the
// running cluster. The caller must Stop it.
func NewLocalCluster(n int, p cluster.Partitioner, opts Options) (*Cluster, error) {
	return NewLocalClusterOver(cluster.NewInProc(), n, p, opts)
}

// NewLocalClusterOver is NewLocalCluster over a caller-supplied transport —
// typically a cluster.Faulty decorator around an InProc, so tests and the R14
// experiment can inject drops, latency, hangs, and partitions on specific
// links. Cluster.Transport keeps exposing the supplied transport; every node
// additionally wraps it in the resilience layer per opts.RetryPolicy.
func NewLocalClusterOver(tr cluster.Transport, n int, p cluster.Partitioner, opts Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: cluster needs at least one worker")
	}
	coord := NewCoordinator("coord", tr, p, opts)
	if err := coord.Start(); err != nil {
		tr.Close()
		return nil, err
	}
	c := &Cluster{Coordinator: coord, Transport: tr}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		w := NewWorker(wire.NodeID(fmt.Sprintf("w%02d", i+1)), fmt.Sprintf("worker-%02d", i+1), "coord", tr, opts)
		if err := w.Start(ctx); err != nil {
			c.Stop()
			return nil, err
		}
		c.Workers = append(c.Workers, w)
	}
	return c, nil
}

// HACluster bundles a replicated coordinator group, its workers, and the
// FaultyNet that gives every node its own fault-injectable link set — the
// assembly the failover chaos soak and the HA tests drive.
type HACluster struct {
	Coordinators []*Coordinator // ID order: c1 boots leader, the rest standby
	Workers      []*Worker
	Net          *cluster.FaultyNet
}

// CoordAddrHA returns the serve address of the i-th (1-based) coordinator.
func CoordAddrHA(i int) string { return fmt.Sprintf("coord-%d", i) }

// NewHACluster assembles m coordinators (the first boots as leader, the rest
// as standbys) and n workers over a seeded FaultyNet on an in-process base
// transport. Every node runs over its own net view, so tests can partition
// any link symmetrically. Workers get the full coordinator candidate list.
// The caller must Stop it.
func NewHACluster(m, n int, p cluster.Partitioner, seed int64, opts Options) (*HACluster, error) {
	if m < 1 || n < 1 {
		return nil, fmt.Errorf("core: HA cluster needs at least one coordinator and one worker")
	}
	net := cluster.NewFaultyNet(cluster.NewInProc(), seed)
	hc := &HACluster{Net: net}
	peersOf := func(self int) map[wire.NodeID]string {
		peers := make(map[wire.NodeID]string, m-1)
		for j := 1; j <= m; j++ {
			if j != self {
				peers[wire.NodeID(fmt.Sprintf("c%d", j))] = CoordAddrHA(j)
			}
		}
		return peers
	}
	for i := 1; i <= m; i++ {
		o := opts
		o.CoordinatorID = wire.NodeID(fmt.Sprintf("c%d", i))
		o.CoordinatorPeers = peersOf(i)
		o.Standby = i > 1
		coord := NewCoordinator(CoordAddrHA(i), net.View(CoordAddrHA(i)), p, o)
		if err := coord.Start(); err != nil {
			hc.Stop()
			return nil, err
		}
		hc.Coordinators = append(hc.Coordinators, coord)
	}
	coordList := make([]string, m)
	for i := range coordList {
		coordList[i] = CoordAddrHA(i + 1)
	}
	coords := strings.Join(coordList, ",")
	ctx := context.Background()
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("worker-%02d", i+1)
		w := NewWorker(wire.NodeID(fmt.Sprintf("w%02d", i+1)), addr, coords, net.View(addr), opts)
		if err := w.Start(ctx); err != nil {
			hc.Stop()
			return nil, err
		}
		hc.Workers = append(hc.Workers, w)
	}
	return hc, nil
}

// Leader returns the coordinator currently acting as leader, or nil while
// the group is leaderless.
func (hc *HACluster) Leader() *Coordinator {
	for _, c := range hc.Coordinators {
		if role, _, _ := c.Role(); role == "leader" {
			return c
		}
	}
	return nil
}

// Stop tears the HA cluster down.
func (hc *HACluster) Stop() {
	for _, w := range hc.Workers {
		w.Stop()
	}
	for _, c := range hc.Coordinators {
		c.Stop()
	}
	if hc.Net != nil {
		hc.Net.Close()
	}
}

// Stop tears the cluster down.
func (c *Cluster) Stop() {
	for _, w := range c.Workers {
		w.Stop()
	}
	if c.Coordinator != nil {
		c.Coordinator.Stop()
	}
	if c.Transport != nil {
		c.Transport.Close()
	}
}

// Worker returns the worker with the given node ID, or nil.
func (c *Cluster) Worker(id wire.NodeID) *Worker {
	for _, w := range c.Workers {
		if w.ID() == id {
			return w
		}
	}
	return nil
}
