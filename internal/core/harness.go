package core

import (
	"context"
	"fmt"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// Cluster bundles a coordinator and its workers over one transport — the
// assembly used by the examples, benchmarks, and tests. Production
// deployments run the same pieces as separate processes via cmd/stcamd.
type Cluster struct {
	Coordinator *Coordinator
	Workers     []*Worker
	Transport   cluster.Transport
}

// NewLocalCluster assembles a coordinator plus n workers on an in-process
// transport, registers and heartbeats each worker once, and returns the
// running cluster. The caller must Stop it.
func NewLocalCluster(n int, p cluster.Partitioner, opts Options) (*Cluster, error) {
	return NewLocalClusterOver(cluster.NewInProc(), n, p, opts)
}

// NewLocalClusterOver is NewLocalCluster over a caller-supplied transport —
// typically a cluster.Faulty decorator around an InProc, so tests and the R14
// experiment can inject drops, latency, hangs, and partitions on specific
// links. Cluster.Transport keeps exposing the supplied transport; every node
// additionally wraps it in the resilience layer per opts.RetryPolicy.
func NewLocalClusterOver(tr cluster.Transport, n int, p cluster.Partitioner, opts Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: cluster needs at least one worker")
	}
	coord := NewCoordinator("coord", tr, p, opts)
	if err := coord.Start(); err != nil {
		tr.Close()
		return nil, err
	}
	c := &Cluster{Coordinator: coord, Transport: tr}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		w := NewWorker(wire.NodeID(fmt.Sprintf("w%02d", i+1)), fmt.Sprintf("worker-%02d", i+1), "coord", tr, opts)
		if err := w.Start(ctx); err != nil {
			c.Stop()
			return nil, err
		}
		c.Workers = append(c.Workers, w)
	}
	return c, nil
}

// Stop tears the cluster down.
func (c *Cluster) Stop() {
	for _, w := range c.Workers {
		w.Stop()
	}
	if c.Coordinator != nil {
		c.Coordinator.Stop()
	}
	if c.Transport != nil {
		c.Transport.Close()
	}
}

// Worker returns the worker with the given node ID, or nil.
func (c *Cluster) Worker(id wire.NodeID) *Worker {
	for _, w := range c.Workers {
		if w.ID() == id {
			return w
		}
	}
	return nil
}

// Ingester routes detection batches to the workers owning their cameras,
// caching the routing table per epoch. It stands in for the per-camera feed
// processes of a real deployment.
type Ingester struct {
	coord     *Coordinator
	transport cluster.Transport
	epoch     uint64
	routes    map[uint32][]string // primary first, then replicas
}

// NewIngester returns an ingest router bound to a coordinator.
func NewIngester(coord *Coordinator, transport cluster.Transport) *Ingester {
	return &Ingester{coord: coord, transport: transport, routes: make(map[uint32][]string)}
}

// refresh rebuilds the route cache when the assignment epoch changed.
func (ing *Ingester) refresh() {
	epoch := ing.coord.Epoch()
	if epoch == ing.epoch && len(ing.routes) > 0 {
		return
	}
	ing.epoch = epoch
	ing.routes = make(map[uint32][]string)
	for cam := range ing.coord.Assignment() {
		if addrs := ing.coord.RoutesFor(cam); len(addrs) > 0 {
			ing.routes[cam] = addrs
		}
	}
}

// Tick sends an empty clock frame to every live worker, advancing their
// observation time so track-loss detection and continuous-answer expiry run
// even on workers whose cameras saw nothing this frame. Real deployments get
// this for free from per-camera frame cadence.
func (ing *Ingester) Tick(ctx context.Context, now time.Time) {
	seen := make(map[string]bool)
	ing.refresh()
	for _, addrs := range ing.routes {
		for _, addr := range addrs {
			if seen[addr] {
				continue
			}
			seen[addr] = true
			ing.transport.Call(ctx, addr, &wire.IngestBatch{FrameTime: now}) //nolint:errcheck // clock ticks are best-effort
		}
	}
}

// IngestDetections groups detections by camera and delivers them to the
// owning workers, returning the number accepted.
func (ing *Ingester) IngestDetections(ctx context.Context, dets []vision.Detection) (int, error) {
	ing.refresh()
	byCam := make(map[uint32][]wire.Observation)
	for _, d := range dets {
		obs := wire.Observation{
			ObsID:   d.ObsID,
			Camera:  uint32(d.Camera),
			Time:    d.Time,
			Pos:     d.Pos,
			Feature: d.Feature,
			TrueID:  d.TrueID,
		}
		byCam[obs.Camera] = append(byCam[obs.Camera], obs)
	}
	accepted := 0
	var firstErr error
	for cam, obs := range byCam {
		addrs, ok := ing.routes[cam]
		if !ok {
			// Assignment may have changed mid-stream; refresh once and retry.
			ing.epoch = 0
			ing.refresh()
			addrs, ok = ing.routes[cam]
			if !ok {
				continue
			}
		}
		// Primary first, then any replicas; acceptance is counted from the
		// primary so replicated streams don't double-count.
		for i, addr := range addrs {
			resp, err := ing.transport.Call(ctx, addr, &wire.IngestBatch{Camera: cam, Observations: obs})
			if err != nil {
				if firstErr == nil && i == 0 {
					firstErr = err
				}
				continue
			}
			if ack, ok := resp.(*wire.IngestAck); ok && i == 0 {
				accepted += ack.Accepted
			}
		}
	}
	return accepted, firstErr
}
