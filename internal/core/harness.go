package core

import (
	"context"
	"fmt"

	"stcam/internal/cluster"
	"stcam/internal/wire"
)

// Cluster bundles a coordinator and its workers over one transport — the
// assembly used by the examples, benchmarks, and tests. Production
// deployments run the same pieces as separate processes via cmd/stcamd.
type Cluster struct {
	Coordinator *Coordinator
	Workers     []*Worker
	Transport   cluster.Transport
}

// NewLocalCluster assembles a coordinator plus n workers on an in-process
// transport, registers and heartbeats each worker once, and returns the
// running cluster. The caller must Stop it.
func NewLocalCluster(n int, p cluster.Partitioner, opts Options) (*Cluster, error) {
	return NewLocalClusterOver(cluster.NewInProc(), n, p, opts)
}

// NewLocalClusterOver is NewLocalCluster over a caller-supplied transport —
// typically a cluster.Faulty decorator around an InProc, so tests and the R14
// experiment can inject drops, latency, hangs, and partitions on specific
// links. Cluster.Transport keeps exposing the supplied transport; every node
// additionally wraps it in the resilience layer per opts.RetryPolicy.
func NewLocalClusterOver(tr cluster.Transport, n int, p cluster.Partitioner, opts Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: cluster needs at least one worker")
	}
	coord := NewCoordinator("coord", tr, p, opts)
	if err := coord.Start(); err != nil {
		tr.Close()
		return nil, err
	}
	c := &Cluster{Coordinator: coord, Transport: tr}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		w := NewWorker(wire.NodeID(fmt.Sprintf("w%02d", i+1)), fmt.Sprintf("worker-%02d", i+1), "coord", tr, opts)
		if err := w.Start(ctx); err != nil {
			c.Stop()
			return nil, err
		}
		c.Workers = append(c.Workers, w)
	}
	return c, nil
}

// Stop tears the cluster down.
func (c *Cluster) Stop() {
	for _, w := range c.Workers {
		w.Stop()
	}
	if c.Coordinator != nil {
		c.Coordinator.Stop()
	}
	if c.Transport != nil {
		c.Transport.Close()
	}
}

// Worker returns the worker with the given node ID, or nil.
func (c *Cluster) Worker(id wire.NodeID) *Worker {
	for _, w := range c.Workers {
		if w.ID() == id {
			return w
		}
	}
	return nil
}
