package core

import (
	"time"

	"stcam/internal/geo"
	"stcam/internal/stindex"
	"stcam/internal/wire"
)

// continuousState evaluates one standing query incrementally on a worker.
// For a range query it maintains the set of targets currently inside the
// rectangle: each new observation of a target flips it in or out, producing
// positive/negative answer deltas (the SINA-style incremental semantics).
// For a count query it additionally reports the current cardinality when it
// crosses the configured threshold.
type continuousState struct {
	queryID   uint64
	kind      wire.ContinuousKind
	rect      geo.Rect
	threshold int

	inside map[uint64]stindex.Record // targetID → last in-rect record
	above  bool                      // count queries: currently over threshold
}

func newContinuousState(m *wire.InstallContinuous) *continuousState {
	return &continuousState{
		queryID:   m.QueryID,
		kind:      m.Kind,
		rect:      m.Rect,
		threshold: m.Threshold,
		inside:    make(map[uint64]stindex.Record),
	}
}

func (cs *continuousState) contains(r stindex.Record) bool {
	return cs.rect.Contains(r.Pos)
}

// observe folds one new observation into the query state, returning a
// ContinuousUpdate when the answer changed (nil otherwise). Unassociated
// observations (TargetID 0) cannot form a stable answer set and are skipped.
func (cs *continuousState) observe(r stindex.Record) *wire.ContinuousUpdate {
	if r.TargetID == 0 {
		return nil
	}
	_, wasIn := cs.inside[r.TargetID]
	nowIn := cs.contains(r)
	var upd *wire.ContinuousUpdate
	switch {
	case nowIn && !wasIn:
		cs.inside[r.TargetID] = r
		upd = &wire.ContinuousUpdate{
			QueryID:  cs.queryID,
			Time:     r.Time,
			Positive: []wire.ResultRecord{toWireRecord(r)},
		}
	case !nowIn && wasIn:
		prev := cs.inside[r.TargetID]
		delete(cs.inside, r.TargetID)
		upd = &wire.ContinuousUpdate{
			QueryID:  cs.queryID,
			Time:     r.Time,
			Negative: []wire.ResultRecord{toWireRecord(prev)},
		}
	case nowIn && wasIn:
		// Position refresh inside the region: remember it, no answer delta.
		cs.inside[r.TargetID] = r
		return nil
	default:
		return nil
	}
	if cs.kind == wire.ContinuousCount {
		upd.Count = len(cs.inside)
		nowAbove := cs.threshold > 0 && len(cs.inside) >= cs.threshold
		crossed := nowAbove != cs.above
		cs.above = nowAbove
		// Count queries only notify on threshold crossings (when a threshold
		// is set); plain membership churn is suppressed.
		if cs.threshold > 0 && !crossed {
			return nil
		}
	}
	return upd
}

// expire drops targets whose last sighting is older than the horizon,
// emitting negative updates — a target that vanished from the cameras should
// not stay in a continuous answer forever.
func (cs *continuousState) expire(horizon time.Time) *wire.ContinuousUpdate {
	var negs []wire.ResultRecord
	for id, rec := range cs.inside {
		if rec.Time.Before(horizon) {
			negs = append(negs, toWireRecord(rec))
			delete(cs.inside, id)
		}
	}
	if len(negs) == 0 {
		return nil
	}
	upd := &wire.ContinuousUpdate{QueryID: cs.queryID, Time: horizon, Negative: negs}
	if cs.kind == wire.ContinuousCount {
		upd.Count = len(cs.inside)
		cs.above = cs.threshold > 0 && len(cs.inside) >= cs.threshold
	}
	return upd
}

func (w *Worker) onInstallContinuous(m *wire.InstallContinuous) (any, error) {
	if m.Kind != wire.ContinuousRange && m.Kind != wire.ContinuousCount {
		return &wire.Error{Code: wire.CodeBadRequest, Message: "continuous: unknown kind"}, nil
	}
	w.evalMu.Lock()
	defer w.evalMu.Unlock()
	// Re-installation of a known query (the coordinator re-pushes standing
	// queries after every reassignment) keeps the existing answer state so
	// in-flight memberships are not forgotten.
	if _, exists := w.continuous[m.QueryID]; !exists {
		w.continuous[m.QueryID] = newContinuousState(m)
	}
	w.reg.Gauge("continuous.installed").Set(int64(len(w.continuous)))
	return &wire.AssignAck{Epoch: w.curEpoch(), Accepted: 1}, nil
}

func (w *Worker) onRemoveContinuous(m *wire.RemoveContinuous) (any, error) {
	w.evalMu.Lock()
	defer w.evalMu.Unlock()
	if _, ok := w.continuous[m.QueryID]; !ok {
		return &wire.Error{Code: wire.CodeNotFound, Message: "continuous: query not installed"}, nil
	}
	delete(w.continuous, m.QueryID)
	w.reg.Gauge("continuous.installed").Set(int64(len(w.continuous)))
	return &wire.AssignAck{Epoch: w.curEpoch(), Accepted: 1}, nil
}
