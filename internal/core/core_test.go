package core

import (
	"context"
	"math"
	"testing"
	"time"

	"stcam/internal/geo"
	"stcam/internal/sim"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

var (
	ctx    = context.Background()
	simT0  = sim.DefaultStart
	world1 = geo.RectOf(0, 0, 1000, 1000)
)

// gridCams builds an n×n omni-camera lattice covering the world, returning
// the wire camera infos.
func gridCams(world geo.Rect, n int) []wire.CameraInfo {
	out := make([]wire.CameraInfo, 0, n*n)
	cw, ch := world.Width()/float64(n), world.Height()/float64(n)
	rngM := 0.8 * math.Max(cw, ch)
	id := uint32(1)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			out = append(out, wire.CameraInfo{
				ID:      id,
				Pos:     geo.Pt(world.Min.X+(float64(c)+0.5)*cw, world.Min.Y+(float64(r)+0.5)*ch),
				Orient:  0,
				HalfFOV: math.Pi, // omni keeps coverage simple in tests
				Range:   rngM,
			})
			id++
		}
	}
	return out
}

func newTestCluster(t *testing.T, workers int, opts Options) *Cluster {
	t.Helper()
	c, err := NewLocalCluster(workers, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestClusterAssignment(t *testing.T) {
	c := newTestCluster(t, 4, Options{})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 4), 50); err != nil {
		t.Fatal(err)
	}
	a := c.Coordinator.Assignment()
	if len(a) != 16 {
		t.Fatalf("assigned %d cameras, want 16", len(a))
	}
	counts := a.Counts()
	if len(counts) != 4 {
		t.Fatalf("cameras spread over %d workers, want 4", len(counts))
	}
	for node, n := range counts {
		if n != 4 {
			t.Errorf("worker %v owns %d cameras, want 4", node, n)
		}
	}
	// Every camera routes to a live worker.
	for cam := range a {
		if _, ok := c.Coordinator.RouteFor(cam); !ok {
			t.Errorf("camera %d has no route", cam)
		}
	}
	if c.Coordinator.Epoch() == 0 {
		t.Error("epoch not bumped by assignment")
	}
}

// obsAt builds a minimal observation.
func obsAt(id uint64, cam uint32, p geo.Point, at time.Time, feat []float32) wire.Observation {
	return wire.Observation{ObsID: id, Camera: cam, Time: at, Pos: p, Feature: feat}
}

func ingestDirect(t *testing.T, c *Cluster, obs ...wire.Observation) int {
	t.Helper()
	byCam := map[uint32][]wire.Observation{}
	for _, o := range obs {
		byCam[o.Camera] = append(byCam[o.Camera], o)
	}
	total := 0
	for cam, batch := range byCam {
		addr, ok := c.Coordinator.RouteFor(cam)
		if !ok {
			t.Fatalf("no route for camera %d", cam)
		}
		resp, err := c.Transport.Call(ctx, addr, &wire.IngestBatch{Camera: cam, Observations: batch})
		if err != nil {
			t.Fatal(err)
		}
		total += resp.(*wire.IngestAck).Accepted
	}
	return total
}

func TestDistributedRangeAndCount(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 3), 50); err != nil {
		t.Fatal(err)
	}
	// Observations scattered across cameras/workers.
	var obs []wire.Observation
	positions := []geo.Point{
		{X: 100, Y: 100}, {X: 500, Y: 500}, {X: 900, Y: 900},
		{X: 120, Y: 110}, {X: 510, Y: 520},
	}
	cams := []uint32{1, 5, 9, 1, 5}
	for i, p := range positions {
		obs = append(obs, obsAt(uint64(i+1), cams[i], p, simT0.Add(time.Duration(i)*time.Second), nil))
	}
	if got := ingestDirect(t, c, obs...); got != 5 {
		t.Fatalf("ingested %d, want 5", got)
	}
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	// Full-world range sees everything.
	recs, err := c.Coordinator.Range(ctx, world1, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("full range = %d records", len(recs))
	}
	// Results are merged in time order.
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			t.Fatal("merged results out of order")
		}
	}
	// A corner range hits one worker's region only.
	recs, err = c.Coordinator.Range(ctx, geo.RectOf(0, 0, 200, 200), window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("corner range = %d records, want 2", len(recs))
	}
	// Count agrees.
	n, err := c.Coordinator.Count(ctx, geo.RectOf(0, 0, 200, 200), window)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("count = %d, want 2", n)
	}
	// Time window filters.
	recs, _ = c.Coordinator.Range(ctx, world1, wire.TimeWindow{From: simT0.Add(3 * time.Second), To: simT0.Add(time.Hour)}, 0)
	if len(recs) != 2 {
		t.Errorf("time-filtered range = %d, want 2", len(recs))
	}
	// Limit applies after the merge.
	recs, _ = c.Coordinator.Range(ctx, world1, window, 3)
	if len(recs) != 3 {
		t.Errorf("limited range = %d, want 3", len(recs))
	}
}

func TestDistributedKNN(t *testing.T) {
	c := newTestCluster(t, 4, Options{})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 4), 50); err != nil {
		t.Fatal(err)
	}
	// A diagonal line of observations, each on its nearest camera.
	var obs []wire.Observation
	net := c.Coordinator.Network()
	for i := 0; i < 16; i++ {
		p := geo.Pt(float64(i)*60+30, float64(i)*60+30)
		covering := net.CamerasCovering(p)
		if len(covering) == 0 {
			t.Fatalf("no camera covers %v", p)
		}
		obs = append(obs, obsAt(uint64(i+1), uint32(covering[0]), p, simT0.Add(time.Second), nil))
	}
	ingestDirect(t, c, obs...)
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	got, err := c.Coordinator.KNN(ctx, geo.Pt(0, 0), window, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("kNN = %d results", len(got))
	}
	for i, n := range got {
		if n.ObsID != uint64(i+1) {
			t.Fatalf("kNN order wrong: %+v", got)
		}
		if i > 0 && got[i].Dist2 < got[i-1].Dist2 {
			t.Fatal("kNN not sorted")
		}
	}
	if _, err := c.Coordinator.KNN(ctx, geo.Pt(0, 0), window, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestIngestRejectsUnownedCamera(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	// Send camera 1's batch to the worker owning a different partition.
	a := c.Coordinator.Assignment()
	var wrongWorker *Worker
	for _, w := range c.Workers {
		if w.ID() != a[1] {
			wrongWorker = w
			break
		}
	}
	resp, err := c.Transport.Call(ctx, wrongWorker.Addr(), &wire.IngestBatch{
		Camera:       1,
		Observations: []wire.Observation{obsAt(1, 1, geo.Pt(10, 10), simT0, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ack := resp.(*wire.IngestAck)
	if ack.Accepted != 0 || ack.Rejected != 1 {
		t.Errorf("ack = %+v, want 0 accepted / 1 rejected", ack)
	}
}

func TestContinuousQueryIncrementalUpdates(t *testing.T) {
	c := newTestCluster(t, 2, Options{LostAfter: time.Hour}) // no expiry noise
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	region := geo.RectOf(0, 0, 300, 300)
	_, ch, err := c.Coordinator.InstallContinuous(ctx, wire.ContinuousRange, region, 0)
	if err != nil {
		t.Fatal(err)
	}
	rngFeat := vision.NewRandomFeature(newRand(1), 32)
	// Target enters the region...
	ingestDirect(t, c, obsAt(1, 1, geo.Pt(100, 100), simT0.Add(time.Second), rngFeat))
	upd := mustUpdate(t, ch)
	if len(upd.Positive) != 1 || len(upd.Negative) != 0 {
		t.Fatalf("enter update = %+v", upd)
	}
	target := upd.Positive[0].TargetID
	if target == 0 {
		t.Fatal("positive update lacks target ID")
	}
	// ...moves within it (no update)...
	ingestDirect(t, c, obsAt(2, 1, geo.Pt(150, 150), simT0.Add(2*time.Second), rngFeat))
	// ...and leaves it.
	ingestDirect(t, c, obsAt(3, 1, geo.Pt(450, 450), simT0.Add(3*time.Second), rngFeat))
	upd = mustUpdate(t, ch)
	if len(upd.Negative) != 1 || upd.Negative[0].TargetID != target {
		t.Fatalf("leave update = %+v", upd)
	}
	select {
	case extra := <-ch:
		t.Fatalf("unexpected extra update %+v", extra)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestContinuousReplayMatchesSnapshot(t *testing.T) {
	// DESIGN invariant: replaying +/- deltas reproduces the snapshot answer.
	opts := Options{LostAfter: time.Hour}
	c := newTestCluster(t, 3, opts)
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 3), 50); err != nil {
		t.Fatal(err)
	}
	region := geo.RectOf(200, 200, 800, 800)
	_, ch, err := c.Coordinator.InstallContinuous(ctx, wire.ContinuousRange, region, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Drive a small simulation through the cluster.
	w, err := sim.NewWorld(sim.Config{
		World:      world1,
		NumObjects: 12,
		Model:      &sim.RandomWaypoint{World: world1, MinSpeed: 30, MaxSpeed: 60},
		Seed:       3,
		FeatureDim: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := vision.NewDetector(vision.DetectorConfig{Seed: 4})
	ing := NewIngester(c.Coordinator, c.Transport)
	net := c.Coordinator.Network()
	w.Run(40, net, det, func(_ int, obs []vision.Detection) {
		if _, err := ing.IngestDetections(ctx, obs); err != nil {
			t.Fatal(err)
		}
	})
	// Replay the deltas.
	inAnswer := map[uint64]bool{}
	drain(ch, func(u wire.ContinuousUpdate) {
		for _, p := range u.Positive {
			inAnswer[p.TargetID] = true
		}
		for _, n := range u.Negative {
			delete(inAnswer, n.TargetID)
		}
	})
	// Snapshot: targets whose LAST observation lies inside the region. Query
	// recent history and keep each target's latest record.
	window := wire.TimeWindow{From: simT0, To: w.Now()}
	recs, err := c.Coordinator.Range(ctx, world1, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := map[uint64]wire.ResultRecord{}
	for _, r := range recs {
		if r.TargetID == 0 {
			continue
		}
		if prev, ok := last[r.TargetID]; !ok || r.Time.After(prev.Time) {
			last[r.TargetID] = r
		}
	}
	want := map[uint64]bool{}
	for id, r := range last {
		if region.Contains(r.Pos) {
			want[id] = true
		}
	}
	if len(inAnswer) != len(want) {
		t.Fatalf("replayed answer has %d targets, snapshot has %d\nreplay: %v\nwant: %v",
			len(inAnswer), len(want), inAnswer, want)
	}
	for id := range want {
		if !inAnswer[id] {
			t.Errorf("target %d in snapshot but not in replayed answer", id)
		}
	}
}

func mustUpdate(t *testing.T, ch <-chan wire.ContinuousUpdate) wire.ContinuousUpdate {
	t.Helper()
	select {
	case u := <-ch:
		return u
	case <-time.After(2 * time.Second):
		t.Fatal("no continuous update arrived")
		return wire.ContinuousUpdate{}
	}
}

func drain(ch <-chan wire.ContinuousUpdate, fn func(wire.ContinuousUpdate)) {
	for {
		select {
		case u := <-ch:
			fn(u)
		default:
			return
		}
	}
}
