package core

import (
	"testing"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/geo"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// TestResightCancelsStalePeerPrimes is the regression test for the orphaned-
// prime bug: the owner loses the target, a handoff begins and peers are
// primed, then the owner re-sights the target. The re-sight must revoke every
// armed prime — before the fix, the primes stayed live and a look-alike at a
// primed camera would claim and fork the track.
func TestResightCancelsStalePeerPrimes(t *testing.T) {
	// Broadcast handoff guarantees every worker gets primed; a long PrimeTTL
	// guarantees the stale primes would still be live when the look-alike
	// appears.
	opts := Options{LostAfter: 2 * time.Second, PrimeTTL: time.Minute, BroadcastHandoff: true}
	c := newTestCluster(t, 4, opts)
	if err := c.Coordinator.AddCameras(ctx, corridorCams(8, 100), 60); err != nil {
		t.Fatal(err)
	}
	feat := vision.NewRandomFeature(newRand(21), 32)
	ingestDirect(t, c, wire.Observation{ObsID: 1, Camera: 1, Time: simT0, Pos: geo.Pt(30, 50), Feature: feat})
	trackID, ch, err := c.Coordinator.StartTrack(ctx, 1, feat, simT0)
	if err != nil {
		t.Fatal(err)
	}
	ownerBefore, _, _, ok := c.Coordinator.TrackInfo(trackID)
	if !ok {
		t.Fatal("track not registered")
	}

	// The target goes silent past LostAfter: empty frames advance the
	// observation clock everywhere, so the owner starts a handoff and the
	// coordinator primes all workers.
	now := simT0
	for i := 1; i <= 4; i++ {
		now = simT0.Add(time.Duration(i) * time.Second)
		for _, w := range c.Workers {
			if _, err := c.Transport.Call(ctx, w.Addr(), &wire.IngestBatch{FrameTime: now}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if c.Coordinator.Metrics().Snapshot().Counters["handoff.begun"] == 0 {
		t.Fatal("handoff never began; test premise broken")
	}

	// The target re-appears at its original camera: the handoff is moot and
	// the primes are now stale.
	now = now.Add(time.Second)
	ingestDirect(t, c, wire.Observation{ObsID: 2, Camera: 1, Time: now, Pos: geo.Pt(40, 50), Feature: feat})

	// Well before the primes' TTL, a look-alike appears at a far camera owned
	// by another worker. With the stale primes revoked nobody may claim.
	now = now.Add(time.Second)
	ingestDirect(t, c, wire.Observation{ObsID: 3, Camera: 6, Time: now, Pos: geo.Pt(550, 50), Feature: feat})

	var claimed int64
	for _, w := range c.Workers {
		claimed += w.Metrics().Snapshot().Counters["tracks.claimed"]
	}
	if claimed != 0 {
		t.Fatalf("stale primes claimed the track %d time(s) after re-sight", claimed)
	}
	snap := c.Coordinator.Metrics().Snapshot()
	if got := snap.Counters["handoff.completed"]; got != 0 {
		t.Errorf("handoff completed %d times, want 0 (re-sight should abort it)", got)
	}
	if snap.Counters["handoff.aborted"] == 0 {
		t.Error("re-sight did not abort the in-flight handoff")
	}
	owner, cam, _, ok := c.Coordinator.TrackInfo(trackID)
	if !ok {
		t.Fatal("track vanished")
	}
	if owner != ownerBefore {
		t.Errorf("ownership forked: %v -> %v", ownerBefore, owner)
	}
	if cam != 1 {
		t.Errorf("track at camera %d, want 1", cam)
	}
	for len(ch) > 0 {
		<-ch
	}
}

// TestSweepCommitsOwnershipOnlyOnRecoverySuccess is the regression test for
// the sweep ownership bug: when the recovery TrackStart RPC to the
// replacement worker fails, the track must keep its dead owner so the next
// sweep retries — before the fix, ownership was committed up front and the
// failed track pointed forever at a worker that had never heard of it.
func TestSweepCommitsOwnershipOnlyOnRecoverySuccess(t *testing.T) {
	opts := Options{
		HeartbeatTimeout: 50 * time.Millisecond,
		RetryPolicy:      cluster.Policy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
	}
	faulty := cluster.NewFaulty(cluster.NewInProc(), 5)
	c, err := NewLocalClusterOver(faulty, 2, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}

	// Start a track on a camera owned by the worker we are about to kill.
	victim := c.Workers[0]
	victimCams := c.Coordinator.Assignment().CamerasOf(victim.ID())
	if len(victimCams) == 0 {
		t.Fatal("victim owns no cameras")
	}
	feat := vision.NewRandomFeature(newRand(31), 32)
	trackID, _, err := c.Coordinator.StartTrack(ctx, victimCams[0], feat, simT0)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the victim (silent heartbeats) while every call to the survivor is
	// dropped, so the recovery TrackStart cannot be delivered.
	survivor := c.Workers[1]
	faulty.SetProgram(survivor.Addr(), cluster.FaultProgram{Drop: 1.0})
	deadline := time.Now().Add(2 * time.Second)
	var died []cluster.Member
	for time.Now().Before(deadline) {
		survivor.SendHeartbeat(ctx) //nolint:errcheck // heartbeats go to the coordinator, not the blocked link
		died = c.Coordinator.Sweep(ctx, time.Now())
		if len(died) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(died) != 1 || died[0].Node != victim.ID() {
		t.Fatalf("sweep reported %+v, want the victim's death", died)
	}
	snap := c.Coordinator.Metrics().Snapshot()
	if snap.Counters["tracks.recover_errors"] == 0 {
		t.Fatal("recovery RPC did not fail; test premise broken")
	}
	if snap.Counters["tracks.recovered"] != 0 {
		t.Fatal("recovery reported success despite the dropped link")
	}
	// The core assertion: ownership must NOT have moved to the survivor,
	// because the survivor never accepted the track.
	owner, _, _, ok := c.Coordinator.TrackInfo(trackID)
	if !ok {
		t.Fatal("track vanished")
	}
	if owner == survivor.ID() {
		t.Fatal("ownership committed to the survivor although the recovery RPC failed")
	}

	// Heal the link, re-push the assignment the survivor missed, and sweep
	// again: the still-orphaned track must now be recovered.
	faulty.ClearProgram(survivor.Addr())
	if err := c.Coordinator.Reassign(ctx); err != nil {
		t.Fatal(err)
	}
	survivor.SendHeartbeat(ctx) //nolint:errcheck // keep the survivor alive through the next sweep
	c.Coordinator.Sweep(ctx, time.Now())
	snap = c.Coordinator.Metrics().Snapshot()
	if snap.Counters["tracks.recovered"] == 0 {
		t.Fatal("orphaned track was not retried after the link healed")
	}
	owner, _, _, ok = c.Coordinator.TrackInfo(trackID)
	if !ok {
		t.Fatal("track vanished after recovery")
	}
	if owner != survivor.ID() {
		t.Errorf("recovered track owned by %v, want %v", owner, survivor.ID())
	}
	if got := survivor.Metrics().Snapshot().Gauges["tracks.resident"]; got != 1 {
		t.Errorf("survivor resident tracks = %d, want 1", got)
	}
}
