package core

import "context"

// Gateway intercepts inbound client RPCs before the coordinator's own
// dispatch. The serving plane (internal/serve) installs one to add result
// caching, shared continuous-query fan-out, and admission control without the
// coordinator knowing about any of it: a request the gateway handles is
// answered from the front end; anything else falls through to the normal
// dispatch path. Worker control traffic and HA protocol frames are never
// offered to the gateway.
type Gateway interface {
	// Intercept is called with the inbound request. It returns the response
	// and handled=true to short-circuit dispatch, or handled=false to let the
	// coordinator answer. Intercept may call back into the coordinator's
	// exported query methods; those do not re-enter the gateway.
	Intercept(ctx context.Context, req any) (resp any, handled bool)
}

// SetGateway installs (or, with nil, removes) the front-end gateway. Safe to
// call while the coordinator is serving.
func (c *Coordinator) SetGateway(g Gateway) {
	if g == nil {
		c.gateway.Store((*gatewaySlot)(nil))
		return
	}
	c.gateway.Store(&gatewaySlot{g: g})
}

// gatewaySlot boxes the interface so atomic.Pointer has a concrete type.
type gatewaySlot struct{ g Gateway }

func (c *Coordinator) loadGateway() Gateway {
	if slot := c.gateway.Load(); slot != nil {
		return slot.g
	}
	return nil
}
