package core

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// IngesterOptions tunes an ingest pipeline.
type IngesterOptions struct {
	// PipelineDepth bounds the batches in flight to each worker. Depth 1
	// degenerates to one blocking RPC per worker at a time; higher depths
	// overlap a worker's stage-2 evaluation with the next batch's delivery.
	// Defaults to the coordinator's Options.IngestPipelineDepth.
	PipelineDepth int
	// Serial reverts to the pre-pipeline path: one blocking RPC per camera
	// group, primary then replicas, in ascending camera order. It is the
	// differential-test baseline and the serial column of experiment R15.
	Serial bool
	// Source identifies this ingester for idempotent sequenced delivery;
	// it scopes the per-worker sequence numbers stamped on every batch.
	// Defaults to a process-unique name. Two ingesters must never share a
	// Source: a worker keeps one delivery cursor per Source.
	Source string
}

// ingesterIDs makes default Source names unique within a process.
var ingesterIDs atomic.Uint64

// Ingester routes detection batches to the workers owning their cameras,
// caching the routing table per epoch. It stands in for the per-camera feed
// processes of a real deployment.
//
// The default mode is pipelined: each frame's detections are coalesced into
// one multi-camera batch per destination worker, and a persistent per-worker
// sender delivers batches through a bounded window (PipelineDepth), stamping
// each with a (Source, Seq) pair so at-least-once retries and transport
// duplicates are applied at most once, in order. Safe for concurrent use.
type Ingester struct {
	coord     *Coordinator
	transport cluster.Transport
	opts      IngesterOptions

	mu      sync.Mutex
	epoch   uint64
	routes  map[uint32][]string // primary first, then replicas
	senders map[string]*ingestSender
	closed  bool

	lifecycle sync.WaitGroup

	// Async-path accounting: Flush waits for inflight to drain and collects
	// the accumulated acceptance count and first error.
	statMu   sync.Mutex
	statCond *sync.Cond
	inflight int
	accepted int
	firstErr error
}

// ingestSender is one worker's delivery lane: a bounded channel (the
// pipeline window) drained by a single goroutine that owns the sequence
// counter, so delivery to each worker is ordered even with concurrent
// producers.
type ingestSender struct {
	ch chan ingestJob
}

type ingestJob struct {
	ctx   context.Context
	batch *wire.IngestBatch
	done  func(*wire.IngestAck, error)
}

// NewIngester returns an ingest router bound to a coordinator, with the
// coordinator's configured pipeline depth.
func NewIngester(coord *Coordinator, transport cluster.Transport) *Ingester {
	return NewIngesterWith(coord, transport, IngesterOptions{})
}

// NewIngesterWith is NewIngester with explicit pipeline options.
func NewIngesterWith(coord *Coordinator, transport cluster.Transport, o IngesterOptions) *Ingester {
	if o.PipelineDepth <= 0 {
		o.PipelineDepth = coord.opts.IngestPipelineDepth
	}
	if o.Source == "" {
		o.Source = fmt.Sprintf("ingest-%d-%d", os.Getpid(), ingesterIDs.Add(1))
	}
	ing := &Ingester{
		coord:     coord,
		transport: transport,
		opts:      o,
		routes:    make(map[uint32][]string),
		senders:   make(map[string]*ingestSender),
	}
	ing.statCond = sync.NewCond(&ing.statMu)
	return ing
}

// refreshLocked rebuilds the route cache when the assignment epoch changed.
// Caller holds ing.mu.
func (ing *Ingester) refreshLocked() {
	epoch := ing.coord.Epoch()
	if epoch == ing.epoch && len(ing.routes) > 0 {
		return
	}
	ing.epoch = epoch
	ing.routes = make(map[uint32][]string)
	for cam := range ing.coord.Assignment() {
		if addrs := ing.coord.RoutesFor(cam); len(addrs) > 0 {
			ing.routes[cam] = addrs
		}
	}
}

// routesFor returns a camera's delivery addresses, refreshing the cache once
// on a miss (assignment may have changed mid-stream).
func (ing *Ingester) routesFor(cam uint32) []string {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	ing.refreshLocked()
	addrs, ok := ing.routes[cam]
	if !ok {
		ing.epoch = 0
		ing.refreshLocked()
		addrs = ing.routes[cam]
	}
	return addrs
}

// liveAddrs returns every distinct delivery address, sorted.
func (ing *Ingester) liveAddrs() []string {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	ing.refreshLocked()
	seen := make(map[string]bool)
	var out []string
	for _, addrs := range ing.routes {
		for _, addr := range addrs {
			if !seen[addr] {
				seen[addr] = true
				out = append(out, addr)
			}
		}
	}
	sort.Strings(out)
	return out
}

// coalesce converts detections to observations and groups them per
// destination address (primaries and replicas alike), each group sorted by
// (camera, observation ID) so per-worker identity association is
// deterministic regardless of input order.
func (ing *Ingester) coalesce(dets []vision.Detection) map[string][]wire.Observation {
	byAddr := make(map[string][]wire.Observation)
	for _, d := range dets {
		obs := wire.Observation{
			ObsID:   d.ObsID,
			Camera:  uint32(d.Camera),
			Time:    d.Time,
			Pos:     d.Pos,
			Feature: d.Feature,
			TrueID:  d.TrueID,
		}
		for _, addr := range ing.routesFor(obs.Camera) {
			byAddr[addr] = append(byAddr[addr], obs)
		}
	}
	for _, obs := range byAddr {
		sortObservations(obs)
	}
	return byAddr
}

func sortObservations(obs []wire.Observation) {
	sort.Slice(obs, func(i, j int) bool {
		if obs[i].Camera != obs[j].Camera {
			return obs[i].Camera < obs[j].Camera
		}
		return obs[i].ObsID < obs[j].ObsID
	})
}

// enqueue hands a batch to addr's sender lane, starting the lane on first
// use. Blocks while the lane's pipeline window is full (backpressure).
func (ing *Ingester) enqueue(ctx context.Context, addr string, batch *wire.IngestBatch, done func(*wire.IngestAck, error)) {
	ing.mu.Lock()
	if ing.closed {
		ing.mu.Unlock()
		done(nil, fmt.Errorf("core: ingester closed"))
		return
	}
	s, ok := ing.senders[addr]
	if !ok {
		s = &ingestSender{ch: make(chan ingestJob, ing.opts.PipelineDepth)}
		ing.senders[addr] = s
		ing.lifecycle.Add(1)
		go ing.runSender(addr, s)
	}
	ing.mu.Unlock()
	s.ch <- ingestJob{ctx: ctx, batch: batch, done: done}
}

// runSender drains one worker's lane. The sender owns the lane's sequence
// counter: stamping happens here, after any producer interleaving, so the
// sequence a worker sees is exactly its arrival order.
//
// Frame encoding for each Call rides the transport's pooled buffers
// (wire.AppendMarshal into a borrowed wire.Buf), so the lane adds no
// per-frame wire allocations. The batch and its Observations, however, are
// deliberately NOT recycled after the ack: on the zero-copy in-proc
// transport the worker retains Observation.Feature backing arrays (staged
// evaluation and the feature log hold references), so reusing them would
// corrupt the worker's state. Only the wire bytes are pooled; payload
// structs stay single-use on the producer side.
func (ing *Ingester) runSender(addr string, s *ingestSender) {
	defer ing.lifecycle.Done()
	var seq uint64
	for job := range s.ch {
		seq++
		job.batch.Source = ing.opts.Source
		job.batch.Seq = seq
		resp, err := ing.transport.Call(job.ctx, addr, job.batch)
		var ack *wire.IngestAck
		if err == nil {
			ack, _ = resp.(*wire.IngestAck)
		}
		job.done(ack, err)
	}
}

// Tick sends an empty clock frame to every live worker, advancing their
// observation time so track-loss detection and continuous-answer expiry run
// even on workers whose cameras saw nothing this frame. Real deployments get
// this for free from per-camera frame cadence. Tick returns once every
// worker acknowledged (or failed) the frame.
func (ing *Ingester) Tick(ctx context.Context, now time.Time) {
	addrs := ing.liveAddrs()
	if ing.opts.Serial {
		for _, addr := range addrs {
			ing.transport.Call(ctx, addr, &wire.IngestBatch{FrameTime: now}) //nolint:errcheck // clock ticks are best-effort
		}
		return
	}
	var wg sync.WaitGroup
	for _, addr := range addrs {
		wg.Add(1)
		ing.enqueue(ctx, addr, &wire.IngestBatch{FrameTime: now}, func(*wire.IngestAck, error) {
			wg.Done() // clock ticks are best-effort
		})
	}
	wg.Wait()
}

// IngestDetections delivers one frame's detections to the owning workers and
// waits for every acknowledgment, returning the number of observations
// accepted by primary owners. In the default pipelined mode the frame
// becomes one coalesced multi-camera batch per destination worker, delivered
// concurrently through the per-worker lanes.
func (ing *Ingester) IngestDetections(ctx context.Context, dets []vision.Detection) (int, error) {
	if ing.opts.Serial {
		return ing.ingestSerial(ctx, dets)
	}
	byAddr := ing.coalesce(dets)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted int
		firstErr error
	)
	for addr, obs := range byAddr {
		wg.Add(1)
		batch := &wire.IngestBatch{Observations: obs}
		ing.enqueue(ctx, addr, batch, func(ack *wire.IngestAck, err error) {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if ack != nil {
				accepted += ack.Accepted
			}
		})
	}
	wg.Wait()
	return accepted, firstErr
}

// IngestDetectionsAsync enqueues one frame without waiting for
// acknowledgments; completions accumulate inside the ingester until the next
// Flush. Backpressure still applies: the call blocks only when a
// destination's pipeline window is full.
func (ing *Ingester) IngestDetectionsAsync(ctx context.Context, dets []vision.Detection) {
	if ing.opts.Serial {
		accepted, err := ing.ingestSerial(ctx, dets)
		ing.statMu.Lock()
		ing.accepted += accepted
		if err != nil && ing.firstErr == nil {
			ing.firstErr = err
		}
		ing.statMu.Unlock()
		return
	}
	byAddr := ing.coalesce(dets)
	ing.statMu.Lock()
	ing.inflight += len(byAddr)
	ing.statMu.Unlock()
	for addr, obs := range byAddr {
		ing.enqueue(ctx, addr, &wire.IngestBatch{Observations: obs}, ing.asyncDone)
	}
}

func (ing *Ingester) asyncDone(ack *wire.IngestAck, err error) {
	ing.statMu.Lock()
	defer ing.statMu.Unlock()
	ing.inflight--
	if err != nil {
		if ing.firstErr == nil {
			ing.firstErr = err
		}
	} else if ack != nil {
		ing.accepted += ack.Accepted
	}
	if ing.inflight == 0 {
		ing.statCond.Broadcast()
	}
}

// Flush blocks until every batch enqueued by IngestDetectionsAsync has been
// acknowledged, then returns (and resets) the accumulated primary-acceptance
// count and the first delivery error.
func (ing *Ingester) Flush() (int, error) {
	ing.statMu.Lock()
	defer ing.statMu.Unlock()
	for ing.inflight > 0 {
		ing.statCond.Wait()
	}
	accepted, err := ing.accepted, ing.firstErr
	ing.accepted, ing.firstErr = 0, nil
	return accepted, err
}

// Close drains and stops the per-worker sender lanes. Callers must not
// ingest concurrently with (or after) Close.
func (ing *Ingester) Close() {
	ing.mu.Lock()
	if ing.closed {
		ing.mu.Unlock()
		return
	}
	ing.closed = true
	senders := make([]*ingestSender, 0, len(ing.senders))
	for _, s := range ing.senders {
		senders = append(senders, s)
	}
	ing.mu.Unlock()
	for _, s := range senders {
		close(s.ch)
	}
	ing.lifecycle.Wait()
}

// ingestSerial is the pre-pipeline delivery path: one unsequenced blocking
// RPC per camera group, primary then replicas, in ascending camera order
// (sorted so identity association matches the pipelined path's coalesced
// batches observation for observation).
func (ing *Ingester) ingestSerial(ctx context.Context, dets []vision.Detection) (int, error) {
	byCam := make(map[uint32][]wire.Observation)
	for _, d := range dets {
		obs := wire.Observation{
			ObsID:   d.ObsID,
			Camera:  uint32(d.Camera),
			Time:    d.Time,
			Pos:     d.Pos,
			Feature: d.Feature,
			TrueID:  d.TrueID,
		}
		byCam[obs.Camera] = append(byCam[obs.Camera], obs)
	}
	cams := make([]uint32, 0, len(byCam))
	for cam := range byCam {
		cams = append(cams, cam)
	}
	sort.Slice(cams, func(i, j int) bool { return cams[i] < cams[j] })
	accepted := 0
	var firstErr error
	for _, cam := range cams {
		addrs := ing.routesFor(cam)
		obs := byCam[cam]
		sortObservations(obs)
		for i, addr := range addrs {
			resp, err := ing.transport.Call(ctx, addr, &wire.IngestBatch{Camera: cam, Observations: obs})
			if err != nil {
				if firstErr == nil && i == 0 {
					firstErr = err
				}
				continue
			}
			// Accepted counts primary-owner inserts only, so summing across
			// the primary and replica acks never double-counts.
			if ack, ok := resp.(*wire.IngestAck); ok {
				accepted += ack.Accepted
			}
		}
	}
	return accepted, firstErr
}
