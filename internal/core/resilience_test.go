package core

import (
	"errors"
	"testing"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/wire"
)

// seedFaultCluster assembles a cluster over a Faulty(InProc) transport and
// loads one observation per camera of a 3×3 grid, returning the cluster and
// the fault injector. Faults are programmed by the caller afterwards, so
// setup traffic is never subject to them.
func seedFaultCluster(t *testing.T, opts Options) (*Cluster, *cluster.Faulty) {
	t.Helper()
	faulty := cluster.NewFaulty(cluster.NewInProc(), 11)
	c, err := NewLocalClusterOver(faulty, 3, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 3), 50); err != nil {
		t.Fatal(err)
	}
	var obs []wire.Observation
	for cam := uint32(1); cam <= 9; cam++ {
		ci := gridCams(world1, 3)[cam-1]
		obs = append(obs, obsAt(uint64(cam), cam, ci.Pos, simT0.Add(time.Duration(cam)*time.Second), nil))
	}
	if got := ingestDirect(t, c, obs...); got != 9 {
		t.Fatalf("ingested %d, want 9", got)
	}
	return c, faulty
}

// TestResilienceMasksDroppedCalls is the headline fault-injection test: one
// worker's link drops 30% of calls, and the retry layer still delivers every
// query answer complete.
func TestResilienceMasksDroppedCalls(t *testing.T) {
	c, faulty := seedFaultCluster(t, Options{
		CallTimeout: 50 * time.Millisecond,
		RetryPolicy: cluster.Policy{
			MaxAttempts:      5,
			BaseBackoff:      time.Millisecond,
			MaxBackoff:       5 * time.Millisecond,
			FailureThreshold: -1, // isolate the retry mechanism
		},
	})
	faulty.SetProgram(c.Workers[0].Addr(), cluster.FaultProgram{Drop: 0.3})

	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	for i := 0; i < 20; i++ {
		recs, meta, err := c.Coordinator.RangeMeta(ctx, world1, window, 0)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Completeness() != 1.0 {
			t.Fatalf("query %d completeness = %.2f (answered %d/%d), want 1.0",
				i, meta.Completeness(), meta.Answered, meta.Asked)
		}
		if len(recs) != 9 {
			t.Fatalf("query %d returned %d records, want 9", i, len(recs))
		}
	}
	if faulty.Injected().Dropped == 0 {
		t.Fatal("fault program never fired; the test exercised nothing")
	}
	if c.Coordinator.rpc.Stats().Retries == 0 {
		t.Fatal("no retries recorded; drops were not masked by the resilience layer")
	}
	if v := c.Coordinator.Metrics().Counter("scatter.partial").Value(); v != 0 {
		t.Errorf("scatter.partial = %d, want 0", v)
	}
}

// TestBreakerFastFailsPartitionedWorker: a worker whose link hangs every call
// opens its circuit breaker, after which queries return fast and report a
// partial answer instead of stalling for the full retry schedule.
func TestBreakerFastFailsPartitionedWorker(t *testing.T) {
	perAttempt := 40 * time.Millisecond
	c, faulty := seedFaultCluster(t, Options{
		CallTimeout: perAttempt,
		RetryPolicy: cluster.Policy{
			MaxAttempts:      2,
			BaseBackoff:      time.Millisecond,
			MaxBackoff:       time.Millisecond,
			FailureThreshold: 2,
			Cooldown:         10 * time.Second, // stays open for the whole test
		},
	})
	hungAddr := c.Workers[0].Addr()
	faulty.SetProgram(hungAddr, cluster.FaultProgram{Hang: 1})

	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	// First query eats the timeouts: both attempts to the hung worker hit the
	// per-attempt deadline, which crosses the failure threshold.
	_, meta, err := c.Coordinator.RangeMeta(ctx, world1, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Answered != 2 || meta.Asked != 3 {
		t.Fatalf("hung-worker query answered %d/%d, want 2/3", meta.Answered, meta.Asked)
	}
	if !c.Coordinator.rpc.BreakerOpen(hungAddr) {
		t.Fatal("breaker not open after repeated per-attempt timeouts")
	}

	// With the breaker open, the same query fast-fails that worker: well
	// under even one per-attempt timeout, with completeness < 1 reported.
	start := time.Now()
	recs, meta, err := c.Coordinator.RangeMeta(ctx, world1, window, 0)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Completeness() >= 1.0 {
		t.Fatalf("completeness = %.2f, want < 1.0", meta.Completeness())
	}
	if elapsed >= perAttempt {
		t.Fatalf("breaker-open query took %v, want < %v (fast fail)", elapsed, perAttempt)
	}
	if len(recs) == 0 {
		t.Fatal("degraded query returned nothing; healthy workers should still answer")
	}
	if s := c.Coordinator.rpc.Stats(); s.BreakerFastFails == 0 {
		t.Errorf("BreakerFastFails = 0, want > 0")
	}
	if v := c.Coordinator.Metrics().Counter("scatter.partial").Value(); v == 0 {
		t.Error("scatter.partial counter never incremented")
	}
}

// TestRangeResultCarriesCompleteness: a remote client querying through the
// coordinator's wire surface sees Asked/Answered on the result.
func TestRangeResultCarriesCompleteness(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 3), 50); err != nil {
		t.Fatal(err)
	}
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	resp, err := c.Transport.Call(ctx, "coord", &wire.RangeQuery{QueryID: 1, Rect: world1, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := resp.(*wire.RangeResult)
	if !ok {
		t.Fatalf("resp = %#v", resp)
	}
	if rr.Asked != 3 || rr.Answered != 3 {
		t.Errorf("Asked/Answered = %d/%d, want 3/3", rr.Asked, rr.Answered)
	}
}

// TestHeartbeatReregisters: a coordinator that lost its membership (restart)
// answers heartbeats with "must re-register"; the worker re-registers and
// resends, rejoining without waiting to be swept dead.
func TestHeartbeatReregisters(t *testing.T) {
	tr := cluster.NewInProc()
	defer tr.Close()
	coord := NewCoordinator("coord", tr, nil, Options{})
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	w := NewWorker("w1", "worker-01", "coord", tr, Options{})
	if err := w.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	if err := w.SendHeartbeat(ctx); err != nil {
		t.Fatalf("heartbeat while registered: %v", err)
	}

	// Coordinator restarts: same address, empty membership.
	coord.Stop()
	coord2 := NewCoordinator("coord", tr, nil, Options{})
	if err := coord2.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord2.Stop()
	if len(coord2.Alive()) != 0 {
		t.Fatal("fresh coordinator has members")
	}

	if err := w.SendHeartbeat(ctx); err != nil {
		t.Fatalf("heartbeat after coordinator restart: %v", err)
	}
	if got := w.Metrics().Counter("heartbeat.reregister").Value(); got != 1 {
		t.Errorf("heartbeat.reregister = %d, want 1", got)
	}
	alive := coord2.Alive()
	if len(alive) != 1 || alive[0].Node != "w1" {
		t.Fatalf("worker did not rejoin: alive = %v", alive)
	}
}

// TestWorkerStartUnreachableCoordinator: registration retries, then surfaces
// a transport error once attempts are exhausted.
func TestWorkerStartUnreachableCoordinator(t *testing.T) {
	tr := cluster.NewInProc()
	defer tr.Close()
	w := NewWorker("w1", "worker-01", "nowhere", tr, Options{
		RetryPolicy: cluster.Policy{MaxAttempts: 2, BaseBackoff: time.Millisecond, FailureThreshold: -1},
	})
	err := w.Start(ctx)
	if !errors.Is(err, cluster.ErrUnreachable) {
		t.Fatalf("Start err = %v, want ErrUnreachable", err)
	}
	if s := w.rpc.Stats(); s.Retries != 1 {
		t.Errorf("register retries = %d, want 1", s.Retries)
	}
}
