package core

import (
	"strconv"
	"strings"

	"stcam/internal/geo"
	"stcam/internal/wire"
)

// Query canonicalization for the serving plane: two requests that ask the
// same question must map to the same key, so the result cache and the shared
// continuous-query table can dedup them. Keys deliberately exclude QueryID
// (a per-call nonce) and normalize the rectangle so inverted corners compare
// equal. Keys are only compared for equality — the format just has to be
// injective, not parseable.

func appendCanonF64(b *strings.Builder, v float64) {
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.WriteByte(',')
}

func appendCanonRect(b *strings.Builder, r geo.Rect) {
	minX, maxX := r.Min.X, r.Max.X
	if minX > maxX {
		minX, maxX = maxX, minX
	}
	minY, maxY := r.Min.Y, r.Max.Y
	if minY > maxY {
		minY, maxY = maxY, minY
	}
	appendCanonF64(b, minX)
	appendCanonF64(b, minY)
	appendCanonF64(b, maxX)
	appendCanonF64(b, maxY)
}

func appendCanonWindow(b *strings.Builder, w wire.TimeWindow) {
	// Zero times canonicalize like any other instant; UnixNano of the zero
	// time is a stable (if large negative) constant.
	b.WriteString(strconv.FormatInt(w.From.UnixNano(), 10))
	b.WriteByte(',')
	b.WriteString(strconv.FormatInt(w.To.UnixNano(), 10))
	b.WriteByte(',')
}

// CanonicalQueryKey maps a cacheable read query to its canonical cache key.
// It returns "" for anything the serving plane does not cache (mutations,
// streaming queries, queries whose results depend on per-call state).
func CanonicalQueryKey(req any) string {
	var b strings.Builder
	switch m := req.(type) {
	case *wire.RangeQuery:
		b.WriteString("range:")
		appendCanonRect(&b, m.Rect)
		appendCanonWindow(&b, m.Window)
		b.WriteString(strconv.Itoa(m.Limit))
	case *wire.CountQuery:
		b.WriteString("count:")
		appendCanonRect(&b, m.Rect)
		appendCanonWindow(&b, m.Window)
	case *wire.HeatmapQuery:
		b.WriteString("heat:")
		appendCanonRect(&b, m.Rect)
		appendCanonWindow(&b, m.Window)
		appendCanonF64(&b, m.CellSize)
	default:
		return ""
	}
	return b.String()
}

// CanonicalContinuousKey maps a standing-query shape to the key the shared
// install table deduplicates on.
func CanonicalContinuousKey(kind wire.ContinuousKind, rect geo.Rect, threshold int) string {
	var b strings.Builder
	b.WriteString("cont:")
	b.WriteString(strconv.Itoa(int(kind)))
	b.WriteByte(':')
	appendCanonRect(&b, rect)
	b.WriteString(strconv.Itoa(threshold))
	return b.String()
}
