package core

import (
	"context"
	"errors"
	"math"
	"sort"
	"time"

	"stcam/internal/geo"
	"stcam/internal/wire"
)

var errKNNBadK = errors.New("core: knn k must be positive")

// This file is the pruned scatter-gather engine. Workers piggyback a compact
// store sketch (wire.WorkerSummary) on every heartbeat; the coordinator keeps
// the freshest sketch per node and consults it before fanning a query out:
//
//   - Range/Count/Filter/Heatmap skip workers whose sketch proves they hold
//     no record intersecting the query rect and window.
//   - KNN runs in two phases: probe the workers whose sketch lower-bounds
//     them nearest to the query point, then expand outward only while the
//     kth-best distance found so far does not rule the next worker out.
//
// Soundness leans entirely on the sketch being conservative (see
// stindex.Summarize) and on epoch gating: a sketch built under an older
// camera assignment is ignored, because a reassignment can move records
// between workers wholesale. A worker with no usable sketch is never pruned.
// Freshness is heartbeat-bounded: records ingested since a worker's last
// heartbeat are invisible to its sketch, so a prune can hide them until the
// next heartbeat — the same bounded staleness the membership view already
// has. The coordinator's own ingest proxy drops the sketches of workers it
// forwards to, so data that travelled through the coordinator is never
// pruned away.

// workerTarget pairs a live worker's node ID with its serve address, so the
// scatter path can consult per-node summaries while dialing by address.
type workerTarget struct {
	node wire.NodeID
	addr string
}

// nodeSummary is the freshest sketch received from one node, with the
// heartbeat sequence that carried it (guarding against out-of-order retries).
type nodeSummary struct {
	seq uint64
	sum *wire.WorkerSummary
}

// targetsFor returns the live workers owning cameras whose FOV could have
// produced observations in r (grown by the routing slack), sorted by address.
func (c *Coordinator) targetsFor(r geo.Rect) []workerTarget {
	camIDs := c.network.CamerasIntersecting(r.Expand(routeSlack))
	c.mu.Lock()
	nodes := make(map[wire.NodeID]bool)
	for _, id := range camIDs {
		if n, ok := c.assignment[uint32(id)]; ok {
			nodes[n] = true
		}
	}
	c.mu.Unlock()
	var out []workerTarget
	for _, m := range c.membership.Alive() {
		if nodes[m.Node] {
			out = append(out, workerTarget{node: m.Node, addr: m.Addr})
		}
	}
	sortTargets(out)
	return out
}

// allTargets returns every live worker, sorted by address.
func (c *Coordinator) allTargets() []workerTarget {
	alive := c.membership.Alive()
	out := make([]workerTarget, len(alive))
	for i, m := range alive {
		out[i] = workerTarget{node: m.Node, addr: m.Addr}
	}
	sortTargets(out)
	return out
}

func sortTargets(ts []workerTarget) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].addr < ts[j].addr })
}

func addrsOfTargets(ts []workerTarget) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.addr
	}
	return out
}

// --- summary bookkeeping -----------------------------------------------------

// noteSummary records a sketch carried by a heartbeat, keeping the one with
// the highest heartbeat sequence (RPC retries can deliver heartbeats out of
// order).
func (c *Coordinator) noteSummary(node wire.NodeID, seq uint64, s *wire.WorkerSummary) {
	c.sumMu.Lock()
	defer c.sumMu.Unlock()
	if st, ok := c.summaries[node]; ok && st.seq > seq {
		return
	}
	c.summaries[node] = nodeSummary{seq: seq, sum: s}
}

// dropSummary forgets a node's sketch (on re-register: a restarted worker's
// sequence numbers start over and its store may be empty).
func (c *Coordinator) dropSummary(node wire.NodeID) {
	c.sumMu.Lock()
	delete(c.summaries, node)
	c.sumMu.Unlock()
}

// summaryOf returns the node's sketch when it is usable for pruning: present
// and built under the current assignment epoch. Nil means "never prune".
func (c *Coordinator) summaryOf(node wire.NodeID, epoch uint64) *wire.WorkerSummary {
	c.sumMu.Lock()
	defer c.sumMu.Unlock()
	st, ok := c.summaries[node]
	if !ok || st.sum == nil || st.sum.Epoch != epoch {
		return nil
	}
	return st.sum
}

// invalidateSummariesAt drops the sketches of the workers about to receive
// proxied observations: their sketches no longer cover the new data, and a
// prune based on them could hide records the coordinator itself accepted.
func (c *Coordinator) invalidateSummariesAt(byAddr map[string][]wire.Observation) {
	alive := c.membership.Alive()
	c.sumMu.Lock()
	defer c.sumMu.Unlock()
	for _, m := range alive {
		if _, ok := byAddr[m.Addr]; ok {
			delete(c.summaries, m.Node)
		}
	}
}

// --- sketch predicates -------------------------------------------------------

// summaryBucketIndex maps a time to its coarse bucket index (floor division,
// correct for times before BucketFrom).
func summaryBucketIndex(s *wire.WorkerSummary, t time.Time) int64 {
	d, w := t.Sub(s.BucketFrom), s.BucketWidth
	q := d / w
	if d%w != 0 && d < 0 {
		q--
	}
	return int64(q)
}

// summaryCellInWindow reports whether a cell may hold records inside the
// window. Buckets only prove absence: any overlap with a non-zero bucket —
// or a cell with no histogram — keeps the cell.
func summaryCellInWindow(s *wire.WorkerSummary, c *wire.SummaryCell, w wire.TimeWindow) bool {
	if c.Count == 0 {
		return false
	}
	if s.BucketWidth <= 0 || len(c.Buckets) == 0 {
		return true
	}
	if w.To.Before(w.From) {
		return false
	}
	lo, hi := summaryBucketIndex(s, w.From), summaryBucketIndex(s, w.To)
	if hi < 0 || lo >= int64(len(c.Buckets)) {
		return false
	}
	lo = max(lo, 0)
	hi = min(hi, int64(len(c.Buckets))-1)
	for i := lo; i <= hi; i++ {
		if c.Buckets[i] > 0 {
			return true
		}
	}
	return false
}

// summaryCanMatch reports whether the sketch admits any record intersecting
// rect and window. A nil sketch admits everything (never prune blind).
func summaryCanMatch(s *wire.WorkerSummary, rect geo.Rect, window wire.TimeWindow) bool {
	if s == nil {
		return true
	}
	if s.Records == 0 {
		return false
	}
	for i := range s.Cells {
		cell := &s.Cells[i]
		if !rect.Intersects(cell.Bounds) {
			continue
		}
		if summaryCellInWindow(s, cell, window) {
			return true
		}
	}
	return false
}

// summaryKNNLowerBound returns a lower bound on the squared distance from
// center to any record the sketch admits inside window: 0 for a nil sketch
// (unknown, never prunable), +Inf when the sketch proves the worker holds
// nothing in the window.
func summaryKNNLowerBound(s *wire.WorkerSummary, center geo.Point, window wire.TimeWindow) float64 {
	if s == nil {
		return 0
	}
	lb := math.Inf(1)
	if s.Records == 0 {
		return lb
	}
	for i := range s.Cells {
		cell := &s.Cells[i]
		if !summaryCellInWindow(s, cell, window) {
			continue
		}
		if d := cell.Bounds.Dist2To(center); d < lb {
			lb = d
		}
	}
	return lb
}

// pruneTargets drops the targets whose sketch proves them empty for the rect
// and window, counting the drops into scatter.pruned.
func (c *Coordinator) pruneTargets(ts []workerTarget, rect geo.Rect, window wire.TimeWindow) ([]workerTarget, int) {
	if c.opts.DisablePrune || len(ts) == 0 {
		return ts, 0
	}
	epoch := c.Epoch()
	kept := make([]workerTarget, 0, len(ts))
	pruned := 0
	for _, t := range ts {
		if summaryCanMatch(c.summaryOf(t.node, epoch), rect, window) {
			kept = append(kept, t)
		} else {
			pruned++
		}
	}
	if pruned > 0 {
		c.reg.Counter("scatter.pruned").Add(int64(pruned))
	}
	return kept, pruned
}

// --- merging -----------------------------------------------------------------

// mergeSortedRecords k-way-merges per-worker record lists — each already
// sorted by (Time, ObsID), the order onRange returns — into one sorted list,
// stopping at limit (0 = no limit). Unlike concat-and-sort this is
// O(total·log workers) and stops as soon as the limit is reached.
func mergeSortedRecords(lists [][]wire.ResultRecord, limit int) []wire.ResultRecord {
	live := lists[:0:0]
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			live = append(live, l)
			total += len(l)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if limit > 0 && limit < total {
		total = limit
	}
	if len(live) == 1 {
		return live[0][:total:total]
	}
	m := recMerge{lists: live, heads: make([]int, len(live))}
	for i := range live {
		m.h = append(m.h, i)
	}
	for i := len(m.h)/2 - 1; i >= 0; i-- {
		m.down(i)
	}
	out := make([]wire.ResultRecord, 0, total)
	for len(m.h) > 0 && len(out) < total {
		top := m.h[0]
		out = append(out, m.lists[top][m.heads[top]])
		m.heads[top]++
		if m.heads[top] == len(m.lists[top]) {
			m.h[0] = m.h[len(m.h)-1]
			m.h = m.h[:len(m.h)-1]
		}
		m.down(0)
	}
	return out
}

// recMerge is a hand-rolled min-heap of list indices keyed on each list's
// current head record.
type recMerge struct {
	lists [][]wire.ResultRecord
	heads []int
	h     []int
}

func (m *recMerge) less(a, b int) bool {
	ra, rb := m.lists[a][m.heads[a]], m.lists[b][m.heads[b]]
	if !ra.Time.Equal(rb.Time) {
		return ra.Time.Before(rb.Time)
	}
	return ra.ObsID < rb.ObsID
}

func (m *recMerge) down(i int) {
	n := len(m.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && m.less(m.h[l], m.h[smallest]) {
			smallest = l
		}
		if r < n && m.less(m.h[r], m.h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		m.h[i], m.h[smallest] = m.h[smallest], m.h[i]
		i = smallest
	}
}

func knnRecordLess(a, b wire.KNNRecord) bool {
	if a.Dist2 != b.Dist2 {
		return a.Dist2 < b.Dist2
	}
	return a.ObsID < b.ObsID
}

// mergeTopK merges two lists sorted ascending by (Dist2, ObsID) into the
// combined top-k.
func mergeTopK(a, b []wire.KNNRecord, k int) []wire.KNNRecord {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 && len(b) <= k {
		return b
	}
	out := make([]wire.KNNRecord, 0, min(len(a)+len(b), k))
	i, j := 0, 0
	for len(out) < k && (i < len(a) || j < len(b)) {
		if j >= len(b) || (i < len(a) && knnRecordLess(a[i], b[j])) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	return out
}

// mergeKNNResponses folds scatter responses into the accumulated top-k.
func mergeKNNResponses(best []wire.KNNRecord, resps []any, k int) []wire.KNNRecord {
	for _, resp := range resps {
		if kr, ok := resp.(*wire.KNNResult); ok {
			best = mergeTopK(best, kr.Records, k)
		}
	}
	return best
}

// --- two-phase kNN -----------------------------------------------------------

type knnCand struct {
	t  workerTarget
	lb float64 // lower bound on squared distance to any admissible record
}

// knnMeta is the two-phase pruned kNN. maxDist2 > 0 additionally bounds the
// search radius (inclusive), as pushed down by a client query.
//
// Exactness argument: candidates are probed in ascending lower-bound order,
// and a worker is skipped only when (a) its sketch proves it empty for the
// window, or (b) the top-k already holds k records and the worker's lower
// bound STRICTLY exceeds the kth-best distance r2 — a worker with lb == r2
// could still hold a record at exactly r2 winning the (Dist2, ObsID)
// tie-break, so it is probed. Workers with lb == 0 can never satisfy (b) and
// are all probed in the first round. Pushed-down bounds are inclusive
// (workers keep d2 <= bound) for the same tie reason; r2 == 0 disables the
// pushdown (0 encodes "unbounded" on the wire) which costs bytes, never
// answers.
func (c *Coordinator) knnMeta(ctx context.Context, center geo.Point, window wire.TimeWindow, k int, maxDist2 float64) ([]wire.KNNRecord, QueryMeta, error) {
	if k <= 0 {
		return nil, QueryMeta{}, errKNNBadK
	}
	start := c.now()
	defer func() { c.reg.Histogram("query.knn").Observe(c.now().Sub(start)) }()
	targets := c.allTargets()
	if c.opts.DisablePrune {
		q := &wire.KNNQuery{QueryID: c.nextQueryID.Add(1), Center: center, Window: window, K: k, MaxDist2: maxDist2}
		resps, meta := c.scatter(ctx, addrsOfTargets(targets), q)
		return mergeKNNResponses(nil, resps, k), meta, nil
	}

	epoch := c.Epoch()
	var meta QueryMeta
	cands := make([]knnCand, 0, len(targets))
	for _, t := range targets {
		lb := summaryKNNLowerBound(c.summaryOf(t.node, epoch), center, window)
		if math.IsInf(lb, 1) || (maxDist2 > 0 && lb > maxDist2) {
			meta.Pruned++
			continue
		}
		cands = append(cands, knnCand{t: t, lb: lb})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].lb != cands[j].lb {
			return cands[i].lb < cands[j].lb
		}
		return cands[i].t.addr < cands[j].t.addr
	})

	var (
		best   []wire.KNNRecord
		qid    = c.nextQueryID.Add(1)
		r2     = math.Inf(1)
		next   = 0
		rounds = 0
	)
	for next < len(cands) {
		if len(best) >= k && cands[next].lb > r2 {
			meta.Pruned += len(cands) - next
			break
		}
		hi := next + c.opts.KNNProbeFanout
		for hi < len(cands) && cands[hi].lb == 0 {
			hi++ // zero-bound workers can never be excluded; take them all now
		}
		hi = min(hi, len(cands))
		q := &wire.KNNQuery{QueryID: qid, Center: center, Window: window, K: k, MaxDist2: maxDist2}
		if len(best) >= k && r2 > 0 && (maxDist2 <= 0 || r2 < maxDist2) {
			q.MaxDist2 = r2
		}
		roundStart := c.now()
		resps, m := c.scatter(ctx, addrsOfTargets(targetsOfCands(cands[next:hi])), q)
		phase := c.reg.Histogram("query.knn.expand")
		if rounds == 0 {
			phase = c.reg.Histogram("query.knn.probe")
		}
		phase.Observe(c.now().Sub(roundStart))
		meta.Asked += m.Asked
		meta.Answered += m.Answered
		best = mergeKNNResponses(best, resps, k)
		if len(best) >= k {
			r2 = best[len(best)-1].Dist2
		}
		next = hi
		rounds++
	}
	if meta.Pruned > 0 {
		c.reg.Counter("scatter.pruned").Add(int64(meta.Pruned))
	}
	c.reg.Counter("knn.rounds").Add(int64(rounds))
	return best, meta, nil
}

func targetsOfCands(cs []knnCand) []workerTarget {
	out := make([]workerTarget, len(cs))
	for i, cd := range cs {
		out[i] = cd.t
	}
	return out
}
