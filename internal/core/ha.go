package core

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"stcam/internal/camera"
	"stcam/internal/cluster"
	"stcam/internal/wire"
)

// cameraOf builds the in-memory camera from its wire registration.
func cameraOf(ci wire.CameraInfo) *camera.Camera {
	return camera.New(camera.ID(ci.ID), ci.Pos, ci.Orient, ci.HalfFOV, ci.Range)
}

// This file is the coordinator's high-availability layer: a replicated
// control-plane state machine plus leader lease and deterministic failover.
//
// The leader journals every control-plane mutation — camera registry,
// assignment + epoch, worker membership, and track-registry transitions — as
// versioned wire.ControlRecords and streams them to its standby peers inside
// Replicate frames. A Replicate doubles as the leader lease: an empty one is
// a pure renewal. Standbys apply the journal in index order, acknowledge how
// far they got (ReplicateAck carries gap-recovery via NeedFrom), answer
// leader-only traffic with CodeNotLeader redirects, and keep serving local
// reads so the query plane degrades instead of failing.
//
// When a standby sees the lease lapse it polls its peers with LeaderQuery and
// runs the deterministic election: the lowest coordinator ID among the
// candidates with the maximum applied journal index wins, with no voting
// round — every reachable standby computes the same answer. The winner marks
// its replicated membership fresh, bumps the assignment epoch through
// Reassign (which fences the deposed leader: workers reject older epochs),
// and starts leasing. A deposed leader that hears a higher-epoch Replicate —
// or a higher-epoch rejection to its own stream — steps down to standby and
// resynchronizes from the new leader's journal.
//
// Track position updates are deliberately NOT journaled: they are the hot
// path, and the track registry is replicated on transitions only (start,
// ownership change, recovery, stop). Likewise worker-side (Source, Seq)
// ingest dedup state needs no replication — it lives on the workers and
// survives coordinator failover by construction.

// maxReplicateBatch bounds the journal records shipped per Replicate frame;
// a further-behind standby catches up over successive lease ticks.
const maxReplicateBatch = 512

// haState is the coordinator's HA bookkeeping. Lock discipline: ha.mu is
// independent of Coordinator.mu — neither is ever acquired while holding the
// other — and applyMu serializes whole Replicate applications above both.
type haState struct {
	id    wire.NodeID
	peers map[wire.NodeID]string // peer coordinator ID → serve address
	ttl   time.Duration          // lease lifetime; renewals at ttl/4

	applyMu sync.Mutex // serializes Replicate application end-to-end

	mu           sync.Mutex
	standby      bool
	lease        *cluster.Lease
	journal      []wire.ControlRecord
	applied      uint64                 // journal prefix applied locally
	acks         map[wire.NodeID]uint64 // leader: highest index each peer acked
	inFlight     map[wire.NodeID]bool   // leader: replication RPC outstanding
	streamLeader wire.NodeID            // standby: whose journal we follow
	needReset    bool                   // standby: must resync from index 1
	leaderlessAt time.Time              // standby: when the lease first lapsed
}

// haEnabled reports whether this coordinator runs the replicated control
// plane. All journal/lease paths are no-ops when it does not.
func (c *Coordinator) haEnabled() bool { return c.ha != nil }

// IsStandby reports whether this coordinator currently follows a leader.
func (c *Coordinator) IsStandby() bool {
	if c.ha == nil {
		return false
	}
	c.ha.mu.Lock()
	defer c.ha.mu.Unlock()
	return c.ha.standby
}

// Role describes this coordinator's control-plane role: "single" outside an
// HA group, else "leader" or "standby" plus the current leader's identity.
func (c *Coordinator) Role() (role string, leader wire.NodeID, leaderAddr string) {
	if c.ha == nil {
		return "single", "", ""
	}
	c.ha.mu.Lock()
	defer c.ha.mu.Unlock()
	if !c.ha.standby {
		return "leader", c.ha.id, c.Addr()
	}
	l, addr, _ := c.ha.lease.Holder()
	return "standby", l, addr
}

// JournalApplied returns the applied journal index (diagnostics and tests).
func (c *Coordinator) JournalApplied() uint64 {
	if c.ha == nil {
		return 0
	}
	c.ha.mu.Lock()
	defer c.ha.mu.Unlock()
	return c.ha.applied
}

// haAppend journals one control-plane mutation on the leader. Callers must
// not hold c.mu (ha.mu and c.mu never nest). Standbys never append here —
// their journal grows only by applying the leader's stream.
func (c *Coordinator) haAppend(epoch uint64, rec wire.ControlRecord) {
	if c.ha == nil {
		return
	}
	h := c.ha
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.standby {
		return
	}
	rec.Index = uint64(len(h.journal)) + 1
	rec.Epoch = epoch
	h.journal = append(h.journal, rec)
	h.applied = rec.Index
}

// assignRecordLocked snapshots the full camera→worker assignment (plus
// replicas) as one OpAssign record. Caller holds c.mu.
func (c *Coordinator) assignRecordLocked() wire.ControlRecord {
	rec := wire.ControlRecord{Op: wire.OpAssign}
	rec.Assign = make([]wire.AssignEntry, 0, len(c.assignment))
	for cam, node := range c.assignment {
		e := wire.AssignEntry{Camera: cam, Node: node}
		if reps := c.replicas[cam]; len(reps) > 0 {
			e.Replicas = append([]wire.NodeID(nil), reps...)
		}
		rec.Assign = append(rec.Assign, e)
	}
	return rec
}

func trackRecordOf(tr *coordTrack) wire.ControlRecord {
	return wire.ControlRecord{Op: wire.OpTrack, Track: wire.TrackRecord{
		TrackID:    tr.trackID,
		Owner:      tr.owner,
		LastCamera: tr.lastCamera,
		Feature:    tr.feature,
		LastSeen:   tr.lastSeen,
		Handoffs:   tr.handoffs,
	}}
}

// --- HA loop -----------------------------------------------------------------

// haLoop drives the role-dependent periodic work: a leader renews its lease
// by replicating to every peer; a standby watches for lease expiry and runs
// the election. One loop serves both roles so step-down and promotion are
// just state flips, with no goroutine handover.
func (c *Coordinator) haLoop() {
	defer c.lifecycle.Done()
	tick := c.ha.ttl / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			if c.IsStandby() {
				c.maybeElect()
			} else {
				c.replicateAll()
			}
		}
	}
}

// replicateAll ships journal tails (or pure lease renewals) to every peer.
// Each peer gets at most one outstanding RPC, so a partitioned peer cannot
// stall the lease cadence toward the healthy ones.
func (c *Coordinator) replicateAll() {
	h := c.ha
	h.mu.Lock()
	var targets []wire.NodeID
	for id := range h.peers {
		if !h.inFlight[id] {
			h.inFlight[id] = true
			targets = append(targets, id)
		}
	}
	h.mu.Unlock()
	for _, id := range targets {
		go c.replicateTo(id)
	}
}

// replicateTo sends one Replicate frame to a peer and folds its answer into
// the ack state. A higher-epoch rejection means a new leader exists: step
// down and let its stream resynchronize us.
func (c *Coordinator) replicateTo(peer wire.NodeID) {
	h := c.ha
	defer func() {
		h.mu.Lock()
		delete(h.inFlight, peer)
		h.mu.Unlock()
	}()
	epoch := c.Epoch()
	h.mu.Lock()
	if h.standby {
		h.mu.Unlock()
		return
	}
	addr := h.peers[peer]
	from := h.acks[peer] + 1
	var recs []wire.ControlRecord
	if from <= uint64(len(h.journal)) {
		end := len(h.journal)
		if end > int(from)-1+maxReplicateBatch {
			end = int(from) - 1 + maxReplicateBatch
		}
		recs = append(recs, h.journal[from-1:end]...)
	}
	commit := h.commitIndexLocked()
	msg := &wire.Replicate{
		Leader:     h.id,
		LeaderAddr: c.Addr(),
		Epoch:      epoch,
		Commit:     commit,
		FromIndex:  from,
		Records:    recs,
	}
	h.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), h.ttl/2)
	defer cancel()
	resp, err := c.rpc.Call(ctx, addr, msg)
	if err != nil {
		var re *cluster.RemoteError
		if errors.As(err, &re) && (re.Code == wire.CodeWrongEpoch || re.Code == wire.CodeNotLeader) {
			// The peer follows (or is) a newer leader. Yield.
			c.stepDown("", re.Message)
		} else {
			c.reg.Counter("ha.replicate_errors").Inc()
		}
		return
	}
	ack, ok := resp.(*wire.ReplicateAck)
	if !ok {
		return
	}
	h.mu.Lock()
	if ack.NeedFrom > 0 {
		// Gap: rewind so the next frame restarts from what the peer needs.
		if ack.NeedFrom-1 < h.acks[peer] || h.acks[peer] == 0 {
			h.acks[peer] = ack.NeedFrom - 1
		}
	} else if ack.Applied > h.acks[peer] {
		h.acks[peer] = ack.Applied
	}
	h.mu.Unlock()
	c.reg.Counter("ha.replicated").Add(int64(len(recs)))
}

// commitIndexLocked is the highest journal index durable on a majority of
// the HA group (self included). Caller holds ha.mu.
func (h *haState) commitIndexLocked() uint64 {
	idxs := []uint64{uint64(len(h.journal))}
	for id := range h.peers {
		idxs = append(idxs, h.acks[id])
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] > idxs[j] })
	// Majority = (n/2)+1 of the group; the commit index is what the
	// (majority)th-best member holds.
	return idxs[len(idxs)/2]
}

// --- standby side ------------------------------------------------------------

// onReplicate handles the leader's journal stream and lease renewal on a
// standby — and, on a node that still believes it leads, doubles as the
// step-down trigger when the frame proves a newer leader exists.
func (c *Coordinator) onReplicate(m *wire.Replicate) (any, error) {
	h := c.ha
	if h == nil {
		return &wire.Error{Code: wire.CodeBadRequest, Message: "coordinator is not HA-enabled"}, nil
	}
	h.applyMu.Lock()
	defer h.applyMu.Unlock()

	epoch := c.Epoch()
	h.mu.Lock()
	if !h.standby {
		// Two leaders met. The newer epoch wins; equal epochs break toward
		// the lower ID, so exactly one of the pair yields.
		if m.Epoch > epoch || (m.Epoch == epoch && m.Leader < h.id) {
			h.stepDownLocked()
			c.reg.Counter("ha.stepdowns").Inc()
		} else {
			h.mu.Unlock()
			return &wire.Error{Code: wire.CodeWrongEpoch, Message: c.Addr()}, nil
		}
	}
	if !h.lease.Renew(m.Leader, m.LeaderAddr, m.Epoch, time.Now()) {
		_, laddr, _ := h.lease.Holder()
		h.mu.Unlock()
		return &wire.Error{Code: wire.CodeNotLeader, Message: laddr}, nil
	}
	h.leaderlessAt = time.Time{}
	if m.Leader != h.streamLeader {
		// New journal source: its indices are not comparable to what we
		// applied before, so resynchronize from the beginning.
		h.streamLeader = m.Leader
		h.needReset = true
	}
	if h.needReset {
		if m.FromIndex != 1 {
			ack := &wire.ReplicateAck{Applied: 0, NeedFrom: 1}
			h.mu.Unlock()
			return ack, nil
		}
		h.journal = nil
		h.applied = 0
		h.needReset = false
	}
	if m.FromIndex > h.applied+1 {
		ack := &wire.ReplicateAck{Applied: h.applied, NeedFrom: h.applied + 1}
		h.mu.Unlock()
		return ack, nil
	}
	// Contiguous tail beyond what we have applied.
	var toApply []wire.ControlRecord
	next := h.applied + 1
	for i := range m.Records {
		idx := m.FromIndex + uint64(i)
		if idx < next {
			continue // already applied (duplicate frame)
		}
		if idx != next {
			break // hole mid-frame; stop at it
		}
		toApply = append(toApply, m.Records[i])
		next++
	}
	h.mu.Unlock()

	for i := range toApply {
		c.applyRecord(&toApply[i])
	}

	h.mu.Lock()
	h.journal = append(h.journal, toApply...)
	h.applied += uint64(len(toApply))
	ack := &wire.ReplicateAck{Applied: h.applied}
	h.mu.Unlock()
	if len(toApply) > 0 {
		c.reg.Counter("ha.applied").Add(int64(len(toApply)))
	}
	return ack, nil
}

// applyRecord folds one journal record into the standby's control-plane
// state. Application is idempotent: every op is an upsert or a whole-state
// replacement, so duplicate frames are harmless.
func (c *Coordinator) applyRecord(rec *wire.ControlRecord) {
	switch rec.Op {
	case wire.OpCameras:
		for _, ci := range rec.Cameras {
			c.network.Add(cameraOf(ci))
		}
		c.network.SeedGeometricEdges(routeSlack)
		c.network.BuildIndex(0)
		c.mu.Lock()
		for _, ci := range rec.Cameras {
			c.camInfos[ci.ID] = ci
		}
		c.mu.Unlock()
	case wire.OpAssign:
		c.mu.Lock()
		c.assignment = make(cluster.Assignment, len(rec.Assign))
		c.replicas = make(map[uint32][]wire.NodeID)
		for _, e := range rec.Assign {
			c.assignment[e.Camera] = e.Node
			if len(e.Replicas) > 0 {
				c.replicas[e.Camera] = append([]wire.NodeID(nil), e.Replicas...)
			}
		}
		if rec.Epoch > c.epoch {
			c.epoch = rec.Epoch
		}
		c.mu.Unlock()
	case wire.OpMember:
		c.membership.Register(&wire.Register{
			Node:     rec.Member.Node,
			Addr:     rec.Member.Addr,
			Capacity: rec.Member.Capacity,
		}, time.Now())
	case wire.OpTrack:
		t := rec.Track
		c.mu.Lock()
		tr, ok := c.tracks[t.TrackID]
		if !ok {
			tr = &coordTrack{trackID: t.TrackID, ch: make(chan wire.TrackUpdate, 1024)}
			c.tracks[t.TrackID] = tr
		}
		tr.owner = t.Owner
		tr.lastCamera = t.LastCamera
		tr.feature = t.Feature
		tr.lastSeen = t.LastSeen
		tr.handoffs = t.Handoffs
		c.mu.Unlock()
	case wire.OpTrackRemove:
		c.mu.Lock()
		tr, ok := c.tracks[rec.Track.TrackID]
		if ok {
			delete(c.tracks, rec.Track.TrackID)
		}
		c.mu.Unlock()
		if ok {
			close(tr.ch)
		}
	}
}

// onLeaderQuery answers who this node thinks leads, and how far its journal
// has applied — the election poll.
func (c *Coordinator) onLeaderQuery() (any, error) {
	h := c.ha
	if h == nil {
		return &wire.LeaderInfo{Node: "", Addr: c.Addr(), IsLeader: true, Epoch: c.Epoch()}, nil
	}
	role, leader, laddr := c.Role()
	h.mu.Lock()
	applied := h.applied
	h.mu.Unlock()
	return &wire.LeaderInfo{
		Node:       h.id,
		Addr:       c.Addr(),
		IsLeader:   role == "leader",
		Leader:     leader,
		LeaderAddr: laddr,
		Epoch:      c.Epoch(),
		Applied:    applied,
	}, nil
}

// maybeElect runs on each standby tick: if the lease lapsed, poll the peers
// and promote when the deterministic election picks this node. A reachable
// peer that claims leadership re-arms the lease instead — only Replicate
// frames were lost, not the leader.
func (c *Coordinator) maybeElect() {
	h := c.ha
	now := time.Now()
	h.mu.Lock()
	if !h.standby || !h.lease.Expired(now) {
		h.mu.Unlock()
		return
	}
	if h.leaderlessAt.IsZero() {
		h.leaderlessAt = now
	}
	applied := h.applied
	h.mu.Unlock()

	cands := map[wire.NodeID]uint64{h.id: applied}
	ctx, cancel := context.WithTimeout(context.Background(), h.ttl/2)
	defer cancel()
	for id, addr := range h.peers {
		resp, err := c.rpc.Call(ctx, addr, &wire.LeaderQuery{})
		if err != nil {
			continue
		}
		li, ok := resp.(*wire.LeaderInfo)
		if !ok {
			continue
		}
		if li.IsLeader {
			// The leader is alive and reachable; treat the answer as a
			// renewal and stand down from the election.
			h.mu.Lock()
			h.lease.Renew(li.Node, li.Addr, li.Epoch, time.Now())
			h.leaderlessAt = time.Time{}
			h.mu.Unlock()
			return
		}
		cands[id] = li.Applied
	}
	if winner, ok := cluster.ElectLeader(cands); ok && winner == h.id {
		c.becomeLeader()
	}
	// Otherwise a better-placed standby won the same computation; its first
	// Replicate will renew our lease.
}

// becomeLeader promotes this standby: adopt the replicated membership as
// freshly seen, flip the role, bump the assignment epoch through Reassign —
// which both redirects the data plane and fences any deposed leader — and
// start leasing on the next tick.
func (c *Coordinator) becomeLeader() {
	h := c.ha
	now := time.Now()
	h.mu.Lock()
	if !h.standby {
		h.mu.Unlock()
		return
	}
	h.standby = false
	h.acks = make(map[wire.NodeID]uint64)
	h.streamLeader = ""
	var down time.Duration
	if !h.leaderlessAt.IsZero() {
		down = now.Sub(h.leaderlessAt)
		h.leaderlessAt = time.Time{}
	}
	h.mu.Unlock()

	c.reg.Counter("failover.total").Inc()
	// Coarse by design: sub-second outages still register one second, so
	// the counter is a lower-bound outage clock that never reads zero
	// after a real failover.
	c.reg.Counter("leaderless.seconds").Add(int64(down/time.Second) + 1)
	c.membership.Refresh(now)
	ctx, cancel := context.WithTimeout(context.Background(), 2*c.opts.CallTimeout)
	defer cancel()
	if err := c.Reassign(ctx); err != nil {
		// No live workers replicated yet, or pushes failed: claim the epoch
		// anyway so the fence holds; workers adopt it as they re-register.
		c.mu.Lock()
		c.epoch++
		c.mu.Unlock()
		c.reg.Counter("ha.promote_reassign_errors").Inc()
	}
	c.reg.Counter("ha.promotions").Inc()
}

// stepDown demotes a (deposed) leader to standby. The lease it left behind
// is stale, so the next standby tick polls the peers, finds the live leader,
// and re-arms from its answer; the new leader's stream then resynchronizes
// the journal from scratch.
func (c *Coordinator) stepDown(leader wire.NodeID, leaderAddr string) {
	_, _ = leader, leaderAddr // learned properly from the new leader's stream
	h := c.ha
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.standby {
		return
	}
	h.stepDownLocked()
	c.reg.Counter("ha.stepdowns").Inc()
}

func (h *haState) stepDownLocked() {
	h.standby = true
	h.streamLeader = ""
	h.needReset = true
	h.leaderlessAt = time.Time{}
}

// standbyReject answers leader-only traffic on a standby with a redirect.
func (c *Coordinator) standbyReject() (any, error) {
	_, _, laddr := c.Role()
	return &wire.Error{Code: wire.CodeNotLeader, Message: laddr}, nil
}
