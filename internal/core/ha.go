package core

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"stcam/internal/camera"
	"stcam/internal/cluster"
	"stcam/internal/wire"
)

// cameraOf builds the in-memory camera from its wire registration.
func cameraOf(ci wire.CameraInfo) *camera.Camera {
	return camera.New(camera.ID(ci.ID), ci.Pos, ci.Orient, ci.HalfFOV, ci.Range)
}

// This file is the coordinator's high-availability layer: a replicated
// control-plane state machine plus leader lease and deterministic failover.
//
// The leader journals every control-plane mutation — camera registry,
// assignment + epoch, worker membership, and track-registry transitions — as
// versioned wire.ControlRecords and streams them to its standby peers inside
// Replicate frames. Client-facing mutations (registration, camera adds,
// reassignment, track start/stop) are acknowledged only once the record is
// durable on a majority of the group: haAppendWait journals the record, kicks
// an immediate replication round, and blocks until the majority commit index
// reaches it (or times out, in which case the caller surfaces
// ErrNotCommitted instead of a false ack). Worker-push records (handoff
// ownership moves, sweep recoveries) are journaled asynchronously — the
// data-plane event they describe has already happened, so refusing the push
// could not undo it; a failover that loses one is healed by the next sweep.
//
// A Replicate doubles as the leader lease: an empty one is a pure renewal.
// Standbys apply the journal in index order, acknowledge how far they got
// (ReplicateAck carries gap-recovery via NeedFrom), answer leader-only
// traffic with CodeNotLeader redirects, and keep serving local reads so the
// query plane degrades instead of failing.
//
// The journal does not grow without bound: once it exceeds
// compactMinJournal records, the majority-durable prefix is folded away (the
// live control state already *is* that prefix applied), keeping a
// compactKeepTail tail for cheap catch-up. A peer that needs compacted
// history — a fresh standby, or one resyncing after a leader change — gets a
// full-state snapshot frame (Replicate.SnapIndex) instead of a replay from
// index 1. Standbys compact too, bounded by the leader's advertised majority
// commit index (Replicate.Commit).
//
// When a standby sees the lease lapse it polls its peers with LeaderQuery and
// runs the deterministic election: the lowest coordinator ID among the
// candidates with the maximum applied journal index wins, with no voting
// round — every reachable standby computes the same answer. A reachable peer
// claiming leadership stops the election only if its claim renews the lease
// at a current epoch; a deposed leader still claiming at a stale epoch is
// ranked as an ordinary candidate instead of deferring failover forever. The
// winner marks its replicated membership fresh, flips the role (serialized
// against any in-flight journal application via applyMu), bumps the
// assignment epoch through Reassign — which fences the deposed leader:
// workers reject older epochs — and starts leasing. A deposed leader that
// hears a higher-epoch Replicate — or a higher-epoch rejection to its own
// stream — steps down to standby and resynchronizes from the new leader.
//
// Track position updates are deliberately NOT journaled: they are the hot
// path, and the track registry is replicated on transitions only (start,
// ownership change, recovery, stop). Likewise worker-side (Source, Seq)
// ingest dedup state needs no replication — it lives on the workers and
// survives coordinator failover by construction.

// maxReplicateBatch bounds the journal records shipped per Replicate frame;
// a further-behind standby catches up over successive frames (replicateTo
// keeps streaming while the peer makes progress).
const maxReplicateBatch = 512

// Journal compaction bounds: past compactMinJournal resident records the
// majority-durable prefix is folded into the live state, always retaining
// compactKeepTail records so a slightly-behind peer catches up from the tail
// instead of taking a full snapshot.
const (
	compactMinJournal = 1024
	compactKeepTail   = 256
)

// haCommitWaitTTLs is the majority-commit wait budget in lease TTLs. It must
// cover at least one replication round trip; two TTLs also spans a transient
// peer hiccup plus the retried frame.
const haCommitWaitTTLs = 2

// ErrNotCommitted reports that a control-plane mutation was journaled on the
// leader but not acknowledged by a majority of the HA group in time. The
// mutation is not durable: a failover may lose it, so it must not be
// acknowledged to the client as applied.
var ErrNotCommitted = errors.New("core: control mutation not acknowledged by a majority of the HA group")

// errNoLiveWorkers marks a Reassign that returned before bumping the epoch.
var errNoLiveWorkers = errors.New("core: no live workers to assign cameras to")

// haState is the coordinator's HA bookkeeping. Lock discipline: ha.mu is
// independent of Coordinator.mu — neither is ever acquired while holding the
// other — and applyMu serializes whole Replicate applications (and leader
// promotion) above both.
type haState struct {
	id    wire.NodeID
	peers map[wire.NodeID]string // peer coordinator ID → serve address
	ttl   time.Duration          // lease lifetime; renewals at ttl/4

	applyMu sync.Mutex // serializes Replicate application and promotion

	mu           sync.Mutex
	standby      bool
	lease        *cluster.Lease
	journal      []wire.ControlRecord   // records (base+1 .. base+len]
	base         uint64                 // indices <= base are compacted into live state
	applied      uint64                 // journal prefix applied locally (absolute index)
	acks         map[wire.NodeID]uint64 // leader: highest index each peer acked
	inFlight     map[wire.NodeID]bool   // leader: replication RPC outstanding
	commitCh     chan struct{}          // closed+replaced when acks or role change (broadcast)
	streamLeader wire.NodeID            // standby: whose journal we follow
	needReset    bool                   // standby: must resync from scratch
	leaderlessAt time.Time              // standby: when the lease first lapsed
}

// lastIndexLocked is the highest journaled index. Caller holds ha.mu.
func (h *haState) lastIndexLocked() uint64 { return h.base + uint64(len(h.journal)) }

// notifyLocked wakes every majority-commit waiter. Caller holds ha.mu.
func (h *haState) notifyLocked() {
	close(h.commitCh)
	h.commitCh = make(chan struct{})
}

// compactLocked folds the journal prefix up to durable (never closer than
// compactKeepTail to the tail) into the base offset — the live control state
// already equals that prefix applied. Returns the records dropped. Caller
// holds ha.mu.
func (h *haState) compactLocked(durable uint64) uint64 {
	if len(h.journal) <= compactMinJournal {
		return 0
	}
	cut := durable
	if max := h.lastIndexLocked() - compactKeepTail; cut > max {
		cut = max
	}
	if cut <= h.base {
		return 0
	}
	n := cut - h.base
	h.journal = append([]wire.ControlRecord(nil), h.journal[n:]...)
	h.base = cut
	return n
}

// haEnabled reports whether this coordinator runs the replicated control
// plane. All journal/lease paths are no-ops when it does not.
func (c *Coordinator) haEnabled() bool { return c.ha != nil }

// IsStandby reports whether this coordinator currently follows a leader.
func (c *Coordinator) IsStandby() bool {
	if c.ha == nil {
		return false
	}
	c.ha.mu.Lock()
	defer c.ha.mu.Unlock()
	return c.ha.standby
}

// Role describes this coordinator's control-plane role: "single" outside an
// HA group, else "leader" or "standby" plus the current leader's identity.
func (c *Coordinator) Role() (role string, leader wire.NodeID, leaderAddr string) {
	if c.ha == nil {
		return "single", "", ""
	}
	c.ha.mu.Lock()
	defer c.ha.mu.Unlock()
	if !c.ha.standby {
		return "leader", c.ha.id, c.Addr()
	}
	l, addr, _ := c.ha.lease.Holder()
	return "standby", l, addr
}

// JournalApplied returns the applied journal index (diagnostics and tests).
func (c *Coordinator) JournalApplied() uint64 {
	if c.ha == nil {
		return 0
	}
	c.ha.mu.Lock()
	defer c.ha.mu.Unlock()
	return c.ha.applied
}

// JournalStats reports the compaction state: the index folded into the live
// state (base) and the records still resident (diagnostics and tests).
func (c *Coordinator) JournalStats() (base uint64, resident int) {
	if c.ha == nil {
		return 0, 0
	}
	c.ha.mu.Lock()
	defer c.ha.mu.Unlock()
	return c.ha.base, len(c.ha.journal)
}

// haAppend journals one control-plane mutation on the leader and kicks an
// immediate replication round, returning the assigned index (0 when not HA
// or not leading). Callers must not hold c.mu (ha.mu and c.mu never nest).
// Standbys never append here — their journal grows only by applying the
// leader's stream. Use haAppendWait for client-acknowledged mutations;
// plain haAppend is for records describing data-plane events that already
// happened (handoff moves, sweep recoveries), where refusing the append
// could not undo anything and a lost record is healed by the next sweep.
func (c *Coordinator) haAppend(epoch uint64, rec wire.ControlRecord) uint64 {
	if c.ha == nil {
		return 0
	}
	h := c.ha
	h.mu.Lock()
	if h.standby {
		h.mu.Unlock()
		return 0
	}
	rec.Index = h.lastIndexLocked() + 1
	rec.Epoch = epoch
	h.journal = append(h.journal, rec)
	h.applied = rec.Index
	h.mu.Unlock()
	c.replicateAll() // ship it now; the lease tick alone would add ttl/4 latency
	return rec.Index
}

// haAppendWait journals one mutation and blocks until a majority of the HA
// group (self included) has applied it. Reports false — and the caller must
// not ack the client — when the group majority is unreachable within the
// wait budget, or when this node stopped leading. Always true outside HA.
func (c *Coordinator) haAppendWait(epoch uint64, rec wire.ControlRecord) bool {
	if c.ha == nil {
		return true
	}
	idx := c.haAppend(epoch, rec)
	if idx == 0 {
		return false
	}
	return c.haWaitCommitted(idx)
}

// haWaitCommitted blocks until the given journal index is durable on a
// majority of the group, this node loses leadership, the coordinator stops,
// or the wait budget (haCommitWaitTTLs lease TTLs) runs out.
func (c *Coordinator) haWaitCommitted(idx uint64) bool {
	h := c.ha
	timer := time.NewTimer(haCommitWaitTTLs * h.ttl)
	defer timer.Stop()
	for {
		h.mu.Lock()
		if h.standby {
			h.mu.Unlock()
			return false
		}
		if h.commitIndexLocked() >= idx {
			h.mu.Unlock()
			return true
		}
		ch := h.commitCh
		h.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			c.reg.Counter("ha.commit_timeouts").Inc()
			return false
		case <-c.stopCh:
			return false
		}
	}
}

// assignRecordLocked snapshots the full camera→worker assignment (plus
// replicas) as one OpAssign record. Caller holds c.mu.
func (c *Coordinator) assignRecordLocked() wire.ControlRecord {
	rec := wire.ControlRecord{Op: wire.OpAssign}
	rec.Assign = make([]wire.AssignEntry, 0, len(c.assignment))
	for cam, node := range c.assignment {
		e := wire.AssignEntry{Camera: cam, Node: node}
		if reps := c.replicas[cam]; len(reps) > 0 {
			e.Replicas = append([]wire.NodeID(nil), reps...)
		}
		rec.Assign = append(rec.Assign, e)
	}
	return rec
}

func trackRecordOf(tr *coordTrack) wire.ControlRecord {
	return wire.ControlRecord{Op: wire.OpTrack, Track: wire.TrackRecord{
		TrackID:    tr.trackID,
		Owner:      tr.owner,
		LastCamera: tr.lastCamera,
		Feature:    tr.feature,
		LastSeen:   tr.lastSeen,
		Handoffs:   tr.handoffs,
	}}
}

// snapshotRecords flattens the live control-plane state — cameras,
// membership, assignment, tracks — into the record sequence a snapshot frame
// carries. Application order matters only in that cameras precede the
// assignment, mirroring the normal journal flow. Callers must not hold ha.mu
// or c.mu.
func (c *Coordinator) snapshotRecords() []wire.ControlRecord {
	members := c.membership.All()
	c.mu.Lock()
	epoch := c.epoch
	var recs []wire.ControlRecord
	if len(c.camInfos) > 0 {
		cams := make([]wire.CameraInfo, 0, len(c.camInfos))
		for _, ci := range c.camInfos {
			cams = append(cams, ci)
		}
		sort.Slice(cams, func(i, j int) bool { return cams[i].ID < cams[j].ID })
		recs = append(recs, wire.ControlRecord{Epoch: epoch, Op: wire.OpCameras, Cameras: cams})
	}
	for _, m := range members {
		recs = append(recs, wire.ControlRecord{Epoch: epoch, Op: wire.OpMember, Member: wire.MemberRecord{
			Node: m.Node, Addr: m.Addr, Capacity: m.Capacity,
		}})
	}
	ar := c.assignRecordLocked()
	ar.Epoch = epoch
	recs = append(recs, ar)
	for _, tr := range c.tracks {
		tr := trackRecordOf(tr)
		tr.Epoch = epoch
		recs = append(recs, tr)
	}
	c.mu.Unlock()
	return recs
}

// --- HA loop -----------------------------------------------------------------

// haLoop drives the role-dependent periodic work: a leader renews its lease
// by replicating to every peer; a standby watches for lease expiry and runs
// the election. One loop serves both roles so step-down and promotion are
// just state flips, with no goroutine handover.
func (c *Coordinator) haLoop() {
	defer c.lifecycle.Done()
	tick := c.ha.ttl / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			if c.IsStandby() {
				c.maybeElect()
			} else {
				c.replicateAll()
			}
		}
	}
}

// replicateAll ships journal tails (or pure lease renewals) to every peer.
// Each peer gets at most one outstanding RPC, so a partitioned peer cannot
// stall the lease cadence toward the healthy ones.
func (c *Coordinator) replicateAll() {
	h := c.ha
	h.mu.Lock()
	if h.standby {
		h.mu.Unlock()
		return
	}
	var targets []wire.NodeID
	for id := range h.peers {
		if !h.inFlight[id] {
			h.inFlight[id] = true
			targets = append(targets, id)
		}
	}
	h.mu.Unlock()
	for _, id := range targets {
		go c.replicateTo(id)
	}
}

// replicateTo streams to one peer until it is caught up (or stops making
// progress): each round ships one frame and folds the answer, and the loop
// immediately ships the next while the peer is behind — this is what makes
// the majority-commit wait a round trip instead of a lease tick.
func (c *Coordinator) replicateTo(peer wire.NodeID) {
	h := c.ha
	defer func() {
		h.mu.Lock()
		delete(h.inFlight, peer)
		h.mu.Unlock()
	}()
	for c.replicateOnce(peer) {
		select {
		case <-c.stopCh:
			return
		default:
		}
	}
}

// replicateOnce sends one Replicate frame — a journal tail, or a full-state
// snapshot when the peer needs compacted history — and folds its answer into
// the ack state. A higher-epoch rejection means a new leader exists: step
// down and let its stream resynchronize us. Reports whether the peer is
// still behind and advancing, so replicateTo keeps streaming.
func (c *Coordinator) replicateOnce(peer wire.NodeID) bool {
	h := c.ha
	epoch := c.Epoch()
	h.mu.Lock()
	if h.standby {
		h.mu.Unlock()
		return false
	}
	addr := h.peers[peer]
	from := h.acks[peer] + 1
	snapshot := from <= h.base // the records it needs are compacted away
	msg := &wire.Replicate{
		Leader:     h.id,
		LeaderAddr: c.Addr(),
		Epoch:      epoch,
		Commit:     h.commitIndexLocked(),
		FromIndex:  from,
	}
	if snapshot {
		msg.SnapIndex = h.lastIndexLocked()
		h.mu.Unlock()
		// Built outside ha.mu (takes c.mu; the two never nest). The state may
		// include appends that raced past SnapIndex; the tail then replays
		// them onto the standby, which is harmless — application is
		// idempotent upserts.
		msg.Records = c.snapshotRecords()
	} else {
		if from <= h.lastIndexLocked() {
			lo := from - h.base - 1
			hi := uint64(len(h.journal))
			if hi > lo+maxReplicateBatch {
				hi = lo + maxReplicateBatch
			}
			// Slice the journal directly instead of copying the batch: journal
			// entries are append-only (concurrent appends land past hi, and
			// compaction swaps in a fresh backing array rather than mutating
			// this one), so the view stays stable while the frame is encoded.
			msg.Records = h.journal[lo:hi]
		}
		h.mu.Unlock()
	}

	ctx, cancel := context.WithTimeout(context.Background(), h.ttl/2)
	defer cancel()
	resp, err := c.rpc.Call(ctx, addr, msg)
	if err != nil {
		var re *cluster.RemoteError
		if errors.As(err, &re) && (re.Code == wire.CodeWrongEpoch || re.Code == wire.CodeNotLeader) {
			// The peer follows (or is) a newer leader. Yield.
			c.stepDown("", re.Message)
		} else {
			c.reg.Counter("ha.replicate_errors").Inc()
		}
		return false
	}
	ack, ok := resp.(*wire.ReplicateAck)
	if !ok {
		return false
	}
	h.mu.Lock()
	prev := h.acks[peer]
	if ack.NeedFrom > 0 {
		// Gap: rewind so the next frame restarts from what the peer needs.
		if ack.NeedFrom-1 < h.acks[peer] || h.acks[peer] == 0 {
			h.acks[peer] = ack.NeedFrom - 1
		}
	} else if ack.Applied > h.acks[peer] {
		h.acks[peer] = ack.Applied
	}
	moved := h.acks[peer] != prev
	if moved {
		h.notifyLocked()
	}
	if n := h.compactLocked(h.commitIndexLocked()); n > 0 {
		c.reg.Counter("ha.compacted").Add(int64(n))
	}
	pending := !h.standby && h.acks[peer] < h.lastIndexLocked()
	h.mu.Unlock()
	if snapshot {
		c.reg.Counter("ha.snapshots_sent").Inc()
	} else {
		c.reg.Counter("ha.replicated").Add(int64(len(msg.Records)))
	}
	// Keep streaming only while the ack state is advancing (a rewind counts:
	// the next frame serves the requested gap); a stuck peer waits for the
	// next lease tick instead of hot-looping.
	return pending && moved
}

// commitIndexLocked is the highest journal index durable on a majority of
// the HA group (self included). Caller holds ha.mu.
func (h *haState) commitIndexLocked() uint64 {
	idxs := []uint64{h.lastIndexLocked()}
	for id := range h.peers {
		idxs = append(idxs, h.acks[id])
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] > idxs[j] })
	// Majority = (n/2)+1 of the group; the commit index is what the
	// (majority)th-best member holds.
	return idxs[len(idxs)/2]
}

// --- standby side ------------------------------------------------------------

// onReplicate handles the leader's journal stream and lease renewal on a
// standby — and, on a node that still believes it leads, doubles as the
// step-down trigger when the frame proves a newer leader exists.
func (c *Coordinator) onReplicate(m *wire.Replicate) (any, error) {
	h := c.ha
	if h == nil {
		return &wire.Error{Code: wire.CodeBadRequest, Message: "coordinator is not HA-enabled"}, nil
	}
	h.applyMu.Lock()
	defer h.applyMu.Unlock()

	epoch := c.Epoch()
	h.mu.Lock()
	if !h.standby {
		// Two leaders met. The newer epoch wins; equal epochs break toward
		// the lower ID, so exactly one of the pair yields.
		if m.Epoch > epoch || (m.Epoch == epoch && m.Leader < h.id) {
			h.stepDownLocked()
			c.reg.Counter("ha.stepdowns").Inc()
		} else {
			h.mu.Unlock()
			return &wire.Error{Code: wire.CodeWrongEpoch, Message: c.Addr()}, nil
		}
	}
	if !h.lease.Renew(m.Leader, m.LeaderAddr, m.Epoch, c.now()) {
		_, laddr, _ := h.lease.Holder()
		h.mu.Unlock()
		return &wire.Error{Code: wire.CodeNotLeader, Message: laddr}, nil
	}
	h.leaderlessAt = time.Time{}
	if m.Leader != h.streamLeader {
		// New journal source: its indices are not comparable to what we
		// applied before, so resynchronize from the beginning.
		h.streamLeader = m.Leader
		h.needReset = true
	}
	if m.SnapIndex > 0 {
		// Full-state snapshot: the leader compacted away the history we
		// need. Apply it and restart the journal at SnapIndex.
		if !h.needReset && m.SnapIndex <= h.applied {
			ack := &wire.ReplicateAck{Applied: h.applied}
			h.mu.Unlock()
			return ack, nil // stale snapshot; the tail already covers it
		}
		h.mu.Unlock()
		for i := range m.Records {
			c.applyRecord(&m.Records[i])
		}
		h.mu.Lock()
		if h.standby && h.streamLeader == m.Leader {
			h.journal = nil
			h.base = m.SnapIndex
			h.applied = m.SnapIndex
			h.needReset = false
		}
		ack := &wire.ReplicateAck{Applied: h.applied}
		h.mu.Unlock()
		c.reg.Counter("ha.snapshots_applied").Inc()
		return ack, nil
	}
	if h.needReset {
		if m.FromIndex != 1 {
			ack := &wire.ReplicateAck{Applied: 0, NeedFrom: 1}
			h.mu.Unlock()
			return ack, nil
		}
		h.journal = nil
		h.base = 0
		h.applied = 0
		h.needReset = false
	}
	if m.FromIndex > h.applied+1 {
		ack := &wire.ReplicateAck{Applied: h.applied, NeedFrom: h.applied + 1}
		h.mu.Unlock()
		return ack, nil
	}
	// Contiguous tail beyond what we have applied.
	var toApply []wire.ControlRecord
	next := h.applied + 1
	for i := range m.Records {
		idx := m.FromIndex + uint64(i)
		if idx < next {
			continue // already applied (duplicate frame)
		}
		if idx != next {
			break // hole mid-frame; stop at it
		}
		toApply = append(toApply, m.Records[i])
		next++
	}
	h.mu.Unlock()

	for i := range toApply {
		c.applyRecord(&toApply[i])
	}

	h.mu.Lock()
	if h.standby && h.streamLeader == m.Leader && !h.needReset {
		h.journal = append(h.journal, toApply...)
		h.applied += uint64(len(toApply))
		// The leader's majority commit index bounds how much history any
		// future leader could still need record-by-record; fold the rest.
		if n := h.compactLocked(m.Commit); n > 0 {
			c.reg.Counter("ha.compacted").Add(int64(n))
		}
	} else {
		// The role or stream flipped while the batch applied (promotion is
		// serialized on applyMu, so this is a defensive fence): discard the
		// batch instead of splicing stale indices into a leader's journal.
		toApply = nil
	}
	ack := &wire.ReplicateAck{Applied: h.applied}
	h.mu.Unlock()
	if len(toApply) > 0 {
		c.reg.Counter("ha.applied").Add(int64(len(toApply)))
	}
	return ack, nil
}

// applyRecord folds one journal record into the standby's control-plane
// state. Application is idempotent: every op is an upsert or a whole-state
// replacement, so duplicate frames are harmless.
func (c *Coordinator) applyRecord(rec *wire.ControlRecord) {
	switch rec.Op {
	case wire.OpCameras:
		for _, ci := range rec.Cameras {
			c.network.Add(cameraOf(ci))
		}
		c.network.SeedGeometricEdges(routeSlack)
		c.network.BuildIndex(0)
		c.mu.Lock()
		for _, ci := range rec.Cameras {
			c.camInfos[ci.ID] = ci
		}
		c.mu.Unlock()
	case wire.OpAssign:
		c.mu.Lock()
		c.assignment = make(cluster.Assignment, len(rec.Assign))
		c.replicas = make(map[uint32][]wire.NodeID)
		for _, e := range rec.Assign {
			c.assignment[e.Camera] = e.Node
			if len(e.Replicas) > 0 {
				c.replicas[e.Camera] = append([]wire.NodeID(nil), e.Replicas...)
			}
		}
		if rec.Epoch > c.epoch {
			c.epoch = rec.Epoch
		}
		c.mu.Unlock()
	case wire.OpMember:
		c.membership.Register(&wire.Register{
			Node:     rec.Member.Node,
			Addr:     rec.Member.Addr,
			Capacity: rec.Member.Capacity,
		}, c.now())
	case wire.OpTrack:
		t := rec.Track
		c.mu.Lock()
		tr, ok := c.tracks[t.TrackID]
		if !ok {
			tr = &coordTrack{trackID: t.TrackID, ch: make(chan wire.TrackUpdate, 1024)}
			c.tracks[t.TrackID] = tr
		}
		tr.owner = t.Owner
		tr.lastCamera = t.LastCamera
		tr.feature = t.Feature
		tr.lastSeen = t.LastSeen
		tr.handoffs = t.Handoffs
		c.mu.Unlock()
	case wire.OpTrackRemove:
		c.mu.Lock()
		tr, ok := c.tracks[rec.Track.TrackID]
		if ok {
			delete(c.tracks, rec.Track.TrackID)
		}
		c.mu.Unlock()
		if ok {
			close(tr.ch)
		}
	}
}

// onLeaderQuery answers who this node thinks leads, and how far its journal
// has applied — the election poll.
func (c *Coordinator) onLeaderQuery() (any, error) {
	h := c.ha
	if h == nil {
		return &wire.LeaderInfo{Node: "", Addr: c.Addr(), IsLeader: true, Epoch: c.Epoch()}, nil
	}
	role, leader, laddr := c.Role()
	h.mu.Lock()
	applied := h.applied
	h.mu.Unlock()
	return &wire.LeaderInfo{
		Node:       h.id,
		Addr:       c.Addr(),
		IsLeader:   role == "leader",
		Leader:     leader,
		LeaderAddr: laddr,
		Epoch:      c.Epoch(),
		Applied:    applied,
	}, nil
}

// maybeElect runs on each standby tick: if the lease lapsed, poll the peers
// and promote when the deterministic election picks this node. A reachable
// peer whose leadership claim renews the lease at a current epoch re-arms the
// timer instead — only Replicate frames were lost, not the leader. A claim
// the lease rejects (stale epoch: a deposed leader that never observed its
// own deposition) must not defer failover, so the claimant is ranked as an
// ordinary candidate.
func (c *Coordinator) maybeElect() {
	h := c.ha
	now := c.now()
	h.mu.Lock()
	if !h.standby || !h.lease.Expired(now) {
		h.mu.Unlock()
		return
	}
	if h.leaderlessAt.IsZero() {
		h.leaderlessAt = now
	}
	applied := h.applied
	h.mu.Unlock()

	cands := map[wire.NodeID]uint64{h.id: applied}
	ctx, cancel := context.WithTimeout(context.Background(), h.ttl/2)
	defer cancel()
	for id, addr := range h.peers {
		resp, err := c.rpc.Call(ctx, addr, &wire.LeaderQuery{})
		if err != nil {
			continue
		}
		li, ok := resp.(*wire.LeaderInfo)
		if !ok {
			continue
		}
		if li.IsLeader {
			h.mu.Lock()
			renewed := h.lease.Renew(li.Node, li.Addr, li.Epoch, c.now())
			if renewed {
				h.leaderlessAt = time.Time{}
			}
			h.mu.Unlock()
			if renewed {
				// The leader is alive and current; stand down from the
				// election.
				return
			}
			// Stale claimant — fall through and rank it like any candidate.
		}
		cands[id] = li.Applied
	}
	if winner, ok := cluster.ElectLeader(cands); ok && winner == h.id {
		c.becomeLeader()
	}
	// Otherwise a better-placed standby won the same computation; its first
	// Replicate will renew our lease.
}

// becomeLeader promotes this standby: adopt the replicated membership as
// freshly seen, flip the role, bump the assignment epoch through Reassign —
// which both redirects the data plane and fences any deposed leader — and
// start leasing on the next tick. Promotion is serialized against in-flight
// journal application (applyMu): a long Replicate batch can outlive the
// lease TTL, and flipping the role mid-apply would let the batch tail race
// haAppend on the new leader's journal.
func (c *Coordinator) becomeLeader() {
	h := c.ha
	h.applyMu.Lock()
	defer h.applyMu.Unlock()
	now := c.now()
	h.mu.Lock()
	if !h.standby || !h.lease.Expired(now) {
		// The role flipped, or a Replicate frame landed while we waited for
		// the apply lock — the group has a live leader after all.
		h.mu.Unlock()
		return
	}
	h.standby = false
	h.acks = make(map[wire.NodeID]uint64)
	h.streamLeader = ""
	var down time.Duration
	if !h.leaderlessAt.IsZero() {
		down = now.Sub(h.leaderlessAt)
		h.leaderlessAt = time.Time{}
	}
	h.mu.Unlock()

	c.reg.Counter("failover.total").Inc()
	// Coarse by design: sub-second outages still register one second, so
	// the counter is a lower-bound outage clock that never reads zero
	// after a real failover.
	c.reg.Counter("leaderless.seconds").Add(int64(down/time.Second) + 1)
	c.membership.Refresh(now)
	ctx, cancel := context.WithTimeout(context.Background(), 2*c.opts.CallTimeout)
	defer cancel()
	if err := c.Reassign(ctx); err != nil {
		if errors.Is(err, errNoLiveWorkers) {
			// Reassign returned before bumping the epoch: claim it here so
			// the fence holds; workers adopt it as they re-register. Every
			// other failure mode (push errors, majority unreachable) has
			// already bumped and journaled the epoch — bumping again would
			// desynchronize the in-memory epoch from the journaled one.
			c.mu.Lock()
			c.epoch++
			c.mu.Unlock()
		}
		c.reg.Counter("ha.promote_reassign_errors").Inc()
	}
	c.reg.Counter("ha.promotions").Inc()
}

// stepDown demotes a (deposed) leader to standby. The lease it left behind
// is stale, so the next standby tick polls the peers, finds the live leader,
// and re-arms from its answer; the new leader's stream then resynchronizes
// the journal from scratch.
func (c *Coordinator) stepDown(leader wire.NodeID, leaderAddr string) {
	_, _ = leader, leaderAddr // learned properly from the new leader's stream
	h := c.ha
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.standby {
		return
	}
	h.stepDownLocked()
	c.reg.Counter("ha.stepdowns").Inc()
}

func (h *haState) stepDownLocked() {
	h.standby = true
	h.streamLeader = ""
	h.needReset = true
	h.leaderlessAt = time.Time{}
	h.notifyLocked() // majority-commit waiters must abort: we no longer lead
}

// standbyReject answers leader-only traffic on a standby with a redirect.
func (c *Coordinator) standbyReject() (any, error) {
	_, _, laddr := c.Role()
	return &wire.Error{Code: wire.CodeNotLeader, Message: laddr}, nil
}
