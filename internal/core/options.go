// Package core implements the framework proper: the coordinator that manages
// camera ownership, routes queries, and orchestrates cross-camera tracking;
// and the workers that ingest detection streams into spatio-temporal indexes,
// answer sub-queries, maintain continuous queries, and execute target-centric
// tracking with vision-graph-scoped handoff.
//
// All time-dependent protocol logic (track loss, prime expiry, continuous
// windows) runs on *observation* time, so simulations are deterministic and
// replayable; only liveness (heartbeats, sweeps) uses the wall clock.
package core

import (
	"time"

	"stcam/internal/clock"
	"stcam/internal/cluster"
	"stcam/internal/wire"
)

// Options tunes the framework. The zero value selects the documented
// defaults.
type Options struct {
	// AssocThreshold is the cosine similarity above which two appearance
	// features are considered the same identity (default 0.75).
	AssocThreshold float64
	// LostAfter is the observation-time silence after which a worker declares
	// a tracked target gone from its cameras and a handoff begins
	// (default 3s).
	LostAfter time.Duration
	// PrimeTTL is how long (observation time) a handoff prime stays armed on
	// neighbor cameras before expiring (default 30s).
	PrimeTTL time.Duration
	// Retention bounds the observation store; 0 keeps everything.
	Retention time.Duration
	// CellSize is the spatial index cell in meters (default 50).
	CellSize float64
	// BucketWidth is the temporal index bucket (default 10s).
	BucketWidth time.Duration
	// SealHorizon enables the worker store's sealed tier: observations older
	// than latest − SealHorizon are compacted into immutable delta-compressed
	// chunks with rollup aggregates, cutting resident bytes per observation
	// so a fixed memory budget holds a much longer history (see R17). Zero
	// (the default) keeps the store flat.
	SealHorizon time.Duration
	// RollupWidth is the coarse time bucket for sealed-tier aggregates
	// (default 16× BucketWidth). Long-range Count/Heatmap windows covering
	// whole rollup buckets are answered without decoding chunks.
	RollupWidth time.Duration
	// RollupCellSize is the sealed-tier density-grid square (default
	// CellSize). Heatmaps at exactly this cell size ride the rollup path.
	RollupCellSize float64
	// ChunkTarget caps records per sealed chunk (default 512).
	ChunkTarget int
	// BroadcastHandoff switches tracking from vision-graph-scoped priming to
	// priming every camera on every worker — the baseline experiment R3
	// compares against.
	BroadcastHandoff bool
	// HeartbeatTimeout is the wall-clock silence after which the coordinator
	// declares a worker dead (default 5s).
	HeartbeatTimeout time.Duration
	// FeatureLogSize bounds the per-worker ring of recent observation
	// features used for re-identification search (default 100000).
	FeatureLogSize int
	// Replicas is the number of standby copies of each camera's stream kept
	// on additional workers (0 = none). With replication, a worker crash
	// loses no history: the coordinator promotes a replica and its standby
	// copy becomes authoritative.
	Replicas int
	// CallTimeout bounds each outbound RPC attempt, so one hung peer can
	// never stall heartbeats, rebalance pushes, or query fan-out (default
	// 2s; negative leaves attempts unbounded).
	CallTimeout time.Duration
	// IngestPipelineDepth bounds the ingest batches in flight per worker
	// link: the Ingester's default pipeline window and the coordinator
	// ingest proxy's fan-out bound (default 4; 1 degenerates to one
	// blocking RPC at a time).
	IngestPipelineDepth int
	// RetryPolicy tunes the resilience layer every node wraps around its
	// transport for outbound calls: retry attempts, backoff shape, and the
	// per-peer circuit breaker (see cluster.Policy for fields and
	// defaults). A zero PerAttemptTimeout inherits CallTimeout. Transport
	// failures are retried with capped jittered backoff; remote handler
	// errors are never retried.
	RetryPolicy cluster.Policy
	// SlowRPCThreshold, when positive, makes every outbound RPC whose total
	// duration (including retries and backoff) reaches it emit one
	// structured log line carrying its trace ID, and enables per-attempt
	// failure logging. Zero disables slow-call logging (the default).
	SlowRPCThreshold time.Duration
	// DisablePrune turns off summary-based scatter pruning and the two-phase
	// kNN, reverting every read to broadcast fan-out over the routed workers.
	// This is the baseline experiment R16 compares against and the reference
	// side of the pruned-vs-broadcast differential suite.
	DisablePrune bool
	// SummaryCellSize is the coarse spatial cell of the per-worker summary
	// piggybacked on heartbeats (default 4× CellSize; the store rounds it up
	// to an integer multiple of CellSize).
	SummaryCellSize float64
	// SummaryTimeBuckets bounds the summary's coarse time histogram
	// (default 8).
	SummaryTimeBuckets int
	// KNNProbeFanout is how many additional workers each expansion round of
	// the two-phase kNN probes while the global top-k is still short
	// (default 2). Workers whose summary lower bound is zero are always
	// probed in the first phase — no kth-best distance can ever exclude them.
	KNNProbeFanout int
	// CoordinatorID names this coordinator within an HA group (default
	// "c0"). Failover elects the lowest ID among the most-caught-up
	// standbys, so IDs double as failover preference order.
	CoordinatorID wire.NodeID
	// CoordinatorPeers maps the other HA-group coordinators' IDs to their
	// serve addresses (this node excluded). Non-empty enables the
	// replicated control plane: the leader journals every control-plane
	// mutation and streams it to these peers with acknowledged
	// replication; empty (the default) runs the classic single
	// coordinator with zero HA overhead.
	CoordinatorPeers map[wire.NodeID]string
	// Standby starts this coordinator as a follower: it applies the
	// leader's journal, serves degraded local reads, and promotes itself
	// only after the leader's lease expires. Exactly one member of an HA
	// group should boot with Standby false.
	Standby bool
	// LeaseInterval is the leader lease lifetime (default 250ms). The
	// leader renews at a quarter of it; a standby that sees it lapse
	// polls peers and the deterministic winner takes over, so failover
	// completes within about two lease intervals.
	LeaseInterval time.Duration
	// Clock supplies every wall-clock read and sleep in the node (heartbeat
	// stamps, lease renewal, snapshot timestamps, retry backoff). Defaults to
	// clock.Wall; tests and seeded soaks inject clock.Fake to keep liveness
	// timing on the controlled schedule. Raw time.Now/time.Sleep in
	// internal/core and internal/cluster are rejected by the clockinject
	// static analyzer.
	Clock clock.Clock
	// WireAccounting, when true, re-marshals every scatter response to count
	// result bytes into the scatter.resp_bytes counter — meaningful even on
	// in-process transports with no real wire. Off by default (it duplicates
	// marshal work on the read path); experiment R16 enables it to measure
	// bytes-on-wire under pruning vs broadcast.
	WireAccounting bool
}

func (o *Options) fill() {
	if o.AssocThreshold <= 0 || o.AssocThreshold >= 1 {
		o.AssocThreshold = 0.75
	}
	if o.LostAfter <= 0 {
		o.LostAfter = 3 * time.Second
	}
	if o.PrimeTTL <= 0 {
		o.PrimeTTL = 30 * time.Second
	}
	if o.CellSize <= 0 {
		o.CellSize = 50
	}
	if o.BucketWidth <= 0 {
		o.BucketWidth = 10 * time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 5 * time.Second
	}
	if o.FeatureLogSize <= 0 {
		o.FeatureLogSize = 100000
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 2 * time.Second
	}
	if o.IngestPipelineDepth <= 0 {
		o.IngestPipelineDepth = 4
	}
	if o.SummaryCellSize <= 0 {
		o.SummaryCellSize = 4 * o.CellSize
	}
	if o.SummaryTimeBuckets <= 0 {
		o.SummaryTimeBuckets = 8
	}
	if o.KNNProbeFanout <= 0 {
		o.KNNProbeFanout = 2
	}
	if o.CoordinatorID == "" {
		o.CoordinatorID = "c0"
	}
	if o.LeaseInterval <= 0 {
		o.LeaseInterval = 250 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = clock.Wall
	}
}

// rpcPolicy resolves the outbound-call policy: a zero per-attempt timeout
// inherits CallTimeout; everything else defaults inside the cluster layer.
func (o *Options) rpcPolicy() cluster.Policy {
	p := o.RetryPolicy
	if p.PerAttemptTimeout == 0 {
		p.PerAttemptTimeout = o.CallTimeout
	}
	if p.SlowCallThreshold == 0 {
		p.SlowCallThreshold = o.SlowRPCThreshold
	}
	return p
}
