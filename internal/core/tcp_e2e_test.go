package core

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/geo"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// TestTCPEndToEnd runs the full deployment path over real TCP sockets: a
// coordinator and three workers on loopback, remote camera registration (the
// stcam-sim path), ingest through the coordinator proxy, client queries via
// raw wire messages (the stcamctl path), tracking with cross-worker handoff,
// and heartbeat liveness.
func TestTCPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP end-to-end test skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	coordTr := cluster.NewTCP()
	defer coordTr.Close()
	coord := NewCoordinator("127.0.0.1:0", coordTr, nil, Options{LostAfter: 2 * time.Second})
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()
	coordAddr := coord.Addr()

	var workers []*Worker
	for i := 0; i < 3; i++ {
		tr := cluster.NewTCP()
		defer tr.Close()
		w := NewWorker(wire.NodeID(fmt.Sprintf("tcp-w%d", i+1)), "127.0.0.1:0", coordAddr, tr, Options{LostAfter: 2 * time.Second})
		if err := w.Start(ctx); err != nil {
			t.Fatal(err)
		}
		defer w.Stop()
		w.StartHeartbeats(100 * time.Millisecond)
		workers = append(workers, w)
	}
	if got := len(coord.Alive()); got != 3 {
		t.Fatalf("alive workers = %d", got)
	}

	// Client transport, as stcamctl/stcam-sim would use.
	clientTr := cluster.NewTCP()
	defer clientTr.Close()

	// Remote camera registration: a 6-camera corridor.
	cams := make([]wire.CameraInfo, 6)
	for i := range cams {
		cams[i] = wire.CameraInfo{
			ID:      uint32(i + 1),
			Pos:     geo.Pt(float64(i)*100+50, 50),
			HalfFOV: math.Pi,
			Range:   50,
		}
	}
	resp, err := clientTr.Call(ctx, coordAddr, &wire.AssignCameras{Cameras: cams})
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.AssignAck); ack.Accepted != 6 {
		t.Fatalf("registered %d cameras", ack.Accepted)
	}

	// Track a target walking the corridor, ingesting via the coordinator's
	// proxy path (every message crosses real sockets twice).
	feat := vision.NewRandomFeature(newRand(21), 32)
	start := simT0
	send := func(obsID uint64, cam uint32, p geo.Point, at time.Time) {
		t.Helper()
		resp, err := clientTr.Call(ctx, coordAddr, &wire.IngestBatch{
			Camera: cam, FrameTime: at,
			Observations: []wire.Observation{{ObsID: obsID, Camera: cam, Time: at, Pos: p, Feature: feat}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if ack := resp.(*wire.IngestAck); ack.Accepted != 1 {
			t.Fatalf("ingest rejected: %+v", ack)
		}
	}
	send(1, 1, geo.Pt(30, 50), start)
	trackID, updates, err := coord.StartTrack(ctx, 1, feat, start)
	if err != nil {
		t.Fatal(err)
	}
	obsID := uint64(10)
	for i := 1; i <= 54; i++ {
		p := geo.Pt(30+float64(i)*10, 50)
		at := start.Add(time.Duration(i) * time.Second)
		// Find the covering camera (disjoint 100 m circles along the line).
		cam := uint32(p.X/100) + 1
		if cam >= 1 && cam <= 6 && math.Abs(p.X-float64(cam-1)*100-50) <= 50 {
			send(obsID, cam, p, at)
			obsID++
		}
		// Clock ticks to every worker so loss detection advances.
		for _, w := range workers {
			if _, err := clientTr.Call(ctx, w.Addr(), &wire.IngestBatch{FrameTime: at}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Track updates arrive asynchronously over TCP; wait for the tail.
	deadline := time.Now().Add(5 * time.Second)
	var lastCam uint32
	for time.Now().Before(deadline) && lastCam != 6 {
		select {
		case u := <-updates:
			if u.Camera > lastCam {
				lastCam = u.Camera
			}
		case <-time.After(100 * time.Millisecond):
		}
	}
	if lastCam != 6 {
		t.Errorf("track reached camera %d over TCP, want 6", lastCam)
	}
	if _, _, handoffs, ok := coord.TrackInfo(trackID); !ok || handoffs == 0 {
		t.Errorf("no cross-worker handoffs over TCP (handoffs=%d ok=%v)", handoffs, ok)
	}

	// Client queries via raw wire messages (the stcamctl path).
	window := wire.TimeWindow{From: start, To: start.Add(time.Hour)}
	qresp, err := clientTr.Call(ctx, coordAddr, &wire.RangeQuery{QueryID: 9, Rect: geo.RectOf(0, 0, 600, 100), Window: window})
	if err != nil {
		t.Fatal(err)
	}
	rr := qresp.(*wire.RangeResult)
	if len(rr.Records) == 0 {
		t.Fatal("TCP range query returned nothing")
	}
	cresp, err := clientTr.Call(ctx, coordAddr, &wire.CountQuery{QueryID: 10, Rect: geo.RectOf(0, 0, 600, 100), Window: window})
	if err != nil {
		t.Fatal(err)
	}
	if cnt := cresp.(*wire.CountResult).Count; cnt != len(rr.Records) {
		t.Errorf("count %d != range size %d", cnt, len(rr.Records))
	}
	kresp, err := clientTr.Call(ctx, coordAddr, &wire.KNNQuery{QueryID: 11, Center: geo.Pt(0, 50), Window: window, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if kr := kresp.(*wire.KNNResult); len(kr.Records) != 3 {
		t.Errorf("TCP knn returned %d records", len(kr.Records))
	}

	// Aggregated worker stats flow over TCP too.
	stats := coord.WorkerStats(ctx)
	if len(stats) != 3 {
		t.Errorf("stats from %d workers", len(stats))
	}
}
