package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"stcam/internal/geo"
	"stcam/internal/sim"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// The differential suite is the equivalence proof for the pipelined ingest
// path: on identical seeded simulation workloads, the pipelined+coalesced
// Ingester must leave every worker's stindex byte-identical to the serial
// baseline's and answer Range/kNN/trajectory/Count queries identically.

// ingestOutcome captures everything the differential comparison looks at.
type ingestOutcome struct {
	accepted   int
	stores     map[wire.NodeID]string // per-worker canonical index dump
	rangeFull  []wire.ResultRecord
	rangeSub   []wire.ResultRecord
	count      int
	knn        []wire.KNNRecord
	trajs      map[uint64][]wire.ResultRecord
	storeBytes int
}

// dumpStore serializes a worker's entire index in canonical (ObsID, Camera)
// order. Byte equality of two dumps means record-for-record identical
// indexes, target IDs included.
func dumpStore(w *Worker) string {
	recs := w.Store().RangeQuery(geo.RectOf(-1e9, -1e9, 1e9, 1e9),
		simT0.Add(-time.Hour), simT0.Add(1000*time.Hour))
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].ObsID != recs[j].ObsID {
			return recs[i].ObsID < recs[j].ObsID
		}
		return recs[i].Camera < recs[j].Camera
	})
	var b strings.Builder
	for _, r := range recs {
		fmt.Fprintf(&b, "%d|%d|%d|%.9f|%.9f|%d\n",
			r.ObsID, r.TargetID, r.Camera, r.Pos.X, r.Pos.Y, r.Time.UnixNano())
	}
	return b.String()
}

// ingestMode names one delivery strategy under test.
type ingestMode struct {
	name  string
	opts  IngesterOptions
	async bool // drive via IngestDetectionsAsync + Flush instead of sync calls
}

// runIngestWorkload assembles a fresh cluster, replays the same seeded
// simulation through the given ingest mode, and captures the outcome.
func runIngestWorkload(t *testing.T, workers, replicas int, mode ingestMode) ingestOutcome {
	t.Helper()
	c := newTestCluster(t, workers, Options{Replicas: replicas, LostAfter: time.Hour})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 4), 50); err != nil {
		t.Fatal(err)
	}
	w, err := sim.NewWorld(sim.Config{
		World:      world1,
		NumObjects: 20,
		Model:      &sim.RandomWaypoint{World: world1, MinSpeed: 30, MaxSpeed: 60},
		Seed:       7,
		FeatureDim: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := vision.NewDetector(vision.DetectorConfig{Seed: 8})
	ing := NewIngesterWith(c.Coordinator, c.Transport, mode.opts)
	defer ing.Close()
	accepted := 0
	w.Run(30, c.Coordinator.Network(), det, func(_ int, dets []vision.Detection) {
		if mode.async {
			ing.IngestDetectionsAsync(ctx, dets)
			return
		}
		n, err := ing.IngestDetections(ctx, dets)
		if err != nil {
			t.Fatal(err)
		}
		accepted += n
	})
	if mode.async {
		n, err := ing.Flush()
		if err != nil {
			t.Fatal(err)
		}
		accepted = n
	}

	out := ingestOutcome{accepted: accepted, stores: make(map[wire.NodeID]string)}
	for _, wk := range c.Workers {
		dump := dumpStore(wk)
		out.stores[wk.ID()] = dump
		out.storeBytes += len(dump)
	}
	window := wire.TimeWindow{From: simT0, To: w.Now().Add(time.Second)}
	if out.rangeFull, err = c.Coordinator.Range(ctx, world1, window, 0); err != nil {
		t.Fatal(err)
	}
	sub := geo.RectOf(200, 200, 700, 700)
	if out.rangeSub, err = c.Coordinator.Range(ctx, sub, window, 0); err != nil {
		t.Fatal(err)
	}
	if out.count, err = c.Coordinator.Count(ctx, sub, window); err != nil {
		t.Fatal(err)
	}
	if out.knn, err = c.Coordinator.KNN(ctx, geo.Pt(500, 500), window, 10); err != nil {
		t.Fatal(err)
	}
	// Trajectories for every associated target the full range answer saw.
	out.trajs = make(map[uint64][]wire.ResultRecord)
	for _, r := range out.rangeFull {
		if r.TargetID == 0 {
			continue
		}
		if _, done := out.trajs[r.TargetID]; done {
			continue
		}
		traj, err := c.Coordinator.Trajectory(ctx, r.TargetID, window)
		if err != nil {
			t.Fatal(err)
		}
		out.trajs[r.TargetID] = traj
	}
	return out
}

func recordsEqual(a, b []wire.ResultRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ObsID != b[i].ObsID || a[i].TargetID != b[i].TargetID ||
			a[i].Camera != b[i].Camera || a[i].Pos != b[i].Pos || !a[i].Time.Equal(b[i].Time) {
			return false
		}
	}
	return true
}

func diffOutcomes(t *testing.T, label string, base, got ingestOutcome) {
	t.Helper()
	if got.accepted != base.accepted {
		t.Errorf("%s: accepted %d, serial accepted %d", label, got.accepted, base.accepted)
	}
	for node, dump := range base.stores {
		if got.stores[node] != dump {
			t.Errorf("%s: worker %s index diverged from serial baseline (%d vs %d bytes)",
				label, node, len(got.stores[node]), len(dump))
		}
	}
	if !recordsEqual(got.rangeFull, base.rangeFull) {
		t.Errorf("%s: full-world range answer diverged (%d vs %d records)",
			label, len(got.rangeFull), len(base.rangeFull))
	}
	if !recordsEqual(got.rangeSub, base.rangeSub) {
		t.Errorf("%s: sub-rect range answer diverged", label)
	}
	if got.count != base.count {
		t.Errorf("%s: count %d, serial %d", label, got.count, base.count)
	}
	if len(got.knn) != len(base.knn) {
		t.Errorf("%s: knn answer size %d, serial %d", label, len(got.knn), len(base.knn))
	} else {
		for i := range got.knn {
			if got.knn[i].ObsID != base.knn[i].ObsID || got.knn[i].Dist2 != base.knn[i].Dist2 {
				t.Errorf("%s: knn[%d] diverged: %+v vs %+v", label, i, got.knn[i], base.knn[i])
				break
			}
		}
	}
	if len(got.trajs) != len(base.trajs) {
		t.Errorf("%s: %d trajectories, serial %d", label, len(got.trajs), len(base.trajs))
	}
	for id, traj := range base.trajs {
		if !recordsEqual(got.trajs[id], traj) {
			t.Errorf("%s: trajectory of target %d diverged", label, id)
		}
	}
}

// TestDifferentialPipelinedVsSerialIngest replays the same seeded workload
// through the serial baseline, the pipelined sync path, and the pipelined
// async path, across worker counts and replica factors, and requires zero
// divergence in index contents and query answers.
func TestDifferentialPipelinedVsSerialIngest(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		for _, replicas := range []int{0, 1} {
			t.Run(fmt.Sprintf("workers=%d/replicas=%d", workers, replicas), func(t *testing.T) {
				serial := runIngestWorkload(t, workers, replicas,
					ingestMode{name: "serial", opts: IngesterOptions{Serial: true}})
				if serial.accepted == 0 || serial.storeBytes == 0 {
					t.Fatal("serial baseline produced no data; workload is vacuous")
				}
				piped := runIngestWorkload(t, workers, replicas,
					ingestMode{name: "pipelined", opts: IngesterOptions{PipelineDepth: 4}})
				diffOutcomes(t, "pipelined", serial, piped)
				async := runIngestWorkload(t, workers, replicas,
					ingestMode{name: "async", opts: IngesterOptions{PipelineDepth: 4}, async: true})
				diffOutcomes(t, "async", serial, async)
			})
		}
	}
}
