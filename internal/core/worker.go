package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"time"

	"stcam/internal/camera"
	"stcam/internal/cluster"
	"stcam/internal/geo"
	"stcam/internal/metrics"
	"stcam/internal/stindex"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// Worker is one node of the analysis cluster. It owns a partition of the
// camera set, ingests those cameras' detection streams into a local
// spatio-temporal index, answers the coordinator's sub-queries, evaluates
// continuous queries incrementally, and runs the target trackers currently
// resident on it.
type Worker struct {
	id        wire.NodeID
	addr      string
	transport cluster.Transport

	// coordMu guards the coordinator target state: the candidate list (a
	// worker booted with a comma-separated address list can fail over
	// between HA coordinators), the active index, and the bounded queue of
	// coordinator pushes deferred while leaderless. Leaf lock: held only
	// around its own fields, never while calling out.
	coordMu     sync.Mutex
	coordAddrs  []string
	coordIdx    int
	pendingPush []any
	rpc         *cluster.Resilient // resilience layer for all outbound calls
	opts        Options
	reg         *metrics.Registry
	idNamespace uint64

	server cluster.Server

	// mu guards the ingest stage-1 state: membership (epoch, cameras,
	// primary), index-insert coherence (store, assoc, featureLog), delivery
	// dedup (ingestSeqs), selectivity stats, and heartbeat state.
	mu         sync.Mutex
	epoch      uint64
	cameras    map[uint32]*camera.Camera
	primary    map[uint32]bool
	store      *stindex.Store
	assoc      *vision.Associator
	featureLog *featureRing
	ingestSeqs map[string]*ingestSeqState
	hist       *stindex.STHistogram
	hbSeq      uint64
	loadMeter  *metrics.Meter

	// hbMu serializes heartbeat sends so hbShell — the reusable heartbeat
	// message, rebuilt in place each send to keep the steady-state heartbeat
	// path allocation-free — is never mutated under an in-flight call.
	hbMu    sync.Mutex
	hbShell wire.Heartbeat

	// Heartbeat summary cache: the wire form of the last store sketch, valid
	// while (epoch, store generation) are unchanged. The generation counter
	// bumps on every store mutation, so an eviction followed by inserts that
	// happen to restore the same Len and Latest still invalidates — keying
	// on (len, latest) served a stale sketch in exactly that case.
	sumCache *wire.WorkerSummary
	sumEpoch uint64
	sumGen   uint64

	// Readiness state: whether registration succeeded, and the assignment
	// epoch the coordinator last acknowledged — when it runs ahead of our
	// local epoch, our camera assignment is stale and we are not ready.
	registered   bool
	lastAckEpoch uint64

	// evalMu guards the ingest stage-2 state: continuous-query answer sets,
	// resident tracks, and armed primes, so the slow evaluation stage
	// (appearance matching, answer-set deltas) cannot block queries or
	// further index inserts. Lock order: mu may be acquired briefly while
	// holding evalMu (curEpoch), never the reverse.
	evalMu     sync.Mutex
	continuous map[uint64]*continuousState
	tracks     map[uint64]*trackState
	primes     map[uint64]*primeState

	lifecycle sync.WaitGroup
	stopCh    chan struct{}
	stopOnce  sync.Once
}

// trackState is a track owned by this worker.
type trackState struct {
	trackID    uint64
	camera     uint32
	feature    vision.Feature
	lastSeen   time.Time
	handingOff bool
}

// primeState is a handoff watch armed on some of this worker's cameras.
type primeState struct {
	trackID uint64
	cameras map[uint32]bool
	feature vision.Feature
	expires time.Time
}

// ingestSeqState is the per-source delivery cursor for idempotent sequenced
// ingest: the highest sequence applied and its ack, so a retried delivery is
// answered from the original outcome without touching the index.
type ingestSeqState struct {
	seq uint64
	ack wire.IngestAck
}

// stagedObs carries one accepted primary observation from ingest stage 1
// (index insert under w.mu) to stage 2 (evaluation under w.evalMu).
type stagedObs struct {
	obs wire.Observation
	rec stindex.Record
}

// NewWorker constructs a worker bound to the given transport addresses.
// coordAddr may be a comma-separated list of coordinator addresses (an HA
// group); the worker talks to one at a time and rotates — or follows a
// CodeNotLeader redirect — when it stops answering.
func NewWorker(id wire.NodeID, addr, coordAddr string, transport cluster.Transport, opts Options) *Worker {
	opts.fill()
	var coords []string
	for _, a := range strings.Split(coordAddr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			coords = append(coords, a)
		}
	}
	h := fnv.New32a()
	h.Write([]byte(id))
	reg := metrics.NewRegistry()
	return &Worker{
		id:          id,
		addr:        addr,
		coordAddrs:  coords,
		transport:   transport,
		rpc:         resilientFor(transport, opts, reg),
		opts:        opts,
		reg:         reg,
		idNamespace: uint64(h.Sum32()) << 32,
		cameras:     make(map[uint32]*camera.Camera),
		primary:     make(map[uint32]bool),
		store: stindex.NewStore(stindex.Config{
			CellSize:       opts.CellSize,
			BucketWidth:    opts.BucketWidth,
			Retention:      opts.Retention,
			SealHorizon:    opts.SealHorizon,
			RollupWidth:    opts.RollupWidth,
			RollupCellSize: opts.RollupCellSize,
			ChunkTarget:    opts.ChunkTarget,
		}),
		assoc:      vision.NewAssociator(opts.AssocThreshold),
		featureLog: newFeatureRing(opts.FeatureLogSize),
		ingestSeqs: make(map[string]*ingestSeqState),
		continuous: make(map[uint64]*continuousState),
		tracks:     make(map[uint64]*trackState),
		primes:     make(map[uint64]*primeState),
		loadMeter:  metrics.NewMeter(),
		stopCh:     make(chan struct{}),
	}
}

// now reads the injected clock (Options.Clock): the only sanctioned
// wall-clock source in this package, per the clockinject analyzer.
func (w *Worker) now() time.Time { return w.opts.Clock.Now() }

// ID returns the worker's node ID.
func (w *Worker) ID() wire.NodeID { return w.id }

// Addr returns the worker's serve address: the actual bound address once
// Start has run (important with ":0" listeners), the configured one before.
func (w *Worker) Addr() string {
	if w.server != nil {
		return w.server.Addr()
	}
	return w.addr
}

// Metrics exposes the worker's instrumentation registry.
func (w *Worker) Metrics() *metrics.Registry { return w.reg }

// Store exposes the local index (read-mostly diagnostics and tests).
func (w *Worker) Store() *stindex.Store { return w.store }

// handoffQueueMax bounds the pushes a leaderless worker will queue before
// shedding the oldest; tracking handoffs and continuous updates deferred
// during a failover drain once a coordinator answers again.
const handoffQueueMax = 4096

// coordTarget returns the coordinator address currently in use.
func (w *Worker) coordTarget() string {
	w.coordMu.Lock()
	defer w.coordMu.Unlock()
	if len(w.coordAddrs) == 0 {
		return ""
	}
	return w.coordAddrs[w.coordIdx%len(w.coordAddrs)]
}

// rotateCoord advances to the next coordinator candidate, if the current
// target still is cur (concurrent callers rotate once, not once each).
func (w *Worker) rotateCoord(cur string) {
	w.coordMu.Lock()
	defer w.coordMu.Unlock()
	if len(w.coordAddrs) < 2 {
		return
	}
	if w.coordAddrs[w.coordIdx%len(w.coordAddrs)] == cur {
		w.coordIdx = (w.coordIdx + 1) % len(w.coordAddrs)
		w.reg.Counter("coord.rotations").Inc()
	}
}

// redirectCoord makes addr the active coordinator — the CodeNotLeader
// answer names the leader, so the worker jumps straight to it instead of
// probing the candidate list.
func (w *Worker) redirectCoord(addr string) {
	if addr == "" {
		return
	}
	w.coordMu.Lock()
	defer w.coordMu.Unlock()
	for i, a := range w.coordAddrs {
		if a == addr {
			w.coordIdx = i
			return
		}
	}
	w.coordAddrs = append(w.coordAddrs, addr)
	w.coordIdx = len(w.coordAddrs) - 1
}

// callCoord sends one request to the current coordinator, following a
// CodeNotLeader redirect once and rotating the candidate list on transport
// failure so the next call tries the next peer.
func (w *Worker) callCoord(ctx context.Context, req any) (any, error) {
	target := w.coordTarget()
	resp, err := w.rpc.Call(ctx, target, req)
	var re *cluster.RemoteError
	switch {
	case err == nil:
		return resp, nil
	case errors.As(err, &re) && re.Code == wire.CodeNotLeader:
		w.reg.Counter("coord.redirects").Inc()
		if re.Message != "" {
			w.redirectCoord(re.Message)
		} else {
			w.rotateCoord(target)
		}
		return w.rpc.Call(ctx, w.coordTarget(), req)
	case !errors.As(err, &re):
		// Transport failure: this coordinator may be gone; try its peer on
		// the next call.
		w.rotateCoord(target)
	}
	return resp, err
}

// pushCoord delivers a coordinator push (track update, handoff, continuous
// delta), queueing it for a later drain when no coordinator answers — a
// leaderless worker defers tracking handoffs instead of dropping targets.
func (w *Worker) pushCoord(ctx context.Context, p any) {
	if _, err := w.callCoord(ctx, p); err != nil {
		w.reg.Counter("push.errors").Inc()
		w.enqueuePush(p)
	}
}

func (w *Worker) enqueuePush(p any) {
	w.coordMu.Lock()
	defer w.coordMu.Unlock()
	if len(w.pendingPush) >= handoffQueueMax {
		w.pendingPush = w.pendingPush[1:]
		w.reg.Counter("handoff.queue_shed").Inc()
	}
	w.pendingPush = append(w.pendingPush, p)
	w.reg.Gauge("handoff.queue_depth").Set(int64(len(w.pendingPush)))
}

// drainPushes replays queued pushes after the coordinator answered again
// (heartbeat or registration succeeded). Replay stops at the first failure;
// what remains waits for the next drain.
func (w *Worker) drainPushes(ctx context.Context) {
	for {
		w.coordMu.Lock()
		if len(w.pendingPush) == 0 {
			w.coordMu.Unlock()
			return
		}
		p := w.pendingPush[0]
		w.pendingPush = w.pendingPush[1:]
		w.reg.Gauge("handoff.queue_depth").Set(int64(len(w.pendingPush)))
		w.coordMu.Unlock()
		if _, err := w.callCoord(ctx, p); err != nil {
			w.coordMu.Lock()
			w.pendingPush = append([]any{p}, w.pendingPush...)
			w.reg.Gauge("handoff.queue_depth").Set(int64(len(w.pendingPush)))
			w.coordMu.Unlock()
			return
		}
		w.reg.Counter("handoff.queue_drained").Inc()
	}
}

// Start binds the worker's server and registers with the coordinator.
// Registration rides the resilience layer, so a coordinator that is briefly
// unreachable is retried with backoff before Start gives up.
func (w *Worker) Start(ctx context.Context) error {
	srv, err := w.transport.Serve(w.addr, w.handle)
	if err != nil {
		return fmt.Errorf("core: worker %s serve: %w", w.id, err)
	}
	w.server = srv
	if err := w.register(ctx); err != nil {
		srv.Close()
		return err
	}
	return nil
}

// register announces this worker to the coordinator. Also used to recover
// when a restarted coordinator answers heartbeats with "must re-register".
func (w *Worker) register(ctx context.Context) error {
	resp, err := w.callCoord(ctx, &wire.Register{Node: w.id, Addr: w.Addr(), Capacity: 1})
	if err != nil {
		return fmt.Errorf("core: worker %s register: %w", w.id, err)
	}
	if ack, ok := resp.(*wire.RegisterAck); !ok || !ack.Accepted {
		return fmt.Errorf("core: worker %s registration rejected", w.id)
	}
	w.mu.Lock()
	w.registered = true
	w.mu.Unlock()
	w.drainPushes(ctx)
	return nil
}

// StartHeartbeats begins pushing heartbeats every interval until Stop. Tests
// that drive time manually can skip this and call SendHeartbeat directly.
func (w *Worker) StartHeartbeats(interval time.Duration) {
	w.lifecycle.Add(1)
	go func() {
		defer w.lifecycle.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.SendHeartbeat(context.Background())
			case <-w.stopCh:
				return
			}
		}
	}()
}

// SendHeartbeat pushes one heartbeat to the coordinator. A "must re-register"
// answer — the coordinator restarted and lost its membership — triggers
// re-registration and one heartbeat resend, so the worker rejoins instead of
// heartbeating into the void until the next sweep kills it.
func (w *Worker) SendHeartbeat(ctx context.Context) error {
	err := w.sendHeartbeatOnce(ctx)
	var re *cluster.RemoteError
	if errors.As(err, &re) && re.Code == wire.CodeMustRegister {
		w.reg.Counter("heartbeat.reregister").Inc()
		if err := w.register(ctx); err != nil {
			return err
		}
		err = w.sendHeartbeatOnce(ctx)
	}
	if err == nil {
		// The coordinator answered: replay anything deferred while it (or
		// its predecessor) was unreachable.
		w.drainPushes(ctx)
	}
	return err
}

func (w *Worker) sendHeartbeatOnce(ctx context.Context) error {
	// Rebuild the reusable shell in place (hbMu keeps it off the wire between
	// sends); the summary it points at is the independently-owned cache, so
	// handing the same shell out every interval shares nothing mutable.
	w.hbMu.Lock()
	defer w.hbMu.Unlock()
	hb := &w.hbShell
	w.mu.Lock()
	w.hbSeq++
	hb.Node = w.id
	hb.Seq = w.hbSeq
	hb.Load = w.loadMeter.Rate()
	hb.Stored = w.store.Len()
	hb.Cameras = len(w.cameras)
	hb.Summary = w.summaryLocked()
	w.mu.Unlock()
	resp, err := w.callCoord(ctx, hb)
	if err != nil {
		return err
	}
	if ack, ok := resp.(*wire.HeartbeatAck); ok {
		w.mu.Lock()
		w.lastAckEpoch = ack.Epoch
		w.mu.Unlock()
	}
	return nil
}

// summaryLocked returns the store sketch piggybacked on heartbeats, rebuilding
// it only when the store content or the assignment epoch changed since the
// last heartbeat. Callers hold w.mu.
func (w *Worker) summaryLocked() *wire.WorkerSummary {
	gen := w.store.Gen()
	if w.sumCache != nil && w.sumEpoch == w.epoch && w.sumGen == gen {
		return w.sumCache
	}
	s := w.store.Summarize(w.opts.SummaryCellSize, w.opts.SummaryTimeBuckets)
	ws := &wire.WorkerSummary{
		Epoch:       w.epoch,
		Records:     s.Records,
		CellSize:    s.CellSize,
		BucketFrom:  s.BucketFrom,
		BucketWidth: s.BucketWidth,
	}
	if len(s.Cells) > 0 {
		ws.Cells = make([]wire.SummaryCell, len(s.Cells))
		for i, c := range s.Cells {
			ws.Cells[i] = wire.SummaryCell{CX: c.CX, CY: c.CY, Count: c.Count, Bounds: c.Bounds, Buckets: c.Buckets}
		}
	}
	w.sumCache, w.sumEpoch, w.sumGen = ws, w.epoch, gen
	w.reg.Counter("summary.rebuilds").Inc()
	return ws
}

// Ready reports whether this worker is a functioning cluster member:
// registered with the coordinator and holding a camera assignment at least
// as new as the epoch the coordinator last acknowledged. A nil return means
// ready.
func (w *Worker) Ready() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.registered {
		return errors.New("not registered with coordinator")
	}
	if w.lastAckEpoch > w.epoch {
		return fmt.Errorf("assignment stale: coordinator at epoch %d, local %d", w.lastAckEpoch, w.epoch)
	}
	return nil
}

// Stop halts background loops and closes the server.
func (w *Worker) Stop() {
	w.stopOnce.Do(func() { close(w.stopCh) })
	w.lifecycle.Wait()
	if w.server != nil {
		w.server.Close()
	}
}

// handle dispatches inbound RPCs, timing each into a per-kind rpc.serve
// histogram for the exposition endpoint.
func (w *Worker) handle(ctx context.Context, from string, req any) (any, error) {
	start := w.now()
	resp, err := w.dispatch(ctx, from, req)
	w.reg.Histogram("rpc.serve." + wire.KindOf(req).String()).Observe(w.now().Sub(start)) //lint:allow metricname per-kind latency series; cardinality bounded by the closed wire.MsgKind enum
	return resp, err
}

func (w *Worker) dispatch(ctx context.Context, from string, req any) (any, error) {
	switch m := req.(type) {
	case *wire.AssignCameras:
		return w.onAssign(m)
	case *wire.IngestBatch:
		return w.onIngest(ctx, m)
	case *wire.RangeQuery:
		return w.onRange(m)
	case *wire.KNNQuery:
		return w.onKNN(m)
	case *wire.CountQuery:
		return w.onCount(m)
	case *wire.TrajectoryQuery:
		return w.onTrajectory(m)
	case *wire.InstallContinuous:
		return w.onInstallContinuous(m)
	case *wire.RemoveContinuous:
		return w.onRemoveContinuous(m)
	case *wire.TrackStart:
		return w.onTrackStart(m)
	case *wire.TrackPrime:
		return w.onTrackPrime(m)
	case *wire.TrackStop:
		return w.onTrackStop(m)
	case *wire.HeatmapQuery:
		return w.onHeatmap(m)
	case *wire.FilterQuery:
		return w.onFilter(m)
	case *wire.StatsQuery:
		return w.onStats()
	default:
		return &wire.Error{Code: wire.CodeBadRequest, Message: fmt.Sprintf("worker: unexpected %T", req)}, nil
	}
}

func (w *Worker) onAssign(m *wire.AssignCameras) (any, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if m.Epoch < w.epoch {
		return &wire.Error{Code: wire.CodeWrongEpoch, Message: fmt.Sprintf("stale epoch %d < %d", m.Epoch, w.epoch)}, nil
	}
	w.epoch = m.Epoch
	w.cameras = make(map[uint32]*camera.Camera, len(m.Cameras)+len(m.Replicas))
	w.primary = make(map[uint32]bool, len(m.Cameras))
	for _, ci := range m.Cameras {
		w.cameras[ci.ID] = camera.New(camera.ID(ci.ID), ci.Pos, ci.Orient, ci.HalfFOV, ci.Range)
		w.primary[ci.ID] = true
	}
	for _, ci := range m.Replicas {
		w.cameras[ci.ID] = camera.New(camera.ID(ci.ID), ci.Pos, ci.Orient, ci.HalfFOV, ci.Range)
	}
	w.hist = nil // territory changed; rebuild selectivity statistics lazily
	w.reg.Gauge("cameras.owned").Set(int64(len(w.primary)))
	w.reg.Gauge("cameras.replica").Set(int64(len(m.Replicas)))
	return &wire.AssignAck{Epoch: m.Epoch, Accepted: len(m.Cameras) + len(m.Replicas)}, nil
}

// onIngest is the hot path, split into two stages. Stage 1, under w.mu, is
// the short critical section: sequenced-delivery dedup, ownership check,
// identity association, and index insert. Stage 2, under w.evalMu, is the
// staged evaluation: continuous queries, tracking, and observation-time
// expiry. Queries never wait behind stage 2, and stage-1 inserts from the
// next pipelined batch overlap with this batch's evaluation.
func (w *Worker) onIngest(ctx context.Context, m *wire.IngestBatch) (any, error) {
	w.mu.Lock()
	sequenced := m.Source != "" && m.Seq != 0
	if sequenced {
		if st, ok := w.ingestSeqs[m.Source]; ok && m.Seq <= st.seq {
			// Duplicate delivery (at-least-once sender retried, or the
			// transport duplicated the frame): answer from the recorded
			// outcome, never re-apply. A sequence older than the cursor has
			// no recorded ack; it is acknowledged empty, which is still
			// correct because its original delivery was already counted.
			ack := wire.IngestAck{Replayed: true}
			if m.Seq == st.seq {
				ack = st.ack
				ack.Replayed = true
			}
			w.mu.Unlock()
			w.reg.Counter("ingest.replays").Inc()
			return &ack, nil
		}
	}
	accepted, rejected, replicated := 0, 0, 0
	latest := m.FrameTime
	var evals []stagedObs
	for i := range m.Observations {
		obs := &m.Observations[i]
		if _, owned := w.cameras[obs.Camera]; !owned {
			rejected++
			continue
		}
		if obs.Time.After(latest) {
			latest = obs.Time
		}
		if !w.primary[obs.Camera] {
			// Standby copy: index only. The primary owner runs association,
			// continuous queries, and tracking; running them here too would
			// duplicate answer deltas and track updates.
			replicated++
			w.store.Insert(stindex.Record{
				ObsID:  obs.ObsID,
				Camera: obs.Camera,
				Pos:    obs.Pos,
				Time:   obs.Time,
			})
			continue
		}
		accepted++
		// Identity association: worker-local namespaced target IDs.
		var targetID uint64
		if len(obs.Feature) > 0 {
			local, _ := w.assoc.Associate(vision.Feature(obs.Feature))
			targetID = w.idNamespace | local
		}
		rec := stindex.Record{
			ObsID:    obs.ObsID,
			TargetID: targetID,
			Camera:   obs.Camera,
			Pos:      obs.Pos,
			Time:     obs.Time,
		}
		w.store.Insert(rec)
		w.featureLog.add(obs)
		evals = append(evals, stagedObs{obs: *obs, rec: rec})
	}
	ack := wire.IngestAck{Accepted: accepted, Rejected: rejected, Replicated: replicated}
	if sequenced {
		st, ok := w.ingestSeqs[m.Source]
		if !ok {
			st = &ingestSeqState{}
			w.ingestSeqs[m.Source] = st
		}
		st.seq, st.ack = m.Seq, ack
	}
	w.loadMeter.Mark(int64(accepted + replicated))
	w.reg.Counter("ingest.accepted").Add(int64(accepted))
	w.reg.Counter("ingest.rejected").Add(int64(rejected))
	w.reg.Counter("ingest.replica").Add(int64(replicated))
	w.reg.Gauge("store.records").Set(int64(w.store.Len()))
	w.mu.Unlock()

	pushes := w.evaluateIngest(evals, latest)
	for _, p := range pushes {
		w.pushCoord(ctx, p)
	}
	return &ack, nil
}

// evaluateIngest is ingest stage 2: fold freshly indexed observations into
// continuous-query answer sets and resident-track/prime matching, then run
// observation-time track-loss detection and continuous-answer expiry (frame
// clocks included, so silence still ticks). Serialized under w.evalMu —
// batches arrive in per-sender order, so evaluation order stays
// deterministic — and returns the updates to push to the coordinator.
func (w *Worker) evaluateIngest(evals []stagedObs, latest time.Time) []any {
	if len(evals) == 0 && latest.IsZero() {
		return nil
	}
	w.evalMu.Lock()
	defer w.evalMu.Unlock()
	var pushes []any
	for i := range evals {
		// Continuous queries: incremental +/- evaluation.
		for _, cs := range w.continuous {
			if upd := cs.observe(evals[i].rec); upd != nil {
				pushes = append(pushes, upd)
			}
		}
		// Tracking: resident tracks and armed primes.
		pushes = append(pushes, w.observeTracksLocked(&evals[i].obs)...)
	}
	if !latest.IsZero() {
		pushes = append(pushes, w.detectLostTracksLocked(latest)...)
		pushes = append(pushes, w.expireContinuousLocked(latest.Add(-w.opts.LostAfter))...)
	}
	return pushes
}

// curEpoch reads the current assignment epoch (handlers that answer with it
// while holding only evalMu).
func (w *Worker) curEpoch() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

func (w *Worker) onRange(m *wire.RangeQuery) (any, error) {
	start := w.now()
	scanned := w.store.RangeQuery(m.Rect, m.Window.From, m.Window.To)
	w.feedbackRange(m.Rect, len(scanned), w.store.Len())
	recs := w.filterPrimary(scanned)
	truncated := false
	if m.Limit > 0 && len(recs) > m.Limit {
		recs = recs[:m.Limit]
		truncated = true
	}
	out := &wire.RangeResult{QueryID: m.QueryID, Records: toWireRecords(recs), Truncated: truncated}
	w.reg.Histogram("query.range").Observe(w.now().Sub(start))
	return out, nil
}

// filterPrimary drops records whose camera this worker holds only as a
// standby copy, so replicated data never duplicates a query answer. A camera
// promoted after a failure passes the filter, which is how standby history
// becomes visible.
func (w *Worker) filterPrimary(recs []stindex.Record) []stindex.Record {
	w.mu.Lock()
	replicated := len(w.primary) != len(w.cameras)
	var primary map[uint32]bool
	if replicated {
		primary = make(map[uint32]bool, len(w.primary))
		for id := range w.primary {
			primary[id] = true
		}
	}
	w.mu.Unlock()
	if !replicated {
		return recs
	}
	kept := recs[:0]
	for _, r := range recs {
		if primary[r.Camera] {
			kept = append(kept, r)
		}
	}
	return kept
}

// isPrimarySnapshot returns a point-in-time primary-camera predicate.
func (w *Worker) isPrimarySnapshot() func(stindex.Record) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.primary) == len(w.cameras) {
		return nil // no replicas held; everything is primary
	}
	primary := make(map[uint32]bool, len(w.primary))
	for id := range w.primary {
		primary[id] = true
	}
	return func(r stindex.Record) bool { return primary[r.Camera] }
}

func (w *Worker) onKNN(m *wire.KNNQuery) (any, error) {
	start := w.now()
	if m.K <= 0 {
		return &wire.Error{Code: wire.CodeBadRequest, Message: "knn: k must be positive"}, nil
	}
	ns := w.store.KNNBounded(m.Center, m.Window.From, m.Window.To, m.K, m.MaxDist2, w.isPrimarySnapshot())
	out := &wire.KNNResult{QueryID: m.QueryID, Records: make([]wire.KNNRecord, len(ns))}
	for i, n := range ns {
		out.Records[i] = wire.KNNRecord{ResultRecord: toWireRecord(n.Record), Dist2: n.Dist2}
	}
	w.reg.Histogram("query.knn").Observe(w.now().Sub(start))
	return out, nil
}

func (w *Worker) onCount(m *wire.CountQuery) (any, error) {
	if keep := w.isPrimarySnapshot(); keep != nil {
		n := len(w.filterPrimary(w.store.RangeQuery(m.Rect, m.Window.From, m.Window.To)))
		return &wire.CountResult{QueryID: m.QueryID, Count: n}, nil
	}
	return &wire.CountResult{QueryID: m.QueryID, Count: w.store.Count(m.Rect, m.Window.From, m.Window.To)}, nil
}

func (w *Worker) onTrajectory(m *wire.TrajectoryQuery) (any, error) {
	recs := w.store.TargetHistory(m.TargetID, m.Window.From, m.Window.To)
	return &wire.TrajectoryResult{QueryID: m.QueryID, Records: toWireRecords(recs)}, nil
}

func (w *Worker) onHeatmap(m *wire.HeatmapQuery) (any, error) {
	if m.CellSize <= 0 {
		return &wire.Error{Code: wire.CodeBadRequest, Message: "heatmap: cell size must be positive"}, nil
	}
	cells := w.store.Heatmap(m.Rect, m.Window.From, m.Window.To, m.CellSize, w.isPrimarySnapshot())
	out := &wire.HeatmapResult{QueryID: m.QueryID, CellSize: m.CellSize, Cells: make([]wire.HeatCell, len(cells))}
	for i, c := range cells {
		out.Cells[i] = wire.HeatCell{CX: c.CX, CY: c.CY, Count: c.Count}
	}
	return out, nil
}

// StatsSnapshot mirrors the transport-layer RPC counters into the registry
// and returns a full snapshot — the single source for the stats RPC and the
// /metrics exposition endpoint.
func (w *Worker) StatsSnapshot() metrics.RegistrySnapshot {
	mirrorRPCStats(w.reg, w.rpc.Stats())
	mirrorTierStats(w.reg, w.store.TierStats())
	return w.reg.Snapshot()
}

// mirrorTierStats copies the store's sealed-tier sizes and query-path
// counters into the registry as gauges, so /metrics and the stats RPC expose
// chunk residency (count, compressed bytes, records) and the decode-vs-rollup
// balance of the query path. All zeros when the store runs flat.
func mirrorTierStats(reg *metrics.Registry, ts stindex.TierStats) {
	reg.Gauge("store.sealed_chunks").Set(int64(ts.SealedChunks + ts.TargetChunks))
	reg.Gauge("store.sealed_bytes").Set(ts.SealedBytes + ts.TargetBytes)
	reg.Gauge("store.sealed_records").Set(int64(ts.SealedRecords))
	reg.Gauge("store.chunk_decodes").Set(int64(ts.QueryDecodes))
	reg.Gauge("store.rollup_hits").Set(int64(ts.RollupHits))
}

func (w *Worker) onStats() (any, error) {
	snap := w.StatsSnapshot()
	return &wire.StatsResult{
		Node:       w.id,
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: histStatsOf(snap.Histograms),
	}, nil
}

// ReidSearch scans the worker's recent feature log for observations whose
// appearance matches the probe above the threshold. Used by the coordinator's
// forensic search; exported for local (in-process) deployments.
func (w *Worker) ReidSearch(probe vision.Feature, window wire.TimeWindow, threshold float64) []wire.ResultRecord {
	var out []wire.ResultRecord
	w.featureLog.scan(func(obs *wire.Observation) {
		if !window.Contains(obs.Time) {
			return
		}
		if vision.Cosine(probe, vision.Feature(obs.Feature)) >= threshold {
			out = append(out, wire.ResultRecord{
				ObsID:  obs.ObsID,
				Camera: obs.Camera,
				Pos:    obs.Pos,
				Time:   obs.Time,
			})
		}
	})
	return out
}

func toWireRecord(r stindex.Record) wire.ResultRecord {
	return wire.ResultRecord{
		ObsID:    r.ObsID,
		TargetID: r.TargetID,
		Camera:   r.Camera,
		Pos:      r.Pos,
		Time:     r.Time,
	}
}

func toWireRecords(rs []stindex.Record) []wire.ResultRecord {
	if len(rs) == 0 {
		return nil
	}
	out := make([]wire.ResultRecord, len(rs))
	for i, r := range rs {
		out[i] = toWireRecord(r)
	}
	return out
}

// featureRing is a bounded ring buffer of recent observations with features,
// powering re-identification search without unbounded memory.
type featureRing struct {
	buf  []wire.Observation
	next int
	full bool
}

func newFeatureRing(size int) *featureRing {
	return &featureRing{buf: make([]wire.Observation, size)}
}

func (r *featureRing) add(obs *wire.Observation) {
	if len(obs.Feature) == 0 {
		return
	}
	r.buf[r.next] = *obs
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

func (r *featureRing) scan(fn func(*wire.Observation)) {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	for i := 0; i < n; i++ {
		fn(&r.buf[i])
	}
}

// worldGuess returns a bounding box around this worker's cameras, used to
// seed continuous-query geometry checks.
func (w *Worker) worldGuess() geo.Rect {
	out := geo.EmptyRect()
	for _, c := range w.cameras {
		out = out.Union(c.Bounds())
	}
	return out
}
