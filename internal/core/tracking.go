package core

import (
	"time"

	"stcam/internal/vision"
	"stcam/internal/wire"
)

// Worker-side tracking. A track resident on this worker is matched against
// every incoming observation of its cameras by appearance similarity; a prime
// is a watch armed by the coordinator on specific cameras during a handoff.
// All match logic runs on observation time, never the wall clock.

func (w *Worker) onTrackStart(m *wire.TrackStart) (any, error) {
	w.mu.Lock()
	_, owned := w.cameras[m.Camera]
	epoch := w.epoch
	w.mu.Unlock()
	if !owned {
		return &wire.Error{Code: wire.CodeNotFound, Message: "track: camera not owned"}, nil
	}
	w.evalMu.Lock()
	defer w.evalMu.Unlock()
	w.tracks[m.TrackID] = &trackState{
		trackID:  m.TrackID,
		camera:   m.Camera,
		feature:  vision.Feature(m.Feature),
		lastSeen: m.Time,
	}
	w.reg.Gauge("tracks.resident").Set(int64(len(w.tracks)))
	return &wire.AssignAck{Epoch: epoch, Accepted: 1}, nil
}

func (w *Worker) onTrackPrime(m *wire.TrackPrime) (any, error) {
	w.mu.Lock()
	owned := make(map[uint32]bool)
	for _, cam := range m.Cameras {
		if _, ok := w.cameras[cam]; ok {
			owned[cam] = true
		}
	}
	epoch := w.epoch
	w.mu.Unlock()
	if len(owned) == 0 {
		return &wire.Error{Code: wire.CodeNotFound, Message: "prime: no owned cameras in set"}, nil
	}
	w.evalMu.Lock()
	defer w.evalMu.Unlock()
	w.primes[m.TrackID] = &primeState{
		trackID: m.TrackID,
		cameras: owned,
		feature: vision.Feature(m.Feature),
		expires: m.Expires,
	}
	w.reg.Counter("tracks.primed").Inc()
	return &wire.AssignAck{Epoch: epoch, Accepted: len(owned)}, nil
}

func (w *Worker) onTrackStop(m *wire.TrackStop) (any, error) {
	w.evalMu.Lock()
	defer w.evalMu.Unlock()
	_, hadTrack := w.tracks[m.TrackID]
	_, hadPrime := w.primes[m.TrackID]
	delete(w.tracks, m.TrackID)
	delete(w.primes, m.TrackID)
	w.reg.Gauge("tracks.resident").Set(int64(len(w.tracks)))
	if !hadTrack && !hadPrime {
		return &wire.Error{Code: wire.CodeNotFound, Message: "track: unknown id"}, nil
	}
	return &wire.AssignAck{Epoch: w.curEpoch(), Accepted: 1}, nil
}

// observeTracksLocked matches one observation against resident tracks and
// armed primes, returning messages to push to the coordinator. Caller holds
// w.evalMu.
func (w *Worker) observeTracksLocked(obs *wire.Observation) []any {
	if len(obs.Feature) == 0 {
		return nil
	}
	var pushes []any
	feat := vision.Feature(obs.Feature)
	// Resident tracks: any owned camera may re-sight the target (intra-worker
	// handoff needs no coordinator round-trip — locality is the point of
	// spatial partitioning).
	for _, tr := range w.tracks {
		if vision.Cosine(tr.feature, feat) < w.opts.AssocThreshold {
			continue
		}
		prevCam := tr.camera
		tr.camera = obs.Camera
		tr.lastSeen = obs.Time
		tr.handingOff = false
		// A re-sight cancels any handoff in flight. Drop our own armed prime
		// for this track (a worker can be primed for a track it still owns);
		// the TrackUpdate below tells the coordinator to revoke the primes it
		// armed on peers, so no stale prime can later claim and fork the
		// track.
		delete(w.primes, tr.trackID)
		pushes = append(pushes, &wire.TrackUpdate{
			TrackID: tr.trackID,
			Camera:  obs.Camera,
			Pos:     obs.Pos,
			Time:    obs.Time,
		})
		if prevCam != obs.Camera {
			w.reg.Counter("tracks.local_handoffs").Inc()
		}
	}
	// Primes: a match claims the track for this worker.
	for id, pr := range w.primes {
		if obs.Time.After(pr.expires) {
			delete(w.primes, id)
			continue
		}
		if !pr.cameras[obs.Camera] {
			continue
		}
		if vision.Cosine(pr.feature, feat) < w.opts.AssocThreshold {
			continue
		}
		delete(w.primes, id)
		w.tracks[id] = &trackState{
			trackID:  id,
			camera:   obs.Camera,
			feature:  feat,
			lastSeen: obs.Time,
		}
		w.reg.Counter("tracks.claimed").Inc()
		w.reg.Gauge("tracks.resident").Set(int64(len(w.tracks)))
		pushes = append(pushes, &wire.TrackHandoff{
			TrackID:  id,
			ToCamera: obs.Camera,
			Feature:  obs.Feature,
			Time:     obs.Time,
		})
		pushes = append(pushes, &wire.TrackUpdate{
			TrackID: id,
			Camera:  obs.Camera,
			Pos:     obs.Pos,
			Time:    obs.Time,
		})
	}
	return pushes
}

// detectLostTracksLocked flags resident tracks silent past LostAfter
// (observation time) and asks the coordinator to run a handoff. The track
// stays resident until the coordinator confirms a claim elsewhere or stops
// it. Caller holds w.evalMu.
func (w *Worker) detectLostTracksLocked(now time.Time) []any {
	var pushes []any
	for _, tr := range w.tracks {
		if tr.handingOff {
			continue
		}
		if now.Sub(tr.lastSeen) > w.opts.LostAfter {
			tr.handingOff = true
			w.reg.Counter("tracks.lost_local").Inc()
			pushes = append(pushes, &wire.TrackHandoff{
				TrackID:    tr.trackID,
				FromCamera: tr.camera,
				Feature:    tr.feature,
				Time:       now,
			})
		}
	}
	return pushes
}

// expireContinuousLocked runs answer-set expiry for continuous queries at the
// given observation-time horizon. Caller holds w.evalMu.
func (w *Worker) expireContinuousLocked(horizon time.Time) []any {
	var pushes []any
	for _, cs := range w.continuous {
		if upd := cs.expire(horizon); upd != nil {
			pushes = append(pushes, upd)
		}
	}
	return pushes
}
