package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stcam/internal/camera"
	"stcam/internal/cluster"
	"stcam/internal/geo"
	"stcam/internal/metrics"
	"stcam/internal/wire"
)

// routeSlack grows query rectangles before camera-based worker routing, so
// observations displaced by detector position noise are never missed.
const routeSlack = 25.0

// Coordinator is the head node: it owns the camera registry and vision graph,
// partitions cameras across workers, routes and merges queries, distributes
// continuous queries, orchestrates tracking handoffs, and handles worker
// failure by reassignment.
//
// The coordinator doubles as the client gateway: application code calls its
// exported methods directly (examples and cmd/stcamctl go through these).
type Coordinator struct {
	addr        string
	transport   cluster.Transport
	rpc         *cluster.Resilient // resilience layer for all outbound calls
	opts        Options
	reg         *metrics.Registry
	membership  *cluster.Membership
	partitioner cluster.Partitioner
	network     *camera.Network

	server cluster.Server

	// ha is the replicated control-plane state; nil outside an HA group
	// (see ha.go). ha.mu and mu never nest in either direction.
	ha        *haState
	lifecycle sync.WaitGroup
	stopCh    chan struct{}
	stopOnce  sync.Once

	// gateway is the optional serving-plane front end (see gateway.go).
	gateway atomic.Pointer[gatewaySlot]

	mu         sync.Mutex
	epoch      uint64
	assignment cluster.Assignment
	replicas   map[uint32][]wire.NodeID
	camInfos   map[uint32]wire.CameraInfo
	continuous map[uint64]*coordContinuous
	shared     map[string]*sharedContinuous // canonical shape -> refcounted install
	sharedKey  map[uint64]string            // query id -> canonical shape
	tracks     map[uint64]*coordTrack

	// sumMu guards the per-node store sketches piggybacked on heartbeats,
	// which the pruned scatter path consults (see scatter.go). Leaf lock:
	// never held while acquiring mu or calling out.
	sumMu     sync.Mutex
	summaries map[wire.NodeID]nodeSummary

	nextQueryID atomic.Uint64
	nextTrackID atomic.Uint64
}

// coordContinuous is the coordinator's record of one standing query.
type coordContinuous struct {
	queryID uint64
	install wire.InstallContinuous
	ch      chan wire.ContinuousUpdate
	workers map[wire.NodeID]bool
}

// sharedContinuous is one refcounted standing-query install: N subscribers to
// the same canonical shape share one worker-side evaluation.
type sharedContinuous struct {
	id   uint64
	ch   <-chan wire.ContinuousUpdate
	refs int
}

// coordTrack is the coordinator's record of one active track.
type coordTrack struct {
	trackID    uint64
	owner      wire.NodeID
	lastCamera uint32
	feature    []float32
	lastSeen   time.Time
	lost       bool
	ch         chan wire.TrackUpdate
	handoffs   int
	path       []wire.TrackUpdate // stitched cross-camera trajectory
	primed     map[wire.NodeID]bool
}

// maxTrackPath bounds the per-track trajectory memory; older samples are
// dropped from the front once exceeded.
const maxTrackPath = 100000

// NewCoordinator constructs a coordinator. The partitioner may be nil, which
// selects spatial partitioning.
func NewCoordinator(addr string, transport cluster.Transport, p cluster.Partitioner, opts Options) *Coordinator {
	opts.fill()
	if p == nil {
		p = &cluster.SpatialPartitioner{}
	}
	reg := metrics.NewRegistry()
	c := &Coordinator{
		addr:        addr,
		transport:   transport,
		rpc:         resilientFor(transport, opts, reg),
		opts:        opts,
		reg:         reg,
		membership:  cluster.NewMembership(opts.HeartbeatTimeout),
		partitioner: p,
		network:     camera.NewNetwork(),
		stopCh:      make(chan struct{}),
		assignment:  make(cluster.Assignment),
		replicas:    make(map[uint32][]wire.NodeID),
		camInfos:    make(map[uint32]wire.CameraInfo),
		continuous:  make(map[uint64]*coordContinuous),
		shared:      make(map[string]*sharedContinuous),
		sharedKey:   make(map[uint64]string),
		tracks:      make(map[uint64]*coordTrack),
		summaries:   make(map[wire.NodeID]nodeSummary),
	}
	if len(opts.CoordinatorPeers) > 0 {
		peers := make(map[wire.NodeID]string, len(opts.CoordinatorPeers))
		for id, a := range opts.CoordinatorPeers {
			if id != opts.CoordinatorID {
				peers[id] = a
			}
		}
		c.ha = &haState{
			id:       opts.CoordinatorID,
			peers:    peers,
			ttl:      opts.LeaseInterval,
			standby:  opts.Standby,
			lease:    cluster.NewLease(opts.LeaseInterval),
			acks:     make(map[wire.NodeID]uint64),
			inFlight: make(map[wire.NodeID]bool),
			commitCh: make(chan struct{}),
		}
	}
	return c
}

// Start binds the coordinator's server and, in an HA group, starts the
// lease/replication loop.
func (c *Coordinator) Start() error {
	srv, err := c.transport.Serve(c.addr, c.handle)
	if err != nil {
		return fmt.Errorf("core: coordinator serve: %w", err)
	}
	c.server = srv
	if c.ha != nil {
		c.lifecycle.Add(1)
		go c.haLoop()
	}
	return nil
}

// now reads the injected clock (Options.Clock): the only sanctioned
// wall-clock source in this package, per the clockinject analyzer.
func (c *Coordinator) now() time.Time { return c.opts.Clock.Now() }

// Addr returns the bound address.
func (c *Coordinator) Addr() string {
	if c.server != nil {
		return c.server.Addr()
	}
	return c.addr
}

// Stop closes the server and all subscriber channels.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.lifecycle.Wait()
	if c.server != nil {
		c.server.Close()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, cc := range c.continuous {
		close(cc.ch)
		delete(c.continuous, id)
	}
	for id, tr := range c.tracks {
		close(tr.ch)
		delete(c.tracks, id)
	}
}

// Network exposes the camera topology (vision graph seeding, coverage).
func (c *Coordinator) Network() *camera.Network { return c.network }

// Metrics exposes the coordinator's instrumentation.
func (c *Coordinator) Metrics() *metrics.Registry { return c.reg }

// Epoch returns the current assignment epoch.
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// handle dispatches inbound RPCs: worker control traffic, plus the
// client-facing query surface (remote clients send the same query messages a
// worker answers; the coordinator scatter-gathers and returns the merged
// result). Each request is timed into a per-kind rpc.serve histogram so the
// server-side latency distribution shows up in /metrics alongside the
// client-side rpc.call one.
func (c *Coordinator) handle(ctx context.Context, from string, req any) (any, error) {
	start := c.now()
	resp, err := c.dispatch(ctx, from, req)
	c.reg.Histogram("rpc.serve." + wire.KindOf(req).String()).Observe(c.now().Sub(start)) //lint:allow metricname per-kind latency series; cardinality bounded by the closed wire.MsgKind enum
	return resp, err
}

func (c *Coordinator) dispatch(ctx context.Context, _ string, req any) (any, error) {
	// HA protocol traffic is role-agnostic and handled first.
	switch m := req.(type) {
	case *wire.Replicate:
		return c.onReplicate(m)
	case *wire.LeaderQuery:
		return c.onLeaderQuery()
	}
	if c.IsStandby() {
		// Leader-only traffic is redirected; reads fall through and are
		// served from the replicated state (degraded mode: the standby's
		// membership view may lag, but availability beats completeness
		// during a failover window, and QueryMeta reports the shortfall).
		switch req.(type) {
		case *wire.Register, *wire.Heartbeat, *wire.AssignCameras, *wire.IngestBatch,
			*wire.ContinuousUpdate, *wire.TrackUpdate, *wire.TrackHandoff:
			return c.standbyReject()
		}
	}
	// The serving-plane gateway (if installed) sees client traffic after the
	// HA/standby filters: it can answer queries from cache, multiplex
	// subscriptions, or shed load. Unhandled requests fall through.
	if g := c.loadGateway(); g != nil {
		if resp, handled := g.Intercept(ctx, req); handled {
			return resp, nil
		}
	}
	switch m := req.(type) {
	case *wire.Register:
		c.membership.Register(m, c.now())
		c.dropSummary(m.Node) // a restarted worker's sketch and hbSeq start over
		c.reg.Counter("workers.registered").Inc()
		// The ack is gated on majority replication: a minority-partitioned
		// leader must not accept registrations that a failover would forget.
		// The worker re-registers on its next heartbeat (CodeMustRegister).
		if !c.haAppendWait(c.Epoch(), wire.ControlRecord{Op: wire.OpMember, Member: wire.MemberRecord{
			Node: m.Node, Addr: m.Addr, Capacity: m.Capacity,
		}}) {
			return &wire.Error{Code: wire.CodeUnavailable, Message: ErrNotCommitted.Error()}, nil
		}
		return &wire.RegisterAck{Accepted: true}, nil
	case *wire.Heartbeat:
		known := c.membership.Heartbeat(m, c.now())
		if !known {
			// Distinguishable "must re-register" answer: the worker resends
			// Register (coordinator-restart recovery) instead of hammering
			// heartbeats that never count.
			return &wire.Error{Code: wire.CodeMustRegister, Message: "heartbeat from unregistered node; re-register"}, nil
		}
		if m.Summary != nil {
			c.noteSummary(m.Node, m.Seq, m.Summary)
		}
		return &wire.HeartbeatAck{Epoch: c.Epoch()}, nil
	case *wire.ContinuousUpdate:
		c.onContinuousUpdate(m)
		return &wire.AssignAck{}, nil
	case *wire.TrackUpdate:
		c.onTrackUpdate(m)
		return &wire.AssignAck{}, nil
	case *wire.TrackHandoff:
		c.onTrackHandoff(m)
		return &wire.AssignAck{}, nil
	case *wire.RangeQuery:
		recs, meta, err := c.RangeMeta(ctx, m.Rect, m.Window, m.Limit)
		if err != nil {
			return &wire.Error{Code: wire.CodeBadRequest, Message: err.Error()}, nil
		}
		return &wire.RangeResult{QueryID: m.QueryID, Records: recs, Asked: meta.Asked, Answered: meta.Answered}, nil
	case *wire.KNNQuery:
		recs, meta, err := c.knnMeta(ctx, m.Center, m.Window, m.K, m.MaxDist2)
		if err != nil {
			return &wire.Error{Code: wire.CodeBadRequest, Message: err.Error()}, nil
		}
		return &wire.KNNResult{QueryID: m.QueryID, Records: recs, Asked: meta.Asked, Answered: meta.Answered}, nil
	case *wire.CountQuery:
		n, meta, err := c.CountMeta(ctx, m.Rect, m.Window)
		if err != nil {
			return &wire.Error{Code: wire.CodeBadRequest, Message: err.Error()}, nil
		}
		return &wire.CountResult{QueryID: m.QueryID, Count: n, Asked: meta.Asked, Answered: meta.Answered}, nil
	case *wire.TrajectoryQuery:
		recs, err := c.Trajectory(ctx, m.TargetID, m.Window)
		if err != nil {
			return &wire.Error{Code: wire.CodeBadRequest, Message: err.Error()}, nil
		}
		return &wire.TrajectoryResult{QueryID: m.QueryID, Records: recs}, nil
	case *wire.HeatmapQuery:
		cells, err := c.Heatmap(ctx, m.Rect, m.Window, m.CellSize)
		if err != nil {
			return &wire.Error{Code: wire.CodeBadRequest, Message: err.Error()}, nil
		}
		return &wire.HeatmapResult{QueryID: m.QueryID, CellSize: m.CellSize, Cells: cells}, nil
	case *wire.FilterQuery:
		recs, _, err := c.Filter(ctx, *m)
		if err != nil {
			return &wire.Error{Code: wire.CodeBadRequest, Message: err.Error()}, nil
		}
		return &wire.FilterResult{QueryID: m.QueryID, Records: recs, Plan: "merged"}, nil
	case *wire.AssignCameras:
		// Remote camera registration (cmd/stcam-sim): epoch is ignored on the
		// inbound path; AddCameras recomputes and pushes the real epoch.
		if err := c.AddCameras(ctx, m.Cameras, routeSlack); err != nil {
			return &wire.Error{Code: wire.CodeUnavailable, Message: err.Error()}, nil
		}
		return &wire.AssignAck{Epoch: c.Epoch(), Accepted: len(m.Cameras)}, nil
	case *wire.IngestBatch:
		return c.proxyIngest(ctx, m)
	case *wire.ClusterStatsQuery:
		return c.ClusterStats(ctx), nil
	default:
		return &wire.Error{Code: wire.CodeBadRequest, Message: fmt.Sprintf("coordinator: unexpected %T", req)}, nil
	}
}

// proxyIngest is the ingest proxy for remote drivers: observations are
// regrouped per destination worker (each observation routes by its own
// camera, so one multi-camera batch fans out as one coalesced sub-batch per
// worker plus its replicas) and forwarded concurrently, bounded by the
// configured pipeline depth. Production feeds stream to workers directly;
// this path trades a hop for client simplicity.
//
// Forwards are unsequenced (Source "", Seq 0): the proxy multiplexes many
// clients onto each worker link, so a client's per-link sequence cannot
// survive the hop without reordering. Idempotent sequenced delivery applies
// on the direct Ingester→worker path.
func (c *Coordinator) proxyIngest(ctx context.Context, m *wire.IngestBatch) (any, error) {
	if len(m.Observations) == 0 {
		return &wire.IngestAck{}, nil
	}
	byAddr := make(map[string][]wire.Observation)
	unrouted := 0
	for _, obs := range m.Observations {
		cam := obs.Camera
		if cam == 0 {
			cam = m.Camera // legacy single-camera batches may omit per-obs routing
		}
		addrs := c.RoutesFor(cam)
		if len(addrs) == 0 {
			unrouted++
			continue
		}
		for _, addr := range addrs {
			byAddr[addr] = append(byAddr[addr], obs)
		}
	}
	if len(byAddr) == 0 {
		return &wire.Error{Code: wire.CodeNotFound, Message: fmt.Sprintf("no live owner for any of %d observations", len(m.Observations))}, nil
	}
	// Invalidate before forwarding: even a partially applied forward makes
	// the receiving workers' sketches unable to prove absence of this data.
	c.invalidateSummariesAt(byAddr)
	depth := c.opts.IngestPipelineDepth
	if depth < 1 {
		depth = 1
	}
	sem := make(chan struct{}, depth)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		merged   wire.IngestAck
		firstErr error
	)
	for addr, obs := range byAddr {
		wg.Add(1)
		go func(addr string, obs []wire.Observation) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sub := &wire.IngestBatch{FrameTime: m.FrameTime, Observations: obs}
			resp, err := c.rpc.Call(ctx, addr, sub)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if ack, ok := resp.(*wire.IngestAck); ok {
				merged.Accepted += ack.Accepted
				merged.Rejected += ack.Rejected
				merged.Replicated += ack.Replicated
			}
		}(addr, obs)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	merged.Rejected += unrouted
	return &merged, nil
}

// --- camera management -----------------------------------------------------

// AddCameras registers cameras, reseeds geometric vision-graph edges within
// maxGap, recomputes the partition over live workers, and pushes assignments.
func (c *Coordinator) AddCameras(ctx context.Context, infos []wire.CameraInfo, maxGap float64) error {
	for _, ci := range infos {
		c.network.Add(camera.New(camera.ID(ci.ID), ci.Pos, ci.Orient, ci.HalfFOV, ci.Range))
	}
	c.network.SeedGeometricEdges(maxGap)
	c.network.BuildIndex(0)
	c.mu.Lock()
	for _, ci := range infos {
		c.camInfos[ci.ID] = ci
	}
	c.mu.Unlock()
	if !c.haAppendWait(c.Epoch(), wire.ControlRecord{Op: wire.OpCameras, Cameras: infos}) {
		return fmt.Errorf("core: add cameras: %w", ErrNotCommitted)
	}
	return c.Reassign(ctx)
}

// Reassign recomputes the camera partition over the currently live workers
// and pushes it, bumping the epoch. Continuous queries are reinstalled on the
// new owners.
func (c *Coordinator) Reassign(ctx context.Context) error {
	alive := c.membership.Alive()
	if len(alive) == 0 {
		return errNoLiveWorkers
	}
	nodes := make([]wire.NodeID, len(alive))
	addrByNode := make(map[wire.NodeID]string, len(alive))
	for i, m := range alive {
		nodes[i] = m.Node
		addrByNode[m.Node] = m.Addr
	}

	c.mu.Lock()
	cams := make([]wire.CameraInfo, 0, len(c.camInfos))
	for _, ci := range c.camInfos {
		cams = append(cams, ci)
	}
	sort.Slice(cams, func(i, j int) bool { return cams[i].ID < cams[j].ID })
	c.epoch++
	epoch := c.epoch
	proposed := c.partitioner.Partition(cams, nodes)
	aliveSet := make(map[wire.NodeID]bool, len(nodes))
	for _, n := range nodes {
		aliveSet[n] = true
	}
	// Stability-first assignment: a camera stays with its live owner (its
	// history lives there); a camera whose owner died is promoted to a live
	// replica holder when one exists (standby history becomes authoritative);
	// only otherwise does the partitioner's fresh proposal apply.
	assignment := make(cluster.Assignment, len(cams))
	for _, ci := range cams {
		switch {
		case aliveSet[c.assignment[ci.ID]]:
			assignment[ci.ID] = c.assignment[ci.ID]
		case c.promotableReplicaLocked(ci.ID, aliveSet) != "":
			assignment[ci.ID] = c.promotableReplicaLocked(ci.ID, aliveSet)
		default:
			assignment[ci.ID] = proposed[ci.ID]
		}
	}
	c.assignment = assignment
	c.replicas = replicaPlacement(cams, nodes, assignment, c.opts.Replicas)
	camsByNode := make(map[wire.NodeID][]wire.CameraInfo)
	replicasByNode := make(map[wire.NodeID][]wire.CameraInfo)
	for _, ci := range cams {
		n := assignment[ci.ID]
		camsByNode[n] = append(camsByNode[n], ci)
		for _, rn := range c.replicas[ci.ID] {
			replicasByNode[rn] = append(replicasByNode[rn], ci)
		}
	}
	// Continuous queries to reinstall.
	conts := make([]*coordContinuous, 0, len(c.continuous))
	for _, cc := range c.continuous {
		conts = append(conts, cc)
	}
	assignRec := c.assignRecordLocked()
	c.mu.Unlock()
	// The new assignment must be majority-durable before any worker acts on
	// it: a minority-partitioned leader pushing an epoch a failover forgets
	// would leave workers fenced on an epoch no future leader knows.
	if !c.haAppendWait(epoch, assignRec) {
		return fmt.Errorf("core: reassign to epoch %d: %w", epoch, ErrNotCommitted)
	}

	var firstErr error
	for _, n := range nodes {
		msg := &wire.AssignCameras{Epoch: epoch, Cameras: camsByNode[n], Replicas: replicasByNode[n]}
		if _, err := c.rpc.Call(ctx, addrByNode[n], msg); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: assign to %s: %w", n, err)
		}
	}
	// Reinstall continuous queries on the owners under the new assignment.
	for _, cc := range conts {
		c.installContinuousOnWorkers(ctx, cc)
	}
	c.reg.Counter("assignments.pushed").Inc()
	return firstErr
}

// Assignment returns a copy of the current camera→worker map.
func (c *Coordinator) Assignment() cluster.Assignment {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(cluster.Assignment, len(c.assignment))
	for k, v := range c.assignment {
		out[k] = v
	}
	return out
}

// promotableReplicaLocked returns a live replica holder for a camera, or ""
// when none exists. Caller holds c.mu.
func (c *Coordinator) promotableReplicaLocked(cam uint32, alive map[wire.NodeID]bool) wire.NodeID {
	for _, n := range c.replicas[cam] {
		if alive[n] {
			return n
		}
	}
	return ""
}

// replicaPlacement chooses, per camera, `count` standby nodes distinct from
// the primary, by rendezvous hashing — stable placement under membership
// churn, deterministic across coordinator restarts.
func replicaPlacement(cams []wire.CameraInfo, nodes []wire.NodeID, primary cluster.Assignment, count int) map[uint32][]wire.NodeID {
	out := make(map[uint32][]wire.NodeID, len(cams))
	if count <= 0 || len(nodes) < 2 {
		return out
	}
	if count > len(nodes)-1 {
		count = len(nodes) - 1
	}
	for _, ci := range cams {
		type scored struct {
			node  wire.NodeID
			score uint64
		}
		cands := make([]scored, 0, len(nodes))
		for _, n := range nodes {
			if n == primary[ci.ID] {
				continue
			}
			h := fnv.New64a()
			var idb [4]byte
			idb[0], idb[1], idb[2], idb[3] = byte(ci.ID>>24), byte(ci.ID>>16), byte(ci.ID>>8), byte(ci.ID)
			h.Write(idb[:])
			h.Write([]byte(n))
			cands = append(cands, scored{n, h.Sum64()})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
			return cands[i].node < cands[j].node
		})
		picked := make([]wire.NodeID, 0, count)
		for i := 0; i < count && i < len(cands); i++ {
			picked = append(picked, cands[i].node)
		}
		out[ci.ID] = picked
	}
	return out
}

// RoutesFor returns the serve addresses of every worker that should receive a
// camera's stream: the primary first, then any replicas. Used by ingest
// drivers when replication is enabled.
func (c *Coordinator) RoutesFor(cam uint32) []string {
	c.mu.Lock()
	nodes := make([]wire.NodeID, 0, 1+len(c.replicas[cam]))
	if n, ok := c.assignment[cam]; ok {
		nodes = append(nodes, n)
	}
	nodes = append(nodes, c.replicas[cam]...)
	c.mu.Unlock()
	var out []string
	for _, n := range nodes {
		if m, ok := c.membership.Get(n); ok && m.Alive {
			out = append(out, m.Addr)
		}
	}
	return out
}

// RouteFor returns the serve address of the worker owning a camera.
func (c *Coordinator) RouteFor(cam uint32) (string, bool) {
	c.mu.Lock()
	node, ok := c.assignment[cam]
	c.mu.Unlock()
	if !ok {
		return "", false
	}
	m, ok := c.membership.Get(node)
	if !ok || !m.Alive {
		return "", false
	}
	return m.Addr, true
}

// --- queries ----------------------------------------------------------------

// workersFor returns the serve addresses of live workers owning cameras whose
// FOV could have produced observations in r (grown by the routing slack).
func (c *Coordinator) workersFor(r geo.Rect) []string {
	return addrsOfTargets(c.targetsFor(r))
}

// allWorkers returns every live worker address.
func (c *Coordinator) allWorkers() []string {
	alive := c.membership.Alive()
	out := make([]string, len(alive))
	for i, m := range alive {
		out[i] = m.Addr
	}
	return out
}

// Range runs a distributed spatio-temporal range query and merges the
// results (time order, ObsID tie-break).
func (c *Coordinator) Range(ctx context.Context, rect geo.Rect, window wire.TimeWindow, limit int) ([]wire.ResultRecord, error) {
	recs, _, err := c.RangeMeta(ctx, rect, window, limit)
	return recs, err
}

// RangeMeta is Range plus answer-completeness metadata: how many workers the
// query fanned out to, how many answered before their deadline, and how many
// were skipped because their heartbeat sketch proved them empty for this
// rect and window. A completeness below 1.0 means the merged records are a
// partial view taken during a failure or partition; pruned workers do not
// degrade completeness (they provably held nothing).
func (c *Coordinator) RangeMeta(ctx context.Context, rect geo.Rect, window wire.TimeWindow, limit int) ([]wire.ResultRecord, QueryMeta, error) {
	start := c.now()
	defer func() { c.reg.Histogram("query.range").Observe(c.now().Sub(start)) }()
	q := &wire.RangeQuery{QueryID: c.nextQueryID.Add(1), Rect: rect, Window: window, Limit: limit}
	targets, pruned := c.pruneTargets(c.targetsFor(rect), rect, window)
	resps, meta := c.scatter(ctx, addrsOfTargets(targets), q)
	meta.Pruned = pruned
	lists := make([][]wire.ResultRecord, 0, len(resps))
	for _, resp := range resps {
		if rr, ok := resp.(*wire.RangeResult); ok {
			lists = append(lists, rr.Records)
		}
	}
	return mergeSortedRecords(lists, limit), meta, nil
}

// KNN runs the distributed k-nearest query: a two-phase pruned search that
// probes the workers whose heartbeat sketches place them nearest the query
// point first and expands only while the kth-best distance found so far
// cannot rule the next worker out (see knnMeta in scatter.go; with
// DisablePrune every worker returns its local top-k in one broadcast round).
func (c *Coordinator) KNN(ctx context.Context, center geo.Point, window wire.TimeWindow, k int) ([]wire.KNNRecord, error) {
	recs, _, err := c.knnMeta(ctx, center, window, k, 0)
	return recs, err
}

// KNNMeta is KNN plus answer-completeness metadata, mirroring RangeMeta.
func (c *Coordinator) KNNMeta(ctx context.Context, center geo.Point, window wire.TimeWindow, k int) ([]wire.KNNRecord, QueryMeta, error) {
	return c.knnMeta(ctx, center, window, k, 0)
}

// Count runs a distributed count query.
func (c *Coordinator) Count(ctx context.Context, rect geo.Rect, window wire.TimeWindow) (int, error) {
	n, _, err := c.CountMeta(ctx, rect, window)
	return n, err
}

// CountMeta is Count plus answer-completeness metadata; a completeness below
// 1.0 means the total undercounts (some workers never answered).
func (c *Coordinator) CountMeta(ctx context.Context, rect geo.Rect, window wire.TimeWindow) (int, QueryMeta, error) {
	q := &wire.CountQuery{QueryID: c.nextQueryID.Add(1), Rect: rect, Window: window}
	targets, pruned := c.pruneTargets(c.targetsFor(rect), rect, window)
	resps, meta := c.scatter(ctx, addrsOfTargets(targets), q)
	meta.Pruned = pruned
	total := 0
	for _, resp := range resps {
		if cr, ok := resp.(*wire.CountResult); ok {
			total += cr.Count
		}
	}
	return total, meta, nil
}

// Filter runs a distributed multi-predicate query (range × cameras ×
// target); each worker plans its own evaluation order adaptively. The merged
// records come back in time order with the per-worker plans attached.
func (c *Coordinator) Filter(ctx context.Context, q wire.FilterQuery) ([]wire.ResultRecord, map[string]int, error) {
	q.QueryID = c.nextQueryID.Add(1)
	var merged []wire.ResultRecord
	plans := make(map[string]int)
	targets, _ := c.pruneTargets(c.targetsFor(q.Rect), q.Rect, q.Window)
	resps, _ := c.scatter(ctx, addrsOfTargets(targets), &q)
	for _, resp := range resps {
		if fr, ok := resp.(*wire.FilterResult); ok {
			merged = append(merged, fr.Records...)
			plans[fr.Plan]++
		}
	}
	sortWireRecords(merged)
	if q.Limit > 0 && len(merged) > q.Limit {
		merged = merged[:q.Limit]
	}
	return merged, plans, nil
}

// Heatmap runs a distributed density aggregation: each relevant worker bins
// its observations into cells of the given size; the coordinator sums the
// partial maps. Cells are returned sorted by (CY, CX) for stable output.
func (c *Coordinator) Heatmap(ctx context.Context, rect geo.Rect, window wire.TimeWindow, cellSize float64) ([]wire.HeatCell, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("core: heatmap cell size must be positive")
	}
	q := &wire.HeatmapQuery{QueryID: c.nextQueryID.Add(1), Rect: rect, Window: window, CellSize: cellSize}
	acc := make(map[[2]int32]int64)
	targets, _ := c.pruneTargets(c.targetsFor(rect), rect, window)
	resps, _ := c.scatter(ctx, addrsOfTargets(targets), q)
	for _, resp := range resps {
		hr, ok := resp.(*wire.HeatmapResult)
		if !ok {
			continue
		}
		for _, cell := range hr.Cells {
			acc[[2]int32{cell.CX, cell.CY}] += cell.Count
		}
	}
	out := make([]wire.HeatCell, 0, len(acc))
	for key, n := range acc {
		out = append(out, wire.HeatCell{CX: key[0], CY: key[1], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CY != out[j].CY {
			return out[i].CY < out[j].CY
		}
		return out[i].CX < out[j].CX
	})
	return out, nil
}

// Trajectory fetches a target's observation history. Target IDs are
// worker-namespaced, so exactly one worker holds each; the query still fans
// out because the coordinator does not track the namespace map.
func (c *Coordinator) Trajectory(ctx context.Context, targetID uint64, window wire.TimeWindow) ([]wire.ResultRecord, error) {
	q := &wire.TrajectoryQuery{QueryID: c.nextQueryID.Add(1), TargetID: targetID, Window: window}
	var merged []wire.ResultRecord
	resps, _ := c.scatter(ctx, c.allWorkers(), q)
	for _, resp := range resps {
		if tr, ok := resp.(*wire.TrajectoryResult); ok {
			merged = append(merged, tr.Records...)
		}
	}
	sortWireRecords(merged)
	return merged, nil
}

// scatter fans a request out to workers concurrently through the resilience
// layer and collects the non-error responses, reporting how many of the asked
// workers actually answered. Unreachable workers degrade the answer rather
// than failing it (availability over completeness during partitions); callers
// that care inspect the returned QueryMeta.
func (c *Coordinator) scatter(ctx context.Context, addrs []string, req any) ([]any, QueryMeta) {
	meta := QueryMeta{Asked: len(addrs)}
	if len(addrs) == 0 {
		return nil, meta
	}
	out := make([]any, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			resp, err := c.rpc.Call(ctx, addr, req)
			if err != nil {
				c.reg.Counter("scatter.errors").Inc()
				return
			}
			if c.opts.WireAccounting {
				// Re-marshal the response so bytes-on-wire is measurable
				// even on in-process transports (experiment R16). The
				// encoding is only counted, never kept, so it goes through
				// a pooled buffer.
				buf := wire.BorrowBuf()
				if b, merr := wire.AppendMarshal(buf.B[:0], wire.KindOf(resp), resp); merr == nil {
					c.reg.Counter("scatter.resp_bytes").Add(int64(len(b)))
					buf.B = b
				}
				buf.Release()
			}
			out[i] = resp
		}(i, addr)
	}
	wg.Wait()
	var ok []any
	for _, r := range out {
		if r != nil {
			ok = append(ok, r)
		}
	}
	meta.Answered = len(ok)
	c.reg.Counter("scatter.asked").Add(int64(meta.Asked))
	c.reg.Counter("scatter.answered").Add(int64(meta.Answered))
	if meta.Answered < meta.Asked {
		c.reg.Counter("scatter.partial").Inc()
	}
	c.reg.Gauge("scatter.completeness_pm").Set(int64(meta.Completeness() * 1000))
	return ok, meta
}

func sortWireRecords(rs []wire.ResultRecord) {
	sort.Slice(rs, func(i, j int) bool {
		if !rs[i].Time.Equal(rs[j].Time) {
			return rs[i].Time.Before(rs[j].Time)
		}
		return rs[i].ObsID < rs[j].ObsID
	})
}

// --- continuous queries ------------------------------------------------------

// InstallContinuous registers a standing query; incremental updates arrive on
// the returned channel until RemoveContinuous. The channel is buffered;
// updates are dropped (and counted) if the subscriber lags.
func (c *Coordinator) InstallContinuous(ctx context.Context, kind wire.ContinuousKind, rect geo.Rect, threshold int) (uint64, <-chan wire.ContinuousUpdate, error) {
	id := c.nextQueryID.Add(1)
	cc := &coordContinuous{
		queryID: id,
		install: wire.InstallContinuous{QueryID: id, Kind: kind, Rect: rect, Threshold: threshold},
		ch:      make(chan wire.ContinuousUpdate, 1024),
		workers: make(map[wire.NodeID]bool),
	}
	c.mu.Lock()
	c.continuous[id] = cc
	c.mu.Unlock()
	c.installContinuousOnWorkers(ctx, cc)
	c.reg.Gauge("continuous.active").Set(int64(len(c.continuous)))
	return id, cc.ch, nil
}

func (c *Coordinator) installContinuousOnWorkers(ctx context.Context, cc *coordContinuous) {
	addrs := c.workersFor(cc.install.Rect)
	for _, addr := range addrs {
		if _, err := c.rpc.Call(ctx, addr, &cc.install); err != nil {
			c.reg.Counter("continuous.install_errors").Inc()
		}
	}
}

// RemoveContinuous uninstalls a standing query and closes its channel.
func (c *Coordinator) RemoveContinuous(ctx context.Context, id uint64) error {
	c.mu.Lock()
	cc, ok := c.continuous[id]
	if ok {
		delete(c.continuous, id)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: continuous query %d not found", id)
	}
	for _, addr := range c.allWorkers() {
		c.rpc.Call(ctx, addr, &wire.RemoveContinuous{QueryID: id}) //nolint:errcheck // best-effort uninstall
	}
	close(cc.ch)
	c.reg.Gauge("continuous.active").Set(int64(len(c.continuous)))
	return nil
}

// AcquireContinuous is the refcounted flavor of InstallContinuous: queries
// with the same canonical shape (kind, normalized rect, threshold) share one
// worker-side install and one update channel. The returned refs is the share
// count after this acquire. Callers must pair every Acquire with exactly one
// ReleaseContinuous; the channel closes when the last reference releases.
func (c *Coordinator) AcquireContinuous(ctx context.Context, kind wire.ContinuousKind, rect geo.Rect, threshold int) (uint64, <-chan wire.ContinuousUpdate, int, error) {
	key := CanonicalContinuousKey(kind, rect, threshold)
	c.mu.Lock()
	if sc, ok := c.shared[key]; ok {
		sc.refs++
		id, ch, refs := sc.id, sc.ch, sc.refs
		c.mu.Unlock()
		c.reg.Counter("continuous.dedup_hits").Inc()
		return id, ch, refs, nil
	}
	c.mu.Unlock()
	// Install outside mu: InstallContinuous RPCs the owning workers.
	id, ch, err := c.InstallContinuous(ctx, kind, rect, threshold)
	if err != nil {
		return 0, nil, 0, err
	}
	c.mu.Lock()
	if sc, ok := c.shared[key]; ok {
		// Lost an install race: fold into the winner and uninstall ours.
		sc.refs++
		winID, winCh, refs := sc.id, sc.ch, sc.refs
		c.mu.Unlock()
		c.RemoveContinuous(ctx, id) //nolint:errcheck // best-effort uninstall of the losing duplicate
		c.reg.Counter("continuous.dedup_hits").Inc()
		return winID, winCh, refs, nil
	}
	c.shared[key] = &sharedContinuous{id: id, ch: ch, refs: 1}
	c.sharedKey[id] = key
	c.mu.Unlock()
	c.reg.Counter("continuous.dedup_installs").Inc()
	return id, ch, 1, nil
}

// ReleaseContinuous drops one reference on a shared install. The last
// release uninstalls the query from the workers and closes the channel; the
// returned count is the references remaining.
func (c *Coordinator) ReleaseContinuous(ctx context.Context, id uint64) (int, error) {
	c.mu.Lock()
	key, ok := c.sharedKey[id]
	if !ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("core: continuous query %d is not a shared install", id)
	}
	sc := c.shared[key]
	sc.refs--
	if sc.refs > 0 {
		refs := sc.refs
		c.mu.Unlock()
		return refs, nil
	}
	delete(c.shared, key)
	delete(c.sharedKey, id)
	c.mu.Unlock()
	return 0, c.RemoveContinuous(ctx, id)
}

// SharedContinuousCount reports the live shared installs (test/metric hook).
func (c *Coordinator) SharedContinuousCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.shared)
}

func (c *Coordinator) onContinuousUpdate(m *wire.ContinuousUpdate) {
	c.mu.Lock()
	cc, ok := c.continuous[m.QueryID]
	c.mu.Unlock()
	if !ok {
		return
	}
	select {
	case cc.ch <- *m:
	default:
		c.reg.Counter("continuous.dropped").Inc()
	}
}

// --- tracking ----------------------------------------------------------------

// StartTrack begins cross-camera tracking of a target sighted at the given
// camera with the given appearance. Updates stream on the returned channel.
func (c *Coordinator) StartTrack(ctx context.Context, cam uint32, feature []float32, at time.Time) (uint64, <-chan wire.TrackUpdate, error) {
	addr, ok := c.RouteFor(cam)
	if !ok {
		return 0, nil, fmt.Errorf("core: camera %d has no live owner", cam)
	}
	id := c.nextTrackID.Add(1)
	tr := &coordTrack{
		trackID:    id,
		lastCamera: cam,
		feature:    feature,
		lastSeen:   at,
		ch:         make(chan wire.TrackUpdate, 1024),
	}
	c.mu.Lock()
	node := c.assignment[cam]
	tr.owner = node
	c.tracks[id] = tr
	c.mu.Unlock()
	if _, err := c.rpc.Call(ctx, addr, &wire.TrackStart{TrackID: id, Camera: cam, Feature: feature, Time: at}); err != nil {
		c.mu.Lock()
		delete(c.tracks, id)
		c.mu.Unlock()
		close(tr.ch)
		return 0, nil, fmt.Errorf("core: track start: %w", err)
	}
	c.mu.Lock()
	rec := trackRecordOf(tr)
	c.mu.Unlock()
	// Ack only once a majority holds the track record; otherwise unwind so
	// the client never acts on a track a failover would forget.
	if !c.haAppendWait(c.Epoch(), rec) {
		c.mu.Lock()
		delete(c.tracks, id)
		c.mu.Unlock()
		close(tr.ch)
		c.rpc.Call(ctx, addr, &wire.TrackStop{TrackID: id}) //nolint:errcheck // best-effort unwind
		return 0, nil, fmt.Errorf("core: track start: %w", ErrNotCommitted)
	}
	c.reg.Gauge("tracks.active").Set(int64(c.trackCount()))
	return id, tr.ch, nil
}

// StopTrack cancels a track everywhere and closes its channel.
func (c *Coordinator) StopTrack(ctx context.Context, id uint64) error {
	c.mu.Lock()
	tr, ok := c.tracks[id]
	if ok {
		delete(c.tracks, id)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: track %d not found", id)
	}
	for _, addr := range c.allWorkers() {
		c.rpc.Call(ctx, addr, &wire.TrackStop{TrackID: id}) //nolint:errcheck // best-effort cancel
	}
	close(tr.ch)
	// The stop already happened locally and on the workers; the error tells
	// the caller the removal is not majority-durable — a failover may
	// resurrect the registry entry until a later stop or sweep clears it.
	if !c.haAppendWait(c.Epoch(), wire.ControlRecord{Op: wire.OpTrackRemove, Track: wire.TrackRecord{TrackID: id}}) {
		return fmt.Errorf("core: track stop %d: %w", id, ErrNotCommitted)
	}
	c.reg.Gauge("tracks.active").Set(int64(c.trackCount()))
	return nil
}

// TrackInfo reports a track's current owner and handoff count.
func (c *Coordinator) TrackInfo(id uint64) (owner wire.NodeID, lastCamera uint32, handoffs int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tr, ok := c.tracks[id]
	if !ok {
		return "", 0, 0, false
	}
	return tr.owner, tr.lastCamera, tr.handoffs, true
}

// TrackTrajectory returns the stitched cross-camera trajectory of an active
// track, assembled from the position updates its successive owner workers
// pushed. This is the "where has the target been" answer without a
// distributed query: the coordinator already saw every sighting.
func (c *Coordinator) TrackTrajectory(id uint64) (geo.Trajectory, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tr, ok := c.tracks[id]
	if !ok {
		return geo.Trajectory{}, false
	}
	var out geo.Trajectory
	for _, u := range tr.path {
		out.Append(u.Time, u.Pos)
	}
	return out, true
}

func (c *Coordinator) trackCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tracks)
}

func (c *Coordinator) onTrackUpdate(m *wire.TrackUpdate) {
	c.mu.Lock()
	tr, ok := c.tracks[m.TrackID]
	var stale []wire.NodeID
	var owner wire.NodeID
	if ok {
		tr.lastCamera = m.Camera
		tr.lastSeen = m.Time
		tr.lost = m.Lost
		if !m.Lost {
			tr.path = append(tr.path, *m)
			if len(tr.path) > maxTrackPath {
				tr.path = append(tr.path[:0:0], tr.path[len(tr.path)-maxTrackPath:]...)
			}
			// The owner re-sighted the target while a handoff was in flight:
			// the peer primes armed by beginHandoff are now stale. Revoke them
			// before one matches a look-alike and forks the track.
			if len(tr.primed) > 0 {
				for n := range tr.primed {
					stale = append(stale, n)
				}
				tr.primed = nil
				owner = tr.owner
			}
		}
	}
	c.mu.Unlock()
	if !ok {
		return
	}
	select {
	case tr.ch <- *m:
	default:
		c.reg.Counter("tracks.dropped_updates").Inc()
	}
	if len(stale) > 0 {
		c.reg.Counter("handoff.aborted").Inc()
		c.cancelPrimes(context.Background(), m.TrackID, stale, owner)
	}
}

// cancelPrimes sends TrackStop to every node that still has a prime armed for
// the track, except keep (the node that owns or just claimed it). Cancellation
// is best-effort: a node whose prime already expired answers NotFound, which
// is fine — the goal is that no armed prime outlives the handoff it served.
func (c *Coordinator) cancelPrimes(ctx context.Context, trackID uint64, nodes []wire.NodeID, keep wire.NodeID) {
	for _, n := range nodes {
		if n == keep {
			continue
		}
		mem, ok := c.membership.Get(n)
		if !ok || !mem.Alive {
			continue
		}
		if _, err := c.rpc.Call(ctx, mem.Addr, &wire.TrackStop{TrackID: trackID}); err != nil {
			c.reg.Counter("handoff.prime_cancel_errors").Inc()
		} else {
			c.reg.Counter("handoff.primes_canceled").Inc()
		}
	}
}

// onTrackHandoff handles both halves of the handoff protocol:
//   - FromCamera set, ToCamera zero: the owner lost the target; prime the
//     vision-graph neighbors (or everyone, under the broadcast baseline).
//   - ToCamera set: a primed worker re-acquired the target and claims it.
func (c *Coordinator) onTrackHandoff(m *wire.TrackHandoff) {
	if m.ToCamera != 0 {
		c.completeHandoff(m)
		return
	}
	c.beginHandoff(m)
}

func (c *Coordinator) beginHandoff(m *wire.TrackHandoff) {
	c.mu.Lock()
	tr, ok := c.tracks[m.TrackID]
	c.mu.Unlock()
	if !ok {
		return
	}
	c.reg.Counter("handoff.begun").Inc()

	var camIDs []uint32
	if c.opts.BroadcastHandoff {
		for _, cid := range c.network.IDs() {
			camIDs = append(camIDs, uint32(cid))
		}
	} else {
		for _, cid := range c.network.Neighbors(camera.ID(m.FromCamera)) {
			camIDs = append(camIDs, uint32(cid))
		}
	}
	if len(camIDs) == 0 {
		return
	}
	// Group prime targets by owning worker.
	c.mu.Lock()
	byNode := make(map[wire.NodeID][]uint32)
	for _, cid := range camIDs {
		if n, ok := c.assignment[cid]; ok {
			byNode[n] = append(byNode[n], cid)
		}
	}
	c.mu.Unlock()
	prime := &wire.TrackPrime{
		TrackID: m.TrackID,
		Feature: tr.feature,
		Expires: m.Time.Add(c.opts.PrimeTTL),
	}
	ctx := context.Background()
	var primed []wire.NodeID
	for node, cams := range byNode {
		mem, ok := c.membership.Get(node)
		if !ok || !mem.Alive {
			continue
		}
		p := *prime
		p.Cameras = cams
		if _, err := c.rpc.Call(ctx, mem.Addr, &p); err != nil {
			c.reg.Counter("handoff.prime_errors").Inc()
		} else {
			c.reg.Counter("handoff.primes_sent").Inc()
		}
		// Recorded even when the RPC errored: a timed-out prime may still
		// have armed on the peer, and cancellation is idempotent.
		primed = append(primed, node)
	}
	c.mu.Lock()
	if cur, ok := c.tracks[m.TrackID]; ok && cur == tr {
		if tr.primed == nil {
			tr.primed = make(map[wire.NodeID]bool, len(primed))
		}
		for _, n := range primed {
			tr.primed[n] = true
		}
	}
	c.mu.Unlock()
}

func (c *Coordinator) completeHandoff(m *wire.TrackHandoff) {
	c.mu.Lock()
	tr, ok := c.tracks[m.TrackID]
	var prevOwner, newOwner wire.NodeID
	var prevCamera uint32
	var prevSeen time.Time
	var losers []wire.NodeID
	if ok {
		prevOwner = tr.owner
		prevCamera = tr.lastCamera
		prevSeen = tr.lastSeen
		if n, k := c.assignment[m.ToCamera]; k {
			newOwner = n
			tr.owner = n
		}
		tr.lastCamera = m.ToCamera
		tr.lastSeen = m.Time
		tr.feature = m.Feature
		tr.handoffs++
		// The race is settled: every peer that was primed but did not claim
		// still has a live prime that could match a look-alike later. The
		// previous owner is excluded here because the ownership-move path
		// below already stops its resident copy (and its prime with it).
		for n := range tr.primed {
			if n != prevOwner {
				losers = append(losers, n)
			}
		}
		tr.primed = nil
	}
	var rec wire.ControlRecord
	if ok {
		rec = trackRecordOf(tr)
	}
	c.mu.Unlock()
	if !ok {
		return
	}
	// Deliberately async (no majority wait): the handoff already happened on
	// the workers, so refusing the push could not undo it, and blocking the
	// worker's push RPC on replication would stall the data plane. A record
	// lost to failover leaves a stale owner the next sweep re-recovers.
	c.haAppend(c.Epoch(), rec)
	c.reg.Counter("handoff.completed").Inc()
	// Record the learned transit edge for the vision graph.
	if prevCamera != 0 && prevCamera != m.ToCamera {
		//nolint:errcheck // learning is best-effort
		c.network.ObserveTransit(camera.ID(prevCamera), camera.ID(m.ToCamera), m.Time.Sub(prevSeen).Seconds())
	}
	// Stop the previous owner's resident copy when ownership moved.
	if prevOwner != "" && prevOwner != newOwner {
		if mem, k := c.membership.Get(prevOwner); k && mem.Alive {
			c.rpc.Call(context.Background(), mem.Addr, &wire.TrackStop{TrackID: m.TrackID}) //nolint:errcheck // best-effort
		}
	}
	// Revoke the losing primes (the claimant consumed its own on claim).
	c.cancelPrimes(context.Background(), m.TrackID, losers, newOwner)
}

// --- failure handling ---------------------------------------------------------

// Sweep checks worker liveness; newly dead workers trigger reassignment of
// their cameras and re-priming of their resident tracks. Returns the members
// that died in this sweep. Orphaned tracks — owner not alive — are retried on
// every sweep, not just the one where the owner died, so a failed recovery
// RPC heals on the next tick instead of stranding the track.
func (c *Coordinator) Sweep(ctx context.Context, now time.Time) []cluster.Member {
	if c.IsStandby() {
		// No heartbeats flow to a standby; sweeping its replicated
		// membership view would only declare a healthy fleet dead.
		return nil
	}
	died := c.membership.Sweep(now)
	if len(died) > 0 {
		c.reg.Counter("workers.died").Add(int64(len(died)))
		if err := c.Reassign(ctx); err != nil {
			c.reg.Counter("reassign.errors").Inc()
		}
	}
	// Tracks whose owner is not alive: restart them at their last camera's
	// new owner using the last known appearance. Liveness, epoch, and each
	// orphan's replacement owner are snapshotted at one instant per pass:
	// the recovery RPC goes to exactly the snapshotted node, and the
	// ownership commit re-validates the epoch so a Reassign racing the pass
	// invalidates the commit instead of recording an owner read from a
	// superseded assignment (the old code re-read c.assignment after the
	// RPC, which could disagree with the address the RPC went to).
	aliveMembers := c.membership.Alive()
	alive := make(map[wire.NodeID]bool, len(aliveMembers))
	addrOf := make(map[wire.NodeID]string, len(aliveMembers))
	for _, m := range aliveMembers {
		alive[m.Node] = true
		addrOf[m.Node] = m.Addr
	}
	type orphanPlan struct {
		tr   *coordTrack
		node wire.NodeID
		addr string
		msg  *wire.TrackStart
	}
	c.mu.Lock()
	epoch := c.epoch
	var plans []orphanPlan
	for _, tr := range c.tracks {
		if alive[tr.owner] {
			continue
		}
		node, ok := c.assignment[tr.lastCamera]
		if !ok || !alive[node] {
			continue
		}
		plans = append(plans, orphanPlan{
			tr:   tr,
			node: node,
			addr: addrOf[node],
			msg:  &wire.TrackStart{TrackID: tr.trackID, Camera: tr.lastCamera, Feature: tr.feature, Time: tr.lastSeen},
		})
	}
	c.mu.Unlock()
	for _, p := range plans {
		if _, err := c.rpc.Call(ctx, p.addr, p.msg); err != nil {
			// Ownership is committed only once the replacement worker has
			// accepted the track. On failure the record keeps its dead owner,
			// so the next sweep sees it as orphaned and retries, instead of
			// the track pointing at a worker that never heard of it.
			c.reg.Counter("tracks.recover_errors").Inc()
			continue
		}
		var rec wire.ControlRecord
		committed := false
		c.mu.Lock()
		if c.tracks[p.tr.trackID] == p.tr && c.epoch == epoch {
			p.tr.owner = p.node
			rec = trackRecordOf(p.tr)
			committed = true
		}
		c.mu.Unlock()
		if committed {
			// Async like the handoff path: the recovery is leader-internal
			// (no client to ack), and a record lost to failover just means
			// the next leader's sweep recovers the same orphan again.
			c.haAppend(epoch, rec)
			c.reg.Counter("tracks.recovered").Inc()
		}
	}
	if len(died) == 0 {
		return nil
	}
	return died
}

// Alive returns the live membership view.
func (c *Coordinator) Alive() []cluster.Member { return c.membership.Alive() }

// WorkerStats fetches metric snapshots from every live worker.
func (c *Coordinator) WorkerStats(ctx context.Context) []wire.StatsResult {
	var out []wire.StatsResult
	resps, _ := c.scatter(ctx, c.allWorkers(), &wire.StatsQuery{})
	for _, resp := range resps {
		if sr, ok := resp.(*wire.StatsResult); ok {
			out = append(out, *sr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// StatsSnapshot mirrors the transport-layer RPC counters into the registry
// and returns a full snapshot — the single source for cluster stats and the
// /metrics exposition endpoint.
func (c *Coordinator) StatsSnapshot() metrics.RegistrySnapshot {
	mirrorRPCStats(c.reg, c.rpc.Stats())
	return c.reg.Snapshot()
}

// Ready reports whether the coordinator can usefully serve: at least one
// worker registered and a strict majority of registered workers alive. A nil
// return means ready; the error explains what is missing otherwise.
func (c *Coordinator) Ready() error {
	if c.ha != nil {
		c.ha.mu.Lock()
		standby := c.ha.standby
		expired := c.ha.lease.Expired(c.now())
		c.ha.mu.Unlock()
		if standby {
			// A standby is ready while its leader's lease is fresh: it is
			// replicating and can serve degraded reads. A lapsed lease means
			// a failover is in progress.
			if expired {
				return errors.New("standby: leader lease expired, failover in progress")
			}
			return nil
		}
	}
	all := c.membership.All()
	if len(all) == 0 {
		return errors.New("no workers registered")
	}
	alive := 0
	for _, m := range all {
		if m.Alive {
			alive++
		}
	}
	if alive*2 <= len(all) {
		return fmt.Errorf("quorum lost: %d/%d workers alive", alive, len(all))
	}
	return nil
}

// ClusterStats scrapes every live worker's metric snapshot (reusing the
// WorkerStats scatter) and merges it with the membership view and the
// coordinator's own registry into one per-worker result, one row per
// registered member — dead or unresponsive workers appear with
// Scraped=false so a dashboard shows the hole instead of silently
// dropping the row.
func (c *Coordinator) ClusterStats(ctx context.Context) *wire.ClusterStatsResult {
	snap := c.StatsSnapshot()
	role, leader, leaderAddr := c.Role()
	out := &wire.ClusterStatsResult{
		Epoch:      c.Epoch(),
		Role:       role,
		Leader:     leader,
		LeaderAddr: leaderAddr,
		Coordinator: wire.StatsResult{
			Node:       "coordinator",
			Counters:   snap.Counters,
			Gauges:     snap.Gauges,
			Histograms: histStatsOf(snap.Histograms),
		},
	}
	byNode := make(map[wire.NodeID]wire.StatsResult)
	for _, s := range c.WorkerStats(ctx) {
		byNode[s.Node] = s
	}
	members := c.membership.All()
	sort.Slice(members, func(i, j int) bool { return members[i].Node < members[j].Node })
	for _, m := range members {
		e := wire.WorkerStatsEntry{
			Node:    m.Node,
			Addr:    m.Addr,
			Alive:   m.Alive,
			Load:    m.Load,
			Stored:  m.Stored,
			Cameras: m.Cameras,
		}
		if s, ok := byNode[m.Node]; ok {
			e.Scraped = true
			e.Stats = s
		}
		out.Workers = append(out.Workers, e)
	}
	return out
}
