package core

import (
	"testing"
	"time"

	"stcam/internal/camera"
	"stcam/internal/cluster"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

func TestReplicationNoDuplicatesAndNoLoss(t *testing.T) {
	opts := Options{Replicas: 1, HeartbeatTimeout: 50 * time.Millisecond}
	c := newTestCluster(t, 3, opts)
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 3), 50); err != nil {
		t.Fatal(err)
	}
	// Every camera must have a primary route plus one replica route.
	for cam := range c.Coordinator.Assignment() {
		routes := c.Coordinator.RoutesFor(cam)
		if len(routes) != 2 {
			t.Fatalf("camera %d has %d routes, want 2", cam, len(routes))
		}
		if routes[0] == routes[1] {
			t.Fatalf("camera %d replica equals primary", cam)
		}
	}

	// Ingest one observation per camera via the replica-aware Ingester.
	ing := NewIngester(c.Coordinator, c.Transport)
	var dets []vision.Detection
	cams := gridCams(world1, 3)
	for i, ci := range cams {
		dets = append(dets, vision.Detection{
			ObsID: uint64(i + 1), Camera: camera.ID(ci.ID), Pos: ci.Pos,
			Time: simT0.Add(time.Duration(i) * time.Second),
		})
	}
	accepted, err := ing.IngestDetections(ctx, dets)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 9 {
		t.Fatalf("accepted = %d", accepted)
	}
	// Replicated copies exist: total stored across workers exceeds 9.
	totalStored := 0
	for _, w := range c.Workers {
		totalStored += w.Store().Len()
	}
	if totalStored != 18 {
		t.Fatalf("total stored = %d, want 18 (9 primaries + 9 replicas)", totalStored)
	}
	// But queries see each observation exactly once.
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	recs, err := c.Coordinator.Range(ctx, world1, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 9 {
		t.Fatalf("range = %d records, want 9 (no duplicates)", len(recs))
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.ObsID] {
			t.Fatalf("duplicate ObsID %d in results", r.ObsID)
		}
		seen[r.ObsID] = true
	}
	if n, _ := c.Coordinator.Count(ctx, world1, window); n != 9 {
		t.Errorf("count = %d, want 9", n)
	}
	nn, err := c.Coordinator.KNN(ctx, world1.Center(), window, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 9 {
		t.Fatalf("knn = %d, want 9", len(nn))
	}
	for i := 1; i < len(nn); i++ {
		if nn[i].ObsID == nn[i-1].ObsID {
			t.Fatal("duplicate neighbor from replica")
		}
	}

	// Kill a worker: with replication, history completeness stays 1.0.
	dead := c.Workers[0]
	c.Transport.(*cluster.InProc).SetBlocked(dead.Addr(), true)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, w := range c.Workers[1:] {
			w.SendHeartbeat(ctx) //nolint:errcheck // best-effort in test loop
		}
		if died := c.Coordinator.Sweep(ctx, time.Now()); len(died) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	recs, err = c.Coordinator.Range(ctx, world1, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 9 {
		t.Errorf("post-failure range = %d records, want 9 (replicas promoted)", len(recs))
	}
	seen = map[uint64]bool{}
	for _, r := range recs {
		if seen[r.ObsID] {
			t.Fatalf("duplicate ObsID %d after promotion", r.ObsID)
		}
		seen[r.ObsID] = true
	}
}

func TestReplicationDisabledByDefault(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	for cam := range c.Coordinator.Assignment() {
		if routes := c.Coordinator.RoutesFor(cam); len(routes) != 1 {
			t.Fatalf("camera %d has %d routes without replication", cam, len(routes))
		}
	}
}

func TestReplicationSingleWorkerNoReplicas(t *testing.T) {
	// One worker cannot host a distinct replica; placement must not assign
	// the primary as its own standby.
	c := newTestCluster(t, 1, Options{Replicas: 2})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	for cam := range c.Coordinator.Assignment() {
		if routes := c.Coordinator.RoutesFor(cam); len(routes) != 1 {
			t.Fatalf("camera %d has %d routes on a 1-worker cluster", cam, len(routes))
		}
	}
}

// detectionsAtCameras builds one detection per camera at its mount point.
func detectionsAtCameras(cams []wire.CameraInfo) []vision.Detection {
	out := make([]vision.Detection, len(cams))
	for i, ci := range cams {
		out[i] = vision.Detection{
			ObsID: uint64(i + 1), Camera: camera.ID(ci.ID), Pos: ci.Pos,
			Time: simT0.Add(time.Duration(i) * time.Second),
		}
	}
	return out
}
