package core

import (
	"stcam/internal/cluster"
	"stcam/internal/metrics"
)

// resilientFor wraps a node's transport in the resilience layer for
// outbound calls, mirroring the retry/timeout/breaker counters into the
// node's metrics registry. A transport that is already Resilient is used
// as-is, so a caller can supply its own policy (and avoid double-wrapping).
func resilientFor(tr cluster.Transport, opts Options, reg *metrics.Registry) *cluster.Resilient {
	if r, ok := tr.(*cluster.Resilient); ok {
		return r
	}
	return cluster.NewResilient(tr, opts.rpcPolicy(), cluster.WithRPCMetrics(reg))
}

// QueryMeta reports how complete one scatter-gather answer is.
type QueryMeta struct {
	Asked    int // workers the query fanned out to
	Answered int // workers that answered before their deadline
}

// Completeness returns Answered/Asked in [0, 1]; an empty fan-out is
// complete by definition.
func (m QueryMeta) Completeness() float64 {
	if m.Asked == 0 {
		return 1
	}
	return float64(m.Answered) / float64(m.Asked)
}
