package core

import (
	"stcam/internal/cluster"
	"stcam/internal/metrics"
	"stcam/internal/wire"
)

// resilientFor wraps a node's transport in the resilience layer for
// outbound calls, mirroring the retry/timeout/breaker counters into the
// node's metrics registry. A transport that is already Resilient is used
// as-is, so a caller can supply its own policy (and avoid double-wrapping).
func resilientFor(tr cluster.Transport, opts Options, reg *metrics.Registry) *cluster.Resilient {
	if r, ok := tr.(*cluster.Resilient); ok {
		return r
	}
	return cluster.NewResilient(tr, opts.rpcPolicy(), cluster.WithRPCMetrics(reg), cluster.WithClock(opts.Clock))
}

// QueryMeta reports how complete one scatter-gather answer is. Pruned
// workers are not counted in Asked: their heartbeat sketch proved they held
// nothing for the query, so skipping them loses no data and does not degrade
// completeness.
type QueryMeta struct {
	Asked    int // workers the query fanned out to
	Answered int // workers that answered before their deadline
	Pruned   int // workers skipped because their sketch proved them empty
}

// Completeness returns Answered/Asked in [0, 1]; an empty fan-out is
// complete by definition.
func (m QueryMeta) Completeness() float64 {
	if m.Asked == 0 {
		return 1
	}
	return float64(m.Answered) / float64(m.Asked)
}

// histStatsOf converts registry histogram snapshots into their wire
// summaries (durations as nanoseconds), for StatsResult payloads.
func histStatsOf(hists map[string]metrics.HistSnapshot) map[string]wire.HistStats {
	if len(hists) == 0 {
		return nil
	}
	out := make(map[string]wire.HistStats, len(hists))
	for name, s := range hists {
		out[name] = wire.HistStats{
			Count: s.Count,
			Sum:   int64(s.Sum),
			Min:   int64(s.Min),
			Max:   int64(s.Max),
			P50:   int64(s.P50),
			P95:   int64(s.P95),
			P99:   int64(s.P99),
		}
	}
	return out
}

// mirrorRPCStats copies the resilience-layer transport counters into the
// registry as gauges, so one stats scrape (or /metrics scrape) carries the
// RPC picture alongside the node's own counters. Retries, timeouts, and
// breaker transitions are already mirrored as counters at event time by the
// Resilient layer itself; this adds the transport-level call/error/byte
// totals.
func mirrorRPCStats(reg *metrics.Registry, s cluster.TransportStats) {
	reg.Gauge("rpc.calls").Set(s.Calls)
	reg.Gauge("rpc.errors").Set(s.Errors)
	reg.Gauge("rpc.bytes_out").Set(s.BytesOut)
	reg.Gauge("rpc.bytes_in").Set(s.BytesIn)
	// In-flight is already tracked live as the rpc.inflight gauge by the
	// Resilient layer; mirroring s.InFlight here would just duplicate it.
}
