package core

import (
	"testing"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/geo"
	"stcam/internal/stindex"
	"stcam/internal/wire"
)

func summaryHasCell(ws *wire.WorkerSummary, cx, cy int32) bool {
	for _, c := range ws.Cells {
		if c.CX == cx && c.CY == cy {
			return true
		}
	}
	return false
}

// TestSummaryCacheInvalidatedByContentChange is the regression for the stale
// heartbeat sketch: the summary cache used to be keyed on
// (epoch, store.Len(), store.Latest()), so a store that shrank via eviction
// and regrew to the same record count with the same latest timestamp — but
// different spatial content — kept serving the old sketch, steering the
// coordinator's scatter planner at cells that no longer hold data. The cache
// is now keyed on the store's generation counter, which advances on every
// insert, seal, and eviction.
func TestSummaryCacheInvalidatedByContentChange(t *testing.T) {
	w := NewWorker("w01", "worker-01", "coord", cluster.NewInProc(), Options{})
	base := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	rec := func(obs uint64, x, y float64, d time.Duration) stindex.Record {
		return stindex.Record{ObsID: obs, TargetID: obs, Camera: 1, Pos: geo.Pt(x, y), Time: base.Add(d)}
	}
	w.store.Insert(rec(1, 10, 10, 0))
	w.store.Insert(rec(2, 510, 510, 10*time.Second))

	w.mu.Lock()
	s1 := w.summaryLocked()
	cached := w.summaryLocked()
	w.mu.Unlock()
	if cached != s1 {
		t.Fatal("unchanged store rebuilt the summary instead of serving the cache")
	}
	if !summaryHasCell(s1, 0, 0) {
		t.Fatalf("initial summary missing cell (0,0): %+v", s1.Cells)
	}

	// Shrink by one record, then regrow to the same Len with an older
	// timestamp so Latest is unchanged too — only the content differs.
	if removed := w.store.EvictBefore(base.Add(time.Second)); removed != 1 {
		t.Fatalf("EvictBefore removed %d, want 1", removed)
	}
	w.store.Insert(rec(3, 1010, 1010, 5*time.Second))
	if w.store.Len() != 2 || !w.store.Latest().Equal(base.Add(10*time.Second)) {
		t.Fatalf("scenario broken: len=%d latest=%v", w.store.Len(), w.store.Latest())
	}

	w.mu.Lock()
	s2 := w.summaryLocked()
	w.mu.Unlock()
	if s2 == s1 {
		t.Fatal("summary cache served a stale sketch after shrink-then-regrow")
	}
	if summaryHasCell(s2, 0, 0) {
		t.Fatalf("rebuilt summary still claims evicted cell (0,0): %+v", s2.Cells)
	}
	if !summaryHasCell(s2, 5, 5) {
		t.Fatalf("rebuilt summary missing new cell (5,5): %+v", s2.Cells)
	}
	if got := w.reg.Counter("summary.rebuilds").Value(); got != 2 {
		t.Fatalf("summary.rebuilds = %d, want 2", got)
	}
}
