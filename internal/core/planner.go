package core

import (
	"stcam/internal/geo"
	"stcam/internal/stindex"
	"stcam/internal/wire"
)

// Multi-predicate query planning. A FilterQuery combines a spatial range with
// target and camera-set predicates; the worker has two physical plans:
//
//   - "spatial": walk the spatio-temporal index for the rectangle, then
//     filter by target/cameras. Cost ∝ spatial selectivity of the rectangle.
//   - "target": walk the per-target history index, then filter by
//     rectangle/cameras. Cost ∝ the target's observation count.
//
// The planner compares the two estimates: spatial selectivity comes from the
// worker's feedback-driven ST-histogram (refined by every executed range
// query — the "queries as light" design), target cardinality from the history
// index itself. This is the adaptive predicate-ordering machinery the
// spatio-temporal stream-optimization literature motivates, applied at the
// worker level where the statistics live.

const plannerHistogramGrid = 16

// histogramFor lazily builds the worker's selectivity histogram over its
// camera territory. Caller holds w.mu.
func (w *Worker) histogramLocked() *stindex.STHistogram {
	if w.hist != nil {
		return w.hist
	}
	world := w.worldGuess()
	if world.IsEmpty() {
		return nil
	}
	w.hist = stindex.NewSTHistogram(world.Expand(routeSlack), plannerHistogramGrid, plannerHistogramGrid)
	return w.hist
}

// feedbackRange reports an executed range query's actual selectivity to the
// histogram. Selectivity is measured against the store size so estimates
// translate directly to expected records scanned.
func (w *Worker) feedbackRange(rect geo.Rect, matched, stored int) {
	if stored == 0 {
		return
	}
	w.mu.Lock()
	h := w.histogramLocked()
	w.mu.Unlock()
	if h == nil {
		return
	}
	h.Feedback(rect, float64(matched)/float64(stored))
}

// planFilter chooses the evaluation order for a multi-predicate query,
// returning "spatial" or "target".
func (w *Worker) planFilter(m *wire.FilterQuery) string {
	if m.ForcePlan == "spatial" || (m.ForcePlan == "target" && m.TargetID != 0) {
		return m.ForcePlan
	}
	if m.TargetID == 0 {
		return "spatial"
	}
	targetCost := float64(w.store.TargetCount(m.TargetID))
	if targetCost == 0 {
		return "target" // provably empty: the cheapest possible plan
	}
	stored := float64(w.store.Len())
	w.mu.Lock()
	h := w.histogramLocked()
	w.mu.Unlock()
	spatialCost := stored // no statistics → assume full scan
	if h != nil {
		spatialCost = h.Estimate(m.Rect) * stored
	}
	if targetCost <= spatialCost {
		return "target"
	}
	return "spatial"
}

// onFilter executes a multi-predicate query with the chosen plan.
func (w *Worker) onFilter(m *wire.FilterQuery) (any, error) {
	start := w.now()
	plan := w.planFilter(m)
	camSet := make(map[uint32]bool, len(m.Cameras))
	for _, c := range m.Cameras {
		camSet[c] = true
	}
	match := func(r stindex.Record) bool {
		if m.TargetID != 0 && r.TargetID != m.TargetID {
			return false
		}
		if len(camSet) > 0 && !camSet[r.Camera] {
			return false
		}
		return true
	}

	var recs []stindex.Record
	switch plan {
	case "target":
		for _, r := range w.store.TargetHistory(m.TargetID, m.Window.From, m.Window.To) {
			if m.Rect.Contains(r.Pos) && match(r) {
				recs = append(recs, r)
			}
		}
	default:
		scanned := w.store.RangeQuery(m.Rect, m.Window.From, m.Window.To)
		// The spatial scan doubles as histogram feedback.
		w.feedbackRange(m.Rect, len(scanned), w.store.Len())
		for _, r := range scanned {
			if match(r) {
				recs = append(recs, r)
			}
		}
	}
	recs = w.filterPrimary(recs)
	truncated := false
	if m.Limit > 0 && len(recs) > m.Limit {
		recs = recs[:m.Limit]
		truncated = true
	}
	w.reg.Histogram("query.filter").Observe(w.now().Sub(start))
	w.reg.Counter("plan." + plan).Inc() //lint:allow metricname cardinality bounded by the three planner strategies (spatial/temporal/target)
	return &wire.FilterResult{
		QueryID:   m.QueryID,
		Records:   toWireRecords(recs),
		Plan:      plan,
		Truncated: truncated,
	}, nil
}
