package core

import (
	"testing"
	"time"

	"stcam/internal/vision"
)

func TestIngesterRefreshesOnEpochChange(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	cams := gridCams(world1, 2)
	if err := c.Coordinator.AddCameras(ctx, cams, 50); err != nil {
		t.Fatal(err)
	}
	ing := NewIngester(c.Coordinator, c.Transport)
	dets := []vision.Detection{{ObsID: 1, Camera: 1, Pos: cams[0].Pos, Time: simT0}}
	if n, err := ing.IngestDetections(ctx, dets); err != nil || n != 1 {
		t.Fatalf("first ingest n=%d err=%v", n, err)
	}
	epochBefore := c.Coordinator.Epoch()
	// Bump the epoch; the ingester must pick up the new routing table on its
	// next batch without errors.
	if err := c.Coordinator.Reassign(ctx); err != nil {
		t.Fatal(err)
	}
	if c.Coordinator.Epoch() == epochBefore {
		t.Fatal("epoch did not change")
	}
	dets[0].ObsID = 2
	dets[0].Time = simT0.Add(time.Second)
	if n, err := ing.IngestDetections(ctx, dets); err != nil || n != 1 {
		t.Fatalf("post-reassign ingest n=%d err=%v", n, err)
	}
}

func TestIngesterSkipsUnknownCameras(t *testing.T) {
	c := newTestCluster(t, 1, Options{})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	ing := NewIngester(c.Coordinator, c.Transport)
	n, err := ing.IngestDetections(ctx, []vision.Detection{
		{ObsID: 1, Camera: 999, Pos: world1.Center(), Time: simT0}, // unregistered
		{ObsID: 2, Camera: 1, Pos: world1.Center(), Time: simT0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("accepted %d, want 1 (unknown camera dropped)", n)
	}
}

func TestClusterWorkerLookup(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	if w := c.Worker("w02"); w == nil || w.ID() != "w02" {
		t.Errorf("Worker(w02) = %v", w)
	}
	if w := c.Worker("missing"); w != nil {
		t.Errorf("Worker(missing) = %v", w)
	}
}

func TestNewLocalClusterValidation(t *testing.T) {
	if _, err := NewLocalCluster(0, nil, Options{}); err == nil {
		t.Error("zero-worker cluster accepted")
	}
}

func TestWorldGuess(t *testing.T) {
	c := newTestCluster(t, 1, Options{})
	w := c.Workers[0]
	if !w.worldGuess().IsEmpty() {
		t.Error("worldGuess before assignment should be empty")
	}
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	g := w.worldGuess()
	if g.IsEmpty() {
		t.Fatal("worldGuess after assignment empty")
	}
	// The guess covers every owned camera's FOV.
	w.mu.Lock()
	for _, cam := range w.cameras {
		if !g.ContainsRect(cam.Bounds()) {
			t.Errorf("worldGuess %v misses camera %d bounds %v", g, cam.ID, cam.Bounds())
		}
	}
	w.mu.Unlock()
}
