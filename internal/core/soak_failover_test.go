package core

import (
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/sim"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// soakFrames returns the simulated frame count for the failover soak: the
// default keeps `make soak-short` around half a minute under -race; the
// nightly long soak raises it via STCAM_SOAK_FRAMES.
func soakFrames() int {
	if v := os.Getenv("STCAM_SOAK_FRAMES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 300
}

// soakSeed returns the chaos seed, overridable via STCAM_SOAK_SEED so a
// failing nightly run can be replayed locally with the same fault schedule.
func soakSeed() int64 {
	if v := os.Getenv("STCAM_SOAK_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 42
}

// TestSoakFailoverLeaderKill is the control-plane chaos soak (experiment
// R19): a three-coordinator HA group with four workers on a seeded FaultyNet,
// with pipelined ingest (drops and duplicates on the ingest links), snapshot
// queries, and a live track all running concurrently while the leader is
// killed mid-run. Meant for `go test -race` (the `make soak-short` gate);
// skipped under -short.
//
// Assertions are the failover contract from the issue:
//   - a surviving standby takes over within two lease intervals;
//   - the tracked target is never permanently lost (the replicated registry
//     still knows it after the takeover);
//   - no observation is double-applied: a complete range answer holds no
//     duplicate ObsID despite transport duplicates and the failover;
//   - the pruned scatter path never over-reports completeness.
func TestSoakFailoverLeaderKill(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped with -short")
	}
	lease := 250 * time.Millisecond
	policy := cluster.Policy{
		MaxAttempts:       4,
		PerAttemptTimeout: 500 * time.Millisecond,
		BaseBackoff:       time.Millisecond,
		MaxBackoff:        8 * time.Millisecond,
	}
	opts := Options{
		Replicas:         1,
		LostAfter:        2 * time.Second,
		RetryPolicy:      policy,
		LeaseInterval:    lease,
		HeartbeatTimeout: 3 * time.Second,
		CallTimeout:      500 * time.Millisecond,
	}
	hc, err := NewHACluster(3, 4, nil, soakSeed(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hc.Stop)
	leader := hc.Coordinators[0]
	if err := leader.AddCameras(ctx, gridCams(world1, 4), 50); err != nil {
		t.Fatal(err)
	}
	for _, w := range hc.Workers {
		w.StartHeartbeats(50 * time.Millisecond)
	}

	// Chaos on the ingest links only: the feed's view of every worker drops
	// and duplicates frames. The control plane's chaos is the leader kill.
	ingestView := hc.Net.View("ingest-feed")
	for _, w := range hc.Workers {
		ingestView.SetProgram(w.Addr(), cluster.FaultProgram{Drop: 0.05, Duplicate: 0.10})
	}

	world, err := sim.NewWorld(sim.Config{
		World:      world1,
		NumObjects: 15,
		Model:      &sim.RandomWaypoint{World: world1, MinSpeed: 30, MaxSpeed: 60},
		Seed:       13,
		FeatureDim: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := vision.NewDetector(vision.DetectorConfig{Seed: 14})
	// The ingester is bound to the original leader for routing. That is the
	// point: assignments are stability-first, so the routes stay valid across
	// the failover and the data plane never stops.
	ing := NewIngesterWith(leader, cluster.NewResilient(ingestView, policy), IngesterOptions{PipelineDepth: 4})
	defer ing.Close()

	var (
		generated  atomic.Int64
		killedAt   atomic.Int64 // unix nanos; 0 while the leader still lives
		done       = make(chan struct{})
		wg         sync.WaitGroup
		queries    atomic.Int64
		incomplete atomic.Int64
	)
	window := wire.TimeWindow{From: simT0, To: simT0.Add(24 * time.Hour)}
	survivors := hc.Coordinators[1:]
	// currentCoord picks a live query/control target: the original leader
	// until the kill, then whichever survivor has taken over (falling back to
	// a degraded-read standby while the group is leaderless).
	currentCoord := func() *Coordinator {
		if killedAt.Load() == 0 {
			return leader
		}
		if c := leaderAmong(survivors); c != nil {
			return c
		}
		return survivors[len(survivors)-1]
	}

	// Ingest: the seeded simulation streamed through the pipeline, paced so
	// the run comfortably straddles the failover window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		world.Run(soakFrames(), leader.Network(), det, func(_ int, dets []vision.Detection) {
			generated.Add(int64(len(dets)))
			if _, err := ing.IngestDetections(ctx, dets); err != nil {
				t.Errorf("soak ingest: %v", err)
			}
			ing.Tick(ctx, world.Now())
			time.Sleep(3 * time.Millisecond)
		})
	}()

	// Queries: range + count against the best coordinator of the moment, with
	// the completeness contract asserted on every answer. While leaderless
	// these hit a standby's replicated state — availability through failover
	// is exactly what this measures.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			qc := currentCoord()
			recs, meta, err := qc.RangeMeta(ctx, world1, window, 0)
			if err != nil {
				t.Errorf("soak range: %v", err)
				return
			}
			queries.Add(1)
			if meta.Answered > meta.Asked {
				t.Errorf("range meta over-reports: answered %d > asked %d", meta.Answered, meta.Asked)
				return
			}
			if meta.Answered == meta.Asked {
				seen := make(map[uint64]bool, len(recs))
				for _, r := range recs {
					if seen[r.ObsID] {
						t.Errorf("complete range answer contains observation %d twice", r.ObsID)
						return
					}
					seen[r.ObsID] = true
				}
				if gen := generated.Load(); int64(len(recs)) > gen {
					t.Errorf("complete range answer has %d records, only %d generated", len(recs), gen)
					return
				}
			} else {
				incomplete.Add(1)
			}
			n, cmeta, err := qc.CountMeta(ctx, world1, window)
			if err != nil {
				t.Errorf("soak count: %v", err)
				return
			}
			queries.Add(1)
			if cmeta.Answered > cmeta.Asked {
				t.Errorf("count meta over-reports: answered %d > asked %d", cmeta.Answered, cmeta.Asked)
				return
			}
			if cmeta.Answered == cmeta.Asked && int64(n) > generated.Load() {
				t.Errorf("complete count %d exceeds %d generated observations", n, generated.Load())
				return
			}
		}
	}()

	// Tracking: a live track started on the original leader; its updates and
	// the loss/prime machinery keep running against whichever coordinator
	// leads. The channel belongs to the original leader and closes when it
	// dies — the track itself must survive in the replicated registry.
	feat := make([]float32, 32)
	feat[0] = 1
	trackID, trackCh, err := leader.StartTrack(ctx, 1, feat, simT0)
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ch := trackCh
		for {
			select {
			case <-done:
				return
			case _, ok := <-ch:
				if !ok {
					ch = nil // old leader died; wait out the run
				}
				if ch == nil {
					<-done
					return
				}
			}
		}
	}()

	// Sweeps: orphan recovery and liveness on the survivors throughout (a
	// standby's Sweep is a no-op until it is promoted).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				for _, c := range survivors {
					c.Sweep(ctx, time.Now())
				}
				time.Sleep(100 * time.Millisecond)
			}
		}
	}()

	// The kill: a third of the way in, the leader dies outright. A survivor
	// must take over within two lease intervals.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(time.Duration(soakFrames()) / 3 * 3 * time.Millisecond)
		t0 := time.Now()
		killedAt.Store(t0.UnixNano())
		leader.Stop()
		deadline := t0.Add(2 * lease)
		for leaderAmong(survivors) == nil {
			if time.Now().After(deadline) {
				t.Errorf("no survivor took over within two lease intervals (%v)", 2*lease)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Logf("failover completed in %v (budget %v)", time.Since(t0), 2*lease)
	}()

	wg.Wait()
	if generated.Load() == 0 {
		t.Fatal("soak generated no observations; workload is vacuous")
	}
	newLeader := leaderAmong(survivors)
	if newLeader == nil {
		t.Fatal("no leader among survivors at soak end")
	}
	if n := len(survivors) - 1; leaderAmong(survivors[1:]) != nil && newLeader != survivors[0] {
		t.Fatalf("more than one of the %d survivors claims leadership", n+1)
	}

	// Zero tracks permanently lost: the replicated registry on the new leader
	// still knows the track, and its owner is a live worker.
	waitFor(t, 2*time.Second, "track owner alive on new leader", func() bool {
		owner, _, _, ok := newLeader.TrackInfo(trackID)
		if !ok {
			return false
		}
		for _, m := range newLeader.Alive() {
			if m.Node == owner {
				return true
			}
		}
		return false
	})

	// All workers re-homed to the new leader.
	waitFor(t, 2*time.Second, "all workers live on new leader", func() bool {
		return len(newLeader.Alive()) == len(hc.Workers)
	})

	// Settle: quiet the ingest links, flush, then one final complete answer —
	// no duplicates, nothing double-applied, count bounded by generation.
	for _, w := range hc.Workers {
		ingestView.SetProgram(w.Addr(), cluster.FaultProgram{})
	}
	if _, err := ing.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	var recs []wire.ResultRecord
	var meta QueryMeta
	waitFor(t, 5*time.Second, "final complete range answer", func() bool {
		recs, meta, err = newLeader.RangeMeta(ctx, world1, window, 0)
		return err == nil && meta.Answered == meta.Asked
	})
	seen := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		if seen[r.ObsID] {
			t.Fatalf("final range answer contains observation %d twice", r.ObsID)
		}
		seen[r.ObsID] = true
	}
	if int64(len(recs)) > generated.Load() {
		t.Fatalf("final range answer has %d records, only %d generated", len(recs), generated.Load())
	}
	if err := newLeader.StopTrack(ctx, trackID); err != nil {
		t.Fatalf("stop track on new leader: %v", err)
	}

	// The R19 numbers: failover time is in the log above; these counters are
	// the exported failover telemetry.
	snap := newLeader.StatsSnapshot()
	if snap.Counters["failover.total"] < 1 {
		t.Fatalf("failover.total = %d on the promoted leader, want >= 1", snap.Counters["failover.total"])
	}
	if snap.Counters["leaderless.seconds"] < 1 {
		t.Fatalf("leaderless.seconds = %d on the promoted leader, want >= 1", snap.Counters["leaderless.seconds"])
	}
	var shed, drained, queued int64
	for _, w := range hc.Workers {
		shed += w.Metrics().Counter("handoff.queue_shed").Value()
		drained += w.Metrics().Counter("handoff.queue_drained").Value()
		queued += w.Metrics().Counter("push.errors").Value()
	}
	stats := hc.Net.InjectedTotal()
	t.Logf("R19: generated=%d stored=%d queries=%d incomplete=%d leaderless_s=%d pushes_deferred=%d drained=%d shed=%d faults={drop:%d dup:%d}",
		generated.Load(), len(recs), queries.Load(), incomplete.Load(),
		snap.Counters["leaderless.seconds"], queued, drained, shed,
		stats.Dropped, stats.Duplicated)
}
