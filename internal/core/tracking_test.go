package core

import (
	"math/rand"
	"testing"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/geo"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// corridorCams builds n directional cameras in a row along y=50, each
// covering a disjoint x span of width `span` starting at x=0, as wire infos.
// Omni sectors keep visibility exact: camera i covers x ∈ [i·span, (i+1)·span]
// approximately via a circle of radius span/2 centered mid-span.
func corridorCams(n int, span float64) []wire.CameraInfo {
	out := make([]wire.CameraInfo, n)
	for i := range out {
		out[i] = wire.CameraInfo{
			ID:      uint32(i + 1),
			Pos:     geo.Pt(span*(float64(i)+0.5), 50),
			Orient:  0,
			HalfFOV: 3.14159265,
			Range:   span / 2,
		}
	}
	return out
}

// walkTarget ingests a target walking left-to-right through the corridor at
// the given observation cadence, returning the final observation time.
func walkTarget(t *testing.T, c *Cluster, feat vision.Feature, from, to geo.Point, steps int, start time.Time, cadence time.Duration, firstObs uint64) time.Time {
	t.Helper()
	net := c.Coordinator.Network()
	now := start
	for i := 0; i <= steps; i++ {
		p := from.Lerp(to, float64(i)/float64(steps))
		now = start.Add(time.Duration(i) * cadence)
		if covering := net.CamerasCovering(p); len(covering) > 0 {
			ingestDirect(t, c, wire.Observation{
				ObsID: firstObs + uint64(i), Camera: uint32(covering[0]),
				Time: now, Pos: p, Feature: feat,
			})
		}
		// Every camera produces a frame each tick; deliver the empty-frame
		// clock to all workers so loss detection advances cluster-wide.
		for _, w := range c.Workers {
			if _, err := c.Transport.Call(ctx, w.Addr(), &wire.IngestBatch{FrameTime: now}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return now
}

func TestTrackingFollowsAcrossWorkers(t *testing.T) {
	opts := Options{LostAfter: 2 * time.Second, PrimeTTL: time.Minute}
	c := newTestCluster(t, 4, opts)
	// 8 corridor cameras, span 100 → world x ∈ [0, 800].
	if err := c.Coordinator.AddCameras(ctx, corridorCams(8, 100), 60); err != nil {
		t.Fatal(err)
	}
	feat := vision.NewRandomFeature(newRand(7), 32)

	// Seed the track at the first camera.
	startT := simT0
	ingestDirect(t, c, wire.Observation{ObsID: 1, Camera: 1, Time: startT, Pos: geo.Pt(30, 50), Feature: feat})
	trackID, ch, err := c.Coordinator.StartTrack(ctx, 1, feat, startT)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the target through all 8 cameras; 1 observation per second.
	walkTarget(t, c, feat, geo.Pt(30, 50), geo.Pt(770, 50), 74, startT.Add(time.Second), time.Second, 100)

	// Drain updates: the track must have progressed to the last camera.
	var lastCam uint32
	var updates int
	for {
		select {
		case u := <-ch:
			updates++
			if u.Camera > lastCam {
				lastCam = u.Camera
			}
		default:
			goto done
		}
	}
done:
	if updates == 0 {
		t.Fatal("no track updates")
	}
	if lastCam != 8 {
		t.Errorf("track reached camera %d, want 8", lastCam)
	}
	owner, cam, handoffs, ok := c.Coordinator.TrackInfo(trackID)
	if !ok {
		t.Fatal("track vanished")
	}
	if cam != 8 {
		t.Errorf("TrackInfo camera = %d", cam)
	}
	// The corridor spans 4 workers (spatial partitioning of 8 cameras): at
	// least one cross-worker handoff must have happened.
	if handoffs == 0 {
		t.Error("no cross-worker handoffs recorded")
	}
	finalOwnerCams := c.Coordinator.Assignment().CamerasOf(owner)
	found := false
	for _, cc := range finalOwnerCams {
		if cc == 8 {
			found = true
		}
	}
	if !found {
		t.Errorf("final owner %v does not own camera 8 (owns %v)", owner, finalOwnerCams)
	}
	// Vision graph learned transits along the corridor.
	if c.Coordinator.Network().EdgeCount() == 0 {
		t.Error("no vision-graph edges after tracking")
	}
	if err := c.Coordinator.StopTrack(ctx, trackID); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := c.Coordinator.TrackInfo(trackID); ok {
		t.Error("track still present after stop")
	}
}

func TestTrackingScopedVsBroadcastMessageCost(t *testing.T) {
	// The R3 hypothesis in miniature: vision-graph-scoped handoff sends far
	// fewer prime messages than broadcast on a corridor network.
	run := func(broadcast bool) (primes int64, handoffs int) {
		opts := Options{LostAfter: 2 * time.Second, PrimeTTL: time.Minute, BroadcastHandoff: broadcast}
		c, err := NewLocalCluster(8, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()
		if err := c.Coordinator.AddCameras(ctx, corridorCams(16, 100), 60); err != nil {
			t.Fatal(err)
		}
		feat := vision.NewRandomFeature(newRand(9), 32)
		ingestDirect(t, c, wire.Observation{ObsID: 1, Camera: 1, Time: simT0, Pos: geo.Pt(30, 50), Feature: feat})
		trackID, _, err := c.Coordinator.StartTrack(ctx, 1, feat, simT0)
		if err != nil {
			t.Fatal(err)
		}
		walkTarget(t, c, feat, geo.Pt(30, 50), geo.Pt(1570, 50), 154, simT0.Add(time.Second), time.Second, 100)
		snap := c.Coordinator.Metrics().Snapshot()
		_, _, h, _ := c.Coordinator.TrackInfo(trackID)
		return snap.Counters["handoff.primes_sent"], h
	}
	scopedPrimes, scopedHandoffs := run(false)
	broadcastPrimes, broadcastHandoffs := run(true)
	if scopedHandoffs == 0 || broadcastHandoffs == 0 {
		t.Fatalf("tracking broken: scoped=%d broadcast=%d handoffs", scopedHandoffs, broadcastHandoffs)
	}
	if scopedPrimes == 0 || broadcastPrimes == 0 {
		t.Fatalf("no primes recorded: scoped=%d broadcast=%d", scopedPrimes, broadcastPrimes)
	}
	// Broadcast primes all 8 workers per handoff; scoped primes the 1-2
	// owners of the graph neighbors.
	if broadcastPrimes < 2*scopedPrimes {
		t.Errorf("broadcast (%d primes) should cost well over 2× scoped (%d primes)",
			broadcastPrimes, scopedPrimes)
	}
}

func TestTrackStartUnknownCamera(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	if err := c.Coordinator.AddCameras(ctx, corridorCams(4, 100), 60); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Coordinator.StartTrack(ctx, 99, []float32{1}, simT0); err == nil {
		t.Error("track on unknown camera accepted")
	}
	if err := c.Coordinator.StopTrack(ctx, 12345); err == nil {
		t.Error("stop of unknown track succeeded")
	}
}

func TestWorkerFailureRecovery(t *testing.T) {
	opts := Options{HeartbeatTimeout: 50 * time.Millisecond}
	c := newTestCluster(t, 3, opts)
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 3), 50); err != nil {
		t.Fatal(err)
	}
	// Ingest a record per camera.
	var obs []wire.Observation
	for i, ci := range gridCams(world1, 3) {
		obs = append(obs, obsAt(uint64(i+1), ci.ID, ci.Pos, simT0.Add(time.Second), nil))
	}
	ingestDirect(t, c, obs...)
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	recs, _ := c.Coordinator.Range(ctx, world1, window, 0)
	if len(recs) != 9 {
		t.Fatalf("pre-failure range = %d", len(recs))
	}
	epochBefore := c.Coordinator.Epoch()

	// Kill worker w01: block its address and let heartbeats lapse. The other
	// workers keep heartbeating.
	dead := c.Workers[0]
	inproc := c.Transport.(*cluster.InProc)
	inproc.SetBlocked(dead.Addr(), true)
	deadline := time.Now().Add(2 * time.Second)
	var died []cluster.Member
	for time.Now().Before(deadline) {
		for _, w := range c.Workers[1:] {
			w.SendHeartbeat(ctx) //nolint:errcheck // best-effort in test loop
		}
		died = c.Coordinator.Sweep(ctx, time.Now())
		if len(died) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(died) != 1 || died[0].Node != dead.ID() {
		t.Fatalf("sweep reported %+v", died)
	}
	if got := c.Coordinator.Epoch(); got <= epochBefore {
		t.Error("epoch not bumped by recovery")
	}
	// All cameras now route to the survivors.
	a := c.Coordinator.Assignment()
	if len(a) != 9 {
		t.Fatalf("post-failure assignment has %d cameras", len(a))
	}
	for cam, node := range a {
		if node == dead.ID() {
			t.Errorf("camera %d still assigned to dead worker", cam)
		}
	}
	// Historical data on the dead worker is lost (documented trade-off); the
	// survivors' data remains reachable.
	recs, _ = c.Coordinator.Range(ctx, world1, window, 0)
	if len(recs) == 0 || len(recs) >= 9 {
		t.Errorf("post-failure range = %d records, want partial (1..8)", len(recs))
	}
	// New ingest on reassigned cameras succeeds everywhere.
	var obs2 []wire.Observation
	for i, ci := range gridCams(world1, 3) {
		obs2 = append(obs2, obsAt(uint64(100+i), ci.ID, ci.Pos, simT0.Add(2*time.Second), nil))
	}
	if got := ingestDirect(t, c, obs2...); got != 9 {
		t.Errorf("post-recovery ingest accepted %d, want 9", got)
	}
}

func TestStatsAggregation(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	ingestDirect(t, c,
		obsAt(1, 1, geo.Pt(250, 250), simT0, nil),
		obsAt(2, 4, geo.Pt(750, 750), simT0, nil),
	)
	stats := c.Coordinator.WorkerStats(ctx)
	if len(stats) != 2 {
		t.Fatalf("stats from %d workers", len(stats))
	}
	var total int64
	for _, s := range stats {
		total += s.Counters["ingest.accepted"]
	}
	if total != 2 {
		t.Errorf("aggregated ingest.accepted = %d", total)
	}
}

func TestReidSearchAcrossLog(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	rng := newRand(11)
	target := vision.NewRandomFeature(rng, 32)
	other := vision.NewRandomFeature(rng, 32)
	ingestDirect(t, c,
		obsAt(1, 1, geo.Pt(100, 100), simT0.Add(time.Second), target),
		obsAt(2, 4, geo.Pt(900, 900), simT0.Add(2*time.Second), target.Perturb(rng, 0.05)),
		obsAt(3, 1, geo.Pt(200, 100), simT0.Add(time.Second), other),
	)
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	var hits []wire.ResultRecord
	for _, w := range c.Workers {
		hits = append(hits, w.ReidSearch(target, window, 0.8)...)
	}
	if len(hits) != 2 {
		t.Fatalf("reid found %d observations, want 2: %+v", len(hits), hits)
	}
	seen := map[uint64]bool{}
	for _, h := range hits {
		seen[h.ObsID] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("reid hits = %+v", hits)
	}
}

func TestTrackTrajectoryStitching(t *testing.T) {
	opts := Options{LostAfter: 2 * time.Second, PrimeTTL: time.Minute}
	c := newTestCluster(t, 4, opts)
	if err := c.Coordinator.AddCameras(ctx, corridorCams(8, 100), 60); err != nil {
		t.Fatal(err)
	}
	feat := vision.NewRandomFeature(newRand(61), 32)
	ingestDirect(t, c, wire.Observation{ObsID: 1, Camera: 1, Time: simT0, Pos: geo.Pt(30, 50), Feature: feat})
	trackID, ch, err := c.Coordinator.StartTrack(ctx, 1, feat, simT0)
	if err != nil {
		t.Fatal(err)
	}
	walkTarget(t, c, feat, geo.Pt(30, 50), geo.Pt(770, 50), 74, simT0.Add(time.Second), time.Second, 100)
	for len(ch) > 0 {
		<-ch
	}
	tr, ok := c.Coordinator.TrackTrajectory(trackID)
	if !ok {
		t.Fatal("no trajectory for active track")
	}
	// ~75 walk steps produce ~75 sightings, minus the handoff gaps where the
	// target crosses camera boundaries unseen by any resident tracker.
	if tr.Len() < 40 {
		t.Fatalf("trajectory has %d samples, want >= 40", tr.Len())
	}
	// Time-ordered and spatially monotone left-to-right overall.
	for i := 1; i < tr.Len(); i++ {
		if tr.Points[i].T.Before(tr.Points[i-1].T) {
			t.Fatal("trajectory out of time order")
		}
	}
	first, _ := tr.Start()
	last, _ := tr.End()
	p0, _ := tr.At(first)
	p1, _ := tr.At(last)
	if p1.X-p0.X < 600 {
		t.Errorf("trajectory spans %.0f m eastward, want >= 600", p1.X-p0.X)
	}
	// Unknown track.
	if _, ok := c.Coordinator.TrackTrajectory(999999); ok {
		t.Error("trajectory for unknown track")
	}
	// Stopping the track removes the trajectory.
	if err := c.Coordinator.StopTrack(ctx, trackID); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Coordinator.TrackTrajectory(trackID); ok {
		t.Error("trajectory survived StopTrack")
	}
}
