package core

import (
	"testing"
	"time"

	"stcam/internal/geo"
	"stcam/internal/stindex"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// recAt builds a store record for direct continuousState unit tests.
func recAt(target uint64, x, y float64, at time.Duration) stindex.Record {
	return stindex.Record{ObsID: uint64(at), TargetID: target, Camera: 1, Pos: geo.Pt(x, y), Time: simT0.Add(at)}
}

func TestContinuousStateRangeSemantics(t *testing.T) {
	cs := newContinuousState(&wire.InstallContinuous{
		QueryID: 1, Kind: wire.ContinuousRange, Rect: geo.RectOf(0, 0, 100, 100),
	})
	// Unassociated observations never enter the answer.
	if upd := cs.observe(recAt(0, 50, 50, time.Second)); upd != nil {
		t.Errorf("unassociated observation produced %+v", upd)
	}
	// Enter.
	upd := cs.observe(recAt(7, 50, 50, 2*time.Second))
	if upd == nil || len(upd.Positive) != 1 || upd.Positive[0].TargetID != 7 {
		t.Fatalf("enter update = %+v", upd)
	}
	// Move inside: no delta.
	if upd := cs.observe(recAt(7, 60, 60, 3*time.Second)); upd != nil {
		t.Errorf("inside move produced %+v", upd)
	}
	// Observation outside while never-inside target: no delta.
	if upd := cs.observe(recAt(8, 500, 500, 3*time.Second)); upd != nil {
		t.Errorf("outside stranger produced %+v", upd)
	}
	// Leave: negative carries the last in-rect record.
	upd = cs.observe(recAt(7, 500, 500, 4*time.Second))
	if upd == nil || len(upd.Negative) != 1 || upd.Negative[0].Pos != geo.Pt(60, 60) {
		t.Fatalf("leave update = %+v", upd)
	}
	// Re-enter works.
	if upd := cs.observe(recAt(7, 10, 10, 5*time.Second)); upd == nil || len(upd.Positive) != 1 {
		t.Fatalf("re-enter update = %+v", upd)
	}
}

func TestContinuousStateCountThreshold(t *testing.T) {
	cs := newContinuousState(&wire.InstallContinuous{
		QueryID: 2, Kind: wire.ContinuousCount, Rect: geo.RectOf(0, 0, 100, 100), Threshold: 3,
	})
	// Two entries: below threshold, suppressed.
	if upd := cs.observe(recAt(1, 10, 10, time.Second)); upd != nil {
		t.Errorf("below-threshold entry produced %+v", upd)
	}
	if upd := cs.observe(recAt(2, 20, 20, 2*time.Second)); upd != nil {
		t.Errorf("below-threshold entry produced %+v", upd)
	}
	// Third entry crosses the threshold: notify with count.
	upd := cs.observe(recAt(3, 30, 30, 3*time.Second))
	if upd == nil || upd.Count != 3 {
		t.Fatalf("crossing update = %+v", upd)
	}
	// Fourth entry stays above: suppressed.
	if upd := cs.observe(recAt(4, 40, 40, 4*time.Second)); upd != nil {
		t.Errorf("above-threshold entry produced %+v", upd)
	}
	// One leaves but the count stays at the threshold: still above,
	// suppressed.
	if upd := cs.observe(recAt(4, 500, 500, 5*time.Second)); upd != nil {
		t.Errorf("at-threshold leave produced %+v", upd)
	}
	// The next leave crosses downward: notify.
	upd = cs.observe(recAt(3, 500, 500, 6*time.Second))
	if upd == nil || upd.Count != 2 {
		t.Fatalf("downward crossing update = %+v", upd)
	}
}

func TestContinuousStateExpiry(t *testing.T) {
	cs := newContinuousState(&wire.InstallContinuous{
		QueryID: 3, Kind: wire.ContinuousRange, Rect: geo.RectOf(0, 0, 100, 100),
	})
	cs.observe(recAt(1, 10, 10, time.Second))
	cs.observe(recAt(2, 20, 20, 90*time.Second))
	// Expire everything last seen before t+60s: target 1 goes, 2 stays.
	upd := cs.expire(simT0.Add(60 * time.Second))
	if upd == nil || len(upd.Negative) != 1 || upd.Negative[0].TargetID != 1 {
		t.Fatalf("expiry update = %+v", upd)
	}
	// Nothing more to expire.
	if upd := cs.expire(simT0.Add(60 * time.Second)); upd != nil {
		t.Errorf("second expiry produced %+v", upd)
	}
}

func TestContinuousInstallValidation(t *testing.T) {
	c := newTestCluster(t, 1, Options{})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	w := c.Workers[0]
	// Unknown kind rejected (surfaced as a RemoteError by the transport).
	if _, err := c.Transport.Call(ctx, w.Addr(), &wire.InstallContinuous{QueryID: 9, Kind: 99}); err == nil {
		t.Error("bad continuous kind accepted")
	}
	// Removing a non-installed query errors.
	if _, err := c.Transport.Call(ctx, w.Addr(), &wire.RemoveContinuous{QueryID: 12345}); err == nil {
		t.Error("remove of unknown query succeeded")
	}
	// Coordinator-level remove of unknown ID errors.
	if err := c.Coordinator.RemoveContinuous(ctx, 999); err == nil {
		t.Error("coordinator removed unknown query")
	}
}

func TestContinuousSurvivesReassignment(t *testing.T) {
	// A standing query must keep firing after cameras move to new workers
	// (the coordinator reinstalls it during Reassign).
	c := newTestCluster(t, 2, Options{LostAfter: time.Hour})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	region := geo.RectOf(0, 0, 400, 400)
	_, ch, err := c.Coordinator.InstallContinuous(ctx, wire.ContinuousRange, region, 0)
	if err != nil {
		t.Fatal(err)
	}
	feat := vision.NewRandomFeature(newRand(51), 32)
	ingestDirect(t, c, obsAt(1, 1, geo.Pt(100, 100), simT0.Add(time.Second), feat))
	<-ch // the enter update

	// Force a reassignment epoch bump.
	if err := c.Coordinator.Reassign(ctx); err != nil {
		t.Fatal(err)
	}
	// The same target leaving the region must still produce a negative,
	// regardless of which worker now owns camera 1.
	ingestDirect(t, c, obsAt(2, 1, geo.Pt(900, 900), simT0.Add(2*time.Second), feat))
	select {
	case upd := <-ch:
		// Reassignment resets worker-local answer state, so the delta may be
		// a fresh positive (if camera 1 moved to a worker that never saw the
		// target) — but an update must flow.
		if len(upd.Positive) == 0 && len(upd.Negative) == 0 {
			t.Fatalf("empty update after reassignment: %+v", upd)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no continuous update after reassignment")
	}
}

func TestWorkerRejectsStaleEpoch(t *testing.T) {
	c := newTestCluster(t, 1, Options{})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	w := c.Workers[0]
	// Replay an old epoch: must be rejected (the transport surfaces the
	// worker's wire.Error as a RemoteError).
	if _, err := c.Transport.Call(ctx, w.Addr(), &wire.AssignCameras{Epoch: 0, Cameras: nil}); err == nil {
		t.Error("stale epoch accepted")
	}
}
