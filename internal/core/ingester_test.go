package core

import (
	"sync"
	"testing"
	"time"

	"stcam/internal/camera"
	"stcam/internal/geo"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// TestIngesterConcurrentUse is the regression test for the ingester's route
// cache: epoch/routes were unsynchronized, so concurrent producers (or a
// producer racing a rebalance-triggered refresh) tripped the race detector
// on the old code shape. It drives parallel producers against concurrent
// reassignments and requires every observation to be accepted exactly once.
func TestIngesterConcurrentUse(t *testing.T) {
	c := newTestCluster(t, 4, Options{LostAfter: time.Hour})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 4), 50); err != nil {
		t.Fatal(err)
	}
	ing := NewIngester(c.Coordinator, c.Transport)
	defer ing.Close()

	const producers = 4
	const frames = 25
	const perFrame = 8
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted int
	)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for f := 0; f < frames; f++ {
				dets := make([]vision.Detection, 0, perFrame)
				for i := 0; i < perFrame; i++ {
					cam := uint32(1 + (p*frames*perFrame+f*perFrame+i)%16)
					dets = append(dets, vision.Detection{
						ObsID:  uint64(p*1000000 + f*1000 + i + 1),
						Camera: camera.ID(cam),
						Time:   simT0.Add(time.Duration(f) * time.Second),
						Pos:    geo.Pt(float64(10+f), float64(10+p)),
					})
				}
				n, err := ing.IngestDetections(ctx, dets)
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				mu.Lock()
				accepted += n
				mu.Unlock()
			}
		}(p)
	}
	// Concurrent rebalances force route-cache refreshes mid-stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := c.Coordinator.Reassign(ctx); err != nil {
				t.Errorf("reassign: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	want := producers * frames * perFrame
	if accepted != want {
		t.Fatalf("accepted %d observations, want %d", accepted, want)
	}
	total := 0
	for _, w := range c.Workers {
		total += w.Store().Len()
	}
	if total != want {
		t.Fatalf("stores hold %d records, want %d (lost or duplicated under concurrency)", total, want)
	}
}

// TestIngestSequencedReplayIdempotent proves the worker's at-most-once
// application of sequenced batches: a re-delivered sequence is acknowledged
// from the original outcome without touching the index, and a sequence older
// than the cursor is acknowledged empty.
func TestIngestSequencedReplayIdempotent(t *testing.T) {
	c := newTestCluster(t, 1, Options{})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	w := c.Workers[0]
	batch := &wire.IngestBatch{
		Source: "ingest-test",
		Seq:    1,
		Observations: []wire.Observation{
			obsAt(1, 1, geo.Pt(100, 100), simT0, nil),
			obsAt(2, 2, geo.Pt(800, 800), simT0, nil),
		},
	}
	resp, err := c.Transport.Call(ctx, w.Addr(), batch)
	if err != nil {
		t.Fatal(err)
	}
	first := *resp.(*wire.IngestAck)
	if first.Accepted != 2 || first.Replayed {
		t.Fatalf("first delivery ack = %+v, want 2 accepted, not replayed", first)
	}
	if w.Store().Len() != 2 {
		t.Fatalf("store holds %d records, want 2", w.Store().Len())
	}

	// Exact re-delivery: the original counts come back flagged as a replay,
	// and nothing is re-applied.
	resp, err = c.Transport.Call(ctx, w.Addr(), batch)
	if err != nil {
		t.Fatal(err)
	}
	replay := *resp.(*wire.IngestAck)
	if !replay.Replayed || replay.Accepted != 2 {
		t.Fatalf("replay ack = %+v, want replayed with original counts", replay)
	}
	if w.Store().Len() != 2 {
		t.Fatalf("replay re-applied: store holds %d records, want 2", w.Store().Len())
	}

	// Advance the cursor, then deliver an older sequence: acknowledged as a
	// replay with empty counts, index untouched.
	next := &wire.IngestBatch{
		Source:       "ingest-test",
		Seq:          2,
		Observations: []wire.Observation{obsAt(3, 1, geo.Pt(150, 150), simT0.Add(time.Second), nil)},
	}
	if _, err := c.Transport.Call(ctx, w.Addr(), next); err != nil {
		t.Fatal(err)
	}
	resp, err = c.Transport.Call(ctx, w.Addr(), batch)
	if err != nil {
		t.Fatal(err)
	}
	stale := *resp.(*wire.IngestAck)
	if !stale.Replayed || stale.Accepted != 0 {
		t.Fatalf("stale ack = %+v, want empty replay ack", stale)
	}
	if w.Store().Len() != 3 {
		t.Fatalf("store holds %d records, want 3", w.Store().Len())
	}

	// Unsequenced batches keep plain at-least-once semantics: a second
	// identical delivery is applied again (same ObsID, so the index keeps
	// both records — dedup is the sequenced path's job).
	plain := &wire.IngestBatch{Observations: []wire.Observation{obsAt(9, 1, geo.Pt(120, 120), simT0, nil)}}
	for i := 0; i < 2; i++ {
		resp, err = c.Transport.Call(ctx, w.Addr(), plain)
		if err != nil {
			t.Fatal(err)
		}
		if ack := resp.(*wire.IngestAck); ack.Accepted != 1 || ack.Replayed {
			t.Fatalf("unsequenced delivery %d ack = %+v", i, ack)
		}
	}
}

// TestIngestAckSeparatesReplication checks the ack accounting contract the
// coalesced pipeline sums over: Accepted counts primary inserts only,
// Replicated counts standby copies, and the two never overlap.
func TestIngestAckSeparatesReplication(t *testing.T) {
	c := newTestCluster(t, 2, Options{Replicas: 1})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	a := c.Coordinator.Assignment()
	// Find a camera and the worker holding it only as a standby copy.
	var cam uint32
	var standby *Worker
	for id, owner := range a {
		for _, w := range c.Workers {
			if w.ID() != owner {
				cam, standby = id, w
			}
		}
		if standby != nil {
			break
		}
	}
	batch := &wire.IngestBatch{Observations: []wire.Observation{obsAt(1, cam, geo.Pt(500, 500), simT0, nil)}}
	resp, err := c.Transport.Call(ctx, standby.Addr(), batch)
	if err != nil {
		t.Fatal(err)
	}
	ack := resp.(*wire.IngestAck)
	if ack.Accepted != 0 || ack.Replicated != 1 || ack.Rejected != 0 {
		t.Fatalf("standby ack = %+v, want 0 accepted / 1 replicated", ack)
	}
	owner := c.Worker(a[cam])
	resp, err = c.Transport.Call(ctx, owner.Addr(), batch)
	if err != nil {
		t.Fatal(err)
	}
	ack = resp.(*wire.IngestAck)
	if ack.Accepted != 1 || ack.Replicated != 0 {
		t.Fatalf("primary ack = %+v, want 1 accepted / 0 replicated", ack)
	}
}
