package core

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"stcam/internal/cluster"
	"stcam/internal/geo"
	"stcam/internal/sim"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// The pruned-engine differential suite: on identical seeded workloads the
// pruned scatter-gather engine (summary pruning + two-phase kNN + pushed-down
// bounds) must answer every query identically to broadcast fan-out
// (DisablePrune) — including under injected transport faults that the retry
// layer absorbs. Pruning is an optimization, never an answer change.

// heartbeatAll refreshes every worker's summary at the coordinator, making
// the sketches current with whatever the test just ingested (production
// freshness is heartbeat-bounded; the suite pins it for determinism).
func heartbeatAll(t *testing.T, c *Cluster) {
	t.Helper()
	for _, w := range c.Workers {
		if err := w.SendHeartbeat(ctx); err != nil {
			t.Fatalf("heartbeat %s: %v", w.ID(), err)
		}
	}
}

// queryBattery is every read answer the differential comparison looks at.
type queryBattery struct {
	rangeFull []wire.ResultRecord
	rangeSub  []wire.ResultRecord
	rangeLim  []wire.ResultRecord
	rangeFar  []wire.ResultRecord // corner rect most workers hold nothing in
	rangeOld  []wire.ResultRecord // time window before all data
	count     int
	countFar  int
	knn       [][]wire.KNNRecord
	heat      []wire.HeatCell
	filter    []wire.ResultRecord
	pruned    int // total workers pruned across the battery
	asked     int
}

// runQueryBattery fires the same fixed query set against a cluster.
func runQueryBattery(t *testing.T, c *Cluster, until time.Time) queryBattery {
	t.Helper()
	var (
		out    queryBattery
		err    error
		meta   QueryMeta
		window = wire.TimeWindow{From: simT0, To: until}
		early  = wire.TimeWindow{From: simT0.Add(-2 * time.Hour), To: simT0.Add(-time.Hour)}
		sub    = geo.RectOf(200, 200, 700, 700)
		far    = geo.RectOf(0, 0, 120, 120)
	)
	if out.rangeFull, meta, err = c.Coordinator.RangeMeta(ctx, world1, window, 0); err != nil {
		t.Fatal(err)
	}
	out.pruned, out.asked = out.pruned+meta.Pruned, out.asked+meta.Asked
	if out.rangeSub, meta, err = c.Coordinator.RangeMeta(ctx, sub, window, 0); err != nil {
		t.Fatal(err)
	}
	out.pruned, out.asked = out.pruned+meta.Pruned, out.asked+meta.Asked
	if out.rangeLim, _, err = c.Coordinator.RangeMeta(ctx, world1, window, 25); err != nil {
		t.Fatal(err)
	}
	if out.rangeFar, meta, err = c.Coordinator.RangeMeta(ctx, far, window, 0); err != nil {
		t.Fatal(err)
	}
	out.pruned, out.asked = out.pruned+meta.Pruned, out.asked+meta.Asked
	if out.rangeOld, meta, err = c.Coordinator.RangeMeta(ctx, world1, early, 0); err != nil {
		t.Fatal(err)
	}
	out.pruned, out.asked = out.pruned+meta.Pruned, out.asked+meta.Asked
	if out.count, _, err = c.Coordinator.CountMeta(ctx, sub, window); err != nil {
		t.Fatal(err)
	}
	if out.countFar, _, err = c.Coordinator.CountMeta(ctx, far, window); err != nil {
		t.Fatal(err)
	}
	for _, q := range []struct {
		p geo.Point
		k int
	}{
		{geo.Pt(500, 500), 10},
		{geo.Pt(50, 50), 3},
		{geo.Pt(980, 20), 7},
		{geo.Pt(500, 500), 100000}, // k beyond the dataset: full ordered dump
	} {
		recs, m, err := c.Coordinator.KNNMeta(ctx, q.p, window, q.k)
		if err != nil {
			t.Fatal(err)
		}
		out.knn = append(out.knn, recs)
		out.pruned, out.asked = out.pruned+m.Pruned, out.asked+m.Asked
	}
	if out.heat, err = c.Coordinator.Heatmap(ctx, world1, window, 100); err != nil {
		t.Fatal(err)
	}
	if out.filter, _, err = c.Coordinator.Filter(ctx, wire.FilterQuery{Rect: sub, Window: window}); err != nil {
		t.Fatal(err)
	}
	return out
}

func knnEqual(a, b []wire.KNNRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ObsID != b[i].ObsID || a[i].Dist2 != b[i].Dist2 {
			return false
		}
	}
	return true
}

func diffBatteries(t *testing.T, label string, base, got queryBattery) {
	t.Helper()
	for _, cmp := range []struct {
		name string
		a, b []wire.ResultRecord
	}{
		{"rangeFull", base.rangeFull, got.rangeFull},
		{"rangeSub", base.rangeSub, got.rangeSub},
		{"rangeLim", base.rangeLim, got.rangeLim},
		{"rangeFar", base.rangeFar, got.rangeFar},
		{"rangeOld", base.rangeOld, got.rangeOld},
		{"filter", base.filter, got.filter},
	} {
		if !recordsEqual(cmp.a, cmp.b) {
			t.Errorf("%s: %s diverged (%d vs %d records)", label, cmp.name, len(cmp.b), len(cmp.a))
		}
	}
	if base.count != got.count || base.countFar != got.countFar {
		t.Errorf("%s: counts diverged: (%d,%d) vs (%d,%d)",
			label, got.count, got.countFar, base.count, base.countFar)
	}
	if len(base.knn) != len(got.knn) {
		t.Fatalf("%s: knn battery size mismatch", label)
	}
	for i := range base.knn {
		if !knnEqual(base.knn[i], got.knn[i]) {
			t.Errorf("%s: knn[%d] diverged (%d vs %d records)", label, i, len(got.knn[i]), len(base.knn[i]))
		}
	}
	if len(base.heat) != len(got.heat) {
		t.Errorf("%s: heatmap diverged (%d vs %d cells)", label, len(got.heat), len(base.heat))
	} else {
		for i := range base.heat {
			if base.heat[i] != got.heat[i] {
				t.Errorf("%s: heatmap cell %d diverged: %+v vs %+v", label, i, got.heat[i], base.heat[i])
				break
			}
		}
	}
}

// runPrunedWorkload builds a cluster over tr (nil = plain in-proc), replays a
// seeded simulation into it, refreshes summaries, and runs the battery.
func runPrunedWorkload(t *testing.T, workers int, opts Options, tr cluster.Transport) queryBattery {
	t.Helper()
	if tr == nil {
		tr = cluster.NewInProc()
	}
	opts.LostAfter = time.Hour
	c, err := NewLocalClusterOver(tr, workers, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 4), 50); err != nil {
		t.Fatal(err)
	}
	w, err := sim.NewWorld(sim.Config{
		World:      world1,
		NumObjects: 20,
		Model:      &sim.RandomWaypoint{World: world1, MinSpeed: 30, MaxSpeed: 60},
		Seed:       7,
		FeatureDim: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := vision.NewDetector(vision.DetectorConfig{Seed: 8})
	// The Ingester dials workers itself, so on a lossy fabric it needs its
	// own retry layer (cluster nodes get theirs from opts.RetryPolicy).
	ing := NewIngesterWith(c.Coordinator, cluster.NewResilient(c.Transport, opts.rpcPolicy()), IngesterOptions{Serial: true})
	defer ing.Close()
	w.Run(30, c.Coordinator.Network(), det, func(_ int, dets []vision.Detection) {
		if _, err := ing.IngestDetections(ctx, dets); err != nil {
			t.Fatal(err)
		}
	})
	heartbeatAll(t, c)
	return runQueryBattery(t, c, w.Now().Add(time.Second))
}

// TestDifferentialPrunedVsBroadcast is the equivalence proof for the pruned
// engine: across worker counts, every query answer must be identical to the
// broadcast engine's, and on multi-worker clusters pruning must actually
// fire (otherwise the test proves nothing).
func TestDifferentialPrunedVsBroadcast(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			broadcast := runPrunedWorkload(t, workers, Options{DisablePrune: true}, nil)
			if len(broadcast.rangeFull) == 0 {
				t.Fatal("broadcast baseline produced no data; workload is vacuous")
			}
			if broadcast.pruned != 0 {
				t.Fatalf("broadcast engine pruned %d workers", broadcast.pruned)
			}
			pruned := runPrunedWorkload(t, workers, Options{}, nil)
			diffBatteries(t, "pruned", broadcast, pruned)
			if workers > 1 {
				if pruned.pruned == 0 {
					t.Error("pruned engine never pruned a worker; differential proof is vacuous")
				}
				if pruned.asked >= broadcast.asked {
					t.Errorf("pruned engine asked %d workers, broadcast %d — no fan-out saving",
						pruned.asked, broadcast.asked)
				}
			}
		})
	}
}

// TestDifferentialPrunedUnderFaults repeats the equivalence proof with
// lossy links: every worker link drops 20% of calls, duplicates some, and
// delays the rest, all absorbed by the retry layer. Summaries riding on
// retried heartbeats and probes crossing a lossy fabric must not change any
// answer.
func TestDifferentialPrunedUnderFaults(t *testing.T) {
	lossy := func() cluster.Transport {
		f := cluster.NewFaulty(cluster.NewInProc(), 42)
		for i := 1; i <= 8; i++ {
			f.SetProgram(fmt.Sprintf("worker-%02d", i), cluster.FaultProgram{
				Drop:      0.2,
				Duplicate: 0.1,
				Latency:   time.Millisecond,
			})
		}
		return f
	}
	opts := func(disable bool) Options {
		return Options{
			DisablePrune: disable,
			RetryPolicy:  cluster.Policy{MaxAttempts: 8, BaseBackoff: time.Millisecond, FailureThreshold: 1000},
		}
	}
	broadcast := runPrunedWorkload(t, 8, opts(true), lossy())
	if len(broadcast.rangeFull) == 0 {
		t.Fatal("broadcast baseline produced no data under faults")
	}
	pruned := runPrunedWorkload(t, 8, opts(false), lossy())
	diffBatteries(t, "pruned+faults", broadcast, pruned)
	if pruned.pruned == 0 {
		t.Error("pruned engine never pruned under faults; proof is vacuous")
	}
}

// TestKNNPartialFailureNeverSilentlyNarrowed kills the one worker that holds
// the true nearest neighbors and checks the contract: the pruned kNN still
// ASKS that worker (its sketch admits matches, so it cannot be pruned), the
// failure surfaces as Answered < Asked — exactly as broadcast reports it —
// and the partial answer is the correctly ordered best-of-the-survivors.
func TestKNNPartialFailureNeverSilentlyNarrowed(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "pruned"
		if disable {
			name = "broadcast"
		}
		t.Run(name, func(t *testing.T) {
			faulty := cluster.NewFaulty(cluster.NewInProc(), 7)
			c, err := NewLocalClusterOver(faulty, 4, nil, Options{
				DisablePrune: disable,
				LostAfter:    time.Hour,
				RetryPolicy:  cluster.Policy{MaxAttempts: 2, BaseBackoff: time.Millisecond, FailureThreshold: 1000},
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(c.Stop)
			if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
				t.Fatal(err)
			}
			// Cameras sit at (250,250) (750,250) (250,750) (750,750). The
			// query point is near camera 1, so its owner holds the true
			// nearest records; the far corner holds decoys.
			center := geo.Pt(250, 250)
			var obs []wire.Observation
			for i := 0; i < 5; i++ {
				obs = append(obs,
					obsAt(uint64(1+i), 1, geo.Pt(250+float64(i), 250), simT0.Add(time.Duration(i)*time.Second), nil),
					obsAt(uint64(100+i), 4, geo.Pt(750+float64(i), 750), simT0.Add(time.Duration(i)*time.Second), nil))
			}
			ingestDirect(t, c, obs...)
			heartbeatAll(t, c)

			window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Minute)}
			full, meta, err := c.Coordinator.KNNMeta(ctx, center, window, 3)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Answered != meta.Asked {
				t.Fatalf("healthy query incomplete: %+v", meta)
			}
			if len(full) != 3 || full[0].ObsID != 1 {
				t.Fatalf("healthy knn = %+v", full)
			}

			nearAddr, ok := c.Coordinator.RouteFor(1)
			if !ok {
				t.Fatal("no route for camera 1")
			}
			faulty.SetProgram(nearAddr, cluster.FaultProgram{Partition: true})

			part, meta, err := c.Coordinator.KNNMeta(ctx, center, window, 3)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Answered >= meta.Asked {
				t.Fatalf("dead nearest worker not reflected in meta: %+v", meta)
			}
			if meta.Completeness() >= 1 {
				t.Fatalf("completeness %v despite dead worker", meta.Completeness())
			}
			// The dead worker held ObsIDs 1..5; the partial answer must be
			// the ordered decoys, never a silently complete-looking blend.
			if len(part) != 3 {
				t.Fatalf("partial knn returned %d records, want 3 decoys", len(part))
			}
			for i, r := range part {
				if r.ObsID < 100 {
					t.Fatalf("partial knn[%d] = %+v from the dead worker", i, r)
				}
			}
			if !sort.SliceIsSorted(part, func(i, j int) bool {
				if part[i].Dist2 != part[j].Dist2 {
					return part[i].Dist2 < part[j].Dist2
				}
				return part[i].ObsID < part[j].ObsID
			}) {
				t.Fatalf("partial knn not ordered: %+v", part)
			}
		})
	}
}

// TestKNNTwoPhaseProbesFewWorkers pins the tentpole perf property: with data
// spread across a 16-worker cluster and fresh summaries, a localized kNN
// probes only the nearby workers and prunes the rest, while broadcast asks
// everyone.
func TestKNNTwoPhaseProbesFewWorkers(t *testing.T) {
	c := newTestCluster(t, 16, Options{LostAfter: time.Hour})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 4), 50); err != nil {
		t.Fatal(err)
	}
	// One record per camera, at the camera position: 16 well-separated
	// clusters of one, so distance lower bounds discriminate sharply.
	var obs []wire.Observation
	for i, cam := range gridCams(world1, 4) {
		obs = append(obs, obsAt(uint64(i+1), cam.ID, cam.Pos, simT0.Add(time.Second), nil))
	}
	ingestDirect(t, c, obs...)
	heartbeatAll(t, c)

	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Minute)}
	center := geo.Pt(125, 125) // camera 1's position exactly
	recs, meta, err := c.Coordinator.KNNMeta(ctx, center, window, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ObsID != 1 {
		t.Fatalf("knn = %+v, want obs 1", recs)
	}
	if meta.Asked+meta.Pruned != 16 {
		t.Fatalf("asked %d + pruned %d workers, want 16 accounted", meta.Asked, meta.Pruned)
	}
	if meta.Asked >= 8 {
		t.Errorf("localized k=1 query probed %d of 16 workers; expansion bound is not pruning", meta.Asked)
	}
	if math.IsInf(float64(meta.Pruned), 0) || meta.Pruned == 0 {
		t.Errorf("no workers pruned: meta=%+v", meta)
	}
}
