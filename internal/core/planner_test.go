package core

import (
	"testing"
	"time"

	"stcam/internal/geo"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// plannerFixture ingests a skewed workload: one "frequent" target with many
// observations spread over the world, one "rare" target with few, plus
// background observations concentrated in a hotspot rectangle.
func plannerFixture(t *testing.T, workers int) (*Cluster, vision.Feature, vision.Feature) {
	t.Helper()
	c := newTestCluster(t, workers, Options{LostAfter: time.Hour, AssocThreshold: 0.7})
	if err := c.Coordinator.AddCameras(ctx, gridCams(world1, 2), 50); err != nil {
		t.Fatal(err)
	}
	rng := newRand(31)
	frequent := vision.NewRandomFeature(rng, 64)
	rare := vision.NewRandomFeature(rng, 64)
	var obs []wire.Observation
	id := uint64(1)
	add := func(p geo.Point, at time.Duration, f vision.Feature) {
		covering := c.Coordinator.Network().CamerasCovering(p)
		if len(covering) == 0 {
			t.Fatalf("no camera covers %v", p)
		}
		obs = append(obs, wire.Observation{
			ObsID: id, Camera: uint32(covering[0]), Time: simT0.Add(at), Pos: p, Feature: f,
		})
		id++
	}
	// 200 sightings of the frequent target wandering everywhere.
	for i := 0; i < 200; i++ {
		add(geo.Pt(rng.Float64()*1000, rng.Float64()*1000), time.Duration(i)*time.Second, frequent.Perturb(rng, 0.03))
	}
	// 3 sightings of the rare target inside the hotspot.
	for i := 0; i < 3; i++ {
		add(geo.Pt(50+rng.Float64()*100, 50+rng.Float64()*100), time.Duration(300+i)*time.Second, rare.Perturb(rng, 0.03))
	}
	// 500 anonymous background observations in the hotspot (dense region).
	for i := 0; i < 500; i++ {
		add(geo.Pt(rng.Float64()*200, rng.Float64()*200), time.Duration(400+i)*time.Second, nil)
	}
	ingestDirect(t, c, obs...)
	return c, frequent, rare
}

func targetIDOf(t *testing.T, c *Cluster, probe vision.Feature) uint64 {
	t.Helper()
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	for _, w := range c.Workers {
		hits := w.ReidSearch(probe, window, 0.8)
		for _, h := range hits {
			recs, err := c.Coordinator.Range(ctx, geo.RectAround(h.Pos, 0.5), window, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				if r.ObsID == h.ObsID && r.TargetID != 0 {
					return r.TargetID
				}
			}
		}
	}
	t.Fatal("target not found")
	return 0
}

// TestFilterQueryCorrectness: both plans produce the brute-force answer; the
// coordinator merge is deduplicated and time-ordered.
func TestFilterQueryCorrectness(t *testing.T) {
	c, frequent, _ := plannerFixture(t, 2)
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	target := targetIDOf(t, c, frequent)

	rect := geo.RectOf(0, 0, 500, 500)
	recs, plans, err := c.Coordinator.Filter(ctx, wire.FilterQuery{Rect: rect, Window: window, TargetID: target})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans reported")
	}
	// Brute-force expectation from an unfiltered range query.
	all, err := c.Coordinator.Range(ctx, rect, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range all {
		if r.TargetID == target {
			want++
		}
	}
	if len(recs) != want {
		t.Fatalf("filter returned %d records, brute force says %d", len(recs), want)
	}
	for i, r := range recs {
		if r.TargetID != target {
			t.Fatalf("record %d has target %d", i, r.TargetID)
		}
		if i > 0 && recs[i].Time.Before(recs[i-1].Time) {
			t.Fatal("filter results out of order")
		}
	}
	// Camera predicate composes.
	camSet := []uint32{all[0].Camera}
	recs, _, err = c.Coordinator.Filter(ctx, wire.FilterQuery{Rect: rect, Window: window, Cameras: camSet})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Camera != camSet[0] {
			t.Fatalf("camera filter leaked camera %d", r.Camera)
		}
	}
	// Limit applies.
	recs, _, err = c.Coordinator.Filter(ctx, wire.FilterQuery{Rect: world1, Window: window, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("limited filter = %d", len(recs))
	}
}

// TestPlannerAdaptsToSelectivity: after histogram warm-up, a rare-target
// query picks the target plan, while a frequent-target query over a tiny
// dense rectangle picks the spatial plan.
func TestPlannerAdaptsToSelectivity(t *testing.T) {
	// Single worker: target IDs are namespaced per worker, so plan choice —
	// a per-worker decision — is only meaningful when the target's history
	// lives on the worker answering the query.
	c, frequent, rare := plannerFixture(t, 1)
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}

	// Warm the selectivity histograms with range queries over the world,
	// teaching the workers where the data is dense.
	for x := 0.0; x < 1000; x += 125 {
		for y := 0.0; y < 1000; y += 125 {
			if _, err := c.Coordinator.Range(ctx, geo.RectOf(x, y, x+125, y+125), window, 0); err != nil {
				t.Fatal(err)
			}
		}
	}

	rareID := targetIDOf(t, c, rare)
	freqID := targetIDOf(t, c, frequent)

	// Rare target over the dense hotspot: scanning 3 history records beats
	// scanning ~500 spatial records.
	_, plans, err := c.Coordinator.Filter(ctx, wire.FilterQuery{
		Rect: geo.RectOf(0, 0, 200, 200), Window: window, TargetID: rareID,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plans["target"] == 0 {
		t.Errorf("rare-target query never chose the target plan: %v", plans)
	}
	// Frequent target over a tiny sparse rectangle: the spatial index wins
	// over walking 200 history records.
	_, plans, err = c.Coordinator.Filter(ctx, wire.FilterQuery{
		Rect: geo.RectOf(800, 800, 850, 850), Window: window, TargetID: freqID,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plans["spatial"] == 0 {
		t.Errorf("frequent-target query never chose the spatial plan: %v", plans)
	}
}

// TestFilterNoPredicates degenerates to a plain range query.
func TestFilterNoPredicates(t *testing.T) {
	c, _, _ := plannerFixture(t, 2)
	window := wire.TimeWindow{From: simT0, To: simT0.Add(time.Hour)}
	rect := geo.RectOf(0, 0, 300, 300)
	filtered, _, err := c.Coordinator.Filter(ctx, wire.FilterQuery{Rect: rect, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.Coordinator.Range(ctx, rect, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) != len(plain) {
		t.Errorf("filter without predicates = %d records, range = %d", len(filtered), len(plain))
	}
}
