package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"stcam/internal/wire"
)

// scripted is a fake Transport whose Call delegates to a script function,
// used to drive the Resilient decorator through exact failure sequences.
type scripted struct {
	call func(ctx context.Context, addr string, req any) (any, error)
}

func (s *scripted) Serve(addr string, h Handler) (Server, error) { return nil, nil }
func (s *scripted) Stats() TransportStats                        { return TransportStats{} }
func (s *scripted) Close() error                                 { return nil }
func (s *scripted) Call(ctx context.Context, addr string, req any) (any, error) {
	return s.call(ctx, addr, req)
}

// fakeClock drives Resilient's injected now/sleep: sleeps advance the clock
// instantly and are recorded, so backoff schedules are asserted exactly.
type fakeClock struct {
	t      time.Time
	sleeps []time.Duration
}

func (c *fakeClock) now() time.Time { return c.t }
func (c *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	c.sleeps = append(c.sleeps, d)
	c.t = c.t.Add(d)
	return ctx.Err()
}

func newTestResilient(inner Transport, p Policy) (*Resilient, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewResilient(inner, p)
	r.now = clk.now
	r.sleep = clk.sleep
	return r, clk
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	want := Policy{
		MaxAttempts:       3,
		PerAttemptTimeout: 2 * time.Second,
		BaseBackoff:       10 * time.Millisecond,
		MaxBackoff:        500 * time.Millisecond,
		Multiplier:        2,
		Jitter:            0.2,
		Seed:              1,
		FailureThreshold:  5,
		Cooldown:          time.Second,
	}
	if p != want {
		t.Errorf("defaults = %+v, want %+v", p, want)
	}
	// Negative values disable rather than defaulting.
	d := Policy{MaxAttempts: -1, Jitter: -1, FailureThreshold: -1}.withDefaults()
	if d.MaxAttempts != 1 || d.Jitter != 0 || d.FailureThreshold != -1 {
		t.Errorf("negative fields resolved to %+v", d)
	}
}

func TestPolicyBackoffSchedules(t *testing.T) {
	ms := time.Millisecond
	cases := []struct {
		name string
		p    Policy
		want []time.Duration // backoff before retry 1, 2, 3, ...
	}{
		{
			name: "default doubling capped",
			p:    Policy{}.withDefaults(),
			want: []time.Duration{10 * ms, 20 * ms, 40 * ms, 80 * ms, 160 * ms, 320 * ms, 500 * ms, 500 * ms},
		},
		{
			name: "constant",
			p:    Policy{BaseBackoff: 25 * ms, Multiplier: 1}.withDefaults(),
			want: []time.Duration{25 * ms, 25 * ms, 25 * ms, 25 * ms},
		},
		{
			name: "base above cap clamps to cap",
			p:    Policy{BaseBackoff: 50 * ms, MaxBackoff: 20 * ms}.withDefaults(),
			want: []time.Duration{50 * ms, 50 * ms}, // MaxBackoff is raised to BaseBackoff
		},
		{
			name: "aggressive multiplier",
			p:    Policy{BaseBackoff: ms, Multiplier: 10, MaxBackoff: 300 * ms}.withDefaults(),
			want: []time.Duration{ms, 10 * ms, 100 * ms, 300 * ms, 300 * ms},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i, want := range tc.want {
				if got := tc.p.backoff(i + 1); got != want {
					t.Errorf("backoff(%d) = %v, want %v", i+1, got, want)
				}
			}
		})
	}
}

func TestBreakerTransitions(t *testing.T) {
	const threshold = 3
	cooldown := time.Second
	now := time.Unix(0, 0)
	b := &breaker{}

	// Closed: failures below the threshold keep admitting calls.
	for i := 0; i < threshold-1; i++ {
		if !b.allow(now, cooldown) {
			t.Fatalf("closed breaker denied call %d", i)
		}
		if b.onFailure(now, threshold) {
			t.Fatalf("breaker opened after %d failures, threshold %d", i+1, threshold)
		}
	}
	// The threshold-th failure opens it.
	if !b.allow(now, cooldown) {
		t.Fatal("closed breaker denied the threshold-crossing call")
	}
	if !b.onFailure(now, threshold) {
		t.Fatal("breaker did not open at the threshold")
	}
	// Open: calls are rejected until the cooldown elapses.
	if b.allow(now.Add(cooldown/2), cooldown) {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}
	// After the cooldown, exactly one half-open probe is admitted.
	probeAt := now.Add(cooldown)
	if !b.allow(probeAt, cooldown) {
		t.Fatal("breaker denied the half-open probe after cooldown")
	}
	if b.allow(probeAt, cooldown) {
		t.Fatal("breaker admitted a second concurrent probe")
	}
	// A failed probe reopens immediately (no threshold accumulation).
	if !b.onFailure(probeAt, threshold) {
		t.Fatal("failed probe did not reopen the breaker")
	}
	if b.allow(probeAt.Add(cooldown/2), cooldown) {
		t.Fatal("reopened breaker admitted a call inside the new cooldown")
	}
	// A successful probe after the next cooldown closes it fully.
	again := probeAt.Add(cooldown)
	if !b.allow(again, cooldown) {
		t.Fatal("breaker denied the second probe")
	}
	b.onSuccess()
	for i := 0; i < threshold-1; i++ {
		if !b.allow(again, cooldown) {
			t.Fatal("closed breaker denied calls after successful probe")
		}
		if b.onFailure(again, threshold) {
			t.Fatal("failure count was not reset by the successful probe")
		}
	}
}

func TestResilientRetriesThenSucceeds(t *testing.T) {
	calls := 0
	tr := &scripted{call: func(ctx context.Context, addr string, req any) (any, error) {
		calls++
		if calls < 3 {
			return nil, ErrUnreachable
		}
		return &wire.HeartbeatAck{Epoch: 7}, nil
	}}
	r, clk := newTestResilient(tr, Policy{
		MaxAttempts: 5,
		BaseBackoff: 10 * time.Millisecond,
		Multiplier:  2,
		Jitter:      -1, // exact schedule
	})
	resp, err := r.Call(context.Background(), "w1", &wire.Heartbeat{})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if ack, ok := resp.(*wire.HeartbeatAck); !ok || ack.Epoch != 7 {
		t.Fatalf("resp = %#v", resp)
	}
	if calls != 3 {
		t.Errorf("attempts = %d, want 3", calls)
	}
	wantSleeps := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(clk.sleeps) != len(wantSleeps) {
		t.Fatalf("sleeps = %v, want %v", clk.sleeps, wantSleeps)
	}
	for i, w := range wantSleeps {
		if clk.sleeps[i] != w {
			t.Errorf("sleep %d = %v, want %v", i, clk.sleeps[i], w)
		}
	}
	if s := r.Stats(); s.Retries != 2 {
		t.Errorf("Retries = %d, want 2", s.Retries)
	}
}

func TestResilientExhaustsAttempts(t *testing.T) {
	calls := 0
	tr := &scripted{call: func(ctx context.Context, addr string, req any) (any, error) {
		calls++
		return nil, ErrUnreachable
	}}
	r, _ := newTestResilient(tr, Policy{MaxAttempts: 4, FailureThreshold: -1, Jitter: -1})
	_, err := r.Call(context.Background(), "w1", &wire.Heartbeat{})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if calls != 4 {
		t.Errorf("attempts = %d, want 4", calls)
	}
}

func TestResilientRemoteErrorNotRetried(t *testing.T) {
	calls := 0
	tr := &scripted{call: func(ctx context.Context, addr string, req any) (any, error) {
		calls++
		return nil, &RemoteError{Code: wire.CodeBadRequest, Message: "no"}
	}}
	r, _ := newTestResilient(tr, Policy{MaxAttempts: 5})
	_, err := r.Call(context.Background(), "w1", &wire.Heartbeat{})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if calls != 1 {
		t.Errorf("remote error was retried: %d attempts", calls)
	}
	if s := r.Stats(); s.Retries != 0 {
		t.Errorf("Retries = %d, want 0", s.Retries)
	}
}

func TestResilientPerAttemptTimeout(t *testing.T) {
	tr := &scripted{call: func(ctx context.Context, addr string, req any) (any, error) {
		<-ctx.Done() // hang until the per-attempt deadline
		return nil, ctx.Err()
	}}
	r, _ := newTestResilient(tr, Policy{
		MaxAttempts:       2,
		PerAttemptTimeout: 5 * time.Millisecond,
		BaseBackoff:       time.Millisecond,
		FailureThreshold:  -1,
	})
	_, err := r.Call(context.Background(), "w1", &wire.Heartbeat{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	s := r.Stats()
	if s.Timeouts != 2 {
		t.Errorf("Timeouts = %d, want 2", s.Timeouts)
	}
	if s.Retries != 1 {
		t.Errorf("Retries = %d, want 1", s.Retries)
	}
}

func TestResilientCallerContextWins(t *testing.T) {
	calls := 0
	tr := &scripted{call: func(ctx context.Context, addr string, req any) (any, error) {
		calls++
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	r, _ := newTestResilient(tr, Policy{
		MaxAttempts:       10,
		PerAttemptTimeout: time.Hour, // the parent deadline must cut in first
		FailureThreshold:  -1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := r.Call(ctx, "w1", &wire.Heartbeat{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if calls != 1 {
		t.Errorf("attempts after caller gave up: %d, want 1", calls)
	}
}

func TestResilientBreakerOpensAndRecovers(t *testing.T) {
	healthy := false
	calls := 0
	tr := &scripted{call: func(ctx context.Context, addr string, req any) (any, error) {
		calls++
		if healthy {
			return &wire.HeartbeatAck{}, nil
		}
		return nil, ErrUnreachable
	}}
	r, clk := newTestResilient(tr, Policy{
		MaxAttempts:      1,
		FailureThreshold: 2,
		Cooldown:         time.Second,
		Jitter:           -1,
	})
	ctx := context.Background()

	// Two consecutive failures open the breaker.
	r.Call(ctx, "w1", &wire.Heartbeat{}) //nolint:errcheck
	r.Call(ctx, "w1", &wire.Heartbeat{}) //nolint:errcheck
	if !r.BreakerOpen("w1") {
		t.Fatal("breaker not open after threshold failures")
	}
	if s := r.Stats(); s.BreakerOpens != 1 {
		t.Errorf("BreakerOpens = %d, want 1", s.BreakerOpens)
	}

	// Inside the cooldown: fast failure, no transport attempt.
	before := calls
	_, err := r.Call(ctx, "w1", &wire.Heartbeat{})
	if !errors.Is(err, ErrCircuitOpen) || !errors.Is(err, ErrUnreachable) {
		t.Fatalf("fast-fail err = %v, want ErrCircuitOpen wrapping ErrUnreachable", err)
	}
	if calls != before {
		t.Error("open breaker still hit the transport")
	}
	if s := r.Stats(); s.BreakerFastFails != 1 {
		t.Errorf("BreakerFastFails = %d, want 1", s.BreakerFastFails)
	}

	// After the cooldown the probe goes through; a healthy peer closes it.
	healthy = true
	clk.t = clk.t.Add(2 * time.Second)
	if _, err := r.Call(ctx, "w1", &wire.Heartbeat{}); err != nil {
		t.Fatalf("probe call: %v", err)
	}
	if r.BreakerOpen("w1") {
		t.Error("breaker still open after successful probe")
	}

	// Breakers are per-peer: w1's history never affected w2.
	if r.BreakerOpen("w2") {
		t.Error("unrelated peer's breaker open")
	}
}

func TestResilientTripBreaker(t *testing.T) {
	tr := &scripted{call: func(ctx context.Context, addr string, req any) (any, error) {
		return &wire.HeartbeatAck{}, nil
	}}
	r, _ := newTestResilient(tr, Policy{})
	r.TripBreaker("w9")
	if !r.BreakerOpen("w9") {
		t.Fatal("TripBreaker did not open the breaker")
	}
	if _, err := r.Call(context.Background(), "w9", &wire.Heartbeat{}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
}

func TestResilientJitterDeterministic(t *testing.T) {
	schedule := func() []time.Duration {
		tr := &scripted{call: func(ctx context.Context, addr string, req any) (any, error) {
			return nil, ErrUnreachable
		}}
		r, clk := newTestResilient(tr, Policy{MaxAttempts: 4, Seed: 42, FailureThreshold: -1})
		r.Call(context.Background(), "w1", &wire.Heartbeat{}) //nolint:errcheck
		return clk.sleeps
	}
	a, b := schedule(), schedule()
	if len(a) != 3 {
		t.Fatalf("sleeps = %v, want 3 entries", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("seeded jitter not reproducible: %v vs %v", a, b)
		}
		pre := Policy{}.withDefaults().backoff(i + 1)
		if a[i] > pre || a[i] < time.Duration(float64(pre)*0.8) {
			t.Errorf("jittered sleep %d = %v outside [0.8×%v, %v]", i, a[i], pre, pre)
		}
	}
}

func TestResilientInFlightAccounting(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	inner := &scripted{call: func(ctx context.Context, addr string, req any) (any, error) {
		entered <- struct{}{}
		<-release
		return &wire.HeartbeatAck{}, nil
	}}
	r, _ := newTestResilient(inner, Policy{MaxAttempts: 1, PerAttemptTimeout: -1})

	const n = 4
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			if _, err := r.Call(context.Background(), "w1", &wire.Heartbeat{}); err != nil {
				t.Errorf("call: %v", err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		<-entered
	}
	if got := r.Stats().InFlight; got != n {
		t.Fatalf("InFlight = %d with %d calls parked, want %d", got, n, n)
	}
	close(release)
	for i := 0; i < n; i++ {
		<-done
	}
	s := r.Stats()
	if s.InFlight != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", s.InFlight)
	}
	if s.MaxInFlight < n {
		t.Fatalf("MaxInFlight = %d, want >= %d", s.MaxInFlight, n)
	}
}
