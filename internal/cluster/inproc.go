package cluster

import (
	"context"
	"sync"
	"time"

	"stcam/internal/wire"
)

// InProc is an in-process Transport: calls dispatch directly to the target
// handler goroutine-to-goroutine. It is the substrate for unit tests and for
// the benchmark suite, where protocol behaviour (message counts, fan-out
// structure) matters but kernel networking noise does not.
//
// Options make the simulation stricter: WithWireFormat round-trips every
// payload through the production codec so in-proc behaviour cannot diverge
// from TCP semantics (no shared-pointer cheating), and WithLatency adds a
// fixed one-way delay.
type InProc struct {
	mu      sync.RWMutex
	servers map[string]*inprocServer
	blocked map[string]bool
	stats   statCounters
	wireFmt bool
	latency time.Duration
	closed  bool
}

type inprocServer struct {
	t       *InProc
	addr    string
	handler Handler
	closed  bool
}

// InProcOption configures an InProc transport.
type InProcOption func(*InProc)

// WithWireFormat makes every call marshal and unmarshal its payloads through
// the wire codec, guaranteeing value semantics identical to TCP.
func WithWireFormat() InProcOption {
	return func(t *InProc) { t.wireFmt = true }
}

// WithLatency adds a fixed one-way delay to every call and response.
func WithLatency(d time.Duration) InProcOption {
	return func(t *InProc) { t.latency = d }
}

// NewInProc returns an empty in-process transport.
func NewInProc(opts ...InProcOption) *InProc {
	t := &InProc{
		servers: make(map[string]*inprocServer),
		blocked: make(map[string]bool),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

var _ Transport = (*InProc)(nil)

// Serve implements Transport.
func (t *InProc) Serve(addr string, h Handler) (Server, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrUnreachable
	}
	if _, exists := t.servers[addr]; exists {
		return nil, &RemoteError{Code: wire.CodeBadRequest, Message: "address already bound: " + addr}
	}
	s := &inprocServer{t: t, addr: addr, handler: h}
	t.servers[addr] = s
	return s, nil
}

// Call implements Transport.
func (t *InProc) Call(ctx context.Context, addr string, req any) (any, error) {
	t.stats.calls.Add(1)
	t.mu.RLock()
	s, ok := t.servers[addr]
	closed := ok && s.closed // s.closed is guarded by t.mu; don't read it after RUnlock
	blocked := t.blocked[addr]
	wireFmt := t.wireFmt
	latency := t.latency
	t.mu.RUnlock()
	if !ok || closed || blocked {
		t.stats.errors.Add(1)
		return nil, ErrUnreachable
	}
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-ctx.Done():
			t.stats.errors.Add(1)
			return nil, ctx.Err()
		}
	}
	sendReq := req
	if wireFmt {
		clone, n, err := t.roundTrip(req)
		if err != nil {
			t.stats.errors.Add(1)
			return nil, err
		}
		t.stats.bytesOut.Add(int64(n))
		sendReq = clone
	}
	resp, err := s.handler(ctx, "inproc", sendReq)
	if err != nil {
		t.stats.errors.Add(1)
		return nil, err
	}
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-ctx.Done():
			t.stats.errors.Add(1)
			return nil, ctx.Err()
		}
	}
	if wireFmt && resp != nil {
		clone, n, err := t.roundTrip(resp)
		if err != nil {
			t.stats.errors.Add(1)
			return nil, err
		}
		t.stats.bytesIn.Add(int64(n))
		resp = clone
	}
	if e, ok := resp.(*wire.Error); ok {
		return nil, &RemoteError{Code: e.Code, Message: e.Message}
	}
	return resp, nil
}

func (t *InProc) roundTrip(msg any) (any, int, error) {
	kind := wire.KindOf(msg)
	if kind == 0 {
		return nil, 0, &RemoteError{Code: wire.CodeBadRequest, Message: "unknown message type"}
	}
	// Encode into a pooled buffer: decoded messages never alias the encode
	// bytes, so the buffer goes back to the pool as soon as Unmarshal returns.
	buf := wire.BorrowBuf()
	defer buf.Release()
	body, err := wire.AppendMarshal(buf.B[:0], kind, msg)
	if err != nil {
		return nil, 0, err
	}
	buf.B = body
	out, err := wire.Unmarshal(kind, body)
	if err != nil {
		return nil, 0, err
	}
	return out, len(body), nil
}

// SetBlocked simulates a network partition or crash of addr: calls fail with
// ErrUnreachable until unblocked. Used by failure-injection tests (R8).
func (t *InProc) SetBlocked(addr string, blocked bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.blocked[addr] = blocked
}

// Stats implements Transport.
func (t *InProc) Stats() TransportStats { return t.stats.snapshot() }

// Close implements Transport.
func (t *InProc) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	for _, s := range t.servers {
		s.closed = true
	}
	t.servers = make(map[string]*inprocServer)
	return nil
}

// Addr implements Server.
func (s *inprocServer) Addr() string { return s.addr }

// Close implements Server.
func (s *inprocServer) Close() error {
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if !s.closed {
		s.closed = true
		delete(s.t.servers, s.addr)
	}
	return nil
}
