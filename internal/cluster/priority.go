package cluster

import "context"

// QoS tags classify RPC traffic for the serving plane's admission control:
// the client stamps a priority class (and optionally a tenant name for quota
// accounting) on the context, the TCP frame carries both to the server, and
// the server handler reads them back via PriorityFrom/TenantFrom. Untagged
// calls are PriorityNone everywhere — old-format frames (without the QoS
// field) decode as untagged calls, and untagged calls are emitted as
// pre-QoS frames byte-for-byte.

// Priority is an RPC priority class. Order matters: higher values shed first.
type Priority uint8

// Priority classes, in shed order (highest value sheds first).
const (
	// PriorityNone marks an untagged call; admission control treats it as
	// PriorityInteractive.
	PriorityNone Priority = 0
	// PriorityControl is ingest, tracking, and control-plane traffic. Never
	// shed: dropping it loses data or strands protocol state.
	PriorityControl Priority = 1
	// PriorityInteractive is user-facing query traffic: shed only when the
	// serving plane is far past its concurrency watermark.
	PriorityInteractive Priority = 2
	// PriorityBackground is bulk/analytics query traffic: the first class
	// shed under load.
	PriorityBackground Priority = 3
)

// String names the class for metrics and logs.
func (p Priority) String() string {
	switch p {
	case PriorityControl:
		return "control"
	case PriorityInteractive:
		return "interactive"
	case PriorityBackground:
		return "background"
	default:
		return "none"
	}
}

type priorityKey struct{}
type tenantKey struct{}

// WithPriority returns a context carrying the priority class. PriorityNone is
// a no-op.
func WithPriority(ctx context.Context, p Priority) context.Context {
	if p == PriorityNone {
		return ctx
	}
	return context.WithValue(ctx, priorityKey{}, p)
}

// PriorityFrom extracts the priority class (PriorityNone when untagged).
func PriorityFrom(ctx context.Context) Priority {
	p, _ := ctx.Value(priorityKey{}).(Priority)
	return p
}

// WithTenant returns a context carrying the tenant name charged for the
// call's quota. An empty tenant is a no-op.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom extracts the tenant name ("" when untagged).
func TenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}
