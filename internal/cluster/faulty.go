package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultProgram describes the failure behaviour injected on one link (calls
// from this transport to one destination address). Probabilities are in
// [0, 1] and are evaluated per call from the Faulty transport's seeded RNG,
// so a given seed replays the same fault sequence.
type FaultProgram struct {
	// Drop is the probability a call fails immediately with ErrUnreachable,
	// as a lost or refused connection would.
	Drop float64
	// Hang is the probability a call blocks until the caller's context
	// expires — silent loss, the failure mode per-attempt deadlines exist
	// for. Takes precedence over Drop when both fire.
	Hang float64
	// Duplicate is the probability the request is delivered twice; the
	// duplicate's response is discarded. Exercises at-least-once semantics.
	Duplicate float64
	// Latency delays every call; Jitter adds a uniform [0, Jitter) extra.
	Latency time.Duration
	Jitter  time.Duration
	// Partition fails every call to this address fast with ErrUnreachable.
	// Only the wrapped (calling) side is affected, so wrapping a single
	// node's transport yields a one-way partition.
	Partition bool
}

// FaultStats counts the faults a Faulty transport has injected.
type FaultStats struct {
	Dropped    int64 // calls failed by Drop or Partition
	Hung       int64 // calls blocked until context expiry
	Duplicated int64 // extra deliveries injected
	Delayed    int64 // calls delayed by Latency/Jitter
}

// Faulty is a fault-injecting Transport decorator with deterministic,
// seeded per-link fault programs. It works over any Transport (InProc and
// TCP alike) and is the substrate for failure experiments: program a link
// with drops, added latency, hangs, one-way partitions, or duplicate
// delivery, and the wrapped side experiences exactly that — repeatably.
//
// Addresses without a program pass through untouched, so a single program
// isolates one link while the rest of the cluster stays healthy.
type Faulty struct {
	inner Transport

	mu       sync.Mutex
	rng      *rand.Rand
	programs map[string]FaultProgram

	dropped    atomic.Int64
	hung       atomic.Int64
	duplicated atomic.Int64
	delayed    atomic.Int64
}

var _ Transport = (*Faulty)(nil)

// NewFaulty wraps a transport with fault injection. The seed fixes the
// fault sequence for reproducible failure tests.
func NewFaulty(inner Transport, seed int64) *Faulty {
	return &Faulty{
		inner:    inner,
		rng:      rand.New(rand.NewSource(seed)),
		programs: make(map[string]FaultProgram),
	}
}

// SetProgram installs (or replaces) the fault program for one destination
// address.
func (f *Faulty) SetProgram(addr string, p FaultProgram) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.programs[addr] = p
}

// SetPartitioned flips only the Partition bit of addr's fault program,
// preserving any drop/latency/duplicate chaos already installed on the link.
// Healing (on=false) a link whose program is otherwise zero removes the
// program entirely so the link passes through untouched again.
func (f *Faulty) SetPartitioned(addr string, on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.programs[addr]
	p.Partition = on
	if p == (FaultProgram{}) {
		delete(f.programs, addr)
		return
	}
	f.programs[addr] = p
}

// ClearProgram removes a destination's fault program; calls pass through
// untouched again.
func (f *Faulty) ClearProgram(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.programs, addr)
}

// Program returns the fault program installed for addr, if any.
func (f *Faulty) Program(addr string) (FaultProgram, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.programs[addr]
	return p, ok
}

// Injected returns the cumulative injected-fault counters.
func (f *Faulty) Injected() FaultStats {
	return FaultStats{
		Dropped:    f.dropped.Load(),
		Hung:       f.hung.Load(),
		Duplicated: f.duplicated.Load(),
		Delayed:    f.delayed.Load(),
	}
}

// Serve implements Transport.
func (f *Faulty) Serve(addr string, h Handler) (Server, error) { return f.inner.Serve(addr, h) }

// Stats implements Transport.
func (f *Faulty) Stats() TransportStats { return f.inner.Stats() }

// Close implements Transport.
func (f *Faulty) Close() error { return f.inner.Close() }

// Call implements Transport, applying the destination's fault program.
func (f *Faulty) Call(ctx context.Context, addr string, req any) (any, error) {
	f.mu.Lock()
	p, ok := f.programs[addr]
	if !ok {
		f.mu.Unlock()
		return f.inner.Call(ctx, addr, req)
	}
	// Draw every roll up front, in fixed order, so the fault sequence for a
	// seed does not depend on which faults the program enables.
	hangRoll := f.rng.Float64()
	dropRoll := f.rng.Float64()
	dupRoll := f.rng.Float64()
	var extra time.Duration
	if p.Jitter > 0 {
		extra = time.Duration(f.rng.Int63n(int64(p.Jitter)))
	}
	f.mu.Unlock()

	if p.Partition {
		f.dropped.Add(1)
		return nil, fmt.Errorf("%w: injected partition (%s)", ErrUnreachable, addr)
	}
	if p.Hang > 0 && hangRoll < p.Hang {
		f.hung.Add(1)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if p.Drop > 0 && dropRoll < p.Drop {
		f.dropped.Add(1)
		return nil, fmt.Errorf("%w: injected drop (%s)", ErrUnreachable, addr)
	}
	if d := p.Latency + extra; d > 0 {
		f.delayed.Add(1)
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if p.Duplicate > 0 && dupRoll < p.Duplicate {
		f.duplicated.Add(1)
		f.inner.Call(ctx, addr, req) //nolint:errcheck // duplicate delivery; this response is discarded
	}
	return f.inner.Call(ctx, addr, req)
}
