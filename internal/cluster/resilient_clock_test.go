package cluster

import (
	"context"
	"testing"
	"time"

	"stcam/internal/clock"
)

// TestResilientWithClockFake drives a full retry sequence off clock.Fake via
// the WithClock option — the exact wiring core.Options.Clock uses — proving
// the resilience layer's backoff timing rides the injected seam end to end:
// no retry fires until the fake clock is advanced past its backoff deadline,
// and the whole call completes with zero wall-clock sleeping.
func TestResilientWithClockFake(t *testing.T) {
	fake := clock.NewFake()
	attempts := 0
	tr := &scripted{call: func(ctx context.Context, addr string, req any) (any, error) {
		attempts++
		if attempts < 3 {
			return nil, ErrUnreachable
		}
		return "ok", nil
	}}
	// Deterministic schedule: no jitter, 10ms then 20ms backoff.
	r := NewResilient(tr, Policy{
		MaxAttempts: 3,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  time.Second,
		Multiplier:  2,
		Jitter:      -1,
	}, WithClock(fake))

	done := make(chan error, 1)
	go func() {
		_, err := r.Call(context.Background(), "w1", "req")
		done <- err
	}()

	for _, step := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond} {
		waitForSleeper(t, fake)
		select {
		case err := <-done:
			t.Fatalf("call finished before the fake clock advanced: %v", err)
		default:
		}
		fake.Advance(step)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("call failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call never completed after advancing the fake clock")
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	if got := fake.Now().Sub(clock.NewFake().Now()); got != 30*time.Millisecond {
		t.Errorf("fake clock advanced %v, want 30ms", got)
	}
}

// TestWithClockNilKeepsWallDefaults pins the defensive default: a nil clock
// leaves the wall-clock wiring in place instead of panicking later.
func TestWithClockNilKeepsWallDefaults(t *testing.T) {
	r := NewResilient(&scripted{call: func(ctx context.Context, addr string, req any) (any, error) {
		return "ok", nil
	}}, Policy{}, WithClock(nil))
	if r.now == nil || r.sleep == nil {
		t.Fatal("WithClock(nil) cleared the wall-clock defaults")
	}
	if _, err := r.Call(context.Background(), "w1", "req"); err != nil {
		t.Fatalf("call: %v", err)
	}
}

// waitForSleeper blocks until the retry loop parks on fake.Sleep.
func waitForSleeper(t *testing.T, fake *clock.Fake) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for fake.Sleepers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no sleeper appeared on the fake clock")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
