// Package cluster provides the distribution substrate: request/response
// transports (in-process for tests and benchmarks, TCP for deployments),
// membership with heartbeat failure detection, and camera-to-worker
// partitioning strategies.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Handler processes one request and returns a response payload. Both request
// and response must be wire message pointers (wire.KindOf must know them).
// Handlers are invoked concurrently.
type Handler func(ctx context.Context, from string, req any) (any, error)

// Server is a bound listener.
type Server interface {
	// Addr returns the bound address (useful with ":0" listeners).
	Addr() string
	// Close stops serving. Safe to call twice.
	Close() error
}

// Transport moves wire messages between nodes.
type Transport interface {
	// Serve starts handling requests at addr.
	Serve(addr string, h Handler) (Server, error)
	// Call sends req to addr and waits for the response.
	Call(ctx context.Context, addr string, req any) (any, error)
	// Stats returns cumulative transport counters.
	Stats() TransportStats
	// Close releases client-side resources (server handles stay open until
	// their own Close).
	Close() error
}

// TransportStats counts traffic through a transport. Experiment R3 reads
// Calls to compare handoff message complexity across strategies. The
// resilience counters are zero unless the transport is wrapped in a
// Resilient decorator, which fills them in its Stats snapshot.
type TransportStats struct {
	Calls    int64
	Errors   int64
	BytesOut int64
	BytesIn  int64

	Retries          int64 // attempts beyond the first, per Call
	Timeouts         int64 // attempts that hit the per-attempt deadline
	BreakerOpens     int64 // closed/half-open → open breaker transitions
	BreakerFastFails int64 // calls rejected by an open breaker
	InFlight         int64 // Calls currently executing (snapshot instant)
	MaxInFlight      int64 // high-water mark of concurrent Calls
}

// ErrUnreachable is returned for calls to addresses with no live server.
var ErrUnreachable = errors.New("cluster: address unreachable")

// RemoteError is a structured failure returned by the remote handler (as
// opposed to a transport failure).
type RemoteError struct {
	Code    int
	Message string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote error %d: %s", e.Code, e.Message)
}

// statCounters is the shared atomic implementation behind Stats.
type statCounters struct {
	calls    atomic.Int64
	errors   atomic.Int64
	bytesOut atomic.Int64
	bytesIn  atomic.Int64
}

func (s *statCounters) snapshot() TransportStats {
	return TransportStats{
		Calls:    s.calls.Load(),
		Errors:   s.errors.Load(),
		BytesOut: s.bytesOut.Load(),
		BytesIn:  s.bytesIn.Load(),
	}
}
