package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"stcam/internal/wire"
)

// echoCluster serves a trivial handler at addr on an InProc transport and
// returns the Faulty decorator wrapped around it.
func echoCluster(t *testing.T, seed int64, addr string, handled *atomic.Int64) *Faulty {
	t.Helper()
	inner := NewInProc()
	t.Cleanup(func() { inner.Close() })
	_, err := inner.Serve(addr, func(ctx context.Context, from string, req any) (any, error) {
		if handled != nil {
			handled.Add(1)
		}
		return &wire.HeartbeatAck{Epoch: 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewFaulty(inner, seed)
}

func TestFaultyPassThroughWithoutProgram(t *testing.T) {
	f := echoCluster(t, 1, "w1", nil)
	resp, err := f.Call(context.Background(), "w1", &wire.Heartbeat{})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if _, ok := resp.(*wire.HeartbeatAck); !ok {
		t.Fatalf("resp = %#v", resp)
	}
	if s := f.Injected(); s != (FaultStats{}) {
		t.Errorf("faults injected without a program: %+v", s)
	}
}

func TestFaultyDropDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		f := echoCluster(t, seed, "w1", nil)
		f.SetProgram("w1", FaultProgram{Drop: 0.5})
		out := make([]bool, 40)
		for i := range out {
			_, err := f.Call(context.Background(), "w1", &wire.Heartbeat{})
			out[i] = err == nil
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, a, b)
		}
	}
	okA, okC := 0, 0
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] {
			okA++
		}
		if c[i] {
			okC++
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical drop patterns")
	}
	// Roughly half should survive a 0.5 drop program.
	for _, ok := range []int{okA, okC} {
		if ok < 8 || ok > 32 {
			t.Errorf("successes = %d/40 under Drop 0.5", ok)
		}
	}
}

func TestFaultyDropErrorIsUnreachable(t *testing.T) {
	f := echoCluster(t, 1, "w1", nil)
	f.SetProgram("w1", FaultProgram{Drop: 1})
	_, err := f.Call(context.Background(), "w1", &wire.Heartbeat{})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if s := f.Injected(); s.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", s.Dropped)
	}
}

func TestFaultyPartitionAndClear(t *testing.T) {
	f := echoCluster(t, 1, "w1", nil)
	f.SetProgram("w1", FaultProgram{Partition: true})
	if _, err := f.Call(context.Background(), "w1", &wire.Heartbeat{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partitioned call err = %v, want ErrUnreachable", err)
	}
	f.ClearProgram("w1")
	if _, err := f.Call(context.Background(), "w1", &wire.Heartbeat{}); err != nil {
		t.Fatalf("call after ClearProgram: %v", err)
	}
}

func TestFaultyHangRespectsContext(t *testing.T) {
	f := echoCluster(t, 1, "w1", nil)
	f.SetProgram("w1", FaultProgram{Hang: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Call(ctx, "w1", &wire.Heartbeat{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("hang returned before the context expired")
	}
	if s := f.Injected(); s.Hung != 1 {
		t.Errorf("Hung = %d, want 1", s.Hung)
	}
}

func TestFaultyDuplicateDeliversTwice(t *testing.T) {
	var handled atomic.Int64
	f := echoCluster(t, 1, "w1", &handled)
	f.SetProgram("w1", FaultProgram{Duplicate: 1})
	if _, err := f.Call(context.Background(), "w1", &wire.Heartbeat{}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if n := handled.Load(); n != 2 {
		t.Errorf("handler invocations = %d, want 2", n)
	}
	if s := f.Injected(); s.Duplicated != 1 {
		t.Errorf("Duplicated = %d, want 1", s.Duplicated)
	}
}

func TestFaultyLatencyDelays(t *testing.T) {
	f := echoCluster(t, 1, "w1", nil)
	f.SetProgram("w1", FaultProgram{Latency: 20 * time.Millisecond})
	start := time.Now()
	if _, err := f.Call(context.Background(), "w1", &wire.Heartbeat{}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("call took %v, want >= 20ms", d)
	}
	if s := f.Injected(); s.Delayed != 1 {
		t.Errorf("Delayed = %d, want 1", s.Delayed)
	}
}

// TestFaultyUnderResilient is the decorator-stacking contract: a Resilient
// wrapped around a Faulty link with heavy drop still completes calls.
func TestFaultyUnderResilient(t *testing.T) {
	f := echoCluster(t, 3, "w1", nil)
	f.SetProgram("w1", FaultProgram{Drop: 0.6})
	r := NewResilient(f, Policy{
		MaxAttempts:      8,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       2 * time.Millisecond,
		FailureThreshold: -1,
	})
	for i := 0; i < 20; i++ {
		if _, err := r.Call(context.Background(), "w1", &wire.Heartbeat{}); err != nil {
			t.Fatalf("call %d failed through resilience layer: %v", i, err)
		}
	}
	if s := r.Stats(); s.Retries == 0 {
		t.Error("no retries recorded under a 0.6 drop program")
	}
}
