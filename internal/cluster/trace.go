package cluster

import (
	"context"
	"fmt"
	"math/rand/v2"
)

// Trace IDs give every RPC a correlation handle: the Resilient client stamps
// one on each outbound call (unless the caller already put one in the
// context), the TCP frame carries it to the server, and the server handler
// sees it via TraceFrom. A trace ID of 0 means "no trace" everywhere, so
// old-format frames (without the trace field) decode as untraced calls.

type traceKey struct{}

// WithTrace returns a context carrying the trace ID. A zero ID is a no-op.
func WithTrace(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom extracts the trace ID from the context (0 when absent).
func TraceFrom(ctx context.Context) uint64 {
	id, _ := ctx.Value(traceKey{}).(uint64)
	return id
}

// NewTraceID returns a fresh non-zero random trace ID.
func NewTraceID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// TraceString renders a trace ID the way log lines spell it (16 hex digits).
func TraceString(id uint64) string { return fmt.Sprintf("%016x", id) }
