package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"stcam/internal/wire"
)

// echoNet serves trivial handlers at each addr on a shared InProc and
// returns the FaultyNet over it.
func echoNet(t *testing.T, seed int64, addrs ...string) *FaultyNet {
	t.Helper()
	inner := NewInProc()
	for _, a := range addrs {
		if _, err := inner.Serve(a, func(ctx context.Context, from string, req any) (any, error) {
			return &wire.HeartbeatAck{Epoch: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	n := NewFaultyNet(inner, seed)
	t.Cleanup(func() { n.Close() })
	return n
}

func callOK(n *FaultyNet, from, to string) error {
	_, err := n.View(from).Call(context.Background(), to, &wire.Heartbeat{})
	return err
}

func TestFaultyNetPartitionIsSymmetric(t *testing.T) {
	n := echoNet(t, 1, "a", "b", "c")
	n.Partition("a", "b")
	if err := callOK(n, "a", "b"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("a→b err = %v, want ErrUnreachable", err)
	}
	if err := callOK(n, "b", "a"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("b→a err = %v, want ErrUnreachable", err)
	}
	// Third parties are unaffected in either direction.
	if err := callOK(n, "a", "c"); err != nil {
		t.Fatalf("a→c should pass: %v", err)
	}
	if err := callOK(n, "c", "b"); err != nil {
		t.Fatalf("c→b should pass: %v", err)
	}
	n.Heal("a", "b")
	if err := callOK(n, "a", "b"); err != nil {
		t.Fatalf("a→b after Heal: %v", err)
	}
	if err := callOK(n, "b", "a"); err != nil {
		t.Fatalf("b→a after Heal: %v", err)
	}
}

func TestFaultyNetPartitionPreservesChaos(t *testing.T) {
	n := echoNet(t, 1, "a", "b")
	n.View("a").SetProgram("b", FaultProgram{Drop: 0.5})
	n.Partition("a", "b")
	n.Heal("a", "b")
	p, ok := n.View("a").Program("b")
	if !ok || p.Drop != 0.5 {
		t.Fatalf("drop program lost across partition/heal: %+v ok=%v", p, ok)
	}
	if p.Partition {
		t.Fatal("link still partitioned after Heal")
	}
	// A link with no other chaos drops its program entirely on heal.
	n.Partition("b", "a")
	n.Heal("b", "a")
	if _, ok := n.View("b").Program("a"); ok {
		t.Fatal("healed zero program should be removed")
	}
}

func TestFaultyNetHealAfter(t *testing.T) {
	n := echoNet(t, 1, "a", "b")
	n.Partition("a", "b")
	n.HealAfter(20*time.Millisecond, "a", "b")
	if err := callOK(n, "a", "b"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("link should start partitioned, err = %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := callOK(n, "a", "b"); err == nil {
			if err := callOK(n, "b", "a"); err == nil {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("link never healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFaultyNetFlapEvery(t *testing.T) {
	n := echoNet(t, 1, "a", "b")
	stop := n.FlapEvery(10*time.Millisecond, "a", "b")
	// Starts partitioned.
	if err := callOK(n, "a", "b"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("flapping link should start cut, err = %v", err)
	}
	// Over a few periods we must observe both states.
	var sawUp, sawDown bool
	deadline := time.Now().Add(2 * time.Second)
	for (!sawUp || !sawDown) && time.Now().Before(deadline) {
		if err := callOK(n, "a", "b"); err == nil {
			sawUp = true
		} else {
			sawDown = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawUp || !sawDown {
		t.Fatalf("flapper never alternated: up=%v down=%v", sawUp, sawDown)
	}
	stop()
	if err := callOK(n, "a", "b"); err != nil {
		t.Fatalf("stop() should heal the link: %v", err)
	}
	stop() // idempotent
}

func TestFaultyNetViewSeedsDiffer(t *testing.T) {
	n := echoNet(t, 42, "a", "b", "dst")
	n.View("a").SetProgram("dst", FaultProgram{Drop: 0.5})
	n.View("b").SetProgram("dst", FaultProgram{Drop: 0.5})
	same := true
	for i := 0; i < 40; i++ {
		ea := callOK(n, "a", "dst")
		eb := callOK(n, "b", "dst")
		if (ea == nil) != (eb == nil) {
			same = false
		}
	}
	if same {
		t.Error("distinct views produced identical fault sequences")
	}
}

func TestLeaseRenewExpireAndEpochFence(t *testing.T) {
	l := NewLease(50 * time.Millisecond)
	now := time.Unix(1000, 0)
	if !l.Expired(now) {
		t.Fatal("fresh lease should start expired")
	}
	if !l.Renew("c1", "coord-1", 3, now) {
		t.Fatal("first renewal rejected")
	}
	if l.Expired(now.Add(40 * time.Millisecond)) {
		t.Fatal("lease expired inside TTL")
	}
	if !l.Expired(now.Add(60 * time.Millisecond)) {
		t.Fatal("lease still live past TTL")
	}
	// A newer epoch takes over; an older epoch is fenced out.
	if !l.Renew("c2", "coord-2", 4, now.Add(time.Millisecond)) {
		t.Fatal("newer-epoch renewal rejected")
	}
	if l.Renew("c1", "coord-1", 3, now.Add(2*time.Millisecond)) {
		t.Fatal("stale-epoch renewal accepted")
	}
	leader, addr, epoch := l.Holder()
	if leader != "c2" || addr != "coord-2" || epoch != 4 {
		t.Fatalf("Holder = %s/%s/%d, want c2/coord-2/4", leader, addr, epoch)
	}
}

func TestElectLeaderDeterministic(t *testing.T) {
	if _, ok := ElectLeader(nil); ok {
		t.Fatal("empty candidate set should not elect")
	}
	// Highest applied index wins regardless of ID order.
	id, ok := ElectLeader(map[wire.NodeID]uint64{"c1": 5, "c2": 9, "c3": 9})
	if !ok || id != "c2" {
		t.Fatalf("ElectLeader = %s ok=%v, want c2 (lowest ID among max-applied)", id, ok)
	}
	// Pure tie breaks toward the lowest ID.
	id, _ = ElectLeader(map[wire.NodeID]uint64{"c9": 7, "c2": 7, "c5": 7})
	if id != "c2" {
		t.Fatalf("tie-break elected %s, want c2", id)
	}
}
